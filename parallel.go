package domainvirt

import (
	"runtime"
	"sync"
)

// expCell is one independent cell of the experiment grid: a (workload,
// parameters, scheme) triple. Params is a plain value type, so cells are
// comparable and double as result keys.
type expCell struct {
	name   string
	p      Params
	scheme Scheme
}

// runGrid evaluates every cell with a bounded worker pool and returns
// the results keyed by cell. Each cell builds its own machine and
// workload, so cells share no mutable state and the outcome is
// independent of scheduling; callers aggregate in their own fixed order,
// which keeps reports byte-identical to the sequential path. workers <= 0
// selects GOMAXPROCS; workers == 1 runs inline. On failure the error of
// the lowest-indexed failing cell is returned — the same one the
// sequential path would have hit first.
func runGrid(cfg Config, workers int, cells []expCell) (gridResults, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	uniq := make([]expCell, 0, len(cells))
	seen := make(map[expCell]bool, len(cells))
	for _, c := range cells {
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	if workers > len(uniq) {
		workers = len(uniq)
	}

	results := make([]Result, len(uniq))
	errs := make([]error, len(uniq))
	if workers <= 1 {
		for i, c := range uniq {
			results[i], errs[i] = Run(c.name, c.p, c.scheme, cfg)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					c := uniq[i]
					results[i], errs[i] = Run(c.name, c.p, c.scheme, cfg)
				}
			}()
		}
		for i := range uniq {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	out := make(gridResults, len(uniq))
	for i, c := range uniq {
		out[c] = results[i]
	}
	return out, nil
}

// gridResults holds every evaluated cell, keyed by the cell itself.
type gridResults map[expCell]Result

// at regroups one (name, params) slice of the grid into the per-scheme
// map the table aggregations consume.
func (g gridResults) at(name string, p Params) map[Scheme]Result {
	out := make(map[Scheme]Result)
	for c, r := range g {
		if c.name == name && c.p == p {
			out[c.scheme] = r
		}
	}
	return out
}
