package domainvirt

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"

	"domainvirt/internal/obs"
)

// expCell is one independent cell of the experiment grid: a (workload,
// parameters, scheme) triple. Params is a plain value type, so cells are
// comparable and double as result keys.
type expCell struct {
	name   string
	p      Params
	scheme Scheme
}

// label is the cell's file- and log-friendly identity. Within one grid
// the cells differ only by workload, scheme, and PMO count, so those
// three fields are enough to keep labels unique.
func (c expCell) label() string {
	return fmt.Sprintf("%s-%s-p%d", c.name, c.scheme, c.p.NumPMOs)
}

// runGrid evaluates every cell with a bounded worker pool and returns
// the results keyed by cell. Each cell builds its own machine and
// workload, so cells share no mutable state and the outcome is
// independent of scheduling; callers aggregate in their own fixed order,
// which keeps reports byte-identical to the sequential path. Workers <= 0
// selects GOMAXPROCS; Workers == 1 runs inline. On failure the error of
// the lowest-indexed failing cell is returned — the same one the
// sequential path would have hit first.
//
// When opt.Progress is set, each completed cell prints one
// "[done/total] label" line (ordering follows completion, content does
// not). When opt.Obs.Dir is set, every cell runs observed and the grid's
// observability data is exported there after all cells finish; the
// export loop runs in fixed cell order, so the files are deterministic.
func runGrid(opt ExpOptions, cells []expCell) (gridResults, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	uniq := make([]expCell, 0, len(cells))
	seen := make(map[expCell]bool, len(cells))
	for _, c := range cells {
		if !seen[c] {
			seen[c] = true
			uniq = append(uniq, c)
		}
	}
	if workers > len(uniq) {
		workers = len(uniq)
	}
	observed := opt.Obs.Dir != ""

	if len(opt.SweepAddrs) > 0 {
		// Distributed path: fan the cells out to pmoworker daemons.
		// Results and artifacts come back per cell and merge in the
		// same fixed order as the local path below.
		results, artifacts, err := runGridRemote(opt, uniq)
		if err != nil {
			return nil, err
		}
		if observed {
			if err := exportGridObs(opt, uniq, artifacts); err != nil {
				return nil, err
			}
		}
		out := make(gridResults, len(uniq))
		for i, c := range uniq {
			out[c] = results[i]
		}
		return out, nil
	}

	prog := obs.NewProgress(opt.Progress, len(uniq))
	results := make([]Result, len(uniq))
	recs := make([]*obs.Recorder, len(uniq))
	errs := make([]error, len(uniq))
	runCell := func(i int) {
		c := uniq[i]
		var hit bool
		if observed {
			results[i], recs[i], hit, errs[i] = RunObservedCached(c.name, c.p, c.scheme, opt.Cfg,
				ObsOptions{Epoch: opt.Obs.Epoch}, opt.Snapshots)
		} else {
			results[i], hit, errs[i] = RunCached(c.name, c.p, c.scheme, opt.Cfg, opt.Snapshots)
		}
		if errs[i] != nil {
			prog.Logf("FAIL %s: %v", c.label(), errs[i])
			return
		}
		label := c.label()
		if opt.Snapshots != nil {
			if hit {
				label += " (snapshot)"
			} else {
				label += " (warmup)"
			}
		}
		prog.Done(label)
	}
	if workers <= 1 {
		for i := range uniq {
			runCell(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runCell(i)
				}
			}()
		}
		for i := range uniq {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if observed {
		artifacts := make([]cellObs, len(uniq))
		for i, rec := range recs {
			artifacts[i] = recorderObs(rec, opt.Obs.Epoch)
		}
		if err := exportGridObs(opt, uniq, artifacts); err != nil {
			return nil, err
		}
	}
	out := make(gridResults, len(uniq))
	for i, c := range uniq {
		out[c] = results[i]
	}
	return out, nil
}

// cellObs is one cell's observability artifact set in rendered form:
// the manifest and epoch-series bytes exactly as the recorder writes
// them, plus the two latency histograms (mergeable values). Local cells
// render theirs via recorderObs; distributed cells ship theirs back
// pre-rendered, so both paths export identical files.
type cellObs struct {
	ok       bool
	manifest []byte
	series   []byte
	access   obs.Histogram
	setperm  obs.Histogram
}

// recorderObs renders a local recorder's artifacts.
func recorderObs(rec *obs.Recorder, epoch uint64) cellObs {
	if rec == nil {
		return cellObs{}
	}
	var man bytes.Buffer
	if err := rec.Manifest().WriteJSON(&man); err != nil {
		return cellObs{}
	}
	co := cellObs{ok: true, manifest: man.Bytes()}
	if epoch > 0 {
		var series bytes.Buffer
		if err := rec.WriteJSONL(&series); err != nil {
			return cellObs{}
		}
		co.series = series.Bytes()
	}
	co.access = *rec.AccessHist()
	co.setperm = *rec.SetPermHist()
	return co
}

// exportGridObs writes the grid's observability artifacts into
// opt.Obs.Dir: one manifest-<label>.json per cell, one
// series-<label>.jsonl per cell when epoch sampling was on, and one
// hist-<scheme>.prom per scheme holding the access and SETPERM latency
// histograms merged across that scheme's cells. It runs after the worker
// pool (local or distributed) has drained, iterating cells in their
// fixed grid order; histogram merging is commutative. The output is
// byte-deterministic for a given seed regardless of scheduling or of
// which worker ran which cell.
func exportGridObs(opt ExpOptions, cells []expCell, artifacts []cellObs) error {
	dir := opt.Obs.Dir
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writeFile := func(path string, fn func(f *os.File) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	type histPair struct{ access, setperm obs.Histogram }
	merged := make(map[Scheme]*histPair)
	var order []Scheme
	for i, c := range cells {
		co := artifacts[i]
		if !co.ok {
			continue
		}
		err := writeFile(filepath.Join(dir, "manifest-"+c.label()+".json"), func(f *os.File) error {
			_, err := f.Write(co.manifest)
			return err
		})
		if err != nil {
			return err
		}
		if opt.Obs.Epoch > 0 {
			err := writeFile(filepath.Join(dir, "series-"+c.label()+".jsonl"), func(f *os.File) error {
				_, err := f.Write(co.series)
				return err
			})
			if err != nil {
				return err
			}
		}
		hp, ok := merged[c.scheme]
		if !ok {
			hp = &histPair{}
			merged[c.scheme] = hp
			order = append(order, c.scheme)
		}
		hp.access.Merge(&co.access)
		hp.setperm.Merge(&co.setperm)
	}
	for _, s := range order {
		hp := merged[s]
		labels := fmt.Sprintf("scheme=%q", s)
		err := writeFile(filepath.Join(dir, "hist-"+string(s)+".prom"), func(f *os.File) error {
			if err := obs.PromHistogram(f, "pmo_access_cycles",
				"Per-access total latency in cycles, merged across the grid.", labels, &hp.access); err != nil {
				return err
			}
			return obs.PromHistogram(f, "pmo_setperm_cycles",
				"Per-SETPERM total cost in cycles, merged across the grid.", labels, &hp.setperm)
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// gridResults holds every evaluated cell, keyed by the cell itself.
type gridResults map[expCell]Result

// at regroups one (name, params) slice of the grid into the per-scheme
// map the table aggregations consume.
func (g gridResults) at(name string, p Params) map[Scheme]Result {
	out := make(map[Scheme]Result)
	for c, r := range g {
		if c.name == name && c.p == p {
			out[c.scheme] = r
		}
	}
	return out
}
