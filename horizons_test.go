package domainvirt_test

import (
	"testing"

	"domainvirt"
)

// horizonRef runs each horizon as a full independent simulation — the
// slow path the horizon fork must match bit-for-bit.
func horizonRef(t *testing.T, name string, p domainvirt.Params, s domainvirt.Scheme,
	cfg domainvirt.Config, horizons []int) []domainvirt.Result {
	t.Helper()
	var out []domainvirt.Result
	for _, h := range horizons {
		hp := p
		hp.Ops = h
		r, err := domainvirt.Run(name, hp, s, cfg)
		if err != nil {
			t.Fatalf("reference run at %d ops: %v", h, err)
		}
		out = append(out, r)
	}
	return out
}

// TestRunHorizonsBitIdentity: one measured pass must reproduce every
// horizon's independent Result exactly, for every scheme and with and
// without a cache.
func TestRunHorizonsBitIdentity(t *testing.T) {
	p := cacheParams()
	cfg := domainvirt.DefaultConfig()
	horizons := []int{150, 400, 900}
	for _, s := range []domainvirt.Scheme{
		domainvirt.SchemeBaseline,
		domainvirt.SchemeLowerbound,
		domainvirt.SchemeMPKVirt,
		domainvirt.SchemeDomainVirt,
	} {
		want := horizonRef(t, "avl", p, s, cfg, horizons)
		for _, cache := range []*domainvirt.SnapshotCache{nil, domainvirt.NewSnapshotCache()} {
			got, err := domainvirt.RunHorizons("avl", p, s, cfg, horizons, cache)
			if err != nil {
				t.Fatalf("%s: %v", s, err)
			}
			for i, h := range horizons {
				if got[i] != want[i] {
					t.Errorf("%s at horizon %d (cache=%v):\n got: %+v\nwant: %+v",
						s, h, cache != nil, got[i], want[i])
				}
			}
		}
	}
}

// TestRunHorizonsWhisper pins the fork on a transactional workload whose
// ops draw variable amounts of randomness (tpcc), the hardest case for
// prefix stability.
func TestRunHorizonsWhisper(t *testing.T) {
	p := domainvirt.Params{NumPMOs: 1, Ops: 1, InitialElems: 256, PoolSize: 2 << 30, Seed: 7}
	cfg := domainvirt.DefaultConfig()
	horizons := []int{80, 300}
	s := domainvirt.SchemeMPKVirt
	want := horizonRef(t, "tpcc", p, s, cfg, horizons)
	got, err := domainvirt.RunHorizons("tpcc", p, s, cfg, horizons, domainvirt.NewSnapshotCache())
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range horizons {
		if got[i] != want[i] {
			t.Errorf("tpcc at horizon %d:\n got: %+v\nwant: %+v", h, got[i], want[i])
		}
	}
}

// TestRunHorizonsSharesWarmup: the horizon pass must go through the
// shared warmup cache — one setup simulation, and a later RunCached cell
// for the same warmup identity forks instead of re-warming.
func TestRunHorizonsSharesWarmup(t *testing.T) {
	p := cacheParams()
	cfg := domainvirt.DefaultConfig()
	cache := domainvirt.NewSnapshotCache()
	if _, err := domainvirt.RunHorizons("avl", p, domainvirt.SchemeDomainVirt, cfg,
		[]int{200, 600}, cache); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Warmups != 1 {
		t.Errorf("horizon pass stats = %+v, want exactly 1 warmup", st)
	}
	if _, hit, err := domainvirt.RunCached("avl", p, domainvirt.SchemeDomainVirt, cfg, cache); err != nil {
		t.Fatal(err)
	} else if !hit {
		t.Error("RunCached missed the warmup the horizon pass built")
	}
}

// TestRunHorizonsPersistentResume is the cross-process referee for
// mid-run checkpoints: a second process re-running the sweep serves
// every horizon from disk with zero simulation, and a third process
// extending the ladder resumes from the deepest stored checkpoint —
// never re-simulating the shared prefix — while staying bit-identical
// to independent runs.
func TestRunHorizonsPersistentResume(t *testing.T) {
	dir := t.TempDir()
	p := cacheParams()
	cfg := domainvirt.DefaultConfig()
	s := domainvirt.SchemeDomainVirt
	horizons := []int{150, 400, 900}
	want := horizonRef(t, "avl", p, s, cfg, horizons)

	first, err := domainvirt.NewSnapshotCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := domainvirt.RunHorizons("avl", p, s, cfg, horizons, first)
	if err != nil {
		t.Fatal(err)
	}
	for i := range horizons {
		if got[i] != want[i] {
			t.Errorf("first process at horizon %d diverged", horizons[i])
		}
	}
	for _, h := range horizons {
		key := domainvirt.HorizonKeyFor("avl", p, s, cfg, h)
		if !first.HasStored(key) {
			t.Errorf("horizon %d checkpoint not persisted", h)
		}
	}

	// Second process, same ladder: all horizons from disk, no simulation.
	second, err := domainvirt.NewSnapshotCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := domainvirt.RunHorizons("avl", p, s, cfg, horizons, second)
	if err != nil {
		t.Fatal(err)
	}
	for i := range horizons {
		if got2[i] != want[i] {
			t.Errorf("second process at horizon %d diverged", horizons[i])
		}
	}
	if st := second.Stats(); st.Warmups != 0 || st.DiskHits != len(horizons) || st.DiskRejects != 0 {
		t.Errorf("second-process stats = %+v, want 0 warmups and %d disk hits", st, len(horizons))
	}

	// Third process extends the ladder: stored horizons come from disk,
	// and the new deepest one is simulated only from the 900-op
	// checkpoint onward (zero warmups — not even the setup phase runs on
	// a machine).
	extended := append(append([]int(nil), horizons...), 1400)
	wantExt := horizonRef(t, "avl", p, s, cfg, extended)
	third, err := domainvirt.NewSnapshotCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got3, err := domainvirt.RunHorizons("avl", p, s, cfg, extended, third)
	if err != nil {
		t.Fatal(err)
	}
	for i := range extended {
		if got3[i] != wantExt[i] {
			t.Errorf("resumed process at horizon %d:\n got: %+v\nwant: %+v",
				extended[i], got3[i], wantExt[i])
		}
	}
	if st := third.Stats(); st.Warmups != 0 || st.DiskHits != len(horizons) {
		t.Errorf("resume stats = %+v, want 0 warmups and %d disk hits", st, len(horizons))
	}

	// The resumed pass stored the new checkpoint: a fourth process with
	// the extended ladder is all disk hits.
	fourth, err := domainvirt.NewSnapshotCacheDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := domainvirt.RunHorizons("avl", p, s, cfg, extended, fourth); err != nil {
		t.Fatal(err)
	}
	if st := fourth.Stats(); st.Warmups != 0 || st.DiskHits != len(extended) {
		t.Errorf("fourth-process stats = %+v, want all %d horizons from disk", st, len(extended))
	}
}

// TestRunHorizonsValidation rejects malformed ladders.
func TestRunHorizonsValidation(t *testing.T) {
	p := cacheParams()
	cfg := domainvirt.DefaultConfig()
	for _, bad := range [][]int{nil, {}, {0, 100}, {-5}, {100, 100}, {300, 100}} {
		if _, err := domainvirt.RunHorizons("avl", p, domainvirt.SchemeBaseline, cfg, bad, nil); err == nil {
			t.Errorf("horizons %v accepted", bad)
		}
	}
}

// TestHorizonKeySensitivity: unlike warmup keys, mid-run checkpoint keys
// must move when any cost parameter moves — measured counters embed the
// cost model.
func TestHorizonKeySensitivity(t *testing.T) {
	p := cacheParams()
	cfgA := domainvirt.DefaultConfig()
	cfgB := cfgA
	cfgB.Costs.TLBInval = 572
	keyA := domainvirt.HorizonKeyFor("avl", p, domainvirt.SchemeDomainVirt, cfgA, 500)
	if k := domainvirt.HorizonKeyFor("avl", p, domainvirt.SchemeDomainVirt, cfgB, 500); k == keyA {
		t.Error("cost-only config change did not move the horizon key")
	}
	if k := domainvirt.HorizonKeyFor("avl", p, domainvirt.SchemeDomainVirt, cfgA, 501); k == keyA {
		t.Error("ops change did not move the horizon key")
	}
	opsOnly := p
	opsOnly.Ops = p.Ops * 3
	if k := domainvirt.HorizonKeyFor("avl", opsOnly, domainvirt.SchemeDomainVirt, cfgA, 500); k != keyA {
		t.Error("Params.Ops leaked into the horizon key; the horizon argument is the run length")
	}
}

// TestHorizonSweepExperiment smoke-tests the experiment wrapper against
// Fig.6-style per-horizon reference cells.
func TestHorizonSweepExperiment(t *testing.T) {
	opt := domainvirt.DefaultExpOptions()
	opt.Snapshots = domainvirt.NewSnapshotCache()
	p := cacheParams()
	horizons := []int{200, 600}
	rows, err := domainvirt.HorizonSweep(opt, "avl", p, horizons)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(horizons) {
		t.Fatalf("got %d rows, want %d", len(rows), len(horizons))
	}
	refP := p
	refP.Ops = horizons[1]
	res, err := domainvirt.RunSchemes("avl", refP, opt.Cfg,
		domainvirt.SchemeLowerbound, domainvirt.SchemeDomainVirt)
	if err != nil {
		t.Fatal(err)
	}
	wantPct := res[domainvirt.SchemeDomainVirt].OverheadPct(res[domainvirt.SchemeLowerbound])
	if rows[1].DomVirtPct != wantPct {
		t.Errorf("sweep row overhead %.6f, want %.6f", rows[1].DomVirtPct, wantPct)
	}
	if rows[1].Ops != horizons[1] {
		t.Errorf("row ops = %d, want %d", rows[1].Ops, horizons[1])
	}
}

// TestHorizonLadder pins the default ladder shape.
func TestHorizonLadder(t *testing.T) {
	hs := domainvirt.HorizonHorizonsFor(4000)
	if len(hs) == 0 || hs[len(hs)-1] != 4000 {
		t.Fatalf("ladder %v must end at the full budget", hs)
	}
	for i := 1; i < len(hs); i++ {
		if hs[i] <= hs[i-1] {
			t.Fatalf("ladder %v not ascending", hs)
		}
	}
}
