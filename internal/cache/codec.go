package cache

import (
	"fmt"
	"sort"

	"domainvirt/internal/bincodec"
)

// AppendTo appends the deterministic binary form of one cache's state.
func (s *CacheState) AppendTo(b []byte) []byte {
	b = bincodec.U32(b, uint32(len(s.lines)))
	for _, l := range s.lines {
		b = bincodec.U64(b, l.tag)
		b = bincodec.U8(b, uint8(l.state))
	}
	for _, v := range s.lru {
		b = bincodec.U32(b, v)
	}
	b = bincodec.U32(b, s.clock)
	b = bincodec.U64(b, s.hits)
	b = bincodec.U64(b, s.misses)
	return b
}

// DecodeCacheState reads a CacheState written by AppendTo.
func DecodeCacheState(r *bincodec.Reader) (*CacheState, error) {
	s := &CacheState{}
	n := r.Count(9 + 4) // line (9 bytes) + lru stamp per line
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s.lines = make([]line, n)
	for i := range s.lines {
		s.lines[i].tag = r.U64()
		s.lines[i].state = State(r.U8())
	}
	s.lru = make([]uint32, n)
	for i := range s.lru {
		s.lru[i] = r.U32()
	}
	s.clock = r.U32()
	s.hits = r.U64()
	s.misses = r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return s, nil
}

// AppendTo appends the deterministic binary form of the hierarchy state:
// per-core L1 states, the shared L2, the coherence directory in ascending
// block order, the per-core position memos, and the coherence statistics.
func (s *HierarchyState) AppendTo(b []byte) []byte {
	b = bincodec.U32(b, uint32(len(s.l1)))
	for _, c := range s.l1 {
		b = c.AppendTo(b)
	}
	b = s.l2.AppendTo(b)
	blocks := make([]uint64, 0, len(s.dir))
	for block := range s.dir {
		blocks = append(blocks, block)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	b = bincodec.U32(b, uint32(len(blocks)))
	for _, block := range blocks {
		de := s.dir[block]
		b = bincodec.U64(b, block)
		b = bincodec.U64(b, de.sharers)
		b = bincodec.U64(b, uint64(int64(de.owner)))
	}
	b = bincodec.U32(b, uint32(len(s.lastPos)))
	for _, p := range s.lastPos {
		b = bincodec.U64(b, uint64(int64(p)))
	}
	b = bincodec.U64(b, s.remoteInvals)
	b = bincodec.U64(b, s.dirtyFwds)
	return b
}

// DecodeHierarchyState reads a HierarchyState written by AppendTo.
func DecodeHierarchyState(r *bincodec.Reader) (*HierarchyState, error) {
	s := &HierarchyState{}
	ncores := r.Count(8)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s.l1 = make([]*CacheState, ncores)
	for i := range s.l1 {
		c, err := DecodeCacheState(r)
		if err != nil {
			return nil, err
		}
		s.l1[i] = c
	}
	l2, err := DecodeCacheState(r)
	if err != nil {
		return nil, err
	}
	s.l2 = l2
	ndir := r.Count(24)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s.dir = make(map[uint64]dirEntry, ndir)
	for i := 0; i < ndir; i++ {
		block := r.U64()
		s.dir[block] = dirEntry{
			sharers: r.U64(),
			owner:   int(int64(r.U64())),
		}
	}
	npos := r.Count(8)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	s.lastPos = make([]int, npos)
	for i := range s.lastPos {
		s.lastPos[i] = int(int64(r.U64()))
	}
	s.remoteInvals = r.U64()
	s.dirtyFwds = r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return s, nil
}
