// Package cache models a two-level cache hierarchy — per-core L1D caches
// over a shared L2 — kept coherent with a directory-based MESI protocol,
// per the paper's Table II configuration (L1D 32 KB 8-way 1 cycle; L2 1 MB
// 16-way 8 cycles; directory-based MESI).
package cache

import (
	"domainvirt/internal/memlayout"
)

// BlockShift is log2 of the cache block size (64 bytes).
const BlockShift = 6

// BlockOf returns the block address (block-aligned) of pa.
func BlockOf(pa memlayout.PA) uint64 { return uint64(pa) >> BlockShift }

// State is a MESI coherence state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
	Latency   uint64
}

// line is one cache line (tag-only; the model tracks addresses, not data).
type line struct {
	tag   uint64
	state State
}

// Cache is one set-associative tag-only cache. Lines and recency stamps
// live in flat set-major arrays (set s, way w at index s*ways+w): one
// bounds check and no per-set slice-header chase on the lookup scans
// that dominate the simulator's hot path.
type Cache struct {
	lines   []line
	lru     []uint32
	clock   uint32
	ways    int
	setMask uint64

	hits   uint64
	misses uint64
}

// New constructs a cache from cfg.
func New(cfg Config) *Cache {
	blocks := cfg.SizeBytes >> BlockShift
	if cfg.Ways <= 0 || blocks <= 0 || blocks%cfg.Ways != 0 {
		panic("cache: invalid geometry")
	}
	nsets := blocks / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	return &Cache{
		lines:   make([]line, blocks),
		lru:     make([]uint32, blocks),
		ways:    cfg.Ways,
		setMask: uint64(nsets - 1),
	}
}

// baseOf returns the flat index of way 0 of block's set.
func (c *Cache) baseOf(block uint64) int { return int(block&c.setMask) * c.ways }

// Probe looks up block, returning its state without changing recency.
func (c *Cache) Probe(block uint64) (State, bool) {
	base := c.baseOf(block)
	set := c.lines[base : base+c.ways]
	for w := range set {
		if set[w].state != Invalid && set[w].tag == block {
			return set[w].state, true
		}
	}
	return Invalid, false
}

// Touch looks up block and refreshes recency; returns hit state.
func (c *Cache) Touch(block uint64) (State, bool) {
	st, _, hit := c.TouchPos(block)
	return st, hit
}

// TouchPos is Touch returning, additionally, the flat line index of the
// hit so the caller can update its state via SetStateAt without a second
// scan.
func (c *Cache) TouchPos(block uint64) (State, int, bool) {
	base := c.baseOf(block)
	set := c.lines[base : base+c.ways]
	for w := range set {
		if set[w].state != Invalid && set[w].tag == block {
			c.clock++
			c.lru[base+w] = c.clock
			c.hits++
			return set[w].state, base + w, true
		}
	}
	c.misses++
	return Invalid, 0, false
}

// TouchAt revalidates a previously observed hit position: if pos still
// holds a live line for block it replays exactly the bookkeeping a
// TouchPos hit performs (recency refresh, hit count) and returns the
// state. Any staleness — the line evicted, invalidated, or replaced —
// returns false with no state change (no miss is counted), so callers
// fall back to a full TouchPos. A tag equal to block can only live in
// block's own set and in at most one way of it, so the position check is
// a complete hit test.
func (c *Cache) TouchAt(pos int, block uint64) (State, bool) {
	if pos < 0 || pos >= len(c.lines) {
		return Invalid, false
	}
	ln := &c.lines[pos]
	if ln.state == Invalid || ln.tag != block {
		return Invalid, false
	}
	c.clock++
	c.lru[pos] = c.clock
	c.hits++
	return ln.state, true
}

// SetState updates the state of block if present.
func (c *Cache) SetState(block uint64, s State) {
	base := c.baseOf(block)
	set := c.lines[base : base+c.ways]
	for w := range set {
		if set[w].state != Invalid && set[w].tag == block {
			set[w].state = s
			return
		}
	}
}

// SetStateAt updates the line at a flat index previously returned by
// TouchPos for the same block, skipping the set rescan.
func (c *Cache) SetStateAt(idx int, s State) { c.lines[idx].state = s }

// Fill inserts block with state s, returning the evicted block (if any)
// and whether it was dirty (Modified).
func (c *Cache) Fill(block uint64, s State) (victim uint64, dirty, evicted bool) {
	base := c.baseOf(block)
	set := c.lines[base : base+c.ways]
	way := -1
	for w := range set {
		if set[w].state != Invalid && set[w].tag == block {
			way = w
			break
		}
	}
	if way < 0 {
		for w := range set {
			if set[w].state == Invalid {
				way = w
				break
			}
		}
	}
	if way < 0 {
		way = 0
		oldest := c.lru[base]
		for w := 1; w < c.ways; w++ {
			if c.lru[base+w] < oldest {
				oldest = c.lru[base+w]
				way = w
			}
		}
		victim = set[way].tag
		dirty = set[way].state == Modified
		evicted = true
	}
	set[way] = line{tag: block, state: s}
	c.clock++
	c.lru[base+way] = c.clock
	return victim, dirty, evicted
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }

// CacheState is a deep copy of one Cache's mutable state. It is immutable
// once taken: Restore copies out of it, so one state can seed many caches.
type CacheState struct {
	lines  []line
	lru    []uint32
	clock  uint32
	hits   uint64
	misses uint64
}

// Snapshot captures the cache's lines, recency state, and statistics.
func (c *Cache) Snapshot() *CacheState {
	s := &CacheState{}
	c.SnapshotInto(s)
	return s
}

// SnapshotInto overwrites s with a fresh snapshot, reusing s's storage
// when the geometry matches — the pooled-buffer path for snapshot-heavy
// sweeps. The caller must no longer be restoring from the old contents.
func (c *Cache) SnapshotInto(s *CacheState) {
	if len(s.lines) != len(c.lines) {
		s.lines = make([]line, len(c.lines))
		s.lru = make([]uint32, len(c.lru))
	}
	copy(s.lines, c.lines)
	copy(s.lru, c.lru)
	s.clock = c.clock
	s.hits = c.hits
	s.misses = c.misses
}

// Restore reinstates a snapshot taken from a cache of identical geometry,
// reusing the receiver's storage. It panics on a geometry mismatch.
func (c *Cache) Restore(s *CacheState) {
	if len(s.lines) != len(c.lines) {
		panic("cache: Restore geometry mismatch")
	}
	copy(c.lines, s.lines)
	copy(c.lru, s.lru)
	c.clock = s.clock
	c.hits = s.hits
	c.misses = s.misses
}
