// Package cache models a two-level cache hierarchy — per-core L1D caches
// over a shared L2 — kept coherent with a directory-based MESI protocol,
// per the paper's Table II configuration (L1D 32 KB 8-way 1 cycle; L2 1 MB
// 16-way 8 cycles; directory-based MESI).
package cache

import (
	"domainvirt/internal/memlayout"
)

// BlockShift is log2 of the cache block size (64 bytes).
const BlockShift = 6

// BlockOf returns the block address (block-aligned) of pa.
func BlockOf(pa memlayout.PA) uint64 { return uint64(pa) >> BlockShift }

// State is a MESI coherence state.
type State uint8

// MESI states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// Config describes one cache level.
type Config struct {
	SizeBytes int
	Ways      int
	Latency   uint64
}

// line is one cache line (tag-only; the model tracks addresses, not data).
type line struct {
	tag   uint64
	state State
}

// Cache is one set-associative tag-only cache.
type Cache struct {
	sets    [][]line
	lru     [][]uint32
	clock   uint32
	ways    int
	setMask uint64

	hits   uint64
	misses uint64
}

// New constructs a cache from cfg.
func New(cfg Config) *Cache {
	blocks := cfg.SizeBytes >> BlockShift
	if cfg.Ways <= 0 || blocks <= 0 || blocks%cfg.Ways != 0 {
		panic("cache: invalid geometry")
	}
	nsets := blocks / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic("cache: set count must be a power of two")
	}
	c := &Cache{
		sets:    make([][]line, nsets),
		lru:     make([][]uint32, nsets),
		ways:    cfg.Ways,
		setMask: uint64(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Ways)
		c.lru[i] = make([]uint32, cfg.Ways)
	}
	return c
}

func (c *Cache) setOf(block uint64) int { return int(block & c.setMask) }

// Probe looks up block, returning its state without changing recency.
func (c *Cache) Probe(block uint64) (State, bool) {
	set := c.sets[c.setOf(block)]
	for w := range set {
		if set[w].state != Invalid && set[w].tag == block {
			return set[w].state, true
		}
	}
	return Invalid, false
}

// Touch looks up block and refreshes recency; returns hit state.
func (c *Cache) Touch(block uint64) (State, bool) {
	si := c.setOf(block)
	set := c.sets[si]
	for w := range set {
		if set[w].state != Invalid && set[w].tag == block {
			c.clock++
			c.lru[si][w] = c.clock
			c.hits++
			return set[w].state, true
		}
	}
	c.misses++
	return Invalid, false
}

// SetState updates the state of block if present.
func (c *Cache) SetState(block uint64, s State) {
	si := c.setOf(block)
	set := c.sets[si]
	for w := range set {
		if set[w].state != Invalid && set[w].tag == block {
			if s == Invalid {
				set[w].state = Invalid
			} else {
				set[w].state = s
			}
			return
		}
	}
}

// Fill inserts block with state s, returning the evicted block (if any)
// and whether it was dirty (Modified).
func (c *Cache) Fill(block uint64, s State) (victim uint64, dirty, evicted bool) {
	si := c.setOf(block)
	set := c.sets[si]
	way := -1
	for w := range set {
		if set[w].state != Invalid && set[w].tag == block {
			way = w
			break
		}
	}
	if way < 0 {
		for w := range set {
			if set[w].state == Invalid {
				way = w
				break
			}
		}
	}
	if way < 0 {
		way = 0
		oldest := c.lru[si][0]
		for w := 1; w < c.ways; w++ {
			if c.lru[si][w] < oldest {
				oldest = c.lru[si][w]
				way = w
			}
		}
		victim = set[way].tag
		dirty = set[way].state == Modified
		evicted = true
	}
	set[way] = line{tag: block, state: s}
	c.clock++
	c.lru[si][way] = c.clock
	return victim, dirty, evicted
}

// Stats returns (hits, misses).
func (c *Cache) Stats() (hits, misses uint64) { return c.hits, c.misses }
