package cache

import (
	"testing"

	"domainvirt/internal/mem"
	"domainvirt/internal/memlayout"
)

func testMem() *mem.Memory { return mem.New(mem.DefaultConfig()) }

func smallHierarchy(cores int) *Hierarchy {
	return NewHierarchy(cores,
		Config{SizeBytes: 1 << 10, Ways: 2, Latency: 1},
		Config{SizeBytes: 8 << 10, Ways: 4, Latency: 8},
		testMem())
}

func TestCacheFillTouch(t *testing.T) {
	c := New(Config{SizeBytes: 1 << 10, Ways: 2, Latency: 1})
	if _, hit := c.Touch(42); hit {
		t.Fatal("cold cache hit")
	}
	c.Fill(42, Shared)
	if st, hit := c.Touch(42); !hit || st != Shared {
		t.Fatalf("Touch = (%v,%v)", st, hit)
	}
	h, m := c.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", h, m)
	}
}

func TestCacheEvictionDirty(t *testing.T) {
	// 1KB, 2-way, 64B blocks => 8 sets. Blocks with the same low 3 bits
	// collide.
	c := New(Config{SizeBytes: 1 << 10, Ways: 2, Latency: 1})
	c.Fill(0x00, Modified)
	c.Fill(0x08, Shared)
	v, dirty, ev := c.Fill(0x10, Exclusive)
	if !ev || v != 0x00 || !dirty {
		t.Errorf("Fill eviction = (%#x,%v,%v), want dirty 0x00", v, dirty, ev)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := smallHierarchy(1)
	pa := memlayout.PA(0x1000)
	lat, lvl := h.Access(0, pa, false)
	if lvl != LevelMem {
		t.Fatalf("first access level = %v, want memory", lvl)
	}
	if lat != 1+8+120 { // L1 + L2 + DRAM
		t.Errorf("miss latency = %d, want 129", lat)
	}
	lat, lvl = h.Access(0, pa, false)
	if lvl != LevelL1 || lat != 1 {
		t.Errorf("second access = (%d,%v), want (1,L1)", lat, lvl)
	}
}

func TestHierarchyNVMLatency(t *testing.T) {
	h := smallHierarchy(1)
	nvmPA := memlayout.PA(2) << 40 // above the NVM split
	lat, _ := h.Access(0, nvmPA, false)
	if lat != 1+8+360 {
		t.Errorf("NVM miss latency = %d, want 369", lat)
	}
}

func TestMESIWriteInvalidatesSharers(t *testing.T) {
	h := smallHierarchy(2)
	pa := memlayout.PA(0x2000)
	h.Access(0, pa, false) // core 0 shares
	h.Access(1, pa, false) // core 1 shares
	h.Access(0, pa, true)  // core 0 writes: must invalidate core 1
	_, _, _, _, invals, _ := h.Stats()
	if invals == 0 {
		t.Fatal("write to shared block caused no remote invalidation")
	}
	// Core 1's next read misses its L1 (it was invalidated).
	_, lvl := h.Access(1, pa, false)
	if lvl == LevelL1 {
		t.Error("core 1 hit L1 after invalidation")
	}
}

func TestMESIDirtyForwarding(t *testing.T) {
	h := smallHierarchy(2)
	pa := memlayout.PA(0x3000)
	h.Access(0, pa, true) // core 0 holds Modified
	_, lvl := h.Access(1, pa, false)
	if lvl == LevelMem {
		t.Error("read of remote-dirty block went to memory instead of forwarding")
	}
	_, _, _, _, _, fwds := h.Stats()
	if fwds != 1 {
		t.Errorf("dirty forwards = %d, want 1", fwds)
	}
}

func TestMESIWriteAfterWrite(t *testing.T) {
	h := smallHierarchy(2)
	pa := memlayout.PA(0x4000)
	h.Access(0, pa, true)
	h.Access(1, pa, true) // ownership must migrate
	// Core 0 re-reads: must not hit a stale Modified line.
	_, lvl := h.Access(0, pa, false)
	if lvl == LevelL1 {
		t.Error("core 0 L1 hit on a line core 1 now owns")
	}
}

func TestSingleWriterInvariant(t *testing.T) {
	// After any interleaving, at most one L1 holds a block in Modified.
	h := smallHierarchy(4)
	pa := memlayout.PA(0x5000)
	pattern := []struct {
		core  int
		write bool
	}{{0, true}, {1, false}, {2, true}, {3, true}, {1, true}, {0, false}}
	for _, s := range pattern {
		h.Access(s.core, pa, s.write)
		owners := 0
		for c := 0; c < 4; c++ {
			if st, ok := h.l1[c].Probe(BlockOf(pa)); ok && st == Modified {
				owners++
			}
		}
		if owners > 1 {
			t.Fatalf("%d simultaneous Modified owners after %+v", owners, s)
		}
	}
}
