package cache

import (
	"domainvirt/internal/memlayout"
)

// MemBackend supplies memory latency for blocks that miss the hierarchy.
type MemBackend interface {
	Access(pa memlayout.PA, write bool) uint64
}

// Hierarchy is per-core L1Ds over a shared L2 with a directory-based MESI
// protocol. The directory sits alongside the L2 and tracks which cores hold
// each block; it is used to invalidate remote copies on writes and to
// source dirty data from a remote Modified owner.
type Hierarchy struct {
	l1   []*Cache
	l2   *Cache
	dir  map[uint64]*dirEntry
	mem  MemBackend
	l1La uint64
	l2La uint64

	// lastPos memoizes, per core, the flat L1 position of the most recent
	// hit. Cache.TouchAt revalidates it before use, so a stale position
	// only costs the fallback scan — it can never change an outcome.
	lastPos []int

	remoteInvals uint64
	dirtyFwds    uint64
}

type dirEntry struct {
	sharers uint64 // bitmask of cores with the block in L1
	owner   int    // core holding Modified, or -1
}

// NewHierarchy builds the cache hierarchy for ncores cores.
func NewHierarchy(ncores int, l1cfg, l2cfg Config, mem MemBackend) *Hierarchy {
	h := &Hierarchy{
		l2:   New(l2cfg),
		dir:  make(map[uint64]*dirEntry),
		mem:  mem,
		l1La: l1cfg.Latency,
		l2La: l2cfg.Latency,
	}
	for i := 0; i < ncores; i++ {
		h.l1 = append(h.l1, New(l1cfg))
		h.lastPos = append(h.lastPos, -1)
	}
	return h
}

// Level identifies where an access was satisfied.
type Level int

// Access levels.
const (
	LevelL1 Level = iota
	LevelL2
	LevelMem
)

// Access performs a load or store by core to pa and returns the latency in
// cycles and the level that satisfied it.
//
// On a single-core machine all directory maintenance is skipped: every
// directory consumer (remote invalidation, dirty forwarding, sharer
// tracking) is cross-core, so with one core the directory can never add
// latency or change any observable statistic.
func (h *Hierarchy) Access(core int, pa memlayout.PA, write bool) (uint64, Level) {
	block := BlockOf(pa)
	l1 := h.l1[core]
	lat := h.l1La
	single := len(h.l1) == 1

	st, hit := l1.TouchAt(h.lastPos[core], block)
	pos := h.lastPos[core]
	if !hit {
		st, pos, hit = l1.TouchPos(block)
		if hit {
			h.lastPos[core] = pos
		}
	}
	if hit {
		if write {
			if st != Modified {
				l1.SetStateAt(pos, Modified)
			}
			if !single {
				de := h.dir[block]
				if st == Shared {
					// Upgrade: invalidate other sharers via the directory.
					lat += h.invalidateOthers(core, block, de)
				}
				// Record ownership so later readers dirty-forward from us.
				if de != nil {
					de.sharers = 1 << uint(core)
					de.owner = core
				}
			}
		}
		return lat, LevelL1
	}

	// L1 miss: consult shared L2 + directory. The directory entry is
	// fetched once; no path below can add or remove dir[block] (L1/L2
	// fill victims are always other blocks), so the pointer stays valid.
	lat += h.l2La
	var de *dirEntry
	if !single {
		de = h.dir[block]
		if de != nil && de.owner >= 0 && de.owner != core {
			// Dirty in a remote L1: force writeback to L2 and transfer.
			h.l1[de.owner].SetState(block, Shared)
			h.dirtyFwds++
			lat += h.l2La
			de.sharers |= 1 << uint(de.owner)
			de.owner = -1
			h.l2.Fill(block, Modified)
		}
	}

	level := LevelL2
	if _, hit := h.l2.Touch(block); !hit {
		lat += h.mem.Access(pa, false)
		level = LevelMem
		if v, dirty, ev := h.l2.Fill(block, Exclusive); ev {
			// Inclusive hierarchy: back-invalidate L1 copies of the victim.
			h.backInvalidate(v)
			if dirty {
				lat += h.mem.Access(memlayout.PA(v<<BlockShift), true)
			}
		}
	}

	st = Shared
	if write {
		if !single {
			lat += h.invalidateOthers(core, block, de)
		}
		st = Modified
	}
	if v, dirty, ev := l1.Fill(block, st); ev {
		if !single {
			h.dropSharer(core, v)
		}
		if dirty {
			h.l2.Fill(v, Modified)
		}
	}

	if !single {
		if de == nil {
			de = &dirEntry{owner: -1}
			h.dir[block] = de
		}
		if write {
			de.sharers = 1 << uint(core)
			de.owner = core
		} else {
			de.sharers |= 1 << uint(core)
			if de.owner == core {
				de.owner = -1
			}
		}
	}
	return lat, level
}

// invalidateOthers removes all remote L1 copies of block (whose directory
// entry the caller already fetched) and returns the extra latency of the
// invalidation round.
func (h *Hierarchy) invalidateOthers(core int, block uint64, de *dirEntry) uint64 {
	if de == nil {
		return 0
	}
	var lat uint64
	for c := range h.l1 {
		if c == core {
			continue
		}
		if de.sharers&(1<<uint(c)) != 0 {
			h.l1[c].SetState(block, Invalid)
			h.remoteInvals++
			lat += h.l2La // one directory round per remote copy
		}
	}
	de.sharers = 1 << uint(core)
	if de.owner != core {
		de.owner = -1
	}
	return lat
}

// backInvalidate removes block from every L1 (inclusion victim).
func (h *Hierarchy) backInvalidate(block uint64) {
	for c := range h.l1 {
		h.l1[c].SetState(block, Invalid)
	}
	delete(h.dir, block)
}

func (h *Hierarchy) dropSharer(core int, block uint64) {
	if de := h.dir[block]; de != nil {
		de.sharers &^= 1 << uint(core)
		if de.owner == core {
			de.owner = -1
		}
		if de.sharers == 0 {
			delete(h.dir, block)
		}
	}
}

// HierarchyState is a deep copy of the hierarchy's mutable state: every
// cache level, the coherence directory, the per-core position memos, and
// the coherence statistics. It is immutable once taken.
type HierarchyState struct {
	l1           []*CacheState
	l2           *CacheState
	dir          map[uint64]dirEntry
	lastPos      []int
	remoteInvals uint64
	dirtyFwds    uint64
}

// Snapshot captures the full hierarchy state.
func (h *Hierarchy) Snapshot() *HierarchyState {
	s := &HierarchyState{}
	h.SnapshotInto(s)
	return s
}

// SnapshotInto overwrites s with a fresh snapshot, reusing s's storage
// when the geometry matches (the pooled-buffer path).
func (h *Hierarchy) SnapshotInto(s *HierarchyState) {
	if len(s.l1) != len(h.l1) {
		s.l1 = make([]*CacheState, len(h.l1))
		for i := range s.l1 {
			s.l1[i] = &CacheState{}
		}
		s.l2 = &CacheState{}
		s.lastPos = make([]int, len(h.lastPos))
	}
	for i, c := range h.l1 {
		c.SnapshotInto(s.l1[i])
	}
	h.l2.SnapshotInto(s.l2)
	if s.dir == nil {
		s.dir = make(map[uint64]dirEntry, len(h.dir))
	} else {
		clear(s.dir)
	}
	for block, de := range h.dir {
		s.dir[block] = *de
	}
	copy(s.lastPos, h.lastPos)
	s.remoteInvals = h.remoteInvals
	s.dirtyFwds = h.dirtyFwds
}

// Restore reinstates a snapshot taken from a hierarchy of identical
// geometry (same core count and cache configurations).
func (h *Hierarchy) Restore(s *HierarchyState) {
	if len(s.l1) != len(h.l1) {
		panic("cache: Restore core-count mismatch")
	}
	for i, c := range h.l1 {
		c.Restore(s.l1[i])
	}
	h.l2.Restore(s.l2)
	clear(h.dir)
	for block, de := range s.dir {
		e := de
		h.dir[block] = &e
	}
	copy(h.lastPos, s.lastPos)
	h.remoteInvals = s.remoteInvals
	h.dirtyFwds = s.dirtyFwds
}

// Stats returns per-level hit statistics: L1 hits/misses summed across
// cores, L2 hits/misses, remote invalidations, dirty forwards.
func (h *Hierarchy) Stats() (l1h, l1m, l2h, l2m, invals, fwds uint64) {
	for _, c := range h.l1 {
		hh, mm := c.Stats()
		l1h += hh
		l1m += mm
	}
	l2h, l2m = h.l2.Stats()
	return l1h, l1m, l2h, l2m, h.remoteInvals, h.dirtyFwds
}
