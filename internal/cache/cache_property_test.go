package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"domainvirt/internal/mem"
	"domainvirt/internal/memlayout"
)

// TestCacheMatchesLRUReference drives a single cache with random traffic
// and checks hit/miss decisions against an exact LRU reference model.
func TestCacheMatchesLRUReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const (
			sizeBytes = 4 << 10
			ways      = 4
		)
		c := New(Config{SizeBytes: sizeBytes, Ways: ways, Latency: 1})
		nsets := sizeBytes / 64 / ways

		// Reference: per-set list of blocks in recency order (front =
		// most recent).
		ref := make([][]uint64, nsets)
		refHas := func(set int, b uint64) bool {
			for _, x := range ref[set] {
				if x == b {
					return true
				}
			}
			return false
		}
		refTouch := func(set int, b uint64) {
			for i, x := range ref[set] {
				if x == b {
					ref[set] = append(ref[set][:i], ref[set][i+1:]...)
					break
				}
			}
			ref[set] = append([]uint64{b}, ref[set]...)
			if len(ref[set]) > ways {
				ref[set] = ref[set][:ways]
			}
		}

		for i := 0; i < 4000; i++ {
			block := uint64(rng.Intn(nsets * ways * 3)) // 3x capacity: misses guaranteed
			set := int(block) % nsets
			_, hit := c.Touch(block)
			if hit != refHas(set, block) {
				return false
			}
			if !hit {
				c.Fill(block, Shared)
			}
			refTouch(set, block)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

// TestHierarchyCoherenceFuzz hammers the MESI hierarchy with random
// multicore traffic and checks the global invariants after every step:
// at most one Modified copy of any block, and never Modified alongside
// Shared copies.
func TestHierarchyCoherenceFuzz(t *testing.T) {
	const cores = 4
	h := NewHierarchy(cores,
		Config{SizeBytes: 1 << 10, Ways: 2, Latency: 1},
		Config{SizeBytes: 8 << 10, Ways: 4, Latency: 8},
		mem.New(mem.DefaultConfig()))
	rng := rand.New(rand.NewSource(11))
	blocks := make([]memlayout.PA, 32)
	for i := range blocks {
		blocks[i] = memlayout.PA(0x10000 + i*64)
	}
	for step := 0; step < 20000; step++ {
		pa := blocks[rng.Intn(len(blocks))]
		coreID := rng.Intn(cores)
		h.Access(coreID, pa, rng.Intn(3) == 0)

		b := BlockOf(pa)
		owners, sharers := 0, 0
		for c := 0; c < cores; c++ {
			if st, ok := h.l1[c].Probe(b); ok {
				switch st {
				case Modified:
					owners++
				case Shared, Exclusive:
					sharers++
				}
			}
		}
		if owners > 1 {
			t.Fatalf("step %d: %d Modified owners of block %#x", step, owners, b)
		}
		if owners == 1 && sharers > 0 {
			t.Fatalf("step %d: Modified alongside %d sharers for block %#x", step, sharers, b)
		}
	}
}
