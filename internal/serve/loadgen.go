package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"domainvirt/internal/obs"
	"domainvirt/internal/reqtrace"
)

// LoadOptions configures a load run against a pmod daemon or a
// pmorouter front end: Clients independent connections issuing a
// ReadFraction/write mix until Duration elapses.
//
// The zero value of the cluster knobs reproduces the original
// single-node behavior: each client owns one private pool and runs
// closed-loop scalar requests. Pools > 0 switches to a shared keyspace
// (the cluster shape): sessions pick a pool by Zipf-skewed draw, the
// client identity is the pool name (so the store's owner-only namespace
// admits every writer of that pool), and exclusive-writer ATTACH
// conflicts are counted and re-picked rather than failed.
type LoadOptions struct {
	Addr         string
	Clients      int
	Duration     time.Duration
	ReadFraction float64 // of ops, [0,1]
	TxFraction   float64 // of writes issued as TX_COMMIT, [0,1]
	ValueSize    int     // bytes per write / read span
	PoolSize     uint64  // session pool size
	// Seed derives every client's plan RNG. Two runs with equal options
	// and Seed draw identical op sequences (offsets, mixes, pool picks,
	// churn points, arrival spacing); only scheduling jitter differs.
	Seed int64
	// FetchTrace drains the daemon's retained request spans (TRACE op)
	// after the run and aggregates them into LoadReport.Trace, giving
	// the client-side summary its queue-wait vs service-time
	// attribution. Requires the daemon to run with tracing enabled;
	// silently skipped otherwise.
	FetchTrace bool

	// Pools > 0 sizes the shared pool keyspace (cluster mode).
	Pools int
	// ZipfS skews pool popularity: s > 1 draws from a Zipf(s)
	// distribution (hot keys), anything else is uniform. Ignored unless
	// Pools > 0.
	ZipfS float64
	// Churn is the per-iteration probability that a client CLOSEs its
	// session and opens a new one (new pool pick in cluster mode) —
	// the arrive/depart behavior that exercises session re-routing.
	Churn float64
	// Rate > 0 switches to open-loop arrivals at this aggregate ops/sec
	// target, exponentially spaced per client (Poisson). Latency is then
	// measured from the scheduled arrival, so queueing delay under
	// overload is visible instead of hidden by coordinated omission.
	Rate float64
	// Batch > 1 pipelines that many ops per v2 BATCH frame — one
	// network round trip per Batch ops. Requires a v2 peer.
	Batch int
	// IOTimeout bounds each round trip's socket I/O (Client.SetTimeout);
	// 0 = block forever.
	IOTimeout time.Duration
	// TolerateUnavailable counts typed UNAVAILABLE/DRAINING answers
	// (a cluster backend down or shutting down) instead of failing the
	// client, re-picking a session after backoff. This is what lets a
	// kill-a-node drill assert "zero errors" while a node is away.
	TolerateUnavailable bool

	// NodeNames plus NodeOf attribute per-op results to cluster nodes:
	// NodeOf maps a pool name to an index into NodeNames (the router's
	// placement function). Leave nil for a single-node run.
	NodeNames []string
	NodeOf    func(pool string) int
}

func (o *LoadOptions) withDefaults() LoadOptions {
	v := *o
	if v.Clients <= 0 {
		v.Clients = 50
	}
	if v.Duration <= 0 {
		v.Duration = 2 * time.Second
	}
	if v.ReadFraction < 0 || v.ReadFraction > 1 {
		v.ReadFraction = 0.7
	}
	if v.TxFraction < 0 || v.TxFraction > 1 {
		v.TxFraction = 0.1
	}
	if v.ValueSize <= 0 {
		v.ValueSize = 128
	}
	if v.PoolSize == 0 {
		v.PoolSize = 1 << 20
	}
	if v.Batch < 1 {
		v.Batch = 1
	}
	if v.Batch > MaxBatch {
		v.Batch = MaxBatch
	}
	if v.NodeOf == nil {
		v.NodeNames = nil
	}
	return v
}

// NodeLoad is one cluster node's share of a load run, attributed by
// pool placement.
type NodeLoad struct {
	Name        string
	Ops         uint64
	Errors      uint64
	Unavailable uint64
	Latency     obs.Histogram
}

// LoadReport is the outcome of one load run. Latency reuses the obs
// layer's mergeable log2 histogram (nanoseconds), so percentiles come
// from the same machinery as the simulator's cycle histograms.
type LoadReport struct {
	Clients  int
	Elapsed  time.Duration
	Ops      uint64
	Reads    uint64
	Writes   uint64
	Txs      uint64
	Batches  uint64 // BATCH frames sent (Batch > 1)
	Retries  uint64 // RETRY backpressure responses absorbed
	Evicted  uint64 // sessions re-opened after idle eviction
	Churns   uint64 // voluntary session close/re-open cycles
	Conflicts uint64 // exclusive-writer ATTACH conflicts re-picked
	// Unavailable counts typed UNAVAILABLE/DRAINING answers absorbed
	// under TolerateUnavailable (a cluster backend down mid-run).
	Unavailable uint64
	Errors      uint64 // protocol or transport errors (excluding retries)
	FirstErr    string
	// IsolationViolations counts reads whose bytes belong to another
	// pool's write pattern — any nonzero value means the server (or the
	// router) mixed sessions.
	IsolationViolations uint64
	Latency             obs.Histogram
	// PerNode breaks the run down by owning cluster node (nil unless
	// NodeNames/NodeOf were set).
	PerNode []NodeLoad
	// Trace is the daemon-side stage breakdown aggregated from the
	// retained request spans (nil unless FetchTrace was set and the
	// daemon traced the run).
	Trace *reqtrace.Breakdown
}

// Throughput returns completed ops/second.
func (r *LoadReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// clientPattern is the byte every write of private pool i carries;
// reads must only ever observe zero (never-written) or the session's
// own pattern.
func clientPattern(i int) byte { return byte(0x11 + i%229) }

// poolPattern is clientPattern keyed by shared-pool index: concurrent
// writers of one pool agree on the byte, so only cross-pool leakage
// trips the isolation check.
func poolPattern(k int) byte { return byte(0x11 + k%229) }

// PoolName renders shared-pool index k's canonical name — also the
// client identity its sessions HELLO with, which is what makes the
// owner-only pool namespace admit every session of that pool.
func PoolName(k int) string { return fmt.Sprintf("pool-%05d", k) }

// RunLoad drives a daemon (or router) with Clients concurrent
// connections and aggregates their counts and latency histograms.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	o := opts.withDefaults()
	rep := &LoadReport{Clients: o.Clients}
	for _, n := range o.NodeNames {
		rep.PerNode = append(rep.PerNode, NodeLoad{Name: n})
	}
	var (
		mu       sync.Mutex
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(o.Duration)
	for i := 0; i < o.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local, err := runClient(i, o, deadline)
			if err != nil && firstErr.Load() == nil {
				firstErr.Store(err.Error())
			}
			mu.Lock()
			rep.Ops += local.Ops
			rep.Reads += local.Reads
			rep.Writes += local.Writes
			rep.Txs += local.Txs
			rep.Batches += local.Batches
			rep.Retries += local.Retries
			rep.Evicted += local.Evicted
			rep.Churns += local.Churns
			rep.Conflicts += local.Conflicts
			rep.Unavailable += local.Unavailable
			rep.Errors += local.Errors
			rep.IsolationViolations += local.IsolationViolations
			rep.Latency.Merge(&local.Latency)
			for n := range local.PerNode {
				dst := &rep.PerNode[n]
				src := &local.PerNode[n]
				dst.Ops += src.Ops
				dst.Errors += src.Errors
				dst.Unavailable += src.Unavailable
				dst.Latency.Merge(&src.Latency)
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	if msg, ok := firstErr.Load().(string); ok {
		rep.FirstErr = msg
	}
	if o.FetchTrace {
		rep.Trace = FetchTraceBreakdown(o.Addr)
	}
	return rep, nil
}

// FetchTraceBreakdown drains the daemon's retained spans over one extra
// connection and aggregates them; nil when the daemon has tracing
// disabled, is unreachable, or retained nothing.
func FetchTraceBreakdown(addr string) *reqtrace.Breakdown {
	cl, err := Dial(addr)
	if err != nil {
		return nil
	}
	defer cl.Close()
	raw, err := cl.Trace()
	if err != nil || len(raw) == 0 {
		return nil
	}
	recs, err := reqtrace.ParseSpansJSONL(bytes.NewReader(raw))
	if err != nil || len(recs) == 0 {
		return nil
	}
	return reqtrace.Aggregate(recs)
}

// loadClient is one load connection's state: its deterministic plan
// RNG, its current session, and its local tallies.
type loadClient struct {
	i        int
	o        *LoadOptions
	deadline time.Time
	cl       *Client
	local    *LoadReport

	// plan drives every load-shaping decision (pool picks, op mix,
	// offsets, churn, arrival spacing) so a Seed replays the same plan;
	// jitter drives only backoff sleeps, which must not perturb it.
	plan   *rand.Rand
	jitter *rand.Rand
	zipf   *rand.Zipf

	pool    string
	node    int // index into o.NodeNames, or -1
	pat     byte
	value   []byte
	span    uint64
	holding bool // a session is (believed) open

	// open-loop arrival schedule
	interval time.Duration
	next     time.Time

	// batch-mode scratch, reused across iterations
	reqs  []*Request
	resps []Response
	txw   []TxWrite
}

// errLoadDeadline ends a client quietly when setup retries run past the
// run deadline.
var errLoadDeadline = errors.New("serve: load deadline reached")

// runClient is one load connection: dial, establish a session, then a
// randomized op mix until the deadline. Retries back off; idle
// evictions and (under TolerateUnavailable) node outages re-establish
// the session transparently.
func runClient(i int, o LoadOptions, deadline time.Time) (*LoadReport, error) {
	c := &loadClient{
		i:        i,
		o:        &o,
		deadline: deadline,
		local:    &LoadReport{},
		plan:     rand.New(rand.NewSource(o.Seed + int64(i)*7919)),
		jitter:   rand.New(rand.NewSource(o.Seed ^ 0x5deece66d ^ int64(i)<<17)),
		node:     -1,
		value:    make([]byte, o.ValueSize),
	}
	for n := range o.NodeNames {
		c.local.PerNode = append(c.local.PerNode, NodeLoad{Name: o.NodeNames[n]})
	}
	if o.Pools > 0 && o.ZipfS > 1 {
		c.zipf = rand.NewZipf(c.plan, o.ZipfS, 1, uint64(o.Pools-1))
	}
	// Keep clear of the pool header + redo-log area.
	const dataBase = 256 << 10
	if o.PoolSize <= dataBase+uint64(o.ValueSize) {
		c.local.Errors++
		return c.local, fmt.Errorf("serve: pool size %d leaves no data span", o.PoolSize)
	}
	c.span = o.PoolSize - dataBase - uint64(o.ValueSize)

	cl, err := Dial(o.Addr)
	if err != nil {
		c.local.Errors++
		return c.local, err
	}
	defer cl.Close()
	cl.SetTimeout(o.IOTimeout)
	c.cl = cl

	if err := c.session(); err != nil {
		if errors.Is(err, errLoadDeadline) {
			return c.local, nil
		}
		c.local.Errors++
		return c.local, err
	}
	if o.Batch > 1 {
		if cl.Proto() < ProtoV2 {
			c.local.Errors++
			return c.local, fmt.Errorf("serve: -batch %d needs protocol v2 but the server negotiated v%d", o.Batch, cl.Proto())
		}
		c.initBatch()
	}
	if o.Rate > 0 {
		perClient := o.Rate / float64(o.Clients)
		c.interval = time.Duration(float64(time.Second) / perClient * float64(o.Batch))
		c.next = time.Now()
	}

	for time.Now().Before(deadline) {
		if o.Churn > 0 && c.plan.Float64() < o.Churn {
			c.local.Churns++
			if err := c.session(); err != nil {
				return c.endRun(err)
			}
		}
		start := time.Now()
		if c.interval > 0 {
			// Open loop: ops arrive on the exponential schedule whether
			// or not the last one finished; latency is measured from the
			// scheduled arrival.
			gap := time.Duration(c.plan.ExpFloat64() * float64(c.interval))
			c.next = c.next.Add(gap)
			if wait := time.Until(c.next); wait > 0 {
				time.Sleep(wait)
			}
			start = c.next
		}
		var err error
		if c.o.Batch > 1 {
			err = c.iterBatch(start)
		} else {
			err = c.iterScalar(start)
		}
		if err != nil {
			return c.endRun(err)
		}
	}
	return c.local, nil
}

// endRun translates the deadline sentinel into a clean finish.
func (c *loadClient) endRun(err error) (*LoadReport, error) {
	if errors.Is(err, errLoadDeadline) {
		return c.local, nil
	}
	c.local.Errors++
	return c.local, err
}

// pickPool draws the next pool index from the configured popularity
// distribution.
func (c *loadClient) pickPool() int {
	if c.zipf != nil {
		return int(c.zipf.Uint64())
	}
	return c.plan.Intn(c.o.Pools)
}

// isUnavailable matches the typed answers a cluster emits while a
// backend is away: the router's UNAVAILABLE and a draining node's
// DRAINING.
func isUnavailable(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && (se.Code == ErrUnavailable || se.Code == ErrDraining)
}

// session (re-)establishes a session: CLOSE the current one if any,
// HELLO as the pool's identity, OPEN, ATTACH writable. Exclusive-writer
// conflicts re-pick another pool; UNAVAILABLE under tolerance backs off
// and re-picks; RETRY backs off and repeats. Gives up only at the run
// deadline (errLoadDeadline) or on a hard error.
func (c *loadClient) session() error {
	for {
		if !time.Now().Before(c.deadline) {
			return errLoadDeadline
		}
		if c.holding {
			// Ignore typed errors: the session may already be gone
			// server-side (evicted, or lost with a dead backend).
			var se *ServerError
			if err := c.cl.CloseSession(); err != nil && !errors.As(err, &se) {
				return err
			}
			c.holding = false
		}
		k := -1
		if c.o.Pools > 0 {
			k = c.pickPool()
			c.pool = PoolName(k)
			c.pat = poolPattern(k)
		} else {
			c.pool = fmt.Sprintf("load-%d", c.i)
			c.pat = clientPattern(c.i)
		}
		c.node = -1
		if c.o.NodeOf != nil {
			c.node = c.o.NodeOf(c.pool)
		}
		err := c.establish()
		switch {
		case err == nil:
			for j := range c.value {
				c.value[j] = c.pat
			}
			return nil
		case errors.Is(err, ErrServerBusy):
			c.local.Retries++
			c.backoff()
		case isUnavailable(err) && c.o.TolerateUnavailable:
			c.local.Unavailable++
			c.countNode(0, 0, 1)
			c.backoff()
		case isAttachConflict(err):
			c.local.Conflicts++
			c.holding = true // OPEN succeeded; CLOSE before re-picking
			if c.o.Pools <= 1 {
				// Nowhere else to go: someone else owns our only pool.
				return err
			}
			// A Zipf draw will often re-pick the same hot pool; back off
			// so its current writer gets a chance to move on.
			c.backoff()
		default:
			return err
		}
	}
}

// establish runs the HELLO/OPEN/ATTACH ladder for the picked pool.
func (c *loadClient) establish() error {
	if err := c.cl.Hello(c.pool); err != nil {
		return err
	}
	if _, err := c.cl.Open(c.pool, c.o.PoolSize); err != nil {
		return err
	}
	if err := c.cl.Attach(true); err != nil {
		return err
	}
	c.holding = true
	return nil
}

// isAttachConflict matches the exclusive-writer denial.
func isAttachConflict(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && se.Code == ErrDenied
}

func (c *loadClient) backoff() {
	time.Sleep(time.Duration(100+c.jitter.Intn(400)) * time.Microsecond)
}

// countNode books per-node tallies when node attribution is on.
func (c *loadClient) countNode(ops uint64, latNS uint64, unavail uint64) {
	if c.node < 0 || c.node >= len(c.local.PerNode) {
		return
	}
	n := &c.local.PerNode[c.node]
	n.Ops += ops
	n.Unavailable += unavail
	if ops > 0 {
		n.Latency.Observe(latNS)
	}
}

// drawOp picks the next op kind (0 read, 1 write, 2 tx) and offset from
// the plan RNG — the same draw order as the original scalar loop, so
// legacy seeds replay identically.
func (c *loadClient) drawOp() (kind int, off uint64) {
	off = 256<<10 + uint64(c.plan.Int63n(int64(c.span)))
	switch {
	case c.plan.Float64() < c.o.ReadFraction:
		kind = 0
	case c.plan.Float64() < c.o.TxFraction:
		kind = 2
	default:
		kind = 1
	}
	return kind, off
}

// checkRead scans read bytes for foreign write patterns.
func (c *loadClient) checkRead(data []byte) {
	for _, b := range data {
		if b != 0 && b != c.pat {
			c.local.IsolationViolations++
			break
		}
	}
}

// countOK books one completed op.
func (c *loadClient) countOK(kind int, latNS uint64) {
	c.local.Latency.Observe(latNS)
	c.local.Ops++
	switch kind {
	case 0:
		c.local.Reads++
	case 1:
		c.local.Writes++
	case 2:
		c.local.Txs++
	}
	c.countNode(1, latNS, 0)
}

// iterScalar is one closed-loop iteration: a single request round trip.
func (c *loadClient) iterScalar(start time.Time) error {
	kind, off := c.drawOp()
	var err error
	switch kind {
	case 0:
		var data []byte
		data, err = c.cl.Read(uint32(off), uint32(c.o.ValueSize))
		if err == nil {
			c.checkRead(data)
		}
	case 2:
		err = c.cl.TxCommit([]TxWrite{{Off: uint32(off), Data: c.value}})
	default:
		err = c.cl.Write(uint32(off), c.value)
	}
	if err == nil {
		c.countOK(kind, uint64(time.Since(start).Nanoseconds()))
		return nil
	}
	return c.iterErr(err)
}

// initBatch sizes the reusable batch scratch.
func (c *loadClient) initBatch() {
	n := c.o.Batch
	c.reqs = make([]*Request, n)
	c.resps = make([]Response, n)
	c.txw = make([]TxWrite, n)
	for j := 0; j < n; j++ {
		c.reqs[j] = &Request{}
	}
}

// iterBatch is one pipelined iteration: Batch ops in one frame, one
// round trip, correlation-ID matched responses.
func (c *loadClient) iterBatch(start time.Time) error {
	for j := range c.reqs {
		kind, off := c.drawOp()
		req := c.reqs[j]
		switch kind {
		case 0:
			*req = Request{Op: OpRead, Off: uint32(off), Len: uint32(c.o.ValueSize)}
		case 2:
			c.txw[j] = TxWrite{Off: uint32(off), Data: c.value}
			*req = Request{Op: OpTxCommit, Tx: c.txw[j : j+1]}
		default:
			*req = Request{Op: OpWrite, Off: uint32(off), Data: c.value}
		}
	}
	if err := c.cl.DoBatch(c.reqs, c.resps); err != nil {
		return c.iterErr(err)
	}
	c.local.Batches++
	lat := uint64(time.Since(start).Nanoseconds())
	for j := range c.resps {
		resp := &c.resps[j]
		var kind int
		switch c.reqs[j].Op {
		case OpRead:
			kind = 0
		case OpTxCommit:
			kind = 2
		default:
			kind = 1
		}
		switch resp.Status {
		case StatusOK:
			if kind == 0 {
				c.checkRead(resp.Data)
			}
			c.countOK(kind, lat)
		default:
			if err := c.iterErr(&ServerError{Code: resp.Code, Msg: resp.Msg}); err != nil {
				return err
			}
			// The session was re-established (or the miss tolerated);
			// later entries in this batch carry stale session errors, so
			// stop scoring them.
			return nil
		}
	}
	return nil
}

// iterErr sorts one op failure into retry/evict/unavailable handling;
// a non-nil return ends the client.
func (c *loadClient) iterErr(err error) error {
	switch {
	case errors.Is(err, ErrServerBusy):
		c.local.Retries++
		c.backoff()
		return nil
	case isUnavailable(err) && c.o.TolerateUnavailable:
		c.local.Unavailable++
		c.countNode(0, 0, 1)
		c.holding = false // the backend (and session) are gone
		c.backoff()
		return c.session()
	default:
		var se *ServerError
		if errors.As(err, &se) && se.Code == ErrEvicted {
			c.local.Evicted++
			c.holding = false
			return c.session()
		}
		if errors.As(err, &se) && se.Code == ErrNoSession {
			// A batch answered after a mid-batch eviction/unavailable
			// recovery; treat as a session loss.
			c.local.Evicted++
			c.holding = false
			return c.session()
		}
		return err
	}
}
