package serve

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"domainvirt/internal/obs"
	"domainvirt/internal/reqtrace"
)

// LoadOptions configures a closed-loop load run against a pmod daemon:
// Clients independent connections, each with its own session pool,
// issuing a ReadFraction/write mix until Duration elapses.
type LoadOptions struct {
	Addr         string
	Clients      int
	Duration     time.Duration
	ReadFraction float64 // of ops, [0,1]
	TxFraction   float64 // of writes issued as TX_COMMIT, [0,1]
	ValueSize    int     // bytes per write / read span
	PoolSize     uint64  // per-client session pool size
	Seed         int64
	// FetchTrace drains the daemon's retained request spans (TRACE op)
	// after the run and aggregates them into LoadReport.Trace, giving
	// the client-side summary its queue-wait vs service-time
	// attribution. Requires the daemon to run with tracing enabled;
	// silently skipped otherwise.
	FetchTrace bool
}

func (o *LoadOptions) withDefaults() LoadOptions {
	v := *o
	if v.Clients <= 0 {
		v.Clients = 50
	}
	if v.Duration <= 0 {
		v.Duration = 2 * time.Second
	}
	if v.ReadFraction < 0 || v.ReadFraction > 1 {
		v.ReadFraction = 0.7
	}
	if v.TxFraction < 0 || v.TxFraction > 1 {
		v.TxFraction = 0.1
	}
	if v.ValueSize <= 0 {
		v.ValueSize = 128
	}
	if v.PoolSize == 0 {
		v.PoolSize = 1 << 20
	}
	return v
}

// LoadReport is the outcome of one load run. Latency reuses the obs
// layer's mergeable log2 histogram (nanoseconds), so percentiles come
// from the same machinery as the simulator's cycle histograms.
type LoadReport struct {
	Clients  int
	Elapsed  time.Duration
	Ops      uint64
	Reads    uint64
	Writes   uint64
	Txs      uint64
	Retries  uint64 // RETRY backpressure responses absorbed
	Evicted  uint64 // sessions re-opened after idle eviction
	Errors   uint64 // protocol or transport errors (excluding retries)
	FirstErr string
	// IsolationViolations counts reads whose bytes belong to another
	// client's write pattern — any nonzero value means the server mixed
	// sessions.
	IsolationViolations uint64
	Latency             obs.Histogram
	// Trace is the daemon-side stage breakdown aggregated from the
	// retained request spans (nil unless FetchTrace was set and the
	// daemon traced the run).
	Trace *reqtrace.Breakdown
}

// Throughput returns completed ops/second.
func (r *LoadReport) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// clientPattern is the byte every write of client i carries; reads must
// only ever observe zero (never-written) or the session's own pattern.
func clientPattern(i int) byte { return byte(0x11 + i%229) }

// RunLoad drives a pmod daemon with Clients concurrent closed-loop
// connections and aggregates their counts and latency histograms.
func RunLoad(opts LoadOptions) (*LoadReport, error) {
	o := opts.withDefaults()
	rep := &LoadReport{Clients: o.Clients}
	var (
		mu       sync.Mutex
		firstErr atomic.Value
		wg       sync.WaitGroup
	)
	start := time.Now()
	deadline := start.Add(o.Duration)
	for i := 0; i < o.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			local, err := runClient(i, o, deadline)
			if err != nil && firstErr.Load() == nil {
				firstErr.Store(err.Error())
			}
			mu.Lock()
			rep.Ops += local.Ops
			rep.Reads += local.Reads
			rep.Writes += local.Writes
			rep.Txs += local.Txs
			rep.Retries += local.Retries
			rep.Evicted += local.Evicted
			rep.Errors += local.Errors
			rep.IsolationViolations += local.IsolationViolations
			rep.Latency.Merge(&local.Latency)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	rep.Elapsed = time.Since(start)
	if msg, ok := firstErr.Load().(string); ok {
		rep.FirstErr = msg
	}
	if o.FetchTrace {
		rep.Trace = FetchTraceBreakdown(o.Addr)
	}
	return rep, nil
}

// FetchTraceBreakdown drains the daemon's retained spans over one extra
// connection and aggregates them; nil when the daemon has tracing
// disabled, is unreachable, or retained nothing.
func FetchTraceBreakdown(addr string) *reqtrace.Breakdown {
	cl, err := Dial(addr)
	if err != nil {
		return nil
	}
	defer cl.Close()
	raw, err := cl.Trace()
	if err != nil || len(raw) == 0 {
		return nil
	}
	recs, err := reqtrace.ParseSpansJSONL(bytes.NewReader(raw))
	if err != nil || len(recs) == 0 {
		return nil
	}
	return reqtrace.Aggregate(recs)
}

// runClient is one closed-loop session: dial, HELLO, OPEN, ATTACH, then
// a randomized op mix until the deadline. Retries back off; an idle
// eviction transparently re-opens the session.
func runClient(i int, o LoadOptions, deadline time.Time) (*LoadReport, error) {
	local := &LoadReport{}
	rng := rand.New(rand.NewSource(o.Seed + int64(i)*7919))
	cl, err := Dial(o.Addr)
	if err != nil {
		local.Errors++
		return local, err
	}
	defer cl.Close()

	name := fmt.Sprintf("load-%d", i)
	setup := func() error {
		if _, err := cl.Open(name, o.PoolSize); err != nil {
			return err
		}
		return cl.Attach(true)
	}
	if err := cl.Hello(name); err != nil {
		local.Errors++
		return local, err
	}
	if err := setup(); err != nil {
		local.Errors++
		return local, err
	}

	pat := clientPattern(i)
	value := make([]byte, o.ValueSize)
	for j := range value {
		value[j] = pat
	}
	// Keep clear of the pool header + redo-log area.
	const dataBase = 256 << 10
	span := o.PoolSize - dataBase - uint64(o.ValueSize)
	var firstErr error
	for time.Now().Before(deadline) {
		off := dataBase + uint64(rng.Int63n(int64(span)))
		var (
			opStart = time.Now()
			err     error
			kind    int
		)
		switch {
		case rng.Float64() < o.ReadFraction:
			kind = 0
			var data []byte
			data, err = cl.Read(uint32(off), uint32(o.ValueSize))
			if err == nil {
				for _, b := range data {
					if b != 0 && b != pat {
						local.IsolationViolations++
						break
					}
				}
			}
		case rng.Float64() < o.TxFraction:
			kind = 2
			err = cl.TxCommit([]TxWrite{{Off: uint32(off), Data: value}})
		default:
			kind = 1
			err = cl.Write(uint32(off), value)
		}
		switch {
		case err == nil:
			local.Latency.Observe(uint64(time.Since(opStart).Nanoseconds()))
			local.Ops++
			switch kind {
			case 0:
				local.Reads++
			case 1:
				local.Writes++
			case 2:
				local.Txs++
			}
		case errors.Is(err, ErrServerBusy):
			local.Retries++
			time.Sleep(time.Duration(100+rng.Intn(400)) * time.Microsecond)
		default:
			var se *ServerError
			if errors.As(err, &se) && se.Code == ErrEvicted {
				local.Evicted++
				if err := setup(); err != nil {
					local.Errors++
					if firstErr == nil {
						firstErr = err
					}
					return local, firstErr
				}
				continue
			}
			local.Errors++
			if firstErr == nil {
				firstErr = err
			}
			return local, firstErr
		}
	}
	return local, nil
}
