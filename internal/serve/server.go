package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"domainvirt/internal/core"
	"domainvirt/internal/pmo"
	"domainvirt/internal/reqtrace"
	"domainvirt/internal/sim"
	"domainvirt/internal/trace"
	"domainvirt/internal/txn"
)

// serverSite is the single vetted SETPERM call site the daemon uses for
// its permission windows; when an engine is active it is approved with
// the ERIM-style inspector so gadget-reuse from any other site is
// flagged (security_test.go's TestGadgetReuseBlocked scenario).
const serverSite = core.SiteID(1)

// Options configures a Server.
type Options struct {
	// Store is the PMO namespace to serve; nil creates an in-memory one.
	Store *pmo.Store
	// Shards is the session-table shard count, rounded up to a power of
	// two (default 8). Each shard has its own mutex, address space, and
	// — when Engine is set — its own protection-engine machine.
	Shards int
	// Workers is the request worker-pool size (default 2*GOMAXPROCS).
	Workers int
	// QueueDepth bounds the request queue; a full queue answers RETRY
	// instead of building unbounded latency (default 256).
	QueueDepth int
	// IdleTimeout evicts sessions with no request for this long
	// (default 2m; 0 disables eviction).
	IdleTimeout time.Duration
	// Engine, when non-empty and not "none", runs every shard's address
	// space under that protection scheme: each session's pool is its
	// own domain, and every request executes inside a least-privilege
	// SETPERM window for the session's thread.
	Engine sim.Scheme
	// DefaultPoolSize is used when OPEN asks for size 0 (default 1 MiB).
	DefaultPoolSize uint64
	// SyncEvery periodically persists dirty pools of a file-backed
	// store from the janitor (default 1s; 0 disables periodic sync —
	// drain still syncs).
	SyncEvery time.Duration
	// Trace configures per-request span tracing (internal/reqtrace).
	// The zero value disables it: the request path then pays only nil
	// pointer checks (no clock reads, no allocations). OpNames is
	// filled in automatically.
	Trace reqtrace.Config
	// CaptureOpen, when set, tees every shard's instrumentation stream
	// into a trace.Capture recording the live traffic in the binary
	// trace format. It is called lazily per (shard, segment) when that
	// segment's first bytes are flushed. Works in engine and library
	// mode alike.
	CaptureOpen func(shard, seg int) (io.WriteCloser, error)
	// CaptureMaxSegmentBytes rotates each shard's capture to a new
	// independently-replayable segment past this size (0: no rotation).
	CaptureMaxSegmentBytes int64
	// CaptureBufferBytes bounds each shard capture's unflushed bytes;
	// past it, data events are dropped (and counted) while control
	// events are kept. Default 1 MiB.
	CaptureBufferBytes int
	// CaptureVerdicts additionally records each shard's Access/Fetch
	// verdict bitstream (engine mode only), so a live run's enforcement
	// decisions can be compared bit-for-bit against a replay of its
	// captured trace.
	CaptureVerdicts bool
}

func (o *Options) withDefaults() Options {
	v := *o
	if v.Store == nil {
		v.Store = pmo.NewStore()
	}
	if v.Shards <= 0 {
		v.Shards = 8
	}
	n := 1
	for n < v.Shards {
		n <<= 1
	}
	v.Shards = n
	if v.Workers <= 0 {
		v.Workers = 2 * runtime.GOMAXPROCS(0)
	}
	if v.QueueDepth <= 0 {
		v.QueueDepth = 256
	}
	if v.IdleTimeout == 0 {
		v.IdleTimeout = 2 * time.Minute
	}
	if v.DefaultPoolSize == 0 {
		v.DefaultPoolSize = 1 << 20
	}
	if v.SyncEvery == 0 {
		v.SyncEvery = time.Second
	}
	if v.Engine == "none" {
		v.Engine = ""
	}
	return v
}

// session is one client's open PMO session: its pool, its (possibly
// detached) attachment, and the simulated thread its requests run as.
type session struct {
	id       uint64
	client   string
	pool     *pmo.Pool
	att      *pmo.Attachment // nil while detached
	thread   core.ThreadID
	lastUsed atomic.Int64 // unix nanos
}

// shard is one slice of the session table. Its mutex serializes every
// request against its sessions, which also serializes all traffic into
// its address space and machine (the simulator replays one interleaved
// trace per shard).
type shard struct {
	mu         sync.Mutex
	space      *pmo.Space
	machine    *sim.Machine       // nil in library mode
	capture    *trace.Capture     // nil unless CaptureOpen is set
	verdicts   *trace.VerdictLog  // nil unless CaptureVerdicts (guarded by mu)
	sessions   map[uint64]*session
	nextThread core.ThreadID
}

// conn is one client connection: at most one session, one writer lock.
type conn struct {
	c       net.Conn
	bw      *bufio.Writer
	writeMu sync.Mutex

	stateMu sync.Mutex
	client  string
	sid     uint64
	proto   uint8 // negotiated wire version; 0 until HELLO (treated as v1)
}

func (cn *conn) send(s *Server, payload []byte) {
	cn.writeMu.Lock()
	defer cn.writeMu.Unlock()
	if writeFrame(cn.bw, payload) == nil {
		cn.bw.Flush()
	}
	s.met.BytesOut.Add(uint64(len(payload)))
}

// job is one parsed request — or one v2 batch of requests — bound for
// the worker pool. Exactly one of req and batch is set.
type job struct {
	cn    *conn
	req   *Request
	batch *Batch
}

// reqPool recycles decoded requests — with their Tx and scratch
// backing arrays — across the read→worker path. Once the buffers have
// grown to the working-set size, a steady stream of data requests is
// parsed, queued, dispatched, and answered without allocating.
var reqPool = sync.Pool{New: func() any { return new(Request) }}

// batchPool recycles batch containers (and their Reqs backing arrays)
// the same way, so the v2 batched path is also allocation-free in
// steady state.
var batchPool = sync.Pool{New: func() any { return new(Batch) }}

func getPooledRequest() *Request { return reqPool.Get().(*Request) }

// releaseBatch returns a batch and its sub-requests to their pools.
func releaseBatch(b *Batch) {
	for i, req := range b.Reqs {
		req.tr = nil
		reqPool.Put(req)
		b.Reqs[i] = nil
	}
	b.Reqs = b.Reqs[:0]
	batchPool.Put(b)
}

// workCtx is one worker's reusable request-scoped storage: the response
// under construction, its encoded frame, and the READ data buffer. The
// worker finishes sending the frame before taking the next job, so
// nothing here outlives one dispatch.
type workCtx struct {
	resp Response
	enc  []byte
	data []byte
	neg  [1]byte // stable storage for the HELLO negotiation response body
}

// ok fills the worker's response with a bare success for id.
func (w *workCtx) ok(id uint32) *Response {
	w.resp = Response{Status: StatusOK, ID: id}
	return &w.resp
}

// Server is the concurrent PMO service: a sharded session table over a
// pmo.Store, a bounded worker pool with RETRY backpressure, idle-session
// eviction, per-request least-privilege domain windows, and graceful
// drain.
type Server struct {
	opts   Options
	store  *pmo.Store
	met    *Metrics
	tracer *reqtrace.Tracer // nil when tracing is disabled

	shards []*shard
	mask   uint64

	nextSID atomic.Uint64
	jobs    chan job

	connMu sync.Mutex
	conns  map[*conn]struct{}

	draining  atomic.Bool
	lis       net.Listener
	readersWG sync.WaitGroup
	workersWG sync.WaitGroup
	janitorCh chan struct{}
	janitorWG sync.WaitGroup
	started   atomic.Bool
}

// NewServer builds a server; call Serve to start handling a listener.
func NewServer(opts Options) *Server {
	o := opts.withDefaults()
	s := &Server{
		opts:      o,
		store:     o.Store,
		met:       &Metrics{},
		mask:      uint64(o.Shards - 1),
		jobs:      make(chan job, o.QueueDepth),
		conns:     make(map[*conn]struct{}),
		janitorCh: make(chan struct{}),
	}
	if o.Trace.Enabled() {
		if o.Trace.OpNames == nil {
			o.Trace.OpNames = opNames[:]
		}
		s.tracer = reqtrace.New(o.Trace)
		s.opts.Trace = o.Trace
	}
	for i := 0; i < o.Shards; i++ {
		sh := &shard{sessions: make(map[uint64]*session), nextThread: 1}
		// Sink stack per shard: capture (raw record, always permits) in
		// front of the enforcing machine, with the verdict wrapper
		// between the tee and the machine so live enforcement decisions
		// land in a comparable bitstream.
		var sinks []trace.Sink
		if o.CaptureOpen != nil {
			shardIdx := i
			sh.capture = trace.NewCapture(trace.CaptureOptions{
				Open:            func(seg int) (io.WriteCloser, error) { return o.CaptureOpen(shardIdx, seg) },
				MaxSegmentBytes: o.CaptureMaxSegmentBytes,
				BufferBytes:     o.CaptureBufferBytes,
			})
			sinks = append(sinks, sh.capture)
		}
		if o.Engine != "" {
			m := sim.NewMachine(sim.DefaultConfig(), o.Engine)
			insp := core.NewInspector()
			insp.Approve(serverSite, "pmod vetted permission gate")
			m.SetInspector(insp)
			sh.machine = m
			var ms trace.Sink = m
			if o.CaptureVerdicts {
				sh.verdicts = &trace.VerdictLog{}
				ms = trace.WithVerdicts(m, sh.verdicts)
			}
			sinks = append(sinks, ms)
		}
		switch len(sinks) {
		case 0:
			sh.space = pmo.NewSpace(nil)
		case 1:
			sh.space = pmo.NewSpace(sinks[0])
		default:
			sh.space = pmo.NewSpace(trace.NewTee(sinks...))
		}
		s.shards = append(s.shards, sh)
	}
	return s
}

// Metrics returns the server's live metrics.
func (s *Server) Metrics() *Metrics { return s.met }

// Tracer returns the request tracer (nil when tracing is disabled).
func (s *Server) Tracer() *reqtrace.Tracer { return s.tracer }

// CaptureStats aggregates the shard captures' counters; ok is false
// when capture is not configured.
func (s *Server) CaptureStats() (st trace.CaptureStats, ok bool) {
	for _, sh := range s.shards {
		if sh.capture == nil {
			continue
		}
		ok = true
		c := sh.capture.Stats()
		st.Events += c.Events
		st.Dropped += c.Dropped
		st.Bytes += c.Bytes
		st.Segments += c.Segments
	}
	return st, ok
}

// CaptureErr returns the first capture I/O error across shards.
func (s *Server) CaptureErr() error {
	for _, sh := range s.shards {
		if sh.capture != nil {
			if err := sh.capture.Err(); err != nil {
				return err
			}
		}
	}
	return nil
}

// ShardVerdicts copies shard i's live verdict bitstream (nil unless
// CaptureVerdicts is on and the shard has a log).
func (s *Server) ShardVerdicts(i int) *trace.VerdictLog {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.verdicts == nil {
		return nil
	}
	cp := &trace.VerdictLog{}
	cp.Merge(sh.verdicts)
	return cp
}

// Engine returns the configured protection scheme ("" for library mode).
func (s *Server) Engine() sim.Scheme { return s.opts.Engine }

func (s *Server) shardOf(sid uint64) *shard { return s.shards[sid&s.mask] }

// SessionCount returns the number of live sessions across all shards.
func (s *Server) SessionCount() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.sessions)
		sh.mu.Unlock()
	}
	return n
}

// ConnCount returns the number of live connections.
func (s *Server) ConnCount() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return len(s.conns)
}

// EngineTotals sums the protection-engine counters across shards, or
// nil in library mode.
func (s *Server) EngineTotals() *EngineTotals {
	if s.opts.Engine == "" {
		return nil
	}
	t := &EngineTotals{}
	for _, sh := range s.shards {
		sh.mu.Lock()
		res := sh.machine.Result()
		sh.mu.Unlock()
		t.DomainFaults += res.Counters.DomainFaults
		t.PageFaults += res.Counters.PageFaults
		t.PermSwitches += res.Counters.PermSwitches
		t.Evictions += res.Counters.Evictions
		t.TLBFlushed += res.Counters.TLBFlushed
	}
	return t
}

// WriteMetrics renders the full Prometheus snapshot (also the STATS op
// body and the -metrics HTTP endpoint body): the base counters, the
// per-stage request-latency histograms when tracing is on, and the
// capture counters when the shard tee is recording.
func (s *Server) WriteMetrics(w io.Writer) error {
	if err := s.met.WritePrometheus(w, s.SessionCount(), s.ConnCount(), s.EngineTotals()); err != nil {
		return err
	}
	if err := s.tracer.WritePromStageHistograms(w, "pmod_stage_latency_ns", "pmod_request_latency_ns"); err != nil {
		return err
	}
	if st, ok := s.CaptureStats(); ok {
		fmt.Fprintf(w, "# HELP pmod_capture_events_total Instrumentation events recorded by the shard capture tee.\n# TYPE pmod_capture_events_total counter\n")
		fmt.Fprintf(w, "pmod_capture_events_total %d\n", st.Events)
		fmt.Fprintf(w, "# HELP pmod_capture_dropped_total Data events dropped by capture backpressure.\n# TYPE pmod_capture_dropped_total counter\n")
		fmt.Fprintf(w, "pmod_capture_dropped_total %d\n", st.Dropped)
		fmt.Fprintf(w, "# HELP pmod_capture_bytes_total Encoded trace bytes handed to the capture flushers.\n# TYPE pmod_capture_bytes_total counter\n")
		fmt.Fprintf(w, "pmod_capture_bytes_total %d\n", st.Bytes)
		fmt.Fprintf(w, "# HELP pmod_capture_segments Capture segments started across shards.\n# TYPE pmod_capture_segments gauge\n")
		fmt.Fprintf(w, "pmod_capture_segments %d\n", st.Segments)
	}
	return nil
}

// Serve accepts connections until Shutdown (returns nil) or a listener
// error. It starts the worker pool and the janitor on first call.
func (s *Server) Serve(lis net.Listener) error {
	s.connMu.Lock()
	s.lis = lis
	draining := s.draining.Load()
	s.connMu.Unlock()
	if draining {
		lis.Close()
		return nil
	}
	if s.started.CompareAndSwap(false, true) {
		for i := 0; i < s.opts.Workers; i++ {
			s.workersWG.Add(1)
			go s.worker()
		}
		s.janitorWG.Add(1)
		go s.janitor()
	}
	for {
		c, err := lis.Accept()
		if err != nil {
			if s.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		cn := &conn{c: c, bw: bufio.NewWriter(c)}
		s.connMu.Lock()
		if s.draining.Load() {
			s.connMu.Unlock()
			c.Close()
			continue
		}
		s.conns[cn] = struct{}{}
		s.connMu.Unlock()
		s.readersWG.Add(1)
		go s.readLoop(cn)
	}
}

// readLoop parses frames off one connection and feeds the worker pool;
// framing errors are answered inline with typed errors so a malformed
// client can never occupy a worker.
func (s *Server) readLoop(cn *conn) {
	defer s.readersWG.Done()
	br := bufio.NewReader(cn.c)
	tracing := s.tracer != nil
	var buf []byte
	for {
		payload, t0, err := readFrameTimed(br, buf, tracing)
		if err != nil {
			var tooBig errFrameTooLarge
			if errors.As(err, &tooBig) {
				// Unrecoverable framing: answer, then drop the conn.
				s.respondErr(cn, 0, wireErr(ErrTooLarge, tooBig.Error()))
			}
			if s.draining.Load() {
				// Deadline pop from Shutdown: stop reading, leave the
				// conn open so in-flight responses still flush.
				return
			}
			s.dropConn(cn, true)
			return
		}
		buf = payload[:0]
		s.met.BytesIn.Add(uint64(len(payload)))
		if len(payload) > 0 && Op(payload[0]) == OpBatch {
			s.readBatch(cn, payload, t0)
			continue
		}
		req := reqPool.Get().(*Request)
		werr := parseRequestInto(req, payload)
		if int(req.Op) < numOps {
			s.met.Requests[req.Op].Add(1)
		}
		if werr != nil {
			s.respondErr(cn, req.ID, werr)
			reqPool.Put(req)
			continue
		}
		// WRITE/TX payload slices alias the read buffer; copy them into
		// the request's own scratch since the worker runs after the
		// reader reuses it.
		req.tr = s.tracer.Begin(uint8(req.Op), t0)
		req.detach()
		req.tr.Mark(reqtrace.StageRead)
		select {
		case s.jobs <- job{cn: cn, req: req}:
		default:
			// Backpressure: the queue is full; make the client retry
			// rather than queueing unbounded work.
			s.tracer.End(req.tr, uint8(StatusRetry), 0)
			req.tr = nil
			s.met.Retries.Add(1)
			cn.send(s, EncodeResponse(&Response{Status: StatusRetry, ID: req.ID}))
			reqPool.Put(req)
		}
	}
}

// readBatch parses one v2 BATCH frame and enqueues it as a single job:
// the whole batch is dispatched by one worker and answered with one
// StatusBatch frame, so a pipelining client pays one network write and
// one read per batch of ops. Any malformed sub-request fails the whole
// batch with one typed error on the batch ID.
func (s *Server) readBatch(cn *conn, payload []byte, t0 time.Time) {
	s.met.Requests[OpBatch].Add(1)
	// The batch ID sits at the fixed header offset; recover it even for
	// payloads the full parse will reject, so the error names the batch.
	var bid uint32
	if len(payload) >= minPayload {
		bid = binary.BigEndian.Uint32(payload[1:])
	}
	cn.stateMu.Lock()
	proto := cn.proto
	cn.stateMu.Unlock()
	if proto < ProtoV2 {
		s.respondErr(cn, bid, wireErr(ErrVersion, "serve: BATCH requires protocol v2 (negotiate in HELLO)"))
		return
	}
	b := batchPool.Get().(*Batch)
	if werr := parseBatchInto(b, payload, getPooledRequest); werr != nil {
		s.respondErr(cn, bid, werr)
		releaseBatch(b)
		return
	}
	for _, req := range b.Reqs {
		s.met.Requests[req.Op].Add(1)
		req.tr = s.tracer.Begin(uint8(req.Op), t0)
		req.detach()
		req.tr.Mark(reqtrace.StageRead)
	}
	select {
	case s.jobs <- job{cn: cn, batch: b}:
	default:
		// Backpressure answers RETRY on the batch ID; the client
		// resubmits the whole batch.
		for _, req := range b.Reqs {
			s.tracer.End(req.tr, uint8(StatusRetry), 0)
			req.tr = nil
		}
		s.met.Retries.Add(1)
		cn.send(s, EncodeResponse(&Response{Status: StatusRetry, ID: b.ID}))
		releaseBatch(b)
	}
}

// dropConn unregisters and closes a connection and evicts its session.
func (s *Server) dropConn(cn *conn, close bool) {
	s.connMu.Lock()
	_, live := s.conns[cn]
	delete(s.conns, cn)
	s.connMu.Unlock()
	if !live {
		return
	}
	if close {
		cn.c.Close()
	}
	cn.stateMu.Lock()
	sid := cn.sid
	cn.sid = 0
	cn.stateMu.Unlock()
	if sid != 0 {
		s.evictSession(sid)
	}
}

// evictSession removes one session, detaching it if needed.
func (s *Server) evictSession(sid uint64) {
	sh := s.shardOf(sid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sess, ok := sh.sessions[sid]
	if !ok {
		return
	}
	if sess.att != nil {
		sh.space.Thread = sess.thread
		sh.space.Detach(sess.pool)
		sess.att = nil
	}
	delete(sh.sessions, sid)
}

func (s *Server) worker() {
	defer s.workersWG.Done()
	w := &workCtx{}
	for jb := range s.jobs {
		if jb.batch != nil {
			s.serveBatch(jb.cn, jb.batch, w)
			continue
		}
		jb.req.tr.Mark(reqtrace.StageQueue)
		start := time.Now()
		resp := s.dispatch(jb.cn, jb.req, w)
		s.met.ObserveLatency(jb.req.Op, uint64(time.Since(start).Nanoseconds()))
		switch resp.Status {
		case StatusOK:
			s.met.OKs.Add(1)
		case StatusErr:
			s.met.CountError(resp.Code)
		}
		// send copies the frame into the connection's buffered writer
		// before returning, so the worker's encode buffer (and the
		// pooled request) are free for the next job.
		w.enc = appendResponse(w.enc[:0], resp)
		jb.cn.send(s, w.enc)
		jb.req.tr.Mark(reqtrace.StageWrite)
		s.tracer.End(jb.req.tr, uint8(resp.Status), uint16(resp.Code))
		jb.req.tr = nil
		reqPool.Put(jb.req)
	}
}

// serveBatch dispatches a batch's sub-requests in order (sub-responses
// still carry correlation IDs, and the protocol permits any order) and
// sends the one StatusBatch frame answering all of them.
func (s *Server) serveBatch(cn *conn, b *Batch, w *workCtx) {
	w.enc = appendBatchRespHeader(w.enc[:0], b.ID, len(b.Reqs))
	for _, req := range b.Reqs {
		req.tr.Mark(reqtrace.StageQueue)
		start := time.Now()
		resp := s.dispatch(cn, req, w)
		s.met.ObserveLatency(req.Op, uint64(time.Since(start).Nanoseconds()))
		switch resp.Status {
		case StatusOK:
			s.met.OKs.Add(1)
		case StatusErr:
			s.met.CountError(resp.Code)
		}
		// The entry copies resp's bytes (which may alias w.data) into the
		// frame under construction before the next dispatch reuses them.
		w.enc = appendBatchRespEntry(w.enc, resp)
		req.tr.Mark(reqtrace.StageWrite)
		s.tracer.End(req.tr, uint8(resp.Status), uint16(resp.Code))
		req.tr = nil
	}
	cn.send(s, w.enc)
	releaseBatch(b)
}

func (s *Server) respondErr(cn *conn, id uint32, werr *WireError) {
	s.met.CountError(werr.Code)
	cn.send(s, EncodeResponse(&Response{Status: StatusErr, ID: id, Code: werr.Code, Msg: werr.Msg}))
}

func errResp(id uint32, code ErrCode, format string, args ...any) *Response {
	return &Response{Status: StatusErr, ID: id, Code: code, Msg: fmt.Sprintf(format, args...)}
}

// dispatch executes one request. Panics cannot reach the connection
// handler: every path validates before touching the pool. Success
// responses are built in the caller's workCtx; only error paths (which
// format a message anyway) allocate.
func (s *Server) dispatch(cn *conn, req *Request, w *workCtx) *Response {
	switch req.Op {
	case OpHello:
		cn.stateMu.Lock()
		if cn.sid != 0 {
			held := cn.sid
			cn.stateMu.Unlock()
			return errResp(req.ID, ErrExists, "serve: HELLO while holding session %d (CLOSE first)", held)
		}
		cn.client = req.Client
		neg := uint8(ProtoV1)
		if req.Proto != 0 {
			neg = req.Proto
			if neg > MaxProto {
				neg = MaxProto
			}
		}
		cn.proto = neg
		cn.stateMu.Unlock()
		if req.Proto == 0 {
			// A v1 HELLO gets the v1 bare OK, so old clients see exactly
			// the old protocol.
			return w.ok(req.ID)
		}
		w.neg[0] = neg
		w.resp = Response{Status: StatusOK, ID: req.ID, Data: w.neg[:]}
		return &w.resp
	case OpStats:
		var b writerBuf
		if err := s.WriteMetrics(&b); err != nil {
			return errResp(req.ID, ErrInternal, "serve: rendering stats: %v", err)
		}
		return &Response{Status: StatusOK, ID: req.ID, Data: b.b}
	case OpTrace:
		if s.tracer == nil {
			return errResp(req.ID, ErrDisabled, "serve: tracing disabled; start pmod with -trace-sample or -trace-slow")
		}
		var b writerBuf
		if err := s.tracer.WriteSpansJSONL(&b); err != nil {
			return errResp(req.ID, ErrInternal, "serve: rendering spans: %v", err)
		}
		return &Response{Status: StatusOK, ID: req.ID, Data: b.b}
	}

	cn.stateMu.Lock()
	client, sid := cn.client, cn.sid
	cn.stateMu.Unlock()
	if client == "" {
		return errResp(req.ID, ErrNoHello, "serve: HELLO required before %s", req.Op)
	}

	if req.Op == OpOpen {
		return s.doOpen(cn, client, sid, req, w)
	}

	if sid == 0 {
		return errResp(req.ID, ErrNoSession, "serve: OPEN required before %s", req.Op)
	}
	sh := s.shardOf(sid)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	req.tr.Mark(reqtrace.StageLock)
	req.tr.SetSID(sid)
	sess, ok := sh.sessions[sid]
	if !ok {
		// Idle-evicted between requests: tell the client to re-OPEN.
		cn.stateMu.Lock()
		cn.sid = 0
		cn.stateMu.Unlock()
		return errResp(req.ID, ErrEvicted, "serve: session %d evicted; re-OPEN", sid)
	}
	sess.lastUsed.Store(time.Now().UnixNano())
	sh.space.Thread = sess.thread

	switch req.Op {
	case OpAttach:
		return s.doAttach(sh, sess, req, w)
	case OpRead:
		return s.doRead(sh, sess, req, w)
	case OpWrite:
		return s.doWrite(sh, sess, req, w)
	case OpTxCommit:
		return s.doTx(sh, sess, req, w)
	case OpDetach:
		if sess.att == nil {
			return errResp(req.ID, ErrNotAttached, "serve: session not attached")
		}
		if err := sh.space.Detach(sess.pool); err != nil {
			return errResp(req.ID, ErrInternal, "serve: detach: %v", err)
		}
		sess.att = nil
		s.met.Detaches.Add(1)
		return w.ok(req.ID)
	case OpClose:
		// End the session but keep the connection: the caller (typically
		// the cluster router returning an upstream conn to its pool) can
		// HELLO again as a different client and OPEN a new session.
		if sess.att != nil {
			sh.space.Detach(sess.pool)
			sess.att = nil
			s.met.Detaches.Add(1)
		}
		delete(sh.sessions, sid)
		cn.stateMu.Lock()
		if cn.sid == sid {
			cn.sid = 0
		}
		cn.stateMu.Unlock()
		s.met.Closes.Add(1)
		return w.ok(req.ID)
	}
	return errResp(req.ID, ErrBadOp, "serve: unhandled op %d", req.Op)
}

// doOpen opens or creates the client's session pool. Pools are created
// owner-only (no "other" mode bits), so the store's namespace permission
// check denies every cross-client OPEN.
func (s *Server) doOpen(cn *conn, client string, sid uint64, req *Request, w *workCtx) *Response {
	if sid != 0 {
		return errResp(req.ID, ErrExists, "serve: connection already holds session %d", sid)
	}
	size := req.Size
	if size == 0 {
		size = s.opts.DefaultPoolSize
	}
	pool, err := s.store.Open(req.Name, client, true)
	if err != nil {
		created, cerr := s.store.Create(req.Name, size, pmo.ModeOwnerRead|pmo.ModeOwnerWrite, client)
		if cerr != nil {
			// The pool exists but this client may not write it — the
			// cross-client case reports the open denial, not the
			// create collision.
			return errResp(req.ID, ErrDenied, "serve: open %q: %v", req.Name, err)
		}
		pool = created
	}
	nsid := s.nextSID.Add(1)
	sh := s.shardOf(nsid)
	sess := &session{id: nsid, client: client, pool: pool}
	sess.lastUsed.Store(time.Now().UnixNano())
	sh.mu.Lock()
	req.tr.Mark(reqtrace.StageLock)
	sess.thread = sh.nextThread
	sh.nextThread++
	sh.sessions[nsid] = sess
	sh.mu.Unlock()
	req.tr.SetSID(nsid)
	cn.stateMu.Lock()
	if cn.sid != 0 {
		// A concurrently pipelined OPEN won; retract this session.
		held := cn.sid
		cn.stateMu.Unlock()
		s.evictSession(nsid)
		return errResp(req.ID, ErrExists, "serve: connection already holds session %d", held)
	}
	cn.sid = nsid
	cn.stateMu.Unlock()
	s.met.Opens.Add(1)
	w.resp = Response{Status: StatusOK, ID: req.ID, SID: nsid}
	return &w.resp
}

func (s *Server) doAttach(sh *shard, sess *session, req *Request, w *workCtx) *Response {
	if sess.att != nil {
		return errResp(req.ID, ErrExists, "serve: session already attached")
	}
	perm := core.PermR
	if req.Writable {
		perm = core.PermRW
	}
	att, err := sh.space.Attach(sess.pool, perm, "")
	if err != nil {
		// Exclusive-writer conflicts and engine capacity limits (e.g.
		// MPK running out of protection keys) surface here as typed
		// denials the client can act on.
		return errResp(req.ID, ErrDenied, "serve: attach: %v", err)
	}
	sess.att = att
	s.met.Attaches.Add(1)
	return w.ok(req.ID)
}

// window runs fn inside a least-privilege SETPERM window: the session's
// thread gets perm on its own domain for exactly one request, then drops
// back to no access. Every other session's domain stays inaccessible
// throughout, so a compromised handler touching a foreign attachment
// faults in the engine.
func (s *Server) window(sh *shard, sess *session, perm core.Perm, fn func()) {
	sh.space.SetPerm(sess.pool, perm, serverSite)
	fn()
	sh.space.SetPerm(sess.pool, core.PermNone, serverSite)
}

func (s *Server) checkSpan(sess *session, id uint32, off, n uint32) *Response {
	if n > MaxIO {
		return errResp(id, ErrTooLarge, "serve: span %d over limit %d", n, MaxIO)
	}
	end := uint64(off) + uint64(n)
	if end > sess.pool.Size() {
		return errResp(id, ErrRange, "serve: [%d,%d) outside pool of size %d", off, end, sess.pool.Size())
	}
	return nil
}

func (s *Server) doRead(sh *shard, sess *session, req *Request, w *workCtx) *Response {
	if sess.att == nil {
		return errResp(req.ID, ErrNotAttached, "serve: ATTACH required before READ")
	}
	if r := s.checkSpan(sess, req.ID, req.Off, req.Len); r != nil {
		return r
	}
	if cap(w.data) < int(req.Len) {
		w.data = make([]byte, req.Len)
	}
	data := w.data[:req.Len]
	s.window(sh, sess, core.PermR, func() {
		sess.att.Read(req.Off, data)
	})
	req.tr.Mark(reqtrace.StageEngine)
	req.tr.AddBytes(req.Len)
	s.met.ReadData.Add(uint64(len(data)))
	w.resp = Response{Status: StatusOK, ID: req.ID, Data: data}
	return &w.resp
}

func (s *Server) doWrite(sh *shard, sess *session, req *Request, w *workCtx) *Response {
	if sess.att == nil {
		return errResp(req.ID, ErrNotAttached, "serve: ATTACH required before WRITE")
	}
	if !sess.att.Perm.CanWrite() {
		return errResp(req.ID, ErrDenied, "serve: session attached read-only")
	}
	if r := s.checkSpan(sess, req.ID, req.Off, uint32(len(req.Data))); r != nil {
		return r
	}
	s.window(sh, sess, core.PermRW, func() {
		sess.att.Write(req.Off, req.Data)
	})
	req.tr.Mark(reqtrace.StageEngine)
	req.tr.AddBytes(uint32(len(req.Data)))
	s.met.WroteData.Add(uint64(len(req.Data)))
	return w.ok(req.ID)
}

func (s *Server) doTx(sh *shard, sess *session, req *Request, w *workCtx) *Response {
	if sess.att == nil {
		return errResp(req.ID, ErrNotAttached, "serve: ATTACH required before TX_COMMIT")
	}
	if !sess.att.Perm.CanWrite() {
		return errResp(req.ID, ErrDenied, "serve: session attached read-only")
	}
	for _, tw := range req.Tx {
		if r := s.checkSpan(sess, req.ID, tw.Off, uint32(len(tw.Data))); r != nil {
			return r
		}
	}
	var txErr error
	s.window(sh, sess, core.PermRW, func() {
		tx, err := txn.Begin(sess.pool)
		if err != nil {
			txErr = err
			return
		}
		for _, tw := range req.Tx {
			if err := tx.Write(tw.Off, tw.Data); err != nil {
				tx.Abort()
				txErr = err
				return
			}
		}
		// Staging the redo log is engine-window work; the durable
		// commit (log replay + fences) is the persist stage.
		req.tr.Mark(reqtrace.StageEngine)
		txErr = tx.Commit()
		req.tr.Mark(reqtrace.StagePersist)
	})
	req.tr.Mark(reqtrace.StageEngine) // window close
	if txErr != nil {
		return errResp(req.ID, ErrTx, "serve: tx: %v", txErr)
	}
	var n uint64
	for _, tw := range req.Tx {
		n += uint64(len(tw.Data))
	}
	req.tr.AddBytes(uint32(n))
	s.met.WroteData.Add(n)
	s.met.TxCommits.Add(1)
	return w.ok(req.ID)
}

// janitor evicts idle sessions and periodically syncs a file-backed
// store.
func (s *Server) janitor() {
	defer s.janitorWG.Done()
	tick := s.opts.IdleTimeout / 4
	if tick <= 0 || tick > s.opts.SyncEvery {
		tick = s.opts.SyncEvery
	}
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	var lastSync time.Time
	for {
		select {
		case <-s.janitorCh:
			return
		case now := <-t.C:
			if s.opts.IdleTimeout > 0 {
				cutoff := now.Add(-s.opts.IdleTimeout).UnixNano()
				for _, sh := range s.shards {
					sh.mu.Lock()
					for sid, sess := range sh.sessions {
						if sess.lastUsed.Load() < cutoff {
							if sess.att != nil {
								sh.space.Thread = sess.thread
								sh.space.Detach(sess.pool)
								sess.att = nil
							}
							delete(sh.sessions, sid)
							s.met.Evictions.Add(1)
						}
					}
					sh.mu.Unlock()
				}
			}
			if s.store.Dir() != "" && now.Sub(lastSync) >= s.opts.SyncEvery {
				s.store.Sync()
				lastSync = now
			}
		}
	}
}

// Shutdown drains the server gracefully: stop accepting, stop reading,
// finish every queued request, flush responses, evict sessions, and
// persist the store. It is idempotent; ctx bounds the wait.
func (s *Server) Shutdown(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	// Pop readers out of blocking reads; they observe draining and exit
	// without closing their connections, so queued responses still land.
	s.connMu.Lock()
	if s.lis != nil {
		s.lis.Close()
	}
	for cn := range s.conns {
		cn.c.SetReadDeadline(time.Now())
	}
	s.connMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.readersWG.Wait()
		if s.started.Load() {
			close(s.jobs) // workers finish all queued requests, then exit
			s.workersWG.Wait()
			close(s.janitorCh)
			s.janitorWG.Wait()
		}
		s.connMu.Lock()
		for cn := range s.conns {
			cn.c.Close()
			delete(s.conns, cn)
		}
		s.connMu.Unlock()
		for _, sh := range s.shards {
			sh.mu.Lock()
			for sid, sess := range sh.sessions {
				if sess.att != nil {
					sh.space.Thread = sess.thread
					sh.space.Detach(sess.pool)
					sess.att = nil
				}
				delete(sh.sessions, sid)
			}
			sh.mu.Unlock()
		}
		close(done)
	}()
	select {
	case <-done:
		// Captures close after the final detach events above, so the
		// recorded stream ends balanced; their I/O errors surface
		// alongside the store sync.
		var capErr error
		for _, sh := range s.shards {
			if sh.capture != nil {
				capErr = errors.Join(capErr, sh.capture.Close())
			}
		}
		return errors.Join(s.store.Sync(), capErr)
	case <-ctx.Done():
		return ctx.Err()
	}
}

// writerBuf is a minimal io.Writer over a byte slice.
type writerBuf struct{ b []byte }

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}
