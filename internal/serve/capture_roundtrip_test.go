package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"domainvirt/internal/sim"
	"domainvirt/internal/trace"
)

// segStore collects capture segments in memory, keyed by (shard, seg).
// Flushers on different shards write concurrently, so the map is locked;
// each returned WriteCloser is only ever written by its own flusher.
type segStore struct {
	mu   sync.Mutex
	segs map[[2]int]*bytes.Buffer
}

func newSegStore() *segStore { return &segStore{segs: map[[2]int]*bytes.Buffer{}} }

func (s *segStore) open(shard, seg int) (*segBuf, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := &bytes.Buffer{}
	s.segs[[2]int{shard, seg}] = b
	return &segBuf{b: b, st: s}, nil
}

// shardBytes concatenates shard i's segments in order. With rotation off
// there is at most one, but the reader stays general.
func (s *segStore) shardBytes(shard int) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []byte
	for seg := 0; ; seg++ {
		b, ok := s.segs[[2]int{shard, seg}]
		if !ok {
			return out
		}
		out = append(out, b.Bytes()...)
	}
}

type segBuf struct {
	b  *bytes.Buffer
	st *segStore
}

func (w *segBuf) Write(p []byte) (int, error) {
	w.st.mu.Lock()
	defer w.st.mu.Unlock()
	return w.b.Write(p)
}

func (w *segBuf) Close() error { return nil }

// runCapturedServer serves a fixed deterministic workload with the shard
// tee recording, shuts down cleanly, and returns the server (for
// post-shutdown accessors), the segment store, and the engine totals
// observed before shutdown.
func runCapturedServer(t *testing.T, store *segStore, capture bool) (*Server, *EngineTotals) {
	t.Helper()
	opts := Options{Engine: "domainvirt", Shards: 2}
	if capture {
		opts.CaptureOpen = func(shard, seg int) (io.WriteCloser, error) { return store.open(shard, seg) }
		opts.CaptureVerdicts = true
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	// Two clients so the workload spreads across sessions (and possibly
	// shards); each issues the same deterministic sequence.
	data := bytes.Repeat([]byte{0x5A}, 256)
	for c := 0; c < 2; c++ {
		cl, err := Dial(lis.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Hello(fmt.Sprintf("cap-%d", c)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Open(fmt.Sprintf("cap-pool-%d", c), 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := cl.Attach(true); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 16; i++ {
			if err := cl.Write(uint32(300<<10+i*512), data); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Read(uint32(300<<10+i*512), 256); err != nil {
				t.Fatal(err)
			}
		}
		if err := cl.TxCommit([]TxWrite{{Off: 600 << 10, Data: data}}); err != nil {
			t.Fatal(err)
		}
		if err := cl.Detach(); err != nil {
			t.Fatal(err)
		}
		cl.Close()
	}
	totals := srv.EngineTotals()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("serve: %v", err)
	}
	return srv, totals
}

// TestCaptureRoundTripConformance is the acceptance gate for live-traffic
// capture: the daemon records its own request stream through the shard
// tee, the file audits clean, and replaying it through a fresh engine
// reproduces the live enforcement verdicts bit for bit.
func TestCaptureRoundTripConformance(t *testing.T) {
	store := newSegStore()
	srv, _ := runCapturedServer(t, store, true)

	if err := srv.CaptureErr(); err != nil {
		t.Fatalf("capture error: %v", err)
	}
	st, ok := srv.CaptureStats()
	if !ok {
		t.Fatal("capture not configured")
	}
	if st.Dropped != 0 {
		t.Fatalf("capture dropped %d events; conformance needs a complete stream", st.Dropped)
	}
	if st.Events == 0 {
		t.Fatal("capture recorded nothing")
	}

	sawTraffic := false
	for shard := 0; shard < 2; shard++ {
		raw := store.shardBytes(shard)
		if len(raw) == 0 {
			t.Fatalf("shard %d produced no capture file", shard)
		}

		// 1. The file must audit clean (well-formed protocol: accesses
		// only inside attached windows, balanced attach/detach).
		aud := trace.NewAuditor(nil)
		if _, err := trace.Replay(bytes.NewReader(raw), aud); err != nil {
			t.Fatalf("shard %d: audit replay: %v", shard, err)
		}
		if v := aud.Finish(); len(v) != 0 {
			t.Fatalf("shard %d capture fails audit: %v", shard, v)
		}

		live := srv.ShardVerdicts(shard)
		if live == nil {
			t.Fatalf("shard %d has no live verdict log", shard)
		}
		if live.Len() == 0 {
			continue // idle shard: empty capture body, nothing to compare
		}
		sawTraffic = true

		// 2. Replay through a fresh domainvirt machine: the verdict
		// bitstream must match the live run exactly.
		replayLog := &trace.VerdictLog{}
		m := sim.NewMachine(sim.DefaultConfig(), "domainvirt")
		if _, err := trace.Replay(bytes.NewReader(raw), trace.WithVerdicts(m, replayLog)); err != nil {
			t.Fatalf("shard %d: replay: %v", shard, err)
		}
		if !replayLog.Equal(live) {
			t.Fatalf("shard %d: replay verdicts diverge from live run:\n  live:   n=%d denied=%d %x\n  replay: n=%d denied=%d %x",
				shard, live.Len(), live.Denied(), live.Packed(),
				replayLog.Len(), replayLog.Denied(), replayLog.Packed())
		}

		// 3. Replaying the same capture under a different scheme twice
		// must be deterministic: identical verdicts and identical cycles.
		var prev *trace.VerdictLog
		var prevCycles uint64
		for run := 0; run < 2; run++ {
			lg := &trace.VerdictLog{}
			mm := sim.NewMachine(sim.DefaultConfig(), "mpkvirt")
			if _, err := trace.Replay(bytes.NewReader(raw), trace.WithVerdicts(mm, lg)); err != nil {
				t.Fatalf("shard %d: mpkvirt replay %d: %v", shard, run, err)
			}
			res := mm.Result()
			if run == 1 {
				if !lg.Equal(prev) {
					t.Fatalf("shard %d: mpkvirt replay nondeterministic verdicts", shard)
				}
				if res.Cycles != prevCycles {
					t.Fatalf("shard %d: mpkvirt replay nondeterministic cycles: %d then %d",
						shard, prevCycles, res.Cycles)
				}
			}
			prev, prevCycles = lg, res.Cycles
		}
	}
	if !sawTraffic {
		t.Fatal("no shard carried traffic; workload routed nowhere")
	}
}

// TestCaptureZeroPerturbation: recording the request stream must not
// change what the protection engine computes — the tee is passive.
func TestCaptureZeroPerturbation(t *testing.T) {
	_, off := runCapturedServer(t, newSegStore(), false)
	_, on := runCapturedServer(t, newSegStore(), true)
	if *off != *on {
		t.Fatalf("capture perturbed the simulation:\n  off: %+v\n  on:  %+v", off, on)
	}
}
