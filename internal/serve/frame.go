package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// errFrameTooLarge marks a declared payload length over the limit; the
// stream cannot be resynchronized past it, so the connection must close
// (after a best-effort typed error response).
type errFrameTooLarge struct{ n uint32 }

func (e errFrameTooLarge) Error() string {
	return fmt.Sprintf("serve: declared frame length %d exceeds limit %d", e.n, MaxFrame)
}

// readFrame reads one length-prefixed payload. io.EOF is returned
// verbatim on a clean boundary; a partial frame yields
// io.ErrUnexpectedEOF.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	payload, _, err := readFrameTimed(r, buf, false)
	return payload, err
}

// readFrameTimed is readFrame stamping the wall-clock instant the frame
// header landed — the request's stage-0 origin for tracing. With stamp
// false no clock is read (the tracing-disabled path pays nothing).
func readFrameTimed(r io.Reader, buf []byte, stamp bool) ([]byte, time.Time, error) {
	var t0 time.Time
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			return nil, t0, io.ErrUnexpectedEOF
		}
		return nil, t0, err
	}
	if stamp {
		t0 = time.Now()
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, t0, errFrameTooLarge{n}
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			return nil, t0, io.ErrUnexpectedEOF
		}
		return nil, t0, err
	}
	return buf, t0, nil
}

// ReadFrame reads one length-prefixed payload, reusing buf when it is
// large enough. Exported for the cluster router, which relays frames
// between clients and backends without interpreting most of them.
func ReadFrame(r io.Reader, buf []byte) ([]byte, error) { return readFrame(r, buf) }

// WriteFrame writes one length-prefixed payload (see ReadFrame).
func WriteFrame(w io.Writer, payload []byte) error { return writeFrame(w, payload) }

// FrameTooLarge reports whether err is the unrecoverable
// declared-length-over-limit framing error, after which the stream
// cannot be resynchronized and the connection must close.
func FrameTooLarge(err error) bool {
	var e errFrameTooLarge
	return errors.As(err, &e)
}

// writeFrame writes one length-prefixed payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}
