package serve

import (
	"bytes"
	"encoding/binary"
	"io"
	"net"
	"testing"
	"time"
)

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{Op: OpHello, ID: 1, Client: "alice"},
		{Op: OpOpen, ID: 2, Name: "sess", Size: 1 << 20},
		{Op: OpAttach, ID: 3, Writable: true},
		{Op: OpAttach, ID: 4, Writable: false},
		{Op: OpRead, ID: 5, Off: 4096, Len: 64},
		{Op: OpWrite, ID: 6, Off: 8192, Data: []byte("payload")},
		{Op: OpTxCommit, ID: 7, Tx: []TxWrite{{Off: 1, Data: []byte("a")}, {Off: 2, Data: []byte("bc")}}},
		{Op: OpDetach, ID: 8},
		{Op: OpStats, ID: 9},
	}
	for _, want := range reqs {
		got, werr := ParseRequest(EncodeRequest(want))
		if werr != nil {
			t.Fatalf("%v: parse error %v", want.Op, werr)
		}
		if got.Op != want.Op || got.ID != want.ID || got.Client != want.Client ||
			got.Name != want.Name || got.Size != want.Size || got.Writable != want.Writable ||
			got.Off != want.Off || got.Len != want.Len || !bytes.Equal(got.Data, want.Data) {
			t.Errorf("%v: round trip mismatch: %+v != %+v", want.Op, got, want)
		}
		if len(got.Tx) != len(want.Tx) {
			t.Fatalf("%v: tx count %d != %d", want.Op, len(got.Tx), len(want.Tx))
		}
		for i := range got.Tx {
			if got.Tx[i].Off != want.Tx[i].Off || !bytes.Equal(got.Tx[i].Data, want.Tx[i].Data) {
				t.Errorf("%v: tx[%d] mismatch", want.Op, i)
			}
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []struct {
		resp    *Response
		wantSID bool
	}{
		{&Response{Status: StatusOK, ID: 1, SID: 77}, true},
		{&Response{Status: StatusOK, ID: 2, Data: []byte("hello")}, false},
		{&Response{Status: StatusErr, ID: 3, Code: ErrDenied, Msg: "no"}, false},
		{&Response{Status: StatusRetry, ID: 4}, false},
	}
	for _, c := range cases {
		got, werr := ParseResponse(EncodeResponse(c.resp), c.wantSID)
		if werr != nil {
			t.Fatalf("parse: %v", werr)
		}
		if got.Status != c.resp.Status || got.ID != c.resp.ID || got.SID != c.resp.SID ||
			got.Code != c.resp.Code || got.Msg != c.resp.Msg || !bytes.Equal(got.Data, c.resp.Data) {
			t.Errorf("round trip mismatch: %+v != %+v", got, c.resp)
		}
	}
}

// TestParseRequestMalformed table-tests truncated, oversized, and
// garbage payloads: every one must yield a typed *WireError, never a
// panic.
func TestParseRequestMalformed(t *testing.T) {
	trunc := func(req *Request, n int) []byte {
		b := EncodeRequest(req)
		return b[:len(b)-n]
	}
	pad := func(req *Request, n int) []byte {
		return append(EncodeRequest(req), make([]byte, n)...)
	}
	cases := []struct {
		name    string
		payload []byte
		want    ErrCode
	}{
		{"empty", nil, ErrBadFrame},
		{"header only", []byte{byte(OpRead)}, ErrBadFrame},
		{"unknown op", []byte{0xEE, 0, 0, 0, 1}, ErrBadOp},
		{"zero op", []byte{0, 0, 0, 0, 1}, ErrBadOp},
		{"hello empty name", EncodeRequest(&Request{Op: OpHello, ID: 1}), ErrBadFrame},
		{"hello truncated name", trunc(&Request{Op: OpHello, ID: 1, Client: "alice"}, 3), ErrBadFrame},
		{"open truncated size", trunc(&Request{Op: OpOpen, ID: 1, Name: "p", Size: 1 << 20}, 4), ErrBadFrame},
		{"open empty name", EncodeRequest(&Request{Op: OpOpen, ID: 1, Size: 8}), ErrBadFrame},
		{"read short body", trunc(&Request{Op: OpRead, ID: 1, Off: 1, Len: 2}, 2), ErrBadFrame},
		{"read trailing garbage", pad(&Request{Op: OpRead, ID: 1, Off: 1, Len: 2}, 5), ErrBadFrame},
		{"read span too large", EncodeRequest(&Request{Op: OpRead, ID: 1, Len: MaxIO + 1}), ErrTooLarge},
		{"write length lies long", func() []byte {
			b := EncodeRequest(&Request{Op: OpWrite, ID: 1, Off: 0, Data: []byte("abcd")})
			binary.BigEndian.PutUint32(b[9:], 1000) // declared len > actual
			return b
		}(), ErrBadFrame},
		{"write length lies short", func() []byte {
			b := EncodeRequest(&Request{Op: OpWrite, ID: 1, Off: 0, Data: []byte("abcd")})
			binary.BigEndian.PutUint32(b[9:], 2) // trailing bytes left over
			return b
		}(), ErrBadFrame},
		{"write span too large", func() []byte {
			b := EncodeRequest(&Request{Op: OpWrite, ID: 1})
			binary.BigEndian.PutUint32(b[9:], MaxIO+1)
			return b
		}(), ErrTooLarge},
		{"tx count lies", func() []byte {
			b := EncodeRequest(&Request{Op: OpTxCommit, ID: 1, Tx: []TxWrite{{Off: 1, Data: []byte("x")}}})
			binary.BigEndian.PutUint16(b[5:], 9) // more entries than present
			return b
		}(), ErrBadFrame},
		{"detach trailing garbage", pad(&Request{Op: OpDetach, ID: 1}, 1), ErrBadFrame},
		{"close trailing garbage", pad(&Request{Op: OpClose, ID: 1}, 1), ErrBadFrame},
		{"hello version zero", append(EncodeRequest(&Request{Op: OpHello, ID: 1, Client: "v"}), 0), ErrBadFrame},
		{"batch in scalar parser", AppendBatch(nil, 1, []*Request{{Op: OpRead, ID: 2, Off: 0, Len: 8}}), ErrBadFrame},
		{"random garbage", []byte{0x04, 0xFF, 0xFF, 0xFF, 0xFF, 0xDE, 0xAD}, ErrBadFrame},
	}
	for _, c := range cases {
		req, werr := ParseRequest(c.payload)
		if werr == nil {
			t.Errorf("%s: parsed without error (%+v)", c.name, req)
			continue
		}
		if werr.Code != c.want {
			t.Errorf("%s: code %d, want %d (%s)", c.name, werr.Code, c.want, werr.Msg)
		}
	}
}

// FuzzFrame throws arbitrary bytes at the request decoder; the contract
// is no panic, and a successful parse must re-encode to a payload that
// parses identically (no hidden state).
func FuzzFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(OpRead), 0, 0, 0, 1, 0, 0, 16, 0, 0, 0, 0, 64})
	for _, req := range []*Request{
		{Op: OpHello, ID: 1, Client: "fuzz"},
		{Op: OpHello, ID: 1, Client: "fuzz", Proto: ProtoV2},
		{Op: OpOpen, ID: 2, Name: "pool", Size: 4096},
		{Op: OpWrite, ID: 3, Off: 64, Data: []byte{1, 2, 3}},
		{Op: OpTxCommit, ID: 4, Tx: []TxWrite{{Off: 8, Data: []byte("ab")}}},
		{Op: OpClose, ID: 5},
	} {
		f.Add(EncodeRequest(req))
	}
	// A BATCH container must bounce off the scalar parser (nested-batch
	// guard), never recurse into it.
	f.Add(AppendBatch(nil, 6, []*Request{{Op: OpRead, ID: 7, Off: 64, Len: 8}}))
	f.Fuzz(func(t *testing.T, payload []byte) {
		req, werr := ParseRequest(payload)
		if werr != nil {
			return
		}
		again, werr2 := ParseRequest(EncodeRequest(req))
		if werr2 != nil {
			t.Fatalf("re-encode of valid request failed to parse: %v", werr2)
		}
		if again.Op != req.Op || again.ID != req.ID {
			t.Fatalf("re-encode changed header: %+v != %+v", again, req)
		}
	})
}

// TestFrameIO covers the length-prefix layer: clean EOF, partial
// frames, and oversized declarations.
func TestFrameIO(t *testing.T) {
	var b bytes.Buffer
	if err := writeFrame(&b, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&b, nil)
	if err != nil || string(got) != "abc" {
		t.Fatalf("round trip: %q, %v", got, err)
	}
	if _, err := readFrame(&b, nil); err != io.EOF {
		t.Fatalf("empty stream: %v, want io.EOF", err)
	}

	if _, err := readFrame(bytes.NewReader([]byte{0, 0}), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("short header: %v", err)
	}
	if _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 9, 'x'}), nil); err != io.ErrUnexpectedEOF {
		t.Fatalf("short body: %v", err)
	}
	huge := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
	var tooBig errFrameTooLarge
	if _, err := readFrame(bytes.NewReader(huge), nil); err == nil || !errorsAs(err, &tooBig) {
		t.Fatalf("oversized declaration: %v", err)
	}
}

func errorsAs(err error, target *errFrameTooLarge) bool {
	e, ok := err.(errFrameTooLarge)
	if ok {
		*target = e
	}
	return ok
}

// TestMalformedFramesOverWire drives raw malformed frames at a live
// server: each must produce a typed error response (or a clean close
// for unrecoverable framing), the server must not panic, and no session
// may leak.
func TestMalformedFramesOverWire(t *testing.T) {
	srv, addr := startTestServer(t, Options{})

	send := func(t *testing.T, raw []byte) (*Response, error) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if _, err := c.Write(raw); err != nil {
			t.Fatal(err)
		}
		payload, err := readFrame(c, nil)
		if err != nil {
			return nil, err
		}
		resp, werr := ParseResponse(payload, false)
		if werr != nil {
			t.Fatalf("unparseable server response: %v", werr)
		}
		return resp, nil
	}

	t.Run("garbage op", func(t *testing.T) {
		frame := binary.BigEndian.AppendUint32(nil, 5)
		frame = append(frame, 0xEE, 0, 0, 0, 7)
		resp, err := send(t, frame)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusErr || resp.Code != ErrBadOp || resp.ID != 7 {
			t.Errorf("got %+v, want ErrBadOp on id 7", resp)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		frame := binary.BigEndian.AppendUint32(nil, 7)
		frame = append(frame, byte(OpRead), 0, 0, 0, 9, 0xAA, 0xBB)
		resp, err := send(t, frame)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Status != StatusErr || resp.Code != ErrBadFrame {
			t.Errorf("got %+v, want ErrBadFrame", resp)
		}
	})
	t.Run("oversized declared length", func(t *testing.T) {
		frame := binary.BigEndian.AppendUint32(nil, MaxFrame+1)
		resp, err := send(t, frame)
		// Either a typed error then close, or an immediate close.
		if err == nil && (resp.Status != StatusErr || resp.Code != ErrTooLarge) {
			t.Errorf("got %+v, want ErrTooLarge or close", resp)
		}
	})
	t.Run("half a session then garbage", func(t *testing.T) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		cl := NewClient(c)
		if err := cl.Hello("mallory"); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Open("mallory-pool", 64<<10); err != nil {
			t.Fatal(err)
		}
		// Now wreck the stream mid-frame and disconnect.
		c.Write([]byte{0, 0, 0, 50, 1, 2, 3})
		c.Close()
	})

	waitFor(t, time.Second, func() bool { return srv.SessionCount() == 0 && srv.ConnCount() == 0 })
	if n := srv.SessionCount(); n != 0 {
		t.Errorf("%d sessions leaked after malformed traffic", n)
	}
}
