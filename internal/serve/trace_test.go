package serve

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"domainvirt/internal/reqtrace"
)

// TestTraceOpEndToEnd drives a traced daemon and drains the span ring
// over the wire: every stage of the request path must be attributed,
// and the Prometheus snapshot must carry the per-stage histograms.
func TestTraceOpEndToEnd(t *testing.T) {
	srv, addr := startTestServer(t, Options{
		Engine: "domainvirt",
		Trace:  reqtrace.Config{SampleEvery: 1, RingSize: 256},
	})
	cl := dialT(t, addr)
	if err := cl.Hello("tracer"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("trace-pool", 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := cl.Attach(true); err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0xAB}, 512)
	const writes = 8
	for i := 0; i < writes; i++ {
		if err := cl.Write(uint32(300<<10+i*1024), data); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cl.Read(300<<10, 512); err != nil {
		t.Fatal(err)
	}
	if err := cl.TxCommit([]TxWrite{{Off: 400 << 10, Data: data}}); err != nil {
		t.Fatal(err)
	}

	// End runs after the response is sent; let the last span land.
	const issued = writes + 5 // hello, open, attach, writes, read, tx
	waitFor(t, 2*time.Second, func() bool {
		fin, _, _ := srv.Tracer().Counts()
		return fin >= issued
	})

	raw, err := cl.Trace()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := reqtrace.ParseSpansJSONL(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	byOp := map[string][]reqtrace.SpanRecord{}
	for _, r := range recs {
		byOp[r.Op] = append(byOp[r.Op], r)
	}
	for _, op := range []string{"hello", "open", "attach", "write", "read", "tx_commit"} {
		if len(byOp[op]) == 0 {
			t.Fatalf("no span for op %q in dump of %d spans", op, len(recs))
		}
	}
	if got := len(byOp["write"]); got != writes {
		t.Fatalf("retained %d write spans, want %d (SampleEvery=1 keeps all)", got, writes)
	}
	w := byOp["write"][0]
	if w.SID == 0 {
		t.Fatal("write span has no session ID")
	}
	if w.Bytes != 512 {
		t.Fatalf("write span moved %d bytes, want 512", w.Bytes)
	}
	if w.Stages[reqtrace.StageEngine] == 0 {
		t.Fatal("write span has no engine-stage time (SETPERM window not attributed)")
	}
	if w.TotalNs == 0 || w.Stages[reqtrace.StageRead] == 0 {
		t.Fatalf("write span missing read/decode attribution: %+v", w)
	}
	tx := byOp["tx_commit"][0]
	if tx.Stages[reqtrace.StagePersist] == 0 {
		t.Fatal("tx span has no persist-stage time (durable commit not attributed)")
	}
	if byOp["read"][0].Bytes != 512 {
		t.Fatalf("read span bytes = %d", byOp["read"][0].Bytes)
	}

	// The snapshot must include the per-stage latency family.
	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	text := string(stats)
	for _, want := range []string{
		"# TYPE pmod_stage_latency_ns histogram",
		`pmod_stage_latency_ns_bucket{stage="engine",le=`,
		`pmod_stage_latency_ns_bucket{stage="queue",le=`,
		"# TYPE pmod_request_latency_ns histogram",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("snapshot missing %q", want)
		}
	}
	if n := strings.Count(text, "# TYPE pmod_op_latency_ns histogram"); n != 1 {
		t.Fatalf("pmod_op_latency_ns TYPE emitted %d times, want exactly 1", n)
	}
}

// TestTraceOpDisabled: a daemon without tracing answers the TRACE op
// with a typed ErrDisabled, not silence.
func TestTraceOpDisabled(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	cl := dialT(t, addr)
	_, err := cl.Trace()
	var se *ServerError
	if !errors.As(err, &se) || se.Code != ErrDisabled {
		t.Fatalf("Trace on untraced daemon = %v, want ErrDisabled", err)
	}
}

// TestTracingZeroPerturbation: the same request sequence produces
// identical simulated engine totals with tracing on and off — the
// tracer observes wall clocks only, never the instruction stream.
func TestTracingZeroPerturbation(t *testing.T) {
	run := func(traced bool) *EngineTotals {
		opts := Options{Engine: "domainvirt"}
		if traced {
			opts.Trace = reqtrace.Config{SampleEvery: 1, Slow: time.Nanosecond}
		}
		srv, addr := startTestServer(t, opts)
		cl := dialT(t, addr)
		if err := cl.Hello("perturb"); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Open("p", 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := cl.Attach(true); err != nil {
			t.Fatal(err)
		}
		data := bytes.Repeat([]byte{7}, 256)
		for i := 0; i < 20; i++ {
			if err := cl.Write(uint32(300<<10+i*512), data); err != nil {
				t.Fatal(err)
			}
			if _, err := cl.Read(uint32(300<<10+i*512), 256); err != nil {
				t.Fatal(err)
			}
		}
		if err := cl.TxCommit([]TxWrite{{Off: 500 << 10, Data: data}}); err != nil {
			t.Fatal(err)
		}
		if err := cl.Detach(); err != nil {
			t.Fatal(err)
		}
		return srv.EngineTotals()
	}
	off := run(false)
	on := run(true)
	if *off != *on {
		t.Fatalf("tracing perturbed the simulation:\n  off: %+v\n  on:  %+v", off, on)
	}
}

// TestLoadgenTraceBreakdown: the load generator surfaces the daemon's
// queue-wait vs service-time attribution.
func TestLoadgenTraceBreakdown(t *testing.T) {
	_, addr := startTestServer(t, Options{
		Engine: "domainvirt",
		Trace:  reqtrace.Config{SampleEvery: 1, RingSize: 1024},
	})
	rep, err := RunLoad(LoadOptions{
		Addr: addr, Clients: 4, Duration: 300 * time.Millisecond,
		ValueSize: 64, Seed: 42, FetchTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors > 0 {
		t.Fatalf("load errors: %d (%s)", rep.Errors, rep.FirstErr)
	}
	if rep.Trace == nil {
		t.Fatal("FetchTrace produced no breakdown from a traced daemon")
	}
	if rep.Trace.Spans == 0 || rep.Trace.Queue.Count == 0 || rep.Trace.Service.Count == 0 {
		t.Fatalf("breakdown = %+v", rep.Trace)
	}
	if rep.Trace.Total.Quantile(0.999) == 0 {
		t.Fatal("p99.9 of total latency is zero")
	}
	// An untraced daemon yields nil, not an error.
	_, addr2 := startTestServer(t, Options{})
	rep2, err := RunLoad(LoadOptions{
		Addr: addr2, Clients: 2, Duration: 100 * time.Millisecond,
		ValueSize: 64, Seed: 43, FetchTrace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Trace != nil {
		t.Fatal("untraced daemon produced a breakdown")
	}
}
