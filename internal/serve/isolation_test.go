package serve

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/sim"
)

// These tests re-run the repo's security scenarios (security_test.go) at
// the service boundary: two clients of a live in-process daemon must not
// be able to reach each other's sessions, through either the namespace
// or the protection engine.

// TestCrossClientOpenDenied: client B may not OPEN client A's pool in
// either direction — the store's owner-only mode bits deny it before a
// session even exists.
func TestCrossClientOpenDenied(t *testing.T) {
	_, addr := startTestServer(t, Options{Engine: "domainvirt"})

	alice := dialT(t, addr)
	if err := alice.Hello("alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := alice.Open("alice-secrets", 64<<10); err != nil {
		t.Fatal(err)
	}
	if err := alice.Attach(true); err != nil {
		t.Fatal(err)
	}
	secret := []byte("alice private key material")
	if err := alice.Write(48<<10, secret); err != nil {
		t.Fatal(err)
	}

	bob := dialT(t, addr)
	if err := bob.Hello("bob"); err != nil {
		t.Fatal(err)
	}
	_, err := bob.Open("alice-secrets", 64<<10)
	wantCode(t, err, ErrDenied)

	// Bob's own session works fine and sees none of Alice's bytes.
	if _, err := bob.Open("bob-data", 64<<10); err != nil {
		t.Fatal(err)
	}
	if err := bob.Attach(true); err != nil {
		t.Fatal(err)
	}
	got, err := bob.Read(48<<10, uint32(len(secret)))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(got, []byte("private")) {
		t.Fatal("bob read alice's data through his own session")
	}
	// And Alice's data is untouched by Bob's traffic.
	if err := bob.Write(48<<10, []byte("bob was here")); err != nil {
		t.Fatal(err)
	}
	back, err := alice.Read(48<<10, uint32(len(secret)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, secret) {
		t.Fatalf("alice's pool corrupted by bob: %q", back)
	}
}

// TestEngineWindowsCoverAllTraffic: under every protection engine that
// isolates (not baseline), the daemon's per-request windows mean each
// shard's machine saw SETPERM switches but zero domain faults for
// well-behaved traffic — the engine is live on the request path, and
// honest clients never trip it.
func TestEngineWindowsCoverAllTraffic(t *testing.T) {
	for _, scheme := range []sim.Scheme{"mpk", "libmpk", "mpkvirt", "domainvirt"} {
		t.Run(string(scheme), func(t *testing.T) {
			srv, addr := startTestServer(t, Options{Engine: scheme, Shards: 2})
			for i := 0; i < 4; i++ {
				cl := dialT(t, addr)
				name := fmt.Sprintf("tenant-%d", i)
				if err := cl.Hello(name); err != nil {
					t.Fatal(err)
				}
				if _, err := cl.Open(name, 64<<10); err != nil {
					t.Fatal(err)
				}
				if err := cl.Attach(true); err != nil {
					t.Fatal(err)
				}
				if err := cl.Write(32<<10, []byte{clientPattern(i)}); err != nil {
					t.Fatal(err)
				}
				got, err := cl.Read(32<<10, 1)
				if err != nil || got[0] != clientPattern(i) {
					t.Fatalf("tenant %d readback: %v %v", i, got, err)
				}
			}
			eng := srv.EngineTotals()
			if eng == nil {
				t.Fatal("no engine totals under engine mode")
			}
			if eng.PermSwitches == 0 {
				t.Error("no SETPERM windows recorded — isolation not on the request path")
			}
			if eng.DomainFaults != 0 {
				t.Errorf("%d domain faults for well-behaved traffic", eng.DomainFaults)
			}
		})
	}
}

// TestForeignAttachmentFaults is the service-boundary Heartbleed
// scenario: a compromised handler that reaches into another session's
// attachment outside that session's window must fault in the engine.
// We simulate the compromise by touching session B's attachment while
// only session A's window is open.
func TestForeignAttachmentFaults(t *testing.T) {
	srv, addr := startTestServer(t, Options{Engine: "domainvirt", Shards: 1})

	mk := func(name string) *Client {
		cl := dialT(t, addr)
		if err := cl.Hello(name); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Open(name, 64<<10); err != nil {
			t.Fatal(err)
		}
		if err := cl.Attach(true); err != nil {
			t.Fatal(err)
		}
		if err := cl.Write(16<<10, []byte(name+" secret")); err != nil {
			t.Fatal(err)
		}
		return cl
	}
	mk("victim")
	mk("attacker")

	sh := srv.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	var victim, attacker *session
	for _, sess := range sh.sessions {
		switch sess.client {
		case "victim":
			victim = sess
		case "attacker":
			attacker = sess
		}
	}
	if victim == nil || attacker == nil {
		t.Fatal("sessions not found in shard")
	}
	before := sh.machine.Result().Counters.DomainFaults
	// Replay the compromised-handler interleaving: attacker's thread,
	// attacker's window open, but the access lands in victim's domain —
	// an overread past the session's own attachment.
	sh.space.Thread = attacker.thread
	sh.space.SetPerm(attacker.pool, core.PermR, serverSite)
	buf := make([]byte, 8)
	victim.att.Read(16<<10, buf) // foreign domain, no window: must fault
	sh.space.SetPerm(attacker.pool, core.PermNone, serverSite)
	after := sh.machine.Result().Counters.DomainFaults
	if after <= before {
		t.Fatalf("foreign-session access did not fault (faults %d -> %d)", before, after)
	}
}

// TestIsolationUnderLoad runs the pattern-checking load generator
// against a live daemon and requires zero observed cross-session bytes.
func TestIsolationUnderLoad(t *testing.T) {
	srv, addr := startTestServer(t, Options{Engine: "domainvirt", Shards: 4})
	rep, err := RunLoad(LoadOptions{
		Addr:     addr,
		Clients:  12,
		Duration: 400_000_000, // 400ms
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.IsolationViolations != 0 {
		t.Fatalf("%d isolation violations under load", rep.IsolationViolations)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors under load (first: %s)", rep.Errors, rep.FirstErr)
	}
	eng := srv.EngineTotals()
	if eng == nil || eng.PermSwitches == 0 {
		t.Fatal("engine not active during load")
	}
	if eng.DomainFaults != 0 {
		t.Errorf("%d domain faults from honest load", eng.DomainFaults)
	}
	var stats strings.Builder
	if err := srv.WriteMetrics(&stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stats.String(), `pmod_engine_events_total{event="domain_fault"} 0`) {
		t.Error("metrics snapshot missing zero-fault engine line")
	}
}
