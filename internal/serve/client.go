package serve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrServerBusy is returned when the daemon answers RETRY (its request
// queue is full); the caller should back off and resend.
var ErrServerBusy = errors.New("serve: server busy, retry")

// ServerError is a typed error the daemon returned.
type ServerError struct {
	Code ErrCode
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("serve: server error %d: %s", e.Code, e.Msg) }

// Client is a closed-loop client for the pmod wire protocol: one
// outstanding request at a time per Client. It is not safe for
// concurrent use; open one Client per goroutine (the load generator
// does exactly that).
type Client struct {
	c      net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	nextID uint32
}

// Dial connects to a pmod daemon.
func Dial(addr string) (*Client, error) {
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, err
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// roundTrip sends req and waits for its response.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.nextID++
	req.ID = c.nextID
	if err := writeFrame(c.bw, EncodeRequest(req)); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	payload, err := readFrame(c.br, nil)
	if err != nil {
		return nil, err
	}
	resp, werr := ParseResponse(payload, req.Op == OpOpen)
	if werr != nil {
		return nil, werr
	}
	if resp.ID != req.ID && resp.ID != 0 {
		return nil, fmt.Errorf("serve: response id %d for request %d", resp.ID, req.ID)
	}
	switch resp.Status {
	case StatusRetry:
		return nil, ErrServerBusy
	case StatusErr:
		return nil, &ServerError{Code: resp.Code, Msg: resp.Msg}
	}
	return resp, nil
}

// Hello declares the client identity; it must precede session ops.
func (c *Client) Hello(name string) error {
	_, err := c.roundTrip(&Request{Op: OpHello, Client: name})
	return err
}

// Open opens (creating if absent) the named session pool and returns
// the session ID. size 0 uses the server default.
func (c *Client) Open(pool string, size uint64) (uint64, error) {
	resp, err := c.roundTrip(&Request{Op: OpOpen, Name: pool, Size: size})
	if err != nil {
		return 0, err
	}
	return resp.SID, nil
}

// Attach maps the session pool, read-only or writable.
func (c *Client) Attach(writable bool) error {
	_, err := c.roundTrip(&Request{Op: OpAttach, Writable: writable})
	return err
}

// Read returns n bytes at off of the session pool.
func (c *Client) Read(off, n uint32) ([]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpRead, Off: off, Len: n})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Write stores data at off of the session pool.
func (c *Client) Write(off uint32, data []byte) error {
	_, err := c.roundTrip(&Request{Op: OpWrite, Off: off, Data: data})
	return err
}

// TxCommit applies writes as one durable redo-log transaction.
func (c *Client) TxCommit(writes []TxWrite) error {
	_, err := c.roundTrip(&Request{Op: OpTxCommit, Tx: writes})
	return err
}

// Detach unmaps the session pool; the session survives for re-ATTACH.
func (c *Client) Detach() error {
	_, err := c.roundTrip(&Request{Op: OpDetach})
	return err
}

// Stats fetches the daemon's Prometheus text snapshot.
func (c *Client) Stats() ([]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Trace fetches the daemon's retained request spans as JSONL (see
// reqtrace.ParseSpansJSONL). The daemon answers ErrDisabled when it was
// started without tracing.
func (c *Client) Trace() ([]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpTrace})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}
