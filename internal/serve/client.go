package serve

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrServerBusy is returned when the daemon answers RETRY (its request
// queue is full); the caller should back off and resend.
var ErrServerBusy = errors.New("serve: server busy, retry")

// ErrTimeout is the typed I/O-deadline error: any round trip that blows
// its Client timeout (or its context deadline at dial time) wraps this,
// so routers and load generators can tell a slow peer from a broken
// one. errors.Is(err, ErrTimeout) matches.
var ErrTimeout = errors.New("serve: i/o timeout")

// ServerError is a typed error the daemon returned.
type ServerError struct {
	Code ErrCode
	Msg  string
}

func (e *ServerError) Error() string { return fmt.Sprintf("serve: server error %d: %s", e.Code, e.Msg) }

// Client is a client for the pmod wire protocol: one outstanding
// request (or one outstanding batch) at a time per Client. It is not
// safe for concurrent use; open one Client per goroutine (the load
// generator does exactly that).
type Client struct {
	c      net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	nextID uint32
	proto  uint8 // negotiated version; ProtoV1 until a v2 HELLO succeeds

	// timeout bounds every round trip's I/O (0 = block forever).
	timeout time.Duration

	// benc is the reusable batch encode buffer so steady-state batching
	// does not allocate.
	benc []byte
}

// Dial connects to a pmod daemon with a 5-second dial timeout.
func Dial(addr string) (*Client, error) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return DialContext(ctx, addr)
}

// DialContext connects to a pmod daemon under ctx's deadline and
// cancellation; a deadline overrun reports ErrTimeout.
func DialContext(ctx context.Context, addr string) (*Client, error) {
	var d net.Dialer
	c, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, wrapTimeout(err)
	}
	return NewClient(c), nil
}

// NewClient wraps an established connection.
func NewClient(c net.Conn) *Client {
	return &Client{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c), proto: ProtoV1}
}

// SetTimeout bounds each subsequent round trip's socket I/O; a request
// that cannot complete within d fails with an error wrapping ErrTimeout
// (0 restores blocking behavior). The connection is unusable for
// further requests after a timeout: the abandoned response would
// desynchronize the stream.
func (c *Client) SetTimeout(d time.Duration) { c.timeout = d }

// Proto returns the negotiated wire-protocol version.
func (c *Client) Proto() uint8 { return c.proto }

// Close closes the connection.
func (c *Client) Close() error { return c.c.Close() }

// wrapTimeout converts net timeout errors into ErrTimeout wrappers.
func wrapTimeout(err error) error {
	if err == nil {
		return nil
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// armDeadline applies the per-round-trip I/O deadline.
func (c *Client) armDeadline() error {
	if c.timeout <= 0 {
		return nil
	}
	return c.c.SetDeadline(time.Now().Add(c.timeout))
}

// writeAndRead sends one frame payload and reads one response frame
// under the client's I/O deadline.
func (c *Client) writeAndRead(payload []byte) ([]byte, error) {
	if err := c.armDeadline(); err != nil {
		return nil, err
	}
	if err := writeFrame(c.bw, payload); err != nil {
		return nil, wrapTimeout(err)
	}
	if err := c.bw.Flush(); err != nil {
		return nil, wrapTimeout(err)
	}
	resp, err := readFrame(c.br, nil)
	return resp, wrapTimeout(err)
}

// roundTrip sends req and waits for its response.
func (c *Client) roundTrip(req *Request) (*Response, error) {
	c.nextID++
	req.ID = c.nextID
	payload, err := c.writeAndRead(EncodeRequest(req))
	if err != nil {
		return nil, err
	}
	resp, werr := ParseResponse(payload, req.Op == OpOpen)
	if werr != nil {
		return nil, werr
	}
	if resp.ID != req.ID && resp.ID != 0 {
		return nil, fmt.Errorf("serve: response id %d for request %d", resp.ID, req.ID)
	}
	switch resp.Status {
	case StatusRetry:
		return nil, ErrServerBusy
	case StatusErr:
		return nil, &ServerError{Code: resp.Code, Msg: resp.Msg}
	}
	return resp, nil
}

// Hello declares the client identity and negotiates the wire version:
// it offers MaxProto and records whatever the server accepts. Against a
// pre-negotiation daemon (which rejects the trailing version byte as a
// bad frame) it falls back to a plain v1 HELLO. It must precede session
// ops.
func (c *Client) Hello(name string) error {
	resp, err := c.roundTrip(&Request{Op: OpHello, Client: name, Proto: MaxProto})
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) && se.Code == ErrBadFrame {
			// v1-only server: redo the handshake without the version.
			c.proto = ProtoV1
			_, err = c.roundTrip(&Request{Op: OpHello, Client: name})
		}
		return err
	}
	c.proto = ProtoV1
	if len(resp.Data) == 1 && resp.Data[0] >= ProtoV1 {
		c.proto = resp.Data[0]
		if c.proto > MaxProto {
			c.proto = MaxProto
		}
	}
	return nil
}

// HelloV1 declares the client identity with a version-less v1 HELLO,
// pinning the session to protocol v1 (no batching).
func (c *Client) HelloV1(name string) error {
	c.proto = ProtoV1
	_, err := c.roundTrip(&Request{Op: OpHello, Client: name})
	return err
}

// Open opens (creating if absent) the named session pool and returns
// the session ID. size 0 uses the server default.
func (c *Client) Open(pool string, size uint64) (uint64, error) {
	resp, err := c.roundTrip(&Request{Op: OpOpen, Name: pool, Size: size})
	if err != nil {
		return 0, err
	}
	return resp.SID, nil
}

// Attach maps the session pool, read-only or writable.
func (c *Client) Attach(writable bool) error {
	_, err := c.roundTrip(&Request{Op: OpAttach, Writable: writable})
	return err
}

// Read returns n bytes at off of the session pool.
func (c *Client) Read(off, n uint32) ([]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpRead, Off: off, Len: n})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Write stores data at off of the session pool.
func (c *Client) Write(off uint32, data []byte) error {
	_, err := c.roundTrip(&Request{Op: OpWrite, Off: off, Data: data})
	return err
}

// TxCommit applies writes as one durable redo-log transaction.
func (c *Client) TxCommit(writes []TxWrite) error {
	_, err := c.roundTrip(&Request{Op: OpTxCommit, Tx: writes})
	return err
}

// Detach unmaps the session pool; the session survives for re-ATTACH.
func (c *Client) Detach() error {
	_, err := c.roundTrip(&Request{Op: OpDetach})
	return err
}

// CloseSession ends the session (detaching if needed) but keeps the
// connection: HELLO may then declare a new identity and OPEN a new
// pool. This is what lets the cluster router reuse upstream
// connections across client sessions.
func (c *Client) CloseSession() error {
	_, err := c.roundTrip(&Request{Op: OpClose})
	return err
}

// Stats fetches the daemon's Prometheus text snapshot.
func (c *Client) Stats() ([]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// Trace fetches the daemon's retained request spans as JSONL (see
// reqtrace.ParseSpansJSONL). The daemon answers ErrDisabled when it was
// started without tracing.
func (c *Client) Trace() ([]byte, error) {
	resp, err := c.roundTrip(&Request{Op: OpTrace})
	if err != nil {
		return nil, err
	}
	return resp.Data, nil
}

// DoBatch executes reqs as one v2 BATCH frame — one network write and
// one read for the whole slice — and decodes each sub-response into
// resps[i] for reqs[i], matching correlation IDs so out-of-order
// completion is handled. resps must be the same length as reqs; its
// entries are overwritten (Data aliases the read buffer and is only
// valid until the next round trip). Per-op failures land in the
// corresponding Response (StatusErr + code), not in the returned error,
// which covers transport and batch-framing problems only. A full-queue
// RETRY on the batch returns ErrServerBusy with no sub-responses.
func (c *Client) DoBatch(reqs []*Request, resps []Response) error {
	if len(reqs) == 0 || len(reqs) > MaxBatch {
		return fmt.Errorf("serve: batch of %d requests (want 1..%d)", len(reqs), MaxBatch)
	}
	if len(resps) != len(reqs) {
		return fmt.Errorf("serve: %d responses for %d requests", len(resps), len(reqs))
	}
	if c.proto < ProtoV2 {
		return &ServerError{Code: ErrVersion, Msg: "serve: batching requires negotiated protocol v2"}
	}
	c.nextID++
	bid := c.nextID
	for _, req := range reqs {
		c.nextID++
		req.ID = c.nextID
	}
	c.benc = AppendBatch(c.benc[:0], bid, reqs)
	payload, err := c.writeAndRead(c.benc)
	if err != nil {
		return err
	}
	// A scalar response on the batch ID is a whole-batch verdict:
	// RETRY under backpressure or a typed error for bad framing.
	if len(payload) >= 1 {
		switch Status(payload[0]) {
		case StatusRetry:
			return ErrServerBusy
		case StatusErr:
			resp, werr := ParseResponse(payload, false)
			if werr != nil {
				return werr
			}
			return &ServerError{Code: resp.Code, Msg: resp.Msg}
		}
	}
	var it batchRespIter
	if werr := it.init(payload); werr != nil {
		return werr
	}
	if it.id != bid {
		return fmt.Errorf("serve: batch response id %d for batch %d", it.id, bid)
	}
	if it.left != len(reqs) {
		return fmt.Errorf("serve: %d sub-responses for %d requests", it.left, len(reqs))
	}
	for i := range resps {
		resps[i] = Response{}
	}
	matched := 0
	for {
		sub, werr := it.next()
		if werr != nil {
			return werr
		}
		if sub == nil {
			break
		}
		sid := binary.BigEndian.Uint32(sub[1:])
		req, idx := c.findBatchReq(reqs, resps, sid)
		if req == nil {
			return fmt.Errorf("serve: batch sub-response for unknown id %d", sid)
		}
		if werr := parseResponseInto(&resps[idx], sub, req.Op == OpOpen); werr != nil {
			return werr
		}
		matched++
	}
	if matched != len(reqs) {
		return fmt.Errorf("serve: %d of %d sub-responses matched", matched, len(reqs))
	}
	return nil
}

// findBatchReq locates the request a sub-response ID belongs to,
// skipping slots already filled (their ID matches), so duplicate IDs in
// a malformed response cannot silently overwrite an already-matched
// sub-response.
func (c *Client) findBatchReq(reqs []*Request, resps []Response, id uint32) (*Request, int) {
	for i, req := range reqs {
		if req.ID == id && resps[i].ID != id {
			return req, i
		}
	}
	return nil, -1
}
