package serve

import (
	"bytes"
	"context"
	"errors"
	"net"
	"strings"
	"fmt"
	"sync"
	"testing"
	"time"

	"domainvirt/internal/sim"
)

// startTestServer runs an in-process daemon on a loopback port and
// tears it down with the test.
func startTestServer(t testing.TB, opts Options) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return srv, lis.Addr().String()
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	cl, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func wantCode(t *testing.T, err error, code ErrCode) {
	t.Helper()
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want server error code %d", err, code)
	}
	if se.Code != code {
		t.Fatalf("got code %d (%s), want %d", se.Code, se.Msg, code)
	}
}

func TestSessionLifecycle(t *testing.T) {
	for _, engine := range []string{"", "domainvirt"} {
		t.Run("engine="+engine, func(t *testing.T) {
			srv, addr := startTestServer(t, Options{Engine: sim.Scheme(engine)})
			cl := dialT(t, addr)

			if err := cl.Hello("alice"); err != nil {
				t.Fatal(err)
			}
			sid, err := cl.Open("alice-sess", 256<<10)
			if err != nil {
				t.Fatal(err)
			}
			if sid == 0 {
				t.Fatal("zero session id")
			}
			if err := cl.Attach(true); err != nil {
				t.Fatal(err)
			}
			payload := []byte("persistent session state")
			if err := cl.Write(130<<10, payload); err != nil {
				t.Fatal(err)
			}
			got, err := cl.Read(130<<10, uint32(len(payload)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatalf("read back %q, want %q", got, payload)
			}
			if err := cl.TxCommit([]TxWrite{
				{Off: 140 << 10, Data: []byte("tx-a")},
				{Off: 150 << 10, Data: []byte("tx-b")},
			}); err != nil {
				t.Fatal(err)
			}
			got, err = cl.Read(140<<10, 4)
			if err != nil || string(got) != "tx-a" {
				t.Fatalf("tx write not visible: %q, %v", got, err)
			}
			stats, err := cl.Stats()
			if err != nil {
				t.Fatal(err)
			}
			for _, want := range []string{"pmod_requests_total", "pmod_sessions_active 1", "pmod_op_latency_ns"} {
				if !strings.Contains(string(stats), want) {
					t.Errorf("stats missing %q", want)
				}
			}
			if engine != "" && !strings.Contains(string(stats), "pmod_engine_events_total") {
				t.Error("engine stats missing")
			}
			if err := cl.Detach(); err != nil {
				t.Fatal(err)
			}
			// Detached session can re-attach and still see its data.
			if err := cl.Attach(false); err != nil {
				t.Fatal(err)
			}
			got, err = cl.Read(130<<10, uint32(len(payload)))
			if err != nil || !bytes.Equal(got, payload) {
				t.Fatalf("after reattach: %q, %v", got, err)
			}
			if srv.SessionCount() != 1 {
				t.Errorf("session count %d, want 1", srv.SessionCount())
			}
		})
	}
}

func TestProtocolOrderEnforced(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	cl := dialT(t, addr)

	_, err := cl.Open("p", 0)
	wantCode(t, err, ErrNoHello)
	if err := cl.Hello("bob"); err != nil {
		t.Fatal(err)
	}
	err = cl.Attach(true)
	wantCode(t, err, ErrNoSession)
	_, err = cl.Read(0, 8)
	wantCode(t, err, ErrNoSession)
	if _, err := cl.Open("p", 0); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Read(0, 8)
	wantCode(t, err, ErrNotAttached)
	err = cl.Write(0, []byte("x"))
	wantCode(t, err, ErrNotAttached)
	_, err = cl.Open("q", 0)
	wantCode(t, err, ErrExists)
	if err := cl.Attach(false); err != nil {
		t.Fatal(err)
	}
	err = cl.Attach(false)
	wantCode(t, err, ErrExists)
	// Read-only attachment rejects writes.
	err = cl.Write(64<<10, []byte("x"))
	wantCode(t, err, ErrDenied)
	err = cl.TxCommit([]TxWrite{{Off: 64 << 10, Data: []byte("x")}})
	wantCode(t, err, ErrDenied)
	// Out-of-pool span.
	_, err = cl.Read(1<<30, 8)
	wantCode(t, err, ErrRange)
}

func TestIdleSessionEviction(t *testing.T) {
	srv, addr := startTestServer(t, Options{IdleTimeout: 50 * time.Millisecond})
	cl := dialT(t, addr)
	if err := cl.Hello("idler"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("idle-sess", 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Attach(true); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(300<<10, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool { return srv.SessionCount() == 0 })
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("session not evicted (%d live)", n)
	}
	// The next op reports the eviction as a typed error...
	_, err := cl.Read(300<<10, 7)
	wantCode(t, err, ErrEvicted)
	// ...and a re-OPEN finds the same durable pool with the data intact.
	if _, err := cl.Open("idle-sess", 0); err != nil {
		t.Fatal(err)
	}
	if err := cl.Attach(true); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(300<<10, 7)
	if err != nil || string(got) != "durable" {
		t.Fatalf("data lost across eviction: %q, %v", got, err)
	}
	if srv.Metrics().Evictions.Load() == 0 {
		t.Error("eviction not counted")
	}
}

// TestBackpressureRetry saturates a 1-worker, depth-1 queue and checks
// the overflow answers RETRY instead of queueing or dropping.
func TestBackpressureRetry(t *testing.T) {
	srv, addr := startTestServer(t, Options{Workers: 1, QueueDepth: 1})
	// Occupy the single worker with a job that blocks on a shard we hold
	// hostage: grab every shard lock so any session op parks.
	for _, sh := range srv.shards {
		sh.mu.Lock()
	}
	locked := true
	unlock := func() {
		if !locked {
			return
		}
		locked = false
		for _, sh := range srv.shards {
			sh.mu.Unlock()
		}
	}
	defer unlock()

	cl := dialT(t, addr)
	if err := cl.Hello("flood"); err != nil {
		t.Fatal(err)
	}
	// OPEN needs a shard lock, so it parks in the worker; fire it and
	// follow with raw pipelined frames to fill the queue and overflow.
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	var buf bytes.Buffer
	writeFrame(&buf, EncodeRequest(&Request{Op: OpHello, ID: 1, Client: "flood2"}))
	for i := uint32(2); i < 12; i++ {
		writeFrame(&buf, EncodeRequest(&Request{Op: OpOpen, ID: i, Name: "f", Size: 1 << 20}))
	}
	if _, err := raw.Write(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	// HELLO answers inline-fast; the OPENs park (1 in worker, 1 queued),
	// the rest must come back RETRY.
	waitFor(t, 2*time.Second, func() bool { return srv.Metrics().Retries.Load() >= 1 })
	if got := srv.Metrics().Retries.Load(); got == 0 {
		t.Fatal("no RETRY issued under a full queue")
	}
	unlock()
	// After releasing, the parked OPEN completes; read responses until
	// we see at least one RETRY status on the wire.
	sawRetry := false
	raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 11; i++ {
		payload, err := readFrame(raw, nil)
		if err != nil {
			break
		}
		resp, werr := ParseResponse(payload, false)
		if werr != nil {
			t.Fatalf("bad response: %v", werr)
		}
		if resp.Status == StatusRetry {
			sawRetry = true
		}
	}
	if !sawRetry {
		t.Error("no RETRY response observed on the wire")
	}
}

// TestGracefulDrain: every request issued before Shutdown either
// completes or gets a typed response; Shutdown finishes the in-flight
// queue and leaves no sessions.
func TestGracefulDrain(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(lis) }()

	const clients = 8
	var wg sync.WaitGroup
	completed := make([]uint64, clients)
	stop := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl, err := Dial(lis.Addr().String())
			if err != nil {
				return
			}
			defer cl.Close()
			if cl.Hello("drain") != nil {
				return
			}
			// Distinct pools: the writable attachment is exclusive.
			if _, err := cl.Open(fmt.Sprintf("drain-%d", i), 0); err != nil {
				return
			}
			if cl.Attach(true) != nil {
				return
			}
			buf := []byte("drain-data")
			for {
				select {
				case <-stop:
					return
				default:
				}
				if err := cl.Write(300<<10, buf); err != nil {
					return // conn closed by shutdown: fine
				}
				completed[i]++
			}
		}(i)
	}
	time.Sleep(100 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v", err)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Errorf("%d sessions after drain", n)
	}
	var total uint64
	for _, c := range completed {
		total += c
	}
	if total == 0 {
		t.Error("no requests completed before drain")
	}
	// Second shutdown is a no-op.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second shutdown: %v", err)
	}
}

func TestLoadGeneratorSmoke(t *testing.T) {
	_, addr := startTestServer(t, Options{Engine: "domainvirt"})
	rep, err := RunLoad(LoadOptions{
		Addr:     addr,
		Clients:  8,
		Duration: 300 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("load run had %d errors (first: %s)", rep.Errors, rep.FirstErr)
	}
	if rep.IsolationViolations != 0 {
		t.Fatalf("%d isolation violations", rep.IsolationViolations)
	}
	if rep.Ops == 0 {
		t.Fatal("no ops completed")
	}
	if rep.Latency.Count != rep.Ops {
		t.Errorf("latency count %d != ops %d", rep.Latency.Count, rep.Ops)
	}
	if rep.Throughput() <= 0 {
		t.Error("zero throughput")
	}
}
