package serve

import (
	"net"
	"testing"
	"time"

	"domainvirt/internal/sim"
)

// benchServer builds a server with one attached writable session,
// driving the setup ops through dispatch exactly as a worker would.
func benchServer(tb testing.TB, engine sim.Scheme) (*Server, *conn) {
	tb.Helper()
	s := NewServer(Options{Engine: engine, IdleTimeout: time.Hour})
	cn := &conn{c: benchConn{}}
	s.conns[cn] = struct{}{}
	w := &workCtx{}
	open := func(req *Request) *Response { return s.dispatch(cn, req, w) }
	if r := open(&Request{Op: OpHello, ID: 1, Client: "bench"}); r.Status != StatusOK {
		tb.Fatalf("hello: %+v", r)
	}
	if r := open(&Request{Op: OpOpen, ID: 2, Name: "bench-pool", Size: 1 << 20}); r.Status != StatusOK {
		tb.Fatalf("open: %+v", r)
	}
	if r := open(&Request{Op: OpAttach, ID: 3, Writable: true}); r.Status != StatusOK {
		tb.Fatalf("attach: %+v", r)
	}
	return s, cn
}

type benchConn struct{ net.Conn }

func (benchConn) Close() error { return nil }

// BenchmarkRequestPath measures the worker-side request path — parse,
// detach, dispatch, encode — with the per-worker reusable storage the
// real worker loop uses. Steady state is allocation-free.
func BenchmarkRequestPath(b *testing.B) {
	payloadData := make([]byte, 128)
	for _, eng := range []sim.Scheme{"", "domainvirt"} {
		name := "none"
		if eng != "" {
			name = string(eng)
		}
		for _, op := range []string{"read", "write"} {
			b.Run(name+"/"+op, func(b *testing.B) {
				s, cn := benchServer(b, eng)
				var raw []byte
				if op == "read" {
					raw = EncodeRequest(&Request{Op: OpRead, ID: 7, Off: 4096, Len: 128})
				} else {
					raw = EncodeRequest(&Request{Op: OpWrite, ID: 7, Off: 4096, Data: payloadData})
				}
				var req Request
				w := &workCtx{}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if werr := parseRequestInto(&req, raw); werr != nil {
						b.Fatal(werr)
					}
					req.detach()
					r := s.dispatch(cn, &req, w)
					if r.Status != StatusOK {
						b.Fatalf("dispatch: %+v", r)
					}
					w.enc = appendResponse(w.enc[:0], r)
				}
			})
		}
	}
}

// BenchmarkWireRoundTrip measures pure encode/parse of a WRITE request
// and an OK response with reused buffers: the zero-alloc wire path.
func BenchmarkWireRoundTrip(b *testing.B) {
	data := make([]byte, 128)
	raw := EncodeRequest(&Request{Op: OpWrite, ID: 9, Off: 64, Data: data})
	var req Request
	var resp, back Response
	var enc []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if werr := parseRequestInto(&req, raw); werr != nil {
			b.Fatal(werr)
		}
		req.detach()
		resp = Response{Status: StatusOK, ID: req.ID}
		enc = appendResponse(enc[:0], &resp)
		if werr := parseResponseInto(&back, enc, false); werr != nil {
			b.Fatal(werr)
		}
	}
}

// TestWireRoundTripAllocFree pins the wire layer's zero-allocation
// contract: once the request's scratch and the encode buffer have
// grown, encode→parse→detach of data-carrying frames never allocates.
func TestWireRoundTripAllocFree(t *testing.T) {
	raw := EncodeRequest(&Request{Op: OpWrite, ID: 9, Off: 64, Data: make([]byte, 256)})
	tx := EncodeRequest(&Request{Op: OpTxCommit, ID: 10, Tx: []TxWrite{
		{Off: 0, Data: make([]byte, 64)}, {Off: 128, Data: make([]byte, 64)},
	}})
	var req Request
	var resp, back Response
	var enc []byte
	round := func() {
		for _, payload := range [][]byte{raw, tx} {
			if werr := parseRequestInto(&req, payload); werr != nil {
				t.Fatal(werr)
			}
			req.detach()
		}
		resp = Response{Status: StatusOK, ID: req.ID}
		enc = appendResponse(enc[:0], &resp)
		if werr := parseResponseInto(&back, enc, false); werr != nil {
			t.Fatal(werr)
		}
	}
	round() // warm: grow scratch and encode buffers once
	if allocs := testing.AllocsPerRun(500, round); allocs != 0 {
		t.Fatalf("wire round trip allocates %v times per run, want 0", allocs)
	}
}

// TestRequestPathAllocFree pins the worker-side request path at zero
// allocations per steady-state READ and WRITE, both in library mode and
// under a protection engine.
func TestRequestPathAllocFree(t *testing.T) {
	for _, eng := range []sim.Scheme{"", "domainvirt"} {
		name := "none"
		if eng != "" {
			name = string(eng)
		}
		t.Run(name, func(t *testing.T) {
			s, cn := benchServer(t, eng)
			rawR := EncodeRequest(&Request{Op: OpRead, ID: 7, Off: 4096, Len: 128})
			rawW := EncodeRequest(&Request{Op: OpWrite, ID: 8, Off: 4096, Data: make([]byte, 128)})
			var req Request
			w := &workCtx{}
			round := func() {
				for _, payload := range [][]byte{rawR, rawW} {
					if werr := parseRequestInto(&req, payload); werr != nil {
						t.Fatal(werr)
					}
					req.detach()
					r := s.dispatch(cn, &req, w)
					if r.Status != StatusOK {
						t.Fatalf("dispatch: %+v", r)
					}
					w.enc = appendResponse(w.enc[:0], r)
				}
			}
			round() // warm: grow scratch, READ data, and encode buffers
			if allocs := testing.AllocsPerRun(300, round); allocs != 0 {
				t.Fatalf("request path allocates %v times per run, want 0", allocs)
			}
		})
	}
}
