package serve

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestHelloNegotiation covers the version handshake: a v2 offer
// negotiates v2, a bare v1 HELLO stays v1 and still gets the bare OK
// (byte-compatible with pre-negotiation daemons), and batching on a v1
// session is refused with the typed version error on both sides.
func TestHelloNegotiation(t *testing.T) {
	srv, addr := startTestServer(t, Options{})
	_ = srv

	t.Run("v2", func(t *testing.T) {
		cl := dialT(t, addr)
		if err := cl.Hello("alice"); err != nil {
			t.Fatal(err)
		}
		if cl.Proto() != ProtoV2 {
			t.Fatalf("negotiated v%d, want v%d", cl.Proto(), ProtoV2)
		}
	})
	t.Run("v1 pin", func(t *testing.T) {
		cl := dialT(t, addr)
		if err := cl.HelloV1("bob"); err != nil {
			t.Fatal(err)
		}
		if cl.Proto() != ProtoV1 {
			t.Fatalf("negotiated v%d, want v%d", cl.Proto(), ProtoV1)
		}
		// Client-side guard: batching without v2 never hits the wire.
		err := cl.DoBatch([]*Request{{Op: OpStats}}, make([]Response, 1))
		wantCode(t, err, ErrVersion)
	})
	t.Run("v1 bare OK", func(t *testing.T) {
		// A hand-rolled v1 HELLO must get the v1-shaped response: OK
		// with an empty body, no version byte.
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := writeFrame(c, EncodeRequest(&Request{Op: OpHello, ID: 1, Client: "carol"})); err != nil {
			t.Fatal(err)
		}
		payload, err := readFrame(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, werr := ParseResponse(payload, false)
		if werr != nil {
			t.Fatal(werr)
		}
		if resp.Status != StatusOK || len(resp.Data) != 0 {
			t.Fatalf("v1 HELLO response %+v, want bare OK", resp)
		}
	})
	t.Run("server rejects batch on v1 session", func(t *testing.T) {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := writeFrame(c, EncodeRequest(&Request{Op: OpHello, ID: 1, Client: "dave"})); err != nil {
			t.Fatal(err)
		}
		if _, err := readFrame(c, nil); err != nil {
			t.Fatal(err)
		}
		batch := AppendBatch(nil, 9, []*Request{{Op: OpStats, ID: 10}})
		if err := writeFrame(c, batch); err != nil {
			t.Fatal(err)
		}
		payload, err := readFrame(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, werr := ParseResponse(payload, false)
		if werr != nil {
			t.Fatal(werr)
		}
		if resp.Status != StatusErr || resp.Code != ErrVersion || resp.ID != 9 {
			t.Fatalf("batch on v1 session: %+v, want ErrVersion on id 9", resp)
		}
	})
	t.Run("future version clamps", func(t *testing.T) {
		cl := dialT(t, addr)
		resp, err := cl.roundTrip(&Request{Op: OpHello, Client: "eve", Proto: 9})
		if err != nil {
			t.Fatal(err)
		}
		if len(resp.Data) != 1 || resp.Data[0] != MaxProto {
			t.Fatalf("offered v9, server answered %v, want clamp to v%d", resp.Data, MaxProto)
		}
	})
}

// TestBatchRoundTrip exercises the pipelined path against a live
// server: mixed ops in one frame, correlation-ID matching, per-entry
// errors that do not poison the batch.
func TestBatchRoundTrip(t *testing.T) {
	srv, addr := startTestServer(t, Options{})
	cl := dialT(t, addr)
	if err := cl.Hello("batcher"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("batcher-pool", 512<<10); err != nil {
		t.Fatal(err)
	}
	if err := cl.Attach(true); err != nil {
		t.Fatal(err)
	}

	reqs := []*Request{
		{Op: OpWrite, Off: 300 << 10, Data: []byte("one")},
		{Op: OpWrite, Off: 310 << 10, Data: []byte("two")},
		{Op: OpRead, Off: 300 << 10, Len: 3},
		{Op: OpTxCommit, Tx: []TxWrite{{Off: 320 << 10, Data: []byte("three")}}},
		{Op: OpRead, Off: 320 << 10, Len: 5},
		{Op: OpRead, Off: 1 << 30, Len: 4}, // out of range: per-entry error
		{Op: OpStats},
	}
	resps := make([]Response, len(reqs))
	if err := cl.DoBatch(reqs, resps); err != nil {
		t.Fatal(err)
	}
	for i := range []int{0, 1, 2, 3, 4} {
		if resps[i].Status != StatusOK {
			t.Errorf("entry %d: %+v, want OK", i, resps[i])
		}
	}
	if string(resps[2].Data) != "one" || string(resps[4].Data) != "three" {
		t.Errorf("batched reads %q, %q", resps[2].Data, resps[4].Data)
	}
	if resps[5].Status != StatusErr || resps[5].Code != ErrRange {
		t.Errorf("out-of-range entry: %+v, want ErrRange", resps[5])
	}
	if resps[6].Status != StatusOK || !bytes.Contains(resps[6].Data, []byte("pmod_requests_total")) {
		t.Errorf("batched STATS entry broken: %+v", resps[6])
	}
	if got := srv.Metrics().Requests[OpBatch].Load(); got != 1 {
		t.Errorf("server counted %d BATCH frames, want 1", got)
	}
}

// TestBatchSessionLifecycleInBatch runs OPEN/CLOSE inside batches
// against the server directly (legal there, unlike through the router)
// to pin sub-request semantics.
func TestBatchSessionLifecycleInBatch(t *testing.T) {
	srv, addr := startTestServer(t, Options{})
	cl := dialT(t, addr)
	if err := cl.Hello("lifecycle"); err != nil {
		t.Fatal(err)
	}
	reqs := []*Request{
		{Op: OpOpen, Name: "lifecycle-pool", Size: 512 << 10},
		{Op: OpAttach, Writable: true},
		{Op: OpWrite, Off: 300 << 10, Data: []byte("in-batch")},
		{Op: OpClose},
	}
	resps := make([]Response, len(reqs))
	if err := cl.DoBatch(reqs, resps); err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if resp.Status != StatusOK {
			t.Fatalf("entry %d: %+v", i, resp)
		}
	}
	if resps[0].SID == 0 {
		t.Error("batched OPEN returned no session id")
	}
	waitFor(t, time.Second, func() bool { return srv.SessionCount() == 0 })
	if n := srv.SessionCount(); n != 0 {
		t.Errorf("%d sessions leaked after batched CLOSE", n)
	}
}

// TestParseBatchMalformed table-tests the BATCH container parser: every
// malformation must yield a typed *WireError, never a panic, and leave
// drawn requests accounted for release.
func TestParseBatchMalformed(t *testing.T) {
	mk := func(reqs ...*Request) []byte { return AppendBatch(nil, 7, reqs) }
	read := &Request{Op: OpRead, Off: 64, Len: 8}
	cases := []struct {
		name    string
		payload []byte
		want    ErrCode
	}{
		{"empty payload", nil, ErrBadFrame},
		{"header only", []byte{byte(OpBatch), 0, 0, 0, 7}, ErrBadFrame},
		{"not a batch op", EncodeRequest(read), ErrBadFrame},
		{"zero entries", mk(), ErrBadFrame},
		{"count over limit", func() []byte {
			b := mk(read)
			binary.BigEndian.PutUint16(b[5:], MaxBatch+1)
			return b
		}(), ErrTooLarge},
		{"count lies high", func() []byte {
			b := mk(read)
			binary.BigEndian.PutUint16(b[5:], 3)
			return b
		}(), ErrBadFrame},
		{"truncated entry", func() []byte {
			b := mk(read)
			return b[:len(b)-3]
		}(), ErrBadFrame},
		{"entry length lies", func() []byte {
			b := mk(read)
			binary.BigEndian.PutUint32(b[7:], 1<<20)
			return b
		}(), ErrBadFrame},
		{"trailing bytes", append(mk(read), 0xAA), ErrBadFrame},
		{"hello inside batch", mk(&Request{Op: OpHello, Client: "x", Proto: 2}), ErrBadFrame},
		{"nested batch", func() []byte {
			inner := mk(read)
			b := AppendBatch(nil, 8, nil)
			binary.BigEndian.PutUint16(b[5:], 1)
			b = binary.BigEndian.AppendUint32(b, uint32(len(inner)))
			return append(b, inner...)
		}(), ErrBadFrame},
		{"malformed sub-request", func() []byte {
			b := AppendBatch(nil, 9, nil)
			binary.BigEndian.PutUint16(b[5:], 1)
			b = binary.BigEndian.AppendUint32(b, 3)
			return append(b, 0xEE, 0x01, 0x02)
		}(), ErrBadFrame},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := &Batch{}
			werr := parseBatchInto(b, c.payload, func() *Request { return &Request{} })
			if werr == nil {
				t.Fatalf("parsed without error: %+v", b)
			}
			if werr.Code != c.want {
				t.Errorf("code %d (%s), want %d", werr.Code, werr.Msg, c.want)
			}
		})
	}
}

// TestMalformedBatchOverWire drives raw malformed BATCH frames at a
// live server: typed scalar error on the batch ID, no panic, no
// session leak, and the connection stays usable after recoverable
// errors.
func TestMalformedBatchOverWire(t *testing.T) {
	srv, addr := startTestServer(t, Options{})
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	roundTrip := func(payload []byte) *Response {
		t.Helper()
		if err := writeFrame(c, payload); err != nil {
			t.Fatal(err)
		}
		raw, err := readFrame(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, werr := ParseResponse(raw, false)
		if werr != nil {
			t.Fatalf("unparseable response: %v", werr)
		}
		return resp
	}

	if resp := roundTrip(EncodeRequest(&Request{Op: OpHello, ID: 1, Client: "mallory", Proto: 2})); resp.Status != StatusOK {
		t.Fatalf("hello: %+v", resp)
	}
	if resp := roundTrip(EncodeRequest(&Request{Op: OpOpen, ID: 2, Name: "mallory-pool", Size: 512 << 10})); resp.Status != StatusOK {
		t.Fatalf("open: %+v", resp)
	}

	truncated := AppendBatch(nil, 40, []*Request{{Op: OpRead, ID: 41, Off: 0, Len: 8}})
	binary.BigEndian.PutUint16(truncated[5:], 5) // count lies
	resp := roundTrip(truncated)
	if resp.Status != StatusErr || resp.Code != ErrBadFrame || resp.ID != 40 {
		t.Fatalf("lying batch count: %+v, want ErrBadFrame on id 40", resp)
	}

	withHello := AppendBatch(nil, 50, []*Request{{Op: OpHello, ID: 51, Client: "x", Proto: 2}})
	resp = roundTrip(withHello)
	if resp.Status != StatusErr || resp.Code != ErrBadFrame || resp.ID != 50 {
		t.Fatalf("HELLO in batch: %+v, want ErrBadFrame on id 50", resp)
	}

	// The connection (and its session) survive recoverable batch errors.
	good := AppendBatch(nil, 60, []*Request{{Op: OpAttach, ID: 61, Writable: true}})
	raw := func() []byte {
		if err := writeFrame(c, good); err != nil {
			t.Fatal(err)
		}
		b, err := readFrame(c, nil)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}()
	var it batchRespIter
	if werr := it.init(raw); werr != nil {
		t.Fatalf("good batch after bad ones: %v", werr)
	}
	if srv.SessionCount() != 1 {
		t.Errorf("session count %d, want 1 (conn must survive)", srv.SessionCount())
	}

	c.Close()
	waitFor(t, time.Second, func() bool { return srv.SessionCount() == 0 })
	if n := srv.SessionCount(); n != 0 {
		t.Errorf("%d sessions leaked after malformed batch traffic", n)
	}
}

// FuzzBatch throws arbitrary bytes at the BATCH container parser; the
// contract is no panic, and every drawn sub-request is tracked in
// b.Reqs whether or not the parse succeeds (the pool-return invariant).
func FuzzBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(OpBatch), 0, 0, 0, 1, 0, 1})
	f.Add(AppendBatch(nil, 1, []*Request{{Op: OpRead, ID: 2, Off: 64, Len: 8}}))
	f.Add(AppendBatch(nil, 3, []*Request{
		{Op: OpWrite, ID: 4, Off: 0, Data: []byte("ab")},
		{Op: OpTxCommit, ID: 5, Tx: []TxWrite{{Off: 8, Data: []byte("cd")}}},
		{Op: OpClose, ID: 6},
	}))
	f.Add(append(AppendBatch(nil, 7, []*Request{{Op: OpStats, ID: 8}}), 0xFF))
	f.Fuzz(func(t *testing.T, payload []byte) {
		b := &Batch{}
		drawn := 0
		werr := parseBatchInto(b, payload, func() *Request { drawn++; return &Request{} })
		if drawn != len(b.Reqs) {
			t.Fatalf("drew %d requests but tracked %d: pool leak", drawn, len(b.Reqs))
		}
		if werr != nil {
			return
		}
		if len(b.Reqs) == 0 || len(b.Reqs) > MaxBatch {
			t.Fatalf("accepted batch with %d entries", len(b.Reqs))
		}
		// A valid container re-encodes and re-parses identically.
		for _, req := range b.Reqs {
			req.detach()
		}
		again := &Batch{}
		if werr := parseBatchInto(again, AppendBatch(nil, b.ID, b.Reqs), func() *Request { return &Request{} }); werr != nil {
			t.Fatalf("re-encode of valid batch failed to parse: %v", werr)
		}
		if again.ID != b.ID || len(again.Reqs) != len(b.Reqs) {
			t.Fatalf("re-encode changed container: %d/%d entries, id %d/%d",
				len(again.Reqs), len(b.Reqs), again.ID, b.ID)
		}
	})
}

// countingConn counts network write calls — the syscall-shaped cost the
// batch path exists to amortize.
type countingConn struct {
	net.Conn
	writes atomic.Uint64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// TestBatchSyscallReduction is the cluster PR's acceptance check: at
// batch size 8, the client must complete at least 4x as many ops per
// network round trip (one buffered write + one response read) as the
// scalar path's one.
func TestBatchSyscallReduction(t *testing.T) {
	_, addr := startTestServer(t, Options{})
	const perMode = 80

	run := func(batch int) (ops, writes uint64) {
		raw, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		cc := &countingConn{Conn: raw}
		cl := NewClient(cc)
		defer cl.Close()
		if err := cl.Hello(fmt.Sprintf("count-%d", batch)); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Open(fmt.Sprintf("count-%d-pool", batch), 512<<10); err != nil {
			t.Fatal(err)
		}
		if err := cl.Attach(true); err != nil {
			t.Fatal(err)
		}
		base := cc.writes.Load()
		data := []byte("payload.")
		if batch <= 1 {
			for i := 0; i < perMode; i++ {
				if err := cl.Write(300<<10, data); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			reqs := make([]*Request, batch)
			resps := make([]Response, batch)
			for j := range reqs {
				reqs[j] = &Request{Op: OpWrite, Off: 300 << 10, Data: data}
			}
			for i := 0; i < perMode/batch; i++ {
				if err := cl.DoBatch(reqs, resps); err != nil {
					t.Fatal(err)
				}
				for j := range resps {
					if resps[j].Status != StatusOK {
						t.Fatalf("entry %d: %+v", j, resps[j])
					}
				}
			}
		}
		return perMode, cc.writes.Load() - base
	}

	scalarOps, scalarWrites := run(1)
	batchOps, batchWrites := run(8)
	scalarRatio := float64(scalarOps) / float64(scalarWrites)
	batchRatio := float64(batchOps) / float64(batchWrites)
	t.Logf("scalar: %d ops / %d writes = %.2f; batch8: %d ops / %d writes = %.2f",
		scalarOps, scalarWrites, scalarRatio, batchOps, batchWrites, batchRatio)
	if batchRatio < 4*scalarRatio {
		t.Fatalf("batch pipelining gives %.2f ops per network write vs scalar %.2f: want >= 4x", batchRatio, scalarRatio)
	}
}

// BenchmarkBatchRoundTrip measures client-observed throughput over a
// live socket at increasing batch sizes. The ops/round-trip metric is
// the pipelining win the cluster tier depends on: batch=8 must amortize
// one network write + read over 8 ops (vs 1 for scalar).
func BenchmarkBatchRoundTrip(b *testing.B) {
	_, addr := startTestServer(b, Options{})
	data := make([]byte, 128)
	for _, batch := range []int{1, 2, 8, 32} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			raw, err := net.Dial("tcp", addr)
			if err != nil {
				b.Fatal(err)
			}
			cc := &countingConn{Conn: raw}
			cl := NewClient(cc)
			defer cl.Close()
			if err := cl.Hello("bench"); err != nil {
				b.Fatal(err)
			}
			if _, err := cl.Open(fmt.Sprintf("bench-%d", batch), 1<<20); err != nil {
				b.Fatal(err)
			}
			if err := cl.Attach(true); err != nil {
				b.Fatal(err)
			}
			reqs := make([]*Request, batch)
			resps := make([]Response, batch)
			for j := range reqs {
				reqs[j] = &Request{Op: OpWrite, Off: 300 << 10, Data: data}
			}
			base := cc.writes.Load()
			b.ReportAllocs()
			b.ResetTimer()
			ops := 0
			for i := 0; i < b.N; i++ {
				if batch == 1 {
					if err := cl.Write(300<<10, data); err != nil {
						b.Fatal(err)
					}
					ops++
					continue
				}
				if err := cl.DoBatch(reqs, resps); err != nil {
					b.Fatal(err)
				}
				for j := range resps {
					if resps[j].Status != StatusOK {
						b.Fatalf("entry %d: %+v", j, resps[j])
					}
				}
				ops += batch
			}
			b.StopTimer()
			if writes := cc.writes.Load() - base; writes > 0 {
				b.ReportMetric(float64(ops)/float64(writes), "ops/roundtrip")
			}
			b.ReportMetric(float64(ops)/b.Elapsed().Seconds(), "ops/s")
		})
	}
}

// TestClientTimeout pins the typed I/O deadline error: a peer that
// never answers must surface ErrTimeout, and a canceled dial context
// must fail immediately.
func TestClientTimeout(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			defer c.Close() // accept, then never respond
		}
	}()

	cl, err := Dial(lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	cl.SetTimeout(50 * time.Millisecond)
	start := time.Now()
	err = cl.Hello("nobody")
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("silent server: %v, want ErrTimeout", err)
	}
	if since := time.Since(start); since > 2*time.Second {
		t.Fatalf("timeout took %v, want ~50ms", since)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, lis.Addr().String()); err == nil {
		t.Fatal("dial with canceled context succeeded")
	}
}

// TestBatchWirePathAllocFree pins the batch container's encode and
// parse at zero steady-state allocations, extending the PR-4 invariant
// to the v2 path.
func TestBatchWirePathAllocFree(t *testing.T) {
	reqs := []*Request{
		{Op: OpWrite, ID: 2, Off: 64, Data: make([]byte, 128)},
		{Op: OpRead, ID: 3, Off: 64, Len: 128},
		{Op: OpTxCommit, ID: 4, Tx: []TxWrite{{Off: 0, Data: make([]byte, 32)}}},
	}
	var enc []byte
	pool := make([]*Request, 0, MaxBatch)
	for i := 0; i < MaxBatch; i++ {
		pool = append(pool, &Request{})
	}
	b := &Batch{}
	var respEnc []byte
	var resp Response
	round := func() {
		enc = AppendBatch(enc[:0], 1, reqs)
		next := 0
		b.ID, b.Reqs = 0, b.Reqs[:0]
		if werr := parseBatchInto(b, enc, func() *Request { r := pool[next]; next++; return r }); werr != nil {
			t.Fatal(werr)
		}
		for _, req := range b.Reqs {
			req.detach()
		}
		respEnc = appendBatchRespHeader(respEnc[:0], b.ID, len(b.Reqs))
		for _, req := range b.Reqs {
			resp = Response{Status: StatusOK, ID: req.ID}
			respEnc = appendBatchRespEntry(respEnc, &resp)
		}
		var it batchRespIter
		if werr := it.init(respEnc); werr != nil {
			t.Fatal(werr)
		}
		for {
			sub, werr := it.next()
			if werr != nil {
				t.Fatal(werr)
			}
			if sub == nil {
				break
			}
		}
	}
	round() // warm: grow scratch and encode buffers once
	if allocs := testing.AllocsPerRun(300, round); allocs != 0 {
		t.Fatalf("batch wire path allocates %v times per run, want 0", allocs)
	}
}

// TestCloseSessionKeepsConn pins the OpClose contract the router's conn
// reuse depends on: CLOSE ends the session, the connection survives,
// and a new HELLO + OPEN on it works under a fresh identity.
func TestCloseSessionKeepsConn(t *testing.T) {
	srv, addr := startTestServer(t, Options{})
	cl := dialT(t, addr)
	if err := cl.Hello("first"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("first-pool", 512<<10); err != nil {
		t.Fatal(err)
	}
	if err := cl.Attach(true); err != nil {
		t.Fatal(err)
	}
	if err := cl.CloseSession(); err != nil {
		t.Fatal(err)
	}
	if n := srv.SessionCount(); n != 0 {
		t.Fatalf("session count %d after CLOSE, want 0", n)
	}
	if got := srv.Metrics().Closes.Load(); got != 1 {
		t.Errorf("close counter %d, want 1", got)
	}
	// Same conn, new identity — exactly the router's reuse sequence.
	if err := cl.Hello("second"); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open("second-pool", 512<<10); err != nil {
		t.Fatal(err)
	}
	if err := cl.Attach(true); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(300<<10, []byte("reborn")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Read(300<<10, 6)
	if err != nil || string(got) != "reborn" {
		t.Fatalf("read after identity swap: %q, %v", got, err)
	}
	// CLOSE with no session is a typed error, not a hang.
	if err := cl.CloseSession(); err != nil {
		t.Fatal(err)
	}
	err = cl.CloseSession()
	wantCode(t, err, ErrNoSession)
}
