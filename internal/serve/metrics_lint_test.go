package serve

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"domainvirt/internal/obs"
	"domainvirt/internal/reqtrace"
)

// TestMetricsExpositionValidUnderLoad is the golden-format gate for the
// STATS snapshot: while a concurrent load run mutates every counter and
// histogram, each WriteMetrics snapshot must still be valid Prometheus
// exposition — HELP/TYPE once per family, contiguous families, ordered
// le thresholds, no NaN/negative counts. This is exactly what a scraper
// sees mid-run.
func TestMetricsExpositionValidUnderLoad(t *testing.T) {
	srv, addr := startTestServer(t, Options{
		Engine: "domainvirt",
		Trace:  reqtrace.Config{SampleEvery: 2, RingSize: 256},
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep, err := RunLoad(LoadOptions{
			Addr: addr, Clients: 6, Duration: 400 * time.Millisecond,
			ValueSize: 128, TxFraction: 0.2, Seed: 7,
		})
		if err != nil {
			t.Errorf("load: %v", err)
		} else if rep.Errors > 0 {
			t.Errorf("load errors: %d (%s)", rep.Errors, rep.FirstErr)
		}
	}()

	deadline := time.Now().Add(450 * time.Millisecond)
	snapshots := 0
	for time.Now().Before(deadline) {
		var b bytes.Buffer
		if err := srv.WriteMetrics(&b); err != nil {
			t.Fatalf("WriteMetrics: %v", err)
		}
		if findings := obs.LintProm(bytes.NewReader(b.Bytes())); len(findings) != 0 {
			t.Fatalf("snapshot %d invalid:\n%s\n--- exposition ---\n%s",
				snapshots, strings.Join(findings, "\n"), b.String())
		}
		snapshots++
		time.Sleep(5 * time.Millisecond)
	}
	wg.Wait()
	if snapshots < 10 {
		t.Fatalf("only %d snapshots linted; expected sustained concurrent scraping", snapshots)
	}

	// Final snapshot: the op-latency family must be a single family even
	// with many ops populated (the duplicate-header regression), and the
	// stage family must be present since tracing is on.
	var b bytes.Buffer
	if err := srv.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if n := strings.Count(text, "# HELP pmod_op_latency_ns "); n != 1 {
		t.Fatalf("pmod_op_latency_ns HELP appears %d times, want 1", n)
	}
	if !strings.Contains(text, `pmod_stage_latency_ns_bucket{stage="queue",le=`) {
		t.Fatal("final snapshot missing stage latency family")
	}
	if findings := obs.LintProm(strings.NewReader(text)); len(findings) != 0 {
		t.Fatalf("final snapshot invalid:\n%s", strings.Join(findings, "\n"))
	}
}
