package serve

import (
	"math/rand"
	"testing"
	"time"
)

// planClient builds just enough of a loadClient to replay its op plan
// without a connection.
func planClient(seed int64, i int) *loadClient {
	o := LoadOptions{
		Pools:        50,
		ZipfS:        1.3,
		ReadFraction: 0.7,
		TxFraction:   0.1,
		PoolSize:     1 << 20,
		ValueSize:    128,
	}
	c := &loadClient{
		i:    i,
		o:    &o,
		plan: rand.New(rand.NewSource(seed + int64(i)*7919)),
	}
	c.zipf = rand.NewZipf(c.plan, o.ZipfS, 1, uint64(o.Pools-1))
	c.span = o.PoolSize - (256 << 10) - uint64(o.ValueSize)
	return c
}

// TestLoadPlanDeterminism pins the reproducibility contract: equal
// seeds replay the identical pool-pick and op-draw sequence (backoff
// jitter lives on a separate RNG precisely so retries cannot perturb
// it), and different seeds produce different plans.
func TestLoadPlanDeterminism(t *testing.T) {
	type draw struct {
		pool, kind int
		off        uint64
	}
	replay := func(seed int64, i int) []draw {
		c := planClient(seed, i)
		out := make([]draw, 0, 500)
		for n := 0; n < 500; n++ {
			d := draw{pool: c.pickPool()}
			d.kind, d.off = c.drawOp()
			out = append(out, d)
		}
		return out
	}

	a, b := replay(42, 3), replay(42, 3)
	for n := range a {
		if a[n] != b[n] {
			t.Fatalf("draw %d differs under equal seeds: %+v vs %+v", n, a[n], b[n])
		}
	}
	other := replay(43, 3)
	same := 0
	for n := range a {
		if a[n] == other[n] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds replayed the identical plan")
	}
	sibling := replay(42, 4)
	same = 0
	for n := range a {
		if a[n] == sibling[n] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different client indexes replayed the identical plan")
	}
}

// TestRunLoadCluster drives the cluster-shaped load path (shared
// Zipf-skewed pools, batching, churn, per-node attribution) against a
// single live server: co-writers must agree on each pool's pattern, so
// a clean run ends with zero errors and zero isolation violations.
func TestRunLoadCluster(t *testing.T) {
	_, addr := startTestServer(t, Options{IdleTimeout: time.Hour})
	rep, err := RunLoad(LoadOptions{
		Addr:         addr,
		Clients:      4,
		Duration:     400 * time.Millisecond,
		ReadFraction: 0.6,
		TxFraction:   0.1,
		ValueSize:    64,
		PoolSize:     512 << 10,
		Seed:         7,
		Pools:        6,
		ZipfS:        1.2,
		Churn:        0.05,
		Batch:        4,
		NodeNames:    []string{addr},
		NodeOf:       func(string) int { return 0 },
	})
	if err != nil {
		t.Fatalf("RunLoad: %v (first error %q)", err, rep.FirstErr)
	}
	if rep.Errors != 0 || rep.IsolationViolations != 0 {
		t.Fatalf("errors %d, violations %d (first error %q)", rep.Errors, rep.IsolationViolations, rep.FirstErr)
	}
	if rep.Ops == 0 || rep.Batches == 0 {
		t.Fatalf("no batched traffic: %d ops in %d batches", rep.Ops, rep.Batches)
	}
	if got := rep.Ops; got != rep.Reads+rep.Writes+rep.Txs {
		t.Errorf("op counts inconsistent: %d != %d+%d+%d", got, rep.Reads, rep.Writes, rep.Txs)
	}
	if len(rep.PerNode) != 1 || rep.PerNode[0].Ops != rep.Ops {
		t.Errorf("per-node attribution lost ops: %+v vs total %d", rep.PerNode, rep.Ops)
	}
	if rep.Latency.Count == 0 {
		t.Error("no latency samples recorded")
	}
}
