package serve

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"domainvirt/internal/obs"
)

// Metrics is the daemon's live counter and latency state. Counters are
// lock-free atomics bumped on the request path; the per-op log2 latency
// histograms reuse the observability layer's mergeable obs.Histogram
// (values in nanoseconds) under one short mutex.
type Metrics struct {
	Requests  [numOps]atomic.Uint64 // by opcode
	OKs       atomic.Uint64
	Errors    [24]atomic.Uint64 // by ErrCode
	Retries   atomic.Uint64
	BytesIn   atomic.Uint64 // frame payload bytes received
	BytesOut  atomic.Uint64 // frame payload bytes sent
	ReadData  atomic.Uint64 // pool bytes served to clients
	WroteData atomic.Uint64 // pool bytes written for clients

	Opens     atomic.Uint64
	Attaches  atomic.Uint64
	Detaches  atomic.Uint64
	Evictions atomic.Uint64
	Closes    atomic.Uint64 // CLOSE ops (session ended, connection kept)
	TxCommits atomic.Uint64

	mu  sync.Mutex
	lat [numOps]obs.Histogram // request latency in ns, by opcode
}

// ObserveLatency records one request's service latency.
func (m *Metrics) ObserveLatency(op Op, ns uint64) {
	if int(op) >= numOps {
		return
	}
	m.mu.Lock()
	m.lat[op].Observe(ns)
	m.mu.Unlock()
}

// CountError bumps the typed-error counter for code.
func (m *Metrics) CountError(code ErrCode) {
	if int(code) < len(m.Errors) {
		m.Errors[code].Add(1)
	}
}

// latSnapshot copies the latency histograms out from under the mutex.
func (m *Metrics) latSnapshot() [numOps]obs.Histogram {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.lat
}

// errNames maps error codes to stable label values.
var errNames = map[ErrCode]string{
	ErrBadFrame: "bad_frame", ErrBadOp: "bad_op", ErrTooLarge: "too_large",
	ErrNoHello: "no_hello", ErrNoSession: "no_session", ErrExists: "exists",
	ErrNotAttached: "not_attached", ErrDenied: "denied", ErrRange: "range",
	ErrEvicted: "evicted", ErrDraining: "draining", ErrTx: "tx", ErrInternal: "internal",
	ErrDisabled: "disabled", ErrUnavailable: "unavailable", ErrVersion: "version",
}

// EngineTotals aggregates the protection-engine counters the daemon
// exposes: how often isolation actually fired while serving traffic.
type EngineTotals struct {
	DomainFaults uint64 // denied cross-domain accesses
	PageFaults   uint64
	PermSwitches uint64 // SETPERM windows opened/closed
	Evictions    uint64 // key/DTTLB/PTLB evictions (shootdown-equivalents)
	TLBFlushed   uint64 // shootdown-equivalent TLB invalidations
}

// WritePrometheus renders the daemon snapshot in Prometheus text format:
// request/response counters, byte counters, session lifecycle counters,
// per-op latency histograms, and — when a protection engine is active —
// the engine's isolation counters.
func (m *Metrics) WritePrometheus(w io.Writer, sessions, conns int, eng *EngineTotals) error {
	fmt.Fprintf(w, "# HELP pmod_requests_total Requests received, by opcode.\n# TYPE pmod_requests_total counter\n")
	for op := Op(1); op < numOps; op++ {
		fmt.Fprintf(w, "pmod_requests_total{op=%q} %d\n", op.String(), m.Requests[op].Load())
	}
	fmt.Fprintf(w, "# HELP pmod_responses_total Responses sent, by status.\n# TYPE pmod_responses_total counter\n")
	var errs uint64
	for i := range m.Errors {
		errs += m.Errors[i].Load()
	}
	fmt.Fprintf(w, "pmod_responses_total{status=\"ok\"} %d\n", m.OKs.Load())
	fmt.Fprintf(w, "pmod_responses_total{status=\"err\"} %d\n", errs)
	fmt.Fprintf(w, "pmod_responses_total{status=\"retry\"} %d\n", m.Retries.Load())
	fmt.Fprintf(w, "# HELP pmod_errors_total Typed protocol errors, by code.\n# TYPE pmod_errors_total counter\n")
	for code := ErrBadFrame; code <= maxErrCode; code++ {
		if n := m.Errors[code].Load(); n > 0 {
			fmt.Fprintf(w, "pmod_errors_total{code=%q} %d\n", errNames[code], n)
		}
	}
	fmt.Fprintf(w, "# HELP pmod_bytes_total Wire payload bytes, by direction.\n# TYPE pmod_bytes_total counter\n")
	fmt.Fprintf(w, "pmod_bytes_total{dir=\"in\"} %d\n", m.BytesIn.Load())
	fmt.Fprintf(w, "pmod_bytes_total{dir=\"out\"} %d\n", m.BytesOut.Load())
	fmt.Fprintf(w, "# HELP pmod_pool_bytes_total Pool data bytes moved for clients.\n# TYPE pmod_pool_bytes_total counter\n")
	fmt.Fprintf(w, "pmod_pool_bytes_total{dir=\"read\"} %d\n", m.ReadData.Load())
	fmt.Fprintf(w, "pmod_pool_bytes_total{dir=\"write\"} %d\n", m.WroteData.Load())

	fmt.Fprintf(w, "# HELP pmod_sessions_lifecycle_total Session lifecycle events.\n# TYPE pmod_sessions_lifecycle_total counter\n")
	fmt.Fprintf(w, "pmod_sessions_lifecycle_total{event=\"open\"} %d\n", m.Opens.Load())
	fmt.Fprintf(w, "pmod_sessions_lifecycle_total{event=\"attach\"} %d\n", m.Attaches.Load())
	fmt.Fprintf(w, "pmod_sessions_lifecycle_total{event=\"detach\"} %d\n", m.Detaches.Load())
	fmt.Fprintf(w, "pmod_sessions_lifecycle_total{event=\"evict\"} %d\n", m.Evictions.Load())
	fmt.Fprintf(w, "pmod_sessions_lifecycle_total{event=\"close\"} %d\n", m.Closes.Load())
	fmt.Fprintf(w, "# HELP pmod_tx_commits_total Durable transactions committed.\n# TYPE pmod_tx_commits_total counter\n")
	fmt.Fprintf(w, "pmod_tx_commits_total %d\n", m.TxCommits.Load())

	fmt.Fprintf(w, "# HELP pmod_sessions_active Live sessions.\n# TYPE pmod_sessions_active gauge\n")
	fmt.Fprintf(w, "pmod_sessions_active %d\n", sessions)
	fmt.Fprintf(w, "# HELP pmod_conns_active Live connections.\n# TYPE pmod_conns_active gauge\n")
	fmt.Fprintf(w, "pmod_conns_active %d\n", conns)

	if eng != nil {
		fmt.Fprintf(w, "# HELP pmod_engine_events_total Protection-engine events across all shards.\n# TYPE pmod_engine_events_total counter\n")
		fmt.Fprintf(w, "pmod_engine_events_total{event=\"domain_fault\"} %d\n", eng.DomainFaults)
		fmt.Fprintf(w, "pmod_engine_events_total{event=\"page_fault\"} %d\n", eng.PageFaults)
		fmt.Fprintf(w, "pmod_engine_events_total{event=\"perm_switch\"} %d\n", eng.PermSwitches)
		fmt.Fprintf(w, "pmod_engine_events_total{event=\"key_eviction\"} %d\n", eng.Evictions)
		fmt.Fprintf(w, "pmod_engine_events_total{event=\"tlb_shootdown\"} %d\n", eng.TLBFlushed)
	}

	// One histogram family: HELP/TYPE exactly once, then every op's
	// series. (Emitting the header per op renders an exposition parsers
	// reject as a duplicate metric family.)
	lat := m.latSnapshot()
	if err := obs.PromHistogramHeader(w, "pmod_op_latency_ns",
		"Request service latency in nanoseconds."); err != nil {
		return err
	}
	for op := Op(1); op < numOps; op++ {
		if lat[op].Count == 0 {
			continue
		}
		h := lat[op]
		if err := obs.PromHistogramSeries(w, "pmod_op_latency_ns",
			fmt.Sprintf("op=%q", op.String()), &h); err != nil {
			return err
		}
	}
	return nil
}
