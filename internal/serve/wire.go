// Package serve is the network-facing PMO service layer: a concurrent
// daemon (cmd/pmod) that serves persistent memory objects to remote
// clients over a length-prefixed binary protocol, isolating each
// client's session in its own PMO/domain — the paper's motivating
// server scenario (Section III) as a real request-serving process
// rather than a trace replay.
//
// The package provides the wire protocol (this file), the sharded
// session server (server.go), a Go client (client.go), and a
// closed-loop load generator (loadgen.go).
package serve

import (
	"encoding/binary"

	"domainvirt/internal/reqtrace"
)

// Frame format: a 4-byte big-endian payload length, then the payload.
// Every payload starts with a 1-byte opcode and a 4-byte request ID the
// response echoes, so a client may pipeline requests.
//
// Protocol v2 (negotiated in HELLO, see ProtoV2) adds request batching:
// a BATCH frame carries many sub-requests, each with its own
// correlation ID, and is answered by one StatusBatch frame whose
// sub-responses may complete out of order — the client matches them by
// ID. One frame each way means one network write and one read per
// batch instead of per op.
const (
	// MaxFrame is the hard cap on payload length; a declared length
	// beyond it is unrecoverable (the stream cannot be resynchronized)
	// and closes the connection after a typed error.
	MaxFrame = 1 << 20
	// MaxIO is the largest byte span one READ or WRITE may move.
	MaxIO = 256 << 10
	// MaxBatch is the most sub-requests one BATCH frame may carry.
	MaxBatch = 256
	// minPayload is opcode + request ID.
	minPayload = 5
)

// Wire-protocol versions. A v1 HELLO is just the client name; a v2
// HELLO appends the highest version the client speaks, and the server's
// OK response carries the negotiated version (min of both sides) as a
// 1-byte body. Everything except BATCH works identically under both.
const (
	ProtoV1 = 1
	ProtoV2 = 2
	// MaxProto is the highest version this build speaks.
	MaxProto = ProtoV2
)

// Op is a request opcode.
type Op uint8

// Request opcodes.
const (
	OpHello    Op = 1 // declare client identity: str name
	OpOpen     Op = 2 // open-or-create the session pool: str name, u64 size
	OpAttach   Op = 3 // map the session pool: u8 writable
	OpRead     Op = 4 // u32 off, u32 len -> data
	OpWrite    Op = 5 // u32 off, u32 len, bytes
	OpTxCommit Op = 6 // u16 count, count * (u32 off, u32 len, bytes), durably
	OpDetach   Op = 7  // unmap the session pool
	OpStats    Op = 8  // -> Prometheus text snapshot
	OpTrace    Op = 9  // -> JSONL dump of the retained request spans
	OpClose    Op = 10 // close the session but keep the connection (conn reuse)
	OpBatch    Op = 11 // v2: u16 count, count * (u32 len, sub-request payload)
	numOps        = 12
)

var opNames = [numOps]string{"?", "hello", "open", "attach", "read", "write", "tx_commit", "detach", "stats", "trace", "close", "batch"}

func (o Op) String() string {
	if int(o) < len(opNames) && o > 0 {
		return opNames[o]
	}
	return "?"
}

// Status is the first byte of every response payload.
type Status uint8

// Response statuses.
const (
	StatusOK    Status = 0
	StatusErr   Status = 1
	StatusRetry Status = 2 // backpressure: queue full, try again
	StatusBatch Status = 3 // v2: u16 count, count * (u32 len, sub-response payload)
)

// ErrCode is a typed protocol error; malformed or disallowed requests
// always yield one of these — the server never panics and never closes
// a connection without first sending the code (when the stream allows).
type ErrCode uint16

// Error codes.
const (
	ErrBadFrame    ErrCode = 1  // unparseable payload
	ErrBadOp       ErrCode = 2  // unknown opcode
	ErrTooLarge    ErrCode = 3  // frame or I/O span over the limit
	ErrNoHello     ErrCode = 4  // session op before HELLO
	ErrNoSession   ErrCode = 5  // session op before OPEN
	ErrExists      ErrCode = 6  // OPEN with a live session / double ATTACH
	ErrNotAttached ErrCode = 7  // data op before ATTACH
	ErrDenied      ErrCode = 8  // namespace or domain permission denied
	ErrRange       ErrCode = 9  // access outside the pool
	ErrEvicted     ErrCode = 10 // session idle-evicted; re-OPEN to continue
	ErrDraining    ErrCode = 11 // server shutting down
	ErrTx          ErrCode = 12 // transaction begin/commit failed
	ErrInternal    ErrCode = 13
	ErrDisabled    ErrCode = 14 // requested facility (e.g. tracing) not enabled
	ErrUnavailable ErrCode = 15 // cluster: the backend owning this key is down; retry later
	ErrVersion     ErrCode = 16 // op requires a protocol version the session didn't negotiate
	maxErrCode             = ErrVersion
)

// WireError is a typed protocol error with its human-readable cause.
type WireError struct {
	Code ErrCode
	Msg  string
}

func (e *WireError) Error() string { return e.Msg }

func wireErr(code ErrCode, msg string) *WireError { return &WireError{Code: code, Msg: msg} }

// TxWrite is one write of a TX_COMMIT batch.
type TxWrite struct {
	Off  uint32
	Data []byte
}

// Request is one decoded client request.
type Request struct {
	Op Op
	ID uint32

	Client string // HELLO
	Proto  uint8  // HELLO: highest protocol version offered (0 = v1 frame)
	Name   string // OPEN
	Size   uint64 // OPEN

	Writable bool // ATTACH

	Off  uint32    // READ, WRITE
	Len  uint32    // READ
	Data []byte    // WRITE
	Tx   []TxWrite // TX_COMMIT

	// scratch is the request's private copy of Data and Tx spans after
	// detach; it is retained (like the Tx backing array) across reuse
	// through the request pool so a steady request stream stops
	// allocating once the buffers have grown to the working-set size.
	scratch []byte

	// tr is the request's in-flight trace span, nil when tracing is
	// disabled. A pointer (not an embedded Active) so pooled-request
	// reset stays a cheap struct copy.
	tr *reqtrace.Active
}

// reset clears req for reuse, keeping the Tx and scratch backing arrays.
func (req *Request) reset() {
	tx, scratch := req.Tx[:0], req.scratch[:0]
	*req = Request{Tx: tx, scratch: scratch}
}

// detach copies Data and every Tx span out of the caller's frame buffer
// into req's own scratch storage, so the request stays valid after the
// reader reuses that buffer for the next frame.
func (req *Request) detach() {
	n := len(req.Data)
	for i := range req.Tx {
		n += len(req.Tx[i].Data)
	}
	if n == 0 {
		return
	}
	if cap(req.scratch) < n {
		req.scratch = make([]byte, n)
	}
	buf := req.scratch[:n]
	off := 0
	if len(req.Data) > 0 {
		off += copy(buf, req.Data)
		req.Data = buf[:off:off]
	}
	for i := range req.Tx {
		start := off
		off += copy(buf[off:], req.Tx[i].Data)
		req.Tx[i].Data = buf[start:off:off]
	}
	req.scratch = buf
}

// --- cursor helpers ---

type wreader struct {
	b   []byte
	off int
	bad bool
}

func (r *wreader) need(n int) bool {
	if r.bad || r.off+n > len(r.b) {
		r.bad = true
		return false
	}
	return true
}

func (r *wreader) u8() uint8 {
	if !r.need(1) {
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wreader) u16() uint16 {
	if !r.need(2) {
		return 0
	}
	v := binary.BigEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v
}

func (r *wreader) u32() uint32 {
	if !r.need(4) {
		return 0
	}
	v := binary.BigEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v
}

func (r *wreader) u64() uint64 {
	if !r.need(8) {
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.off:])
	r.off += 8
	return v
}

func (r *wreader) bytes(n int) []byte {
	if n < 0 || !r.need(n) {
		r.bad = true
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

func (r *wreader) str() string {
	n := int(r.u16())
	return string(r.bytes(n))
}

func (r *wreader) done() bool { return !r.bad && r.off == len(r.b) }

type wwriter struct{ b []byte }

func (w *wwriter) u8(v uint8)   { w.b = append(w.b, v) }
func (w *wwriter) u16(v uint16) { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *wwriter) u32(v uint32) { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *wwriter) u64(v uint64) { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *wwriter) bytes(p []byte) {
	w.b = append(w.b, p...)
}
func (w *wwriter) str(s string) {
	w.u16(uint16(len(s)))
	w.b = append(w.b, s...)
}

// ParseRequest decodes one request payload. It never panics: any
// malformed input yields a *WireError (with the request ID when the
// header was intact, so the error can be answered on the right request).
func ParseRequest(payload []byte) (*Request, *WireError) {
	req := &Request{}
	return req, parseRequestInto(req, payload)
}

// parseRequestInto is ParseRequest decoding into a caller-owned (often
// pooled) request, reusing its Tx backing array: the allocation-free
// form the server's read loop runs per frame. Data and Tx spans alias
// payload until detach is called.
func parseRequestInto(req *Request, payload []byte) *WireError {
	req.reset()
	if len(payload) < minPayload {
		return wireErr(ErrBadFrame, "serve: short payload")
	}
	r := wreader{b: payload}
	req.Op = Op(r.u8())
	req.ID = r.u32()
	switch req.Op {
	case OpHello:
		req.Client = r.str()
		// v2 negotiation: one trailing byte is the highest version the
		// client speaks. A v1 HELLO ends at the name.
		if r.off == len(r.b)-1 {
			req.Proto = r.u8()
			if req.Proto < ProtoV1 {
				return wireErr(ErrBadFrame, "serve: protocol version 0 offered")
			}
		}
		if r.done() && req.Client == "" {
			return wireErr(ErrBadFrame, "serve: empty client name")
		}
	case OpOpen:
		req.Name = r.str()
		req.Size = r.u64()
		if r.done() && req.Name == "" {
			return wireErr(ErrBadFrame, "serve: empty pool name")
		}
	case OpAttach:
		req.Writable = r.u8() != 0
	case OpRead:
		req.Off = r.u32()
		req.Len = r.u32()
		if r.done() && req.Len > MaxIO {
			return wireErr(ErrTooLarge, "serve: read span over MaxIO")
		}
	case OpWrite:
		req.Off = r.u32()
		n := r.u32()
		if n > MaxIO {
			return wireErr(ErrTooLarge, "serve: write span over MaxIO")
		}
		req.Data = r.bytes(int(n))
	case OpTxCommit:
		count := int(r.u16())
		for i := 0; i < count && !r.bad; i++ {
			off := r.u32()
			n := r.u32()
			if n > MaxIO {
				return wireErr(ErrTooLarge, "serve: tx write span over MaxIO")
			}
			req.Tx = append(req.Tx, TxWrite{Off: off, Data: r.bytes(int(n))})
		}
	case OpDetach, OpStats, OpTrace, OpClose:
		// no body
	case OpBatch:
		// Batches are containers parsed by parseBatchInto; one reaching
		// the scalar parser is nested inside another batch.
		return wireErr(ErrBadFrame, "serve: nested batch")
	default:
		return wireErr(ErrBadOp, "serve: unknown opcode")
	}
	if !r.done() {
		return wireErr(ErrBadFrame, "serve: truncated or oversized body")
	}
	return nil
}

// EncodeRequest renders req as a frame payload (without the length
// prefix).
func EncodeRequest(req *Request) []byte {
	return appendRequest(make([]byte, 0, 16+len(req.Data)), req)
}

// appendRequest appends req's frame payload to dst (append-style: dst
// may be nil, and the grown slice is returned) so callers can reuse one
// encode buffer across requests.
func appendRequest(dst []byte, req *Request) []byte {
	w := wwriter{b: dst}
	w.u8(uint8(req.Op))
	w.u32(req.ID)
	switch req.Op {
	case OpHello:
		w.str(req.Client)
		if req.Proto != 0 {
			w.u8(req.Proto)
		}
	case OpOpen:
		w.str(req.Name)
		w.u64(req.Size)
	case OpAttach:
		if req.Writable {
			w.u8(1)
		} else {
			w.u8(0)
		}
	case OpRead:
		w.u32(req.Off)
		w.u32(req.Len)
	case OpWrite:
		w.u32(req.Off)
		w.u32(uint32(len(req.Data)))
		w.bytes(req.Data)
	case OpTxCommit:
		w.u16(uint16(len(req.Tx)))
		for _, t := range req.Tx {
			w.u32(t.Off)
			w.u32(uint32(len(t.Data)))
			w.bytes(t.Data)
		}
	}
	return w.b
}

// Batch is one decoded v2 BATCH container: a batch correlation ID and
// the sub-requests it carries. Each sub-request keeps its own ID so its
// sub-response can be matched even when completions are reordered.
type Batch struct {
	ID   uint32
	Reqs []*Request
}

// parseBatchInto decodes a BATCH payload into b, drawing sub-request
// storage from getReq (the server passes its request pool's getter, so
// a steady batch stream parses without allocating). Sub-request Data
// and Tx spans alias payload until detach. Any malformed sub-request
// fails the whole batch: requests already drawn stay in b.Reqs so the
// caller can return them to the pool.
func parseBatchInto(b *Batch, payload []byte, getReq func() *Request) *WireError {
	b.ID, b.Reqs = 0, b.Reqs[:0]
	if len(payload) < minPayload+2 {
		return wireErr(ErrBadFrame, "serve: short batch payload")
	}
	r := wreader{b: payload}
	if Op(r.u8()) != OpBatch {
		return wireErr(ErrBadFrame, "serve: not a batch payload")
	}
	b.ID = r.u32()
	count := int(r.u16())
	if count == 0 {
		return wireErr(ErrBadFrame, "serve: empty batch")
	}
	if count > MaxBatch {
		return wireErr(ErrTooLarge, "serve: batch count over limit")
	}
	for i := 0; i < count; i++ {
		n := int(r.u32())
		sub := r.bytes(n)
		if r.bad {
			return wireErr(ErrBadFrame, "serve: truncated batch entry")
		}
		req := getReq()
		b.Reqs = append(b.Reqs, req)
		if werr := parseRequestInto(req, sub); werr != nil {
			return werr
		}
		if req.Op == OpHello {
			// Version renegotiation mid-batch would change the framing
			// rules the batch itself depends on.
			return wireErr(ErrBadFrame, "serve: HELLO inside batch")
		}
	}
	if !r.done() {
		return wireErr(ErrBadFrame, "serve: trailing bytes after batch entries")
	}
	return nil
}

// AppendBatch appends one BATCH payload carrying reqs (append-style, as
// appendRequest). The caller assigns sub-request IDs.
func AppendBatch(dst []byte, id uint32, reqs []*Request) []byte {
	w := wwriter{b: dst}
	w.u8(uint8(OpBatch))
	w.u32(id)
	w.u16(uint16(len(reqs)))
	for _, req := range reqs {
		mark := len(w.b)
		w.u32(0) // length, backfilled below
		w.b = appendRequest(w.b, req)
		binary.BigEndian.PutUint32(w.b[mark:], uint32(len(w.b)-mark-4))
	}
	return w.b
}

// appendBatchRespHeader starts a StatusBatch response payload; the
// server then appends one appendBatchRespEntry per sub-request.
func appendBatchRespHeader(dst []byte, id uint32, count int) []byte {
	w := wwriter{b: dst}
	w.u8(uint8(StatusBatch))
	w.u32(id)
	w.u16(uint16(count))
	return w.b
}

// appendBatchRespEntry appends one length-prefixed sub-response.
func appendBatchRespEntry(dst []byte, resp *Response) []byte {
	mark := len(dst)
	dst = binary.BigEndian.AppendUint32(dst, 0)
	dst = appendResponse(dst, resp)
	binary.BigEndian.PutUint32(dst[mark:], uint32(len(dst)-mark-4))
	return dst
}

// batchRespIter walks the sub-responses of a StatusBatch payload
// without allocating; entries may arrive in any order relative to the
// requests, so callers match by the sub-response ID.
type batchRespIter struct {
	r    wreader
	id   uint32
	left int
}

// initBatchResp validates the StatusBatch header of payload and
// prepares iteration.
func (it *batchRespIter) init(payload []byte) *WireError {
	it.r = wreader{b: payload}
	if len(payload) < minPayload+2 {
		return wireErr(ErrBadFrame, "serve: short batch response")
	}
	if Status(it.r.u8()) != StatusBatch {
		return wireErr(ErrBadFrame, "serve: not a batch response")
	}
	it.id = it.r.u32()
	it.left = int(it.r.u16())
	if it.left == 0 {
		return wireErr(ErrBadFrame, "serve: empty batch response")
	}
	if it.left > MaxBatch {
		return wireErr(ErrTooLarge, "serve: batch response count over limit")
	}
	return nil
}

// next returns the next sub-response payload, or nil when exhausted;
// a framing error yields (nil, werr).
func (it *batchRespIter) next() ([]byte, *WireError) {
	if it.left == 0 {
		if !it.r.done() {
			return nil, wireErr(ErrBadFrame, "serve: trailing bytes after batch response")
		}
		return nil, nil
	}
	it.left--
	n := int(it.r.u32())
	sub := it.r.bytes(n)
	if it.r.bad {
		return nil, wireErr(ErrBadFrame, "serve: truncated batch response entry")
	}
	if len(sub) < minPayload {
		return nil, wireErr(ErrBadFrame, "serve: short batch response entry")
	}
	return sub, nil
}

// Response is one decoded server response.
type Response struct {
	Status Status
	ID     uint32
	Code   ErrCode // StatusErr only
	Msg    string  // StatusErr only
	SID    uint64  // OPEN result
	Data   []byte  // READ and STATS result
}

// EncodeResponse renders a response payload.
func EncodeResponse(resp *Response) []byte {
	return appendResponse(make([]byte, 0, 16+len(resp.Data)), resp)
}

// AppendResponse appends resp's frame payload to dst. Exported for the
// cluster router, which answers some requests (HELLO, routing errors)
// itself with a reusable encode buffer.
func AppendResponse(dst []byte, resp *Response) []byte { return appendResponse(dst, resp) }

// appendResponse appends resp's frame payload to dst (append-style, as
// appendRequest) so the server's workers can reuse one encode buffer
// per worker.
func appendResponse(dst []byte, resp *Response) []byte {
	w := wwriter{b: dst}
	w.u8(uint8(resp.Status))
	w.u32(resp.ID)
	switch resp.Status {
	case StatusErr:
		w.u16(uint16(resp.Code))
		w.str(resp.Msg)
	case StatusOK:
		if resp.SID != 0 {
			w.u64(resp.SID)
		} else {
			w.bytes(resp.Data)
		}
	}
	return w.b
}

// ParseResponse decodes a response payload. wantSID tells the parser the
// OK body carries a session ID (OPEN) rather than raw data.
func ParseResponse(payload []byte, wantSID bool) (*Response, *WireError) {
	resp := &Response{}
	if werr := parseResponseInto(resp, payload, wantSID); werr != nil {
		return nil, werr
	}
	return resp, nil
}

// parseResponseInto is ParseResponse decoding into a caller-owned
// response (allocation-free except the StatusErr message). Data aliases
// payload.
func parseResponseInto(resp *Response, payload []byte, wantSID bool) *WireError {
	*resp = Response{}
	if len(payload) < minPayload {
		return wireErr(ErrBadFrame, "serve: short response")
	}
	r := wreader{b: payload}
	resp.Status = Status(r.u8())
	resp.ID = r.u32()
	switch resp.Status {
	case StatusErr:
		resp.Code = ErrCode(r.u16())
		resp.Msg = r.str()
		if r.bad {
			return wireErr(ErrBadFrame, "serve: truncated error response")
		}
	case StatusOK:
		if wantSID {
			resp.SID = r.u64()
			if r.bad {
				return wireErr(ErrBadFrame, "serve: truncated open response")
			}
		} else {
			resp.Data = r.b[r.off:]
		}
	case StatusRetry:
		// no body
	default:
		return wireErr(ErrBadFrame, "serve: unknown response status")
	}
	return nil
}
