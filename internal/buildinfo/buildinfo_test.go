package buildinfo

import (
	"strings"
	"testing"
)

func TestStampCarriesSharedVersionAndObsFormat(t *testing.T) {
	got := Stamp("pmod")
	for _, want := range []string{"pmod", "domainvirt/" + Version, ObsFormat} {
		if !strings.Contains(got, want) {
			t.Errorf("Stamp(pmod) = %q, missing %q", got, want)
		}
	}
	if strings.Contains(got, "\n") {
		t.Errorf("Stamp must be one line, got %q", got)
	}
}

func TestStampsDifferOnlyByToolName(t *testing.T) {
	a := strings.TrimPrefix(Stamp("pmod"), "pmod")
	b := strings.TrimPrefix(Stamp("pmoload"), "pmoload")
	if a != b {
		t.Errorf("version suffix differs between tools: %q vs %q", a, b)
	}
}
