// Package buildinfo is the single source of truth for the tool version
// every binary reports and every observability manifest stamps. Keeping
// the strings here means `pmod -version`, `pmosim -version`, and the
// `tool_version` field of an obs manifest can never drift apart.
package buildinfo

import "runtime"

// Version is the repository release version shared by all binaries.
const Version = "0.3.0"

// ObsFormat identifies the observability exporter format generation; it
// is written into every obs manifest so downstream tooling can dispatch
// on it. internal/obs re-exports it as obs.ToolVersion.
const ObsFormat = "domainvirt-obs/1"

// Stamp renders the canonical one-line -version output for a binary:
// the tool name, the shared release version, the obs manifest format it
// emits, and the Go runtime it was built with.
func Stamp(tool string) string {
	return tool + " domainvirt/" + Version + " (" + ObsFormat + ", " + runtime.Version() + ")"
}
