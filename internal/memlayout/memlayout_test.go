package memlayout

import (
	"testing"
	"testing/quick"
)

func TestLevelGeometry(t *testing.T) {
	if LevelSize(0) != 4<<10 {
		t.Errorf("level 0 = %d, want 4KB", LevelSize(0))
	}
	if LevelSize(1) != 2<<20 {
		t.Errorf("level 1 = %d, want 2MB", LevelSize(1))
	}
	if LevelSize(2) != 1<<30 {
		t.Errorf("level 2 = %d, want 1GB", LevelSize(2))
	}
	if LevelSize(3) != 512<<30 {
		t.Errorf("level 3 = %d, want 512GB", LevelSize(3))
	}
}

func TestIndexDecomposition(t *testing.T) {
	// Reassembling the per-level indices plus the page offset must give
	// back the original canonical address.
	f := func(raw uint64) bool {
		va := VA(raw & ((1 << 48) - 1)) // canonical 48-bit
		rebuilt := PageOffset(va)
		for lvl := 0; lvl < NumLevels; lvl++ {
			rebuilt |= uint64(Index(va, lvl)) << LevelShift(lvl)
		}
		return VA(rebuilt) == va
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPageHelpers(t *testing.T) {
	va := VA(0x12345)
	if PageNum(va) != 0x12 {
		t.Errorf("PageNum = %#x", PageNum(va))
	}
	if PageBase(va) != 0x12000 {
		t.Errorf("PageBase = %#x", PageBase(va))
	}
	if PageOffset(va) != 0x345 {
		t.Errorf("PageOffset = %#x", PageOffset(va))
	}
}

func TestRegion(t *testing.T) {
	r := Region{Base: 0x1000, Size: 0x2000}
	if !r.Contains(0x1000) || !r.Contains(0x2FFF) {
		t.Error("region must contain its endpoints-1")
	}
	if r.Contains(0xFFF) || r.Contains(0x3000) {
		t.Error("region must exclude outside addresses")
	}
	if r.Pages() != 2 {
		t.Errorf("Pages = %d, want 2", r.Pages())
	}
	o := Region{Base: 0x2800, Size: 0x1000}
	if !r.Overlaps(o) || !o.Overlaps(r) {
		t.Error("overlap must be symmetric and detected")
	}
	if r.Overlaps(Region{Base: 0x3000, Size: 0x1000}) {
		t.Error("adjacent regions do not overlap")
	}
}

func TestAttachLevel(t *testing.T) {
	cases := []struct {
		size      uint64
		lvl       int
		slots     int
		footprint uint64
	}{
		{1, 0, 1, 4 << 10},
		{4 << 10, 0, 1, 4 << 10},
		{6 << 10, 0, 2, 8 << 10},
		{2 << 20, 1, 1, 2 << 20},
		{8 << 20, 1, 4, 8 << 20}, // the paper's 8 MB micro-benchmark pools
		{1 << 30, 2, 1, 1 << 30},
		{2 << 30, 2, 2, 2 << 30}, // the WHISPER 2 GB pool
	}
	for _, c := range cases {
		lvl, slots, fp := AttachLevel(c.size)
		if lvl != c.lvl || slots != c.slots || fp != c.footprint {
			t.Errorf("AttachLevel(%d) = (%d,%d,%d), want (%d,%d,%d)",
				c.size, lvl, slots, fp, c.lvl, c.slots, c.footprint)
		}
	}
}

func TestAttachLevelProperties(t *testing.T) {
	f := func(raw uint32) bool {
		size := uint64(raw)%(4<<30) + 1
		lvl, slots, fp := AttachLevel(size)
		gran := LevelSize(lvl)
		return fp >= size && fp == uint64(slots)*gran && slots >= 1 &&
			(lvl == 0 || size >= LevelSize(lvl))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlignHelpers(t *testing.T) {
	if AlignUp(5, 8) != 8 || AlignUp(8, 8) != 8 || AlignUp(0, 8) != 0 {
		t.Error("AlignUp broken")
	}
	if !IsAligned(16, 8) || IsAligned(12, 8) {
		t.Error("IsAligned broken")
	}
}

func TestSplitLine(t *testing.T) {
	var pieces []struct {
		va VA
		n  uint32
	}
	SplitLine(60, 72, func(va VA, n uint32) {
		pieces = append(pieces, struct {
			va VA
			n  uint32
		}{va, n})
	})
	// 60..131 spans three 64-byte lines: [60,64), [64,128), [128,132).
	want := []struct {
		va VA
		n  uint32
	}{{60, 4}, {64, 64}, {128, 4}}
	if len(pieces) != len(want) {
		t.Fatalf("got %d pieces, want %d", len(pieces), len(want))
	}
	for i := range want {
		if pieces[i] != want[i] {
			t.Errorf("piece %d = %+v, want %+v", i, pieces[i], want[i])
		}
	}
}

func TestSplitLineCoversExactly(t *testing.T) {
	f := func(vaRaw uint64, sizeRaw uint16) bool {
		va := VA(vaRaw % (1 << 40))
		size := uint32(sizeRaw)%1024 + 1
		var total uint32
		prev := va
		ok := true
		SplitLine(va, size, func(p VA, n uint32) {
			if p != prev {
				ok = false
			}
			if n == 0 || n > 64 {
				ok = false
			}
			prev = p + VA(n)
			total += n
		})
		return ok && total == size
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
