// Package memlayout defines the address types, page geometry, and radix
// indexing helpers shared by the page table, TLBs, and the domain tables
// (DTT/DRT). The layout mirrors x86-64 4-level paging: 4 KB base pages with
// 2 MB, 1 GB, and 512 GB aligned regions at the upper radix levels.
package memlayout

import "fmt"

// VA is a 64-bit virtual address.
type VA uint64

// PA is a 64-bit physical address.
type PA uint64

// Page geometry constants for x86-64 4-level paging.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KB

	// RadixBits is the number of index bits consumed per radix level.
	RadixBits = 9
	// RadixFanout is the number of slots in one radix node.
	RadixFanout = 1 << RadixBits

	// NumLevels is the number of radix levels (PML4..PT).
	NumLevels = 4

	// LineSize is the cache-line size in bytes; accesses are split at
	// line boundaries (see SplitLine).
	LineSize = 64
)

// LevelShift returns the address shift covered by radix level lvl, where
// lvl 0 is the leaf (4 KB), lvl 1 is 2 MB, lvl 2 is 1 GB, lvl 3 is 512 GB.
func LevelShift(lvl int) uint {
	return uint(PageShift + RadixBits*lvl)
}

// LevelSize returns the bytes covered by one entry at radix level lvl.
func LevelSize(lvl int) uint64 {
	return 1 << LevelShift(lvl)
}

// Index returns the 9-bit radix index of va at level lvl.
func Index(va VA, lvl int) int {
	return int((uint64(va) >> LevelShift(lvl)) & (RadixFanout - 1))
}

// PageNum returns the virtual page number of va.
func PageNum(va VA) uint64 { return uint64(va) >> PageShift }

// PageBase returns the base address of the 4 KB page containing va.
func PageBase(va VA) VA { return va &^ (PageSize - 1) }

// PageOffset returns the offset of va within its 4 KB page.
func PageOffset(va VA) uint64 { return uint64(va) & (PageSize - 1) }

// FrameBase returns the base address of the 4 KB frame containing pa.
func FrameBase(pa PA) PA { return pa &^ (PageSize - 1) }

// Region is a contiguous virtual address range [Base, Base+Size).
// PMO regions are aligned to a radix level granularity as required by the
// paper: "A PMO can map only to an aligned and contiguous range of virtual
// address that corresponds to the granularity of the hierarchy level of the
// page table."
type Region struct {
	Base VA
	Size uint64
}

// End returns the first address past the region.
func (r Region) End() VA { return r.Base + VA(r.Size) }

// Contains reports whether va lies within the region.
func (r Region) Contains(va VA) bool {
	return va >= r.Base && va < r.End()
}

// Overlaps reports whether r and o share any address.
func (r Region) Overlaps(o Region) bool {
	return r.Base < o.End() && o.Base < r.End()
}

// Pages returns the number of 4 KB pages the region spans.
func (r Region) Pages() uint64 {
	return (r.Size + PageSize - 1) / PageSize
}

// String implements fmt.Stringer.
func (r Region) String() string {
	return fmt.Sprintf("[%#x,%#x)", uint64(r.Base), uint64(r.End()))
}

// AlignUp rounds v up to the next multiple of align (a power of two).
func AlignUp(v, align uint64) uint64 {
	return (v + align - 1) &^ (align - 1)
}

// IsAligned reports whether v is a multiple of align (a power of two).
func IsAligned(v, align uint64) bool { return v&(align-1) == 0 }

// AttachLevel returns the radix level whose granularity a PMO of the given
// byte size attaches at, together with the number of consecutive slots the
// PMO occupies at that level and the rounded VA footprint.
//
// Per the paper, the smallest PMO occupies a 4 KB VA region, the next a
// 2 MB region, then 1 GB, corresponding to page-table levels. Sizes between
// levels occupy multiple consecutive aligned slots of the highest level not
// exceeding the size (e.g. an 8 MB PMO occupies four 2 MB slots); the PMO
// need not use its whole VA range.
func AttachLevel(size uint64) (lvl int, slots int, footprint uint64) {
	if size == 0 {
		size = 1
	}
	lvl = 0
	for l := NumLevels - 1; l >= 1; l-- {
		if size >= LevelSize(l) {
			lvl = l
			break
		}
	}
	gran := LevelSize(lvl)
	footprint = AlignUp(size, gran)
	slots = int(footprint / gran)
	return lvl, slots, footprint
}

// SplitLine splits an access of the given size at va into cache-line-sized
// pieces and calls fn for each piece's starting address and length. Line
// size is 64 bytes.
func SplitLine(va VA, size uint32, fn func(VA, uint32)) {
	const line = LineSize
	for size > 0 {
		off := uint64(va) & (line - 1)
		chunk := uint32(line - off)
		if chunk > size {
			chunk = size
		}
		fn(va, chunk)
		va += VA(chunk)
		size -= chunk
	}
}
