// Package workload defines the benchmark harness: parameterized workloads
// that execute real data-structure operations against PMO pools, emitting
// instrumentation events into a trace.Sink (usually a sim.Machine). The
// micro and whisper subpackages register the paper's Table III (WHISPER)
// and Table IV (multi-PMO) benchmarks.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"domainvirt/internal/core"
	"domainvirt/internal/pmo"
	"domainvirt/internal/trace"
)

// Params parameterizes a workload run.
type Params struct {
	// NumPMOs is the number of pools (multi-PMO benchmarks; Figure 6
	// sweeps it from 16 to 1024).
	NumPMOs int
	// Ops is the number of measured operations or transactions.
	Ops int
	// InitialElems seeds the data structure before measurement.
	InitialElems int
	// PoolSize is the per-pool capacity (8 MB in the paper's
	// multi-PMO runs; 2 GB for WHISPER).
	PoolSize uint64
	// ValueSize is the per-node payload (64 bytes in the paper).
	ValueSize int
	// Threads is the number of worker threads.
	Threads int
	// Seed drives all randomness, making runs reproducible and
	// identical across protection schemes.
	Seed int64
	// KeyspaceFactor bounds the key universe to
	// KeyspaceFactor*InitialElems (duplicate inserts update in place),
	// keeping structures near steady state on long runs.
	KeyspaceFactor int
	// InstrPerOp is non-memory compute padding per operation.
	InstrPerOp uint64
	// InstrPerAccess is non-memory compute padding around each PMO
	// access (WHISPER-style workloads).
	InstrPerAccess uint64
	// Placement selects node placement for the multi-PMO benchmarks:
	// "scatter" (default) spreads one shared structure's nodes across
	// all pools, so an operation's traversal touches several domains;
	// "perpool" keeps one independent structure per pool (InitialElems
	// elements each), so an operation touches mostly one domain. The
	// paper's Table IV wording admits both readings; the harness
	// defaults to scatter and exposes perpool as an ablation.
	Placement string
}

// PerPool reports whether the per-pool placement ablation is selected.
func (p Params) PerPool() bool { return p.Placement == "perpool" }

// Defaults fills zero fields with the multi-PMO defaults.
func (p Params) Defaults() Params {
	if p.NumPMOs == 0 {
		p.NumPMOs = 64
	}
	if p.Ops == 0 {
		p.Ops = 10000
	}
	if p.InitialElems == 0 {
		p.InitialElems = 1024
	}
	if p.PoolSize == 0 {
		p.PoolSize = 8 << 20
	}
	if p.ValueSize == 0 {
		p.ValueSize = 64
	}
	if p.Threads == 0 {
		p.Threads = 1
	}
	if p.Seed == 0 {
		p.Seed = 42
	}
	if p.KeyspaceFactor == 0 {
		p.KeyspaceFactor = 16
	}
	if p.InstrPerOp == 0 {
		p.InstrPerOp = 400
	}
	return p
}

// Keyspace returns the key universe size.
func (p Params) Keyspace() uint64 {
	return uint64(p.KeyspaceFactor) * uint64(p.InitialElems)
}

// Env is the execution environment handed to a workload: the pool store,
// an address space wired to the instrumentation sink, and a seeded RNG.
type Env struct {
	Store *pmo.Store
	Space *pmo.Space
	Rng   *rand.Rand
	P     Params

	// AtOpEnd, when non-nil, runs after each measured operation with its
	// zero-based index. Every workload's Run loop reports through OpDone,
	// which gives the experiment layer interior operation boundaries —
	// the anchor points for mid-run checkpoint forking (one measured
	// pass serving many ops horizons). The hook must not touch Rng,
	// Store, or Space: op streams are prefix-stable, and a hook that
	// perturbed them would break horizon-fork bit-identity.
	AtOpEnd func(i int)
}

// OpDone reports that measured operation i finished. Workload Run loops
// call it as their final per-iteration statement.
func (e *Env) OpDone(i int) {
	if e.AtOpEnd != nil {
		e.AtOpEnd(i)
	}
}

// NewEnv builds an environment emitting into sink.
func NewEnv(sink trace.Sink, p Params) *Env {
	p = p.Defaults()
	return &Env{
		Store: pmo.NewStore(),
		Space: pmo.NewSpace(sink),
		Rng:   rand.New(rand.NewSource(p.Seed)),
		P:     p,
	}
}

// Workload is one benchmark: Setup builds and populates its pools (not
// measured); Run executes P.Ops measured operations.
type Workload interface {
	Name() string
	Setup(env *Env) error
	Run(env *Env) error
}

// Factory constructs a fresh workload instance.
type Factory func() Workload

var (
	regMu    sync.Mutex
	registry = make(map[string]Factory)
)

// Register adds a workload factory under name; workload subpackages call
// it from init.
func Register(name string, f Factory) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("workload: duplicate registration of " + name)
	}
	registry[name] = f
}

// New instantiates the named workload.
func New(name string) (Workload, error) {
	regMu.Lock()
	defer regMu.Unlock()
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workload: unknown workload %q (have %v)", name, namesLocked())
	}
	return f(), nil
}

// Names lists the registered workloads, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	return namesLocked()
}

func namesLocked() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// SiteBase namespaces the SETPERM instruction sites each workload uses,
// so the ERIM-style inspector can whitelist them.
const (
	SiteSetupGrant core.SiteID = 1
	SiteOpEnable   core.SiteID = 2
	SiteOpDisable  core.SiteID = 3
	SiteAccess     core.SiteID = 4
)

// ApproveSites registers every legitimate workload SETPERM site with in.
func ApproveSites(in *core.Inspector) {
	in.Approve(SiteSetupGrant, "setup read grant")
	in.Approve(SiteOpEnable, "op write enable")
	in.Approve(SiteOpDisable, "op write disable")
	in.Approve(SiteAccess, "per-access switch")
}
