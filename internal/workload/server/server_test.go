package server

import (
	"testing"

	"domainvirt/internal/trace"
	"domainvirt/internal/workload"
)

func TestServerWorkloadRuns(t *testing.T) {
	w, err := workload.New("server")
	if err != nil {
		t.Fatal(err)
	}
	var c trace.Counter
	a := trace.NewAuditor(&c)
	env := workload.NewEnv(a, workload.Params{
		NumPMOs: 32, Ops: 400, Threads: 4, Seed: 6,
	})
	if err := w.Setup(env); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(env); err != nil {
		t.Fatal(err)
	}
	if c.Attaches != 32 {
		t.Errorf("attaches = %d", c.Attaches)
	}
	if c.Fences == 0 {
		t.Error("no persist barriers")
	}
	// The server discipline keeps exactly one client domain write-open
	// at a time.
	if a.MaxWritable != 1 {
		t.Errorf("peak write-enabled domains = %d, want 1", a.MaxWritable)
	}
	if got := a.Finish(); len(got) != 0 {
		t.Errorf("window discipline violations: %v", got)
	}

	// Request counts add up: total ops distributed over clients.
	sw := w.(*serverWorkload)
	var total uint64
	for i := range sw.clients {
		total += sw.SessionSeq(i)
	}
	if total != 400 {
		t.Errorf("session seq total = %d, want 400", total)
	}
}

func TestServerDeterministic(t *testing.T) {
	run := func() trace.Counter {
		var c trace.Counter
		w, _ := workload.New("server")
		env := workload.NewEnv(&c, workload.Params{NumPMOs: 16, Ops: 200, Threads: 2, Seed: 3})
		if err := w.Setup(env); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(env); err != nil {
			t.Fatal(err)
		}
		return c
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("server workload nondeterministic: %+v vs %+v", a, b)
	}
}
