// Package server implements the paper's motivating scenario as a
// measurable multithreaded workload: a server process where every client
// session lives in its own PMO/domain ("allocating different users' data
// in separate domains improves security by isolating each user data from
// other threads"). Handler threads own disjoint client partitions; each
// request opens a least-privilege write window on exactly one client's
// domain, updates the session, appends to the client's activity log, and
// closes the window.
//
// With NumPMOs clients and Threads handlers, this is the workload that
// motivates thousands of simultaneous domains — and, on multicore
// configurations, it exposes the TLB-shootdown scaling difference
// between the two hardware designs.
package server

import (
	"fmt"

	"domainvirt/internal/core"
	"domainvirt/internal/pmo"
	"domainvirt/internal/workload"
)

// Session record layout inside each client pool.
const (
	sessSeq     = 0  // request counter
	sessBalance = 8  // mutable state
	sessBlob    = 16 // payload (ValueSize bytes)
)

type serverWorkload struct {
	clients []*pmo.Pool
	session []pmo.OID // session record per client
	logs    []pmo.OID // activity log slab per client
	logOff  []uint32  // cursor per client
	logCap  uint32
}

func init() {
	workload.Register("server", func() workload.Workload { return &serverWorkload{} })
}

// Name implements workload.Workload.
func (w *serverWorkload) Name() string { return "server" }

// Setup implements workload.Workload: one pool per client, one handler
// thread per partition; each handler is granted read permission only for
// its own clients (least privilege across threads).
func (w *serverWorkload) Setup(env *workload.Env) error {
	w.logCap = 4096
	for i := 0; i < env.P.NumPMOs; i++ {
		p, err := env.Store.Create(fmt.Sprintf("client-%04d", i), env.P.PoolSize, pmo.ModeDefault, "server")
		if err != nil {
			return err
		}
		if _, err := env.Space.Attach(p, core.PermRW, ""); err != nil {
			return err
		}
		w.clients = append(w.clients, p)

		// The owning handler initializes the session inside a window.
		th := w.handlerOf(env, i)
		env.Space.Thread = th
		if err := env.Space.SetPerm(p, core.PermRW, workload.SiteOpEnable); err != nil {
			return err
		}
		sess, err := p.Alloc(uint64(sessBlob + env.P.ValueSize))
		if err != nil {
			return err
		}
		p.SetRoot(sess)
		p.WriteU64(sess.Offset()+sessBalance, 1000)
		logSlab, err := p.Alloc(uint64(w.logCap))
		if err != nil {
			return err
		}
		w.session = append(w.session, sess)
		w.logs = append(w.logs, logSlab)
		w.logOff = append(w.logOff, 0)
		if err := env.Space.SetPerm(p, core.PermNone, workload.SiteOpDisable); err != nil {
			return err
		}
	}
	env.Space.Thread = 1
	return nil
}

// handlerOf statically partitions clients over handler threads.
func (w *serverWorkload) handlerOf(env *workload.Env, client int) core.ThreadID {
	return core.ThreadID(1 + client%env.P.Threads)
}

// Run implements workload.Workload: each request serves one random
// client on its owning handler thread.
func (w *serverWorkload) Run(env *workload.Env) error {
	nclients := len(w.clients)
	for i := 0; i < env.P.Ops; i++ {
		client := env.Rng.Intn(nclients)
		th := w.handlerOf(env, client)
		env.Space.Thread = th
		env.Space.Instr(env.P.InstrPerOp)

		p := w.clients[client]
		sess := w.session[client]
		if err := env.Space.SetPerm(p, core.PermRW, workload.SiteOpEnable); err != nil {
			return err
		}

		// Read-modify-write the session under the open window.
		seq := p.ReadU64(sess.Offset() + sessSeq)
		bal := p.ReadU64(sess.Offset() + sessBalance)
		p.WriteU64(sess.Offset()+sessSeq, seq+1)
		delta := uint64(env.Rng.Intn(100))
		p.WriteU64(sess.Offset()+sessBalance, bal+delta)

		// Append a 32-byte activity record; persist before closing.
		off := w.logs[client].Offset() + w.logOff[client]
		p.WriteU64(off, seq+1)
		p.WriteU64(off+8, delta)
		p.WriteU64(off+16, uint64(client))
		p.WriteU64(off+24, uint64(th))
		env.Space.Fence()
		w.logOff[client] += 32
		if w.logOff[client]+32 > w.logCap {
			w.logOff[client] = 0
		}

		if err := env.Space.SetPerm(p, core.PermNone, workload.SiteOpDisable); err != nil {
			return err
		}
		env.OpDone(i)
	}
	return nil
}

// SessionSeq returns the request count recorded in client's session
// (tests).
func (w *serverWorkload) SessionSeq(client int) uint64 {
	p := w.clients[client]
	return p.ReadU64(w.session[client].Offset() + sessSeq)
}
