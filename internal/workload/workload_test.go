package workload

import (
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/trace"
)

func TestParamsDefaults(t *testing.T) {
	p := Params{}.Defaults()
	if p.NumPMOs == 0 || p.Ops == 0 || p.InitialElems == 0 || p.PoolSize == 0 ||
		p.ValueSize == 0 || p.Threads == 0 || p.Seed == 0 || p.KeyspaceFactor == 0 {
		t.Errorf("defaults left zero fields: %+v", p)
	}
	// Explicit values survive.
	p2 := Params{NumPMOs: 7, Ops: 3, Seed: 99}.Defaults()
	if p2.NumPMOs != 7 || p2.Ops != 3 || p2.Seed != 99 {
		t.Errorf("defaults clobbered explicit values: %+v", p2)
	}
	if p.Keyspace() != uint64(p.KeyspaceFactor)*uint64(p.InitialElems) {
		t.Error("Keyspace formula wrong")
	}
}

func TestPerPool(t *testing.T) {
	if (Params{}).PerPool() {
		t.Error("default placement is per-pool")
	}
	if !(Params{Placement: "perpool"}).PerPool() {
		t.Error("perpool not recognized")
	}
}

func TestRegistry(t *testing.T) {
	Register("workload-test-dummy", func() Workload { return nil })
	if _, err := New("workload-test-dummy"); err != nil {
		t.Fatal(err)
	}
	if _, err := New("no-such-workload"); err == nil {
		t.Error("unknown workload resolved")
	}
	found := false
	for _, n := range Names() {
		if n == "workload-test-dummy" {
			found = true
		}
	}
	if !found {
		t.Error("registered workload not listed")
	}
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration did not panic")
		}
	}()
	Register("workload-test-dummy", func() Workload { return nil })
}

func TestNewEnv(t *testing.T) {
	env := NewEnv(trace.Discard{}, Params{Seed: 5})
	if env.Store == nil || env.Space == nil || env.Rng == nil {
		t.Fatal("env incomplete")
	}
	if env.P.Seed != 5 {
		t.Error("params not retained")
	}
}

func TestApproveSites(t *testing.T) {
	in := core.NewInspector()
	ApproveSites(in)
	for _, s := range []core.SiteID{SiteSetupGrant, SiteOpEnable, SiteOpDisable, SiteAccess} {
		if !in.Allow(s, 1, 1, core.PermRW) {
			t.Errorf("site %d not approved", s)
		}
	}
	if in.Allow(999, 1, 1, core.PermRW) {
		t.Error("unapproved site allowed")
	}
}
