package micro

import (
	"fmt"

	"domainvirt/internal/pmo"
	"domainvirt/internal/workload"
)

// StringSwap is the paper's best-locality microbenchmark: a global array
// of 64-byte strings striped across pools; each operation swaps two
// random strings — "there are 128 loads/stores incurring only up to two
// TLB misses".
type StringSwap struct {
	mp      *MultiPool
	total   int
	strSize int
	bases   []pmo.OID // per-pool slab base
	perPool int
}

// NewStringSwap allocates one slab of string slots per pool. Slot i lives
// in pool i%P at index i/P.
func NewStringSwap(mp *MultiPool, env *workload.Env, ctx *OpCtx) (*StringSwap, error) {
	s := &StringSwap{
		mp:      mp,
		total:   env.P.InitialElems * 4,
		strSize: env.P.ValueSize,
	}
	p := len(mp.Pools)
	s.perPool = (s.total + p - 1) / p
	for _, pool := range mp.Pools {
		ctx.EnsureWrite(pool)
		slab, err := pool.Alloc(uint64(s.perPool * s.strSize))
		if err != nil {
			return nil, err
		}
		pool.SetRoot(slab) // persistently locate the slab
		s.bases = append(s.bases, slab)
	}
	// Initialize every string deterministically from its slot index.
	buf := make([]byte, s.strSize)
	for i := 0; i < s.total; i++ {
		oid, pool := s.slot(i)
		fillValue(buf, uint64(i)+1)
		pool.Write(oid.Offset(), buf)
	}
	ctx.End()
	return s, nil
}

// slot resolves string index i to its OID and pool.
func (s *StringSwap) slot(i int) (pmo.OID, *pmo.Pool) {
	p := i % len(s.mp.Pools)
	idx := i / len(s.mp.Pools)
	base := s.bases[p]
	return base.Add(uint32(idx * s.strSize)), s.mp.Pools[p]
}

// Swap exchanges strings i and j: two 64-byte reads, two 64-byte writes.
func (s *StringSwap) Swap(ctx *OpCtx, i, j int) {
	oi, pi := s.slot(i)
	oj, pj := s.slot(j)
	bi := make([]byte, s.strSize)
	bj := make([]byte, s.strSize)
	pi.Read(oi.Offset(), bi)
	pj.Read(oj.Offset(), bj)
	ctx.EnsureWrite(pi)
	pi.Write(oi.Offset(), bj)
	ctx.EnsureWrite(pj)
	pj.Write(oj.Offset(), bi)
}

// Get returns string i (tests).
func (s *StringSwap) Get(i int) []byte {
	oid, pool := s.slot(i)
	buf := make([]byte, s.strSize)
	pool.Read(oid.Offset(), buf)
	return buf
}

// Validate checks that the multiset of strings is the initial one: swaps
// permute, never corrupt.
func (s *StringSwap) Validate() error {
	seen := make(map[string]int, s.total)
	for i := 0; i < s.total; i++ {
		seen[string(s.Get(i))]++
	}
	buf := make([]byte, s.strSize)
	for i := 0; i < s.total; i++ {
		fillValue(buf, uint64(i)+1)
		if seen[string(buf)] == 0 {
			return fmt.Errorf("stringswap: string %d lost", i)
		}
		seen[string(buf)]--
	}
	return nil
}

// ssWorkload is the registered "ss" benchmark.
type ssWorkload struct {
	mp *MultiPool
	ss *StringSwap
}

func init() {
	workload.Register("ss", func() workload.Workload { return &ssWorkload{} })
}

// Name implements workload.Workload.
func (w *ssWorkload) Name() string { return "ss" }

// Setup implements workload.Workload.
func (w *ssWorkload) Setup(env *workload.Env) error {
	mp, err := SetupPools(env, "ss")
	if err != nil {
		return err
	}
	w.mp = mp
	ctx := NewOpCtx(env, mp)
	w.ss, err = NewStringSwap(mp, env, ctx)
	return err
}

// Run implements workload.Workload.
func (w *ssWorkload) Run(env *workload.Env) error {
	ctx := NewOpCtx(env, w.mp)
	npools := len(w.mp.Pools)
	for i := 0; i < env.P.Ops; i++ {
		env.Space.Thread = opThread(env, i)
		env.Space.Instr(env.P.InstrPerOp)
		a := env.Rng.Intn(w.ss.total)
		b := env.Rng.Intn(w.ss.total)
		if env.P.PerPool() {
			// Swap two strings striped into the same pool.
			b = b - b%npools + a%npools
			if b >= w.ss.total {
				b = a
			}
		}
		w.ss.Swap(ctx, a, b)
		ctx.End()
		env.OpDone(i)
	}
	return nil
}
