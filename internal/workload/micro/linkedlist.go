package micro

import (
	"fmt"

	"domainvirt/internal/pmo"
	"domainvirt/internal/workload"
)

// Linked-list node layout: key u64, next OID, then the value payload.
const (
	llKey  = 0
	llNext = 8
	llHdr  = 16
)

// LinkedList is a sorted persistent singly-linked list whose nodes are
// scattered across pools — the worst-locality microbenchmark: "each node
// access could cause a TLB miss". The key universe is bounded so the
// steady-state traversal length stays in the hundreds.
type LinkedList struct {
	mp       *MultiPool
	home     *pmo.Pool
	keyspace uint64
	nodeSize uint64
}

// llKeyspace bounds the list length: duplicates update in place.
func llKeyspace(initialElems int) uint64 {
	ks := uint64(initialElems / 4)
	if ks < 64 {
		ks = 64
	}
	if ks > 512 {
		ks = 512
	}
	return ks
}

// NewLinkedList wraps mp as a sorted list; the head OID lives in the home
// pool's root slot.
func NewLinkedList(mp *MultiPool, env *workload.Env) *LinkedList {
	return NewLinkedListHomed(mp, env, mp.Home())
}

// NewLinkedListHomed roots the list head in an explicit pool.
func NewLinkedListHomed(mp *MultiPool, env *workload.Env, home *pmo.Pool) *LinkedList {
	return &LinkedList{
		mp:       mp,
		home:     home,
		keyspace: llKeyspace(env.P.InitialElems),
		nodeSize: llHdr + uint64(env.P.ValueSize),
	}
}

func (t *LinkedList) head() pmo.OID { return t.home.Root() }

func (t *LinkedList) setHead(ctx *OpCtx, o pmo.OID) {
	ctx.EnsureWrite(t.home)
	t.home.SetRoot(o)
}

// Insert adds key in sorted position (updating in place on duplicates).
func (t *LinkedList) Insert(ctx *OpCtx, key uint64) error {
	var prev pmo.OID
	cur := t.head()
	for !cur.IsNull() {
		k := ctx.R8(cur, llKey)
		if k == key {
			ctx.WriteValue(cur, llHdr, key)
			return nil
		}
		if k > key {
			break
		}
		prev = cur
		cur = ctx.ROID(cur, llNext)
	}
	n, err := ctx.Alloc(t.nodeSize)
	if err != nil {
		return err
	}
	ctx.W8(n, llKey, key)
	ctx.WOID(n, llNext, cur)
	ctx.WriteValue(n, llHdr, key)
	if prev.IsNull() {
		t.setHead(ctx, n)
	} else {
		ctx.WOID(prev, llNext, n)
	}
	return nil
}

// Delete unlinks and frees key's node; a miss is a pure traversal.
func (t *LinkedList) Delete(ctx *OpCtx, key uint64) (bool, error) {
	var prev pmo.OID
	cur := t.head()
	for !cur.IsNull() {
		k := ctx.R8(cur, llKey)
		if k == key {
			next := ctx.ROID(cur, llNext)
			if prev.IsNull() {
				t.setHead(ctx, next)
			} else {
				ctx.WOID(prev, llNext, next)
			}
			return true, ctx.Free(cur)
		}
		if k > key {
			return false, nil
		}
		prev = cur
		cur = ctx.ROID(cur, llNext)
	}
	return false, nil
}

// Keys returns the list's keys in order (tests).
func (t *LinkedList) Keys(ctx *OpCtx) []uint64 {
	var out []uint64
	for cur := t.head(); !cur.IsNull(); cur = ctx.ROID(cur, llNext) {
		out = append(out, ctx.R8(cur, llKey))
	}
	return out
}

// Validate checks strict sorted order.
func (t *LinkedList) Validate(ctx *OpCtx) error {
	keys := t.Keys(ctx)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return fmt.Errorf("linkedlist: unsorted at %d (%d >= %d)", i, keys[i-1], keys[i])
		}
	}
	return nil
}

// llWorkload is the registered "ll" benchmark.
type llWorkload struct {
	mp    *MultiPool
	list  *LinkedList
	lists []*LinkedList // per-pool placement ablation
}

func init() {
	workload.Register("ll", func() workload.Workload { return &llWorkload{} })
}

// Name implements workload.Workload.
func (w *llWorkload) Name() string { return "ll" }

// Setup implements workload.Workload.
func (w *llWorkload) Setup(env *workload.Env) error {
	mp, err := SetupPools(env, "ll")
	if err != nil {
		return err
	}
	w.mp = mp
	ctx := NewOpCtx(env, mp)
	if env.P.PerPool() {
		for _, p := range mp.Pools {
			ls := NewLinkedListHomed(mp, env, p)
			ctx.Pin = p
			for i := 0; i < env.P.InitialElems; i++ {
				if err := ls.Insert(ctx, randomKey(env, ls.keyspace)); err != nil {
					return err
				}
				ctx.End()
			}
			w.lists = append(w.lists, ls)
		}
		ctx.Pin = nil
		return nil
	}
	w.list = NewLinkedList(mp, env)
	for i := 0; i < env.P.InitialElems; i++ {
		if err := w.list.Insert(ctx, randomKey(env, w.list.keyspace)); err != nil {
			return err
		}
		ctx.End()
	}
	return nil
}

// Run implements workload.Workload.
func (w *llWorkload) Run(env *workload.Env) error {
	ctx := NewOpCtx(env, w.mp)
	for i := 0; i < env.P.Ops; i++ {
		env.Space.Thread = opThread(env, i)
		env.Space.Instr(env.P.InstrPerOp)
		list := w.list
		if env.P.PerPool() {
			idx := env.Rng.Intn(len(w.lists))
			list = w.lists[idx]
			ctx.Pin = w.mp.Pools[idx]
		}
		key := randomKey(env, list.keyspace)
		if env.Rng.Intn(100) < 90 {
			if err := list.Insert(ctx, key); err != nil {
				return err
			}
		} else {
			if _, err := list.Delete(ctx, key); err != nil {
				return err
			}
		}
		ctx.End()
		ctx.Pin = nil
		env.OpDone(i)
	}
	return nil
}
