// Package micro implements the paper's multi-PMO microbenchmarks
// (Table IV): AVL tree, red-black tree, B+tree, linked list, and string
// swap. Each benchmark maintains one logical data structure whose nodes
// are scattered across 16–1024 pools (each node lives in a randomly
// chosen pool), so an operation's traversal touches several protection
// domains — the regime that stresses domain virtualization.
//
// Permission discipline, per the paper: every thread is granted read
// permission for all PMOs at setup; write permission for a PMO is enabled
// just before a data-structure operation writes it and disabled right
// after the operation completes.
package micro

import (
	"fmt"

	"domainvirt/internal/core"
	"domainvirt/internal/pmo"
	"domainvirt/internal/workload"
)

// MultiPool is the set of pools a benchmark spreads its nodes across.
type MultiPool struct {
	Pools []*pmo.Pool
	byID  map[uint32]*pmo.Pool
}

// SetupPools creates, attaches, and read-grants NumPMOs pools.
func SetupPools(env *workload.Env, prefix string) (*MultiPool, error) {
	mp := &MultiPool{byID: make(map[uint32]*pmo.Pool)}
	for i := 0; i < env.P.NumPMOs; i++ {
		p, err := env.Store.Create(fmt.Sprintf("%s-%04d", prefix, i), env.P.PoolSize, pmo.ModeDefault, "bench")
		if err != nil {
			return nil, err
		}
		if _, err := env.Space.Attach(p, core.PermRW, ""); err != nil {
			return nil, err
		}
		mp.Pools = append(mp.Pools, p)
		mp.byID[p.ID()] = p
	}
	// Grant every thread read permission for all PMOs.
	orig := env.Space.Thread
	for th := 1; th <= env.P.Threads; th++ {
		env.Space.Thread = core.ThreadID(th)
		for _, p := range mp.Pools {
			if err := env.Space.SetPerm(p, core.PermR, workload.SiteSetupGrant); err != nil {
				return nil, err
			}
		}
	}
	env.Space.Thread = orig
	return mp, nil
}

// ByOID returns the pool holding o.
func (m *MultiPool) ByOID(o pmo.OID) *pmo.Pool { return m.byID[o.Pool()] }

// ByID returns the pool with the given ID.
func (m *MultiPool) ByID(id uint32) *pmo.Pool { return m.byID[id] }

// Home is the pool holding structure roots and sentinels (the first).
func (m *MultiPool) Home() *pmo.Pool { return m.Pools[0] }

// OpCtx is the write window of one data-structure operation: the first
// write to each pool enables its write permission; End revokes all of
// them, restoring read-only.
type OpCtx struct {
	Env *workload.Env
	MP  *MultiPool
	// Pin, when non-nil, forces all node placement into one pool — the
	// per-pool placement ablation (each pool holds its own structure).
	Pin     *pmo.Pool
	enabled []*pmo.Pool
	inWin   map[uint32]bool
}

// NewOpCtx returns a write-window tracker for the benchmark.
func NewOpCtx(env *workload.Env, mp *MultiPool) *OpCtx {
	return &OpCtx{Env: env, MP: mp, inWin: make(map[uint32]bool)}
}

// EnsureWrite enables write permission for p if this operation has not
// already.
func (o *OpCtx) EnsureWrite(p *pmo.Pool) {
	if o.inWin[p.ID()] {
		return
	}
	o.inWin[p.ID()] = true
	o.enabled = append(o.enabled, p)
	_ = o.Env.Space.SetPerm(p, core.PermRW, workload.SiteOpEnable)
}

// End closes the operation's write window, restoring read-only on every
// pool it wrote.
func (o *OpCtx) End() {
	for _, p := range o.enabled {
		_ = o.Env.Space.SetPerm(p, core.PermR, workload.SiteOpDisable)
		delete(o.inWin, p.ID())
	}
	o.enabled = o.enabled[:0]
}

// RandomPool picks the pool for a new node: uniform across pools under
// scattered placement, the pinned pool under per-pool placement.
func (o *OpCtx) RandomPool() *pmo.Pool {
	if o.Pin != nil {
		return o.Pin
	}
	return o.MP.Pools[o.Env.Rng.Intn(len(o.MP.Pools))]
}

// Alloc allocates size bytes in a random pool inside the write window.
func (o *OpCtx) Alloc(size uint64) (pmo.OID, error) {
	p := o.RandomPool()
	o.EnsureWrite(p)
	return p.Alloc(size)
}

// Free releases oid inside the write window.
func (o *OpCtx) Free(oid pmo.OID) error {
	p := o.MP.ByOID(oid)
	if p == nil {
		return fmt.Errorf("micro: no pool for %v", oid)
	}
	o.EnsureWrite(p)
	return p.Free(oid)
}

// R8 reads a u64 field of node oid.
func (o *OpCtx) R8(oid pmo.OID, field uint32) uint64 {
	return o.MP.ByOID(oid).ReadU64(oid.Offset() + field)
}

// W8 writes a u64 field of node oid inside the write window.
func (o *OpCtx) W8(oid pmo.OID, field uint32, v uint64) {
	p := o.MP.ByOID(oid)
	o.EnsureWrite(p)
	p.WriteU64(oid.Offset()+field, v)
}

// ROID reads a persistent-pointer field.
func (o *OpCtx) ROID(oid pmo.OID, field uint32) pmo.OID {
	return pmo.OID(o.R8(oid, field))
}

// WOID writes a persistent-pointer field.
func (o *OpCtx) WOID(oid pmo.OID, field uint32, v pmo.OID) {
	o.W8(oid, field, uint64(v))
}

// WriteValue fills the node's payload deterministically from its key.
func (o *OpCtx) WriteValue(oid pmo.OID, field uint32, key uint64) {
	p := o.MP.ByOID(oid)
	o.EnsureWrite(p)
	buf := make([]byte, o.Env.P.ValueSize)
	fillValue(buf, key)
	p.Write(oid.Offset()+field, buf)
}

// ReadValue reads the node payload.
func (o *OpCtx) ReadValue(oid pmo.OID, field uint32) []byte {
	buf := make([]byte, o.Env.P.ValueSize)
	o.MP.ByOID(oid).Read(oid.Offset()+field, buf)
	return buf
}

func fillValue(buf []byte, key uint64) {
	x := key*0x9E3779B97F4A7C15 + 1
	for i := range buf {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		buf[i] = byte(x)
	}
}

// opThread assigns operation i to a worker thread.
func opThread(env *workload.Env, i int) core.ThreadID {
	return core.ThreadID(1 + i%env.P.Threads)
}

// randomKey draws from the bounded key universe.
func randomKey(env *workload.Env, keyspace uint64) uint64 {
	return uint64(env.Rng.Int63n(int64(keyspace))) + 1
}
