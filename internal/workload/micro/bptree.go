package micro

import (
	"encoding/binary"
	"fmt"

	"domainvirt/internal/pmo"
	"domainvirt/internal/workload"
)

// B+tree node layout (4096 bytes, per the paper: "a node is 4096-byte
// long, containing 126 values and two pointers"):
//
//	off  0: isLeaf u64
//	off  8: nkeys u64
//	off 16: next-leaf OID (leaf chain)
//	off 24: reserved
//	leaves:   entries at off 32, 32 bytes each: key u64 + 24-byte value
//	internal: keys at off 32 (126 × u64), children at off 1040 (127 OIDs)
const (
	btIsLeaf  = 0
	btNKeys   = 8
	btNext    = 16
	btEntries = 32

	btNodeSize   = 4096
	btLeafEntry  = 32
	btMaxKeys    = 126
	btChildBase  = btEntries + btMaxKeys*8
	btValueBytes = 24
)

// btElemFactor scales the B+tree element count: the paper sizes
// structures in nodes, and one B+tree node holds 126 values, so reaching
// the same node count as the pointer-chasing benchmarks takes ~two
// orders of magnitude more elements.
const btElemFactor = 32

// BPTree is a persistent B+tree whose 4 KB nodes are scattered across
// pools; its flat fan-out gives it the best locality of the
// microbenchmarks (the paper's explanation for its late crossover point).
type BPTree struct {
	mp       *MultiPool
	home     *pmo.Pool
	keyspace uint64
}

// NewBPTree wraps mp as a B+tree, creating the root leaf in a random
// pool.
func NewBPTree(mp *MultiPool, env *workload.Env, ctx *OpCtx) (*BPTree, error) {
	return NewBPTreeHomed(mp, env, ctx, mp.Home())
}

// NewBPTreeHomed roots the tree's pointer in an explicit pool.
func NewBPTreeHomed(mp *MultiPool, env *workload.Env, ctx *OpCtx, home *pmo.Pool) (*BPTree, error) {
	t := &BPTree{mp: mp, home: home, keyspace: env.P.Keyspace() * btElemFactor}
	root, err := t.newLeaf(ctx)
	if err != nil {
		return nil, err
	}
	ctx.EnsureWrite(home)
	home.SetRoot(root)
	ctx.End()
	return t, nil
}

func (t *BPTree) root() pmo.OID { return t.home.Root() }

func (t *BPTree) setRoot(ctx *OpCtx, o pmo.OID) {
	ctx.EnsureWrite(t.home)
	t.home.SetRoot(o)
}

func (t *BPTree) newLeaf(ctx *OpCtx) (pmo.OID, error) {
	o, err := ctx.Alloc(btNodeSize)
	if err != nil {
		return pmo.NullOID, err
	}
	ctx.W8(o, btIsLeaf, 1)
	ctx.W8(o, btNKeys, 0)
	ctx.WOID(o, btNext, pmo.NullOID)
	return o, nil
}

func (t *BPTree) newInternal(ctx *OpCtx) (pmo.OID, error) {
	o, err := ctx.Alloc(btNodeSize)
	if err != nil {
		return pmo.NullOID, err
	}
	ctx.W8(o, btIsLeaf, 0)
	ctx.W8(o, btNKeys, 0)
	return o, nil
}

func (t *BPTree) leafKey(ctx *OpCtx, o pmo.OID, i int) uint64 {
	return ctx.R8(o, uint32(btEntries+i*btLeafEntry))
}

func (t *BPTree) internalKey(ctx *OpCtx, o pmo.OID, i int) uint64 {
	return ctx.R8(o, uint32(btEntries+i*8))
}

func (t *BPTree) child(ctx *OpCtx, o pmo.OID, i int) pmo.OID {
	return ctx.ROID(o, uint32(btChildBase+i*8))
}

func (t *BPTree) writeLeafEntry(ctx *OpCtx, o pmo.OID, i int, key uint64) {
	p := t.mp.ByOID(o)
	ctx.EnsureWrite(p)
	var buf [btLeafEntry]byte
	binary.LittleEndian.PutUint64(buf[:8], key)
	fillValue(buf[8:8+btValueBytes], key)
	p.Write(o.Offset()+uint32(btEntries+i*btLeafEntry), buf[:])
}

// shiftLeaf moves entries [pos, n) one slot right via a block copy.
func (t *BPTree) shiftLeaf(ctx *OpCtx, o pmo.OID, pos, n int) {
	if pos >= n {
		return
	}
	p := t.mp.ByOID(o)
	ctx.EnsureWrite(p)
	buf := make([]byte, (n-pos)*btLeafEntry)
	p.Read(o.Offset()+uint32(btEntries+pos*btLeafEntry), buf)
	p.Write(o.Offset()+uint32(btEntries+(pos+1)*btLeafEntry), buf)
}

// Insert adds key (updating in place on duplicates).
func (t *BPTree) Insert(ctx *OpCtx, key uint64) error {
	root := t.root()
	promo, newNode, err := t.insertRec(ctx, root, key)
	if err != nil {
		return err
	}
	if newNode.IsNull() {
		return nil
	}
	// Root split: grow the tree by one level.
	nr, err := t.newInternal(ctx)
	if err != nil {
		return err
	}
	ctx.W8(nr, btNKeys, 1)
	ctx.W8(nr, uint32(btEntries), promo)
	ctx.WOID(nr, uint32(btChildBase), root)
	ctx.WOID(nr, uint32(btChildBase+8), newNode)
	t.setRoot(ctx, nr)
	return nil
}

func (t *BPTree) insertRec(ctx *OpCtx, o pmo.OID, key uint64) (uint64, pmo.OID, error) {
	n := int(ctx.R8(o, btNKeys))
	if ctx.R8(o, btIsLeaf) == 1 {
		pos := 0
		for pos < n {
			k := t.leafKey(ctx, o, pos)
			if key == k {
				t.writeLeafEntry(ctx, o, pos, key) // refresh value
				return 0, pmo.NullOID, nil
			}
			if key < k {
				break
			}
			pos++
		}
		if n < btMaxKeys {
			t.shiftLeaf(ctx, o, pos, n)
			t.writeLeafEntry(ctx, o, pos, key)
			ctx.W8(o, btNKeys, uint64(n+1))
			return 0, pmo.NullOID, nil
		}
		// Leaf split: upper half moves to a new leaf.
		nl, err := t.newLeaf(ctx)
		if err != nil {
			return 0, pmo.NullOID, err
		}
		half := n / 2
		src, dst := t.mp.ByOID(o), t.mp.ByOID(nl)
		ctx.EnsureWrite(dst)
		buf := make([]byte, (n-half)*btLeafEntry)
		src.Read(o.Offset()+uint32(btEntries+half*btLeafEntry), buf)
		dst.Write(nl.Offset()+uint32(btEntries), buf)
		ctx.W8(nl, btNKeys, uint64(n-half))
		ctx.WOID(nl, btNext, ctx.ROID(o, btNext))
		ctx.W8(o, btNKeys, uint64(half))
		ctx.WOID(o, btNext, nl)
		sep := t.leafKey(ctx, nl, 0)
		if key < sep {
			if _, _, err := t.insertRec(ctx, o, key); err != nil {
				return 0, pmo.NullOID, err
			}
		} else {
			if _, _, err := t.insertRec(ctx, nl, key); err != nil {
				return 0, pmo.NullOID, err
			}
		}
		return sep, nl, nil
	}

	// Internal node: find the child to descend into.
	idx := 0
	for idx < n && key >= t.internalKey(ctx, o, idx) {
		idx++
	}
	promo, newChild, err := t.insertRec(ctx, t.child(ctx, o, idx), key)
	if err != nil || newChild.IsNull() {
		return 0, pmo.NullOID, err
	}
	// Insert (promo, newChild) at idx.
	p := t.mp.ByOID(o)
	ctx.EnsureWrite(p)
	for i := n; i > idx; i-- {
		ctx.W8(o, uint32(btEntries+i*8), t.internalKey(ctx, o, i-1))
		ctx.WOID(o, uint32(btChildBase+(i+1)*8), t.child(ctx, o, i))
	}
	ctx.W8(o, uint32(btEntries+idx*8), promo)
	ctx.WOID(o, uint32(btChildBase+(idx+1)*8), newChild)
	n++
	ctx.W8(o, btNKeys, uint64(n))
	if n < btMaxKeys {
		return 0, pmo.NullOID, nil
	}
	// Internal split: promote the middle key.
	half := n / 2
	mid := t.internalKey(ctx, o, half)
	ni, err := t.newInternal(ctx)
	if err != nil {
		return 0, pmo.NullOID, err
	}
	for i := half + 1; i < n; i++ {
		j := i - half - 1
		ctx.W8(ni, uint32(btEntries+j*8), t.internalKey(ctx, o, i))
		ctx.WOID(ni, uint32(btChildBase+j*8), t.child(ctx, o, i))
	}
	ctx.WOID(ni, uint32(btChildBase+(n-half-1)*8), t.child(ctx, o, n))
	ctx.W8(ni, btNKeys, uint64(n-half-1))
	ctx.W8(o, btNKeys, uint64(half))
	return mid, ni, nil
}

// Search reports whether key is present.
func (t *BPTree) Search(ctx *OpCtx, key uint64) bool {
	o := t.root()
	for ctx.R8(o, btIsLeaf) == 0 {
		n := int(ctx.R8(o, btNKeys))
		idx := 0
		for idx < n && key >= t.internalKey(ctx, o, idx) {
			idx++
		}
		o = t.child(ctx, o, idx)
	}
	n := int(ctx.R8(o, btNKeys))
	for i := 0; i < n; i++ {
		if t.leafKey(ctx, o, i) == key {
			return true
		}
	}
	return false
}

// Delete removes key from its leaf (lazy deletion: leaves are never
// merged, matching insert-dominated workloads).
func (t *BPTree) Delete(ctx *OpCtx, key uint64) (bool, error) {
	o := t.root()
	for ctx.R8(o, btIsLeaf) == 0 {
		n := int(ctx.R8(o, btNKeys))
		idx := 0
		for idx < n && key >= t.internalKey(ctx, o, idx) {
			idx++
		}
		o = t.child(ctx, o, idx)
	}
	n := int(ctx.R8(o, btNKeys))
	for i := 0; i < n; i++ {
		if t.leafKey(ctx, o, i) == key {
			p := t.mp.ByOID(o)
			ctx.EnsureWrite(p)
			if i < n-1 {
				buf := make([]byte, (n-1-i)*btLeafEntry)
				p.Read(o.Offset()+uint32(btEntries+(i+1)*btLeafEntry), buf)
				p.Write(o.Offset()+uint32(btEntries+i*btLeafEntry), buf)
			}
			ctx.W8(o, btNKeys, uint64(n-1))
			return true, nil
		}
	}
	return false, nil
}

// Keys returns all keys via the leaf chain (tests).
func (t *BPTree) Keys(ctx *OpCtx) []uint64 {
	o := t.root()
	for ctx.R8(o, btIsLeaf) == 0 {
		o = t.child(ctx, o, 0)
	}
	var out []uint64
	for !o.IsNull() {
		n := int(ctx.R8(o, btNKeys))
		for i := 0; i < n; i++ {
			out = append(out, t.leafKey(ctx, o, i))
		}
		o = ctx.ROID(o, btNext)
	}
	return out
}

// Validate checks sortedness along the leaf chain and fan-out bounds.
func (t *BPTree) Validate(ctx *OpCtx) error {
	keys := t.Keys(ctx)
	for i := 1; i < len(keys); i++ {
		if keys[i-1] >= keys[i] {
			return fmt.Errorf("bptree: leaf chain unsorted at %d (%d >= %d)", i, keys[i-1], keys[i])
		}
	}
	var walk func(o pmo.OID, depth int) (int, error)
	walk = func(o pmo.OID, depth int) (int, error) {
		n := int(ctx.R8(o, btNKeys))
		if n > btMaxKeys {
			return 0, fmt.Errorf("bptree: node overflow (%d keys)", n)
		}
		if ctx.R8(o, btIsLeaf) == 1 {
			return depth, nil
		}
		want := -1
		for i := 0; i <= n; i++ {
			d, err := walk(t.child(ctx, o, i), depth+1)
			if err != nil {
				return 0, err
			}
			if want < 0 {
				want = d
			} else if d != want {
				return 0, fmt.Errorf("bptree: uneven leaf depth (%d vs %d)", d, want)
			}
		}
		return want, nil
	}
	_, err := walk(t.root(), 0)
	return err
}

// btWorkload is the registered "bt" benchmark.
type btWorkload struct {
	mp    *MultiPool
	tree  *BPTree
	trees []*BPTree // per-pool placement ablation
}

func init() {
	workload.Register("bt", func() workload.Workload { return &btWorkload{} })
}

// Name implements workload.Workload.
func (w *btWorkload) Name() string { return "bt" }

// Setup implements workload.Workload.
func (w *btWorkload) Setup(env *workload.Env) error {
	mp, err := SetupPools(env, "bt")
	if err != nil {
		return err
	}
	w.mp = mp
	ctx := NewOpCtx(env, mp)
	if env.P.PerPool() {
		for _, p := range mp.Pools {
			tr, err := NewBPTreeHomed(mp, env, ctx, p)
			if err != nil {
				return err
			}
			tr.keyspace = env.P.Keyspace() // per-pool trees stay small
			ctx.Pin = p
			for i := 0; i < env.P.InitialElems; i++ {
				if err := tr.Insert(ctx, randomKey(env, tr.keyspace)); err != nil {
					return err
				}
				ctx.End()
			}
			w.trees = append(w.trees, tr)
		}
		ctx.Pin = nil
		return nil
	}
	w.tree, err = NewBPTree(mp, env, ctx)
	if err != nil {
		return err
	}
	for i := 0; i < env.P.InitialElems*btElemFactor; i++ {
		if err := w.tree.Insert(ctx, randomKey(env, w.tree.keyspace)); err != nil {
			return err
		}
		ctx.End()
	}
	return nil
}

// Run implements workload.Workload.
func (w *btWorkload) Run(env *workload.Env) error {
	ctx := NewOpCtx(env, w.mp)
	for i := 0; i < env.P.Ops; i++ {
		env.Space.Thread = opThread(env, i)
		env.Space.Instr(env.P.InstrPerOp)
		tree := w.tree
		if env.P.PerPool() {
			idx := env.Rng.Intn(len(w.trees))
			tree = w.trees[idx]
			ctx.Pin = w.mp.Pools[idx]
		}
		key := randomKey(env, tree.keyspace)
		if env.Rng.Intn(100) < 90 {
			if err := tree.Insert(ctx, key); err != nil {
				return err
			}
		} else {
			if _, err := tree.Delete(ctx, key); err != nil {
				return err
			}
		}
		ctx.End()
		ctx.Pin = nil
		env.OpDone(i)
	}
	return nil
}
