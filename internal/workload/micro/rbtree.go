package micro

import (
	"fmt"

	"domainvirt/internal/pmo"
	"domainvirt/internal/workload"
)

// Red-black node layout: key u64, left OID, right OID, parent OID,
// color u64 (0 black, 1 red), then the value payload.
const (
	rbKey    = 0
	rbLeft   = 8
	rbRight  = 16
	rbParent = 24
	rbColor  = 32
	rbHdr    = 40

	rbBlack = 0
	rbRed   = 1
)

// RBT is a persistent red-black tree (CLRS formulation with an explicit
// sentinel NIL node in the home pool). The root OID lives in the home
// pool's root slot.
type RBT struct {
	mp       *MultiPool
	home     *pmo.Pool
	nilNode  pmo.OID
	keyspace uint64
	nodeSize uint64
}

// NewRBT wraps mp as a red-black tree, allocating the sentinel in the
// home pool.
func NewRBT(mp *MultiPool, env *workload.Env, ctx *OpCtx) (*RBT, error) {
	return NewRBTHomed(mp, env, ctx, mp.Home())
}

// NewRBTHomed roots the tree (and its sentinel) in an explicit pool.
func NewRBTHomed(mp *MultiPool, env *workload.Env, ctx *OpCtx, home *pmo.Pool) (*RBT, error) {
	t := &RBT{
		mp:       mp,
		home:     home,
		keyspace: env.P.Keyspace(),
		nodeSize: rbHdr + uint64(env.P.ValueSize),
	}
	ctx.EnsureWrite(home)
	sentinel, err := home.Alloc(rbHdr)
	if err != nil {
		return nil, err
	}
	ctx.W8(sentinel, rbColor, rbBlack)
	ctx.WOID(sentinel, rbLeft, sentinel)
	ctx.WOID(sentinel, rbRight, sentinel)
	ctx.WOID(sentinel, rbParent, sentinel)
	t.nilNode = sentinel
	home.SetRoot(sentinel)
	ctx.End()
	return t, nil
}

func (t *RBT) isNil(o pmo.OID) bool { return o == t.nilNode }

func (t *RBT) root() pmo.OID { return t.home.Root() }

func (t *RBT) setRoot(ctx *OpCtx, o pmo.OID) {
	ctx.EnsureWrite(t.home)
	t.home.SetRoot(o)
}

func (t *RBT) color(ctx *OpCtx, o pmo.OID) uint64 { return ctx.R8(o, rbColor) }

func (t *RBT) setColor(ctx *OpCtx, o pmo.OID, c uint64) {
	if ctx.R8(o, rbColor) != c {
		ctx.W8(o, rbColor, c)
	}
}

func (t *RBT) newNode(ctx *OpCtx, key uint64) (pmo.OID, error) {
	o, err := ctx.Alloc(t.nodeSize)
	if err != nil {
		return pmo.NullOID, err
	}
	ctx.W8(o, rbKey, key)
	ctx.WOID(o, rbLeft, t.nilNode)
	ctx.WOID(o, rbRight, t.nilNode)
	ctx.WOID(o, rbParent, t.nilNode)
	ctx.W8(o, rbColor, rbRed)
	ctx.WriteValue(o, rbHdr, key)
	return o, nil
}

func (t *RBT) leftRotate(ctx *OpCtx, x pmo.OID) {
	y := ctx.ROID(x, rbRight)
	yl := ctx.ROID(y, rbLeft)
	ctx.WOID(x, rbRight, yl)
	if !t.isNil(yl) {
		ctx.WOID(yl, rbParent, x)
	}
	xp := ctx.ROID(x, rbParent)
	ctx.WOID(y, rbParent, xp)
	switch {
	case t.isNil(xp):
		t.setRoot(ctx, y)
	case x == ctx.ROID(xp, rbLeft):
		ctx.WOID(xp, rbLeft, y)
	default:
		ctx.WOID(xp, rbRight, y)
	}
	ctx.WOID(y, rbLeft, x)
	ctx.WOID(x, rbParent, y)
}

func (t *RBT) rightRotate(ctx *OpCtx, x pmo.OID) {
	y := ctx.ROID(x, rbLeft)
	yr := ctx.ROID(y, rbRight)
	ctx.WOID(x, rbLeft, yr)
	if !t.isNil(yr) {
		ctx.WOID(yr, rbParent, x)
	}
	xp := ctx.ROID(x, rbParent)
	ctx.WOID(y, rbParent, xp)
	switch {
	case t.isNil(xp):
		t.setRoot(ctx, y)
	case x == ctx.ROID(xp, rbRight):
		ctx.WOID(xp, rbRight, y)
	default:
		ctx.WOID(xp, rbLeft, y)
	}
	ctx.WOID(y, rbRight, x)
	ctx.WOID(x, rbParent, y)
}

// Insert adds key (updating the value in place on duplicates).
func (t *RBT) Insert(ctx *OpCtx, key uint64) error {
	y := t.nilNode
	x := t.root()
	for !t.isNil(x) {
		y = x
		k := ctx.R8(x, rbKey)
		switch {
		case key == k:
			ctx.WriteValue(x, rbHdr, key)
			return nil
		case key < k:
			x = ctx.ROID(x, rbLeft)
		default:
			x = ctx.ROID(x, rbRight)
		}
	}
	z, err := t.newNode(ctx, key)
	if err != nil {
		return err
	}
	ctx.WOID(z, rbParent, y)
	switch {
	case t.isNil(y):
		t.setRoot(ctx, z)
	case key < ctx.R8(y, rbKey):
		ctx.WOID(y, rbLeft, z)
	default:
		ctx.WOID(y, rbRight, z)
	}
	t.insertFixup(ctx, z)
	return nil
}

func (t *RBT) insertFixup(ctx *OpCtx, z pmo.OID) {
	for {
		zp := ctx.ROID(z, rbParent)
		if t.isNil(zp) || t.color(ctx, zp) != rbRed {
			break
		}
		zpp := ctx.ROID(zp, rbParent)
		if zp == ctx.ROID(zpp, rbLeft) {
			y := ctx.ROID(zpp, rbRight)
			if t.color(ctx, y) == rbRed {
				t.setColor(ctx, zp, rbBlack)
				t.setColor(ctx, y, rbBlack)
				t.setColor(ctx, zpp, rbRed)
				z = zpp
				continue
			}
			if z == ctx.ROID(zp, rbRight) {
				z = zp
				t.leftRotate(ctx, z)
				zp = ctx.ROID(z, rbParent)
				zpp = ctx.ROID(zp, rbParent)
			}
			t.setColor(ctx, zp, rbBlack)
			t.setColor(ctx, zpp, rbRed)
			t.rightRotate(ctx, zpp)
		} else {
			y := ctx.ROID(zpp, rbLeft)
			if t.color(ctx, y) == rbRed {
				t.setColor(ctx, zp, rbBlack)
				t.setColor(ctx, y, rbBlack)
				t.setColor(ctx, zpp, rbRed)
				z = zpp
				continue
			}
			if z == ctx.ROID(zp, rbLeft) {
				z = zp
				t.rightRotate(ctx, z)
				zp = ctx.ROID(z, rbParent)
				zpp = ctx.ROID(zp, rbParent)
			}
			t.setColor(ctx, zp, rbBlack)
			t.setColor(ctx, zpp, rbRed)
			t.leftRotate(ctx, zpp)
		}
	}
	t.setColor(ctx, t.root(), rbBlack)
}

func (t *RBT) transplant(ctx *OpCtx, u, v pmo.OID) {
	up := ctx.ROID(u, rbParent)
	switch {
	case t.isNil(up):
		t.setRoot(ctx, v)
	case u == ctx.ROID(up, rbLeft):
		ctx.WOID(up, rbLeft, v)
	default:
		ctx.WOID(up, rbRight, v)
	}
	ctx.WOID(v, rbParent, up)
}

func (t *RBT) minimum(ctx *OpCtx, o pmo.OID) pmo.OID {
	for {
		l := ctx.ROID(o, rbLeft)
		if t.isNil(l) {
			return o
		}
		o = l
	}
}

// Search returns the node with key, or the sentinel.
func (t *RBT) Search(ctx *OpCtx, key uint64) pmo.OID {
	x := t.root()
	for !t.isNil(x) {
		k := ctx.R8(x, rbKey)
		switch {
		case key == k:
			return x
		case key < k:
			x = ctx.ROID(x, rbLeft)
		default:
			x = ctx.ROID(x, rbRight)
		}
	}
	return t.nilNode
}

// Delete removes key; a miss is a pure traversal.
func (t *RBT) Delete(ctx *OpCtx, key uint64) (bool, error) {
	z := t.Search(ctx, key)
	if t.isNil(z) {
		return false, nil
	}
	y := z
	yColor := t.color(ctx, y)
	var x pmo.OID
	switch {
	case t.isNil(ctx.ROID(z, rbLeft)):
		x = ctx.ROID(z, rbRight)
		t.transplant(ctx, z, x)
	case t.isNil(ctx.ROID(z, rbRight)):
		x = ctx.ROID(z, rbLeft)
		t.transplant(ctx, z, x)
	default:
		y = t.minimum(ctx, ctx.ROID(z, rbRight))
		yColor = t.color(ctx, y)
		x = ctx.ROID(y, rbRight)
		if ctx.ROID(y, rbParent) == z {
			ctx.WOID(x, rbParent, y)
		} else {
			t.transplant(ctx, y, x)
			zr := ctx.ROID(z, rbRight)
			ctx.WOID(y, rbRight, zr)
			ctx.WOID(zr, rbParent, y)
		}
		t.transplant(ctx, z, y)
		zl := ctx.ROID(z, rbLeft)
		ctx.WOID(y, rbLeft, zl)
		ctx.WOID(zl, rbParent, y)
		t.setColor(ctx, y, t.color(ctx, z))
	}
	if err := ctx.Free(z); err != nil {
		return false, err
	}
	if yColor == rbBlack {
		t.deleteFixup(ctx, x)
	}
	return true, nil
}

func (t *RBT) deleteFixup(ctx *OpCtx, x pmo.OID) {
	for x != t.root() && t.color(ctx, x) == rbBlack {
		xp := ctx.ROID(x, rbParent)
		if x == ctx.ROID(xp, rbLeft) {
			w := ctx.ROID(xp, rbRight)
			if t.color(ctx, w) == rbRed {
				t.setColor(ctx, w, rbBlack)
				t.setColor(ctx, xp, rbRed)
				t.leftRotate(ctx, xp)
				w = ctx.ROID(xp, rbRight)
			}
			if t.color(ctx, ctx.ROID(w, rbLeft)) == rbBlack && t.color(ctx, ctx.ROID(w, rbRight)) == rbBlack {
				t.setColor(ctx, w, rbRed)
				x = xp
				continue
			}
			if t.color(ctx, ctx.ROID(w, rbRight)) == rbBlack {
				t.setColor(ctx, ctx.ROID(w, rbLeft), rbBlack)
				t.setColor(ctx, w, rbRed)
				t.rightRotate(ctx, w)
				w = ctx.ROID(xp, rbRight)
			}
			t.setColor(ctx, w, t.color(ctx, xp))
			t.setColor(ctx, xp, rbBlack)
			t.setColor(ctx, ctx.ROID(w, rbRight), rbBlack)
			t.leftRotate(ctx, xp)
			x = t.root()
		} else {
			w := ctx.ROID(xp, rbLeft)
			if t.color(ctx, w) == rbRed {
				t.setColor(ctx, w, rbBlack)
				t.setColor(ctx, xp, rbRed)
				t.rightRotate(ctx, xp)
				w = ctx.ROID(xp, rbLeft)
			}
			if t.color(ctx, ctx.ROID(w, rbRight)) == rbBlack && t.color(ctx, ctx.ROID(w, rbLeft)) == rbBlack {
				t.setColor(ctx, w, rbRed)
				x = xp
				continue
			}
			if t.color(ctx, ctx.ROID(w, rbLeft)) == rbBlack {
				t.setColor(ctx, ctx.ROID(w, rbRight), rbBlack)
				t.setColor(ctx, w, rbRed)
				t.leftRotate(ctx, w)
				w = ctx.ROID(xp, rbLeft)
			}
			t.setColor(ctx, w, t.color(ctx, xp))
			t.setColor(ctx, xp, rbBlack)
			t.setColor(ctx, ctx.ROID(w, rbLeft), rbBlack)
			t.rightRotate(ctx, xp)
			x = t.root()
		}
	}
	t.setColor(ctx, x, rbBlack)
}

// Keys returns the in-order key sequence (tests).
func (t *RBT) Keys(ctx *OpCtx) []uint64 {
	var out []uint64
	var walk func(o pmo.OID)
	walk = func(o pmo.OID) {
		if t.isNil(o) {
			return
		}
		walk(ctx.ROID(o, rbLeft))
		out = append(out, ctx.R8(o, rbKey))
		walk(ctx.ROID(o, rbRight))
	}
	walk(t.root())
	return out
}

// Validate checks the red-black invariants: BST order, no red node with a
// red child, equal black height on every path.
func (t *RBT) Validate(ctx *OpCtx) error {
	root := t.root()
	if !t.isNil(root) && t.color(ctx, root) != rbBlack {
		return fmt.Errorf("rbt: root is red")
	}
	var check func(o pmo.OID, lo, hi uint64) (int, error)
	check = func(o pmo.OID, lo, hi uint64) (int, error) {
		if t.isNil(o) {
			return 1, nil
		}
		k := ctx.R8(o, rbKey)
		if k <= lo || k >= hi {
			return 0, fmt.Errorf("rbt: key %d violates BST bounds (%d,%d)", k, lo, hi)
		}
		c := t.color(ctx, o)
		if c == rbRed {
			if t.color(ctx, ctx.ROID(o, rbLeft)) == rbRed || t.color(ctx, ctx.ROID(o, rbRight)) == rbRed {
				return 0, fmt.Errorf("rbt: red node %d has a red child", k)
			}
		}
		lb, err := check(ctx.ROID(o, rbLeft), lo, k)
		if err != nil {
			return 0, err
		}
		rb, err := check(ctx.ROID(o, rbRight), k, hi)
		if err != nil {
			return 0, err
		}
		if lb != rb {
			return 0, fmt.Errorf("rbt: node %d black-height mismatch (%d vs %d)", k, lb, rb)
		}
		if c == rbBlack {
			lb++
		}
		return lb, nil
	}
	_, err := check(root, 0, ^uint64(0))
	return err
}

// rbtWorkload is the registered "rbt" benchmark.
type rbtWorkload struct {
	mp    *MultiPool
	tree  *RBT
	trees []*RBT // per-pool placement ablation
}

func init() {
	workload.Register("rbt", func() workload.Workload { return &rbtWorkload{} })
}

// Name implements workload.Workload.
func (w *rbtWorkload) Name() string { return "rbt" }

// Setup implements workload.Workload.
func (w *rbtWorkload) Setup(env *workload.Env) error {
	mp, err := SetupPools(env, "rbt")
	if err != nil {
		return err
	}
	w.mp = mp
	ctx := NewOpCtx(env, mp)
	if env.P.PerPool() {
		for _, p := range mp.Pools {
			tr, err := NewRBTHomed(mp, env, ctx, p)
			if err != nil {
				return err
			}
			ctx.Pin = p
			for i := 0; i < env.P.InitialElems; i++ {
				if err := tr.Insert(ctx, randomKey(env, tr.keyspace)); err != nil {
					return err
				}
				ctx.End()
			}
			w.trees = append(w.trees, tr)
		}
		ctx.Pin = nil
		return nil
	}
	w.tree, err = NewRBT(mp, env, ctx)
	if err != nil {
		return err
	}
	for i := 0; i < env.P.InitialElems; i++ {
		if err := w.tree.Insert(ctx, randomKey(env, w.tree.keyspace)); err != nil {
			return err
		}
		ctx.End()
	}
	return nil
}

// Run implements workload.Workload.
func (w *rbtWorkload) Run(env *workload.Env) error {
	ctx := NewOpCtx(env, w.mp)
	for i := 0; i < env.P.Ops; i++ {
		env.Space.Thread = opThread(env, i)
		env.Space.Instr(env.P.InstrPerOp)
		tree := w.tree
		if env.P.PerPool() {
			idx := env.Rng.Intn(len(w.trees))
			tree = w.trees[idx]
			ctx.Pin = w.mp.Pools[idx]
		}
		key := randomKey(env, tree.keyspace)
		if env.Rng.Intn(100) < 90 {
			if err := tree.Insert(ctx, key); err != nil {
				return err
			}
		} else {
			if _, err := tree.Delete(ctx, key); err != nil {
				return err
			}
		}
		ctx.End()
		ctx.Pin = nil
		env.OpDone(i)
	}
	return nil
}
