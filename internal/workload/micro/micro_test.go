package micro

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"domainvirt/internal/trace"
	"domainvirt/internal/workload"
)

func testEnv(t *testing.T, pmos int) *workload.Env {
	t.Helper()
	p := workload.Params{NumPMOs: pmos, Ops: 100, InitialElems: 64, Seed: 1}
	return workload.NewEnv(trace.Discard{}, p)
}

// refModel drives a structure and a Go map with the same operations and
// compares the surviving key sets.
func refCheck(t *testing.T, name string, insert func(uint64) error, del func(uint64) (bool, error), keys func() []uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	ref := make(map[uint64]bool)
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(400)) + 1
		if rng.Intn(100) < 70 {
			if err := insert(k); err != nil {
				t.Fatalf("%s insert: %v", name, err)
			}
			ref[k] = true
		} else {
			got, err := del(k)
			if err != nil {
				t.Fatalf("%s delete: %v", name, err)
			}
			if got != ref[k] {
				t.Fatalf("%s delete(%d) = %v, ref %v", name, k, got, ref[k])
			}
			delete(ref, k)
		}
	}
	want := make([]uint64, 0, len(ref))
	for k := range ref {
		want = append(want, k)
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	got := keys()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("%s: %d keys vs ref %d", name, len(got), len(want))
	}
}

func TestAVLAgainstReference(t *testing.T) {
	env := testEnv(t, 8)
	mp, err := SetupPools(env, "avl-test")
	if err != nil {
		t.Fatal(err)
	}
	tree := NewAVL(mp, env)
	ctx := NewOpCtx(env, mp)
	refCheck(t, "avl",
		func(k uint64) error { defer ctx.End(); return tree.Insert(ctx, k) },
		func(k uint64) (bool, error) { defer ctx.End(); return tree.Delete(ctx, k) },
		func() []uint64 { return tree.Keys(ctx) })
	if err := tree.Validate(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestRBTAgainstReference(t *testing.T) {
	env := testEnv(t, 8)
	mp, err := SetupPools(env, "rbt-test")
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewOpCtx(env, mp)
	tree, err := NewRBT(mp, env, ctx)
	if err != nil {
		t.Fatal(err)
	}
	refCheck(t, "rbt",
		func(k uint64) error { defer ctx.End(); return tree.Insert(ctx, k) },
		func(k uint64) (bool, error) { defer ctx.End(); return tree.Delete(ctx, k) },
		func() []uint64 { return tree.Keys(ctx) })
	if err := tree.Validate(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestBPTreeAgainstReference(t *testing.T) {
	env := testEnv(t, 8)
	mp, err := SetupPools(env, "bt-test")
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewOpCtx(env, mp)
	tree, err := NewBPTree(mp, env, ctx)
	if err != nil {
		t.Fatal(err)
	}
	refCheck(t, "bt",
		func(k uint64) error { defer ctx.End(); return tree.Insert(ctx, k) },
		func(k uint64) (bool, error) { defer ctx.End(); return tree.Delete(ctx, k) },
		func() []uint64 { return tree.Keys(ctx) })
	if err := tree.Validate(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestBPTreeSplitsDeepTree(t *testing.T) {
	// Insert enough sequential keys to force internal splits (>126*126
	// would be level-3; a few thousand gives a 2-3 level tree).
	env := testEnv(t, 4)
	mp, err := SetupPools(env, "bt-deep")
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewOpCtx(env, mp)
	tree, err := NewBPTree(mp, env, ctx)
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000
	for k := uint64(1); k <= n; k++ {
		if err := tree.Insert(ctx, k); err != nil {
			t.Fatal(err)
		}
		ctx.End()
	}
	keys := tree.Keys(ctx)
	if len(keys) != n {
		t.Fatalf("keys = %d, want %d", len(keys), n)
	}
	for i, k := range keys {
		if k != uint64(i+1) {
			t.Fatalf("keys[%d] = %d", i, k)
		}
	}
	if err := tree.Validate(ctx); err != nil {
		t.Fatal(err)
	}
	if !tree.Search(ctx, n/2) || tree.Search(ctx, n+1) {
		t.Error("search broken")
	}
}

func TestLinkedListAgainstReference(t *testing.T) {
	env := testEnv(t, 8)
	mp, err := SetupPools(env, "ll-test")
	if err != nil {
		t.Fatal(err)
	}
	list := NewLinkedList(mp, env)
	ctx := NewOpCtx(env, mp)
	refCheck(t, "ll",
		func(k uint64) error { defer ctx.End(); return list.Insert(ctx, k) },
		func(k uint64) (bool, error) { defer ctx.End(); return list.Delete(ctx, k) },
		func() []uint64 { return list.Keys(ctx) })
	if err := list.Validate(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestStringSwapPermutes(t *testing.T) {
	env := testEnv(t, 8)
	mp, err := SetupPools(env, "ss-test")
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewOpCtx(env, mp)
	ss, err := NewStringSwap(mp, env, ctx)
	if err != nil {
		t.Fatal(err)
	}
	before0 := append([]byte(nil), ss.Get(0)...)
	before9 := append([]byte(nil), ss.Get(9)...)
	ss.Swap(ctx, 0, 9)
	ctx.End()
	if string(ss.Get(0)) != string(before9) || string(ss.Get(9)) != string(before0) {
		t.Error("swap did not exchange contents")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 500; i++ {
		ss.Swap(ctx, rng.Intn(ss.total), rng.Intn(ss.total))
		ctx.End()
	}
	if err := ss.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadsRegisteredAndRunnable(t *testing.T) {
	for _, name := range []string{"avl", "rbt", "bt", "ll", "ss"} {
		w, err := workload.New(name)
		if err != nil {
			t.Fatal(err)
		}
		env := workload.NewEnv(trace.Discard{}, workload.Params{
			NumPMOs: 8, Ops: 200, InitialElems: 64, Seed: 3,
		})
		if err := w.Setup(env); err != nil {
			t.Fatalf("%s setup: %v", name, err)
		}
		if err := w.Run(env); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
	}
}

// TestDeterminism: the same seed must produce the identical event stream
// — the property that makes cross-scheme comparisons a paired experiment.
func TestDeterminism(t *testing.T) {
	run := func() trace.Counter {
		var c trace.Counter
		env := workload.NewEnv(&c, workload.Params{NumPMOs: 16, Ops: 300, InitialElems: 64, Seed: 9})
		w, _ := workload.New("avl")
		if err := w.Setup(env); err != nil {
			t.Fatal(err)
		}
		if err := w.Run(env); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("event streams diverge: %+v vs %+v", a, b)
	}
}

func TestWriteWindowDiscipline(t *testing.T) {
	// Every op must close its window: after End, pools are back to R.
	var c trace.Counter
	env := workload.NewEnv(&c, workload.Params{NumPMOs: 8, Ops: 50, InitialElems: 32, Seed: 2})
	w, _ := workload.New("avl")
	if err := w.Setup(env); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(env); err != nil {
		t.Fatal(err)
	}
	if c.SetPerms%2 != 0 {
		t.Errorf("unbalanced SETPERM count %d: a window stayed open", c.SetPerms)
	}
}

// TestPerPoolPlacement runs every micro benchmark in the per-pool
// placement ablation and validates the per-pool structures afterwards.
func TestPerPoolPlacement(t *testing.T) {
	for _, name := range []string{"avl", "rbt", "bt", "ll", "ss"} {
		w, err := workload.New(name)
		if err != nil {
			t.Fatal(err)
		}
		env := workload.NewEnv(trace.Discard{}, workload.Params{
			NumPMOs: 8, Ops: 300, InitialElems: 48, Seed: 17, Placement: "perpool",
		})
		if err := w.Setup(env); err != nil {
			t.Fatalf("%s setup: %v", name, err)
		}
		if err := w.Run(env); err != nil {
			t.Fatalf("%s run: %v", name, err)
		}
	}
	// Validate one structure family in depth.
	env := workload.NewEnv(trace.Discard{}, workload.Params{
		NumPMOs: 4, Ops: 500, InitialElems: 48, Seed: 18, Placement: "perpool",
	})
	w, _ := workload.New("avl")
	if err := w.Setup(env); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(env); err != nil {
		t.Fatal(err)
	}
	aw := w.(*avlWorkload)
	ctx := NewOpCtx(env, aw.mp)
	for i, tr := range aw.trees {
		if err := tr.Validate(ctx); err != nil {
			t.Errorf("per-pool tree %d invalid: %v", i, err)
		}
	}
}

// TestPerPoolTouchesOneDomain: a per-pool op's write window covers
// exactly one pool (plus none others) — the property the placement
// ablation is about.
func TestPerPoolTouchesOneDomain(t *testing.T) {
	var counter trace.Counter
	a := trace.NewAuditor(&counter)
	env := workload.NewEnv(a, workload.Params{
		NumPMOs: 8, Ops: 200, InitialElems: 32, Seed: 19, Placement: "perpool",
	})
	w, _ := workload.New("avl")
	if err := w.Setup(env); err != nil {
		t.Fatal(err)
	}
	if err := w.Run(env); err != nil {
		t.Fatal(err)
	}
	if a.MaxWritable != 1 {
		t.Errorf("per-pool placement peak write-enabled domains = %d, want 1", a.MaxWritable)
	}
	if got := a.Finish(); len(got) != 0 {
		t.Errorf("window discipline: %v", got)
	}
}
