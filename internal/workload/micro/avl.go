package micro

import (
	"fmt"

	"domainvirt/internal/pmo"
	"domainvirt/internal/workload"
)

// AVL node layout: key u64, left OID, right OID, height u64, then the
// 64-byte value payload.
const (
	avlKey    = 0
	avlLeft   = 8
	avlRight  = 16
	avlHeight = 24
	avlHdr    = 32
)

// AVL is a persistent AVL tree whose nodes are scattered across pools.
// The root OID lives in the home pool's root slot.
type AVL struct {
	mp       *MultiPool
	home     *pmo.Pool // holds the root pointer
	keyspace uint64
	nodeSize uint64
}

// NewAVL wraps mp as an AVL tree rooted in the home pool.
func NewAVL(mp *MultiPool, env *workload.Env) *AVL {
	return NewAVLHomed(mp, env, mp.Home())
}

// NewAVLHomed roots the tree's pointer in an explicit pool (per-pool
// placement keeps one tree per pool).
func NewAVLHomed(mp *MultiPool, env *workload.Env, home *pmo.Pool) *AVL {
	return &AVL{
		mp:       mp,
		home:     home,
		keyspace: env.P.Keyspace(),
		nodeSize: avlHdr + uint64(env.P.ValueSize),
	}
}

func (t *AVL) root() pmo.OID { return t.home.Root() }
func (t *AVL) setRoot(ctx *OpCtx, o pmo.OID) {
	ctx.EnsureWrite(t.home)
	t.home.SetRoot(o)
}

func (t *AVL) height(ctx *OpCtx, o pmo.OID) uint64 {
	if o.IsNull() {
		return 0
	}
	return ctx.R8(o, avlHeight)
}

func (t *AVL) newNode(ctx *OpCtx, key uint64) (pmo.OID, error) {
	o, err := ctx.Alloc(t.nodeSize)
	if err != nil {
		return pmo.NullOID, err
	}
	ctx.W8(o, avlKey, key)
	ctx.WOID(o, avlLeft, pmo.NullOID)
	ctx.WOID(o, avlRight, pmo.NullOID)
	ctx.W8(o, avlHeight, 1)
	ctx.WriteValue(o, avlHdr, key)
	return o, nil
}

func (t *AVL) updateHeight(ctx *OpCtx, o pmo.OID) {
	l := t.height(ctx, ctx.ROID(o, avlLeft))
	r := t.height(ctx, ctx.ROID(o, avlRight))
	h := l
	if r > h {
		h = r
	}
	h++
	if ctx.R8(o, avlHeight) != h {
		ctx.W8(o, avlHeight, h)
	}
}

func (t *AVL) balance(ctx *OpCtx, o pmo.OID) int64 {
	l := t.height(ctx, ctx.ROID(o, avlLeft))
	r := t.height(ctx, ctx.ROID(o, avlRight))
	return int64(l) - int64(r)
}

func (t *AVL) rotateRight(ctx *OpCtx, y pmo.OID) pmo.OID {
	x := ctx.ROID(y, avlLeft)
	t2 := ctx.ROID(x, avlRight)
	ctx.WOID(x, avlRight, y)
	ctx.WOID(y, avlLeft, t2)
	t.updateHeight(ctx, y)
	t.updateHeight(ctx, x)
	return x
}

func (t *AVL) rotateLeft(ctx *OpCtx, x pmo.OID) pmo.OID {
	y := ctx.ROID(x, avlRight)
	t2 := ctx.ROID(y, avlLeft)
	ctx.WOID(y, avlLeft, x)
	ctx.WOID(x, avlRight, t2)
	t.updateHeight(ctx, x)
	t.updateHeight(ctx, y)
	return y
}

func (t *AVL) rebalance(ctx *OpCtx, o pmo.OID) pmo.OID {
	t.updateHeight(ctx, o)
	bf := t.balance(ctx, o)
	switch {
	case bf > 1:
		l := ctx.ROID(o, avlLeft)
		if t.balance(ctx, l) < 0 {
			ctx.WOID(o, avlLeft, t.rotateLeft(ctx, l))
		}
		return t.rotateRight(ctx, o)
	case bf < -1:
		r := ctx.ROID(o, avlRight)
		if t.balance(ctx, r) > 0 {
			ctx.WOID(o, avlRight, t.rotateRight(ctx, r))
		}
		return t.rotateLeft(ctx, o)
	}
	return o
}

// Insert adds key (or refreshes its value in place on duplicates).
func (t *AVL) Insert(ctx *OpCtx, key uint64) error {
	old := t.root()
	nr, err := t.insertRec(ctx, old, key)
	if err != nil {
		return err
	}
	if nr != old {
		t.setRoot(ctx, nr)
	}
	return nil
}

func (t *AVL) insertRec(ctx *OpCtx, o pmo.OID, key uint64) (pmo.OID, error) {
	if o.IsNull() {
		return t.newNode(ctx, key)
	}
	k := ctx.R8(o, avlKey)
	switch {
	case key == k:
		ctx.WriteValue(o, avlHdr, key)
		return o, nil
	case key < k:
		l := ctx.ROID(o, avlLeft)
		nl, err := t.insertRec(ctx, l, key)
		if err != nil {
			return pmo.NullOID, err
		}
		if nl != l {
			ctx.WOID(o, avlLeft, nl)
		}
	default:
		r := ctx.ROID(o, avlRight)
		nr, err := t.insertRec(ctx, r, key)
		if err != nil {
			return pmo.NullOID, err
		}
		if nr != r {
			ctx.WOID(o, avlRight, nr)
		}
	}
	return t.rebalance(ctx, o), nil
}

// Delete removes key; a miss is a pure traversal.
func (t *AVL) Delete(ctx *OpCtx, key uint64) (bool, error) {
	old := t.root()
	nr, deleted, err := t.deleteRec(ctx, old, key)
	if err != nil {
		return false, err
	}
	if deleted && nr != old {
		t.setRoot(ctx, nr)
	}
	return deleted, nil
}

func (t *AVL) deleteRec(ctx *OpCtx, o pmo.OID, key uint64) (pmo.OID, bool, error) {
	if o.IsNull() {
		return o, false, nil
	}
	k := ctx.R8(o, avlKey)
	var deleted bool
	switch {
	case key < k:
		l := ctx.ROID(o, avlLeft)
		nl, del, err := t.deleteRec(ctx, l, key)
		if err != nil {
			return pmo.NullOID, false, err
		}
		deleted = del
		if nl != l {
			ctx.WOID(o, avlLeft, nl)
		}
	case key > k:
		r := ctx.ROID(o, avlRight)
		nr, del, err := t.deleteRec(ctx, r, key)
		if err != nil {
			return pmo.NullOID, false, err
		}
		deleted = del
		if nr != r {
			ctx.WOID(o, avlRight, nr)
		}
	default:
		l, r := ctx.ROID(o, avlLeft), ctx.ROID(o, avlRight)
		switch {
		case l.IsNull():
			if err := ctx.Free(o); err != nil {
				return pmo.NullOID, false, err
			}
			return r, true, nil
		case r.IsNull():
			if err := ctx.Free(o); err != nil {
				return pmo.NullOID, false, err
			}
			return l, true, nil
		default:
			// Two children: replace with the in-order successor.
			succ := r
			for {
				sl := ctx.ROID(succ, avlLeft)
				if sl.IsNull() {
					break
				}
				succ = sl
			}
			sk := ctx.R8(succ, avlKey)
			ctx.W8(o, avlKey, sk)
			val := ctx.ReadValue(succ, avlHdr)
			ctx.EnsureWrite(ctx.MP.ByOID(o))
			ctx.MP.ByOID(o).Write(o.Offset()+avlHdr, val)
			nr2, _, err := t.deleteRec(ctx, r, sk)
			if err != nil {
				return pmo.NullOID, false, err
			}
			if nr2 != r {
				ctx.WOID(o, avlRight, nr2)
			}
			deleted = true
		}
	}
	return t.rebalance(ctx, o), deleted, nil
}

// Keys returns the in-order key sequence (tests).
func (t *AVL) Keys(ctx *OpCtx) []uint64 {
	var out []uint64
	var walk func(o pmo.OID)
	walk = func(o pmo.OID) {
		if o.IsNull() {
			return
		}
		walk(ctx.ROID(o, avlLeft))
		out = append(out, ctx.R8(o, avlKey))
		walk(ctx.ROID(o, avlRight))
	}
	walk(t.root())
	return out
}

// Validate checks the AVL balance and BST invariants.
func (t *AVL) Validate(ctx *OpCtx) error {
	var check func(o pmo.OID, lo, hi uint64) (uint64, error)
	check = func(o pmo.OID, lo, hi uint64) (uint64, error) {
		if o.IsNull() {
			return 0, nil
		}
		k := ctx.R8(o, avlKey)
		if k <= lo || k >= hi {
			return 0, fmt.Errorf("avl: key %d violates BST bounds (%d,%d)", k, lo, hi)
		}
		lh, err := check(ctx.ROID(o, avlLeft), lo, k)
		if err != nil {
			return 0, err
		}
		rh, err := check(ctx.ROID(o, avlRight), k, hi)
		if err != nil {
			return 0, err
		}
		diff := int64(lh) - int64(rh)
		if diff < -1 || diff > 1 {
			return 0, fmt.Errorf("avl: node %d unbalanced (%d vs %d)", k, lh, rh)
		}
		h := lh
		if rh > h {
			h = rh
		}
		h++
		if got := ctx.R8(o, avlHeight); got != h {
			return 0, fmt.Errorf("avl: node %d stored height %d, computed %d", k, got, h)
		}
		return h, nil
	}
	_, err := check(t.root(), 0, ^uint64(0))
	return err
}

// avlWorkload is the registered "avl" benchmark.
type avlWorkload struct {
	mp    *MultiPool
	tree  *AVL   // scattered placement
	trees []*AVL // per-pool placement ablation
}

func init() {
	workload.Register("avl", func() workload.Workload { return &avlWorkload{} })
}

// Name implements workload.Workload.
func (w *avlWorkload) Name() string { return "avl" }

// Setup implements workload.Workload.
func (w *avlWorkload) Setup(env *workload.Env) error {
	mp, err := SetupPools(env, "avl")
	if err != nil {
		return err
	}
	w.mp = mp
	ctx := NewOpCtx(env, mp)
	if env.P.PerPool() {
		for _, p := range mp.Pools {
			tr := NewAVLHomed(mp, env, p)
			ctx.Pin = p
			for i := 0; i < env.P.InitialElems; i++ {
				if err := tr.Insert(ctx, randomKey(env, tr.keyspace)); err != nil {
					return err
				}
				ctx.End()
			}
			w.trees = append(w.trees, tr)
		}
		ctx.Pin = nil
		return nil
	}
	w.tree = NewAVL(mp, env)
	for i := 0; i < env.P.InitialElems; i++ {
		if err := w.tree.Insert(ctx, randomKey(env, w.tree.keyspace)); err != nil {
			return err
		}
		ctx.End()
	}
	return nil
}

// Run implements workload.Workload: 90% inserts, 10% deletes, random
// keys, a write window per operation.
func (w *avlWorkload) Run(env *workload.Env) error {
	ctx := NewOpCtx(env, w.mp)
	for i := 0; i < env.P.Ops; i++ {
		env.Space.Thread = opThread(env, i)
		env.Space.Instr(env.P.InstrPerOp)
		tree := w.tree
		if env.P.PerPool() {
			idx := env.Rng.Intn(len(w.trees))
			tree = w.trees[idx]
			ctx.Pin = w.mp.Pools[idx]
		}
		key := randomKey(env, tree.keyspace)
		if env.Rng.Intn(100) < 90 {
			if err := tree.Insert(ctx, key); err != nil {
				return err
			}
		} else {
			if _, err := tree.Delete(ctx, key); err != nil {
				return err
			}
		}
		ctx.End()
		ctx.Pin = nil
		env.OpDone(i)
	}
	return nil
}
