package whisper

import (
	"encoding/binary"

	"domainvirt/internal/pmo"
	"domainvirt/internal/workload"
)

// Per-access compute padding (instructions) calibrated so the permission
// switch rates land in Table V's range at 2.2 GHz.
const (
	padEcho    = 26000
	padYCSB    = 13500
	padTPCC    = 7200
	padCtree   = 16500
	padHashmap = 19000
	padRedis   = 15500
)

func init() {
	workload.Register("echo", func() workload.Workload { return &echoWorkload{} })
	workload.Register("ycsb", func() workload.Workload { return &ycsbWorkload{} })
	workload.Register("tpcc", func() workload.Workload { return &tpccWorkload{} })
	workload.Register("ctree", func() workload.Workload { return &ctreeWorkload{} })
	workload.Register("hashmap", func() workload.Workload { return &hashmapWorkload{} })
	workload.Register("redis", func() workload.Workload { return &redisWorkload{} })
}

// --- Echo: a persistent key-value store whose transactions append to a
// durable log before updating the in-PMO hash index.

type echoWorkload struct {
	g   *Guard
	kv  *KV
	log *Log
}

func (w *echoWorkload) Name() string { return "echo" }

func (w *echoWorkload) Setup(env *workload.Env) error {
	pool, err := setupPool(env, "echo")
	if err != nil {
		return err
	}
	w.g = NewGuard(env, pool, padEcho)
	if w.kv, err = NewKV(w.g, 4096, env.P.ValueSize); err != nil {
		return err
	}
	if w.log, err = NewLog(w.g, 1<<20); err != nil {
		return err
	}
	for i := 0; i < env.P.InitialElems; i++ {
		if err := w.kv.Put(keyFor(env)); err != nil {
			return err
		}
	}
	return nil
}

func (w *echoWorkload) Run(env *workload.Env) error {
	rec := make([]byte, 72)
	for i := 0; i < env.P.Ops; i++ {
		key := keyFor(env)
		binary.LittleEndian.PutUint64(rec, key)
		w.log.Append(rec)
		if err := w.kv.Put(key); err != nil {
			return err
		}
		env.OpDone(i)
	}
	return nil
}

// --- YCSB: 80% writes / 20% reads over the persistent hash table, per
// Table III ("YCSB like test, 80% writes").

type ycsbWorkload struct {
	g  *Guard
	kv *KV
}

func (w *ycsbWorkload) Name() string { return "ycsb" }

func (w *ycsbWorkload) Setup(env *workload.Env) error {
	pool, err := setupPool(env, "ycsb")
	if err != nil {
		return err
	}
	w.g = NewGuard(env, pool, padYCSB)
	if w.kv, err = NewKV(w.g, 4096, env.P.ValueSize); err != nil {
		return err
	}
	for i := 0; i < env.P.InitialElems; i++ {
		if err := w.kv.Put(keyFor(env)); err != nil {
			return err
		}
	}
	return nil
}

func (w *ycsbWorkload) Run(env *workload.Env) error {
	for i := 0; i < env.P.Ops; i++ {
		key := keyFor(env)
		if env.Rng.Intn(100) < 80 {
			if err := w.kv.Put(key); err != nil {
				return err
			}
		} else {
			w.kv.Get(key)
		}
		env.OpDone(i)
	}
	return nil
}

// --- C-tree: an unbalanced persistent binary search tree (crit-tree
// shaped), 100K inserts per Table III.

type ctreeWorkload struct {
	g    *Guard
	pool *pmo.Pool
	root pmo.OID
}

const (
	ctKey   = 0
	ctLeft  = 8
	ctRight = 16
	ctHdr   = 24
)

func (w *ctreeWorkload) Name() string { return "ctree" }

func (w *ctreeWorkload) Setup(env *workload.Env) error {
	pool, err := setupPool(env, "ctree")
	if err != nil {
		return err
	}
	w.pool = pool
	w.g = NewGuard(env, pool, padCtree)
	for i := 0; i < env.P.InitialElems; i++ {
		if err := w.insert(env, keyFor(env)); err != nil {
			return err
		}
	}
	return nil
}

func (w *ctreeWorkload) insert(env *workload.Env, key uint64) error {
	if w.root.IsNull() {
		n, err := w.newNode(env, key)
		if err != nil {
			return err
		}
		w.root = n
		return nil
	}
	cur := w.root
	for {
		k := w.g.Load8(cur.Offset() + ctKey)
		if k == key {
			w.g.StoreBytes(cur.Offset()+ctHdr, w.value(env, key))
			return nil
		}
		field := uint32(ctLeft)
		if key > k {
			field = ctRight
		}
		next := pmo.OID(w.g.Load8(cur.Offset() + field))
		if next.IsNull() {
			n, err := w.newNode(env, key)
			if err != nil {
				return err
			}
			w.g.Store8(cur.Offset()+field, uint64(n))
			w.g.Fence()
			return nil
		}
		cur = next
	}
}

func (w *ctreeWorkload) newNode(env *workload.Env, key uint64) (pmo.OID, error) {
	n, err := w.g.Alloc(uint64(ctHdr + env.P.ValueSize))
	if err != nil {
		return pmo.NullOID, err
	}
	w.g.Store8(n.Offset()+ctKey, key)
	w.g.StoreBytes(n.Offset()+ctHdr, w.value(env, key))
	return n, nil
}

func (w *ctreeWorkload) value(env *workload.Env, key uint64) []byte {
	buf := make([]byte, env.P.ValueSize)
	x := key
	for i := range buf {
		x = x*2862933555777941757 + 3037000493
		buf[i] = byte(x >> 32)
	}
	return buf
}

func (w *ctreeWorkload) Run(env *workload.Env) error {
	for i := 0; i < env.P.Ops; i++ {
		if err := w.insert(env, keyFor(env)); err != nil {
			return err
		}
		env.OpDone(i)
	}
	return nil
}

// --- Hashmap: 100K inserts into the persistent hash table.

type hashmapWorkload struct {
	g  *Guard
	kv *KV
}

func (w *hashmapWorkload) Name() string { return "hashmap" }

func (w *hashmapWorkload) Setup(env *workload.Env) error {
	pool, err := setupPool(env, "hashmap")
	if err != nil {
		return err
	}
	w.g = NewGuard(env, pool, padHashmap)
	if w.kv, err = NewKV(w.g, 8192, env.P.ValueSize); err != nil {
		return err
	}
	for i := 0; i < env.P.InitialElems; i++ {
		if err := w.kv.Put(keyFor(env)); err != nil {
			return err
		}
	}
	return nil
}

func (w *hashmapWorkload) Run(env *workload.Env) error {
	for i := 0; i < env.P.Ops; i++ {
		if err := w.kv.Put(keyFor(env)); err != nil {
			return err
		}
		env.OpDone(i)
	}
	return nil
}

// --- Redis: gets/puts on the hash table plus an LRU move-to-front on a
// persistent doubly-linked list, mimicking the redis lru-test of
// Table III.

type redisWorkload struct {
	g    *Guard
	kv   *KV
	head pmo.OID // LRU list head entry
}

const (
	lruPrev = 80 // past kvValue (16 + 64)
	lruNext = 88
	lruSize = 96
)

func (w *redisWorkload) Name() string { return "redis" }

func (w *redisWorkload) Setup(env *workload.Env) error {
	pool, err := setupPool(env, "redis")
	if err != nil {
		return err
	}
	w.g = NewGuard(env, pool, padRedis)
	if w.kv, err = NewKV(w.g, 8192, env.P.ValueSize); err != nil {
		return err
	}
	w.kv.Extra = 16 // LRU prev/next links
	for i := 0; i < env.P.InitialElems; i++ {
		if err := w.touch(env, keyFor(env)); err != nil {
			return err
		}
	}
	return nil
}

// touch upserts key and moves its entry to the LRU front.
func (w *redisWorkload) touch(env *workload.Env, key uint64) error {
	e := w.kv.Lookup(key)
	if e.IsNull() {
		if err := w.kv.Put(key); err != nil {
			return err
		}
		e = w.kv.Lookup(key)
		if e.IsNull() {
			return nil
		}
	}
	if w.head == e {
		return nil
	}
	// Unlink e.
	prev := pmo.OID(w.g.Load8(e.Offset() + lruPrev))
	next := pmo.OID(w.g.Load8(e.Offset() + lruNext))
	if !prev.IsNull() {
		w.g.Store8(prev.Offset()+lruNext, uint64(next))
	}
	if !next.IsNull() {
		w.g.Store8(next.Offset()+lruPrev, uint64(prev))
	}
	// Push front.
	w.g.Store8(e.Offset()+lruPrev, 0)
	w.g.Store8(e.Offset()+lruNext, uint64(w.head))
	if !w.head.IsNull() {
		w.g.Store8(w.head.Offset()+lruPrev, uint64(e))
	}
	w.head = e
	w.g.Fence()
	return nil
}

func (w *redisWorkload) Run(env *workload.Env) error {
	for i := 0; i < env.P.Ops; i++ {
		key := keyFor(env)
		if env.Rng.Intn(100) < 50 {
			w.kv.Get(key)
		} else {
			if err := w.touch(env, key); err != nil {
				return err
			}
		}
		env.OpDone(i)
	}
	return nil
}
