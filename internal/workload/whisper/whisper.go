// Package whisper implements single-PMO transactional workloads shaped
// after the WHISPER suite the paper evaluates (Table III): the Echo and
// Redis key-value stores, a YCSB-like and a TPC-C-like transaction mix,
// and the C-tree and Hashmap data-structure benchmarks. Each uses one
// large PMO, and — per the paper's methodology — a permission switch pair
// wraps every PMO access: "We insert pkey_set/WRPKRU before and after
// every PMO access to enable or disable the access."
//
// The per-access compute padding constants are calibrated so the
// permission-switch rates land in the range Table V reports
// (0.7M–1.2M switches/sec at 2.2 GHz); EXPERIMENTS.md records them.
package whisper

import (
	"encoding/binary"

	"domainvirt/internal/core"
	"domainvirt/internal/pmo"
	"domainvirt/internal/workload"
)

// minPoolSize is the floor for the WHISPER pool (the paper uses 2 GB; the
// backing frames are lazy, so the size only bounds allocation).
const minPoolSize = 64 << 20

// Guard wraps a pool with the per-access permission discipline: enable
// before each access, disable after.
type Guard struct {
	Env  *workload.Env
	Pool *pmo.Pool
	pad  uint64
}

// NewGuard sets up the per-access guard with compute padding of pad
// instructions before each access.
func NewGuard(env *workload.Env, pool *pmo.Pool, pad uint64) *Guard {
	if env.P.InstrPerAccess != 0 {
		pad = env.P.InstrPerAccess
	}
	return &Guard{Env: env, Pool: pool, pad: pad}
}

func (g *Guard) enable(p core.Perm) {
	g.Env.Space.Instr(g.pad)
	_ = g.Env.Space.SetPerm(g.Pool, p, workload.SiteAccess)
}

func (g *Guard) disable() {
	_ = g.Env.Space.SetPerm(g.Pool, core.PermNone, workload.SiteAccess)
}

// Load8 is one guarded 8-byte load.
func (g *Guard) Load8(off uint32) uint64 {
	g.enable(core.PermR)
	v := g.Pool.ReadU64(off)
	g.disable()
	return v
}

// Store8 is one guarded 8-byte store.
func (g *Guard) Store8(off uint32, v uint64) {
	g.enable(core.PermRW)
	g.Pool.WriteU64(off, v)
	g.disable()
}

// LoadBytes is one guarded block load.
func (g *Guard) LoadBytes(off uint32, dst []byte) {
	g.enable(core.PermR)
	g.Pool.Read(off, dst)
	g.disable()
}

// StoreBytes is one guarded block store.
func (g *Guard) StoreBytes(off uint32, src []byte) {
	g.enable(core.PermRW)
	g.Pool.Write(off, src)
	g.disable()
}

// Alloc allocates inside a guarded write window (allocator metadata lives
// in the pool).
func (g *Guard) Alloc(size uint64) (pmo.OID, error) {
	g.enable(core.PermRW)
	o, err := g.Pool.Alloc(size)
	g.disable()
	return o, err
}

// Fence emits a persist barrier.
func (g *Guard) Fence() { g.Env.Space.Fence() }

// setupPool creates and attaches the single WHISPER pool.
func setupPool(env *workload.Env, name string) (*pmo.Pool, error) {
	size := env.P.PoolSize
	if size < minPoolSize {
		size = minPoolSize
	}
	p, err := env.Store.Create(name, size, pmo.ModeDefault, "whisper")
	if err != nil {
		return nil, err
	}
	if _, err := env.Space.Attach(p, core.PermRW, ""); err != nil {
		return nil, err
	}
	// Default state: inaccessible; every access re-enables.
	if err := env.Space.SetPerm(p, core.PermNone, workload.SiteSetupGrant); err != nil {
		return nil, err
	}
	return p, nil
}

// KV is a persistent chained hash table inside the guarded pool, shared
// by several WHISPER workloads. Entry layout: key u64, next OID, 64-byte
// value.
type KV struct {
	g        *Guard
	buckets  pmo.OID
	nbuckets uint32
	valSize  int
	// Extra reserves additional bytes per entry past the value (e.g.
	// the Redis workload's LRU links).
	Extra uint32
}

const (
	kvKey   = 0
	kvNext  = 8
	kvValue = 16
)

// NewKV allocates the bucket array.
func NewKV(g *Guard, nbuckets uint32, valSize int) (*KV, error) {
	b, err := g.Alloc(uint64(nbuckets) * 8)
	if err != nil {
		return nil, err
	}
	return &KV{g: g, buckets: b, nbuckets: nbuckets, valSize: valSize}, nil
}

func (kv *KV) bucketOff(key uint64) uint32 {
	h := key * 0x9E3779B97F4A7C15
	return kv.buckets.Offset() + uint32(h%uint64(kv.nbuckets))*8
}

func (kv *KV) value(key uint64) []byte {
	buf := make([]byte, kv.valSize)
	x := key ^ 0xDEADBEEF
	for i := range buf {
		x = x*6364136223846793005 + 1442695040888963407
		buf[i] = byte(x >> 56)
	}
	return buf
}

// Put inserts or updates key.
func (kv *KV) Put(key uint64) error {
	bOff := kv.bucketOff(key)
	head := pmo.OID(kv.g.Load8(bOff))
	for cur := head; !cur.IsNull(); {
		k := kv.g.Load8(cur.Offset() + kvKey)
		if k == key {
			kv.g.StoreBytes(cur.Offset()+kvValue, kv.value(key))
			return nil
		}
		cur = pmo.OID(kv.g.Load8(cur.Offset() + kvNext))
	}
	e, err := kv.g.Alloc(uint64(kvValue+kv.valSize) + uint64(kv.Extra))
	if err != nil {
		return err
	}
	kv.g.Store8(e.Offset()+kvKey, key)
	kv.g.Store8(e.Offset()+kvNext, uint64(head))
	kv.g.StoreBytes(e.Offset()+kvValue, kv.value(key))
	kv.g.Store8(bOff, uint64(e))
	kv.g.Fence()
	return nil
}

// Get looks key up, returning whether it was found.
func (kv *KV) Get(key uint64) bool {
	bOff := kv.bucketOff(key)
	for cur := pmo.OID(kv.g.Load8(bOff)); !cur.IsNull(); {
		k := kv.g.Load8(cur.Offset() + kvKey)
		if k == key {
			buf := make([]byte, kv.valSize)
			kv.g.LoadBytes(cur.Offset()+kvValue, buf)
			return true
		}
		cur = pmo.OID(kv.g.Load8(cur.Offset() + kvNext))
	}
	return false
}

// Lookup returns the entry OID for key without reading the value.
func (kv *KV) Lookup(key uint64) pmo.OID {
	bOff := kv.bucketOff(key)
	for cur := pmo.OID(kv.g.Load8(bOff)); !cur.IsNull(); {
		if kv.g.Load8(cur.Offset()+kvKey) == key {
			return cur
		}
		cur = pmo.OID(kv.g.Load8(cur.Offset() + kvNext))
	}
	return pmo.NullOID
}

// Log is an append-only persistent log region in the guarded pool.
type Log struct {
	g      *Guard
	base   pmo.OID
	size   uint64
	cursor uint64
}

// NewLog reserves size bytes of log space.
func NewLog(g *Guard, size uint64) (*Log, error) {
	base, err := g.Alloc(size)
	if err != nil {
		return nil, err
	}
	return &Log{g: g, base: base, size: size}, nil
}

// Append writes one record (wrapping when full) and persists it.
func (l *Log) Append(rec []byte) {
	need := uint64(len(rec)) + 8
	if l.cursor+need > l.size {
		l.cursor = 0
	}
	off := l.base.Offset() + uint32(l.cursor)
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(rec)))
	l.g.StoreBytes(off, hdr[:])
	l.g.StoreBytes(off+8, rec)
	l.g.Fence()
	l.cursor += need
}

// keyFor draws a workload key.
func keyFor(env *workload.Env) uint64 {
	return uint64(env.Rng.Int63n(int64(env.P.Keyspace()))) + 1
}
