package whisper

import (
	"encoding/binary"

	"domainvirt/internal/pmo"
	"domainvirt/internal/workload"
)

// tpccWorkload models WHISPER's N-store-based TPC-C benchmark as a
// persistent multi-table database inside one PMO: fixed-layout WAREHOUSE,
// DISTRICT, CUSTOMER, ITEM and STOCK tables, plus an append-only ORDERS
// log. Transactions follow the TPC-C mix the paper's configuration
// implies ("80% writes"): new-order (reads items, decrements stock,
// appends the order) and payment (updates warehouse, district and
// customer balances), with a sprinkle of read-only order-status queries.
type tpccWorkload struct {
	g *Guard

	warehouses tpccTable
	districts  tpccTable
	customers  tpccTable
	items      tpccTable
	stock      tpccTable
	orders     *Log

	nWarehouse int
	nDistrict  int // per warehouse
	nCustomer  int // per district
	nItem      int
}

// tpccTable is one fixed-layout table: rows of rowSize bytes at base.
type tpccTable struct {
	base    pmo.OID
	rowSize uint32
	rows    int
}

func (t *tpccTable) rowOff(i int) uint32 {
	return t.base.Offset() + uint32(i)*t.rowSize
}

// Row field offsets (u64 slots).
const (
	wYTD = 0 // warehouse year-to-date balance

	dYTD     = 0 // district YTD
	dNextOID = 8 // district next order id

	cBalance  = 0 // customer balance
	cPayments = 8 // customer payment count

	iPrice = 0 // item price

	sQuantity = 0 // stock quantity
	sYTD      = 8 // stock YTD
)

func (w *tpccWorkload) Name() string { return "tpcc" }

func (w *tpccWorkload) allocTable(rows int, rowSize uint32) (tpccTable, error) {
	base, err := w.g.Alloc(uint64(rows) * uint64(rowSize))
	if err != nil {
		return tpccTable{}, err
	}
	return tpccTable{base: base, rowSize: rowSize, rows: rows}, nil
}

// Setup implements workload.Workload: lay out the database and seed it.
func (w *tpccWorkload) Setup(env *workload.Env) error {
	pool, err := setupPool(env, "tpcc")
	if err != nil {
		return err
	}
	w.g = NewGuard(env, pool, padTPCC)
	w.nWarehouse = 4
	w.nDistrict = 10
	w.nCustomer = 120
	w.nItem = 8192

	if w.warehouses, err = w.allocTable(w.nWarehouse, 64); err != nil {
		return err
	}
	if w.districts, err = w.allocTable(w.nWarehouse*w.nDistrict, 64); err != nil {
		return err
	}
	if w.customers, err = w.allocTable(w.nWarehouse*w.nDistrict*w.nCustomer, 64); err != nil {
		return err
	}
	if w.items, err = w.allocTable(w.nItem, 64); err != nil {
		return err
	}
	if w.stock, err = w.allocTable(w.nWarehouse*w.nItem, 64); err != nil {
		return err
	}
	if w.orders, err = NewLog(w.g, 1<<20); err != nil {
		return err
	}

	// Seed prices and stock levels (sparse: every 8th row touched keeps
	// setup fast while leaving realistic page population).
	for i := 0; i < w.nItem; i += 8 {
		w.g.Store8(w.items.rowOff(i)+iPrice, uint64(100+i%900))
	}
	for i := 0; i < w.nWarehouse*w.nItem; i += 8 {
		w.g.Store8(w.stock.rowOff(i)+sQuantity, 1000)
	}
	return nil
}

// newOrder is a TPC-C new-order transaction: 5–10 order lines, each
// reading an item's price and decrementing its stock, then the order is
// appended durably and the district's order counter bumped.
func (w *tpccWorkload) newOrder(env *workload.Env) {
	wid := env.Rng.Intn(w.nWarehouse)
	did := wid*w.nDistrict + env.Rng.Intn(w.nDistrict)
	lines := 5 + env.Rng.Intn(6)
	order := make([]byte, 16+16*lines)

	var total uint64
	for l := 0; l < lines; l++ {
		item := env.Rng.Intn(w.nItem)
		price := w.g.Load8(w.items.rowOff(item) + iPrice)
		sRow := w.stock.rowOff(wid*w.nItem + item)
		q := w.g.Load8(sRow + sQuantity)
		if q < 10 {
			q += 91 // restock, per TPC-C
		}
		w.g.Store8(sRow+sQuantity, q-1)
		w.g.Store8(sRow+sYTD, w.g.Load8(sRow+sYTD)+1)
		total += price
		binary.LittleEndian.PutUint64(order[16+16*l:], uint64(item))
		binary.LittleEndian.PutUint64(order[24+16*l:], price)
	}
	oid := w.g.Load8(w.districts.rowOff(did) + dNextOID)
	w.g.Store8(w.districts.rowOff(did)+dNextOID, oid+1)
	binary.LittleEndian.PutUint64(order[0:], oid)
	binary.LittleEndian.PutUint64(order[8:], total)
	w.orders.Append(order)
}

// payment is a TPC-C payment transaction: warehouse, district and
// customer balances move together.
func (w *tpccWorkload) payment(env *workload.Env) {
	wid := env.Rng.Intn(w.nWarehouse)
	did := wid*w.nDistrict + env.Rng.Intn(w.nDistrict)
	cid := did*w.nCustomer + env.Rng.Intn(w.nCustomer)
	amount := uint64(1 + env.Rng.Intn(5000))

	wRow := w.warehouses.rowOff(wid)
	w.g.Store8(wRow+wYTD, w.g.Load8(wRow+wYTD)+amount)
	dRow := w.districts.rowOff(did)
	w.g.Store8(dRow+dYTD, w.g.Load8(dRow+dYTD)+amount)
	cRow := w.customers.rowOff(cid)
	w.g.Store8(cRow+cBalance, w.g.Load8(cRow+cBalance)+amount)
	w.g.Store8(cRow+cPayments, w.g.Load8(cRow+cPayments)+1)
	w.g.Fence()
}

// orderStatus is a read-only customer query.
func (w *tpccWorkload) orderStatus(env *workload.Env) {
	wid := env.Rng.Intn(w.nWarehouse)
	did := wid*w.nDistrict + env.Rng.Intn(w.nDistrict)
	cid := did*w.nCustomer + env.Rng.Intn(w.nCustomer)
	w.g.Load8(w.customers.rowOff(cid) + cBalance)
	w.g.Load8(w.districts.rowOff(did) + dNextOID)
}

// Run implements workload.Workload with the paper's 80%-write mix:
// 55% new-order, 25% payment, 20% order-status.
func (w *tpccWorkload) Run(env *workload.Env) error {
	for i := 0; i < env.P.Ops; i++ {
		switch r := env.Rng.Intn(100); {
		case r < 55:
			w.newOrder(env)
		case r < 80:
			w.payment(env)
		default:
			w.orderStatus(env)
		}
		env.OpDone(i)
	}
	return nil
}
