package whisper

import (
	"testing"

	"domainvirt/internal/trace"
	"domainvirt/internal/workload"
)

func run(t *testing.T, name string, sink trace.Sink, ops int) *workload.Env {
	t.Helper()
	w, err := workload.New(name)
	if err != nil {
		t.Fatal(err)
	}
	env := workload.NewEnv(sink, workload.Params{
		NumPMOs: 1, Ops: ops, InitialElems: 256, PoolSize: 128 << 20, Seed: 5,
	})
	if err := w.Setup(env); err != nil {
		t.Fatalf("%s setup: %v", name, err)
	}
	if err := w.Run(env); err != nil {
		t.Fatalf("%s run: %v", name, err)
	}
	return env
}

func TestAllWhisperWorkloadsRun(t *testing.T) {
	for _, name := range []string{"echo", "ycsb", "tpcc", "ctree", "hashmap", "redis"} {
		var c trace.Counter
		run(t, name, &c, 300)
		if c.Attaches != 1 {
			t.Errorf("%s: %d attaches, want the single WHISPER PMO", name, c.Attaches)
		}
		if c.Loads+c.Stores == 0 {
			t.Errorf("%s: no PMO accesses", name)
		}
		if c.SetPerms == 0 {
			t.Errorf("%s: no permission switches", name)
		}
		if c.Instrs == 0 {
			t.Errorf("%s: no compute padding", name)
		}
	}
}

func TestPerAccessSwitchDiscipline(t *testing.T) {
	// The paper wraps every PMO access in an enable/disable pair, so
	// switches = 2 x accesses (within one pair per access: the access
	// count equals SetPerms/2), modulo the one setup switch.
	var c trace.Counter
	run(t, "hashmap", &c, 200)
	accesses := c.Loads + c.Stores
	pairs := (c.SetPerms - 1) / 2 // minus the setup default-deny switch
	if pairs == 0 {
		t.Fatal("no switch pairs")
	}
	// Each guarded operation is one pool-API call that may touch more
	// than 64 bytes (split into several line accesses), so accesses >=
	// pairs, and every pair guards at least one access.
	if accesses < pairs {
		t.Errorf("accesses %d < switch pairs %d", accesses, pairs)
	}
}

func TestWhisperDeterminism(t *testing.T) {
	var a, b trace.Counter
	run(t, "echo", &a, 250)
	run(t, "echo", &b, 250)
	if a != b {
		t.Fatalf("echo diverges across runs: %+v vs %+v", a, b)
	}
}

func TestKVPutGet(t *testing.T) {
	env := workload.NewEnv(trace.Discard{}, workload.Params{NumPMOs: 1, Seed: 8})
	pool, err := setupPool(env, "kv-test")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuard(env, pool, 10)
	kv, err := NewKV(g, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(1); k <= 300; k++ {
		if err := kv.Put(k); err != nil {
			t.Fatal(err)
		}
	}
	for k := uint64(1); k <= 300; k++ {
		if !kv.Get(k) {
			t.Fatalf("key %d lost", k)
		}
	}
	if kv.Get(9999) {
		t.Error("phantom key")
	}
	if kv.Lookup(42).IsNull() {
		t.Error("Lookup missed a present key")
	}
}

func TestLogWraps(t *testing.T) {
	env := workload.NewEnv(trace.Discard{}, workload.Params{NumPMOs: 1, Seed: 8})
	pool, err := setupPool(env, "log-test")
	if err != nil {
		t.Fatal(err)
	}
	g := NewGuard(env, pool, 10)
	l, err := NewLog(g, 4096)
	if err != nil {
		t.Fatal(err)
	}
	rec := make([]byte, 512)
	for i := 0; i < 30; i++ { // 30*520 > 4096: must wrap, not overflow
		l.Append(rec)
	}
	if l.cursor > l.size {
		t.Errorf("cursor %d past size %d", l.cursor, l.size)
	}
}
