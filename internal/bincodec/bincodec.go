// Package bincodec provides the little-endian append/read primitives
// shared by the snapshot binary codec (internal/sim and the leaf state
// packages it composes). Encoders append to a caller-owned buffer;
// decoders consume through a Reader that accumulates the first error and
// bounds-checks every declared count against the bytes actually present,
// so a hostile or truncated input fails with ErrShort/ErrCount instead of
// provoking a huge allocation or a slice panic.
package bincodec

import (
	"encoding/binary"
	"errors"
	"math"
)

// Decode errors. Callers typically wrap them with codec-level context.
var (
	// ErrShort marks a read past the end of the input.
	ErrShort = errors.New("bincodec: input truncated")
	// ErrCount marks a declared element count larger than the remaining
	// input could possibly hold.
	ErrCount = errors.New("bincodec: implausible element count")
)

// U64 appends v little-endian.
func U64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// U32 appends v little-endian.
func U32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }

// U16 appends v little-endian.
func U16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }

// U8 appends v.
func U8(b []byte, v uint8) []byte { return append(b, v) }

// Bool appends v as one byte.
func Bool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// Str appends a u32 length prefix and the bytes of s.
func Str(b []byte, s string) []byte {
	b = U32(b, uint32(len(s)))
	return append(b, s...)
}

// Bytes appends a u32 length prefix and p.
func Bytes(b []byte, p []byte) []byte {
	b = U32(b, uint32(len(p)))
	return append(b, p...)
}

// Reader consumes a buffer written with the append primitives. The first
// failed read latches Err; subsequent reads return zero values, so a
// decoder can run its full field sequence and check Err once at the end.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a Reader over b. The Reader aliases b.
func NewReader(b []byte) *Reader { return &Reader{b: b} }

// Err returns the first decode error, or nil.
func (r *Reader) Err() error { return r.err }

// Len returns the number of unconsumed bytes.
func (r *Reader) Len() int { return len(r.b) }

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrShort
	}
	r.b = nil
}

// Fail latches a caller-detected semantic error (e.g. a field count that
// does not match the compiled-in struct) so it surfaces through Err like
// any other decode failure.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
	r.b = nil
}

// U64 reads a little-endian uint64.
func (r *Reader) U64() uint64 {
	if len(r.b) < 8 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v
}

// U32 reads a little-endian uint32.
func (r *Reader) U32() uint32 {
	if len(r.b) < 4 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.b)
	r.b = r.b[4:]
	return v
}

// U16 reads a little-endian uint16.
func (r *Reader) U16() uint16 {
	if len(r.b) < 2 {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(r.b)
	r.b = r.b[2:]
	return v
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	if len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// Bool reads one byte; any nonzero value is true.
func (r *Reader) Bool() bool { return r.U8() != 0 }

// Int reads a value written with U32 and returns it as an int.
func (r *Reader) Int() int { return int(r.U32()) }

// Str reads a u32-length-prefixed string.
func (r *Reader) Str() string { return string(r.Take(r.Count(1))) }

// Bytes reads a u32-length-prefixed byte slice, aliasing the input.
func (r *Reader) Bytes() []byte { return r.Take(r.Count(1)) }

// Count reads a u32 element count and validates that n elements of at
// least elemSize bytes each could still be present; an implausible count
// (a length-bomb in a hostile input) latches ErrCount so the caller never
// allocates for it.
func (r *Reader) Count(elemSize int) int {
	n := r.U32()
	if r.err != nil {
		return 0
	}
	if elemSize < 1 {
		elemSize = 1
	}
	if uint64(n) > math.MaxInt32 || uint64(n)*uint64(elemSize) > uint64(len(r.b)) {
		if r.err == nil {
			r.err = ErrCount
		}
		r.b = nil
		return 0
	}
	return int(n)
}

// Take consumes and returns the next n bytes, aliasing the input.
func (r *Reader) Take(n int) []byte {
	if n < 0 || len(r.b) < n {
		r.fail()
		return nil
	}
	v := r.b[:n:n]
	r.b = r.b[n:]
	return v
}
