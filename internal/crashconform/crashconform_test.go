package crashconform

import (
	"bytes"
	"strings"
	"testing"

	"domainvirt/internal/persist"
)

// Every generated workload must be structurally valid.
func TestGenerateValid(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		w := Generate(seed)
		if err := w.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(w.Victim.Writes) == 0 {
			t.Fatalf("seed %d: victim has no writes", seed)
		}
	}
}

// The tentpole assertion: for a spread of generated workloads, recovery
// survives a crash after every recorded step under every default fault
// mode — all-pre or all-post, never a mix, never an error, always
// idempotent, always ending clean.
func TestSweepGeneratedWorkloads(t *testing.T) {
	r, err := Run(Options{Workloads: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Failed() {
		t.Fatalf("conformance violations:\n%s", r.Summary())
	}
	if r.Checks == 0 {
		t.Fatal("sweep performed no checks")
	}
	t.Logf("%d workloads, %d crash-recovery checks", r.Workloads, r.Checks)
}

// An aborted victim must always recover to the pre image.
func TestAbortedVictimSweep(t *testing.T) {
	w := Workload{
		Pools: 2,
		Setup: []TxSpec{{Writes: []WriteSpec{{Pool: 0, Slot: 0, Val: 5}, {Pool: 0, Slot: 1, Val: 6}}}},
		Victim: TxSpec{Abort: true, Writes: []WriteSpec{
			{Pool: 0, Slot: 0, Val: 50}, {Pool: 0, Slot: 1, Val: 60},
		}},
	}
	vs, _, err := RunWorkload(w, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("aborted victim violations: %v", vs)
	}
}

// Satellite: a cross-pool crash anywhere between (and around) the two
// participants' log records must recover both-or-neither — the joint
// pre/post check in checkImages enforces exactly that at every k.
func TestMultiBothOrNeither(t *testing.T) {
	w := Workload{
		Pools: 3,
		Victim: TxSpec{Multi: true, Coord: 0, Writes: []WriteSpec{
			{Pool: 1, Slot: 0, Val: 101},
			{Pool: 2, Slot: 0, Val: 202},
		}},
	}
	vs, checks, err := RunWorkload(w, Options{FaultSeeds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 0 {
		t.Fatalf("both-or-neither violated: %v", vs)
	}
	if checks == 0 {
		t.Fatal("no checks performed")
	}
}

// The harness itself must be able to see inconsistency: with fences
// ignored (broken persistence hardware), recovery cannot be expected to
// survive, and the sweep must report violations — proving the checks
// are not vacuous.
func TestDetectsUnfencedMedia(t *testing.T) {
	w := Workload{
		Pools: 2,
		Setup: []TxSpec{{Writes: []WriteSpec{{Pool: 0, Slot: 2, Val: 11}, {Pool: 0, Slot: 3, Val: 12}}}},
		Victim: TxSpec{Writes: []WriteSpec{
			{Pool: 0, Slot: 2, Val: 21}, {Pool: 0, Slot: 3, Val: 22},
		}},
	}
	vs, _, err := RunWorkload(w, Options{
		Modes:      []persist.FaultMode{persist.FaultIgnoreFences | persist.FaultReorder},
		FaultSeeds: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) == 0 {
		t.Fatal("fence-blind media produced no violations; the checker is vacuous")
	}
}

// The checked-in corpus, replayed against current (fixed) code, must be
// clean at every crash point.
func TestCorpusFixedClean(t *testing.T) {
	repros := loadRepros(t)
	for _, r := range repros {
		vs, _, err := RunWorkload(r.Fixed(), r.Options())
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		if len(vs) != 0 {
			t.Errorf("%s: fixed code still fails: %v", r.Name, vs)
		}
	}
}

// The caught half of caught-then-fixed: each repro, replayed with its
// documented bug re-introduced via the Unsafe* knobs, must fail — both
// at the trace level (the referee sees the missing fence
// deterministically) and at the image level (some reordering seed
// produces an inconsistent recovery).
func TestCorpusBugCaught(t *testing.T) {
	repros := loadRepros(t)
	for _, r := range repros {
		vs, _, err := RunWorkload(r.Buggy(), r.Options())
		if err != nil {
			t.Fatalf("%s: %v", r.Name, err)
		}
		var referee, image bool
		for _, v := range vs {
			if v.Referee {
				referee = true
			} else {
				image = true
			}
		}
		if !referee {
			t.Errorf("%s: referee did not flag the missing fence", r.Name)
		}
		if !image {
			t.Errorf("%s: no crash image produced an inconsistent recovery", r.Name)
		}
	}
}

func loadRepros(t *testing.T) []Repro {
	t.Helper()
	repros, err := LoadCorpus("testdata/repros")
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) != 3 {
		t.Fatalf("corpus has %d repros, want 3", len(repros))
	}
	return repros
}

// ddmin shrinks a failing crash schedule to a smaller one that still
// fails.
func TestMinimizeSchedule(t *testing.T) {
	var repro Repro
	for _, r := range loadRepros(t) {
		if r.Bug == BugDecisionNoFence {
			repro = r
		}
	}
	w := repro.Buggy()
	vs, _, err := RunWorkload(w, repro.Options())
	if err != nil {
		t.Fatal(err)
	}
	var crash *Violation
	for i := range vs {
		if !vs[i].Referee {
			crash = &vs[i]
			break
		}
	}
	if crash == nil {
		t.Fatal("no image-level violation to minimize")
	}
	min, err := MinimizeSchedule(w, *crash, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(min) == 0 || len(min) > crash.K {
		t.Fatalf("minimized schedule has %d steps (original prefix %d)", len(min), crash.K)
	}
	t.Logf("schedule shrunk %d -> %d steps", crash.K, len(min))
}

// A failing workload is persisted as a replayable .crash repro when
// CorpusDir is set, recording the mode of the first image-level
// violation.
func TestSaveViolationRepro(t *testing.T) {
	dir := t.TempDir()
	w := Generate(7)
	vs := []Violation{
		{Seed: w.Seed, Referee: true, Detail: "missing fence"},
		{Seed: w.Seed, K: 3, Mode: persist.FaultReorder | persist.FaultTorn, Detail: "mixed"},
	}
	opt := Options{CorpusDir: dir, FaultSeeds: 2}
	if err := saveViolationRepro(opt, w, vs); err != nil {
		t.Fatal(err)
	}
	repros, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(repros) != 1 {
		t.Fatalf("corpus has %d repros, want 1", len(repros))
	}
	r := repros[0]
	if r.Mode != persist.FaultReorder|persist.FaultTorn || r.Seeds != 2 {
		t.Errorf("recorded injection = mode %s seeds %d", r.Mode, r.Seeds)
	}
	if r.Workload.Victim.String() != w.Victim.String() {
		t.Errorf("victim mismatch: %q != %q", r.Workload.Victim, w.Victim)
	}
}

func TestReproRoundTrip(t *testing.T) {
	r := Repro{
		Bug:   BugDecisionNoFence,
		Mode:  persist.FaultReorder | persist.FaultTorn,
		Seeds: 4,
		Workload: Workload{
			Pools: 3,
			Setup: []TxSpec{
				{Multi: true, Coord: 1, Writes: []WriteSpec{{Pool: 0, Slot: 0, Val: 9}}},
				{Writes: []WriteSpec{{Pool: 2, Slot: 7, Val: 123}}},
			},
			Victim: TxSpec{Multi: true, Abort: true, Coord: 0, Writes: []WriteSpec{
				{Pool: 1, Slot: 1, Val: 7}, {Pool: 2, Slot: 2, Val: 8},
			}},
		},
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadRepro(&buf)
	if err != nil {
		t.Fatalf("%v (text: %q)", err, buf.String())
	}
	back.Name = r.Name
	if back.Bug != r.Bug || back.Mode != r.Mode || back.Seeds != r.Seeds ||
		back.Workload.Pools != r.Workload.Pools ||
		len(back.Workload.Setup) != len(r.Workload.Setup) {
		t.Fatalf("round trip mismatch: %+v != %+v", back, r)
	}
	if back.Workload.Victim.String() != r.Workload.Victim.String() {
		t.Fatalf("victim mismatch: %q != %q", back.Workload.Victim, r.Workload.Victim)
	}
}

func TestReadReproRejectsBadInput(t *testing.T) {
	cases := []string{
		"",
		"crash repro v1\n",
		"crash repro v1\npools 2 bug nope mode reorder seeds 3\nvictim single 0 commit 0:0=1\n",
		"crash repro v1\npools 2 bug none mode bogus seeds 3\nvictim single 0 commit 0:0=1\n",
		"crash repro v1\npools 2 bug none mode reorder seeds 3\n",                                 // no victim
		"crash repro v1\npools 2 bug none mode reorder seeds 3\nvictim single 0 commit 9:0=1\n",  // pool range
		"crash repro v1\npools 2 bug none mode reorder seeds 3\nvictim multi 0 commit 0:0=1\n",   // coord written
		"crash repro v1\npools 2 bug none mode reorder seeds 3\nvictim single 0 commit 0:0=1,1:0=2\n", // spans pools
	}
	for i, c := range cases {
		if _, err := ReadRepro(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted: %q", i, c)
		}
	}
}
