package crashconform

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"domainvirt/internal/persist"
)

// The .crash corpus format is a line-oriented text encoding of a
// Workload plus the fault config that caught a recovery bug —
// human-readable so a checked-in repro doubles as documentation of the
// bug it pins down (mirroring the .prog conformance corpus):
//
//	crash repro v1
//	pools 2 bug decision-nofence mode reorder seeds 5
//	setup multi 1 commit 0:0=9
//	victim multi 0 commit 1:1=7
//
// Lines starting with '#' are comments. The bug field names the seeded
// recovery bug the repro demonstrates: replayed with the bug enabled
// (Buggy) the sweep must find a violation — the "caught" half — and
// replayed against current code (Fixed) it must be clean.

const corpusHeader = "crash repro v1"

// Repro is one checked-in crash-conformance reproduction.
type Repro struct {
	// Name is the corpus file name (set by LoadCorpus).
	Name string
	// Bug names the seeded recovery bug this repro pins.
	Bug string
	// Mode and Seeds bound the injection sweep that catches Bug.
	Mode  persist.FaultMode
	Seeds int
	// Workload is the scenario (Workload.Bug is left empty; use Buggy
	// or Fixed to select the replay flavor).
	Workload Workload
}

// Fixed returns the workload against current, fixed code.
func (r Repro) Fixed() Workload { w := r.Workload; w.Bug = ""; return w }

// Buggy returns the workload with the documented bug re-introduced.
func (r Repro) Buggy() Workload { w := r.Workload; w.Bug = r.Bug; return w }

// Options returns sweep options matching the repro's recorded injection.
func (r Repro) Options() Options {
	return Options{Modes: []persist.FaultMode{r.Mode}, FaultSeeds: r.Seeds}
}

// WriteTo serializes r in the corpus text format.
func (r Repro) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", corpusHeader)
	fmt.Fprintf(&b, "pools %d bug %s mode %s seeds %d\n",
		r.Workload.Pools, bugOrNone(r.Bug), r.Mode, r.Seeds)
	for _, t := range r.Workload.Setup {
		fmt.Fprintf(&b, "setup %s\n", t)
	}
	fmt.Fprintf(&b, "victim %s\n", r.Workload.Victim)
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func bugOrNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// ReadRepro parses the corpus text format.
func ReadRepro(rd io.Reader) (Repro, error) {
	var r Repro
	sc := bufio.NewScanner(rd)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}

	s, ok := next()
	if !ok || s != corpusHeader {
		return r, fmt.Errorf("crashconform: missing %q header", corpusHeader)
	}
	s, ok = next()
	if !ok {
		return r, fmt.Errorf("crashconform: missing repro header line")
	}
	var bug, mode string
	if _, err := fmt.Sscanf(s, "pools %d bug %s mode %s seeds %d",
		&r.Workload.Pools, &bug, &mode, &r.Seeds); err != nil {
		return r, fmt.Errorf("crashconform: line %d: %v", line, err)
	}
	if bug != "none" {
		r.Bug = bug
	}
	if !ValidBug(r.Bug) {
		return r, fmt.Errorf("crashconform: line %d: unknown bug %q", line, bug)
	}
	m, err := persist.ParseFaultMode(mode)
	if err != nil {
		return r, fmt.Errorf("crashconform: line %d: %v", line, err)
	}
	r.Mode = m

	sawVictim := false
	for {
		s, ok := next()
		if !ok {
			break
		}
		kind, rest, found := strings.Cut(s, " ")
		if !found {
			return r, fmt.Errorf("crashconform: line %d: bad line %q", line, s)
		}
		t, err := parseTxSpec(rest)
		if err != nil {
			return r, fmt.Errorf("crashconform: line %d: %v", line, err)
		}
		switch kind {
		case "setup":
			if sawVictim {
				return r, fmt.Errorf("crashconform: line %d: setup after victim", line)
			}
			r.Workload.Setup = append(r.Workload.Setup, t)
		case "victim":
			if sawVictim {
				return r, fmt.Errorf("crashconform: line %d: duplicate victim", line)
			}
			r.Workload.Victim = t
			sawVictim = true
		default:
			return r, fmt.Errorf("crashconform: line %d: unknown line kind %q", line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return r, err
	}
	if !sawVictim {
		return r, fmt.Errorf("crashconform: repro has no victim")
	}
	return r, r.Workload.Validate()
}

// SaveRepro writes r into dir (created if needed) as name.crash and
// returns the path.
func SaveRepro(dir, name string, r Repro) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	path := filepath.Join(dir, name+".crash")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if _, err := r.WriteTo(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// LoadCorpus reads every *.crash file in dir, sorted by name; a missing
// directory yields an empty corpus.
func LoadCorpus(dir string) ([]Repro, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.crash"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]Repro, 0, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		r, err := ReadRepro(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		r.Name = filepath.Base(path)
		out = append(out, r)
	}
	return out, nil
}
