// Package crashconform is the kill-at-every-step crash-recovery
// conformance harness. It generates durable-transaction workloads over
// PMO pools (single-pool txn.Tx and cross-pool txn.MultiTx), records the
// victim transaction's durable-media traffic with a persist.Journal,
// then simulates a crash after every recorded step under several fault
// models (torn 8-byte stores, reordered flushes across fence
// boundaries, dropped write-back tails). Each reconstructed crash image
// is loaded into a replica store, recovered with txn.RecoverStore, and
// checked against the prefix-consistency contract:
//
//	after recovery, every slot the victim wrote holds either its
//	pre-transaction or its post-transaction value, jointly across all
//	pools of the transaction — never a mix; recovery never errors,
//	recovering twice is idempotent, and every log ends clean.
//
// A second, trace-level referee extends the persist.Checker: the journal
// is fed into the checker and PMTest-style write-ahead-logging rules are
// asserted over the recorded epochs (staged entries strictly before the
// commit record; a participant's count and coordinator pointer strictly
// before its prepared mark; the coordinator's zeroed count strictly
// before its committed mark). The referee catches missing fences
// deterministically, without needing a lucky reordering seed.
//
// Failing crash schedules are ddmin-shrunk (conformance.MinimizeSlice)
// and can be saved as human-readable .crash repro files; the checked-in
// corpus under testdata/repros pins recovery bugs this harness caught
// (see the Unsafe* knobs in internal/txn) in their fixed state.
package crashconform

import (
	"fmt"
	"math/rand"
	"strings"
)

// Pool geometry shared by the harness and its repro corpus. Slots sit
// past the pool header (one page) and the default 64 KiB redo-log area.
const (
	// PoolSize is every generated pool's size.
	PoolSize = 80 << 10
	// NumSlots is how many u64 data slots each pool exposes.
	NumSlots = 8
	slotBase = 72 << 10
)

// SlotOff returns the pool offset of data slot i.
func SlotOff(i int) uint32 { return uint32(slotBase + 8*i) }

// Seeded recovery bugs a workload can re-introduce via the Unsafe*
// knobs in internal/txn, for caught-then-fixed demonstrations.
const (
	// BugStageNoFence omits the fence between staged log entries and the
	// commit record of a single-pool transaction.
	BugStageNoFence = "stage-nofence"
	// BugPrepareNoFence omits the fence between a participant's
	// count/coordinator-pointer stores and its prepared mark.
	BugPrepareNoFence = "prepare-nofence"
	// BugDecisionNoFence omits the fence between the coordinator's
	// zeroed count and its committed mark.
	BugDecisionNoFence = "decision-nofence"
)

// ValidBug reports whether s names a known seeded bug ("" for none).
func ValidBug(s string) bool {
	switch s {
	case "", BugStageNoFence, BugPrepareNoFence, BugDecisionNoFence:
		return true
	}
	return false
}

// WriteSpec is one durable u64 write: Val into slot Slot of pool Pool
// (a pool index, not a pool ID).
type WriteSpec struct {
	Pool int
	Slot int
	Val  uint64
}

// TxSpec is one transaction of a workload. Single-pool specs write one
// pool via txn.Tx; Multi specs run two-phase commit via txn.MultiTx
// with pool index Coord as coordinator (the coordinator is never
// written). Abort discards instead of committing.
type TxSpec struct {
	Multi  bool
	Abort  bool
	Coord  int
	Writes []WriteSpec
}

// Workload is one crash-conformance scenario: Setup transactions run
// before the journal is armed (they establish pre-state, including
// stale log contents from earlier pool roles), then the Victim runs
// under the journal and is crashed at every step. Bug optionally
// re-introduces a seeded recovery bug in the victim.
type Workload struct {
	Seed   int64
	Pools  int
	Setup  []TxSpec
	Victim TxSpec
	Bug    string
}

// Generate derives a deterministic workload from seed: 2–4 pools, up to
// three setup transactions, one victim. Setup transactions deliberately
// reuse pools in different roles (a future coordinator may first be a
// single-pool writer or a 2PC participant) so stale log bytes from the
// earlier role are present when the victim crashes — the exact
// precondition under which the decision-record ordering bug corrupted
// recovery.
func Generate(seed int64) Workload {
	rng := rand.New(rand.NewSource(seed))
	w := Workload{Seed: seed, Pools: 2 + rng.Intn(3)}
	nSetup := rng.Intn(4)
	for i := 0; i < nSetup; i++ {
		w.Setup = append(w.Setup, genTx(rng, w.Pools, true))
	}
	w.Victim = genTx(rng, w.Pools, false)
	return w
}

func genTx(rng *rand.Rand, pools int, setup bool) TxSpec {
	var t TxSpec
	n := 1 + rng.Intn(4)
	if rng.Intn(2) == 0 {
		t.Multi = true
		t.Coord = rng.Intn(pools)
		for i := 0; i < n; i++ {
			p := rng.Intn(pools)
			if p == t.Coord {
				p = (p + 1) % pools
			}
			t.Writes = append(t.Writes, WriteSpec{Pool: p, Slot: rng.Intn(NumSlots), Val: genVal(rng)})
		}
	} else {
		p := rng.Intn(pools)
		for i := 0; i < n; i++ {
			t.Writes = append(t.Writes, WriteSpec{Pool: p, Slot: rng.Intn(NumSlots), Val: genVal(rng)})
		}
	}
	if setup {
		t.Abort = rng.Intn(10) == 0
	} else {
		t.Abort = rng.Intn(8) == 0
	}
	return t
}

// genVal returns a nonzero, human-recognizable value.
func genVal(rng *rand.Rand) uint64 { return uint64(rng.Intn(1_000_000)) + 1 }

// String renders t in the repro text form: "single|multi <pool> commit|
// abort p:s=v,...".
func (t TxSpec) String() string {
	var b strings.Builder
	kind, anchor := "single", 0
	if t.Multi {
		kind, anchor = "multi", t.Coord
	} else if len(t.Writes) > 0 {
		anchor = t.Writes[0].Pool
	}
	verb := "commit"
	if t.Abort {
		verb = "abort"
	}
	fmt.Fprintf(&b, "%s %d %s ", kind, anchor, verb)
	for i, wr := range t.Writes {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d=%d", wr.Pool, wr.Slot, wr.Val)
	}
	return b.String()
}

// parseTxSpec parses the String form.
func parseTxSpec(s string) (TxSpec, error) {
	var t TxSpec
	f := strings.Fields(s)
	if len(f) != 4 {
		return t, fmt.Errorf("crashconform: bad tx spec %q", s)
	}
	switch f[0] {
	case "single":
	case "multi":
		t.Multi = true
	default:
		return t, fmt.Errorf("crashconform: bad tx kind %q", f[0])
	}
	var anchor int
	if _, err := fmt.Sscanf(f[1], "%d", &anchor); err != nil {
		return t, fmt.Errorf("crashconform: bad tx pool %q", f[1])
	}
	if t.Multi {
		t.Coord = anchor
	}
	switch f[2] {
	case "commit":
	case "abort":
		t.Abort = true
	default:
		return t, fmt.Errorf("crashconform: bad tx verb %q", f[2])
	}
	for _, part := range strings.Split(f[3], ",") {
		var wr WriteSpec
		if _, err := fmt.Sscanf(part, "%d:%d=%d", &wr.Pool, &wr.Slot, &wr.Val); err != nil {
			return t, fmt.Errorf("crashconform: bad write %q", part)
		}
		t.Writes = append(t.Writes, wr)
	}
	if !t.Multi && len(t.Writes) > 0 {
		anchor := t.Writes[0].Pool
		for _, wr := range t.Writes {
			if wr.Pool != anchor {
				return t, fmt.Errorf("crashconform: single tx spans pools in %q", s)
			}
		}
	}
	return t, nil
}

// Validate checks pool/slot indexes and structural rules.
func (w Workload) Validate() error {
	if w.Pools < 1 || w.Pools > 16 {
		return fmt.Errorf("crashconform: %d pools out of range", w.Pools)
	}
	if !ValidBug(w.Bug) {
		return fmt.Errorf("crashconform: unknown bug %q", w.Bug)
	}
	check := func(t TxSpec) error {
		if len(t.Writes) == 0 {
			return fmt.Errorf("crashconform: tx with no writes")
		}
		if t.Multi && (t.Coord < 0 || t.Coord >= w.Pools) {
			return fmt.Errorf("crashconform: coordinator %d out of range", t.Coord)
		}
		for _, wr := range t.Writes {
			if wr.Pool < 0 || wr.Pool >= w.Pools {
				return fmt.Errorf("crashconform: write pool %d out of range", wr.Pool)
			}
			if wr.Slot < 0 || wr.Slot >= NumSlots {
				return fmt.Errorf("crashconform: write slot %d out of range", wr.Slot)
			}
			if t.Multi && wr.Pool == t.Coord {
				return fmt.Errorf("crashconform: write targets coordinator pool %d", wr.Pool)
			}
		}
		return nil
	}
	for _, t := range w.Setup {
		if err := check(t); err != nil {
			return err
		}
	}
	return check(w.Victim)
}
