package crashconform

import (
	"encoding/binary"
	"fmt"
	"strings"

	"domainvirt/internal/conformance"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/persist"
	"domainvirt/internal/pmo"
	"domainvirt/internal/txn"
)

// Options configures a conformance run.
type Options struct {
	// Workloads is how many generated workloads to sweep (default 100).
	Workloads int
	// Seed is the first workload seed; workload i uses Seed+i.
	Seed int64
	// Modes are the fault models applied at every crash point (default
	// DefaultModes).
	Modes []persist.FaultMode
	// FaultSeeds is how many injection seeds to try per (point, mode);
	// deterministic modes run once (default 3).
	FaultSeeds int
	// ShrinkBudget caps candidate replays per schedule minimization
	// (default 400).
	ShrinkBudget int
	// CorpusDir, when set, receives a .crash repro file for every
	// workload that produced a violation, replayable with RunWorkload
	// (mirroring the conformance .prog corpus).
	CorpusDir string
}

func (o Options) withDefaults() Options {
	if o.Workloads <= 0 {
		o.Workloads = 100
	}
	if len(o.Modes) == 0 {
		o.Modes = DefaultModes()
	}
	if o.FaultSeeds <= 0 {
		o.FaultSeeds = 3
	}
	if o.ShrinkBudget <= 0 {
		o.ShrinkBudget = 400
	}
	return o
}

// DefaultModes are the fault models recovery is required to survive:
// strict persistence, dropped write-back tails, reordered flushes, and
// reordered flushes with torn 8-byte stores. FaultIgnoreFences is
// deliberately absent — recovery cannot survive fence-blind hardware,
// and the harness uses that mode only to prove its own referee detects
// inconsistency.
func DefaultModes() []persist.FaultMode {
	return []persist.FaultMode{
		persist.FaultNone,
		persist.FaultDropTail,
		persist.FaultReorder,
		persist.FaultReorder | persist.FaultTorn,
	}
}

// Violation is one conformance failure.
type Violation struct {
	// Seed identifies the workload (Workload.Seed).
	Seed int64
	// Bug names the seeded bug active during the run, if any.
	Bug string
	// Referee marks a trace-level write-ahead-logging ordering violation
	// (K/Mode/FaultSeed are meaningless for those).
	Referee bool
	// K is the crash point: the number of journal steps executed.
	K int
	// Mode and FaultSeed select the injection that produced the image.
	Mode      persist.FaultMode
	FaultSeed int64
	// Detail describes the failed check.
	Detail string
}

func (v Violation) String() string {
	tag := ""
	if v.Bug != "" {
		tag = " bug=" + v.Bug
	}
	if v.Referee {
		return fmt.Sprintf("workload %d%s: referee: %s", v.Seed, tag, v.Detail)
	}
	return fmt.Sprintf("workload %d%s: crash k=%d mode=%s seed=%d: %s",
		v.Seed, tag, v.K, v.Mode, v.FaultSeed, v.Detail)
}

// Report aggregates a sweep.
type Report struct {
	Workloads  int
	Checks     int // crash-image recover+verify cycles
	Violations []Violation
}

// Failed reports whether any check failed.
func (r *Report) Failed() bool { return len(r.Violations) > 0 }

// Summary renders a human-readable digest.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "crashconform: %d workloads, %d crash-recovery checks, %d violations\n",
		r.Workloads, r.Checks, len(r.Violations))
	for i, v := range r.Violations {
		if i == 10 {
			fmt.Fprintf(&b, "  ... %d more\n", len(r.Violations)-10)
			break
		}
		fmt.Fprintf(&b, "  %s\n", v)
	}
	return b.String()
}

// Run sweeps generated workloads: every crash point of every workload's
// victim transaction under every configured fault mode, plus the
// trace-level referee.
func Run(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	r := &Report{}
	for i := 0; i < opt.Workloads; i++ {
		w := Generate(opt.Seed + int64(i))
		vs, checks, err := RunWorkload(w, opt)
		if err != nil {
			return r, fmt.Errorf("workload seed %d: %w", w.Seed, err)
		}
		r.Workloads++
		r.Checks += checks
		r.Violations = append(r.Violations, vs...)
		if len(vs) > 0 && opt.CorpusDir != "" {
			if err := saveViolationRepro(opt, w, vs); err != nil {
				return r, err
			}
		}
		if len(r.Violations) >= 20 {
			break
		}
	}
	return r, nil
}

// saveViolationRepro persists a failing workload as a .crash file. The
// recorded mode is taken from the first image-level violation so a
// replay reproduces the same injection; a referee-only failure records
// FaultReorder, the mode most likely to surface the ordering bug the
// referee saw in the trace.
func saveViolationRepro(opt Options, w Workload, vs []Violation) error {
	mode := persist.FaultReorder
	for _, v := range vs {
		if !v.Referee {
			mode = v.Mode
			break
		}
	}
	_, err := SaveRepro(opt.CorpusDir, fmt.Sprintf("sweep-seed%d", w.Seed), Repro{
		Bug:      w.Bug,
		Mode:     mode,
		Seeds:    opt.FaultSeeds,
		Workload: w,
	})
	return err
}

// maxViolationsPerWorkload stops a workload's sweep once it has clearly
// failed; remaining crash points add noise, not information.
const maxViolationsPerWorkload = 4

// RunWorkload checks one workload: it builds the store, executes Setup,
// records the Victim under a persist.Journal, runs the trace-level
// referee, then for every crash point k and every (mode, seed) loads the
// reconstructed image into a replica store and verifies the recovery
// contract. It returns the violations and the number of crash-image
// checks performed.
func RunWorkload(w Workload, opt Options) ([]Violation, int, error) {
	opt = opt.withDefaults()
	if err := w.Validate(); err != nil {
		return nil, 0, err
	}
	_, pools, err := buildStore(w)
	if err != nil {
		return nil, 0, err
	}
	pre := readSlots(pools)
	post := expectedPost(pre, w.Victim)

	j := persist.NewJournal()
	for _, p := range pools {
		j.Arm(p)
	}
	verr := execTx(pools, w.Victim, w.Bug)
	j.Disarm()
	if verr != nil {
		return nil, 0, fmt.Errorf("victim: %w", verr)
	}

	var out []Violation
	for _, d := range walCheck(j, pools, w.Victim) {
		out = append(out, Violation{Seed: w.Seed, Bug: w.Bug, Referee: true, Detail: d})
	}

	replica, rpools, err := buildReplica(w)
	if err != nil {
		return nil, 0, err
	}
	checks := 0
	for k := 0; k <= j.Len(); k++ {
		for _, mode := range opt.Modes {
			seeds := opt.FaultSeeds
			if mode == persist.FaultNone {
				seeds = 1 // seed-independent: the strict model
			}
			for s := 0; s < seeds; s++ {
				fc := persist.FaultConfig{Mode: mode, Seed: int64(s)}
				imgs := j.CrashImages(k, fc)
				checks++
				if d := checkImages(replica, rpools, imgs, pre, post); d != "" {
					out = append(out, Violation{
						Seed: w.Seed, Bug: w.Bug, K: k,
						Mode: mode, FaultSeed: int64(s), Detail: d,
					})
					if len(out) >= maxViolationsPerWorkload {
						return out, checks, nil
					}
				}
			}
		}
	}
	return out, checks, nil
}

// checkImages loads one crash image set into the replica store, runs
// recovery, and verifies the full contract: recovery succeeds, a second
// recovery is an idempotent no-op, every log ends clean, and the data
// slots jointly hold either the pre- or the post-transaction values.
// Returns "" on success or a description of the first failure.
func checkImages(store *pmo.Store, pools []*pmo.Pool, imgs map[uint32][]byte, pre, post [][]uint64) string {
	for _, p := range pools {
		img, ok := imgs[p.ID()]
		if !ok {
			return fmt.Sprintf("no crash image for pool %q", p.Name())
		}
		if err := p.LoadImage(img); err != nil {
			return fmt.Sprintf("load image: %v", err)
		}
	}
	if _, err := txn.RecoverStore(store); err != nil {
		return fmt.Sprintf("recovery error: %v", err)
	}
	if redone2, err := txn.RecoverStore(store); err != nil {
		return fmt.Sprintf("second recovery error: %v", err)
	} else if redone2 != 0 {
		return fmt.Sprintf("recovery not idempotent: second pass redid %d logs", redone2)
	}
	for _, p := range pools {
		if st := txn.LogStateOf(p); st != txn.StateClean {
			return fmt.Sprintf("pool %q log state %d after recovery", p.Name(), st)
		}
	}
	got := readSlots(pools)
	if !slotsEqual(got, pre) && !slotsEqual(got, post) {
		return fmt.Sprintf("mixed state after recovery: slots %v, want pre %v or post %v", got, pre, post)
	}
	return ""
}

// buildStore creates the workload's pools and executes its setup
// transactions (pre-journal, bug-free).
func buildStore(w Workload) (*pmo.Store, []*pmo.Pool, error) {
	s := pmo.NewStore()
	pools := make([]*pmo.Pool, w.Pools)
	for i := range pools {
		p, err := s.Create(fmt.Sprintf("p%d", i), PoolSize, pmo.ModeDefault, "crashconform")
		if err != nil {
			return nil, nil, err
		}
		pools[i] = p
	}
	for i, t := range w.Setup {
		if err := execTx(pools, t, ""); err != nil {
			return nil, nil, fmt.Errorf("setup %d: %w", i, err)
		}
	}
	return s, pools, nil
}

// buildReplica creates a bare store with the same pool layout (and,
// because creation order matches, the same pool IDs) to receive crash
// images; setup state arrives via LoadImage, not re-execution.
func buildReplica(w Workload) (*pmo.Store, []*pmo.Pool, error) {
	s := pmo.NewStore()
	pools := make([]*pmo.Pool, w.Pools)
	for i := range pools {
		p, err := s.Create(fmt.Sprintf("p%d", i), PoolSize, pmo.ModeDefault, "crashconform")
		if err != nil {
			return nil, nil, err
		}
		pools[i] = p
	}
	return s, pools, nil
}

// execTx runs one TxSpec. bug selects which seeded recovery bug (if
// any) to re-introduce in the transaction's commit protocol.
func execTx(pools []*pmo.Pool, t TxSpec, bug string) error {
	if t.Multi {
		m, err := txn.BeginMulti(pools[t.Coord])
		if err != nil {
			return err
		}
		m.UnsafeNoPrepareFence = bug == BugPrepareNoFence
		m.UnsafeNoDecisionFence = bug == BugDecisionNoFence
		for _, wr := range t.Writes {
			if err := m.WriteU64(pools[wr.Pool], SlotOff(wr.Slot), wr.Val); err != nil {
				return err
			}
		}
		if t.Abort {
			m.Abort()
			return nil
		}
		return m.Commit()
	}
	tx, err := txn.Begin(pools[t.Writes[0].Pool])
	if err != nil {
		return err
	}
	tx.UnsafeOmitStageFence = bug == BugStageNoFence
	for _, wr := range t.Writes {
		if err := tx.WriteU64(SlotOff(wr.Slot), wr.Val); err != nil {
			return err
		}
	}
	if t.Abort {
		tx.Abort()
		return nil
	}
	return tx.Commit()
}

// readSlots snapshots every pool's data slots.
func readSlots(pools []*pmo.Pool) [][]uint64 {
	out := make([][]uint64, len(pools))
	for i, p := range pools {
		vals := make([]uint64, NumSlots)
		for s := range vals {
			vals[s] = p.ReadU64(SlotOff(s))
		}
		out[i] = vals
	}
	return out
}

// expectedPost derives the committed image: last-writer-wins over pre
// (identical to pre for an aborted victim).
func expectedPost(pre [][]uint64, victim TxSpec) [][]uint64 {
	post := make([][]uint64, len(pre))
	for i, vals := range pre {
		post[i] = append([]uint64(nil), vals...)
	}
	if victim.Abort {
		return post
	}
	for _, wr := range victim.Writes {
		post[wr.Pool][wr.Slot] = wr.Val
	}
	return post
}

func slotsEqual(a, b [][]uint64) bool {
	for i := range a {
		for s := range a[i] {
			if a[i][s] != b[i][s] {
				return false
			}
		}
	}
	return true
}

// walCheck is the trace-level referee: it feeds the journal into a
// persist.Checker and asserts the write-ahead-logging epoch rules over
// the victim's recorded commit/prepare/decision records —
//
//   - single-pool commit record: every staged log entry persisted in a
//     strictly earlier epoch than the committed mark;
//   - participant prepared mark: the entry count, coordinator pointer,
//     and staged entries all strictly earlier than the mark;
//   - coordinator decision: the zeroed count strictly earlier than the
//     committed mark.
//
// These catch a missing fence deterministically, where the image-level
// sweep needs a reordering seed that happens to drop the right store.
func walCheck(j *persist.Journal, pools []*pmo.Pool, victim TxSpec) []string {
	steps := j.Steps()
	byID := make(map[uint32]*pmo.Pool, len(pools))
	for _, p := range pools {
		byID[p.ID()] = p
	}
	var coordID uint32
	if victim.Multi {
		coordID = pools[victim.Coord].ID()
	}

	type record struct {
		pool *pmo.Pool
		idx  int
		kind string
	}
	var recs []record
	for i, s := range steps {
		if s.Fence || len(s.Data) != 8 {
			continue
		}
		p, ok := byID[s.Pool]
		if !ok {
			continue
		}
		logOff, logSize := p.LogArea()
		if logSize == 0 || s.Off != logOff {
			continue // not the log-state word
		}
		switch v := binary.LittleEndian.Uint64(s.Data); {
		case v == txn.StatePrepared:
			recs = append(recs, record{p, i, "prepared"})
		case v == txn.StateCommitted && victim.Multi && s.Pool == coordID:
			recs = append(recs, record{p, i, "decision"})
		case v == txn.StateCommitted:
			recs = append(recs, record{p, i, "commit"})
		}
	}

	var out []string
	for _, r := range recs {
		logOff, logSize := r.pool.LogArea()
		minOff := logOff + 8 // count word onward (prepared, decision)
		if r.kind == "commit" {
			// The single-pool commit record shares an epoch with its
			// count by design (an empty committed log is a consistent
			// no-op); only the staged entries are ordering-critical.
			minOff = logOff + 16
		}
		vaSet := make(map[memlayout.VA]struct{})
		for _, s := range steps[:r.idx] {
			if s.Fence || s.Pool != r.pool.ID() {
				continue
			}
			end := s.Off + uint64(len(s.Data))
			for wOff := s.Off &^ 7; wOff < end; wOff += 8 {
				if wOff >= minOff && wOff < logOff+logSize && wOff != logOff {
					vaSet[persist.PoolVA(s.Pool, wOff)] = struct{}{}
				}
			}
		}
		if len(vaSet) == 0 {
			continue
		}
		c := persist.NewChecker(nil)
		j.Feed(c, r.idx+1)
		vas := make([]memlayout.VA, 0, len(vaSet))
		for va := range vaSet {
			vas = append(vas, va)
		}
		if err := c.CheckPersistedBefore(vas, persist.PoolVA(r.pool.ID(), logOff)); err != nil {
			out = append(out, fmt.Sprintf("%s record on pool %q: %v", r.kind, r.pool.Name(), err))
		}
	}
	return out
}

// MinimizeSchedule ddmin-shrinks the step prefix behind a crash
// violation to the smallest subsequence of recorded durable-media steps
// that still drives recovery into an inconsistency under the same fault
// config. The workload is re-executed to re-record the journal (the
// generator and transaction layer are deterministic), so w must be the
// violation's workload, Bug included.
func MinimizeSchedule(w Workload, v Violation, budget int) ([]persist.Step, error) {
	if v.Referee {
		return nil, fmt.Errorf("crashconform: referee violations have no crash schedule")
	}
	if budget <= 0 {
		budget = 400
	}
	_, pools, err := buildStore(w)
	if err != nil {
		return nil, err
	}
	pre := readSlots(pools)
	post := expectedPost(pre, w.Victim)
	j := persist.NewJournal()
	for _, p := range pools {
		j.Arm(p)
	}
	verr := execTx(pools, w.Victim, w.Bug)
	j.Disarm()
	if verr != nil {
		return nil, verr
	}
	k := v.K
	if k > j.Len() {
		k = j.Len()
	}
	steps := j.Steps()[:k]
	bases := j.CrashImages(0, persist.FaultConfig{}) // arm-time snapshots
	replica, rpools, err := buildReplica(w)
	if err != nil {
		return nil, err
	}
	fc := persist.FaultConfig{Mode: v.Mode, Seed: v.FaultSeed}
	failing := func(cand []persist.Step) bool {
		imgs := persist.ApplyCrash(bases, cand, fc)
		return checkImages(replica, rpools, imgs, pre, post) != ""
	}
	return conformance.MinimizeSlice(steps, budget, failing), nil
}
