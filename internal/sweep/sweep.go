// Package sweep fans an experiment grid out to pmoworker daemons. The
// coordinator partitions the grid into cells, ships each cell's opaque
// spec (plus the content-addressed keys of the warmup snapshots it can
// reuse) to a worker over a length-prefixed frame protocol in the style
// of internal/serve, and collects opaque result payloads. Workers that
// miss a snapshot pull it from the coordinator mid-cell; workers that
// die mid-sweep degrade to local re-execution of their lost cells —
// a shrinking worker set changes wall-clock time, never results.
//
// The package is deliberately ignorant of what a cell is: specs and
// results are byte slices produced and consumed by the root package
// (see domainvirt.RunSweepCell), which keeps the dependency arrow
// pointing root → sweep.
package sweep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"domainvirt/internal/bincodec"
)

// ProtoVersion is the handshake version; both ends must match exactly.
const ProtoVersion = 1

// maxFrame bounds a declared frame length. Snapshots of large machines
// dominate frame sizes; 1 GiB is far above any real checkpoint while
// still rejecting garbage lengths from a corrupt stream.
const maxFrame = 1 << 30

// Frame type tags (first payload byte).
const (
	tHello    = 'H' // both directions: u32 version
	tRun      = 'R' // coordinator->worker: u32 id, keys, spec
	tNeedSnap = 'N' // worker->coordinator: str key
	tSnap     = 'S' // coordinator->worker: str key, bool found, bytes
	tResult   = 'D' // worker->coordinator: u32 id, bytes payload
	tError    = 'E' // worker->coordinator: u32 id, str message
)

// Fetch pulls one content-addressed snapshot; ok=false means the far
// side does not hold it either (the caller rebuilds).
type Fetch func(key string) ([]byte, bool)

// Runner executes one opaque cell spec, pulling missing snapshots
// through fetch, and returns the opaque result payload.
type Runner func(spec []byte, fetch Fetch) ([]byte, error)

// CellError is a deterministic remote cell failure: the workload itself
// errored on the worker. It is distinct from a transport error — the
// same cell would fail locally too, so the pool reports it instead of
// re-running.
type CellError struct{ Msg string }

func (e *CellError) Error() string { return "sweep: remote cell failed: " + e.Msg }

// readFrame reads one length-prefixed frame payload.
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("sweep: declared frame length %d exceeds limit", n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return buf, nil
}

// writeFrame writes one length-prefixed frame payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Frame builders.

func helloFrame() []byte {
	b := []byte{tHello}
	return bincodec.U32(b, ProtoVersion)
}

func runFrame(id uint32, snapKeys []string, spec []byte) []byte {
	b := []byte{tRun}
	b = bincodec.U32(b, id)
	b = bincodec.U32(b, uint32(len(snapKeys)))
	for _, k := range snapKeys {
		b = bincodec.Str(b, k)
	}
	return bincodec.Bytes(b, spec)
}

func needSnapFrame(key string) []byte {
	return bincodec.Str([]byte{tNeedSnap}, key)
}

func snapFrame(key string, found bool, data []byte) []byte {
	b := bincodec.Str([]byte{tSnap}, key)
	b = bincodec.Bool(b, found)
	return bincodec.Bytes(b, data)
}

func resultFrame(id uint32, payload []byte) []byte {
	return bincodec.Bytes(bincodec.U32([]byte{tResult}, id), payload)
}

func errorFrame(id uint32, msg string) []byte {
	return bincodec.Str(bincodec.U32([]byte{tError}, id), msg)
}

// frameReader wraps a frame payload for typed decoding.
func frameType(p []byte) (byte, *bincodec.Reader, error) {
	if len(p) == 0 {
		return 0, nil, errors.New("sweep: empty frame")
	}
	return p[0], bincodec.NewReader(p[1:]), nil
}

// checkHello validates a handshake frame.
func checkHello(p []byte) error {
	t, r, err := frameType(p)
	if err != nil {
		return err
	}
	if t != tHello {
		return fmt.Errorf("sweep: expected HELLO, got frame %q", t)
	}
	v := r.U32()
	if err := r.Err(); err != nil {
		return fmt.Errorf("sweep: bad HELLO: %w", err)
	}
	if v != ProtoVersion {
		return fmt.Errorf("sweep: protocol version mismatch: peer %d, local %d", v, ProtoVersion)
	}
	return nil
}
