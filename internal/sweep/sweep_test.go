package sweep

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// startWorker runs a Server with the given runner on an ephemeral port.
func startWorker(t *testing.T, run Runner) (*Server, string) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &Server{Run: run}
	go srv.Serve(lis)
	t.Cleanup(func() { srv.Close(); lis.Close() })
	return srv, lis.Addr().String()
}

// echoRunner returns the spec back with a marker prefix.
func echoRunner(marker string) Runner {
	return func(spec []byte, fetch Fetch) ([]byte, error) {
		return append([]byte(marker), spec...), nil
	}
}

func TestPoolRunsAllJobsInOrder(t *testing.T) {
	_, addr := startWorker(t, echoRunner("w:"))
	pool := NewPool([]string{addr}, 2, nil)
	defer pool.Close()
	if pool.Workers() != 2 {
		t.Fatalf("workers = %d, want 2 connections", pool.Workers())
	}
	jobs := make([]Job, 10)
	for i := range jobs {
		jobs[i] = Job{Spec: []byte(fmt.Sprintf("job-%d", i))}
	}
	local := func(i int) ([]byte, error) { return []byte("local"), nil }
	got, err := pool.Run(jobs, local, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range got {
		want := fmt.Sprintf("w:job-%d", i)
		if string(p) != want {
			t.Errorf("job %d payload %q, want %q", i, p, want)
		}
	}
}

func TestPoolEmptyRunsLocally(t *testing.T) {
	// No live workers at all: a bad address degrades to local execution.
	var dials []string
	pool := NewPool([]string{"127.0.0.1:1"}, 1, func(f string, a ...any) {
		dials = append(dials, fmt.Sprintf(f, a...))
	})
	defer pool.Close()
	if pool.Workers() != 0 {
		t.Fatalf("workers = %d, want 0", pool.Workers())
	}
	if len(dials) == 0 {
		t.Error("dial failure not logged")
	}
	jobs := []Job{{Spec: []byte("a")}, {Spec: []byte("b")}}
	got, err := pool.Run(jobs, func(i int) ([]byte, error) {
		return append([]byte("local:"), jobs[i].Spec...), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "local:a" || string(got[1]) != "local:b" {
		t.Errorf("local fallback payloads wrong: %q %q", got[0], got[1])
	}
}

func TestPoolSnapshotPull(t *testing.T) {
	// The runner demands a snapshot for every cell; the coordinator's
	// lookup serves it, and misses come back ok=false.
	_, addr := startWorker(t, func(spec []byte, fetch Fetch) ([]byte, error) {
		data, ok := fetch(string(spec))
		if !ok {
			return []byte("miss"), nil
		}
		return data, nil
	})
	pool := NewPool([]string{addr}, 1, nil)
	defer pool.Close()
	lookup := func(key string) ([]byte, bool) {
		if key == "have" {
			return []byte("snapshot-bytes"), true
		}
		return nil, false
	}
	got, err := pool.Run([]Job{{Spec: []byte("have")}, {Spec: []byte("gone")}},
		func(i int) ([]byte, error) { return nil, errors.New("unexpected local") }, lookup)
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0]) != "snapshot-bytes" {
		t.Errorf("pulled snapshot = %q", got[0])
	}
	if string(got[1]) != "miss" {
		t.Errorf("missing snapshot = %q, want miss marker", got[1])
	}
}

func TestPoolWorkerLossFallsBackLocally(t *testing.T) {
	// Worker A dies on its first cell; worker B and the local fallback
	// must deliver every job exactly once.
	var killed atomic.Bool
	srvA, addrA := startWorker(t, func(spec []byte, fetch Fetch) ([]byte, error) {
		killed.Store(true)
		panic("worker A dies mid-cell") // tears down the connection
	})
	_ = srvA
	_, addrB := startWorker(t, echoRunner("B:"))

	var mu sync.Mutex
	var localRan []int
	jobs := make([]Job, 8)
	for i := range jobs {
		jobs[i] = Job{Spec: []byte(fmt.Sprintf("j%d", i))}
	}
	var logs []string
	pool := NewPool([]string{addrA, addrB}, 1, func(f string, a ...any) {
		mu.Lock()
		logs = append(logs, fmt.Sprintf(f, a...))
		mu.Unlock()
	})
	defer pool.Close()
	got, err := pool.Run(jobs, func(i int) ([]byte, error) {
		mu.Lock()
		localRan = append(localRan, i)
		mu.Unlock()
		return append([]byte("L:"), jobs[i].Spec...), nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !killed.Load() {
		t.Fatal("worker A never saw a cell")
	}
	for i, p := range got {
		want1 := fmt.Sprintf("B:j%d", i)
		want2 := fmt.Sprintf("L:j%d", i)
		if string(p) != want1 && string(p) != want2 {
			t.Errorf("job %d payload %q, want worker-B or local", i, p)
		}
	}
	if len(localRan) == 0 {
		t.Error("lost cell was not re-run locally")
	}
	found := false
	for _, l := range logs {
		if strings.Contains(l, "lost") {
			found = true
		}
	}
	if !found {
		t.Errorf("worker loss not logged: %v", logs)
	}
}

func TestPoolRemoteCellErrorAborts(t *testing.T) {
	// A deterministic cell failure must abort the sweep (like the
	// sequential path), not silently re-run locally.
	_, addr := startWorker(t, func(spec []byte, fetch Fetch) ([]byte, error) {
		if string(spec) == "bad" {
			return nil, errors.New("workload exploded")
		}
		return spec, nil
	})
	pool := NewPool([]string{addr}, 1, nil)
	defer pool.Close()
	localCalls := 0
	_, err := pool.Run([]Job{{Spec: []byte("ok")}, {Spec: []byte("bad")}},
		func(i int) ([]byte, error) { localCalls++; return nil, nil }, nil)
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CellError", err)
	}
	if !strings.Contains(ce.Msg, "workload exploded") {
		t.Errorf("error lost the remote message: %v", ce)
	}
	if localCalls != 0 {
		t.Errorf("deterministic failure was retried locally %d times", localCalls)
	}
}

func TestHandshakeVersionMismatch(t *testing.T) {
	_, addr := startWorker(t, echoRunner(""))
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Claim a future protocol version; the worker must hang up rather
	// than serve frames it may misparse.
	bad := []byte{tHello, 0, 0, 0, 99}
	if err := writeFrame(c, bad); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := readFrame(c, nil); err == nil {
		t.Fatal("worker answered a version-mismatched HELLO")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	payload := runFrame(7, []string{"k1", "k2"}, []byte("spec-bytes"))
	go func() { writeFrame(a, payload) }()
	got, err := readFrame(b, nil)
	if err != nil {
		t.Fatal(err)
	}
	tp, r, err := frameType(got)
	if err != nil || tp != tRun {
		t.Fatalf("frame type %q err %v", tp, err)
	}
	if id := r.U32(); id != 7 {
		t.Errorf("id = %d", id)
	}
	if n := r.U32(); n != 2 {
		t.Errorf("nkeys = %d", n)
	}
	if k := r.Str(); k != "k1" {
		t.Errorf("key1 = %q", k)
	}
	if k := r.Str(); k != "k2" {
		t.Errorf("key2 = %q", k)
	}
	if s := string(r.Bytes()); s != "spec-bytes" {
		t.Errorf("spec = %q", s)
	}
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
}
