package sweep

import (
	"fmt"
	"net"
	"sort"
	"sync"
)

// Job is one grid cell to distribute: an opaque spec plus the
// content-addressed snapshot keys the worker may want to pull before
// simulating (advisory — the spec itself is authoritative).
type Job struct {
	SnapKeys []string
	Spec     []byte
}

// client is one coordinator->worker connection.
type client struct {
	addr string
	conn net.Conn
	buf  []byte
}

// runCell ships one job and blocks until RESULT/ERROR, answering
// NEEDSNAP sub-requests from lookup in between. A transport error means
// the worker (or link) is gone; a *CellError means the cell itself
// failed deterministically.
func (c *client) runCell(id int, job Job, lookup Fetch) ([]byte, error) {
	if err := writeFrame(c.conn, runFrame(uint32(id), job.SnapKeys, job.Spec)); err != nil {
		return nil, err
	}
	for {
		p, err := readFrame(c.conn, c.buf)
		if err != nil {
			return nil, err
		}
		t, r, err := frameType(p)
		if err != nil {
			return nil, err
		}
		switch t {
		case tNeedSnap:
			key := r.Str()
			if err := r.Err(); err != nil {
				return nil, err
			}
			var data []byte
			found := false
			if lookup != nil {
				data, found = lookup(key)
			}
			if err := writeFrame(c.conn, snapFrame(key, found, data)); err != nil {
				return nil, err
			}
		case tResult:
			gotID := r.U32()
			payload := append([]byte(nil), r.Bytes()...)
			if err := r.Err(); err != nil {
				return nil, err
			}
			if int(gotID) != id {
				return nil, fmt.Errorf("sweep: result for cell %d while waiting on %d", gotID, id)
			}
			return payload, nil
		case tError:
			r.U32()
			msg := r.Str()
			if err := r.Err(); err != nil {
				return nil, err
			}
			return nil, &CellError{Msg: msg}
		default:
			return nil, fmt.Errorf("sweep: unexpected frame %q", t)
		}
	}
}

// Pool distributes jobs over a set of workers, degrading to local
// execution for anything a worker cannot deliver.
type Pool struct {
	clients []*client
	// Log, when non-nil, receives coordinator-side progress lines
	// (worker losses, fallback decisions).
	Log func(format string, args ...any)
}

// NewPool dials every worker address, opening Conns connections to each
// (minimum 1) so one worker can execute several cells concurrently.
// Addresses that fail to dial or handshake are skipped with a log line;
// an empty pool is valid and makes Run execute everything locally.
func NewPool(addrs []string, conns int, logf func(format string, args ...any)) *Pool {
	if conns < 1 {
		conns = 1
	}
	p := &Pool{Log: logf}
	for _, addr := range addrs {
		for i := 0; i < conns; i++ {
			c, err := dialWorker(addr)
			if err != nil {
				p.logf("sweep: worker %s unavailable: %v", addr, err)
				break
			}
			p.clients = append(p.clients, &client{addr: addr, conn: c})
		}
	}
	return p
}

func (p *Pool) logf(format string, args ...any) {
	if p.Log != nil {
		p.Log(format, args...)
	}
}

// Workers returns the number of live worker connections.
func (p *Pool) Workers() int { return len(p.clients) }

// Close tears down every connection.
func (p *Pool) Close() {
	for _, c := range p.clients {
		c.conn.Close()
	}
	p.clients = nil
}

// Run executes every job and returns one payload per job, in job order.
// Jobs are pulled by worker connections from a shared cursor; any job a
// worker cannot deliver (connection lost mid-cell, worker died, no
// workers at all) is re-executed locally via local. Deterministic cell
// failures — remote *CellError or a local error — abort the sweep with
// the lowest-indexed failing cell's error, exactly like the sequential
// path.
func (p *Pool) Run(jobs []Job, local func(i int) ([]byte, error), lookup Fetch) ([][]byte, error) {
	results := make([][]byte, len(jobs))
	done := make([]bool, len(jobs))
	errs := make([]error, len(jobs))

	if len(p.clients) > 0 {
		var mu sync.Mutex
		next := 0
		take := func() int {
			mu.Lock()
			defer mu.Unlock()
			if next >= len(jobs) {
				return -1
			}
			i := next
			next++
			return i
		}
		var wg sync.WaitGroup
		for _, c := range p.clients {
			wg.Add(1)
			go func(c *client) {
				defer wg.Done()
				for {
					i := take()
					if i < 0 {
						return
					}
					payload, err := c.runCell(i, jobs[i], lookup)
					mu.Lock()
					switch {
					case err == nil:
						results[i] = payload
						done[i] = true
					case isCellError(err):
						errs[i] = err
						done[i] = true
					default:
						// Transport loss: leave the cell for the local
						// pass and retire this connection.
						mu.Unlock()
						p.logf("sweep: worker %s lost (cell %d re-queued locally): %v", c.addr, i, err)
						c.conn.Close()
						return
					}
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
	}

	// Local pass: everything undelivered (lost workers, empty pool).
	var fallback []int
	for i := range jobs {
		if !done[i] {
			fallback = append(fallback, i)
		}
	}
	sort.Ints(fallback)
	if len(fallback) > 0 && len(p.clients) > 0 {
		p.logf("sweep: running %d cell(s) locally after worker loss", len(fallback))
	}
	for _, i := range fallback {
		payload, err := local(i)
		if err != nil {
			errs[i] = err
		} else {
			results[i] = payload
		}
	}

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func isCellError(err error) bool {
	_, ok := err.(*CellError)
	return ok
}
