package sweep

import (
	"fmt"
	"io"
	"net"
	"sync"
)

// Server is the worker side of the sweep protocol: it accepts
// coordinator connections and executes RUN frames through its Runner.
// One cell runs at a time per connection; a coordinator that wants
// parallelism across a worker's cores opens several connections.
type Server struct {
	// Run executes one cell. Required.
	Run Runner
	// Log, when non-nil, receives one line per served cell.
	Log func(format string, args ...any)

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	done  bool
}

func (s *Server) logf(format string, args ...any) {
	if s.Log != nil {
		s.Log(format, args...)
	}
}

// Serve accepts connections on l until Close (or a listener error).
func (s *Server) Serve(l net.Listener) error {
	for {
		c, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.done
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.conns == nil {
			s.conns = make(map[net.Conn]struct{})
		}
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		go s.serveConn(c)
	}
}

// Close terminates every live connection; a Serve loop running on a
// closed listener then returns nil.
func (s *Server) Close() {
	s.mu.Lock()
	s.done = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
}

func (s *Server) drop(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
	c.Close()
}

// serveConn runs the per-connection protocol loop: HELLO exchange, then
// RUN frames answered by RESULT/ERROR, with NEEDSNAP/SNAP sub-exchanges
// initiated by the runner mid-cell. A panicking runner tears down this
// connection only — never the daemon — and the coordinator re-runs the
// lost cell locally.
func (s *Server) serveConn(c net.Conn) {
	defer s.drop(c)
	defer func() {
		if r := recover(); r != nil {
			s.logf("pmoworker: connection torn down by cell panic: %v", r)
		}
	}()
	var buf []byte
	p, err := readFrame(c, buf)
	if err != nil {
		return
	}
	if err := checkHello(p); err != nil {
		s.logf("pmoworker: handshake failed: %v", err)
		return
	}
	if err := writeFrame(c, helloFrame()); err != nil {
		return
	}
	for {
		p, err := readFrame(c, buf)
		if err != nil {
			return // coordinator done (or connection lost)
		}
		t, r, err := frameType(p)
		if err != nil || t != tRun {
			s.logf("pmoworker: unexpected frame %q", t)
			return
		}
		id := r.U32()
		nkeys := int(r.U32())
		keys := make([]string, 0, nkeys)
		for i := 0; i < nkeys && r.Err() == nil; i++ {
			keys = append(keys, r.Str())
		}
		spec := append([]byte(nil), r.Bytes()...)
		if err := r.Err(); err != nil {
			s.logf("pmoworker: bad RUN frame: %v", err)
			return
		}
		_ = keys // advisory: the spec itself names the snapshots it wants

		fetch := func(key string) ([]byte, bool) {
			if err := writeFrame(c, needSnapFrame(key)); err != nil {
				return nil, false
			}
			rp, err := readFrame(c, nil)
			if err != nil {
				return nil, false
			}
			ft, fr, err := frameType(rp)
			if err != nil || ft != tSnap {
				return nil, false
			}
			fr.Str() // key echo
			found := fr.Bool()
			data := append([]byte(nil), fr.Bytes()...)
			if fr.Err() != nil || !found {
				return nil, false
			}
			return data, true
		}

		payload, runErr := s.Run(spec, fetch)
		if runErr != nil {
			s.logf("pmoworker: cell %d failed: %v", id, runErr)
			if err := writeFrame(c, errorFrame(id, runErr.Error())); err != nil {
				return
			}
			continue
		}
		s.logf("pmoworker: cell %d done (%d bytes)", id, len(payload))
		if err := writeFrame(c, resultFrame(id, payload)); err != nil {
			return
		}
	}
}

// dialWorker opens one protocol connection to a worker.
func dialWorker(addr string) (net.Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := writeFrame(c, helloFrame()); err != nil {
		c.Close()
		return nil, err
	}
	p, err := readFrame(c, nil)
	if err != nil {
		c.Close()
		if err == io.EOF {
			err = fmt.Errorf("sweep: worker %s closed during handshake", addr)
		}
		return nil, err
	}
	if err := checkHello(p); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}
