// Package mem models main memory as two latency classes — DRAM and NVM —
// plus a simple physical-frame allocator. Per the paper's Table II, NVM
// latency is 3x DRAM latency (120 vs 360 cycles), in line with Intel Optane
// DC Persistent Memory characterization; PMO accesses use NVM latency while
// all other accesses use DRAM latency.
package mem

import (
	"fmt"

	"domainvirt/internal/memlayout"
)

// Kind identifies the memory technology backing a physical frame.
type Kind int

// Memory kinds.
const (
	DRAM Kind = iota
	NVM
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == NVM {
		return "NVM"
	}
	return "DRAM"
}

// Config holds memory-model parameters.
type Config struct {
	DRAMLatency uint64 // cycles for a DRAM access
	NVMLatency  uint64 // cycles for an NVM access
	NVMBase     memlayout.PA
}

// DefaultConfig returns the paper's Table II memory parameters. Physical
// frames at or above NVMBase are NVM; below it, DRAM.
func DefaultConfig() Config {
	return Config{
		DRAMLatency: 120,
		NVMLatency:  360,
		NVMBase:     memlayout.PA(1) << 40, // 1 TB split point
	}
}

// Memory is the main-memory model: a frame allocator per kind and access
// latency/count bookkeeping.
type Memory struct {
	cfg       Config
	nextDRAM  memlayout.PA
	nextNVM   memlayout.PA
	dramReads uint64
	nvmReads  uint64
	dramWr    uint64
	nvmWr     uint64
}

// New constructs a Memory with the given configuration.
func New(cfg Config) *Memory {
	return &Memory{
		cfg:      cfg,
		nextDRAM: memlayout.PageSize, // keep PA 0 unused as a null frame
		nextNVM:  cfg.NVMBase,
	}
}

// AllocFrame returns the physical address of a fresh 4 KB frame of the
// given kind.
func (m *Memory) AllocFrame(k Kind) memlayout.PA {
	if k == NVM {
		pa := m.nextNVM
		m.nextNVM += memlayout.PageSize
		return pa
	}
	pa := m.nextDRAM
	m.nextDRAM += memlayout.PageSize
	if m.nextDRAM >= m.cfg.NVMBase {
		panic("mem: DRAM region exhausted")
	}
	return pa
}

// KindOf returns the memory kind of physical address pa.
func (m *Memory) KindOf(pa memlayout.PA) Kind {
	if pa >= m.cfg.NVMBase {
		return NVM
	}
	return DRAM
}

// Access records an access to pa and returns its latency in cycles.
func (m *Memory) Access(pa memlayout.PA, write bool) uint64 {
	if m.KindOf(pa) == NVM {
		if write {
			m.nvmWr++
		} else {
			m.nvmReads++
		}
		return m.cfg.NVMLatency
	}
	if write {
		m.dramWr++
	} else {
		m.dramReads++
	}
	return m.cfg.DRAMLatency
}

// Latency returns the access latency for pa without recording an access.
func (m *Memory) Latency(pa memlayout.PA) uint64 {
	if m.KindOf(pa) == NVM {
		return m.cfg.NVMLatency
	}
	return m.cfg.DRAMLatency
}

// Stats returns (dramReads, dramWrites, nvmReads, nvmWrites).
func (m *Memory) Stats() (dr, dw, nr, nw uint64) {
	return m.dramReads, m.dramWr, m.nvmReads, m.nvmWr
}

// State is the memory model's mutable state: allocation cursors and
// access counts. Config is not part of it — a snapshot taken under one
// latency configuration can seed a Memory running another, since
// allocation layout depends only on NVMBase (a structural parameter).
type State struct {
	NextDRAM  memlayout.PA
	NextNVM   memlayout.PA
	DRAMReads uint64
	NVMReads  uint64
	DRAMWr    uint64
	NVMWr     uint64
}

// Snapshot captures the allocator cursors and access counts.
func (m *Memory) Snapshot() State {
	return State{
		NextDRAM:  m.nextDRAM,
		NextNVM:   m.nextNVM,
		DRAMReads: m.dramReads,
		NVMReads:  m.nvmReads,
		DRAMWr:    m.dramWr,
		NVMWr:     m.nvmWr,
	}
}

// Restore reinstates a snapshot.
func (m *Memory) Restore(s State) {
	m.nextDRAM = s.NextDRAM
	m.nextNVM = s.NextNVM
	m.dramReads = s.DRAMReads
	m.nvmReads = s.NVMReads
	m.dramWr = s.DRAMWr
	m.nvmWr = s.NVMWr
}

// String implements fmt.Stringer.
func (m *Memory) String() string {
	return fmt.Sprintf("mem{dram r/w=%d/%d nvm r/w=%d/%d}", m.dramReads, m.dramWr, m.nvmReads, m.nvmWr)
}
