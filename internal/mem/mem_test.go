package mem

import (
	"testing"

	"domainvirt/internal/memlayout"
)

func TestKindsAndLatencies(t *testing.T) {
	m := New(DefaultConfig())
	d := m.AllocFrame(DRAM)
	n := m.AllocFrame(NVM)
	if m.KindOf(d) != DRAM || m.KindOf(n) != NVM {
		t.Fatalf("kinds: %v %v", m.KindOf(d), m.KindOf(n))
	}
	if m.Latency(d) != 120 || m.Latency(n) != 360 {
		t.Errorf("latencies = %d / %d, want 120 / 360 (NVM = 3x DRAM)", m.Latency(d), m.Latency(n))
	}
	if got := m.Access(n, true); got != 360 {
		t.Errorf("NVM write latency = %d", got)
	}
	if got := m.Access(d, false); got != 120 {
		t.Errorf("DRAM read latency = %d", got)
	}
	dr, dw, nr, nw := m.Stats()
	if dr != 1 || dw != 0 || nr != 0 || nw != 1 {
		t.Errorf("stats = %d %d %d %d", dr, dw, nr, nw)
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestFrameAllocatorDistinct(t *testing.T) {
	m := New(DefaultConfig())
	seen := make(map[memlayout.PA]bool)
	for i := 0; i < 1000; i++ {
		pa := m.AllocFrame(DRAM)
		if seen[pa] {
			t.Fatalf("frame %#x allocated twice", pa)
		}
		if !memlayout.IsAligned(uint64(pa), memlayout.PageSize) {
			t.Fatalf("frame %#x misaligned", pa)
		}
		seen[pa] = true
	}
	for i := 0; i < 1000; i++ {
		pa := m.AllocFrame(NVM)
		if seen[pa] {
			t.Fatalf("NVM frame %#x collides", pa)
		}
		seen[pa] = true
	}
}

func TestKindString(t *testing.T) {
	if DRAM.String() != "DRAM" || NVM.String() != "NVM" {
		t.Error("kind names")
	}
}
