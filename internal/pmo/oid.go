// Package pmo implements the Persistent Memory Object abstraction the
// paper builds on (Section II-C): pools with OS-managed namespace and
// permissions, relocatable ObjectIDs (a 32-bit pool ID concatenated with a
// 32-bit offset), attach/detach primitives that bind a pool to a process
// address space as a protection domain, and a persistent in-pool
// allocator. The API follows Table I of the paper (pool_create, pool_open,
// pool_close, pool_root, pmalloc, pfree, oid_direct).
//
// A pool works in two modes: as a plain library backed by file-persisted
// frames (the examples), and attached to a simulated address space whose
// accesses are emitted as instrumentation events (the evaluation).
package pmo

import "fmt"

// OID is a relocatable persistent pointer: the high 32 bits identify the
// pool, the low 32 bits are the byte offset within it (Figure 1 of the
// paper). The zero OID is the null pointer.
type OID uint64

// NullOID is the persistent null pointer.
const NullOID OID = 0

// MakeOID builds an OID from a pool ID and an offset.
func MakeOID(pool uint32, off uint32) OID {
	return OID(uint64(pool)<<32 | uint64(off))
}

// Pool returns the pool ID component.
func (o OID) Pool() uint32 { return uint32(o >> 32) }

// Offset returns the intra-pool offset component.
func (o OID) Offset() uint32 { return uint32(o) }

// IsNull reports whether o is the null pointer.
func (o OID) IsNull() bool { return o == NullOID }

// Add returns o displaced by delta bytes within the same pool.
func (o OID) Add(delta uint32) OID {
	return MakeOID(o.Pool(), o.Offset()+delta)
}

// String implements fmt.Stringer.
func (o OID) String() string {
	if o.IsNull() {
		return "OID(null)"
	}
	return fmt.Sprintf("OID(pool=%d, off=%#x)", o.Pool(), o.Offset())
}
