package pmo

// Per-attachment data access. When a pool is shared read-only between
// several spaces ("attached ... to multiple processes for reading"),
// pool-level accessors are ambiguous about which attachment performs the
// access; these route through a specific one, so each space's loads are
// checked against its own domain permissions and emitted at its own
// attach base. In library mode (no sink) the attach intent itself is
// enforced: writes through a read-only attachment are dropped.

// ReadU64 loads a u64 at off through this attachment. Denied loads
// return zero.
func (a *Attachment) ReadU64(off uint32) uint64 {
	if !a.Perm.CanRead() || !a.emit(uint64(off), 8, false) {
		return 0
	}
	return a.Pool.readU64Raw(uint64(off))
}

// WriteU64 stores v at off through this attachment. Denied stores never
// reach persistent memory.
func (a *Attachment) WriteU64(off uint32, v uint64) {
	if !a.Perm.CanWrite() {
		return
	}
	if !a.emit(uint64(off), 8, true) {
		return
	}
	a.Pool.writeU64Raw(uint64(off), v)
}

// Read copies len(dst) bytes from off through this attachment; denied
// loads zero dst.
func (a *Attachment) Read(off uint32, dst []byte) {
	if !a.Perm.CanRead() || !a.emit(uint64(off), uint32(len(dst)), false) {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	a.Pool.readRaw(uint64(off), dst)
}

// Write copies src to off through this attachment; denied stores are
// dropped.
func (a *Attachment) Write(off uint32, src []byte) {
	if !a.Perm.CanWrite() {
		return
	}
	if !a.emit(uint64(off), uint32(len(src)), true) {
		return
	}
	a.Pool.writeRaw(uint64(off), src)
}

// ReadOID loads a persistent pointer through this attachment.
func (a *Attachment) ReadOID(off uint32) OID { return OID(a.ReadU64(off)) }
