package pmo

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"domainvirt/internal/memlayout"
)

// Store is the OS-side PMO namespace: it owns pool names, IDs, permission
// metadata, and (optionally) file persistence in a directory where each
// pool is one file. The paper assumes "PMOs are managed by the OS similar
// to a file (namespace and permission) but accessed like data structures".
type Store struct {
	mu     sync.Mutex
	dir    string // "" for in-memory stores
	pools  map[string]*Pool
	byID   map[uint32]*Pool
	nextID uint32
}

// PoolInfo summarizes one pool for listings.
type PoolInfo struct {
	Name      string
	ID        uint32
	Size      uint64
	Mode      Mode
	Owner     string
	Populated int
	Attached  bool
}

// NewStore returns an in-memory store (no file persistence).
func NewStore() *Store {
	return &Store{
		pools:  make(map[string]*Pool),
		byID:   make(map[uint32]*Pool),
		nextID: 1,
	}
}

// OpenStore opens (creating if needed) a file-backed store rooted at dir.
// Existing pool files are loaded.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pmo: opening store: %w", err)
	}
	s := NewStore()
	s.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("pmo: reading store dir: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), poolFileExt) {
			continue
		}
		p, err := loadPoolFile(filepath.Join(dir, e.Name()))
		if err != nil {
			return nil, fmt.Errorf("pmo: loading %s: %w", e.Name(), err)
		}
		s.pools[p.name] = p
		s.byID[p.id] = p
		p.store = s
		if p.id >= s.nextID {
			s.nextID = p.id + 1
		}
	}
	return s, nil
}

// Dir returns the backing directory ("" for in-memory stores).
func (s *Store) Dir() string { return s.dir }

// Create creates a pool (Table I pool_create); the calling user becomes
// the owner.
func (s *Store) Create(name string, size uint64, mode Mode, owner string) (*Pool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("pmo: pool name must be non-empty")
	}
	if strings.ContainsAny(name, "/\\") {
		return nil, fmt.Errorf("pmo: pool name %q must not contain path separators", name)
	}
	if _, exists := s.pools[name]; exists {
		return nil, fmt.Errorf("pmo: pool %q already exists", name)
	}
	if size < 2*4096 {
		return nil, fmt.Errorf("pmo: pool size %d too small (min 8 KB)", size)
	}
	id := s.nextID
	s.nextID++
	p := newPool(name, id, size, mode, owner)
	p.store = s
	s.pools[name] = p
	s.byID[id] = p
	return p, nil
}

// Open reopens an existing pool by name (Table I pool_open), enforcing
// the permission mode against the requesting user.
func (s *Store) Open(name, user string, wantWrite bool) (*Pool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pools[name]
	if !ok {
		return nil, fmt.Errorf("pmo: pool %q not found", name)
	}
	isOwner := p.owner == user
	switch {
	case wantWrite && isOwner && p.mode&ModeOwnerWrite == 0,
		wantWrite && !isOwner && p.mode&ModeOtherWrite == 0:
		return nil, fmt.Errorf("pmo: user %q denied write access to pool %q", user, name)
	case !wantWrite && isOwner && p.mode&ModeOwnerRead == 0,
		!wantWrite && !isOwner && p.mode&ModeOtherRead == 0:
		return nil, fmt.Errorf("pmo: user %q denied read access to pool %q", user, name)
	}
	return p, nil
}

// Get returns a pool by name without permission checks (tools, tests).
func (s *Store) Get(name string) (*Pool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pools[name]
	return p, ok
}

// ByID returns a pool by its ID.
func (s *Store) ByID(id uint32) (*Pool, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.byID[id]
	return p, ok
}

// Remove deletes a pool from the namespace (and its file, if persisted).
// Attached pools cannot be removed.
func (s *Store) Remove(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.pools[name]
	if !ok {
		return fmt.Errorf("pmo: pool %q not found", name)
	}
	if p.Attached() {
		return fmt.Errorf("pmo: pool %q is attached", name)
	}
	delete(s.pools, name)
	delete(s.byID, p.id)
	if s.dir != "" {
		path := s.poolPath(name)
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// List returns pool summaries sorted by name.
func (s *Store) List() []PoolInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	infos := make([]PoolInfo, 0, len(s.pools))
	for _, p := range s.pools {
		p.mu.Lock()
		infos = append(infos, PoolInfo{
			Name:      p.name,
			ID:        p.id,
			Size:      p.size,
			Mode:      p.mode,
			Owner:     p.owner,
			Populated: len(p.frames),
			Attached:  len(p.atts) > 0,
		})
		p.mu.Unlock()
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Sync persists every dirty pool to its backing file (no-op for
// in-memory stores).
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dir == "" {
		return nil
	}
	for _, p := range s.pools {
		// Hold the pool lock across the save so a concurrent writer
		// cannot mutate frames mid-serialization (lock order is always
		// store.mu then pool.mu).
		p.mu.Lock()
		if !p.dirty {
			p.mu.Unlock()
			continue
		}
		err := savePoolFile(s.poolPath(p.name), p)
		if err == nil {
			p.dirty = false
		}
		p.mu.Unlock()
		if err != nil {
			return fmt.Errorf("pmo: persisting pool %q: %w", p.name, err)
		}
	}
	return nil
}

func (s *Store) poolPath(name string) string {
	return filepath.Join(s.dir, name+poolFileExt)
}

// Snapshot deep-copies pool src into a new pool named dst (backup /
// copy-on-demand provisioning). The source must not be write-attached;
// the snapshot gets a fresh pool ID and rewrites its header accordingly.
func (s *Store) Snapshot(src, dst, owner string) (*Pool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	from, ok := s.pools[src]
	if !ok {
		return nil, fmt.Errorf("pmo: pool %q not found", src)
	}
	if _, exists := s.pools[dst]; exists {
		return nil, fmt.Errorf("pmo: pool %q already exists", dst)
	}
	if dst == "" || strings.ContainsAny(dst, "/\\") {
		return nil, fmt.Errorf("pmo: invalid snapshot name %q", dst)
	}
	from.mu.Lock()
	if from.writer != nil {
		from.mu.Unlock()
		return nil, fmt.Errorf("pmo: pool %q is write-attached; detach before snapshotting", src)
	}
	id := s.nextID
	s.nextID++
	cp := &Pool{
		name:      dst,
		id:        id,
		size:      from.size,
		mode:      from.mode,
		owner:     owner,
		attachKey: from.attachKey,
		frames:    make(map[uint64]*[memlayout.PageSize]byte, len(from.frames)),
		store:     s,
		dirty:     true,
	}
	for idx, f := range from.frames {
		nf := new([memlayout.PageSize]byte)
		*nf = *f
		cp.frames[idx] = nf
	}
	from.mu.Unlock()
	cp.writeU64Raw(hdrPoolID, uint64(id)) // the copy has its own identity
	s.pools[dst] = cp
	s.byID[id] = cp
	return cp, nil
}
