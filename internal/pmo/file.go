package pmo

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"

	"domainvirt/internal/memlayout"
)

// Pool file format (one file per pool, sparse):
//
//	magic "PMOFILE1" (8 bytes)
//	u32 pool ID, u64 size, u16 mode
//	u16 owner length + owner bytes
//	u16 attach-key length + key bytes
//	u16 name length + name bytes
//	u64 populated frame count
//	frames: u64 page index + 4096 bytes, ascending
const poolFileExt = ".pmo"

var poolFileMagic = [8]byte{'P', 'M', 'O', 'F', 'I', 'L', 'E', '1'}

func savePoolFile(path string, p *Pool) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := writePool(bw, p); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Atomic replace: a crash mid-save leaves the previous image intact.
	return os.Rename(tmp, path)
}

func writePool(w io.Writer, p *Pool) error {
	if _, err := w.Write(poolFileMagic[:]); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, p.id); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, p.size); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(p.mode)); err != nil {
		return err
	}
	for _, s := range []string{p.owner, p.attachKey, p.name} {
		if err := writeString(w, s); err != nil {
			return err
		}
	}
	idxs := make([]uint64, 0, len(p.frames))
	for idx := range p.frames {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	if err := binary.Write(w, binary.LittleEndian, uint64(len(idxs))); err != nil {
		return err
	}
	for _, idx := range idxs {
		if err := binary.Write(w, binary.LittleEndian, idx); err != nil {
			return err
		}
		if _, err := w.Write(p.frames[idx][:]); err != nil {
			return err
		}
	}
	return nil
}

func loadPoolFile(path string) (*Pool, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return readPool(bufio.NewReaderSize(f, 1<<16))
}

func readPool(r io.Reader) (*Pool, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != poolFileMagic {
		return nil, errors.New("pmo: not a pool file")
	}
	var id uint32
	var size uint64
	var mode uint16
	if err := binary.Read(r, binary.LittleEndian, &id); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &size); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &mode); err != nil {
		return nil, err
	}
	owner, err := readString(r)
	if err != nil {
		return nil, err
	}
	attachKey, err := readString(r)
	if err != nil {
		return nil, err
	}
	name, err := readString(r)
	if err != nil {
		return nil, err
	}
	p := &Pool{
		name:      name,
		id:        id,
		size:      size,
		mode:      Mode(mode),
		owner:     owner,
		attachKey: attachKey,
		frames:    make(map[uint64]*[memlayout.PageSize]byte),
	}
	var nframes uint64
	if err := binary.Read(r, binary.LittleEndian, &nframes); err != nil {
		return nil, err
	}
	maxFrames := (size + memlayout.PageSize - 1) / memlayout.PageSize
	if nframes > maxFrames {
		return nil, fmt.Errorf("pmo: corrupt pool file: %d frames exceeds pool capacity %d", nframes, maxFrames)
	}
	for i := uint64(0); i < nframes; i++ {
		var idx uint64
		if err := binary.Read(r, binary.LittleEndian, &idx); err != nil {
			return nil, err
		}
		if idx >= maxFrames {
			return nil, fmt.Errorf("pmo: corrupt pool file: frame index %d out of range", idx)
		}
		fr := new([memlayout.PageSize]byte)
		if _, err := io.ReadFull(r, fr[:]); err != nil {
			return nil, err
		}
		p.frames[idx] = fr
	}
	if p.readU64Raw(hdrMagic) != poolMagic {
		return nil, fmt.Errorf("pmo: pool %q header corrupt", name)
	}
	return p, nil
}

func writeString(w io.Writer, s string) error {
	if len(s) > 0xFFFF {
		return errors.New("pmo: string too long")
	}
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
