package pmo

import (
	"bytes"
	"testing"
)

// FuzzPoolFile hardens the pool-file loader: arbitrary bytes must yield
// an error or a valid pool, never a panic or unbounded allocation.
func FuzzPoolFile(f *testing.F) {
	s := NewStore()
	p, err := s.Create("seed", 16<<10, ModeDefault, "fuzz")
	if err != nil {
		f.Fatal(err)
	}
	if _, err := p.Alloc(64); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writePool(&buf, p); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("PMOFILE1"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		pool, err := readPool(bytes.NewReader(data))
		if err == nil && pool != nil {
			// A successfully-loaded pool must at least have a sane
			// header.
			if pool.readU64Raw(hdrMagic) != poolMagic {
				t.Fatal("loader accepted a pool with a bad header")
			}
		}
	})
}
