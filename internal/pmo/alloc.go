package pmo

import (
	"fmt"

	"domainvirt/internal/memlayout"
)

// Persistent in-pool allocator: size-class segregated free lists plus a
// bump pointer, with all metadata (bump cursor, free-list heads, block
// headers) living inside the pool so allocation state survives detach,
// process exit, and crashes.
//
// Block layout: a 16-byte header {size u64, state u64} followed by the
// payload; OIDs point at the payload. Free blocks store the next-free
// offset in the first payload word.

const (
	blockHdrSize = 16
	blockAlloc   = 0xA110C8ED
	blockFree    = 0xF7EEF7EE
	minBlock     = 32 // header + one pointer
)

// sizeClass maps a block size (header included) to its free-list class:
// class i holds blocks of size < 32<<(i+1).
func sizeClass(total uint64) int {
	c := 0
	s := uint64(minBlock)
	for s < total && c < numSizeClasses-1 {
		s <<= 1
		c++
	}
	return c
}

// Alloc allocates size payload bytes in the pool and returns the payload
// OID (Table I pmalloc). The allocation is 16-byte aligned.
func (p *Pool) Alloc(size uint64) (OID, error) {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	if size == 0 {
		size = 1
	}
	total := memlayout.AlignUp(size+blockHdrSize, 16)
	if total < minBlock {
		total = minBlock
	}

	// First fit within the exact size class: blocks in class c are at
	// least as large as any request mapping to class c only when sizes
	// match the class floor, so verify the block actually fits.
	c := sizeClass(total)
	headOff := uint64(hdrFreeHeads + 8*c)
	prev := uint64(0)
	cur := p.ReadU64(uint32(headOff))
	for steps := 0; cur != 0 && steps < 32; steps++ {
		bsize := p.ReadU64(uint32(cur))
		next := p.ReadU64(uint32(cur + blockHdrSize))
		if bsize >= total {
			// Unlink.
			if prev == 0 {
				p.WriteU64(uint32(headOff), next)
			} else {
				p.WriteU64(uint32(prev+blockHdrSize), next)
			}
			p.WriteU64(uint32(cur+8), blockAlloc)
			return MakeOID(p.id, uint32(cur+blockHdrSize)), nil
		}
		prev = cur
		cur = next
	}

	// Bump allocation.
	bump := p.ReadU64(hdrBump)
	if bump+total > p.size {
		return NullOID, fmt.Errorf("pmo: pool %q full (%d of %d bytes)", p.name, bump, p.size)
	}
	p.WriteU64(hdrBump, bump+total)
	p.WriteU64(uint32(bump), total)
	p.WriteU64(uint32(bump+8), blockAlloc)
	return MakeOID(p.id, uint32(bump+blockHdrSize)), nil
}

// Free releases an allocation (Table I pfree). Double frees and foreign
// OIDs are rejected.
func (p *Pool) Free(o OID) error {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	if o.Pool() != p.id {
		return fmt.Errorf("pmo: %v does not belong to pool %q (id %d)", o, p.name, p.id)
	}
	off := uint64(o.Offset())
	if off < blockHdrSize || off >= p.size {
		return fmt.Errorf("pmo: %v out of range", o)
	}
	hdr := off - blockHdrSize
	state := p.ReadU64(uint32(hdr + 8))
	if state == blockFree {
		return fmt.Errorf("pmo: double free of %v", o)
	}
	if state != blockAlloc {
		return fmt.Errorf("pmo: %v is not an allocated block", o)
	}
	total := p.ReadU64(uint32(hdr))
	c := sizeClass(total)
	headOff := uint64(hdrFreeHeads + 8*c)
	head := p.ReadU64(uint32(headOff))
	p.WriteU64(uint32(hdr+8), blockFree)
	p.WriteU64(uint32(hdr+blockHdrSize), head) // next-free in payload
	p.WriteU64(uint32(headOff), hdr)
	return nil
}

// AllocSizeOf returns the usable payload size of an allocated OID.
func (p *Pool) AllocSizeOf(o OID) (uint64, error) {
	p.allocMu.Lock()
	defer p.allocMu.Unlock()
	if o.Pool() != p.id {
		return 0, fmt.Errorf("pmo: %v does not belong to pool %d", o, p.id)
	}
	hdr := uint64(o.Offset()) - blockHdrSize
	if p.readU64Raw(hdr+8) != blockAlloc {
		return 0, fmt.Errorf("pmo: %v is not an allocated block", o)
	}
	return p.readU64Raw(hdr) - blockHdrSize, nil
}

// BumpNext returns the bump-allocator cursor (tests and tools).
func (p *Pool) BumpNext() uint64 { return p.readU64Raw(hdrBump) }
