package pmo

import (
	"fmt"

	"domainvirt/internal/memlayout"
)

// CheckReport is the result of a pool integrity check (the fsck
// counterpart for PMOs): structural issues found, plus summary counts.
type CheckReport struct {
	Issues      []string
	AllocBlocks int
	FreeBlocks  int
	AllocBytes  uint64
	FreeBytes   uint64
}

// OK reports whether the check found no issues.
func (r *CheckReport) OK() bool { return len(r.Issues) == 0 }

func (r *CheckReport) addf(format string, args ...interface{}) {
	r.Issues = append(r.Issues, fmt.Sprintf(format, args...))
}

// Check validates the pool's persistent metadata: header magic and
// geometry, the block heap (every byte between the first block and the
// bump cursor is tiled by well-formed blocks), the free lists (in-range,
// acyclic, every entry marked free), and the transaction log state word.
func (p *Pool) Check() *CheckReport {
	r := &CheckReport{}

	// Header.
	if got := p.readU64Raw(hdrMagic); got != poolMagic {
		r.addf("bad header magic %#x", got)
		return r // nothing else is trustworthy
	}
	if got := p.readU64Raw(hdrPoolID); got != uint64(p.id) {
		r.addf("header pool ID %d != catalog ID %d", got, p.id)
	}
	if got := p.readU64Raw(hdrSize); got != p.size {
		r.addf("header size %d != catalog size %d", got, p.size)
	}
	logOff := p.readU64Raw(hdrLogOff)
	logSize := p.readU64Raw(hdrLogSize)
	if logSize > 0 && (logOff < memlayout.PageSize || logOff+logSize > p.size) {
		r.addf("log area [%#x,%#x) out of range", logOff, logOff+logSize)
	}
	heapStart := memlayout.AlignUp(logOff+logSize, 16)
	bump := p.readU64Raw(hdrBump)
	if bump < heapStart || bump > p.size {
		r.addf("bump cursor %#x outside heap [%#x,%#x]", bump, heapStart, p.size)
		return r
	}

	// Heap tiling: blocks must exactly cover [heapStart, bump).
	freeAt := make(map[uint64]bool)
	off := heapStart
	for off < bump {
		size := p.readU64Raw(off)
		state := p.readU64Raw(off + 8)
		if size < minBlock || size%16 != 0 || off+size > bump {
			r.addf("block at %#x has bad size %d", off, size)
			break
		}
		switch state {
		case blockAlloc:
			r.AllocBlocks++
			r.AllocBytes += size
		case blockFree:
			r.FreeBlocks++
			r.FreeBytes += size
			freeAt[off] = true
		default:
			r.addf("block at %#x has bad state %#x", off, state)
		}
		off += size
	}
	if off != bump && len(r.Issues) == 0 {
		r.addf("heap tiling ends at %#x, bump is %#x", off, bump)
	}

	// Free lists: acyclic, in-range, all members marked free, and every
	// listed block discovered by the heap walk.
	listed := 0
	for c := 0; c < numSizeClasses; c++ {
		seen := make(map[uint64]bool)
		cur := p.readU64Raw(uint64(hdrFreeHeads + 8*c))
		for cur != 0 {
			if seen[cur] {
				r.addf("free list class %d has a cycle at %#x", c, cur)
				break
			}
			seen[cur] = true
			if cur < heapStart || cur >= bump {
				r.addf("free list class %d entry %#x out of heap", c, cur)
				break
			}
			if !freeAt[cur] {
				r.addf("free list class %d entry %#x is not a free block", c, cur)
				break
			}
			listed++
			cur = p.readU64Raw(cur + blockHdrSize)
		}
	}
	if listed != r.FreeBlocks && len(r.Issues) == 0 {
		r.addf("free lists hold %d blocks, heap walk found %d", listed, r.FreeBlocks)
	}

	// Transaction log state word.
	if logSize > 0 {
		switch st := p.readU64Raw(logOff + logStateOffCheck); st {
		case 0, 1, 2:
		default:
			r.addf("log state word is %#x", st)
		}
	}
	return r
}

// logStateOffCheck mirrors txn's log layout (state word first) without an
// import cycle.
const logStateOffCheck = 0
