package pmo

import (
	"testing"

	"domainvirt/internal/core"
)

// TestExclusiveWriterSharing enforces the paper's inter-process policy:
// one writable attachment excludes everything else; read-only
// attachments coexist.
func TestExclusiveWriterSharing(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("shared", 8<<20, ModeDefault, "owner")

	writer := NewSpace(nil)
	if _, err := writer.Attach(p, core.PermRW, ""); err != nil {
		t.Fatal(err)
	}
	// A second attachment of any kind is rejected while a writer holds it.
	reader := NewSpace(nil)
	if _, err := reader.Attach(p, core.PermR, ""); err == nil {
		t.Fatal("reader attached alongside an exclusive writer")
	}
	if _, err := NewSpace(nil).Attach(p, core.PermRW, ""); err == nil {
		t.Fatal("second writer attached")
	}
	if err := writer.Detach(p); err != nil {
		t.Fatal(err)
	}

	// Multiple readers coexist.
	r1, r2 := NewSpace(nil), NewSpace(nil)
	a1, err := r1.Attach(p, core.PermR, "")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := r2.Attach(p, core.PermR, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Attachments()) != 2 {
		t.Fatalf("attachments = %d", len(p.Attachments()))
	}
	// No writer may join while readers hold it.
	if _, err := NewSpace(nil).Attach(p, core.PermRW, ""); err == nil {
		t.Fatal("writer attached alongside readers")
	}
	// Readers see the data; their write attempts are dropped.
	o, _ := p.Alloc(64) // via primary attachment (read-only: alloc writes dropped)
	_ = o
	a1.WriteU64(4096, 77)
	if a1.ReadU64(4096) != 0 || a2.ReadU64(4096) != 0 {
		t.Error("write through read-only attachment reached memory")
	}
	if err := r1.Detach(p); err != nil {
		t.Fatal(err)
	}
	if err := r2.Detach(p); err != nil {
		t.Fatal(err)
	}
	// With all readers gone, a writer may attach again.
	if _, err := NewSpace(nil).Attach(p, core.PermRW, ""); err != nil {
		t.Fatalf("writer after readers detached: %v", err)
	}
}

// TestSharedReadersSeparateDomainsPerSpace: each space's attachment has
// its own VA region, and detaching one space leaves the other readable.
func TestSharedReadersIndependentRegions(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("shared", 8<<20, ModeDefault, "owner")
	// Populate while exclusively writable.
	w := NewSpace(nil)
	aw, _ := w.Attach(p, core.PermRW, "")
	aw.WriteU64(4096, 0xFEED)
	if err := w.Detach(p); err != nil {
		t.Fatal(err)
	}

	r1, r2 := NewSpace(nil), NewSpace(nil)
	a1, _ := r1.Attach(p, core.PermR, "")
	a2, _ := r2.Attach(p, core.PermR, "")
	if a1.Region == a2.Region && a1 != a2 {
		t.Log("note: distinct spaces chose the same VA region (allowed)")
	}
	if a1.ReadU64(4096) != 0xFEED || a2.ReadU64(4096) != 0xFEED {
		t.Error("shared readers do not see the data")
	}
	if err := r1.Detach(p); err != nil {
		t.Fatal(err)
	}
	if a2.ReadU64(4096) != 0xFEED {
		t.Error("detaching one reader broke the other")
	}
}
