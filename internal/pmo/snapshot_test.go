package pmo

import (
	"testing"

	"domainvirt/internal/core"
)

func TestSnapshot(t *testing.T) {
	s := NewStore()
	src, _ := s.Create("orig", 8<<20, ModeDefault, "alice")
	o, _ := src.Alloc(64)
	src.WriteU64(o.Offset(), 0xFACE)
	src.SetRoot(o)

	cp, err := s.Snapshot("orig", "backup", "bob")
	if err != nil {
		t.Fatal(err)
	}
	if cp.ID() == src.ID() {
		t.Error("snapshot shares the source's ID")
	}
	if cp.ReadU64(cp.Root().Offset()) != 0xFACE {
		t.Error("snapshot lost data")
	}
	if cp.readU64Raw(hdrPoolID) != uint64(cp.ID()) {
		t.Error("snapshot header still carries the source's ID")
	}
	// Deep copy: mutating one side never affects the other.
	src.WriteU64(o.Offset(), 1)
	if cp.ReadU64(cp.Root().Offset()) != 0xFACE {
		t.Error("snapshot aliases the source's frames")
	}
	cp.WriteU64(cp.Root().Offset(), 2)
	if src.ReadU64(o.Offset()) != 1 {
		t.Error("source aliases the snapshot's frames")
	}
	// The snapshot is structurally sound.
	if rep := cp.Check(); !rep.OK() {
		t.Errorf("snapshot fails verification: %v", rep.Issues)
	}
	// Both attachable independently (source has no writer).
	if _, err := NewSpace(nil).Attach(cp, core.PermRW, ""); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotRefusesWriteAttachedSource(t *testing.T) {
	s := NewStore()
	src, _ := s.Create("orig", 8<<20, ModeDefault, "alice")
	sp := NewSpace(nil)
	if _, err := sp.Attach(src, core.PermRW, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Snapshot("orig", "backup", "bob"); err == nil {
		t.Error("snapshot of a write-attached pool allowed")
	}
	_ = sp.Detach(src)
	if _, err := s.Snapshot("orig", "backup", "bob"); err != nil {
		t.Errorf("snapshot after detach: %v", err)
	}
	if _, err := s.Snapshot("orig", "backup", "bob"); err == nil {
		t.Error("duplicate snapshot name allowed")
	}
	if _, err := s.Snapshot("missing", "x", "bob"); err == nil {
		t.Error("snapshot of missing pool allowed")
	}
}
