package pmo

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/trace"
)

func TestOIDRoundTrip(t *testing.T) {
	f := func(pool, off uint32) bool {
		o := MakeOID(pool, off)
		return o.Pool() == pool && o.Offset() == off
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if !NullOID.IsNull() || MakeOID(1, 0).IsNull() {
		t.Error("null detection broken")
	}
	if MakeOID(3, 16).Add(8) != MakeOID(3, 24) {
		t.Error("Add broken")
	}
}

func TestPoolCreateAndHeader(t *testing.T) {
	s := NewStore()
	p, err := s.Create("data", 8<<20, ModeDefault, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if p.ID() == 0 || p.Size() != 8<<20 || p.Name() != "data" || p.Owner() != "alice" {
		t.Errorf("pool metadata wrong: %+v", p)
	}
	logOff, logSize := p.LogArea()
	if logOff != memlayout.PageSize || logSize != DefaultLogSize {
		t.Errorf("log area = (%d,%d)", logOff, logSize)
	}
	if !p.Root().IsNull() {
		t.Error("fresh pool has a root")
	}
	p.SetRoot(MakeOID(p.ID(), 4096))
	if p.Root().Offset() != 4096 {
		t.Error("root not persisted")
	}
}

func TestStoreNamespace(t *testing.T) {
	s := NewStore()
	if _, err := s.Create("", 8<<20, ModeDefault, "a"); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := s.Create("x/y", 8<<20, ModeDefault, "a"); err == nil {
		t.Error("path separator accepted")
	}
	if _, err := s.Create("tiny", 4096, ModeDefault, "a"); err == nil {
		t.Error("too-small pool accepted")
	}
	if _, err := s.Create("p", 8<<20, ModeDefault, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Create("p", 8<<20, ModeDefault, "a"); err == nil {
		t.Error("duplicate name accepted")
	}
	infos := s.List()
	if len(infos) != 1 || infos[0].Name != "p" {
		t.Errorf("List = %+v", infos)
	}
	if err := s.Remove("p"); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get("p"); ok {
		t.Error("removed pool still present")
	}
}

func TestStorePermissions(t *testing.T) {
	s := NewStore()
	if _, err := s.Create("secret", 8<<20, ModeOwnerRead|ModeOwnerWrite, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("secret", "alice", true); err != nil {
		t.Errorf("owner write denied: %v", err)
	}
	if _, err := s.Open("secret", "bob", false); err == nil {
		t.Error("other read allowed on owner-only pool")
	}
	if _, err := s.Create("shared", 8<<20, ModeDefault, "alice"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Open("shared", "bob", false); err != nil {
		t.Errorf("other read denied on default mode: %v", err)
	}
	if _, err := s.Open("shared", "bob", true); err == nil {
		t.Error("other write allowed on default mode")
	}
	if _, err := s.Open("missing", "alice", false); err == nil {
		t.Error("missing pool opened")
	}
}

func TestAllocatorInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore()
		p, err := s.Create("a", 4<<20, ModeDefault, "t")
		if err != nil {
			t.Fatal(err)
		}
		type alloc struct {
			oid  OID
			size uint64
		}
		var live []alloc
		overlaps := func(o OID, size uint64) bool {
			lo := uint64(o.Offset())
			hi := lo + size
			for _, a := range live {
				alo := uint64(a.oid.Offset())
				ahi := alo + a.size
				if lo < ahi && alo < hi {
					return true
				}
			}
			return false
		}
		for i := 0; i < 300; i++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				size := uint64(rng.Intn(500) + 1)
				o, err := p.Alloc(size)
				if err != nil {
					t.Fatal(err)
				}
				if o.Offset()%16 != 0 {
					return false // misaligned
				}
				if uint64(o.Offset())+size > p.Size() {
					return false // out of bounds
				}
				if overlaps(o, size) {
					return false // overlapping live allocation
				}
				live = append(live, alloc{o, size})
			} else {
				i := rng.Intn(len(live))
				if err := p.Free(live[i].oid); err != nil {
					t.Fatalf("free: %v", err)
				}
				live = append(live[:i], live[i+1:]...)
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorErrors(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("a", 8<<20, ModeDefault, "t")
	q, _ := s.Create("b", 8<<20, ModeDefault, "t")
	o, err := p.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Free(o); err == nil {
		t.Error("foreign free accepted")
	}
	if err := p.Free(o); err != nil {
		t.Fatal(err)
	}
	if err := p.Free(o); err == nil {
		t.Error("double free accepted")
	}
	if err := p.Free(MakeOID(p.ID(), 64)); err == nil {
		t.Error("free of non-block accepted")
	}
	// Exhaustion.
	small, _ := s.Create("small", 16<<10, ModeDefault, "t")
	for {
		if _, err := small.Alloc(1 << 10); err != nil {
			break
		}
	}
}

func TestAllocatorReuse(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("a", 8<<20, ModeDefault, "t")
	o1, _ := p.Alloc(64)
	if err := p.Free(o1); err != nil {
		t.Fatal(err)
	}
	o2, _ := p.Alloc(64)
	if o1 != o2 {
		t.Errorf("freed block not reused: %v then %v", o1, o2)
	}
	if sz, err := p.AllocSizeOf(o2); err != nil || sz < 64 {
		t.Errorf("AllocSizeOf = (%d,%v)", sz, err)
	}
}

func TestPoolDataRoundTrip(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("a", 8<<20, ModeDefault, "t")
	o, _ := p.Alloc(256)
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	p.Write(o.Offset(), src)
	dst := make([]byte, 256)
	p.Read(o.Offset(), dst)
	if !bytes.Equal(src, dst) {
		t.Error("data round trip failed")
	}
	p.WriteU64(o.Offset(), 0xDEADBEEF)
	if p.ReadU64(o.Offset()) != 0xDEADBEEF {
		t.Error("u64 round trip failed")
	}
	// Cross-page write/read.
	big := make([]byte, 3*memlayout.PageSize)
	for i := range big {
		big[i] = byte(i * 7)
	}
	o2, _ := p.Alloc(uint64(len(big)))
	p.Write(o2.Offset(), big)
	got := make([]byte, len(big))
	p.Read(o2.Offset(), got)
	if !bytes.Equal(big, got) {
		t.Error("cross-page round trip failed")
	}
	// Untouched memory reads zero.
	zero := make([]byte, 64)
	p.Read(uint32(p.Size()-64), zero)
	for _, b := range zero {
		if b != 0 {
			t.Fatal("fresh persistent memory not zeroed")
		}
	}
}

func TestSpaceAttachDetach(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("a", 8<<20, ModeDefault, "t")
	var cnt trace.Counter
	sp := NewSpace(&cnt)
	att, err := sp.Attach(p, core.PermRW, "")
	if err != nil {
		t.Fatal(err)
	}
	if att.Domain != core.DomainID(p.ID()) {
		t.Errorf("domain = %d, want pool ID %d", att.Domain, p.ID())
	}
	// 8 MB attaches at 2 MB granularity: base must be 8 MB-aligned and
	// footprint exactly 8 MB.
	if att.Region.Size != 8<<20 || !memlayout.IsAligned(uint64(att.Region.Base), 8<<20) {
		t.Errorf("region = %v", att.Region)
	}
	if cnt.Attaches != 1 {
		t.Error("attach event not emitted")
	}
	if _, err := sp.Attach(p, core.PermRW, ""); err == nil {
		t.Error("double attach accepted")
	}
	// Accesses emit events at the attached VA.
	o, _ := p.Alloc(64)
	p.WriteU64(o.Offset(), 1)
	if cnt.Stores == 0 {
		t.Error("store event not emitted")
	}
	if err := sp.Detach(p); err != nil {
		t.Fatal(err)
	}
	if cnt.Detaches != 1 {
		t.Error("detach event not emitted")
	}
	if err := sp.Detach(p); err == nil {
		t.Error("double detach accepted")
	}
}

func TestSpaceAttachKey(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("a", 8<<20, ModeDefault, "t")
	p.SetAttachKey("sesame")
	sp := NewSpace(nil)
	if _, err := sp.Attach(p, core.PermRW, "wrong"); err == nil {
		t.Error("wrong attach key accepted")
	}
	if _, err := sp.Attach(p, core.PermRW, "sesame"); err != nil {
		t.Errorf("correct attach key rejected: %v", err)
	}
}

func TestSpaceDirect(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("a", 8<<20, ModeDefault, "t")
	sp := NewSpace(nil)
	att, _ := sp.Attach(p, core.PermRW, "")
	o := MakeOID(p.ID(), 4096)
	va, err := sp.Direct(o)
	if err != nil {
		t.Fatal(err)
	}
	if va != att.Region.Base+4096 {
		t.Errorf("Direct = %#x", uint64(va))
	}
	if _, err := sp.Direct(MakeOID(9999, 0)); err == nil {
		t.Error("Direct on unattached pool succeeded")
	}
}

// TestRelocatability is the PMO relocation property: an object graph
// written at one attach base is traversable after reattaching at a
// different base, because pointers are OIDs.
func TestRelocatability(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("a", 8<<20, ModeDefault, "t")
	sp := NewSpace(nil)
	if _, err := sp.Attach(p, core.PermRW, ""); err != nil {
		t.Fatal(err)
	}
	// Build a 3-node linked list: root -> n1 -> n2.
	var prev OID
	for i := 2; i >= 0; i-- {
		n, _ := p.Alloc(16)
		p.WriteU64(n.Offset(), uint64(i*100))
		p.WriteOID(n.Offset()+8, prev)
		prev = n
	}
	p.SetRoot(prev)
	base1, _ := sp.Direct(prev)
	if err := sp.Detach(p); err != nil {
		t.Fatal(err)
	}

	// Reattach in a fresh space with randomized bases.
	sp2 := NewSpace(nil)
	sp2.RandomizeBases(rand.New(rand.NewSource(5)))
	if _, err := sp2.Attach(p, core.PermR, ""); err != nil {
		t.Fatal(err)
	}
	base2, _ := sp2.Direct(p.Root())
	if base1 == base2 {
		t.Log("bases coincidentally equal; relocation still exercised")
	}
	var vals []uint64
	for cur := p.Root(); !cur.IsNull(); cur = p.ReadOID(cur.Offset() + 8) {
		vals = append(vals, p.ReadU64(cur.Offset()))
	}
	if len(vals) != 3 || vals[0] != 0 || vals[1] != 100 || vals[2] != 200 {
		t.Errorf("traversal after relocation = %v", vals)
	}
}

func TestStorePersistenceRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Create("persist", 8<<20, ModeDefault, "alice")
	if err != nil {
		t.Fatal(err)
	}
	p.SetAttachKey("k")
	o, _ := p.Alloc(128)
	p.WriteU64(o.Offset(), 0xCAFE)
	p.SetRoot(o)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := filepath.Glob(filepath.Join(dir, "*.pmo")); err != nil {
		t.Fatal(err)
	}

	// Reopen: data, metadata, and allocator state survive.
	s2, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	p2, ok := s2.Get("persist")
	if !ok {
		t.Fatal("pool lost")
	}
	if p2.ID() != p.ID() || p2.Owner() != "alice" || p2.Size() != 8<<20 {
		t.Errorf("metadata lost: %+v", p2)
	}
	if p2.ReadU64(p2.Root().Offset()) != 0xCAFE {
		t.Error("data lost")
	}
	// Allocator continues past the persisted cursor.
	o2, err := p2.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if o2.Offset() <= o.Offset() {
		t.Errorf("allocator state lost: new alloc %v not after %v", o2, o)
	}
	// Attach key survived.
	sp := NewSpace(nil)
	if _, err := sp.Attach(p2, core.PermRW, "wrong"); err == nil {
		t.Error("attach key lost in persistence")
	}
	// New pools get fresh IDs.
	p3, err := s2.Create("another", 8<<20, ModeDefault, "alice")
	if err != nil {
		t.Fatal(err)
	}
	if p3.ID() <= p2.ID() {
		t.Errorf("ID collision: %d <= %d", p3.ID(), p2.ID())
	}
}

func TestPoolBoundsChecked(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("a", 8<<20, ModeDefault, "t")
	if err := p.checkRange(p.Size()-4, 8); err == nil {
		t.Error("out-of-bounds range accepted")
	}
	if err := p.checkRange(16, 8); err != nil {
		t.Errorf("in-bounds range rejected: %v", err)
	}
}

func TestOutOfPoolAccessPanics(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("b", 16<<10, ModeDefault, "t")
	for _, op := range []func(){
		func() { p.ReadU64(uint32(p.Size())) },
		func() { p.WriteU64(uint32(p.Size()-4), 1) },
		func() { p.Read(uint32(p.Size()-8), make([]byte, 64)) },
		func() { p.Write(uint32(p.Size()), []byte{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-pool access did not panic")
				}
			}()
			op()
		}()
	}
	// In-bounds boundary access is fine.
	p.WriteU64(uint32(p.Size()-8), 7)
	if p.ReadU64(uint32(p.Size()-8)) != 7 {
		t.Error("boundary access failed")
	}
}
