package pmo

import (
	"fmt"
	"math/rand"
	"sync"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/trace"
)

// PoolRegionBase is where PMO attachments start in the virtual address
// space, far above the volatile heap.
const PoolRegionBase = memlayout.VA(0x2000_0000_0000)

// Space models the PMO-relevant part of a process address space: which
// pools are attached where, under which domain ID, and to which
// instrumentation sink accesses flow. A nil sink gives pure library mode.
//
// Attach/Detach and the attachment map are safe for concurrent use; the
// Thread field and accesses that flow into a non-nil sink are not (the
// simulator replays a single interleaved trace), so callers that share a
// sinked Space across goroutines must serialize Thread updates and
// accesses externally, as internal/serve does per shard.
type Space struct {
	sink trace.Sink
	// Thread is the thread performing subsequent pool accesses and
	// permission changes.
	Thread core.ThreadID

	mu       sync.Mutex // guards nextBase and attached
	nextBase memlayout.VA
	attached map[uint32]*Attachment
	rng      *rand.Rand // non-nil randomizes attach bases (relocation)
}

// Attachment binds an attached pool to its VA region and domain.
type Attachment struct {
	Pool   *Pool
	Region memlayout.Region
	Domain core.DomainID
	Perm   core.Perm
	space  *Space
}

// NewSpace returns a Space emitting events to sink (which may be nil).
func NewSpace(sink trace.Sink) *Space {
	return &Space{
		sink:     sink,
		Thread:   1,
		nextBase: PoolRegionBase,
		attached: make(map[uint32]*Attachment),
	}
}

// RandomizeBases makes subsequent attaches pick randomized base addresses
// (exercising PMO relocatability), driven by rng for determinism.
func (s *Space) RandomizeBases(rng *rand.Rand) { s.rng = rng }

// Sink returns the space's instrumentation sink.
func (s *Space) Sink() trace.Sink { return s.sink }

// nextPow2 rounds v up to a power of two.
func nextPow2(v uint64) uint64 {
	n := uint64(1)
	for n < v {
		n <<= 1
	}
	return n
}

// Attach maps pool p into the address space with the given intent
// permission (the attach system call). The region is aligned to the
// page-table-level granularity the PMO size requires; its domain ID is
// the pool ID. Page permissions follow the intent: an R attach maps the
// pool read-only.
func (s *Space) Attach(p *Pool, perm core.Perm, attachKey string) (*Attachment, error) {
	_, _, footprint := memlayout.AttachLevel(p.size)
	align := nextPow2(footprint)

	s.mu.Lock()
	if _, dup := s.attached[p.id]; dup {
		s.mu.Unlock()
		return nil, fmt.Errorf("pmo: pool id %d already attached in this space", p.id)
	}
	base := memlayout.VA(memlayout.AlignUp(uint64(s.nextBase), align))
	if s.rng != nil {
		slot := uint64(s.rng.Intn(1 << 12))
		base = memlayout.VA(memlayout.AlignUp(uint64(s.nextBase)+slot*align, align))
	}
	region := memlayout.Region{Base: base, Size: footprint}
	s.nextBase = region.End()

	att := &Attachment{
		Pool:   p,
		Region: region,
		Domain: core.DomainID(p.id),
		Perm:   perm,
		space:  s,
	}
	// Reserve the slot before dropping s.mu so a concurrent attach of
	// the same pool into this space stays a duplicate.
	s.attached[p.id] = att
	s.mu.Unlock()

	// The sharing-policy check and registration are one atomic step on
	// the pool, so concurrent attaches from different spaces cannot both
	// win an exclusive writable attachment.
	if err := p.reserveAttachment(att, attachKey); err != nil {
		s.mu.Lock()
		delete(s.attached, p.id)
		s.mu.Unlock()
		return nil, err
	}
	if s.sink != nil {
		if err := s.sink.Attach(att.Domain, region, perm); err != nil {
			p.releaseAttachment(att)
			s.mu.Lock()
			delete(s.attached, p.id)
			s.mu.Unlock()
			return nil, err
		}
	}
	return att, nil
}

// Detach unmaps pool p from this space (the detach system call).
func (s *Space) Detach(p *Pool) error {
	s.mu.Lock()
	att, ok := s.attached[p.id]
	if !ok || att.Pool != p {
		s.mu.Unlock()
		return fmt.Errorf("pmo: pool %q not attached to this space", p.name)
	}
	delete(s.attached, p.id)
	s.mu.Unlock()
	if s.sink != nil {
		s.sink.Detach(att.Domain)
	}
	p.releaseAttachment(att)
	return nil
}

// SetPerm issues a SETPERM for the attached pool's domain on behalf of
// the space's current thread, from the given instruction site.
func (s *Space) SetPerm(p *Pool, perm core.Perm, site core.SiteID) error {
	s.mu.Lock()
	att, ok := s.attached[p.id]
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("pmo: pool %q not attached to this space", p.name)
	}
	if s.sink != nil {
		s.sink.SetPerm(s.Thread, att.Domain, perm, site)
	}
	return nil
}

// Fence emits a persist barrier.
func (s *Space) Fence() {
	if s.sink != nil {
		s.sink.Fence(s.Thread)
	}
}

// Instr accounts n non-memory instructions on the current thread.
func (s *Space) Instr(n uint64) {
	if s.sink != nil {
		s.sink.Instr(s.Thread, n)
	}
}

// AttachmentOf returns the attachment of pool id, if attached.
func (s *Space) AttachmentOf(id uint32) (*Attachment, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.attached[id]
	return a, ok
}

// Direct translates an OID to its current virtual address (Table I
// oid_direct). It fails when the OID's pool is not attached.
func (s *Space) Direct(o OID) (memlayout.VA, error) {
	s.mu.Lock()
	att, ok := s.attached[o.Pool()]
	s.mu.Unlock()
	if !ok {
		return 0, fmt.Errorf("pmo: pool %d of %v not attached", o.Pool(), o)
	}
	return att.Region.Base + memlayout.VA(o.Offset()), nil
}

// Fence emits a persist barrier on the attachment's space.
func (a *Attachment) Fence() { a.space.Fence() }

// Space returns the address space the attachment belongs to.
func (a *Attachment) Space() *Space { return a.space }

// emit forwards one pool access to the sink as a load/store at the
// attached virtual address, reporting whether it was permitted.
func (a *Attachment) emit(off uint64, size uint32, write bool) bool {
	if a.space.sink == nil {
		return true
	}
	va := a.Region.Base + memlayout.VA(off)
	return a.space.sink.Access(a.space.Thread, va, size, write)
}

// Fetch emits an instruction fetch from off in the attached pool —
// executing code stored in a PMO. Per the paper's executable-only memory
// semantics, fetches succeed even when the domain is inaccessible to
// loads and stores.
func (a *Attachment) Fetch(off uint32) bool {
	if a.space.sink == nil {
		return true
	}
	return a.space.sink.Fetch(a.space.Thread, a.Region.Base+memlayout.VA(off))
}
