package pmo

import (
	"math/rand"
	"testing"
)

func TestCheckCleanPool(t *testing.T) {
	s := NewStore()
	p, _ := s.Create("c", 8<<20, ModeDefault, "t")
	rng := rand.New(rand.NewSource(2))
	var live []OID
	for i := 0; i < 500; i++ {
		if rng.Intn(3) != 0 || len(live) == 0 {
			o, err := p.Alloc(uint64(rng.Intn(400) + 1))
			if err != nil {
				t.Fatal(err)
			}
			live = append(live, o)
		} else {
			i := rng.Intn(len(live))
			if err := p.Free(live[i]); err != nil {
				t.Fatal(err)
			}
			live = append(live[:i], live[i+1:]...)
		}
	}
	r := p.Check()
	if !r.OK() {
		t.Fatalf("clean pool flagged: %v", r.Issues)
	}
	if r.AllocBlocks != len(live) {
		t.Errorf("AllocBlocks = %d, want %d", r.AllocBlocks, len(live))
	}
	if r.FreeBlocks == 0 {
		t.Error("no free blocks counted despite frees")
	}
}

func TestCheckDetectsCorruption(t *testing.T) {
	mk := func() *Pool {
		s := NewStore()
		p, _ := s.Create("c", 8<<20, ModeDefault, "t")
		o, _ := p.Alloc(64)
		_ = p.Free(o)
		_, _ = p.Alloc(32)
		return p
	}

	t.Run("magic", func(t *testing.T) {
		p := mk()
		p.writeU64Raw(hdrMagic, 0x1234)
		if p.Check().OK() {
			t.Error("smashed magic not detected")
		}
	})
	t.Run("bump", func(t *testing.T) {
		p := mk()
		p.writeU64Raw(hdrBump, p.size+4096)
		if p.Check().OK() {
			t.Error("bump past pool end not detected")
		}
	})
	t.Run("block-state", func(t *testing.T) {
		p := mk()
		o, _ := p.Alloc(64)
		p.writeU64Raw(uint64(o.Offset())-8, 0xBADBAD) // smash state word
		if p.Check().OK() {
			t.Error("bad block state not detected")
		}
	})
	t.Run("block-size", func(t *testing.T) {
		p := mk()
		o, _ := p.Alloc(64)
		p.writeU64Raw(uint64(o.Offset())-blockHdrSize, 7) // misaligned size
		if p.Check().OK() {
			t.Error("bad block size not detected")
		}
	})
	t.Run("freelist-cycle", func(t *testing.T) {
		p := mk()
		a, _ := p.Alloc(64)
		b, _ := p.Alloc(64)
		_ = p.Free(a)
		_ = p.Free(b)
		// Point b's next-free at itself.
		hdrB := uint64(b.Offset()) - blockHdrSize
		p.writeU64Raw(hdrB+blockHdrSize, hdrB)
		if p.Check().OK() {
			t.Error("free-list cycle not detected")
		}
	})
	t.Run("log-state", func(t *testing.T) {
		p := mk()
		logOff, _ := p.LogArea()
		p.writeU64Raw(logOff, 99)
		if p.Check().OK() {
			t.Error("bad log state not detected")
		}
	})
}
