package pmo

import (
	"encoding/binary"
	"fmt"
	"sync"

	"domainvirt/internal/memlayout"
)

// Pool header layout (page 0 of every pool, persistent):
//
//	off   0: magic (8 bytes)
//	off   8: pool ID
//	off  16: pool size in bytes
//	off  24: root OID
//	off  32: bump allocator next-free offset
//	off  40: reserved log area offset
//	off  48: reserved log area size
//	off  56: free-list heads, one u64 offset per size class
const (
	poolMagic      = 0x504d4f504f4f4c31 // "PMOPOOL1"
	hdrMagic       = 0
	hdrPoolID      = 8
	hdrSize        = 16
	hdrRoot        = 24
	hdrBump        = 32
	hdrLogOff      = 40
	hdrLogSize     = 48
	hdrFreeHeads   = 56
	numSizeClasses = 16
	headerEnd      = hdrFreeHeads + 8*numSizeClasses

	// DefaultLogSize is the redo-log area reserved in each pool for
	// durable transactions.
	DefaultLogSize = 64 << 10
)

// Mode is a pool permission mode, Unix-style (owner/other, read/write).
type Mode uint16

// Mode bits.
const (
	ModeOwnerRead Mode = 1 << iota
	ModeOwnerWrite
	ModeOtherRead
	ModeOtherWrite
)

// ModeDefault grants the owner read/write and others read.
const ModeDefault = ModeOwnerRead | ModeOwnerWrite | ModeOtherRead

// Pool is one persistent memory object: a named, sized, permissioned
// container of persistent data reachable from a root object.
type Pool struct {
	name  string
	id    uint32
	size  uint64
	mode  Mode
	owner string
	// attachKey, when non-empty, must be presented at attach time —
	// the paper's finer-grain attach-key permission scheme.
	attachKey string

	// mu guards frames, dirty, atts, and writer. Pools may be shared
	// between address spaces (read-only sharing) and between a mutator
	// and the store's Sync/List/Snapshot, so the byte store and the
	// attachment list must be safe under concurrent use.
	mu sync.Mutex
	// allocMu serializes allocator read-modify-write sequences (bump
	// cursor, free-list heads), which span several locked byte accesses.
	allocMu sync.Mutex

	frames map[uint64]*[memlayout.PageSize]byte
	// hookStore/hookFence observe the pool's durable-media traffic for
	// fault-injection testing (see internal/persist). hookStore is called
	// under p.mu with the raw bytes of every store that reaches the
	// backing frames; it must not touch the pool and must copy src if it
	// retains it. hookFence is called outside p.mu on every persist
	// barrier issued through Fence.
	hookStore func(off uint64, src []byte)
	hookFence func()
	// atts are the current attachments. The paper's sharing policy is
	// enforced at attach time: a writable attachment is exclusive; any
	// number of read-only attachments may coexist.
	atts   []*Attachment
	writer *Attachment // the exclusive RW attachment, if any
	store  *Store
	dirty  bool
}

func newPool(name string, id uint32, size uint64, mode Mode, owner string) *Pool {
	p := &Pool{
		name:   name,
		id:     id,
		size:   size,
		mode:   mode,
		owner:  owner,
		frames: make(map[uint64]*[memlayout.PageSize]byte),
	}
	p.initHeader()
	return p
}

func (p *Pool) initHeader() {
	p.writeU64Raw(hdrMagic, poolMagic)
	p.writeU64Raw(hdrPoolID, uint64(p.id))
	p.writeU64Raw(hdrSize, p.size)
	p.writeU64Raw(hdrRoot, 0)
	logOff := uint64(memlayout.PageSize)
	logSize := uint64(DefaultLogSize)
	if logOff+logSize > p.size {
		logSize = 0
	}
	p.writeU64Raw(hdrLogOff, logOff)
	p.writeU64Raw(hdrLogSize, logSize)
	p.writeU64Raw(hdrBump, memlayout.AlignUp(logOff+logSize, 16))
}

// Name returns the pool's namespace name.
func (p *Pool) Name() string { return p.name }

// ID returns the pool ID, which doubles as the domain ID when attached.
func (p *Pool) ID() uint32 { return p.id }

// Size returns the pool capacity in bytes.
func (p *Pool) Size() uint64 { return p.size }

// Mode returns the pool permission mode.
func (p *Pool) Mode() Mode { return p.mode }

// Owner returns the owning user.
func (p *Pool) Owner() string { return p.owner }

// SetAttachKey installs the secret an attacher must present.
func (p *Pool) SetAttachKey(key string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.attachKey = key
}

// Attached reports whether the pool is currently attached anywhere.
func (p *Pool) Attached() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.atts) > 0
}

// Attachment returns the primary (first) attachment, or nil. Under
// read-only sharing, per-attachment accessors on Attachment route
// accesses through a specific space.
func (p *Pool) Attachment() *Attachment {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.atts) == 0 {
		return nil
	}
	return p.atts[0]
}

// Attachments returns all current attachments.
func (p *Pool) Attachments() []*Attachment {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Attachment, len(p.atts))
	copy(out, p.atts)
	return out
}

// reserveAttachment atomically checks the sharing policy and registers
// att, so two concurrent attaches cannot both pass the exclusivity
// check. The caller rolls back with releaseAttachment if the sink
// rejects the mapping.
func (p *Pool) reserveAttachment(att *Attachment, attachKey string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	// Inter-process sharing policy (Section IV-A): "a PMO may be
	// attached exclusively to only one process for writing, but may be
	// attached to multiple processes for reading."
	if att.Perm.CanWrite() && len(p.atts) > 0 {
		return fmt.Errorf("pmo: pool %q already attached; writable attachment must be exclusive", p.name)
	}
	if p.writer != nil {
		return fmt.Errorf("pmo: pool %q is attached for writing elsewhere", p.name)
	}
	if p.attachKey != "" && p.attachKey != attachKey {
		return fmt.Errorf("pmo: pool %q: attach key mismatch", p.name)
	}
	p.atts = append(p.atts, att)
	if att.Perm.CanWrite() {
		p.writer = att
	}
	return nil
}

// releaseAttachment unregisters att.
func (p *Pool) releaseAttachment(att *Attachment) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, a := range p.atts {
		if a == att {
			p.atts = append(p.atts[:i], p.atts[i+1:]...)
			break
		}
	}
	if p.writer == att {
		p.writer = nil
	}
}

// frame returns the backing frame for the page containing off, allocating
// it lazily (persistent memory is zero-initialized on first use).
// Callers must hold p.mu.
func (p *Pool) frame(off uint64, create bool) *[memlayout.PageSize]byte {
	idx := off >> memlayout.PageShift
	f := p.frames[idx]
	if f == nil && create {
		f = new([memlayout.PageSize]byte)
		p.frames[idx] = f
	}
	return f
}

// PopulatedPages returns the number of lazily-allocated backing frames.
func (p *Pool) PopulatedPages() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.frames)
}

// --- Raw (event-free) byte access, used before attach and by the store.

func (p *Pool) readU64Raw(off uint64) uint64 {
	var buf [8]byte
	p.readRaw(off, buf[:])
	return binary.LittleEndian.Uint64(buf[:])
}

func (p *Pool) writeU64Raw(off uint64, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	p.writeRaw(off, buf[:])
}

func (p *Pool) readRaw(off uint64, dst []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(dst) > 0 {
		pageOff := off & (memlayout.PageSize - 1)
		n := memlayout.PageSize - pageOff
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if f := p.frame(off, false); f != nil {
			copy(dst[:n], f[pageOff:pageOff+n])
		} else {
			for i := uint64(0); i < n; i++ {
				dst[i] = 0
			}
		}
		dst = dst[n:]
		off += n
	}
}

func (p *Pool) writeRaw(off uint64, src []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dirty = true
	if p.hookStore != nil {
		p.hookStore(off, src)
	}
	for len(src) > 0 {
		pageOff := off & (memlayout.PageSize - 1)
		n := memlayout.PageSize - pageOff
		if n > uint64(len(src)) {
			n = uint64(len(src))
		}
		f := p.frame(off, true)
		copy(f[pageOff:pageOff+n], src[:n])
		src = src[n:]
		off += n
	}
}

// --- Instrumented access: emits load/store events when attached to a
// simulated address space, then touches the backing bytes.

func (p *Pool) checkRange(off uint64, n uint64) error {
	if off+n > p.size || off+n < off {
		return fmt.Errorf("pmo: access [%#x,%#x) outside pool %q of size %#x", off, off+n, p.name, p.size)
	}
	return nil
}

// mustRange panics on out-of-pool accesses: unlike a protection fault
// (a policy decision), indexing past the pool is a caller bug, like
// indexing past a slice.
func (p *Pool) mustRange(off uint64, n uint64) {
	if err := p.checkRange(off, n); err != nil {
		panic(err)
	}
}

// ReadU64 loads a u64 at off, emitting a load event when attached. A
// load denied by the protection machinery never discloses the data: it
// returns zero.
func (p *Pool) ReadU64(off uint32) uint64 {
	p.mustRange(uint64(off), 8)
	if !p.emit(uint64(off), 8, false) {
		return 0
	}
	return p.readU64Raw(uint64(off))
}

// WriteU64 stores v at off, emitting a store event when attached. A
// denied store never reaches persistent memory.
func (p *Pool) WriteU64(off uint32, v uint64) {
	p.mustRange(uint64(off), 8)
	if !p.emit(uint64(off), 8, true) {
		return
	}
	p.writeU64Raw(uint64(off), v)
}

// ReadOID loads a persistent pointer at off.
func (p *Pool) ReadOID(off uint32) OID { return OID(p.ReadU64(off)) }

// WriteOID stores a persistent pointer at off.
func (p *Pool) WriteOID(off uint32, o OID) { p.WriteU64(off, uint64(o)) }

// Read copies len(dst) bytes from off, emitting load events. A denied
// load fills dst with zeros instead of the data.
func (p *Pool) Read(off uint32, dst []byte) {
	p.mustRange(uint64(off), uint64(len(dst)))
	if !p.emit(uint64(off), uint32(len(dst)), false) {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	p.readRaw(uint64(off), dst)
}

// Write copies src to off, emitting store events. A denied store never
// reaches persistent memory.
func (p *Pool) Write(off uint32, src []byte) {
	p.mustRange(uint64(off), uint64(len(src)))
	if !p.emit(uint64(off), uint32(len(src)), true) {
		return
	}
	p.writeRaw(uint64(off), src)
}

// emit forwards one access to the primary attachment's event sink, if
// any, and reports whether the access was permitted. The sink call is
// made outside p.mu: sinks are either nil or externally serialized (the
// simulator is single-threaded per machine), and holding the pool lock
// across it would invert the lock order against attach paths.
func (p *Pool) emit(off uint64, size uint32, write bool) bool {
	p.mu.Lock()
	var att *Attachment
	if len(p.atts) > 0 {
		att = p.atts[0]
	}
	p.mu.Unlock()
	if att != nil {
		return att.emit(off, size, write)
	}
	return true
}

// Root returns the root object OID (Table I pool_root); a null OID means
// the root has not been set.
func (p *Pool) Root() OID {
	if !p.emit(hdrRoot, 8, false) {
		return NullOID
	}
	return OID(p.readU64Raw(hdrRoot))
}

// SetRoot installs the root object.
func (p *Pool) SetRoot(o OID) {
	if !p.emit(hdrRoot, 8, true) {
		return
	}
	p.writeU64Raw(hdrRoot, uint64(o))
}

// LogArea returns the reserved redo-log region (offset, size).
func (p *Pool) LogArea() (uint64, uint64) {
	return p.readU64Raw(hdrLogOff), p.readU64Raw(hdrLogSize)
}

// SetPersistHooks installs (or, with nils, removes) observers of the
// pool's durable-media traffic: store fires for every byte range that
// reaches the backing frames, fence for every persist barrier issued via
// Fence. Used by the fault-injection layer in internal/persist.
func (p *Pool) SetPersistHooks(store func(off uint64, src []byte), fence func()) {
	p.mu.Lock()
	p.hookStore = store
	p.hookFence = fence
	p.mu.Unlock()
}

// Fence issues a persist barrier on behalf of this pool: it notifies a
// persist hook if installed and forwards to the primary attachment's
// space (unattached pools in pure library mode still notify the hook, so
// fault-injection sees the program's ordering intent).
func (p *Pool) Fence() {
	p.mu.Lock()
	hf := p.hookFence
	var att *Attachment
	if len(p.atts) > 0 {
		att = p.atts[0]
	}
	p.mu.Unlock()
	if hf != nil {
		hf()
	}
	if att != nil {
		att.Fence()
	}
}

// CopyImage returns the pool's full byte image — the simulated NVM
// contents, including header, log area, and data. Crash-injection
// testing snapshots images and rebuilds pools from faulted variants.
func (p *Pool) CopyImage() []byte {
	img := make([]byte, p.size)
	p.readRaw(0, img)
	return img
}

// LoadImage overwrites the pool's entire byte contents with img (which
// must be exactly Size() bytes), bypassing persist hooks and access
// instrumentation: it models restoring an NVM image after power loss.
func (p *Pool) LoadImage(img []byte) error {
	if uint64(len(img)) != p.size {
		return fmt.Errorf("pmo: image size %d != pool %q size %d", len(img), p.name, p.size)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dirty = true
	for off := uint64(0); off < p.size; off += memlayout.PageSize {
		n := uint64(memlayout.PageSize)
		if off+n > p.size {
			n = p.size - off
		}
		f := p.frame(off, true)
		copy(f[:n], img[off:off+n])
	}
	return nil
}
