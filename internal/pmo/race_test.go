package pmo

import (
	"fmt"
	"sync"
	"testing"

	"domainvirt/internal/core"
)

// These tests are meaningful under -race (scripts/ci.sh runs them that
// way): they drive the shared-state paths a concurrent PMO service
// exercises — parallel attach/detach of one pool from many spaces,
// parallel allocation, parallel byte access, and store maintenance
// racing mutators.

func TestRaceParallelReadAttachDetach(t *testing.T) {
	store := NewStore()
	p, err := store.Create("shared", 8<<20, ModeDefault, "srv")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sp := NewSpace(nil)
			for i := 0; i < 200; i++ {
				att, err := sp.Attach(p, core.PermR, "")
				if err != nil {
					t.Errorf("read attach: %v", err)
					return
				}
				att.ReadU64(4096)
				if err := sp.Detach(p); err != nil {
					t.Errorf("detach: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if p.Attached() {
		t.Error("pool still attached after all detaches")
	}
}

// TestRaceExclusiveWriterInvariant hammers writable attaches from many
// spaces; at most one may hold the pool at a time, and every loser must
// get an error rather than a second writer slot.
func TestRaceExclusiveWriterInvariant(t *testing.T) {
	store := NewStore()
	p, err := store.Create("excl", 8<<20, ModeDefault, "srv")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	var holds [workers]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sp := NewSpace(nil)
			for i := 0; i < 200; i++ {
				if _, err := sp.Attach(p, core.PermRW, ""); err != nil {
					continue // someone else holds it
				}
				holds[w]++
				p.WriteU64(4096, uint64(w))
				if err := sp.Detach(p); err != nil {
					t.Errorf("detach: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, h := range holds {
		total += h
	}
	if total == 0 {
		t.Error("no goroutine ever won the writable attachment")
	}
	if p.Attached() {
		t.Error("writer leaked")
	}
}

func TestRaceParallelAllocFree(t *testing.T) {
	store := NewStore()
	p, err := store.Create("heap", 8<<20, ModeDefault, "srv")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	oids := make([][]OID, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				o, err := p.Alloc(64)
				if err != nil {
					t.Errorf("alloc: %v", err)
					return
				}
				p.WriteU64(o.Offset(), uint64(w)<<32|uint64(i))
				oids[w] = append(oids[w], o)
			}
		}(w)
	}
	wg.Wait()
	// Every allocation must be distinct and hold its writer's value.
	seen := make(map[OID]bool)
	for w, os := range oids {
		for i, o := range os {
			if seen[o] {
				t.Fatalf("OID %v handed out twice", o)
			}
			seen[o] = true
			if got := p.ReadU64(o.Offset()); got != uint64(w)<<32|uint64(i) {
				t.Fatalf("allocation %v corrupted: %#x", o, got)
			}
		}
	}
	for _, os := range oids {
		for _, o := range os {
			if err := p.Free(o); err != nil {
				t.Fatalf("free: %v", err)
			}
		}
	}
}

// TestRaceStoreMaintenance runs List/Sync/Snapshot concurrently with
// writers and attach churn across many pools — the daemon's janitor and
// STATS paths against live sessions.
func TestRaceStoreMaintenance(t *testing.T) {
	dir := t.TempDir()
	store, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	const pools = 4
	for i := 0; i < pools; i++ {
		if _, err := store.Create(fmt.Sprintf("p%d", i), 1<<20, ModeDefault, "srv"); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < pools; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, _ := store.Get(fmt.Sprintf("p%d", i))
			sp := NewSpace(nil)
			for n := 0; n < 100; n++ {
				if _, err := sp.Attach(p, core.PermRW, ""); err != nil {
					t.Errorf("attach: %v", err)
					return
				}
				p.WriteU64(uint32(8192+8*(n%64)), uint64(n))
				if err := sp.Detach(p); err != nil {
					t.Errorf("detach: %v", err)
					return
				}
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 50; n++ {
			store.List()
			if err := store.Sync(); err != nil {
				t.Errorf("sync: %v", err)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 20; n++ {
			name := fmt.Sprintf("snap%d", n)
			// Snapshot legitimately fails while a writer is attached;
			// only unexpected errors count.
			if _, err := store.Snapshot("p0", name, "srv"); err == nil {
				if err := store.Remove(name); err != nil {
					t.Errorf("remove: %v", err)
					return
				}
			}
		}
	}()
	wg.Wait()
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestRaceParallelByteAccessDisjointPages(t *testing.T) {
	store := NewStore()
	p, err := store.Create("bytes", 8<<20, ModeDefault, "srv")
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint32(1<<20 + w*1<<16)
			buf := make([]byte, 256)
			for i := range buf {
				buf[i] = byte(w)
			}
			for n := 0; n < 200; n++ {
				p.Write(base, buf)
				got := make([]byte, len(buf))
				p.Read(base, got)
				for i := range got {
					if got[i] != byte(w) {
						t.Errorf("worker %d read back %d at %d", w, got[i], i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
