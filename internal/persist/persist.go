// Package persist provides a trace-level persist-ordering checker in the
// spirit of PMTest (Liu et al., ASPLOS'19), which the paper cites as the
// standard way to validate persistent-memory programs. It consumes the
// instrumentation event stream and tracks, per thread, the epoch of every
// NVM store: persist barriers (Fence events) close an epoch. Rules such
// as write-ahead logging — "the commit record must persist strictly after
// every staged log entry, and home updates strictly after the commit
// record" — become assertions over store epochs.
package persist

import (
	"fmt"
	"sort"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/trace"
)

// Epoch numbers persist order within one thread: all stores in epoch N
// are guaranteed durable before any store in epoch N+1 *only if* a fence
// separates them.
type Epoch uint64

// StoreRecord is the last store observed to an address.
type StoreRecord struct {
	Thread core.ThreadID
	Epoch  Epoch
	Seq    uint64 // global program order
}

// DefaultMaxStoreRecords bounds the per-Checker store map: tracking the
// last-store epoch of every 8-byte location is unbounded state on long
// fault-injection runs, so locations beyond the cap are counted but not
// recorded (the same policy sim.Config.MaxFaultRecords applies to fault
// diagnostics). Ordering checks that name a dropped location fail loudly
// with "no store observed" rather than silently passing.
const DefaultMaxStoreRecords = 1 << 20

// Checker is a pass-through trace.Sink recording store epochs.
type Checker struct {
	next          trace.Sink
	epochs        map[core.ThreadID]Epoch
	stores        map[memlayout.VA]StoreRecord
	seq           uint64
	maxStores     int
	storesDropped uint64
}

// NewChecker wraps next (nil for audit-only use).
func NewChecker(next trace.Sink) *Checker {
	if next == nil {
		next = trace.Discard{}
	}
	return &Checker{
		next:      next,
		epochs:    make(map[core.ThreadID]Epoch),
		stores:    make(map[memlayout.VA]StoreRecord),
		maxStores: DefaultMaxStoreRecords,
	}
}

// SetMaxStores overrides the retained-location cap (n <= 0 keeps the
// current cap).
func (c *Checker) SetMaxStores(n int) {
	if n > 0 {
		c.maxStores = n
	}
}

// StoresDropped returns how many distinct 8-byte locations were not
// recorded after the store map reached its cap. Epoch updates to already
// -tracked locations are never dropped.
func (c *Checker) StoresDropped() uint64 { return c.storesDropped }

// Instr implements trace.Sink.
func (c *Checker) Instr(th core.ThreadID, n uint64) { c.next.Instr(th, n) }

// Access implements trace.Sink: stores are recorded line by line with the
// thread's current epoch.
func (c *Checker) Access(th core.ThreadID, va memlayout.VA, size uint32, write bool) bool {
	ok := c.next.Access(th, va, size, write)
	if write && ok {
		c.seq++
		rec := StoreRecord{Thread: th, Epoch: c.epochs[th], Seq: c.seq}
		memlayout.SplitLine(va, size, func(p memlayout.VA, n uint32) {
			for off := uint64(0); off < uint64(n); off += 8 {
				key := p + memlayout.VA(off)
				if _, tracked := c.stores[key]; !tracked && len(c.stores) >= c.maxStores {
					c.storesDropped++
					continue
				}
				c.stores[key] = rec
			}
		})
	}
	return ok
}

// Fetch implements trace.Sink.
func (c *Checker) Fetch(th core.ThreadID, va memlayout.VA) bool {
	return c.next.Fetch(th, va)
}

// SetPerm implements trace.Sink.
func (c *Checker) SetPerm(th core.ThreadID, d core.DomainID, p core.Perm, site core.SiteID) {
	c.next.SetPerm(th, d, p, site)
}

// Attach implements trace.Sink.
func (c *Checker) Attach(d core.DomainID, r memlayout.Region, perm core.Perm) error {
	return c.next.Attach(d, r, perm)
}

// Detach implements trace.Sink.
func (c *Checker) Detach(d core.DomainID) { c.next.Detach(d) }

// Fence implements trace.Sink: closes the thread's epoch.
func (c *Checker) Fence(th core.ThreadID) {
	c.epochs[th]++
	c.next.Fence(th)
}

// EpochOf returns the epoch of the last store covering va (8-byte
// granularity), if any store was observed.
func (c *Checker) EpochOf(va memlayout.VA) (StoreRecord, bool) {
	r, ok := c.stores[va&^7]
	return r, ok
}

// CheckPersistedBefore asserts that the last store to every address in
// firstVAs happened in a strictly earlier epoch than the last store to
// then — the ordering a persist barrier guarantees. It returns an error
// naming the first violation.
func (c *Checker) CheckPersistedBefore(firstVAs []memlayout.VA, then memlayout.VA) error {
	after, ok := c.EpochOf(then)
	if !ok {
		return fmt.Errorf("persist: no store observed at %#x", uint64(then))
	}
	sorted := append([]memlayout.VA(nil), firstVAs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, va := range sorted {
		before, ok := c.EpochOf(va)
		if !ok {
			return fmt.Errorf("persist: no store observed at %#x", uint64(va))
		}
		if before.Thread == after.Thread && before.Epoch >= after.Epoch {
			return fmt.Errorf("persist: store at %#x (epoch %d) not fenced before store at %#x (epoch %d)",
				uint64(va), before.Epoch, uint64(then), after.Epoch)
		}
	}
	return nil
}

// Stores returns the number of distinct 8-byte locations stored to.
func (c *Checker) Stores() int { return len(c.stores) }

var _ trace.Sink = (*Checker)(nil)
