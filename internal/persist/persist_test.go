package persist

import (
	"strings"
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/pmo"
	"domainvirt/internal/trace"
	"domainvirt/internal/txn"
)

func TestEpochsAdvanceOnFence(t *testing.T) {
	c := NewChecker(nil)
	c.Access(1, 0x1000, 8, true)
	c.Fence(1)
	c.Access(1, 0x2000, 8, true)
	a, _ := c.EpochOf(0x1000)
	b, _ := c.EpochOf(0x2000)
	if a.Epoch != 0 || b.Epoch != 1 {
		t.Errorf("epochs = %d, %d", a.Epoch, b.Epoch)
	}
	if err := c.CheckPersistedBefore([]memlayout.VA{0x1000}, 0x2000); err != nil {
		t.Errorf("fenced order flagged: %v", err)
	}
	// Same-epoch stores have no ordering guarantee.
	c.Access(1, 0x3000, 8, true)
	if err := c.CheckPersistedBefore([]memlayout.VA{0x2000}, 0x3000); err == nil {
		t.Error("unfenced same-epoch order not flagged")
	}
}

func TestEpochsPerThread(t *testing.T) {
	c := NewChecker(nil)
	c.Access(1, 0x1000, 8, true)
	c.Fence(2) // another thread's fence does not order thread 1
	c.Access(1, 0x2000, 8, true)
	if err := c.CheckPersistedBefore([]memlayout.VA{0x1000}, 0x2000); err == nil {
		t.Error("cross-thread fence incorrectly ordered thread 1's stores")
	}
}

func TestMissingStores(t *testing.T) {
	c := NewChecker(nil)
	if err := c.CheckPersistedBefore([]memlayout.VA{0x10}, 0x20); err == nil ||
		!strings.Contains(err.Error(), "no store") {
		t.Errorf("missing stores not reported: %v", err)
	}
}

func TestLineSplitStoresCovered(t *testing.T) {
	c := NewChecker(nil)
	c.Access(1, 0x1000, 128, true) // spans two lines, many words
	for _, va := range []memlayout.VA{0x1000, 0x1040, 0x1078} {
		if _, ok := c.EpochOf(va); !ok {
			t.Errorf("word %#x not covered", uint64(va))
		}
	}
}

func TestDeniedStoresNotRecorded(t *testing.T) {
	// A store denied by the protection machinery never persists, so the
	// checker must not record it. denySink denies everything.
	c := NewChecker(denySink{})
	c.Access(1, 0x1000, 8, true)
	if c.Stores() != 0 {
		t.Error("denied store recorded as persisted")
	}
}

type denySink struct{ trace.Discard }

func (denySink) Access(core.ThreadID, memlayout.VA, uint32, bool) bool { return false }
func (denySink) Fetch(core.ThreadID, memlayout.VA) bool                { return false }

// TestTxnFollowsWriteAheadLogging validates the transaction layer's
// persist discipline end to end: in a committed transaction, every
// staged log entry is fenced before the commit record, and the commit
// record before every home-location update.
func TestTxnFollowsWriteAheadLogging(t *testing.T) {
	c := NewChecker(nil)
	store := pmo.NewStore()
	pool, err := store.Create("wal", 8<<20, pmo.ModeDefault, "t")
	if err != nil {
		t.Fatal(err)
	}
	space := pmo.NewSpace(c)
	att, err := space.Attach(pool, core.PermRW, "")
	if err != nil {
		t.Fatal(err)
	}
	base := att.Region.Base

	o, err := pool.Alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := txn.Begin(pool)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteU64(o.Offset(), 1); err != nil {
		t.Fatal(err)
	}
	if err := tx.WriteU64(o.Offset()+8, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	logOff, _ := pool.LogArea()
	commitVA := base + memlayout.VA(logOff) // log state word
	// Staged entries start at logOff+16; first entry header + payload.
	staged := []memlayout.VA{
		base + memlayout.VA(logOff) + 16, // entry 0 header
		base + memlayout.VA(logOff) + 32, // entry 0 payload
	}
	if err := c.CheckPersistedBefore(staged, commitVA); err != nil {
		t.Errorf("staged entries not fenced before commit record: %v", err)
	}
	// Home locations persist strictly after the commit record... the
	// state word is overwritten again when the log is cleaned, so check
	// home against the *entries* instead: homes are in a later epoch.
	home := base + memlayout.VA(o.Offset())
	if err := c.CheckPersistedBefore(staged, home); err != nil {
		t.Errorf("home update not fenced after staged entries: %v", err)
	}
}
