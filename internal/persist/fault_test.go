package persist

import (
	"bytes"
	"encoding/binary"
	"testing"

	"domainvirt/internal/memlayout"
	"domainvirt/internal/pmo"
)

func newFaultPool(t *testing.T) *pmo.Pool {
	t.Helper()
	s := pmo.NewStore()
	p, err := s.Create("f", 128<<10, pmo.ModeDefault, "t")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func u64(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func readAt(img []byte, off uint32) uint64 {
	return binary.LittleEndian.Uint64(img[off : off+8])
}

func TestJournalRecordsStoresAndFences(t *testing.T) {
	p := newFaultPool(t)
	j := NewJournal()
	j.Arm(p)
	defer j.Disarm()

	p.WriteU64(100<<10, 7)
	p.Fence()
	p.WriteU64(100<<10+8, 9)

	steps := j.Steps()
	if len(steps) != 3 {
		t.Fatalf("steps = %d, want 3", len(steps))
	}
	if steps[0].Fence || steps[0].Off != 100<<10 || !bytes.Equal(steps[0].Data, u64(7)) {
		t.Errorf("step 0 = %+v", steps[0])
	}
	if !steps[1].Fence {
		t.Errorf("step 1 not a fence: %+v", steps[1])
	}
	if steps[2].Off != 100<<10+8 {
		t.Errorf("step 2 = %+v", steps[2])
	}
}

func TestJournalDisarmStopsRecording(t *testing.T) {
	p := newFaultPool(t)
	j := NewJournal()
	j.Arm(p)
	p.WriteU64(100<<10, 1)
	j.Disarm()
	p.WriteU64(100<<10, 2)
	if j.Len() != 1 {
		t.Errorf("steps after disarm = %d, want 1", j.Len())
	}
}

// Fenced stores are durable at any later crash point under every mode
// (except the deliberately fence-blind one).
func TestFencedStoresAlwaysDurable(t *testing.T) {
	p := newFaultPool(t)
	off := uint32(100 << 10)
	p.WriteU64(off, 1) // pre-arm baseline
	j := NewJournal()
	j.Arm(p)
	defer j.Disarm()
	p.WriteU64(off, 2)
	p.Fence()
	p.WriteU64(off+8, 3) // open at crash

	modes := []FaultMode{FaultNone, FaultDropTail, FaultReorder, FaultReorder | FaultTorn}
	for _, mode := range modes {
		for seed := int64(0); seed < 20; seed++ {
			imgs := j.CrashImages(j.Len(), FaultConfig{Mode: mode, Seed: seed})
			img := imgs[p.ID()]
			if got := readAt(img, off); got != 2 {
				t.Fatalf("mode %v seed %d: fenced store = %d, want 2", mode, seed, got)
			}
		}
	}
}

// Crash point 0 is exactly the arm-time baseline.
func TestCrashAtZeroIsBaseline(t *testing.T) {
	p := newFaultPool(t)
	off := uint32(100 << 10)
	p.WriteU64(off, 42)
	j := NewJournal()
	j.Arm(p)
	defer j.Disarm()
	p.WriteU64(off, 99)
	p.Fence()
	imgs := j.CrashImages(0, FaultConfig{Mode: FaultReorder, Seed: 1})
	if got := readAt(imgs[p.ID()], off); got != 42 {
		t.Errorf("crash at 0 = %d, want baseline 42", got)
	}
}

// Same (k, config) must reconstruct bit-identical images.
func TestCrashImagesDeterministic(t *testing.T) {
	p := newFaultPool(t)
	j := NewJournal()
	j.Arm(p)
	defer j.Disarm()
	for i := uint32(0); i < 16; i++ {
		p.WriteU64(100<<10+i*8, uint64(i)*0x0101010101010101)
		if i%5 == 4 {
			p.Fence()
		}
	}
	for k := 0; k <= j.Len(); k++ {
		fc := FaultConfig{Mode: FaultDropTail | FaultReorder | FaultTorn, Seed: int64(k) * 7}
		a := j.CrashImages(k, fc)
		b := j.CrashImages(k, fc)
		if !bytes.Equal(a[p.ID()], b[p.ID()]) {
			t.Fatalf("crash image at k=%d not deterministic", k)
		}
	}
}

// FaultNone persists every issued store: the strict model.
func TestFaultNonePersistsEverything(t *testing.T) {
	p := newFaultPool(t)
	off := uint32(100 << 10)
	j := NewJournal()
	j.Arm(p)
	defer j.Disarm()
	p.WriteU64(off, 5)
	p.WriteU64(off+8, 6)
	imgs := j.CrashImages(j.Len(), FaultConfig{})
	img := imgs[p.ID()]
	if readAt(img, off) != 5 || readAt(img, off+8) != 6 {
		t.Errorf("strict model lost open stores: %d %d", readAt(img, off), readAt(img, off+8))
	}
}

// DropTail alone only ever loses a suffix of the open-epoch units.
func TestDropTailIsPrefixClosed(t *testing.T) {
	p := newFaultPool(t)
	off := uint32(100 << 10)
	j := NewJournal()
	j.Arm(p)
	defer j.Disarm()
	const n = 8
	for i := uint32(0); i < n; i++ {
		p.WriteU64(off+i*8, uint64(i)+10)
	}
	for seed := int64(0); seed < 50; seed++ {
		img := j.CrashImages(j.Len(), FaultConfig{Mode: FaultDropTail, Seed: seed})[p.ID()]
		// Once one store is lost, all later ones must be lost too.
		lost := false
		for i := uint32(0); i < n; i++ {
			got := readAt(img, off+i*8)
			if got == 0 {
				lost = true
			} else if lost {
				t.Fatalf("seed %d: store %d persisted after a dropped predecessor", seed, i)
			} else if got != uint64(i)+10 {
				t.Fatalf("seed %d: store %d = %d", seed, i, got)
			}
		}
	}
}

// Torn words keep exactly one 4-byte half.
func TestTornStoreHalves(t *testing.T) {
	p := newFaultPool(t)
	off := uint32(100 << 10)
	p.WriteU64(off, 0x1111111122222222)
	j := NewJournal()
	j.Arm(p)
	defer j.Disarm()
	p.WriteU64(off, 0x3333333344444444)
	sawTear := false
	for seed := int64(0); seed < 200; seed++ {
		img := j.CrashImages(j.Len(), FaultConfig{Mode: FaultTorn, Seed: seed})[p.ID()]
		switch got := readAt(img, off); got {
		case 0x3333333344444444: // persisted whole
		case 0x1111111144444444, 0x3333333322222222: // torn halves
			sawTear = true
		default:
			t.Fatalf("seed %d: impossible torn value %#x", seed, got)
		}
	}
	if !sawTear {
		t.Error("no tear observed in 200 seeds")
	}
}

// IgnoreFences treats fenced stores as losable — the referee-sensitivity
// model.
func TestIgnoreFencesCanLoseFencedStores(t *testing.T) {
	p := newFaultPool(t)
	off := uint32(100 << 10)
	j := NewJournal()
	j.Arm(p)
	defer j.Disarm()
	p.WriteU64(off, 7)
	p.Fence()
	lostOnce := false
	for seed := int64(0); seed < 50 && !lostOnce; seed++ {
		img := j.CrashImages(j.Len(), FaultConfig{Mode: FaultIgnoreFences | FaultReorder, Seed: seed})[p.ID()]
		if readAt(img, off) != 7 {
			lostOnce = true
		}
	}
	if !lostOnce {
		t.Error("fence-blind model never lost a fenced store")
	}
}

func TestFaultModeRoundTrip(t *testing.T) {
	modes := []FaultMode{
		FaultNone, FaultDropTail, FaultReorder, FaultTorn,
		FaultDropTail | FaultReorder | FaultTorn, FaultIgnoreFences | FaultReorder,
	}
	for _, m := range modes {
		back, err := ParseFaultMode(m.String())
		if err != nil || back != m {
			t.Errorf("round trip %v -> %q -> (%v, %v)", m, m.String(), back, err)
		}
	}
	if _, err := ParseFaultMode("bogus"); err == nil {
		t.Error("ParseFaultMode accepted bogus")
	}
}

// Feed drives the Checker referee: a store fenced before another must
// satisfy CheckPersistedBefore; an unfenced pair must not.
func TestJournalFeedsChecker(t *testing.T) {
	p := newFaultPool(t)
	a, b := uint32(100<<10), uint32(100<<10+64)
	j := NewJournal()
	j.Arm(p)
	defer j.Disarm()
	p.WriteU64(a, 1)
	p.Fence()
	p.WriteU64(b, 2)

	c := NewChecker(nil)
	j.Feed(c, -1)
	if err := c.CheckPersistedBefore([]memlayout.VA{PoolVA(p.ID(), uint64(a))}, PoolVA(p.ID(), uint64(b))); err != nil {
		t.Errorf("fenced pair rejected: %v", err)
	}

	// Same-epoch pair: must be rejected.
	j2 := NewJournal()
	p2 := newFaultPool(t)
	j2.Arm(p2)
	defer j2.Disarm()
	p2.WriteU64(a, 1)
	p2.WriteU64(b, 2)
	c2 := NewChecker(nil)
	j2.Feed(c2, -1)
	if err := c2.CheckPersistedBefore([]memlayout.VA{PoolVA(p2.ID(), uint64(a))}, PoolVA(p2.ID(), uint64(b))); err == nil {
		t.Error("unfenced pair accepted")
	}
}

func TestCheckerStoreBound(t *testing.T) {
	c := NewChecker(nil)
	c.SetMaxStores(4)
	for i := 0; i < 16; i++ {
		c.Access(1, memlayout.VA(0x1000+i*8), 8, true)
	}
	if got := c.Stores(); got != 4 {
		t.Errorf("Stores = %d, want cap 4", got)
	}
	if got := c.StoresDropped(); got != 12 {
		t.Errorf("StoresDropped = %d, want 12", got)
	}
	// Updates to tracked locations still land.
	c.Fence(1)
	c.Access(1, memlayout.VA(0x1000), 8, true)
	rec, ok := c.EpochOf(memlayout.VA(0x1000))
	if !ok || rec.Epoch != 1 {
		t.Errorf("tracked location not updated: %+v ok=%v", rec, ok)
	}
}
