package persist

import (
	"fmt"
	"math/rand"
	"sync"

	"domainvirt/internal/memlayout"
	"domainvirt/internal/pmo"
)

// Fault-injecting persistence model. A Journal arms itself on a set of
// pools via their persist hooks and records the exact durable-media
// traffic — every store that reaches the backing bytes and every persist
// barrier — as an ordered step sequence. A crash is then simulated at
// any step k: stores closed by a fence executed before k are durable for
// certain; stores in the still-open epoch may or may not have left the
// cache hierarchy, and a seeded FaultConfig decides which of them (at
// 8-byte-word granularity) reach the reconstructed NVM image, possibly
// torn or out of order. This is the same epoch model the Checker uses
// for PMTest-style ordering assertions: a fence closes an epoch, and
// only epoch boundaries order persists.
//
// Fences are modeled as global barriers (x86 SFENCE orders all stores of
// the issuing thread regardless of which pool they target), so one
// Journal spans all pools of a multi-PMO transaction and a fence on any
// armed pool closes the open epoch for every pool.

// Step is one recorded durable-media event: a store of Data at Off in
// pool Pool, or a persist barrier (Fence true, other fields zero).
type Step struct {
	Fence bool
	Pool  uint32
	Off   uint64
	Data  []byte
}

// FaultMode is a bitmask of injected misbehaviors for stores in the
// open (unfenced) epoch at crash time.
type FaultMode uint8

// Fault modes. FaultNone still crashes, but persists every issued store
// — the strict model, useful to validate crash-point enumeration alone.
const (
	FaultNone FaultMode = 0
	// FaultDropTail drops a suffix of the open epoch's store words: the
	// write-back queue lost its tail at power failure.
	FaultDropTail FaultMode = 1 << iota
	// FaultReorder lets each open-epoch store word independently reach
	// or miss NVM: cache lines write back in arbitrary order between
	// fences, so a later store may persist while an earlier one is lost.
	FaultReorder
	// FaultTorn additionally tears surviving 8-byte words in half: only
	// the low or high 4 bytes persist. Models non-atomic media writes.
	FaultTorn
	// FaultIgnoreFences treats every store since arming as open,
	// discarding fence ordering entirely. This models broken persistence
	// hardware (or a program whose fences are compiled away); recovery
	// cannot be expected to survive it, and the harness uses it to prove
	// the referee actually detects inconsistency.
	FaultIgnoreFences
)

// String names the enabled modes.
func (m FaultMode) String() string {
	if m == FaultNone {
		return "none"
	}
	s := ""
	add := func(name string) {
		if s != "" {
			s += "+"
		}
		s += name
	}
	if m&FaultDropTail != 0 {
		add("droptail")
	}
	if m&FaultReorder != 0 {
		add("reorder")
	}
	if m&FaultTorn != 0 {
		add("torn")
	}
	if m&FaultIgnoreFences != 0 {
		add("nofence")
	}
	return s
}

// ParseFaultMode parses the String form ("reorder+torn", "none").
func ParseFaultMode(s string) (FaultMode, error) {
	if s == "none" || s == "" {
		return FaultNone, nil
	}
	var m FaultMode
	start := 0
	for i := 0; i <= len(s); i++ {
		if i < len(s) && s[i] != '+' {
			continue
		}
		switch part := s[start:i]; part {
		case "droptail":
			m |= FaultDropTail
		case "reorder":
			m |= FaultReorder
		case "torn":
			m |= FaultTorn
		case "nofence":
			m |= FaultIgnoreFences
		default:
			return 0, fmt.Errorf("persist: unknown fault mode %q", part)
		}
		start = i + 1
	}
	return m, nil
}

// FaultConfig selects a deterministic injection: the same (Mode, Seed)
// over the same journal always yields the same crash image.
type FaultConfig struct {
	Mode FaultMode
	Seed int64
}

// Journal records durable-media traffic of armed pools.
type Journal struct {
	mu    sync.Mutex
	pools map[uint32]*pmo.Pool
	order []uint32          // pool IDs in arm order
	base  map[uint32][]byte // image of each pool at arm time
	steps []Step
}

// NewJournal returns an empty journal.
func NewJournal() *Journal {
	return &Journal{
		pools: make(map[uint32]*pmo.Pool),
		base:  make(map[uint32][]byte),
	}
}

// Arm snapshots p's current image as the pre-crash baseline and starts
// recording its stores and fences. A pool can be armed once per journal.
func (j *Journal) Arm(p *pmo.Pool) {
	j.mu.Lock()
	id := p.ID()
	if _, dup := j.pools[id]; dup {
		j.mu.Unlock()
		return
	}
	j.pools[id] = p
	j.order = append(j.order, id)
	j.mu.Unlock()
	// Snapshot outside j.mu: CopyImage takes the pool lock.
	img := p.CopyImage()
	j.mu.Lock()
	j.base[id] = img
	j.mu.Unlock()
	p.SetPersistHooks(
		func(off uint64, src []byte) {
			cp := make([]byte, len(src))
			copy(cp, src)
			j.mu.Lock()
			j.steps = append(j.steps, Step{Pool: id, Off: off, Data: cp})
			j.mu.Unlock()
		},
		func() {
			j.mu.Lock()
			j.steps = append(j.steps, Step{Fence: true, Pool: id})
			j.mu.Unlock()
		},
	)
}

// Disarm removes the hooks from every armed pool; the recorded steps
// and baselines remain available.
func (j *Journal) Disarm() {
	j.mu.Lock()
	pools := make([]*pmo.Pool, 0, len(j.pools))
	for _, p := range j.pools {
		pools = append(pools, p)
	}
	j.mu.Unlock()
	for _, p := range pools {
		p.SetPersistHooks(nil, nil)
	}
}

// Len returns the number of recorded steps; valid crash points are
// 0..Len inclusive ("crash after the first k steps executed").
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.steps)
}

// Steps returns a copy of the recorded step sequence.
func (j *Journal) Steps() []Step {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]Step, len(j.steps))
	copy(out, j.steps)
	return out
}

// PoolIDs returns the armed pool IDs in arm order.
func (j *Journal) PoolIDs() []uint32 {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]uint32, len(j.order))
	copy(out, j.order)
	return out
}

// unit is one independently-persistable piece of an open-epoch store:
// the intersection of a recorded store with an aligned 8-byte word.
type unit struct {
	pool uint32
	off  uint64
	data []byte
}

// CrashImages reconstructs every armed pool's NVM image for a crash
// after the first k steps, under fault model fc. Stores closed by a
// fence executed within the first k steps are applied in program order;
// open-epoch stores are split into 8-byte-word units and persisted
// according to fc. The result maps pool ID to image.
func (j *Journal) CrashImages(k int, fc FaultConfig) map[uint32][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if k < 0 {
		k = 0
	}
	if k > len(j.steps) {
		k = len(j.steps)
	}
	return ApplyCrash(j.base, j.steps[:k], fc)
}

// ApplyCrash reconstructs NVM images from arm-time base snapshots and an
// explicit step sequence under fault model fc — the pure core of
// Journal.CrashImages, exposed so crash-schedule minimization can replay
// ddmin-reduced step lists. base is never mutated.
func ApplyCrash(base map[uint32][]byte, steps []Step, fc FaultConfig) map[uint32][]byte {
	imgs := make(map[uint32][]byte, len(base))
	for id, img := range base {
		cp := make([]byte, len(img))
		copy(cp, img)
		imgs[id] = cp
	}

	// Find the last fence in the executed prefix; stores before it are
	// closed (durable for certain).
	closedEnd := 0
	if fc.Mode&FaultIgnoreFences == 0 {
		for i, s := range steps {
			if s.Fence {
				closedEnd = i + 1
			}
		}
	}
	apply := func(s Step) {
		if img, ok := imgs[s.Pool]; ok {
			end := s.Off + uint64(len(s.Data))
			if end <= uint64(len(img)) {
				copy(img[s.Off:end], s.Data)
			}
		}
	}
	var open []unit
	for i, s := range steps {
		if s.Fence {
			continue
		}
		if i < closedEnd {
			apply(s)
			continue
		}
		// Split the open store into word units.
		off, data := s.Off, s.Data
		for len(data) > 0 {
			wordEnd := (off &^ 7) + 8
			n := wordEnd - off
			if n > uint64(len(data)) {
				n = uint64(len(data))
			}
			open = append(open, unit{pool: s.Pool, off: off, data: data[:n]})
			off += n
			data = data[n:]
		}
	}
	if len(open) == 0 {
		return imgs
	}

	rng := rand.New(rand.NewSource(fc.Seed))
	keep := make([]bool, len(open))
	for i := range keep {
		keep[i] = true
	}
	if fc.Mode&FaultDropTail != 0 {
		n := rng.Intn(len(open) + 1)
		for i := n; i < len(open); i++ {
			keep[i] = false
		}
	}
	if fc.Mode&FaultReorder != 0 {
		for i := range keep {
			if keep[i] && rng.Intn(2) == 0 {
				keep[i] = false
			}
		}
	}
	for i, u := range open {
		if !keep[i] {
			continue
		}
		data := u.data
		off := u.off
		if fc.Mode&FaultTorn != 0 && len(data) == 8 && rng.Intn(4) == 0 {
			if rng.Intn(2) == 0 {
				data = data[:4] // only the low half persisted
			} else {
				data = data[4:] // only the high half persisted
				off += 4
			}
		}
		apply(Step{Pool: u.pool, Off: off, Data: data})
	}
	return imgs
}

// poolVABits positions pool IDs above any in-pool offset so the Checker
// can referee multi-pool journals over one synthetic address space.
const poolVABits = 40

// PoolVA maps (pool, offset) to a synthetic virtual address for feeding
// pool-relative stores into a Checker.
func PoolVA(pool uint32, off uint64) memlayout.VA {
	return memlayout.VA(uint64(pool)<<poolVABits | off)
}

// Feed replays the first k steps (k<0 for all) into c as synthetic
// accesses on thread 1 — Access for stores, Fence for barriers — so the
// Checker's epoch model and CheckPersistedBefore become the referee for
// write-ahead-logging ordering rules over recorded pool traffic.
func (j *Journal) Feed(c *Checker, k int) {
	j.mu.Lock()
	steps := make([]Step, len(j.steps))
	copy(steps, j.steps)
	j.mu.Unlock()
	if k < 0 || k > len(steps) {
		k = len(steps)
	}
	for _, s := range steps[:k] {
		if s.Fence {
			c.Fence(1)
		} else {
			c.Access(1, PoolVA(s.Pool, s.Off), uint32(len(s.Data)), true)
		}
	}
}
