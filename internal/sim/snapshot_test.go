package sim_test

import (
	"reflect"
	"sync"
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/sim"
)

// snapDrivePrefix drives a deterministic mixed prefix: attaches, grants,
// warm accesses, a denial, and cross-thread traffic, leaving every
// engine with nontrivial state (keys assigned, PTLB/DTTLB filled, PKRU
// images saved, LRU clocks advanced, faults recorded).
func snapDrivePrefix(tb testing.TB, m *sim.Machine, nd int) {
	tb.Helper()
	for d := core.DomainID(1); d <= core.DomainID(nd); d++ {
		if err := m.Attach(d, benchRegion(d), core.PermRW); err != nil {
			tb.Fatal(err)
		}
	}
	for th := core.ThreadID(1); th <= 3; th++ {
		for d := core.DomainID(1); d <= core.DomainID(nd); d++ {
			m.SetPerm(th, d, core.PermRW, 0)
		}
	}
	for th := core.ThreadID(1); th <= 3; th++ {
		for d := core.DomainID(1); d <= core.DomainID(nd); d++ {
			r := benchRegion(d)
			m.Instr(th, 7)
			for p := 0; p < 6; p++ {
				m.Access(th, r.Base+memlayout.VA(p*memlayout.PageSize+int(th)*8), 8, p%2 == 0)
			}
			m.Fetch(th, r.Base+memlayout.VA(int(d)*64))
			m.Fence(th)
		}
	}
	// One revoke + denied access so fault records are part of the state.
	m.SetPerm(2, 1, core.PermNone, 0)
	m.Access(2, benchRegion(1).Base, 8, false)
	m.SetPerm(2, 1, core.PermRW, 0)
}

// snapDriveSuffix drives the continuation stream whose results the
// snapshot fork must reproduce bit-identically: same-page loops (L0 fast
// path), page strides, permission churn that forces key remaps under the
// virtualization engines, demand mapping of fresh pages, and context
// switches onto every core.
func snapDriveSuffix(m *sim.Machine, nd int) {
	for i := 0; i < 400; i++ {
		th := core.ThreadID(1 + i%3)
		d := core.DomainID(1 + i%nd)
		r := benchRegion(d)
		m.Instr(th, 5)
		if i%17 == 0 {
			p := core.PermR
			if i%34 == 0 {
				p = core.PermRW
			}
			m.SetPerm(th, d, p, 0)
		}
		va := r.Base + memlayout.VA((i%8)*memlayout.PageSize) + memlayout.VA((i%29)*64)
		m.Access(th, va, 8, i%3 == 0)
		m.Access(th, va, 8, false)
		if i%41 == 0 {
			// First touch of a page past the warmed set: demand mapping.
			m.Access(th, r.Base+memlayout.VA((64+i)*memlayout.PageSize), 8, true)
		}
		if i%23 == 0 {
			m.Fence(th)
		}
	}
	m.FlushObs()
}

// snapDomains exceeds the 15 usable MPK keys for the virtualization
// engines so suffix traffic forces key eviction/remap protocols; the
// plain MPK engine caps at its architectural limit.
func snapDomains(s sim.Scheme) int {
	if s == sim.SchemeMPK {
		return 12
	}
	return 20
}

// snapConfig is a multicore configuration so snapshots cover cross-core
// state: per-core TLBs/PTLBs/DTTLBs, saved PKRU images, the coherence
// directory, and context-switch bookkeeping.
func snapConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.Cores = 2
	return cfg
}

// TestSnapshotRestoreBitIdentical is the referee for the snapshot layer:
// for every scheme, continuing the original machine and continuing a
// fresh machine restored from its snapshot must produce byte-identical
// Results and fault records.
func TestSnapshotRestoreBitIdentical(t *testing.T) {
	for _, s := range sim.AllSchemes {
		t.Run(string(s), func(t *testing.T) {
			nd := snapDomains(s)
			cfg := snapConfig()
			m := sim.NewMachine(cfg, s)
			snapDrivePrefix(t, m, nd)
			m.ResetStats()
			snap := m.Snapshot()

			snapDriveSuffix(m, nd)
			want := m.Result()
			wantFaults := m.Faults()

			fork := sim.NewMachine(cfg, s)
			fork.Restore(snap)
			snapDriveSuffix(fork, nd)
			got := fork.Result()

			if got != want {
				t.Errorf("forked result differs:\n got: %+v\nwant: %+v", got, want)
			}
			if !reflect.DeepEqual(fork.Faults(), wantFaults) {
				t.Errorf("forked faults differ: got %v want %v", fork.Faults(), wantFaults)
			}
		})
	}
}

// TestSnapshotImmutableAcrossRestores forks the same snapshot twice in
// sequence: if the first fork's run leaked mutations into the snapshot
// (aliased state instead of deep copies), the second fork diverges.
func TestSnapshotImmutableAcrossRestores(t *testing.T) {
	for _, s := range sim.AllSchemes {
		t.Run(string(s), func(t *testing.T) {
			nd := snapDomains(s)
			cfg := snapConfig()
			m := sim.NewMachine(cfg, s)
			snapDrivePrefix(t, m, nd)
			m.ResetStats()
			snap := m.Snapshot()

			first := sim.NewMachine(cfg, s)
			first.Restore(snap)
			snapDriveSuffix(first, nd)
			want := first.Result()

			second := sim.NewMachine(cfg, s)
			second.Restore(snap)
			snapDriveSuffix(second, nd)
			if got := second.Result(); got != want {
				t.Errorf("second restore diverged:\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// TestSnapshotConcurrentRestores restores one snapshot into many
// machines concurrently (the grid-fork pattern); under -race this also
// proves Restore never writes into the shared snapshot.
func TestSnapshotConcurrentRestores(t *testing.T) {
	const workers = 8
	s := sim.SchemeDomainVirt
	nd := snapDomains(s)
	cfg := snapConfig()
	m := sim.NewMachine(cfg, s)
	snapDrivePrefix(t, m, nd)
	m.ResetStats()
	snap := m.Snapshot()

	snapDriveSuffix(m, nd)
	want := m.Result()

	var wg sync.WaitGroup
	results := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			fork := sim.NewMachine(cfg, s)
			fork.Restore(snap)
			snapDriveSuffix(fork, nd)
			if got := fork.Result(); got != want {
				results[w] = errResultMismatch
			}
		}(w)
	}
	wg.Wait()
	for w, err := range results {
		if err != nil {
			t.Errorf("worker %d: result diverged from sequential", w)
		}
	}
}

var errResultMismatch = errMismatch{}

type errMismatch struct{}

func (errMismatch) Error() string { return "result mismatch" }

// TestSnapshotCostIndependence is the warmup-cache equivalence: a
// post-reset snapshot taken under one set of cost parameters seeds a
// machine running different cost parameters, and the fork's results
// must equal a from-scratch run under those costs. (State trajectory
// depends only on the event stream and structural geometry; latencies
// are pure accounting and zeroed by the reset.)
func TestSnapshotCostIndependence(t *testing.T) {
	for _, s := range []sim.Scheme{sim.SchemeLibmpk, sim.SchemeMPKVirt, sim.SchemeDomainVirt} {
		t.Run(string(s), func(t *testing.T) {
			nd := snapDomains(s)
			cfgA := snapConfig()
			cfgB := cfgA
			cfgB.Costs.TLBInval = 572
			cfgB.Costs.PTLBMiss = 60
			cfgB.Costs.DTTLBMiss = 60
			cfgB.Mem.NVMLatency = 720
			cfgB.FenceCost = 25

			// Snapshot taken under cfgA's costs...
			m := sim.NewMachine(cfgA, s)
			snapDrivePrefix(t, m, nd)
			m.ResetStats()
			snap := m.Snapshot()

			// ...seeds a cfgB machine.
			fork := sim.NewMachine(cfgB, s)
			fork.Restore(snap)
			snapDriveSuffix(fork, nd)
			got := fork.Result()

			// Reference: the full run under cfgB from scratch.
			ref := sim.NewMachine(cfgB, s)
			snapDrivePrefix(t, ref, nd)
			ref.ResetStats()
			snapDriveSuffix(ref, nd)
			want := ref.Result()

			if got != want {
				t.Errorf("cost-swapped fork differs from from-scratch run:\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// TestSnapshotRestoreMismatchPanics pins the compatibility guards.
func TestSnapshotRestoreMismatchPanics(t *testing.T) {
	cfg := snapConfig()
	m := sim.NewMachine(cfg, sim.SchemeDomainVirt)
	snap := m.Snapshot()

	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	expectPanic("scheme mismatch", func() {
		sim.NewMachine(cfg, sim.SchemeMPK).Restore(snap)
	})
	badCores := cfg
	badCores.Cores = 4
	expectPanic("core-count mismatch", func() {
		sim.NewMachine(badCores, sim.SchemeDomainVirt).Restore(snap)
	})
}

// TestFaultsReturnsCopy is the regression test for the Faults aliasing
// fix: mutating or appending to the returned slice must not corrupt the
// machine's live fault window.
func TestFaultsReturnsCopy(t *testing.T) {
	m := sim.NewMachine(sim.DefaultConfig(), sim.SchemeDomainVirt)
	if err := m.Attach(1, benchRegion(1), core.PermRW); err != nil {
		t.Fatal(err)
	}
	// No grant: the first access faults.
	m.Access(1, benchRegion(1).Base, 8, false)
	got := m.Faults()
	if len(got) != 1 {
		t.Fatalf("expected 1 fault, got %d", len(got))
	}
	want := got[0]

	got[0].VA = 0xdead
	got = append(got, sim.FaultRecord{Thread: 99})
	_ = got

	again := m.Faults()
	if len(again) != 1 || again[0] != want {
		t.Errorf("machine fault record corrupted through returned slice: %v", again)
	}

	// A second denial must still append cleanly after the caller's append.
	m.Access(1, benchRegion(1).Base+8, 8, true)
	if n := len(m.Faults()); n != 2 {
		t.Errorf("expected 2 faults after second denial, got %d", n)
	}
}

// BenchmarkSnapshotRestore measures the fork primitive itself: one
// SnapshotInto (pooled buffer reuse) plus one Restore of a warmed
// machine, the per-cell cost a snapshot-served grid pays instead of
// re-simulating the warmup prefix.
func BenchmarkSnapshotRestore(b *testing.B) {
	for _, s := range []sim.Scheme{sim.SchemeMPKVirt, sim.SchemeDomainVirt} {
		b.Run(string(s), func(b *testing.B) {
			m := benchMachine(b, s, 8, 16)
			fork := sim.NewMachine(sim.DefaultConfig(), s)
			snap := m.Snapshot()
			fork.Restore(snap)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.SnapshotInto(snap)
				fork.Restore(snap)
			}
		})
	}
}
