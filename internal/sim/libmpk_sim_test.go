package sim

import (
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/stats"
)

// The libmpk engine's most delicate interaction with the machine is the
// fault-driven remap: an access to an unmapped domain arrives with a
// null TLB tag, traps, rewrites PTEs and shoots down stale entries, and
// the *next* access must observe the fresh key. These tests exercise
// that path through the full TLB machinery rather than the engine alone.

func libmpkMachine(t *testing.T, domains int) (*Machine, []memlayout.Region) {
	t.Helper()
	m := NewMachine(DefaultConfig(), SchemeLibmpk)
	regions := make([]memlayout.Region, domains)
	for i := range regions {
		regions[i] = memlayout.Region{
			Base: memlayout.VA(0x2000_0000_0000 + uint64(i)<<21),
			Size: 2 << 20,
		}
		if err := m.Attach(core.DomainID(i+1), regions[i], core.PermRW); err != nil {
			t.Fatal(err)
		}
		m.SetPerm(1, core.DomainID(i+1), core.PermRW, 1)
	}
	return m, regions
}

func TestLibmpkFaultRemapThroughTLB(t *testing.T) {
	m, regions := libmpkMachine(t, 20) // > 16: churn guaranteed
	touch := func(i int) memlayout.VA {
		return regions[i].Base + memlayout.VA(i)*memlayout.PageSize
	}
	// Round-robin sweeps force evictions and fault-driven remaps on the
	// read path; no access may be denied and no fault recorded.
	for round := 0; round < 4; round++ {
		for i := 0; i < 20; i++ {
			m.Access(1, touch(i), 8, false)
		}
	}
	res := m.Result()
	if res.Counters.DomainFaults != 0 || res.Counters.PageFaults != 0 {
		t.Fatalf("legitimate accesses faulted: %+v (%v)", res.Counters, m.Faults())
	}
	if res.Counters.Evictions == 0 {
		t.Fatal("no evictions with 20 domains over 16 keys")
	}
	if res.Breakdown.Cycles[stats.CatTrap] == 0 {
		t.Error("fault-driven remap never trapped")
	}
	if res.Breakdown.Cycles[stats.CatPTEWrite] == 0 {
		t.Error("remap rewrote no PTEs")
	}
	if res.Counters.TLBFlushed == 0 {
		t.Error("remap flushed no TLB entries")
	}
}

func TestLibmpkStaleTagNeverGrantsAccess(t *testing.T) {
	// Security property through the machine: after domain A's key is
	// reassigned to domain B, a thread without permission on B must not
	// slip through via any cached state.
	m, regions := libmpkMachine(t, 17)
	touch := func(i int) memlayout.VA {
		return regions[i].Base + memlayout.VA(i)*memlayout.PageSize
	}
	for i := 0; i < 17; i++ {
		m.Access(1, touch(i), 8, true)
	}
	// Thread 2 never got any permission; hammer every domain.
	m.ResetStats()
	for i := 0; i < 17; i++ {
		m.Access(2, touch(i), 8, true)
	}
	res := m.Result()
	if res.Counters.DomainFaults != 17 {
		t.Fatalf("thread 2 faults = %d, want 17 (one per domain)", res.Counters.DomainFaults)
	}
}

func TestLibmpkVsMPKVirtSameWorkSameVerdicts(t *testing.T) {
	// Replay an identical access pattern through both machines: verdict
	// behaviour (fault counts) must match even though costs differ.
	pattern := func(m *Machine, regions []memlayout.Region) stats.Result {
		for i := 0; i < 20; i++ {
			m.Access(1, regions[i].Base, 8, true)
			m.Access(1, regions[(i*7)%20].Base+64, 8, false)
		}
		return m.Result()
	}
	ml, rl := libmpkMachine(t, 20)
	resL := pattern(ml, rl)

	mv := NewMachine(DefaultConfig(), SchemeMPKVirt)
	rv := make([]memlayout.Region, 20)
	for i := range rv {
		rv[i] = memlayout.Region{Base: memlayout.VA(0x2000_0000_0000 + uint64(i)<<21), Size: 2 << 20}
		if err := mv.Attach(core.DomainID(i+1), rv[i], core.PermRW); err != nil {
			t.Fatal(err)
		}
		mv.SetPerm(1, core.DomainID(i+1), core.PermRW, 1)
	}
	resV := pattern(mv, rv)

	if resL.Counters.DomainFaults != resV.Counters.DomainFaults {
		t.Errorf("fault divergence: libmpk %d vs mpkvirt %d",
			resL.Counters.DomainFaults, resV.Counters.DomainFaults)
	}
	if resL.Cycles <= resV.Cycles {
		t.Errorf("libmpk (%d cycles) should cost more than mpkvirt (%d) under churn",
			resL.Cycles, resV.Cycles)
	}
}
