package sim

import (
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

func TestDefaultConfigMatchesTableII(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.L1TLB.Entries != 64 || cfg.L1TLB.Ways != 4 {
		t.Errorf("L1 TLB = %+v", cfg.L1TLB)
	}
	if cfg.L2TLB.Entries != 1536 || cfg.L2TLB.Ways != 6 {
		t.Errorf("L2 TLB = %+v", cfg.L2TLB)
	}
	if cfg.WalkPenalty != 30 {
		t.Errorf("walk penalty = %d", cfg.WalkPenalty)
	}
	if cfg.L1D.SizeBytes != 32<<10 || cfg.L1D.Ways != 8 || cfg.L1D.Latency != 1 {
		t.Errorf("L1D = %+v", cfg.L1D)
	}
	if cfg.L2.SizeBytes != 1<<20 || cfg.L2.Ways != 16 || cfg.L2.Latency != 8 {
		t.Errorf("L2 = %+v", cfg.L2)
	}
	if cfg.Mem.DRAMLatency != 120 || cfg.Mem.NVMLatency != 360 {
		t.Errorf("memory latencies = %+v", cfg.Mem)
	}
	if cfg.Costs.WRPKRU != 27 || cfg.Costs.TLBInval != 286 ||
		cfg.Costs.DTTLBMiss != 30 || cfg.Costs.PTLBMiss != 30 ||
		cfg.Costs.PTLBAccess != 1 {
		t.Errorf("costs = %+v", cfg.Costs)
	}
	if cfg.DTTLBEntries != 16 || cfg.PTLBEntries != 16 {
		t.Errorf("buffer entries = %d/%d", cfg.DTTLBEntries, cfg.PTLBEntries)
	}
	// 4-way issue: CPI 1/4.
	if float64(cfg.CPINum)/float64(cfg.CPIDen) != 0.25 {
		t.Errorf("CPI = %d/%d", cfg.CPINum, cfg.CPIDen)
	}
	if cfg.ClockHz != 2.2e9 {
		t.Errorf("clock = %v", cfg.ClockHz)
	}
}

func TestNewEngineAllSchemes(t *testing.T) {
	cfg := DefaultConfig()
	for _, s := range AllSchemes {
		e := NewEngine(s, cfg)
		if e == nil || e.Name() == "" {
			t.Errorf("scheme %s: bad engine", s)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown scheme did not panic")
		}
	}()
	NewEngine("no-such-scheme", cfg)
}

func TestMachineZeroCoresDefaultsToOne(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 0
	m := NewMachine(cfg, SchemeBaseline)
	if m.NumCores() != 1 {
		t.Errorf("cores = %d", m.NumCores())
	}
}

func TestFaultRecordCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxFaultRecords = 4
	m := NewMachine(cfg, SchemeDomainVirt)
	r := memlayout.Region{Base: 0x2000_0000_0000, Size: 2 << 20}
	if err := m.Attach(1, r, core.PermRW); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ { // no SETPERM: every access faults
		m.Access(1, r.Base+memlayout.VA(i*64), 8, false)
	}
	if got := len(m.Faults()); got != 4 {
		t.Errorf("retained faults = %d, want cap 4", got)
	}
	if got := m.FaultsDropped(); got != 16 {
		t.Errorf("dropped faults = %d, want 16", got)
	}
	if m.Result().Counters.DomainFaults != 20 {
		t.Errorf("fault counter = %d, want 20", m.Result().Counters.DomainFaults)
	}
	m.ResetStats()
	if len(m.Faults()) != 0 || m.FaultsDropped() != 0 {
		t.Errorf("ResetStats left faults=%d dropped=%d", len(m.Faults()), m.FaultsDropped())
	}
}
