package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"

	"domainvirt/internal/bincodec"
	"domainvirt/internal/cache"
	"domainvirt/internal/core"
	"domainvirt/internal/mem"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/obs"
	"domainvirt/internal/pagetable"
	"domainvirt/internal/stats"
	"domainvirt/internal/tlb"
)

// SnapshotCodecVersion is the current binary snapshot format version.
// Any change to the encoded field set — including growth of
// stats.Counters, stats.Breakdown, or an engine state struct — must bump
// it, so stale store files are rejected rather than misdecoded.
const SnapshotCodecVersion uint32 = 1

// snapMagic opens every encoded snapshot.
const snapMagic = "PMOSNAP\x00"

// Codec errors. A persistent store treats both as a cache miss.
var (
	// ErrSnapshotCorrupt marks a truncated, garbled, or checksum-failing
	// snapshot file.
	ErrSnapshotCorrupt = errors.New("sim: snapshot data corrupt")
	// ErrSnapshotVersion marks an intact snapshot written by a different
	// codec version.
	ErrSnapshotVersion = errors.New("sim: snapshot codec version mismatch")
)

// EncodeSnapshot serializes s into the versioned, checksummed binary
// snapshot format. Encoding is deterministic: equal snapshots produce
// identical bytes (maps are written in sorted key order), which is what
// makes content-addressed snapshot stores and byte-level cache
// validation possible.
func EncodeSnapshot(s *Snapshot) ([]byte, error) {
	b := make([]byte, 0, 1<<16)
	b = append(b, snapMagic...)
	b = bincodec.U32(b, SnapshotCodecVersion)

	b = bincodec.Str(b, s.scheme)
	b = bincodec.U32(b, uint32(s.ncores))
	b = appendBreakdown(b, &s.bd)
	b = appendCounters(b, &s.ctr)

	doms := make([]core.DomainID, 0, len(s.domains))
	for d := range s.domains {
		doms = append(doms, d)
	}
	sort.Slice(doms, func(i, j int) bool { return doms[i] < doms[j] })
	b = bincodec.U32(b, uint32(len(doms)))
	for _, d := range doms {
		di := s.domains[d]
		b = bincodec.U32(b, uint32(d))
		b = bincodec.U64(b, uint64(di.region.Base))
		b = bincodec.U64(b, di.region.Size)
		b = bincodec.U8(b, uint8(di.perm))
	}

	b = bincodec.U32(b, uint32(len(s.spans)))
	for _, sp := range s.spans {
		b = bincodec.U64(b, uint64(sp.base))
		b = bincodec.U64(b, uint64(sp.end))
		b = bincodec.Bool(b, sp.writable)
	}

	b = bincodec.Bool(b, s.affinity != nil)
	if s.affinity != nil {
		ths := make([]core.ThreadID, 0, len(s.affinity))
		for th := range s.affinity {
			ths = append(ths, th)
		}
		sort.Slice(ths, func(i, j int) bool { return ths[i] < ths[j] })
		b = bincodec.U32(b, uint32(len(ths)))
		for _, th := range ths {
			b = bincodec.U32(b, uint32(th))
			b = bincodec.U32(b, uint32(s.affinity[th]))
		}
	}

	b = bincodec.U64(b, s.mutGen)
	b = bincodec.U32(b, uint32(len(s.faults)))
	for _, f := range s.faults {
		b = bincodec.U32(b, uint32(f.Thread))
		b = bincodec.U64(b, uint64(f.VA))
		b = bincodec.Bool(b, f.Write)
		b = bincodec.U32(b, uint32(f.Domain))
		b = bincodec.Bool(b, f.Page)
	}
	b = bincodec.U64(b, s.faultsDropped)

	b = s.pt.AppendTo(b)
	b = appendMemState(b, s.memst)
	b = s.caches.AppendTo(b)

	b = bincodec.U32(b, uint32(len(s.cores)))
	for i := range s.cores {
		cs := &s.cores[i]
		b = bincodec.U64(b, cs.cycles)
		b = bincodec.U64(b, cs.instRem)
		b = bincodec.U32(b, uint32(cs.thread))
		b = bincodec.Bool(b, cs.active)
		b = bincodec.U64(b, cs.tlbL1Hits)
		b = bincodec.U64(b, cs.tlbL2Hits)
		b = bincodec.U64(b, cs.tlbMisses)
		b = cs.l1.AppendTo(b)
		b = cs.l2.AppendTo(b)
		pages := make([]uint64, 0, len(cs.debt))
		for p := range cs.debt {
			pages = append(pages, p)
		}
		sort.Slice(pages, func(x, y int) bool { return pages[x] < pages[y] })
		b = bincodec.U32(b, uint32(len(pages)))
		for _, p := range pages {
			b = bincodec.U64(b, p)
		}
	}

	var err error
	b, err = core.AppendEngineState(b, s.eng)
	if err != nil {
		return nil, err
	}

	b = bincodec.U64(b, s.recNext)
	b = bincodec.Bool(b, s.hasRec)
	if s.hasRec {
		b = appendRecorderState(b, &s.recState)
	}

	h := fnv.New64a()
	h.Write(b)
	return bincodec.U64(b, h.Sum64()), nil
}

// DecodeSnapshot parses data written by EncodeSnapshot. It returns
// ErrSnapshotCorrupt for truncation, garbling, or checksum failure and
// ErrSnapshotVersion for an intact payload of a different codec version;
// a store treats either as a miss and rebuilds.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+4+8 {
		return nil, fmt.Errorf("%w: %d bytes", ErrSnapshotCorrupt, len(data))
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	body, sum := data[:len(data)-8], data[len(data)-8:]
	h := fnv.New64a()
	h.Write(body)
	want := bincodec.NewReader(sum).U64()
	if h.Sum64() != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	r := bincodec.NewReader(body[len(snapMagic):])
	if v := r.U32(); v != SnapshotCodecVersion {
		return nil, fmt.Errorf("%w: file v%d, codec v%d", ErrSnapshotVersion, v, SnapshotCodecVersion)
	}

	s := &Snapshot{}
	s.scheme = r.Str()
	s.ncores = int(r.U32())
	decodeBreakdown(r, &s.bd)
	decodeCounters(r, &s.ctr)

	ndom := r.Count(21)
	s.domains = make(map[core.DomainID]domainInfo, ndom)
	for i := 0; i < ndom; i++ {
		d := core.DomainID(r.U32())
		s.domains[d] = domainInfo{
			region: memlayout.Region{Base: memlayout.VA(r.U64()), Size: r.U64()},
			perm:   core.Perm(r.U8()),
		}
	}

	nspan := r.Count(17)
	s.spans = make([]domSpan, nspan)
	for i := range s.spans {
		s.spans[i] = domSpan{
			base:     memlayout.VA(r.U64()),
			end:      memlayout.VA(r.U64()),
			writable: r.Bool(),
		}
	}

	if r.Bool() {
		naff := r.Count(8)
		s.affinity = make(map[core.ThreadID]int, naff)
		for i := 0; i < naff; i++ {
			th := core.ThreadID(r.U32())
			s.affinity[th] = int(r.U32())
		}
	}

	s.mutGen = r.U64()
	nfault := r.Count(18)
	s.faults = make([]FaultRecord, nfault)
	for i := range s.faults {
		f := &s.faults[i]
		f.Thread = core.ThreadID(r.U32())
		f.VA = memlayout.VA(r.U64())
		f.Write = r.Bool()
		f.Domain = core.DomainID(r.U32())
		f.Page = r.Bool()
	}
	s.faultsDropped = r.U64()

	var err error
	if s.pt, err = pagetable.DecodeTable(r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	s.memst = decodeMemState(r)
	if s.caches, err = cache.DecodeHierarchyState(r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}

	ncore := r.Count(44)
	s.cores = make([]coreSnap, ncore)
	for i := range s.cores {
		cs := &s.cores[i]
		cs.cycles = r.U64()
		cs.instRem = r.U64()
		cs.thread = core.ThreadID(r.U32())
		cs.active = r.Bool()
		cs.tlbL1Hits = r.U64()
		cs.tlbL2Hits = r.U64()
		cs.tlbMisses = r.U64()
		if cs.l1, err = tlb.DecodeState(r); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		if cs.l2, err = tlb.DecodeState(r); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		ndebt := r.Count(8)
		cs.debt = make(map[uint64]struct{}, ndebt)
		for j := 0; j < ndebt; j++ {
			cs.debt[r.U64()] = struct{}{}
		}
	}

	if s.eng, err = core.DecodeEngineState(r); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}

	s.recNext = r.U64()
	s.hasRec = r.Bool()
	if s.hasRec {
		decodeRecorderState(r, &s.recState)
	}

	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, r.Len())
	}
	return s, nil
}

// ResealSnapshotVersion returns a copy of data with the version field
// replaced and the trailing checksum recomputed — the shape of a file an
// intact future writer would produce. It exists so version-rejection
// coverage (here and in the store's hostility tests) exercises the
// version check rather than the checksum.
func ResealSnapshotVersion(data []byte, v uint32) []byte {
	mut := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(mut[len(snapMagic):], v)
	h := fnv.New64a()
	h.Write(mut[: len(mut)-8 : len(mut)-8])
	binary.LittleEndian.PutUint64(mut[len(mut)-8:], h.Sum64())
	return mut
}

// RestoreSafe is Restore for snapshots of untrusted provenance (a disk
// store another process wrote): a geometry or scheme mismatch — which
// Restore reports by panicking, as it indicates a caller bug on the
// in-memory path — comes back as an error, with the machine owed a
// rebuild by the caller (its state may be partially overwritten).
func (m *Machine) RestoreSafe(s *Snapshot) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("sim: restore rejected: %v", p)
		}
	}()
	m.Restore(s)
	return nil
}

func appendBreakdown(b []byte, bd *stats.Breakdown) []byte {
	b = bincodec.U32(b, uint32(stats.NumCategories))
	for _, v := range bd.Cycles {
		b = bincodec.U64(b, v)
	}
	for _, v := range bd.Counts {
		b = bincodec.U64(b, v)
	}
	return b
}

func decodeBreakdown(r *bincodec.Reader, bd *stats.Breakdown) {
	if n := r.Count(16); n != stats.NumCategories {
		r.Fail(fmt.Errorf("breakdown has %d categories, want %d", n, stats.NumCategories))
		return
	}
	for i := range bd.Cycles {
		bd.Cycles[i] = r.U64()
	}
	for i := range bd.Counts {
		bd.Counts[i] = r.U64()
	}
}

// counterFields lists every stats.Counters field in encoding order. The
// codec round-trip test checks this list against the struct by
// reflection, so a new counter cannot be silently dropped from the
// format.
func counterFields(c *stats.Counters) []*uint64 {
	return []*uint64{
		&c.Instructions, &c.Loads, &c.Stores,
		&c.TLBL1Hits, &c.TLBL2Hits, &c.TLBMisses, &c.TLBFlushed, &c.DebtRefills,
		&c.L1DHits, &c.L2Hits, &c.MemReads, &c.MemWrites, &c.NVMReads, &c.NVMWrites,
		&c.PermSwitches, &c.Evictions, &c.DTTWalks,
		&c.PTLBMisses, &c.PTLBHits, &c.DTTLBHits, &c.DTTLBMisses,
		&c.DomainFaults, &c.PageFaults,
		&c.ContextSwitches,
	}
}

func appendCounters(b []byte, c *stats.Counters) []byte {
	fields := counterFields(c)
	b = bincodec.U32(b, uint32(len(fields)))
	for _, f := range fields {
		b = bincodec.U64(b, *f)
	}
	return b
}

func decodeCounters(r *bincodec.Reader, c *stats.Counters) {
	fields := counterFields(c)
	if n := r.Count(8); n != len(fields) {
		r.Fail(fmt.Errorf("counters has %d fields, want %d", n, len(fields)))
		return
	}
	for _, f := range fields {
		*f = r.U64()
	}
}

func appendMemState(b []byte, st mem.State) []byte {
	b = bincodec.U64(b, uint64(st.NextDRAM))
	b = bincodec.U64(b, uint64(st.NextNVM))
	b = bincodec.U64(b, st.DRAMReads)
	b = bincodec.U64(b, st.NVMReads)
	b = bincodec.U64(b, st.DRAMWr)
	b = bincodec.U64(b, st.NVMWr)
	return b
}

func decodeMemState(r *bincodec.Reader) mem.State {
	return mem.State{
		NextDRAM:  memlayout.PA(r.U64()),
		NextNVM:   memlayout.PA(r.U64()),
		DRAMReads: r.U64(),
		NVMReads:  r.U64(),
		DRAMWr:    r.U64(),
		NVMWr:     r.U64(),
	}
}

func appendRecorderState(b []byte, st *obs.RecorderState) []byte {
	b = bincodec.U64(b, st.Last.Retired)
	b = appendCounters(b, &st.Last.Counters)
	b = appendBreakdown(b, &st.Last.Breakdown)
	b = bincodec.U32(b, uint32(len(st.Last.Cores)))
	for _, cs := range st.Last.Cores {
		b = bincodec.U64(b, cs.Cycles)
		b = bincodec.U64(b, cs.TLBL1Hits)
		b = bincodec.U64(b, cs.TLBL2Hits)
		b = bincodec.U64(b, cs.TLBMisses)
	}
	b = bincodec.U32(b, uint32(st.Samples))
	b = bincodec.U32(b, uint32(len(st.EvAccum)))
	for _, ev := range st.EvAccum {
		for _, v := range ev {
			b = bincodec.U64(b, v)
		}
	}
	return b
}

func decodeRecorderState(r *bincodec.Reader, st *obs.RecorderState) {
	st.Last.Retired = r.U64()
	decodeCounters(r, &st.Last.Counters)
	decodeBreakdown(r, &st.Last.Breakdown)
	ncore := r.Count(32)
	st.Last.Cores = make([]obs.CoreState, ncore)
	for i := range st.Last.Cores {
		cs := &st.Last.Cores[i]
		cs.Cycles = r.U64()
		cs.TLBL1Hits = r.U64()
		cs.TLBL2Hits = r.U64()
		cs.TLBMisses = r.U64()
	}
	st.Samples = int(r.U32())
	nev := r.Count(8 * stats.NumEventKinds)
	st.EvAccum = make([][stats.NumEventKinds]uint64, nev)
	for i := range st.EvAccum {
		for j := 0; j < stats.NumEventKinds; j++ {
			st.EvAccum[i][j] = r.U64()
		}
	}
}
