package sim_test

import (
	"bytes"
	"reflect"
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/obs"
	"domainvirt/internal/sim"
	"domainvirt/internal/trace"
)

// buildReplayTrace records a synthetic multi-thread workload trace with
// attaches, permission churn, fences, and a denied access (so fault
// records cross partition boundaries too).
func buildReplayTrace(tb testing.TB, rounds int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	const nd = 10
	for d := core.DomainID(1); d <= nd; d++ {
		if err := w.Attach(d, benchRegion(d), core.PermRW); err != nil {
			tb.Fatal(err)
		}
	}
	for th := core.ThreadID(1); th <= 3; th++ {
		for d := core.DomainID(1); d <= nd; d++ {
			w.SetPerm(th, d, core.PermRW, 0)
		}
	}
	for i := 0; i < rounds; i++ {
		th := core.ThreadID(1 + i%3)
		d := core.DomainID(1 + i%nd)
		r := benchRegion(d)
		w.Instr(th, uint64(4+i%7))
		va := r.Base + memlayout.VA((i%16)*memlayout.PageSize) + memlayout.VA((i%31)*64)
		w.Access(th, va, 8, i%3 == 0)
		w.Access(th, va+8, 8, false)
		if i%19 == 0 {
			p := core.PermR
			if i%38 == 0 {
				p = core.PermRW
			}
			w.SetPerm(th, d, p, core.SiteID(i%4))
		}
		if i%29 == 0 {
			w.Fence(th)
		}
		if i%97 == 0 {
			w.Fetch(th, r.Base+memlayout.VA(i*4))
		}
		if i == rounds/2 {
			// One denied access mid-trace: revoke, touch, re-grant.
			w.SetPerm(1, 2, core.PermNone, 0)
			w.Access(1, benchRegion(2).Base, 8, true)
			w.SetPerm(1, 2, core.PermRW, 0)
		}
	}
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelReplayConformance is the tentpole A/B gate at the sim
// level: for every scheme, the partitioned parallel replay must
// reproduce the sequential planning pass bit-for-bit — Result, fault
// records, and (observed) the merged recorder's samples and histograms.
func TestParallelReplayConformance(t *testing.T) {
	data := buildReplayTrace(t, 1500)
	for _, s := range sim.AllSchemes {
		t.Run(string(s), func(t *testing.T) {
			cfg := sim.DefaultConfig()
			cfg.Cores = 2
			const epoch = 2500
			plan, err := sim.NewReplayPlan(data, cfg, s, sim.ReplayPlanOptions{MaxPartitions: 8, Epoch: epoch})
			if err != nil {
				t.Fatal(err)
			}
			if plan.Partitions() < 2 {
				t.Fatalf("expected a multi-way plan, got %d partitions", plan.Partitions())
			}
			want := plan.Result()

			// Unobserved parallel replay (Replay self-checks every
			// partition against its sequential checkpoint).
			got, faults, err := plan.Replay(4)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("parallel result differs:\n got: %+v\nwant: %+v", got, want)
			}
			if !reflect.DeepEqual(faults, plan.Faults()) {
				t.Errorf("parallel faults differ: got %v want %v", faults, plan.Faults())
			}

			// Observed parallel replay: merged recorder must match the
			// sequential recorder sample-for-sample and byte-for-byte.
			gotObs, rec, err := plan.ReplayObserved(4, obs.Options{Epoch: epoch})
			if err != nil {
				t.Fatal(err)
			}
			if gotObs != want {
				t.Errorf("observed parallel result differs:\n got: %+v\nwant: %+v", gotObs, want)
			}
			seq := plan.Recorder()
			if !reflect.DeepEqual(rec.Samples(), seq.Samples()) {
				t.Errorf("merged samples differ: %d vs %d", len(rec.Samples()), len(seq.Samples()))
			}
			if !reflect.DeepEqual(rec.AccessHist(), seq.AccessHist()) {
				t.Error("merged access histogram differs from sequential")
			}
			if !reflect.DeepEqual(rec.SetPermHist(), seq.SetPermHist()) {
				t.Error("merged SETPERM histogram differs from sequential")
			}
			var a, b bytes.Buffer
			if err := rec.WriteJSONL(&a); err != nil {
				t.Fatal(err)
			}
			if err := seq.WriteJSONL(&b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Error("merged JSONL export is not byte-identical to sequential")
			}
		})
	}
}

// TestParallelReplayWorkerCounts: the worker count must never change
// the outcome, only the wall clock.
func TestParallelReplayWorkerCounts(t *testing.T) {
	data := buildReplayTrace(t, 800)
	cfg := sim.DefaultConfig()
	plan, err := sim.NewReplayPlan(data, cfg, sim.SchemeDomainVirt, sim.ReplayPlanOptions{MaxPartitions: 6})
	if err != nil {
		t.Fatal(err)
	}
	want := plan.Result()
	for _, workers := range []int{1, 2, 3, 8} {
		got, _, err := plan.Replay(workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got != want {
			t.Errorf("workers=%d result differs", workers)
		}
	}
}

// TestReplayObservedEpochMismatch: the sample boundaries are baked into
// the plan's snapshots, so a different epoch must be rejected.
func TestReplayObservedEpochMismatch(t *testing.T) {
	data := buildReplayTrace(t, 200)
	plan, err := sim.NewReplayPlan(data, sim.DefaultConfig(), sim.SchemeBaseline,
		sim.ReplayPlanOptions{MaxPartitions: 4, Epoch: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := plan.ReplayObserved(2, obs.Options{Epoch: 500}); err == nil {
		t.Error("epoch mismatch accepted")
	}
}

// BenchmarkParallelReplay measures the partition-parallel phase against
// the plan's stored sequential reference: each iteration replays the
// whole trace across partitions on the worker pool, including the
// bit-identity checks against the sequential checkpoints.
func BenchmarkParallelReplay(b *testing.B) {
	data := buildReplayTrace(b, 4000)
	cfg := sim.DefaultConfig()
	plan, err := sim.NewReplayPlan(data, cfg, sim.SchemeDomainVirt, sim.ReplayPlanOptions{MaxPartitions: 8})
	if err != nil {
		b.Fatal(err)
	}
	want := plan.Result()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		got, _, err := plan.Replay(8)
		if err != nil {
			b.Fatal(err)
		}
		if got != want {
			b.Fatal("parallel replay diverged")
		}
	}
}
