package sim

import (
	"reflect"
	"testing"

	"domainvirt/internal/bincodec"
	"domainvirt/internal/stats"
)

// TestCounterFieldsComplete pins counterFields against the struct by
// reflection: adding a field to stats.Counters without teaching the
// codec (and bumping SnapshotCodecVersion) fails here instead of
// silently dropping the counter from persisted snapshots.
func TestCounterFieldsComplete(t *testing.T) {
	var c stats.Counters
	rv := reflect.ValueOf(&c).Elem()
	if rv.NumField() != len(counterFields(&c)) {
		t.Fatalf("stats.Counters has %d fields but counterFields lists %d; "+
			"add the field to the codec and bump SnapshotCodecVersion",
			rv.NumField(), len(counterFields(&c)))
	}
	// Every listed pointer must address a distinct struct field, and every
	// struct field must be listed: set each field to a unique value by
	// reflection and check the codec round-trips all of them.
	for i := 0; i < rv.NumField(); i++ {
		rv.Field(i).SetUint(uint64(1000 + i))
	}
	b := appendCounters(nil, &c)
	var got stats.Counters
	decodeCounters(bincodec.NewReader(b), &got)
	if got != c {
		t.Errorf("counters round trip dropped a field:\n got: %+v\nwant: %+v", got, c)
	}
}
