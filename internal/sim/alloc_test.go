package sim_test

import (
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/sim"
)

// TestAccessAllocFree pins the steady-state access path at zero heap
// allocations per operation for every scheme, in both hot regimes: the
// L0 same-page fast path and the page-striding TLB-hit path. The access
// path runs millions of times per experiment; a single allocation per
// op would dominate replay throughput.
func TestAccessAllocFree(t *testing.T) {
	for _, s := range benchSchemes {
		s := s
		t.Run(string(s), func(t *testing.T) {
			m := benchMachine(t, s, 4, 8)
			r := benchRegion(1)
			i := 0
			step := func() {
				// Same-page lines (L0 regime) plus a page stride
				// (TLB-hit regime), read and write.
				va := r.Base + memlayout.VA((i&7)*64)
				m.Access(1, va, 8, i&1 == 0)
				m.Access(1, r.Base+memlayout.VA((i&7)*memlayout.PageSize), 8, false)
				i++
			}
			step() // warm
			if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
				t.Errorf("scheme %s: access path allocates %v times per run, want 0", s, allocs)
			}
		})
	}
}

// TestAccessSlowPathAllocFree is TestAccessAllocFree with the L0 fast
// path disabled: the full TLB-lookup/engine-check pipeline must also be
// allocation-free, since the fast path legitimately misses (page
// strides, context switches, permission changes).
func TestAccessSlowPathAllocFree(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.DisableFastPath = true
	m := sim.NewMachine(cfg, sim.SchemeDomainVirt)
	r := benchRegion(1)
	if err := m.Attach(1, r, core.PermRW); err != nil {
		t.Fatal(err)
	}
	m.SetPerm(1, 1, core.PermRW, 0)
	if !m.Access(1, r.Base, 8, false) {
		t.Fatal("warmup access denied")
	}
	i := 0
	step := func() {
		m.Access(1, r.Base+memlayout.VA((i&7)*64), 8, i&1 == 0)
		i++
	}
	step()
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("slow path allocates %v times per run, want 0", allocs)
	}
}

// TestFetchAllocFree pins the instruction-fetch path at zero heap
// allocations per steady-state operation.
func TestFetchAllocFree(t *testing.T) {
	m := benchMachine(t, sim.SchemeDomainVirt, 1, 8)
	va := benchRegion(1).Base
	for i := 0; i < 8; i++ {
		m.Fetch(1, va+memlayout.VA(i*memlayout.PageSize))
	}
	i := 0
	step := func() {
		m.Fetch(1, va+memlayout.VA((i&7)*memlayout.PageSize))
		i++
	}
	step()
	if allocs := testing.AllocsPerRun(1000, step); allocs != 0 {
		t.Errorf("fetch path allocates %v times per run, want 0", allocs)
	}
}
