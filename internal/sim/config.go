// Package sim is the trace-driven timing simulator standing in for the
// paper's Sniper-based methodology. A Machine consumes the instrumentation
// event stream (package trace) through the modeled TLB/cache/memory
// hierarchy of Table II with one of the protection engines (package core)
// plugged into the MMU, accumulating cycles with per-category overhead
// attribution.
//
// All results the harness reports are relative overheads of a protected run
// against a baseline run of the identical event stream, so the fixed-CPI
// front end substituted for Sniper's out-of-order core cancels to first
// order; OverlapFactor exposes the residual sensitivity for ablations.
package sim

import (
	"domainvirt/internal/cache"
	"domainvirt/internal/core"
	"domainvirt/internal/mem"
	"domainvirt/internal/tlb"
)

// Config assembles the full machine configuration. DefaultConfig matches
// the paper's Table II.
type Config struct {
	Cores int

	// Base CPI for non-memory instructions as a rational CPINum/CPIDen
	// (1/4 for the paper's 4-way issue out-of-order core).
	CPINum uint64
	CPIDen uint64

	// ClockHz converts cycles to seconds for switches/sec reporting.
	ClockHz float64

	L1TLB       tlb.Config
	L2TLB       tlb.Config
	L1TLBLat    uint64
	L2TLBLat    uint64
	WalkPenalty uint64 // TLB miss penalty

	L1D cache.Config
	L2  cache.Config

	Mem mem.Config

	Costs core.Costs

	// MinorFault is the demand-mapping cost of a first-touch page,
	// charged to the base category (identical in every scheme).
	MinorFault uint64

	// FenceCost is the persist-barrier cost, also scheme-independent.
	FenceCost uint64

	// CtxSwitchCost is the kernel context-switch cost, charged to base;
	// engines add their own thread-state costs on top.
	CtxSwitchCost uint64

	// DTTLBEntries and PTLBEntries size the per-core domain caches.
	DTTLBEntries int
	PTLBEntries  int

	// MaxFaultRecords bounds the retained fault diagnostics; denials
	// beyond the cap are counted (Machine.FaultsDropped) but not stored,
	// so fault-heavy adversarial traces cannot grow memory unboundedly.
	MaxFaultRecords int

	// DisableFastPath turns off the per-core last-translation (L0) fast
	// path, forcing every access down the full TLB-lookup/engine-check
	// pipeline. Simulated cycles, counters, and verdicts are identical
	// either way (the conformance suite enforces this); the knob exists
	// for that A/B check and for perf debugging.
	DisableFastPath bool
}

// DefaultConfig returns the paper's simulation parameters (Table II) on a
// single core.
func DefaultConfig() Config {
	return Config{
		Cores:   1,
		CPINum:  1,
		CPIDen:  4,
		ClockHz: 2.2e9,

		L1TLB:       tlb.Config{Entries: 64, Ways: 4},
		L2TLB:       tlb.Config{Entries: 1536, Ways: 6},
		L1TLBLat:    1,
		L2TLBLat:    4,
		WalkPenalty: 30,

		L1D: cache.Config{SizeBytes: 32 << 10, Ways: 8, Latency: 1},
		L2:  cache.Config{SizeBytes: 1 << 20, Ways: 16, Latency: 8},

		Mem: mem.DefaultConfig(),

		Costs: core.DefaultCosts(),

		MinorFault:    0, // warmed up during setup; see Machine.ResetStats
		FenceCost:     10,
		CtxSwitchCost: 1500,

		DTTLBEntries: 16,
		PTLBEntries:  16,

		MaxFaultRecords: 64,
	}
}

// Scheme names a protection engine.
type Scheme string

// Schemes.
const (
	SchemeBaseline   Scheme = "baseline"
	SchemeLowerbound Scheme = "lowerbound"
	SchemeMPK        Scheme = "mpk"
	SchemeLibmpk     Scheme = "libmpk"
	SchemeMPKVirt    Scheme = "mpkvirt"
	SchemeDomainVirt Scheme = "domainvirt"
)

// AllSchemes lists every scheme in presentation order.
var AllSchemes = []Scheme{
	SchemeBaseline, SchemeLowerbound, SchemeMPK,
	SchemeLibmpk, SchemeMPKVirt, SchemeDomainVirt,
}

// NewEngine constructs the engine for scheme under cfg.
func NewEngine(scheme Scheme, cfg Config) core.Engine {
	switch scheme {
	case SchemeBaseline:
		return core.NewBaseline(cfg.Costs)
	case SchemeLowerbound:
		return core.NewLowerbound(cfg.Costs)
	case SchemeMPK:
		return core.NewMPK(cfg.Costs, cfg.Cores)
	case SchemeLibmpk:
		return core.NewLibmpk(cfg.Costs, cfg.Cores)
	case SchemeMPKVirt:
		return core.NewMPKVirt(cfg.Costs, cfg.Cores, cfg.DTTLBEntries)
	case SchemeDomainVirt:
		return core.NewDomainVirt(cfg.Costs, cfg.Cores, cfg.PTLBEntries)
	}
	panic("sim: unknown scheme " + string(scheme))
}
