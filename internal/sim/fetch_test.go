package sim

import (
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

// TestExecuteOnlyDomains: with a domain's permission set to None
// (the "1x: inaccessible, execute only" encoding), instruction fetches
// from the PMO succeed while loads and stores are denied — the paper's
// executable-only memory use of MPK.
func TestExecuteOnlyDomains(t *testing.T) {
	for _, scheme := range []Scheme{SchemeMPK, SchemeLibmpk, SchemeMPKVirt, SchemeDomainVirt} {
		m := NewMachine(DefaultConfig(), scheme)
		r := memlayout.Region{Base: 0x2000_0000_0000, Size: 2 << 20}
		if err := m.Attach(1, r, core.PermRW); err != nil {
			t.Fatal(err)
		}
		m.SetPerm(1, 1, core.PermNone, 1) // execute-only

		if !m.Fetch(1, r.Base+0x40) {
			t.Errorf("%s: fetch from execute-only domain denied", scheme)
		}
		if m.Access(1, r.Base+0x40, 8, false) {
			t.Errorf("%s: load from execute-only domain allowed", scheme)
		}
		if m.Access(1, r.Base+0x40, 8, true) {
			t.Errorf("%s: store to execute-only domain allowed", scheme)
		}
		res := m.Result()
		if res.Counters.DomainFaults != 2 {
			t.Errorf("%s: faults = %d, want 2 (load+store)", scheme, res.Counters.DomainFaults)
		}
	}
}

// TestFetchTiming: fetches go through the TLB and cache hierarchy like
// any other access.
func TestFetchTiming(t *testing.T) {
	m := NewMachine(DefaultConfig(), SchemeBaseline)
	va := memlayout.VA(0x40000)
	if !m.Fetch(1, va) {
		t.Fatal("baseline fetch denied")
	}
	cold := m.Result().Cycles
	if cold != 164 { // TLB walk + L1D + L2 + DRAM (shared I/D hierarchy)
		t.Errorf("cold fetch = %d cycles, want 164", cold)
	}
	m.ResetStats()
	m.Fetch(1, va)
	if warm := m.Result().Cycles; warm != 2 {
		t.Errorf("warm fetch = %d cycles, want 2", warm)
	}
}
