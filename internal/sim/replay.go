package sim

import (
	"fmt"
	"runtime"
	"sync"

	"domainvirt/internal/obs"
	"domainvirt/internal/stats"
	"domainvirt/internal/trace"
)

// ReplayPlanOptions configures NewReplayPlan.
type ReplayPlanOptions struct {
	// MaxPartitions bounds the number of trace partitions; <= 0 selects
	// GOMAXPROCS. The actual count can be lower when the trace offers
	// fewer safe split points.
	MaxPartitions int
	// Epoch is the observability sampling period in retired
	// instructions for the planning pass and any ReplayObserved calls
	// (which must use the same epoch); 0 records totals only.
	Epoch uint64
}

// ReplayPlan is a trace prepared for partitioned parallel replay: the
// trace split at safe boundaries (sync events and thread switches) plus
// a machine snapshot at every boundary, taken during one sequential
// planning pass. The planning pass is itself a complete observed replay
// — Result/Recorder/Faults expose its outcome — so the plan is the
// warmup-once artifact: build it once per (trace, scheme, config), then
// every subsequent replay of the same trace runs partition-parallel,
// each worker forking from its boundary snapshot.
type ReplayPlan struct {
	data   []byte
	cfg    Config
	scheme Scheme
	parts  []trace.Partition
	snaps  []*Snapshot
	epoch  uint64

	res    stats.Result
	faults []FaultRecord
	events uint64
	rec    *obs.Recorder
}

// NewReplayPlan builds a plan for one in-memory trace under one scheme
// and configuration: a sequential replay that snapshots the machine at
// every partition boundary.
func NewReplayPlan(data []byte, cfg Config, scheme Scheme, opt ReplayPlanOptions) (*ReplayPlan, error) {
	maxParts := opt.MaxPartitions
	if maxParts <= 0 {
		maxParts = runtime.GOMAXPROCS(0)
	}
	parts, err := trace.SplitTrace(data, maxParts)
	if err != nil {
		return nil, err
	}

	m := NewMachine(cfg, scheme)
	rec := obs.NewRecorder(obs.Options{Epoch: opt.Epoch})
	m.SetRecorder(rec)
	p := &ReplayPlan{
		data:   data,
		cfg:    cfg,
		scheme: scheme,
		parts:  parts,
		snaps:  make([]*Snapshot, len(parts)),
		epoch:  opt.Epoch,
		rec:    rec,
	}
	for i, part := range parts {
		p.snaps[i] = m.Snapshot()
		n, err := trace.ReplayPartition(data, part, m)
		if err != nil {
			return nil, fmt.Errorf("sim: planning pass partition %d: %w", i, err)
		}
		p.events += n
	}
	m.FlushObs()
	p.res = m.Result()
	p.faults = m.Faults()
	return p, nil
}

// Partitions returns the number of partitions in the plan.
func (p *ReplayPlan) Partitions() int { return len(p.parts) }

// Events returns the total event count of the trace.
func (p *ReplayPlan) Events() uint64 { return p.events }

// Result returns the sequential planning pass's result — the reference
// every parallel replay must reproduce bit-identically.
func (p *ReplayPlan) Result() stats.Result { return p.res }

// Faults returns the planning pass's fault diagnostics.
func (p *ReplayPlan) Faults() []FaultRecord { return append([]FaultRecord(nil), p.faults...) }

// Recorder returns the planning pass's recorder: a complete observed
// sequential replay (histograms, epoch series when Epoch > 0).
func (p *ReplayPlan) Recorder() *obs.Recorder { return p.rec }

// Replay replays every partition concurrently on a bounded worker pool,
// each partition on a fresh machine forked from its boundary snapshot,
// and verifies each partition's end state bit-identically against the
// next sequential checkpoint (the last partition's end state is checked
// against the planning pass's result). workers <= 0 selects GOMAXPROCS.
//
// The returned Result and fault records are those of the final machine
// state and always equal the planning pass's — any divergence is an
// error, which makes Replay the parallel-vs-sequential conformance gate.
func (p *ReplayPlan) Replay(workers int) (stats.Result, []FaultRecord, error) {
	res, _, faults, err := p.replay(workers, nil)
	return res, faults, err
}

// ReplayObserved is Replay with per-partition observability: every
// worker's recorder is seeded from the boundary sampler state, and the
// partition recorders merge in partition order into one recorder whose
// samples, histograms, and exports are byte-identical to a sequential
// observed replay. opts.Epoch must equal the plan's epoch — the sample
// boundaries are baked into the boundary snapshots.
func (p *ReplayPlan) ReplayObserved(workers int, opts obs.Options) (stats.Result, *obs.Recorder, error) {
	if opts.Epoch != p.epoch {
		return stats.Result{}, nil, fmt.Errorf("sim: ReplayObserved epoch %d, plan built with %d", opts.Epoch, p.epoch)
	}
	res, rec, _, err := p.replay(workers, &opts)
	return res, rec, err
}

func (p *ReplayPlan) replay(workers int, obsOpts *obs.Options) (stats.Result, *obs.Recorder, []FaultRecord, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.parts) {
		workers = len(p.parts)
	}

	n := len(p.parts)
	recs := make([]*obs.Recorder, n)
	errs := make([]error, n)
	var lastRes stats.Result
	var lastFaults []FaultRecord

	runPart := func(i int) {
		m := NewMachine(p.cfg, p.scheme)
		if obsOpts != nil {
			rec := obs.NewRecorder(*obsOpts)
			st, ok := p.snaps[i].RecorderState()
			if !ok {
				errs[i] = fmt.Errorf("sim: partition %d snapshot carries no recorder state", i)
				return
			}
			rec.Seed(st)
			// SetRecorder before Restore: Restore reinstates the sampler
			// boundary (recNext) verbatim.
			m.SetRecorder(rec)
			recs[i] = rec
		}
		m.Restore(p.snaps[i])
		if _, err := trace.ReplayPartition(p.data, p.parts[i], m); err != nil {
			errs[i] = fmt.Errorf("sim: partition %d: %w", i, err)
			return
		}
		if i == n-1 {
			if obsOpts != nil {
				m.FlushObs()
			}
			lastRes = m.Result()
			lastFaults = m.Faults()
			if lastRes != p.res {
				errs[i] = fmt.Errorf("sim: partition %d end state diverged from sequential replay", i)
			}
			return
		}
		// Interior partition: its end state must match the next
		// sequential checkpoint. Comparing Results (counters, breakdown,
		// per-core cycle maxima) against the machine re-restored from
		// that checkpoint covers every accounting-visible divergence.
		got := m.Result()
		m.Restore(p.snaps[i+1])
		if want := m.Result(); got != want {
			errs[i] = fmt.Errorf("sim: partition %d end state diverged from checkpoint %d", i, i+1)
		}
	}

	if workers <= 1 {
		for i := 0; i < n; i++ {
			runPart(i)
		}
	} else {
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					runPart(i)
				}
			}()
		}
		for i := 0; i < n; i++ {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
	}

	for _, err := range errs {
		if err != nil {
			return stats.Result{}, nil, nil, err
		}
	}

	var merged *obs.Recorder
	if obsOpts != nil {
		merged = recs[0]
		for i := 1; i < n; i++ {
			merged.Absorb(recs[i])
		}
	}
	return lastRes, merged, lastFaults, nil
}
