package sim

import (
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/stats"
)

func newTestMachine(scheme Scheme) *Machine {
	return NewMachine(DefaultConfig(), scheme)
}

func TestInstrCPI(t *testing.T) {
	m := newTestMachine(SchemeBaseline)
	m.Instr(1, 1000)
	res := m.Result()
	if res.Cycles != 250 { // 4-way issue: CPI 0.25
		t.Errorf("1000 instructions = %d cycles, want 250", res.Cycles)
	}
	// Fractional remainders carry across calls.
	m2 := newTestMachine(SchemeBaseline)
	for i := 0; i < 1000; i++ {
		m2.Instr(1, 1)
	}
	if got := m2.Result().Cycles; got != 250 {
		t.Errorf("1x1000 instructions = %d cycles, want 250", got)
	}
}

func TestAccessLatencyComposition(t *testing.T) {
	m := newTestMachine(SchemeBaseline)
	va := memlayout.VA(0x10000)
	m.Access(1, va, 8, false)
	res := m.Result()
	// Cold access: L1 TLB (1) + L2 TLB (4) + walk (30) + L1D (1) +
	// L2 (8) + DRAM (120) = 164.
	if res.Cycles != 164 {
		t.Errorf("cold access = %d cycles, want 164", res.Cycles)
	}
	if res.Counters.TLBMisses != 1 || res.Counters.Loads != 1 {
		t.Errorf("counters = %+v", res.Counters)
	}
	m.ResetStats()
	m.Access(1, va, 8, false)
	res = m.Result()
	// Warm access: L1 TLB (1) + L1D (1).
	if res.Cycles != 2 {
		t.Errorf("warm access = %d cycles, want 2", res.Cycles)
	}
}

func TestAccessSplitsCacheLines(t *testing.T) {
	m := newTestMachine(SchemeBaseline)
	m.Access(1, 0x10000, 128, true) // two 64-byte lines
	res := m.Result()
	if res.Counters.Stores != 2 {
		t.Errorf("stores = %d, want 2 (line split)", res.Counters.Stores)
	}
}

func TestDemandMapKinds(t *testing.T) {
	m := newTestMachine(SchemeBaseline)
	pmoRegion := memlayout.Region{Base: 0x2000_0000_0000, Size: 2 << 20}
	if err := m.Attach(1, pmoRegion, core.PermRW); err != nil {
		t.Fatal(err)
	}
	m.Access(1, pmoRegion.Base, 8, false) // PMO: NVM
	m.Access(1, 0x5000, 8, false)         // heap: DRAM
	res := m.Result()
	if res.Counters.NVMReads != 1 {
		t.Errorf("NVM reads = %d, want 1", res.Counters.NVMReads)
	}
	if res.Counters.MemReads != 2 {
		t.Errorf("memory reads = %d, want 2", res.Counters.MemReads)
	}
}

func TestPagePermissionEnforced(t *testing.T) {
	m := newTestMachine(SchemeBaseline)
	r := memlayout.Region{Base: 0x2000_0000_0000, Size: 2 << 20}
	if err := m.Attach(1, r, core.PermR); err != nil { // read-only attach
		t.Fatal(err)
	}
	m.Access(1, r.Base, 8, false)
	if got := m.Result().Counters.PageFaults; got != 0 {
		t.Fatalf("read faulted: %d", got)
	}
	m.Access(1, r.Base, 8, true)
	res := m.Result()
	if res.Counters.PageFaults != 1 {
		t.Errorf("store to read-only attach not page-faulted: %+v", res.Counters)
	}
	if len(m.Faults()) != 1 || !m.Faults()[0].Page {
		t.Errorf("fault record = %+v", m.Faults())
	}
}

func TestDomainFaultRecorded(t *testing.T) {
	m := newTestMachine(SchemeDomainVirt)
	r := memlayout.Region{Base: 0x2000_0000_0000, Size: 2 << 20}
	if err := m.Attach(7, r, core.PermRW); err != nil {
		t.Fatal(err)
	}
	// No SETPERM: the domain denies everything.
	m.Access(1, r.Base, 8, false)
	res := m.Result()
	if res.Counters.DomainFaults != 1 {
		t.Fatalf("domain fault not raised: %+v", res.Counters)
	}
	f := m.Faults()[0]
	if f.Domain != 7 || f.Page {
		t.Errorf("fault record = %+v", f)
	}
}

func TestInvalidationDebtAttribution(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(cfg, SchemeMPKVirt)
	// 17 domains so one access pattern forces an eviction.
	regions := make([]memlayout.Region, 17)
	for i := range regions {
		regions[i] = memlayout.Region{
			Base: memlayout.VA(0x2000_0000_0000 + uint64(i)<<21),
			Size: 2 << 20,
		}
		if err := m.Attach(core.DomainID(i+1), regions[i], core.PermRW); err != nil {
			t.Fatal(err)
		}
		m.SetPerm(1, core.DomainID(i+1), core.PermRW, 1)
	}
	// Touch 16 domains (all keys assigned), then the 17th evicts one.
	// Offsets are staggered by one page per domain so the 2 MB-aligned
	// region bases do not all alias into one TLB set.
	touch := func(i int) memlayout.VA {
		return regions[i].Base + memlayout.VA(i)*memlayout.PageSize
	}
	for i := 0; i < 17; i++ {
		m.Access(1, touch(i), 8, false)
	}
	res := m.Result()
	if res.Counters.Evictions == 0 {
		t.Fatal("no eviction with 17 domains")
	}
	if res.Counters.TLBFlushed == 0 {
		t.Fatal("eviction flushed nothing")
	}
	inval := res.Breakdown.Cycles[stats.CatTLBInval]
	if inval < cfg.Costs.TLBInval {
		t.Errorf("invalidation cycles = %d", inval)
	}
	// Re-touch everything: the flushed victim page re-walks, and that
	// walk must be charged to the invalidation category (debt).
	m.ResetStats()
	for i := 0; i < 17; i++ {
		m.Access(1, touch(i), 8, false)
	}
	res = m.Result()
	if res.Counters.DebtRefills == 0 {
		t.Error("no refill was attributed to TLB invalidation")
	}
}

func TestContextSwitchAccounting(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(cfg, SchemeBaseline)
	m.Instr(1, 100) // thread 1 on core 0
	m.Instr(2, 100) // thread 2 on the same core: a context switch
	res := m.Result()
	if res.Counters.ContextSwitches != 1 {
		t.Errorf("context switches = %d, want 1", res.Counters.ContextSwitches)
	}
	if res.Cycles < cfg.CtxSwitchCost {
		t.Errorf("switch cost not charged: %d", res.Cycles)
	}
}

func TestMultiCorePlacement(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 2
	m := NewMachine(cfg, SchemeBaseline)
	m.Instr(1, 400) // core 0
	m.Instr(2, 800) // core 1
	res := m.Result()
	if res.Counters.ContextSwitches != 0 {
		t.Errorf("cross-core placement caused %d switches", res.Counters.ContextSwitches)
	}
	if res.Cycles != 200 { // max(100, 200)
		t.Errorf("Cycles = %d, want max across cores 200", res.Cycles)
	}
	if res.WorkSum != 300 {
		t.Errorf("WorkSum = %d, want 300", res.WorkSum)
	}
}

func TestResetStatsKeepsWarmState(t *testing.T) {
	m := newTestMachine(SchemeBaseline)
	va := memlayout.VA(0x30000)
	m.Access(1, va, 8, false)
	m.ResetStats()
	m.Access(1, va, 8, false)
	res := m.Result()
	if res.Counters.TLBMisses != 0 {
		t.Error("ResetStats lost TLB state")
	}
	if res.Counters.L1DHits != 1 {
		t.Error("ResetStats lost cache state")
	}
}

func TestInspectorBlocksForeignSetPerm(t *testing.T) {
	m := newTestMachine(SchemeDomainVirt)
	in := core.NewInspector()
	in.Approve(1, "legit")
	m.SetInspector(in)
	r := memlayout.Region{Base: 0x2000_0000_0000, Size: 2 << 20}
	if err := m.Attach(1, r, core.PermRW); err != nil {
		t.Fatal(err)
	}
	m.SetPerm(1, 1, core.PermRW, 99) // attacker gadget site
	m.Access(1, r.Base, 8, true)
	res := m.Result()
	if res.Counters.DomainFaults < 2 { // blocked SETPERM + denied access
		t.Errorf("gadget SETPERM not blocked: %+v", res.Counters)
	}
	if len(in.Violations()) != 1 {
		t.Errorf("violations = %d", len(in.Violations()))
	}
	// The legitimate site works.
	m.SetPerm(1, 1, core.PermRW, 1)
	m.Access(1, r.Base+64, 8, true)
	if got := m.Result().Counters.DomainFaults; got != res.Counters.DomainFaults {
		t.Error("legitimate SETPERM did not take effect")
	}
}

func TestFenceCost(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(cfg, SchemeBaseline)
	m.Fence(1)
	if got := m.Result().Cycles; got != cfg.FenceCost {
		t.Errorf("fence = %d cycles, want %d", got, cfg.FenceCost)
	}
}

func TestBaselineIgnoresSetPerm(t *testing.T) {
	m := newTestMachine(SchemeBaseline)
	r := memlayout.Region{Base: 0x2000_0000_0000, Size: 2 << 20}
	if err := m.Attach(1, r, core.PermRW); err != nil {
		t.Fatal(err)
	}
	m.SetPerm(1, 1, core.PermRW, 1)
	res := m.Result()
	if res.Cycles != 0 || res.Counters.PermSwitches != 0 {
		t.Errorf("baseline charged for SETPERM: %+v", res)
	}
}

func TestLowerboundChargesExactly27(t *testing.T) {
	cfg := DefaultConfig()
	m := NewMachine(cfg, SchemeLowerbound)
	r := memlayout.Region{Base: 0x2000_0000_0000, Size: 2 << 20}
	if err := m.Attach(1, r, core.PermRW); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		m.SetPerm(1, 1, core.PermRW, 1)
	}
	res := m.Result()
	if res.Cycles != 10*cfg.Costs.WRPKRU {
		t.Errorf("lowerbound = %d cycles, want %d", res.Cycles, 10*cfg.Costs.WRPKRU)
	}
}
