package sim

import (
	"fmt"
	"math"

	"domainvirt/internal/cache"
	"domainvirt/internal/core"
	"domainvirt/internal/mem"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/obs"
	"domainvirt/internal/pagetable"
	"domainvirt/internal/stats"
	"domainvirt/internal/tlb"
	"domainvirt/internal/trace"
)

// FaultRecord captures one denied access or blocked permission change for
// diagnostics and security tests.
type FaultRecord struct {
	Thread core.ThreadID
	VA     memlayout.VA
	Write  bool
	Domain core.DomainID
	Page   bool // true if the page permission (not the domain) denied it
}

// String implements fmt.Stringer.
func (f FaultRecord) String() string {
	op := "load"
	if f.Write {
		op = "store"
	}
	kind := "domain"
	if f.Page {
		kind = "page"
	}
	return fmt.Sprintf("%s fault: %s %#x by thread %d (domain %d)", kind, op, uint64(f.VA), f.Thread, f.Domain)
}

// coreState is the per-core microarchitectural state. The tlb* fields
// shadow the machine-wide counters per core so the observability sampler
// can report per-core TLB hit rates.
type coreState struct {
	id        int
	l1tlb     *tlb.TLB
	l2tlb     *tlb.TLB
	debt      *tlb.Debt
	cycles    uint64
	instRem   uint64
	thread    core.ThreadID
	active    bool
	tlbL1Hits uint64
	tlbL2Hits uint64
	tlbMisses uint64
}

// Machine is one simulated multicore running a protected process. It
// implements trace.Sink so workloads (or trace replays) drive it directly.
type Machine struct {
	cfg    Config
	engine core.Engine
	pt     *pagetable.Table
	memory *mem.Memory
	caches *cache.Hierarchy
	cores  []*coreState

	bd  stats.Breakdown
	ctr stats.Counters

	domains   map[core.DomainID]domainInfo
	inspector *core.Inspector
	affinity  map[core.ThreadID]int

	faults []FaultRecord

	// rec is the optional observability recorder; recNext is the retired
	// count at which the next epoch sample fires (MaxUint64 when no
	// sampling is due). Every hook is guarded by a rec nil check, so an
	// unobserved run pays nothing on the access path.
	rec     *obs.Recorder
	recNext uint64
}

type domainInfo struct {
	region memlayout.Region
	perm   core.Perm
}

// NewMachine builds a machine with the given scheme's engine.
func NewMachine(cfg Config, scheme Scheme) *Machine {
	return NewMachineWithEngine(cfg, NewEngine(scheme, cfg))
}

// NewMachineWithEngine builds a machine around an explicit engine.
func NewMachineWithEngine(cfg Config, eng core.Engine) *Machine {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	m := &Machine{
		cfg:     cfg,
		engine:  eng,
		pt:      pagetable.New(),
		memory:  mem.New(cfg.Mem),
		domains: make(map[core.DomainID]domainInfo),
	}
	m.caches = cache.NewHierarchy(cfg.Cores, cfg.L1D, cfg.L2, m.memory)
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &coreState{
			id:    i,
			l1tlb: tlb.New(cfg.L1TLB),
			l2tlb: tlb.New(cfg.L2TLB),
			debt:  tlb.NewDebt(),
		})
	}
	eng.Bind(m, &m.bd, &m.ctr)
	return m
}

// Engine returns the bound protection engine.
func (m *Machine) Engine() core.Engine { return m.engine }

// SetRecorder attaches (nil: detaches) an observability recorder. The
// recorder samples epoch deltas every rec.EpochLen() retired
// instructions, receives per-access and per-SETPERM latencies, and is
// wired into the engine as its eviction/shootdown event sink. Attaching
// a recorder never changes simulated timing: the recorder only reads.
func (m *Machine) SetRecorder(rec *obs.Recorder) {
	m.rec = rec
	var sink stats.EventSink
	m.recNext = math.MaxUint64
	if rec != nil {
		sink = rec
		if step := rec.EpochLen(); step > 0 {
			m.recNext = m.retired() + step
		}
	}
	if em, ok := m.engine.(core.EventEmitter); ok {
		em.SetEventSink(sink)
	}
}

// FlushObs records the final (partial) epoch and the end-of-run totals
// into the attached recorder. Call once after the measured phase,
// before Result.
func (m *Machine) FlushObs() {
	if m.rec != nil {
		m.rec.Finish(m.obsState(m.retired()))
	}
}

// retired is the observability epoch clock: instructions + loads +
// stores retired so far.
func (m *Machine) retired() uint64 {
	return m.ctr.Instructions + m.ctr.Loads + m.ctr.Stores
}

// obsTick fires an epoch sample when the retired clock crossed the next
// boundary. Callers must have checked m.rec != nil.
func (m *Machine) obsTick() {
	if r := m.retired(); r >= m.recNext {
		step := m.rec.EpochLen()
		for m.recNext <= r {
			m.recNext += step
		}
		m.rec.TakeSample(m.obsState(r))
	}
}

// obsState snapshots the cumulative machine state for the sampler. Only
// called at sample points, never per access.
func (m *Machine) obsState(retired uint64) obs.MachineState {
	st := obs.MachineState{
		Retired:   retired,
		Counters:  m.counterSnapshot(),
		Breakdown: m.bd,
		Cores:     make([]obs.CoreState, len(m.cores)),
	}
	for i, c := range m.cores {
		st.Cores[i] = obs.CoreState{
			Cycles:    c.cycles,
			TLBL1Hits: c.tlbL1Hits,
			TLBL2Hits: c.tlbL2Hits,
			TLBMisses: c.tlbMisses,
		}
	}
	return st
}

// SetInspector installs an ERIM-style SETPERM site inspector; permission
// changes from unapproved sites are blocked and recorded.
func (m *Machine) SetInspector(in *core.Inspector) { m.inspector = in }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetAffinity migrates a thread to a specific core; subsequent events
// from th run there, paying the usual context-switch and state
// reconstruction costs. The default placement is static round-robin.
func (m *Machine) SetAffinity(th core.ThreadID, coreID int) {
	if m.affinity == nil {
		m.affinity = make(map[core.ThreadID]int)
	}
	if coreID < 0 || coreID >= len(m.cores) {
		coreID = 0
	}
	m.affinity[th] = coreID
}

// coreFor maps a thread to its core (static round-robin placement unless
// migrated via SetAffinity) and performs a context switch when the core
// was running another thread.
func (m *Machine) coreFor(th core.ThreadID) *coreState {
	idx := 0
	if pinned, ok := m.affinity[th]; ok {
		idx = pinned
	} else if th > 0 {
		idx = int((uint32(th) - 1) % uint32(len(m.cores)))
	}
	c := m.cores[idx]
	c.active = true
	if c.thread != th {
		if c.thread != 0 {
			m.ctr.ContextSwitches++
			c.cycles += m.cfg.CtxSwitchCost
			m.bd.Add(stats.CatBase, m.cfg.CtxSwitchCost)
		}
		c.cycles += m.engine.ContextSwitch(c.id, th)
		c.thread = th
	}
	return c
}

// Instr implements trace.Sink: n non-memory instructions at the base CPI.
func (m *Machine) Instr(th core.ThreadID, n uint64) {
	c := m.coreFor(th)
	m.ctr.Instructions += n
	num := n*m.cfg.CPINum + c.instRem
	cyc := num / m.cfg.CPIDen
	c.instRem = num % m.cfg.CPIDen
	c.cycles += cyc
	m.bd.AddN(stats.CatBase, cyc, 0)
	if m.rec != nil {
		m.obsTick()
	}
}

// Access implements trace.Sink: one load or store, split at cache-line
// boundaries. It returns false if any piece was denied by the domain or
// page permission, in which case the caller must suppress the data
// transfer.
func (m *Machine) Access(th core.ThreadID, va memlayout.VA, size uint32, write bool) bool {
	if size == 0 {
		size = 1
	}
	allowed := true
	memlayout.SplitLine(va, size, func(pva memlayout.VA, _ uint32) {
		if !m.access1(th, pva, write) {
			allowed = false
		}
	})
	return allowed
}

func (m *Machine) access1(th core.ThreadID, va memlayout.VA, write bool) bool {
	c := m.coreFor(th)
	if write {
		m.ctr.Stores++
	} else {
		m.ctr.Loads++
	}

	// cyc is the total latency of this access; baseCyc is the portion an
	// unprotected run would also pay (attributed to CatBase). Engine
	// costs are attributed by the engine itself.
	var cyc, baseCyc uint64
	cyc += m.cfg.L1TLBLat
	baseCyc += m.cfg.L1TLBLat
	vpn := memlayout.PageNum(va)

	var entry tlb.Entry
	tlbHit := true
	if e, ok := c.l1tlb.Lookup(vpn); ok {
		m.ctr.TLBL1Hits++
		c.tlbL1Hits++
		entry = *e
	} else {
		cyc += m.cfg.L2TLBLat
		baseCyc += m.cfg.L2TLBLat
		if e2, ok := c.l2tlb.Lookup(vpn); ok {
			m.ctr.TLBL2Hits++
			c.tlbL2Hits++
			entry = *e2
			c.l1tlb.Insert(entry)
		} else {
			// TLB miss: page walk (and, for the domain engines, the
			// DTT/DRT machinery via FillTag).
			tlbHit = false
			m.ctr.TLBMisses++
			c.tlbMisses++
			walk := m.cfg.WalkPenalty
			if c.debt.Settle(vpn) {
				// Refill forced by a TLB invalidation: attribute the
				// walk to the invalidation, not the base run.
				m.ctr.DebtRefills++
				m.bd.Add(stats.CatTLBInval, walk)
			} else {
				baseCyc += walk
			}
			cyc += walk

			pte, ok := m.pt.Lookup(va)
			if !ok {
				pte = m.demandMap(va)
				cyc += m.cfg.MinorFault
				baseCyc += m.cfg.MinorFault
			}
			tag, extra := m.engine.FillTag(c.id, th, va)
			cyc += extra
			entry = tlb.Entry{VPN: vpn, PFN: pte.PFN, Writable: pte.Writable, Tag: tag, Valid: true}
			c.l2tlb.Insert(entry)
			c.l1tlb.Insert(entry)
		}
	}

	verdict := m.engine.Check(core.AccessCtx{
		Core:   c.id,
		Thread: th,
		VA:     va,
		Write:  write,
		TLBHit: tlbHit,
		Tag:    entry.Tag,
	})
	cyc += verdict.Cycles

	pageOK := !write || entry.Writable
	if !verdict.Allowed || !pageOK {
		m.recordFault(FaultRecord{
			Thread: th,
			VA:     va,
			Write:  write,
			Domain: m.engine.DomainOf(va),
			Page:   verdict.Allowed && !pageOK,
		})
		if verdict.Allowed {
			m.ctr.PageFaults++
		} else {
			m.ctr.DomainFaults++
		}
		m.bd.AddN(stats.CatBase, baseCyc, 0)
		c.cycles += cyc
		if m.rec != nil {
			m.rec.ObserveAccess(cyc)
			m.obsTick()
		}
		return false // access suppressed
	}

	pa := memlayout.PA(entry.PFN<<memlayout.PageShift) + memlayout.PA(memlayout.PageOffset(va))
	lat, _ := m.caches.Access(c.id, pa, write)
	cyc += lat
	baseCyc += lat
	m.bd.AddN(stats.CatBase, baseCyc, 0)
	c.cycles += cyc
	if m.rec != nil {
		m.rec.ObserveAccess(cyc)
		m.obsTick()
	}
	return true
}

// demandMap allocates and maps a frame for the first touch of a page.
// Pages inside an attached PMO region are NVM-backed with the attach
// permission; everything else is writable DRAM.
func (m *Machine) demandMap(va memlayout.VA) pagetable.PTE {
	kind := mem.DRAM
	writable := true
	for _, di := range m.domains {
		if di.region.Contains(va) {
			kind = mem.NVM
			writable = di.perm.CanWrite()
			break
		}
	}
	pa := m.memory.AllocFrame(kind)
	m.pt.Map(memlayout.PageBase(va), pa, writable)
	pte, _ := m.pt.Lookup(va)
	return pte
}

// Fetch implements trace.Sink: one instruction fetch. Domain permissions
// never block execution — the paper's executable-only memory: "changing
// the domain permission as inaccessible in the PKRU register... code can
// still jump to this domain and execute code but all reads and writes
// are prohibited". Page presence and translation costs still apply.
func (m *Machine) Fetch(th core.ThreadID, va memlayout.VA) bool {
	c := m.coreFor(th)
	var cyc, engCyc uint64
	cyc += m.cfg.L1TLBLat
	vpn := memlayout.PageNum(va)

	var entry tlb.Entry
	if e, ok := c.l1tlb.Lookup(vpn); ok {
		m.ctr.TLBL1Hits++
		c.tlbL1Hits++
		entry = *e
	} else {
		cyc += m.cfg.L2TLBLat
		if e2, ok := c.l2tlb.Lookup(vpn); ok {
			m.ctr.TLBL2Hits++
			c.tlbL2Hits++
			entry = *e2
			c.l1tlb.Insert(entry)
		} else {
			m.ctr.TLBMisses++
			c.tlbMisses++
			cyc += m.cfg.WalkPenalty
			pte, ok := m.pt.Lookup(va)
			if !ok {
				pte = m.demandMap(va)
				cyc += m.cfg.MinorFault
			}
			tag, extra := m.engine.FillTag(c.id, th, va)
			cyc += extra
			engCyc += extra
			entry = tlb.Entry{VPN: vpn, PFN: pte.PFN, Writable: pte.Writable, Tag: tag, Valid: true}
			c.l2tlb.Insert(entry)
			c.l1tlb.Insert(entry)
		}
	}
	pa := memlayout.PA(entry.PFN<<memlayout.PageShift) + memlayout.PA(memlayout.PageOffset(va))
	lat, _ := m.caches.Access(c.id, pa, false)
	cyc += lat
	// The engine attributes its FillTag cycles itself; only the rest is
	// base-run work.
	m.bd.AddN(stats.CatBase, cyc-engCyc, 0)
	c.cycles += cyc
	return true
}

// SetPerm implements trace.Sink.
func (m *Machine) SetPerm(th core.ThreadID, d core.DomainID, p core.Perm, site core.SiteID) {
	if m.inspector != nil && !m.inspector.Allow(site, th, d, p) {
		m.ctr.DomainFaults++
		m.recordFault(FaultRecord{Thread: th, Domain: d})
		return
	}
	c := m.coreFor(th)
	cost := m.engine.SetPerm(c.id, th, d, p)
	c.cycles += cost
	if m.rec != nil {
		m.rec.ObserveSetPerm(cost)
	}
}

// Attach implements trace.Sink. Mapping a PMO over a VA range
// invalidates any translations cached for it (mmap semantics): without
// the flush, a TLB entry warmed by a pre-attach access would keep its
// domainless tag and bypass the new domain's checks.
func (m *Machine) Attach(d core.DomainID, r memlayout.Region, perm core.Perm) error {
	if err := m.engine.Attach(d, r); err != nil {
		return err
	}
	m.FlushTLBRangeAll(r)
	m.domains[d] = domainInfo{region: r, perm: perm}
	return nil
}

// Detach implements trace.Sink.
func (m *Machine) Detach(d core.DomainID) {
	m.engine.Detach(d)
	delete(m.domains, d)
}

// Fence implements trace.Sink: a persist barrier, present in the baseline
// run too.
func (m *Machine) Fence(th core.ThreadID) {
	c := m.coreFor(th)
	c.cycles += m.cfg.FenceCost
	m.bd.AddN(stats.CatBase, m.cfg.FenceCost, 0)
}

func (m *Machine) recordFault(f FaultRecord) {
	if len(m.faults) < m.cfg.MaxFaultRecords {
		m.faults = append(m.faults, f)
	}
}

// Faults returns the recorded fault diagnostics.
func (m *Machine) Faults() []FaultRecord { return m.faults }

// NumCores implements core.Hooks.
func (m *Machine) NumCores() int { return len(m.cores) }

// FlushTLBRangeAll implements core.Hooks: the TLB shootdown primitive.
func (m *Machine) FlushTLBRangeAll(r memlayout.Region) int {
	total := 0
	for _, c := range m.cores {
		owe := func(vpn uint64) { c.debt.Owe(vpn) }
		n1 := c.l1tlb.FlushRange(r, owe)
		n2 := c.l2tlb.FlushRange(r, owe)
		// L1 entries are a subset of L2's working set; count distinct
		// pages as the L2 flush count plus any L1-only stragglers.
		n := n2
		if n1 > n2 {
			n = n1
		}
		total += n
	}
	m.ctr.TLBFlushed += uint64(total)
	return total
}

// PopulatedPages implements core.Hooks.
func (m *Machine) PopulatedPages(r memlayout.Region) int {
	return m.pt.PopulatedPages(r)
}

// SetPTEKeys implements core.Hooks.
func (m *Machine) SetPTEKeys(r memlayout.Region, key uint8) int {
	return m.pt.SetKey(r, key)
}

// ResetStats zeroes cycle counts, breakdowns, counters, and faults while
// preserving warm microarchitectural state (TLBs, caches, page table,
// engine tables). Call it after workload setup so measurements cover only
// the measured operations, as the paper does.
func (m *Machine) ResetStats() {
	m.bd.Reset()
	m.ctr = stats.Counters{}
	m.faults = nil
	for _, c := range m.cores {
		c.cycles = 0
		c.instRem = 0
		c.active = false
		c.tlbL1Hits = 0
		c.tlbL2Hits = 0
		c.tlbMisses = 0
	}
	if m.rec != nil && m.rec.EpochLen() > 0 {
		m.recNext = m.rec.EpochLen()
	}
}

// Result snapshots the run statistics. Cycles is the maximum across
// active cores (parallel execution time); WorkSum is their sum.
func (m *Machine) Result() stats.Result {
	var maxc, sum uint64
	for _, c := range m.cores {
		if !c.active {
			continue
		}
		sum += c.cycles
		if c.cycles > maxc {
			maxc = c.cycles
		}
	}
	return stats.Result{
		Scheme:    m.engine.Name(),
		Cycles:    maxc,
		WorkSum:   sum,
		Breakdown: m.bd,
		Counters:  m.counterSnapshot(),
	}
}

// counterSnapshot returns the machine counters enriched with the cache
// and memory statistics, exactly as Result reports them; the
// observability sampler uses the same snapshot so epoch deltas and the
// final Result always agree.
func (m *Machine) counterSnapshot() stats.Counters {
	c := m.ctr
	l1h, _, l2h, _, _, _ := m.caches.Stats()
	c.L1DHits = l1h
	c.L2Hits = l2h
	dr, dw, nr, nw := m.memory.Stats()
	c.MemReads = dr + nr
	c.MemWrites = dw + nw
	c.NVMReads = nr
	c.NVMWrites = nw
	return c
}

var _ trace.Sink = (*Machine)(nil)
var _ core.Hooks = (*Machine)(nil)
