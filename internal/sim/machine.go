package sim

import (
	"fmt"
	"math"
	"sort"

	"domainvirt/internal/cache"
	"domainvirt/internal/core"
	"domainvirt/internal/mem"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/obs"
	"domainvirt/internal/pagetable"
	"domainvirt/internal/stats"
	"domainvirt/internal/tlb"
	"domainvirt/internal/trace"
)

// FaultRecord captures one denied access or blocked permission change for
// diagnostics and security tests.
type FaultRecord struct {
	Thread core.ThreadID
	VA     memlayout.VA
	Write  bool
	Domain core.DomainID
	Page   bool // true if the page permission (not the domain) denied it
}

// String implements fmt.Stringer.
func (f FaultRecord) String() string {
	op := "load"
	if f.Write {
		op = "store"
	}
	kind := "domain"
	if f.Page {
		kind = "page"
	}
	return fmt.Sprintf("%s fault: %s %#x by thread %d (domain %d)", kind, op, uint64(f.VA), f.Thread, f.Domain)
}

// L0 verdict-replay modes: how a memoized engine check is re-applied on a
// fast-path hit. Every mode replays, by construction, exactly the
// counters, breakdown attribution, and cycles the full Check would have
// produced for the same (engine state, tag, write) — see
// ARCHITECTURE.md "Performance model & hot-path invariants".
const (
	// l0Full re-runs the concrete engine Check: always bit-identical,
	// used for engines whose Check has state-dependent side effects
	// (libmpk's LRU clock, MPK-family PKRU reads, external engines).
	l0Full uint8 = iota
	// l0Pass covers (engine, tag) pairs whose Check is provably the pure
	// verdict {allowed, 0 cycles}: baseline/lowerbound always, and the
	// null (domainless) tag under MPK, MPKVirt, and DomainVirt.
	l0Pass
	// l0DVSlot replays DomainVirt's PTLB-hit arm through a memoized PTLB
	// slot (CheckRepeat), falling back to the full CheckFill when an
	// interleaved miss evicted the slot.
	l0DVSlot
	// l0PKRU replays a keyed MPK/MPKVirt check from the memoized PKRU
	// read. Their Check is a pure, costless PKRU lookup, and every path
	// that can change the verdict either bumps the mutation generation
	// (SetPerm, Attach, Detach, key remap — the remap's Range_Flush
	// shootdown bumps it) or clears the L0 (context switch), so within a
	// generation the memoized {read-allow, write-allow} pair is the live
	// PKRU content.
	l0PKRU
)

// l0Entries sizes the per-core L0 micro-TLB: a small direct-mapped array
// of last-translation slots indexed by the low VPN bits, so streams that
// rotate over a few hot pages keep one memoized translation per page.
// Must be a power of two.
const l0Entries = 8

// l0Slot is one entry of a core's L0 micro-TLB: the L1 TLB position of a
// recent translation plus how to replay its permission check. It is
// valid only while gen matches the machine's mutation generation; any
// SetPerm/Attach/Detach/shootdown/affinity change bumps the generation
// and thereby drops every core's slots. The TLB position is additionally
// self-validating (tlb.TouchHit re-checks the entry), so staleness can
// only send an access down the slow path, never corrupt a replay.
type l0Slot struct {
	gen    uint64 // Machine.mutGen at fill time; 0 never matches
	vpn    uint64
	pos    int // flat L1 TLB position of the memoized entry
	mode   uint8
	allowR bool          // memoized read verdict (l0PKRU only)
	allowW bool          // memoized write verdict (l0PKRU only)
	slot   int           // memoized PTLB slot (l0DVSlot only)
	dom    core.DomainID // memoized domain (l0DVSlot only)
}

// coreState is the per-core microarchitectural state. The tlb* fields
// shadow the machine-wide counters per core so the observability sampler
// can report per-core TLB hit rates.
type coreState struct {
	id        int
	l1tlb     *tlb.TLB
	l2tlb     *tlb.TLB
	debt      *tlb.Debt
	l0        [l0Entries]l0Slot
	cycles    uint64
	instRem   uint64
	thread    core.ThreadID
	active    bool
	tlbL1Hits uint64
	tlbL2Hits uint64
	tlbMisses uint64
}

// engineKind discriminates the built-in engines for devirtualized
// dispatch; ekOther routes through the Engine interface unchanged.
type engineKind uint8

const (
	ekOther engineKind = iota
	ekBaseline
	ekLowerbound
	ekMPK
	ekLibmpk
	ekMPKVirt
	ekDomainVirt
)

// Machine is one simulated multicore running a protected process. It
// implements trace.Sink so workloads (or trace replays) drive it directly.
type Machine struct {
	cfg    Config
	engine core.Engine
	pt     *pagetable.Table
	memory *mem.Memory
	caches *cache.Hierarchy
	cores  []*coreState

	bd  stats.Breakdown
	ctr stats.Counters

	domains   map[core.DomainID]domainInfo
	spans     []domSpan // sorted attach regions backing demandMap
	inspector *core.Inspector
	affinity  map[core.ThreadID]int

	// curTh/curCore memoize the last coreFor resolution: a repeated call
	// for the running thread is a no-op (placement is deterministic,
	// c.active and c.thread are already set), so the map lookup and
	// modulo only run when the thread actually changes. SetAffinity and
	// ResetStats invalidate the memo.
	curTh   core.ThreadID
	curCore *coreState

	// cpiShift/cpiPow2 precompute the Instr divide for power-of-two
	// CPIDen (the default 1/4): cyc = num >> cpiShift is exact.
	cpiShift uint
	cpiPow2  bool

	// mutGen is the mutation generation: bumped by every operation that
	// can change translations, permissions, or per-core engine state
	// (SetPerm, Attach, Detach, TLB shootdowns, PTE key rewrites,
	// affinity moves). A core's l0Slot is valid only while its recorded
	// generation matches, so one counter increment invalidates every
	// memoized translation machine-wide.
	mutGen uint64

	// Devirtualized engine dispatch: ekind selects a concrete-typed
	// Check call on the per-access path so the interface call (an
	// inlining barrier) only remains for engines constructed outside
	// this package (ablation wrappers).
	ekind       engineKind
	ebaseline   *core.Baseline
	elowerbound *core.Lowerbound
	empk        *core.MPK
	elibmpk     *core.Libmpk
	empkvirt    *core.MPKVirt
	edomvirt    *core.DomainVirt

	faults        []FaultRecord
	faultsDropped uint64

	// rec is the optional observability recorder; recNext is the retired
	// count at which the next epoch sample fires (MaxUint64 when no
	// sampling is due). Every hook is guarded by a rec nil check, so an
	// unobserved run pays nothing on the access path.
	rec     *obs.Recorder
	recNext uint64
}

type domainInfo struct {
	region memlayout.Region
	perm   core.Perm
}

// domSpan is one attached region in demandMap's sorted index. Attach
// regions never overlap (the engine's domain table rejects overlap before
// the span is recorded), so binary search by end address finds the unique
// candidate span for any address.
type domSpan struct {
	base, end memlayout.VA
	writable  bool
}

// NewMachine builds a machine with the given scheme's engine.
func NewMachine(cfg Config, scheme Scheme) *Machine {
	return NewMachineWithEngine(cfg, NewEngine(scheme, cfg))
}

// NewMachineWithEngine builds a machine around an explicit engine.
func NewMachineWithEngine(cfg Config, eng core.Engine) *Machine {
	if cfg.Cores <= 0 {
		cfg.Cores = 1
	}
	m := &Machine{
		cfg:     cfg,
		engine:  eng,
		pt:      pagetable.New(),
		memory:  mem.New(cfg.Mem),
		domains: make(map[core.DomainID]domainInfo),
	}
	m.caches = cache.NewHierarchy(cfg.Cores, cfg.L1D, cfg.L2, m.memory)
	for i := 0; i < cfg.Cores; i++ {
		m.cores = append(m.cores, &coreState{
			id:    i,
			l1tlb: tlb.New(cfg.L1TLB),
			l2tlb: tlb.New(cfg.L2TLB),
			debt:  tlb.NewDebt(),
		})
	}
	m.mutGen = 1 // l0Slot.gen zero value never matches
	if den := m.cfg.CPIDen; den > 0 && den&(den-1) == 0 {
		m.cpiPow2 = true
		for den > 1 {
			m.cpiShift++
			den >>= 1
		}
	}
	switch e := eng.(type) {
	case *core.Baseline:
		m.ekind, m.ebaseline = ekBaseline, e
	case *core.Lowerbound:
		m.ekind, m.elowerbound = ekLowerbound, e
	case *core.MPK:
		m.ekind, m.empk = ekMPK, e
	case *core.Libmpk:
		m.ekind, m.elibmpk = ekLibmpk, e
	case *core.MPKVirt:
		m.ekind, m.empkvirt = ekMPKVirt, e
	case *core.DomainVirt:
		m.ekind, m.edomvirt = ekDomainVirt, e
	}
	eng.Bind(m, &m.bd, &m.ctr)
	return m
}

// bumpGen invalidates every core's last-translation slot.
func (m *Machine) bumpGen() { m.mutGen++ }

// check dispatches a permission check to the engine's concrete type.
// Each arm calls the same method the interface would reach, so dispatch
// is behavior-preserving by construction.
func (m *Machine) check(ctx core.AccessCtx) core.Verdict {
	switch m.ekind {
	case ekBaseline:
		return m.ebaseline.Check(ctx)
	case ekLowerbound:
		return m.elowerbound.Check(ctx)
	case ekMPK:
		return m.empk.Check(ctx)
	case ekLibmpk:
		return m.elibmpk.Check(ctx)
	case ekMPKVirt:
		return m.empkvirt.Check(ctx)
	case ekDomainVirt:
		return m.edomvirt.Check(ctx)
	}
	return m.engine.Check(ctx)
}

// l0fill classifies how a memoized check for tag replays under the bound
// engine and fills the slot's replay state. dvSlot is the PTLB slot
// CheckFill reported (DomainVirt only). For the MPK family the pure
// PKRU verdict is sampled for both access kinds (Check is side-effect
// free, so the extra probe changes nothing).
func (m *Machine) l0fill(l0 *l0Slot, coreID int, tag uint16, dvSlot int) {
	l0.slot, l0.dom = -1, core.NullDomain
	switch m.ekind {
	case ekBaseline, ekLowerbound:
		l0.mode = l0Pass
		return
	case ekMPK:
		if tag == core.TagNone {
			l0.mode = l0Pass
			return
		}
		l0.mode = l0PKRU
		l0.allowR = m.empk.Check(core.AccessCtx{Core: coreID, Tag: tag}).Allowed
		l0.allowW = m.empk.Check(core.AccessCtx{Core: coreID, Tag: tag, Write: true}).Allowed
		return
	case ekMPKVirt:
		if tag == core.TagNone {
			l0.mode = l0Pass
			return
		}
		l0.mode = l0PKRU
		l0.allowR = m.empkvirt.Check(core.AccessCtx{Core: coreID, Tag: tag}).Allowed
		l0.allowW = m.empkvirt.Check(core.AccessCtx{Core: coreID, Tag: tag, Write: true}).Allowed
		return
	case ekDomainVirt:
		if tag == core.TagNone {
			l0.mode = l0Pass
			return
		}
		l0.mode = l0DVSlot
		l0.slot, l0.dom = dvSlot, core.DomainID(tag)
		return
	}
	// libmpk (LRU clock side effects even on hits) and external engines:
	// always re-run the real Check.
	l0.mode = l0Full
}

// Engine returns the bound protection engine.
func (m *Machine) Engine() core.Engine { return m.engine }

// SetRecorder attaches (nil: detaches) an observability recorder. The
// recorder samples epoch deltas every rec.EpochLen() retired
// instructions, receives per-access and per-SETPERM latencies, and is
// wired into the engine as its eviction/shootdown event sink. Attaching
// a recorder never changes simulated timing: the recorder only reads.
func (m *Machine) SetRecorder(rec *obs.Recorder) {
	m.rec = rec
	var sink stats.EventSink
	m.recNext = math.MaxUint64
	if rec != nil {
		sink = rec
		if step := rec.EpochLen(); step > 0 {
			m.recNext = m.retired() + step
		}
	}
	if em, ok := m.engine.(core.EventEmitter); ok {
		em.SetEventSink(sink)
	}
}

// FlushObs records the final (partial) epoch and the end-of-run totals
// into the attached recorder. Call once after the measured phase,
// before Result.
func (m *Machine) FlushObs() {
	if m.rec != nil {
		m.rec.Finish(m.obsState(m.retired()))
	}
}

// retired is the observability epoch clock: instructions + loads +
// stores retired so far.
func (m *Machine) retired() uint64 {
	return m.ctr.Instructions + m.ctr.Loads + m.ctr.Stores
}

// obsTick fires an epoch sample when the retired clock crossed the next
// boundary. Callers must have checked m.rec != nil.
func (m *Machine) obsTick() {
	if r := m.retired(); r >= m.recNext {
		step := m.rec.EpochLen()
		for m.recNext <= r {
			m.recNext += step
		}
		m.rec.TakeSample(m.obsState(r))
	}
}

// obsState snapshots the cumulative machine state for the sampler. Only
// called at sample points, never per access.
func (m *Machine) obsState(retired uint64) obs.MachineState {
	st := obs.MachineState{
		Retired:   retired,
		Counters:  m.counterSnapshot(),
		Breakdown: m.bd,
		Cores:     make([]obs.CoreState, len(m.cores)),
	}
	for i, c := range m.cores {
		st.Cores[i] = obs.CoreState{
			Cycles:    c.cycles,
			TLBL1Hits: c.tlbL1Hits,
			TLBL2Hits: c.tlbL2Hits,
			TLBMisses: c.tlbMisses,
		}
	}
	return st
}

// SetInspector installs an ERIM-style SETPERM site inspector; permission
// changes from unapproved sites are blocked and recorded.
func (m *Machine) SetInspector(in *core.Inspector) { m.inspector = in }

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// SetAffinity migrates a thread to a specific core; subsequent events
// from th run there, paying the usual context-switch and state
// reconstruction costs. The default placement is static round-robin.
func (m *Machine) SetAffinity(th core.ThreadID, coreID int) {
	if m.affinity == nil {
		m.affinity = make(map[core.ThreadID]int)
	}
	if coreID < 0 || coreID >= len(m.cores) {
		coreID = 0
	}
	m.affinity[th] = coreID
	m.curCore = nil
	m.bumpGen()
}

// coreFor maps a thread to its core (static round-robin placement unless
// migrated via SetAffinity) and performs a context switch when the core
// was running another thread. The nil-map and single-core short circuits
// keep the unpinned common case free of map and modulo work.
func (m *Machine) coreFor(th core.ThreadID) *coreState {
	if th == m.curTh && m.curCore != nil {
		return m.curCore
	}
	c := m.coreForSlow(th)
	m.curTh, m.curCore = th, c
	return c
}

func (m *Machine) coreForSlow(th core.ThreadID) *coreState {
	idx := 0
	pinned := false
	if m.affinity != nil {
		idx, pinned = m.affinity[th]
	}
	if !pinned && th > 0 && len(m.cores) > 1 {
		idx = int((uint32(th) - 1) % uint32(len(m.cores)))
	}
	c := m.cores[idx]
	c.active = true
	if c.thread != th {
		// The engine swaps per-core thread state (PKRU, PTLB/DTTLB):
		// drop the memoized translations before their verdicts go stale.
		for i := range c.l0 {
			c.l0[i].gen = 0
		}
		if c.thread != 0 {
			m.ctr.ContextSwitches++
			c.cycles += m.cfg.CtxSwitchCost
			m.bd.Add(stats.CatBase, m.cfg.CtxSwitchCost)
		}
		c.cycles += m.engine.ContextSwitch(c.id, th)
		c.thread = th
	}
	return c
}

// Instr implements trace.Sink: n non-memory instructions at the base CPI.
func (m *Machine) Instr(th core.ThreadID, n uint64) {
	c := m.coreFor(th)
	m.ctr.Instructions += n
	num := n*m.cfg.CPINum + c.instRem
	var cyc uint64
	if m.cpiPow2 {
		cyc = num >> m.cpiShift
		c.instRem = num & (1<<m.cpiShift - 1)
	} else {
		cyc = num / m.cfg.CPIDen
		c.instRem = num % m.cfg.CPIDen
	}
	c.cycles += cyc
	m.bd.AddN(stats.CatBase, cyc, 0)
	if m.rec != nil {
		m.obsTick()
	}
}

// Access implements trace.Sink: one load or store, split at cache-line
// boundaries. It returns false if any piece was denied by the domain or
// page permission, in which case the caller must suppress the data
// transfer.
func (m *Machine) Access(th core.ThreadID, va memlayout.VA, size uint32, write bool) bool {
	if size == 0 {
		size = 1
	}
	// Single-line fast path: almost every access fits one cache line, so
	// SplitLine's closure and indirect call only run for straddlers. The
	// guard is the exact complement of "SplitLine would call fn twice".
	if uint64(va)&(memlayout.LineSize-1)+uint64(size) <= memlayout.LineSize {
		return m.access1(th, va, write)
	}
	allowed := true
	memlayout.SplitLine(va, size, func(pva memlayout.VA, _ uint32) {
		if !m.access1(th, pva, write) {
			allowed = false
		}
	})
	return allowed
}

func (m *Machine) access1(th core.ThreadID, va memlayout.VA, write bool) bool {
	c := m.coreFor(th)
	if write {
		m.ctr.Stores++
	} else {
		m.ctr.Loads++
	}

	// cyc is the total latency of this access; baseCyc (identical until
	// the slow path diverges) is the portion an unprotected run would
	// also pay, attributed to CatBase. Engine costs are attributed by
	// the engine itself.
	cyc := m.cfg.L1TLBLat
	vpn := memlayout.PageNum(va)

	// L0 fast path: repeated same-page access with no intervening
	// mutation. TouchHit revalidates the memoized L1 TLB position and
	// replays the exact Lookup-hit bookkeeping; the memoized mode
	// replays the exact engine check. Falls through to the full path on
	// any staleness.
	if l0 := &c.l0[vpn&(l0Entries-1)]; l0.gen == m.mutGen && l0.vpn == vpn {
		if e, ok := c.l1tlb.TouchHit(l0.pos, vpn); ok {
			m.ctr.TLBL1Hits++
			c.tlbL1Hits++
			var verdict core.Verdict
			switch l0.mode {
			case l0Pass:
				verdict = core.Verdict{Allowed: true}
			case l0PKRU:
				if write {
					verdict = core.Verdict{Allowed: l0.allowW}
				} else {
					verdict = core.Verdict{Allowed: l0.allowR}
				}
			case l0DVSlot:
				var live bool
				verdict, live = m.edomvirt.CheckRepeat(c.id, l0.slot, l0.dom, write)
				if !live {
					// The memoized PTLB slot was evicted by an
					// interleaved miss: run the real check (identical
					// to the slow path's, the TLB hit already
					// replayed) and re-memoize the new slot.
					verdict, l0.slot = m.edomvirt.CheckFill(core.AccessCtx{
						Core: c.id, Thread: th, VA: va, Write: write,
						TLBHit: true, Tag: e.Tag,
					})
				}
			default: // l0Full
				verdict = m.check(core.AccessCtx{
					Core: c.id, Thread: th, VA: va, Write: write,
					TLBHit: true, Tag: e.Tag,
				})
			}
			return m.finishAccess(c, th, va, write, e.PFN, e.Writable, verdict, cyc, cyc)
		}
	}

	baseCyc := cyc
	var entry tlb.Entry
	tlbHit := true
	var pos int
	if e, p, ok := c.l1tlb.LookupPos(vpn); ok {
		m.ctr.TLBL1Hits++
		c.tlbL1Hits++
		entry = *e
		pos = p
	} else {
		cyc += m.cfg.L2TLBLat
		baseCyc += m.cfg.L2TLBLat
		if e2, ok := c.l2tlb.Lookup(vpn); ok {
			m.ctr.TLBL2Hits++
			c.tlbL2Hits++
			entry = *e2
			pos, _, _ = c.l1tlb.InsertPos(entry)
		} else {
			// TLB miss: page walk (and, for the domain engines, the
			// DTT/DRT machinery via FillTag).
			tlbHit = false
			m.ctr.TLBMisses++
			c.tlbMisses++
			walk := m.cfg.WalkPenalty
			if c.debt.Settle(vpn) {
				// Refill forced by a TLB invalidation: attribute the
				// walk to the invalidation, not the base run.
				m.ctr.DebtRefills++
				m.bd.Add(stats.CatTLBInval, walk)
			} else {
				baseCyc += walk
			}
			cyc += walk

			pte, ok := m.pt.Lookup(va)
			if !ok {
				pte = m.demandMap(va)
				cyc += m.cfg.MinorFault
				baseCyc += m.cfg.MinorFault
			}
			tag, extra := m.engine.FillTag(c.id, th, va)
			cyc += extra
			entry = tlb.Entry{VPN: vpn, PFN: pte.PFN, Writable: pte.Writable, Tag: tag, Valid: true}
			c.l2tlb.Insert(entry)
			pos, _, _ = c.l1tlb.InsertPos(entry)
		}
	}

	ctx := core.AccessCtx{
		Core:   c.id,
		Thread: th,
		VA:     va,
		Write:  write,
		TLBHit: tlbHit,
		Tag:    entry.Tag,
	}
	var verdict core.Verdict
	dvSlot := -1
	if m.ekind == ekDomainVirt {
		verdict, dvSlot = m.edomvirt.CheckFill(ctx)
	} else {
		verdict = m.check(ctx)
	}

	if !m.cfg.DisableFastPath {
		l0 := &c.l0[vpn&(l0Entries-1)]
		l0.gen = m.mutGen
		l0.vpn = vpn
		l0.pos = pos
		m.l0fill(l0, c.id, entry.Tag, dvSlot)
	}

	return m.finishAccess(c, th, va, write, entry.PFN, entry.Writable, verdict, cyc, baseCyc)
}

// finishAccess applies one access's verdict: fault recording on denial,
// the cache-hierarchy access on success, and the cycle attribution both
// outcomes share. It is the common tail of the L0 fast path and the full
// translation path, which makes the two cycle-identical by construction.
func (m *Machine) finishAccess(c *coreState, th core.ThreadID, va memlayout.VA, write bool, pfn uint64, writable bool, verdict core.Verdict, cyc, baseCyc uint64) bool {
	cyc += verdict.Cycles

	pageOK := !write || writable
	if !verdict.Allowed || !pageOK {
		m.recordFault(FaultRecord{
			Thread: th,
			VA:     va,
			Write:  write,
			Domain: m.engine.DomainOf(va),
			Page:   verdict.Allowed && !pageOK,
		})
		if verdict.Allowed {
			m.ctr.PageFaults++
		} else {
			m.ctr.DomainFaults++
		}
		m.bd.AddN(stats.CatBase, baseCyc, 0)
		c.cycles += cyc
		if m.rec != nil {
			m.rec.ObserveAccess(cyc)
			m.obsTick()
		}
		return false // access suppressed
	}

	pa := memlayout.PA(pfn<<memlayout.PageShift) + memlayout.PA(memlayout.PageOffset(va))
	lat, _ := m.caches.Access(c.id, pa, write)
	cyc += lat
	baseCyc += lat
	m.bd.AddN(stats.CatBase, baseCyc, 0)
	c.cycles += cyc
	if m.rec != nil {
		m.rec.ObserveAccess(cyc)
		m.obsTick()
	}
	return true
}

// demandMap allocates and maps a frame for the first touch of a page.
// Pages inside an attached PMO region are NVM-backed with the attach
// permission; everything else is writable DRAM. The attach regions are
// held in a sorted span index (rebuilt on the rare Attach/Detach), so
// the lookup is a binary search instead of a linear scan over every
// live domain.
func (m *Machine) demandMap(va memlayout.VA) pagetable.PTE {
	kind := mem.DRAM
	writable := true
	i := sort.Search(len(m.spans), func(i int) bool { return m.spans[i].end > va })
	if i < len(m.spans) && m.spans[i].base <= va {
		kind = mem.NVM
		writable = m.spans[i].writable
	}
	pa := m.memory.AllocFrame(kind)
	m.pt.Map(memlayout.PageBase(va), pa, writable)
	pte, _ := m.pt.Lookup(va)
	return pte
}

// rebuildSpans regenerates the sorted span index from the domain map.
func (m *Machine) rebuildSpans() {
	m.spans = m.spans[:0]
	for _, di := range m.domains {
		m.spans = append(m.spans, domSpan{
			base:     di.region.Base,
			end:      di.region.End(),
			writable: di.perm.CanWrite(),
		})
	}
	sort.Slice(m.spans, func(i, j int) bool { return m.spans[i].base < m.spans[j].base })
}

// Fetch implements trace.Sink: one instruction fetch. Domain permissions
// never block execution — the paper's executable-only memory: "changing
// the domain permission as inaccessible in the PKRU register... code can
// still jump to this domain and execute code but all reads and writes
// are prohibited". Page presence and translation costs still apply.
func (m *Machine) Fetch(th core.ThreadID, va memlayout.VA) bool {
	c := m.coreFor(th)
	var cyc, engCyc uint64
	cyc += m.cfg.L1TLBLat
	vpn := memlayout.PageNum(va)

	var entry tlb.Entry
	if e, ok := c.l1tlb.Lookup(vpn); ok {
		m.ctr.TLBL1Hits++
		c.tlbL1Hits++
		entry = *e
	} else {
		cyc += m.cfg.L2TLBLat
		if e2, ok := c.l2tlb.Lookup(vpn); ok {
			m.ctr.TLBL2Hits++
			c.tlbL2Hits++
			entry = *e2
			c.l1tlb.Insert(entry)
		} else {
			m.ctr.TLBMisses++
			c.tlbMisses++
			cyc += m.cfg.WalkPenalty
			pte, ok := m.pt.Lookup(va)
			if !ok {
				pte = m.demandMap(va)
				cyc += m.cfg.MinorFault
			}
			tag, extra := m.engine.FillTag(c.id, th, va)
			cyc += extra
			engCyc += extra
			entry = tlb.Entry{VPN: vpn, PFN: pte.PFN, Writable: pte.Writable, Tag: tag, Valid: true}
			c.l2tlb.Insert(entry)
			c.l1tlb.Insert(entry)
		}
	}
	pa := memlayout.PA(entry.PFN<<memlayout.PageShift) + memlayout.PA(memlayout.PageOffset(va))
	lat, _ := m.caches.Access(c.id, pa, false)
	cyc += lat
	// The engine attributes its FillTag cycles itself; only the rest is
	// base-run work.
	m.bd.AddN(stats.CatBase, cyc-engCyc, 0)
	c.cycles += cyc
	return true
}

// SetPerm implements trace.Sink.
func (m *Machine) SetPerm(th core.ThreadID, d core.DomainID, p core.Perm, site core.SiteID) {
	if m.inspector != nil && !m.inspector.Allow(site, th, d, p) {
		m.ctr.DomainFaults++
		m.recordFault(FaultRecord{Thread: th, Domain: d})
		return
	}
	m.bumpGen()
	c := m.coreFor(th)
	cost := m.engine.SetPerm(c.id, th, d, p)
	c.cycles += cost
	if m.rec != nil {
		m.rec.ObserveSetPerm(cost)
	}
}

// Attach implements trace.Sink. Mapping a PMO over a VA range
// invalidates any translations cached for it (mmap semantics): without
// the flush, a TLB entry warmed by a pre-attach access would keep its
// domainless tag and bypass the new domain's checks.
func (m *Machine) Attach(d core.DomainID, r memlayout.Region, perm core.Perm) error {
	if err := m.engine.Attach(d, r); err != nil {
		return err
	}
	m.FlushTLBRangeAll(r)
	m.domains[d] = domainInfo{region: r, perm: perm}
	m.rebuildSpans()
	m.bumpGen()
	return nil
}

// Detach implements trace.Sink.
func (m *Machine) Detach(d core.DomainID) {
	m.engine.Detach(d)
	delete(m.domains, d)
	m.rebuildSpans()
	m.bumpGen()
}

// Fence implements trace.Sink: a persist barrier, present in the baseline
// run too.
func (m *Machine) Fence(th core.ThreadID) {
	c := m.coreFor(th)
	c.cycles += m.cfg.FenceCost
	m.bd.AddN(stats.CatBase, m.cfg.FenceCost, 0)
}

func (m *Machine) recordFault(f FaultRecord) {
	if len(m.faults) < m.cfg.MaxFaultRecords {
		m.faults = append(m.faults, f)
	} else {
		// The retained window is full: count the drop so fault-heavy
		// adversarial traces bound memory without losing the signal
		// that more faults occurred.
		m.faultsDropped++
	}
}

// Faults returns a copy of the recorded fault diagnostics. Returning a
// copy keeps callers from corrupting later fault attribution by mutating
// (or appending into) the machine's live record window.
func (m *Machine) Faults() []FaultRecord {
	if len(m.faults) == 0 {
		return nil
	}
	return append([]FaultRecord(nil), m.faults...)
}

// FaultsDropped returns how many fault records were dropped after the
// retained window reached Config.MaxFaultRecords.
func (m *Machine) FaultsDropped() uint64 { return m.faultsDropped }

// NumCores implements core.Hooks.
func (m *Machine) NumCores() int { return len(m.cores) }

// FlushTLBRangeAll implements core.Hooks: the TLB shootdown primitive.
func (m *Machine) FlushTLBRangeAll(r memlayout.Region) int {
	m.bumpGen()
	total := 0
	for _, c := range m.cores {
		owe := func(vpn uint64) { c.debt.Owe(vpn) }
		n1 := c.l1tlb.FlushRange(r, owe)
		n2 := c.l2tlb.FlushRange(r, owe)
		// L1 entries are a subset of L2's working set; count distinct
		// pages as the L2 flush count plus any L1-only stragglers.
		n := n2
		if n1 > n2 {
			n = n1
		}
		total += n
	}
	m.ctr.TLBFlushed += uint64(total)
	return total
}

// PopulatedPages implements core.Hooks.
func (m *Machine) PopulatedPages(r memlayout.Region) int {
	return m.pt.PopulatedPages(r)
}

// SetPTEKeys implements core.Hooks.
func (m *Machine) SetPTEKeys(r memlayout.Region, key uint8) int {
	m.bumpGen()
	return m.pt.SetKey(r, key)
}

// ResetStats zeroes cycle counts, breakdowns, counters, and faults while
// preserving warm microarchitectural state (TLBs, caches, page table,
// engine tables). Call it after workload setup so measurements cover only
// the measured operations, as the paper does.
func (m *Machine) ResetStats() {
	m.bd.Reset()
	m.ctr = stats.Counters{}
	m.faults = nil
	m.faultsDropped = 0
	m.curCore = nil // cores go inactive; the next coreFor re-marks them
	for _, c := range m.cores {
		c.cycles = 0
		c.instRem = 0
		c.active = false
		c.tlbL1Hits = 0
		c.tlbL2Hits = 0
		c.tlbMisses = 0
	}
	if m.rec != nil && m.rec.EpochLen() > 0 {
		m.recNext = m.rec.EpochLen()
	}
}

// Result snapshots the run statistics. Cycles is the maximum across
// active cores (parallel execution time); WorkSum is their sum.
func (m *Machine) Result() stats.Result {
	var maxc, sum uint64
	for _, c := range m.cores {
		if !c.active {
			continue
		}
		sum += c.cycles
		if c.cycles > maxc {
			maxc = c.cycles
		}
	}
	return stats.Result{
		Scheme:    m.engine.Name(),
		Cycles:    maxc,
		WorkSum:   sum,
		Breakdown: m.bd,
		Counters:  m.counterSnapshot(),
	}
}

// counterSnapshot returns the machine counters enriched with the cache
// and memory statistics, exactly as Result reports them; the
// observability sampler uses the same snapshot so epoch deltas and the
// final Result always agree.
func (m *Machine) counterSnapshot() stats.Counters {
	c := m.ctr
	l1h, _, l2h, _, _, _ := m.caches.Stats()
	c.L1DHits = l1h
	c.L2Hits = l2h
	dr, dw, nr, nw := m.memory.Stats()
	c.MemReads = dr + nr
	c.MemWrites = dw + nw
	c.NVMReads = nr
	c.NVMWrites = nw
	return c
}

var _ trace.Sink = (*Machine)(nil)
var _ core.Hooks = (*Machine)(nil)
