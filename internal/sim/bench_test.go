package sim_test

import (
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/sim"
)

// benchRegion returns the attach region for benchmark domain d (2 MB
// aligned, one 2 MB slot each, far from the code/heap ranges).
func benchRegion(d core.DomainID) memlayout.Region {
	base := memlayout.VA(0x4000_0000_0000 + uint64(d)<<21)
	return memlayout.Region{Base: base, Size: 2 << 20}
}

// benchMachine builds a single-core machine with ndomains attached
// domains, grants thread 1 RW on all of them, and warms the page working
// set so the measured loop is steady state (TLB hits, no demand paging).
func benchMachine(tb testing.TB, scheme sim.Scheme, ndomains, pages int) *sim.Machine {
	tb.Helper()
	cfg := sim.DefaultConfig()
	m := sim.NewMachine(cfg, scheme)
	for d := core.DomainID(1); d <= core.DomainID(ndomains); d++ {
		if err := m.Attach(d, benchRegion(d), core.PermRW); err != nil {
			tb.Fatal(err)
		}
		m.SetPerm(1, d, core.PermRW, 0)
	}
	for d := core.DomainID(1); d <= core.DomainID(ndomains); d++ {
		r := benchRegion(d)
		for p := 0; p < pages; p++ {
			if !m.Access(1, r.Base+memlayout.VA(p*memlayout.PageSize), 8, false) {
				tb.Fatalf("warmup access denied: scheme=%s d=%d page=%d", scheme, d, p)
			}
		}
	}
	m.ResetStats()
	return m
}

// benchSchemes is the scheme set for the hot-path benchmarks: the
// baseline floor plus the three schemes that do per-access work.
var benchSchemes = []sim.Scheme{
	sim.SchemeBaseline,
	sim.SchemeMPK,
	sim.SchemeLibmpk,
	sim.SchemeMPKVirt,
	sim.SchemeDomainVirt,
}

// BenchmarkAccessSamePage is the L0 fast-path regime: repeated
// same-page, single-line accesses, the common case of any loop over a
// PMO-resident structure. This is the benchmark the BENCH_sim.json
// trajectory tracks as access_same_page.
func BenchmarkAccessSamePage(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(string(s), func(b *testing.B) {
			m := benchMachine(b, s, 4, 8)
			va := benchRegion(1).Base
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Access(1, va+memlayout.VA((i&7)*64), 8, i&1 == 0)
			}
		})
	}
}

// BenchmarkAccessPageStride walks a working set larger than one page but
// well inside the L1 TLB: every access changes pages, so the L0 slot
// misses and the TLB-hit path is measured.
func BenchmarkAccessPageStride(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(string(s), func(b *testing.B) {
			m := benchMachine(b, s, 4, 8)
			r := benchRegion(1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				va := r.Base + memlayout.VA((i&7)*memlayout.PageSize)
				m.Access(1, va, 8, false)
			}
		})
	}
}

// BenchmarkReplayTrace is the end-to-end trace-replay regime: a mixed
// stream of instructions, loads, stores, and SETPERM windows across
// several domains — the shape every experiment grid and conformance
// replay drives. BENCH_sim.json tracks it as replay_trace.
func BenchmarkReplayTrace(b *testing.B) {
	for _, s := range benchSchemes {
		b.Run(string(s), func(b *testing.B) {
			const nd = 4
			m := benchMachine(b, s, nd, 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := core.DomainID(1 + i%nd)
				r := benchRegion(d)
				m.Instr(1, 20)
				if i%64 == 0 {
					m.SetPerm(1, d, core.PermRW, 0)
				}
				va := r.Base + memlayout.VA((i&7)*memlayout.PageSize) + memlayout.VA((i&31)*64)
				m.Access(1, va, 8, false)
				m.Access(1, va, 8, true)
				m.Access(1, va+8, 8, false)
			}
		})
	}
}

// BenchmarkAccessStraddle measures the cache-line-straddling split path.
func BenchmarkAccessStraddle(b *testing.B) {
	m := benchMachine(b, sim.SchemeDomainVirt, 1, 8)
	va := benchRegion(1).Base + 60 // 8-byte access crosses the 64 B line
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Access(1, va, 8, false)
	}
}

// BenchmarkFetch measures the instruction-fetch path in steady state.
func BenchmarkFetch(b *testing.B) {
	m := benchMachine(b, sim.SchemeDomainVirt, 1, 8)
	va := benchRegion(1).Base
	for i := 0; i < 8; i++ {
		m.Fetch(1, va+memlayout.VA(i*memlayout.PageSize))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Fetch(1, va+memlayout.VA((i&7)*memlayout.PageSize))
	}
}

// benchSnapshot builds a machine with warmed multi-domain state and
// returns its snapshot — the codec benchmarks measure the persistent
// snapshot store's serialization hot path on a realistic capture.
func benchSnapshot(tb testing.TB) *sim.Snapshot {
	m := benchMachine(tb, sim.SchemeDomainVirt, 8, 32)
	for d := core.DomainID(1); d <= 8; d++ {
		r := benchRegion(d)
		for p := 0; p < 32; p++ {
			va := r.Base + memlayout.VA(p*memlayout.PageSize)
			m.Access(1, va, 8, true)
			m.Instr(1, 50)
		}
		m.SetPerm(1, d, core.PermR, 0)
		m.SetPerm(1, d, core.PermRW, 0)
	}
	return m.Snapshot()
}

// BenchmarkSnapshotEncode measures the wire encoding of a full machine
// snapshot — the write half of every snapshot-store Put.
func BenchmarkSnapshotEncode(b *testing.B) {
	snap := benchSnapshot(b)
	data, err := sim.EncodeSnapshot(snap)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.EncodeSnapshot(snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSnapshotDecode measures decode+checksum of stored snapshot
// bytes — the read half of every warm-store hit.
func BenchmarkSnapshotDecode(b *testing.B) {
	data, err := sim.EncodeSnapshot(benchSnapshot(b))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.DecodeSnapshot(data); err != nil {
			b.Fatal(err)
		}
	}
}
