package sim

import (
	"fmt"

	"domainvirt/internal/cache"
	"domainvirt/internal/core"
	"domainvirt/internal/mem"
	"domainvirt/internal/obs"
	"domainvirt/internal/pagetable"
	"domainvirt/internal/stats"
	"domainvirt/internal/tlb"
)

// Snapshot is a deep copy of a Machine's full simulated state: counters
// and breakdown, fault records, the attach table and its span index,
// thread affinity, the page table, the memory model, the whole cache
// hierarchy, every core's TLBs and invalidation debt, the engine state
// (via core.Snapshotter), and — when a recorder is attached — the
// sampler position.
//
// A snapshot is immutable once taken: Restore deep-copies out of it,
// never into it, so one snapshot can seed any number of machines,
// concurrently. The only exception is Machine.SnapshotInto, which reuses
// a snapshot's storage for a *new* capture — callers own the
// no-longer-restoring-from-it guarantee.
//
// Not captured: the Bind-time wiring a machine owns for its lifetime —
// the recorder pointer itself (SetRecorder), the SETPERM inspector
// (SetInspector), and the engine's hooks/accounting bindings. The L0
// micro-TLBs are also excluded: their slots are invalidated on restore,
// which is behavior-preserving by the DisableFastPath A/B invariant.
type Snapshot struct {
	scheme string
	ncores int

	bd            stats.Breakdown
	ctr           stats.Counters
	domains       map[core.DomainID]domainInfo
	spans         []domSpan
	affinity      map[core.ThreadID]int
	mutGen        uint64
	faults        []FaultRecord
	faultsDropped uint64

	pt     *pagetable.Table
	memst  mem.State
	caches *cache.HierarchyState
	cores  []coreSnap
	eng    any

	recNext  uint64
	hasRec   bool
	recState obs.RecorderState
}

type coreSnap struct {
	cycles    uint64
	instRem   uint64
	thread    core.ThreadID
	active    bool
	tlbL1Hits uint64
	tlbL2Hits uint64
	tlbMisses uint64
	l1        tlb.State
	l2        tlb.State
	debt      map[uint64]struct{}
}

// Scheme returns the engine name the snapshot was taken under.
func (s *Snapshot) Scheme() string { return s.scheme }

// Snapshot captures the machine's full simulated state. The bound engine
// must implement core.Snapshotter (all six built-in engines do).
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{}
	m.SnapshotInto(s)
	return s
}

// SnapshotInto overwrites s with a fresh capture, reusing s's allocated
// buffers where geometries match — the pooled path for snapshot-heavy
// sweeps (checkpoint passes take one snapshot per partition boundary).
// The previous contents of s become invalid; the caller must not be
// restoring from them concurrently.
func (m *Machine) SnapshotInto(s *Snapshot) {
	snapper, ok := m.engine.(core.Snapshotter)
	if !ok {
		panic(fmt.Sprintf("sim: engine %q does not implement core.Snapshotter", m.engine.Name()))
	}

	s.scheme = m.engine.Name()
	s.ncores = len(m.cores)
	s.bd = m.bd
	s.ctr = m.ctr

	if s.domains == nil {
		s.domains = make(map[core.DomainID]domainInfo, len(m.domains))
	} else {
		clear(s.domains)
	}
	for d, di := range m.domains {
		s.domains[d] = di
	}
	s.spans = append(s.spans[:0], m.spans...)
	if m.affinity == nil {
		s.affinity = nil
	} else {
		if s.affinity == nil {
			s.affinity = make(map[core.ThreadID]int, len(m.affinity))
		} else {
			clear(s.affinity)
		}
		for th, c := range m.affinity {
			s.affinity[th] = c
		}
	}
	s.mutGen = m.mutGen
	s.faults = append(s.faults[:0], m.faults...)
	s.faultsDropped = m.faultsDropped

	s.pt = m.pt.Clone()
	s.memst = m.memory.Snapshot()
	if s.caches == nil {
		s.caches = &cache.HierarchyState{}
	}
	m.caches.SnapshotInto(s.caches)

	if len(s.cores) != len(m.cores) {
		s.cores = make([]coreSnap, len(m.cores))
	}
	for i, c := range m.cores {
		cs := &s.cores[i]
		cs.cycles = c.cycles
		cs.instRem = c.instRem
		cs.thread = c.thread
		cs.active = c.active
		cs.tlbL1Hits = c.tlbL1Hits
		cs.tlbL2Hits = c.tlbL2Hits
		cs.tlbMisses = c.tlbMisses
		c.l1tlb.SnapshotInto(&cs.l1)
		c.l2tlb.SnapshotInto(&cs.l2)
		cs.debt = c.debt.Snapshot()
	}

	s.eng = snapper.SnapshotState()

	s.recNext = m.recNext
	s.hasRec = m.rec != nil
	if s.hasRec {
		s.recState = m.rec.State()
	}
}

// Restore reinstates a snapshot into m: afterwards m's simulated state is
// indistinguishable from the machine the snapshot was taken on, and the
// continuation of any event stream produces bit-identical results. The
// target must run the same scheme with the same structural geometry
// (cores, TLB/cache/PTLB/DTTLB sizes); cost parameters are free to
// differ — they are pure accounting, so a snapshot taken after a stats
// reset seeds cells of a cost-parameter sweep directly.
//
// Ordering with SetRecorder: Restore reinstates the sampler boundary
// (recNext) verbatim, so to continue an observed run attach the (seeded)
// recorder first and Restore second. For a fork that starts fresh
// observation instead, Restore first and SetRecorder second.
func (m *Machine) Restore(s *Snapshot) {
	if s.scheme != m.engine.Name() {
		panic(fmt.Sprintf("sim: Restore scheme mismatch: snapshot %q, machine %q", s.scheme, m.engine.Name()))
	}
	if s.ncores != len(m.cores) {
		panic(fmt.Sprintf("sim: Restore core-count mismatch: snapshot %d, machine %d", s.ncores, len(m.cores)))
	}

	m.bd = s.bd
	m.ctr = s.ctr

	clear(m.domains)
	for d, di := range s.domains {
		m.domains[d] = di
	}
	m.spans = append(m.spans[:0], s.spans...)
	if s.affinity == nil {
		m.affinity = nil
	} else {
		m.affinity = make(map[core.ThreadID]int, len(s.affinity))
		for th, c := range s.affinity {
			m.affinity[th] = c
		}
	}
	m.mutGen = s.mutGen
	m.faults = append(m.faults[:0], s.faults...)
	m.faultsDropped = s.faultsDropped

	m.pt = s.pt.Clone()
	m.memory.Restore(s.memst)
	m.caches.Restore(s.caches)

	for i, c := range m.cores {
		cs := &s.cores[i]
		c.cycles = cs.cycles
		c.instRem = cs.instRem
		c.thread = cs.thread
		c.active = cs.active
		c.tlbL1Hits = cs.tlbL1Hits
		c.tlbL2Hits = cs.tlbL2Hits
		c.tlbMisses = cs.tlbMisses
		c.l1tlb.Restore(cs.l1)
		c.l2tlb.Restore(cs.l2)
		c.debt.Restore(cs.debt)
		// Drop memoized translations; gen 0 never matches mutGen.
		for j := range c.l0 {
			c.l0[j].gen = 0
		}
	}

	m.engine.(core.Snapshotter).RestoreState(s.eng)

	// The thread→core memo may point at stale placement; coreFor re-derives
	// it (a re-resolution of an unchanged thread is a no-op).
	m.curTh, m.curCore = 0, nil

	m.recNext = s.recNext
}

// RecorderState returns the sampler position captured with the snapshot,
// and whether a recorder was attached at capture time. Seed a fresh
// recorder with it to continue an observed run from this snapshot.
func (s *Snapshot) RecorderState() (obs.RecorderState, bool) {
	return s.recState, s.hasRec
}
