package sim_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"domainvirt/internal/obs"
	"domainvirt/internal/sim"
)

// codecSnapshot builds a nontrivially-warmed snapshot for scheme s.
func codecSnapshot(tb testing.TB, s sim.Scheme) (*sim.Snapshot, sim.Config, int) {
	tb.Helper()
	nd := snapDomains(s)
	cfg := snapConfig()
	m := sim.NewMachine(cfg, s)
	snapDrivePrefix(tb, m, nd)
	m.ResetStats()
	return m.Snapshot(), cfg, nd
}

// TestSnapshotCodecRoundTrip is the referee for the persistent store:
// for every scheme, a machine restored from the decoded bytes must
// continue bit-identically to a machine restored from the live snapshot.
func TestSnapshotCodecRoundTrip(t *testing.T) {
	for _, s := range sim.AllSchemes {
		t.Run(string(s), func(t *testing.T) {
			snap, cfg, nd := codecSnapshot(t, s)

			ref := sim.NewMachine(cfg, s)
			ref.Restore(snap)
			snapDriveSuffix(ref, nd)
			want := ref.Result()

			data, err := sim.EncodeSnapshot(snap)
			if err != nil {
				t.Fatal(err)
			}
			decoded, err := sim.DecodeSnapshot(data)
			if err != nil {
				t.Fatal(err)
			}
			if decoded.Scheme() != string(s) {
				t.Fatalf("decoded scheme %q, want %q", decoded.Scheme(), s)
			}
			fork := sim.NewMachine(cfg, s)
			if err := fork.RestoreSafe(decoded); err != nil {
				t.Fatal(err)
			}
			snapDriveSuffix(fork, nd)
			if got := fork.Result(); got != want {
				t.Errorf("decoded fork diverged:\n got: %+v\nwant: %+v", got, want)
			}
		})
	}
}

// TestSnapshotCodecDeterministic pins the content-addressing premise:
// identically-warmed machines encode to identical bytes, and re-encoding
// one snapshot is stable.
func TestSnapshotCodecDeterministic(t *testing.T) {
	for _, s := range []sim.Scheme{sim.SchemeLibmpk, sim.SchemeMPKVirt, sim.SchemeDomainVirt} {
		t.Run(string(s), func(t *testing.T) {
			a, _, _ := codecSnapshot(t, s)
			b, _, _ := codecSnapshot(t, s)
			da, err := sim.EncodeSnapshot(a)
			if err != nil {
				t.Fatal(err)
			}
			db, err := sim.EncodeSnapshot(b)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(da, db) {
				t.Error("identical warmups encoded to different bytes")
			}
			da2, err := sim.EncodeSnapshot(a)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(da, da2) {
				t.Error("re-encoding the same snapshot is not stable")
			}
		})
	}
}

// TestSnapshotCodecRoundTripObserved covers the recorder-position field:
// a snapshot taken mid-observed-run must carry the sampler state through
// the binary format.
func TestSnapshotCodecRoundTripObserved(t *testing.T) {
	s := sim.SchemeDomainVirt
	nd := snapDomains(s)
	cfg := snapConfig()
	m := sim.NewMachine(cfg, s)
	m.SetRecorder(obs.NewRecorder(obs.Options{Epoch: 500}))
	snapDrivePrefix(t, m, nd)
	snap := m.Snapshot()

	wantRec, wantHas := snap.RecorderState()
	if !wantHas {
		t.Fatal("expected recorder state in snapshot")
	}
	data, err := sim.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := sim.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	gotRec, gotHas := decoded.RecorderState()
	if !gotHas {
		t.Fatal("recorder state lost in round trip")
	}
	if gotRec.Samples != wantRec.Samples || gotRec.Last.Retired != wantRec.Last.Retired {
		t.Errorf("recorder state diverged: got %+v want %+v", gotRec, wantRec)
	}
	if len(gotRec.Last.Cores) != len(wantRec.Last.Cores) {
		t.Errorf("recorder core state count diverged: got %d want %d",
			len(gotRec.Last.Cores), len(wantRec.Last.Cores))
	}
}

// TestSnapshotCodecRejectsTruncation cuts the encoding at many points;
// every prefix must fail with ErrSnapshotCorrupt, never panic or decode.
func TestSnapshotCodecRejectsTruncation(t *testing.T) {
	snap, _, _ := codecSnapshot(t, sim.SchemeMPKVirt)
	data, err := sim.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	cuts := []int{0, 1, 7, 8, 11, 12, 13, len(data) / 4, len(data) / 2, len(data) - 9, len(data) - 1}
	for _, n := range cuts {
		if _, err := sim.DecodeSnapshot(data[:n]); !errors.Is(err, sim.ErrSnapshotCorrupt) {
			t.Errorf("truncation at %d: got %v, want ErrSnapshotCorrupt", n, err)
		}
	}
}

// TestSnapshotCodecRejectsCorruption flips one byte at a time across the
// buffer; the checksum must catch every flip.
func TestSnapshotCodecRejectsCorruption(t *testing.T) {
	snap, _, _ := codecSnapshot(t, sim.SchemeDomainVirt)
	data, err := sim.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	step := len(data)/64 + 1
	for i := 0; i < len(data); i += step {
		mut := bytes.Clone(data)
		mut[i] ^= 0x40
		if _, err := sim.DecodeSnapshot(mut); err == nil {
			t.Errorf("flipped byte %d: decode accepted corrupt data", i)
		}
	}
}

// TestSnapshotCodecRejectsFutureVersion patches the version field (and
// re-seals the checksum, as a newer writer would): the decoder must
// answer ErrSnapshotVersion, not misparse.
func TestSnapshotCodecRejectsFutureVersion(t *testing.T) {
	snap, _, _ := codecSnapshot(t, sim.SchemeLibmpk)
	data, err := sim.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	mut := sim.ResealSnapshotVersion(data, sim.SnapshotCodecVersion+7)
	if _, err := sim.DecodeSnapshot(mut); !errors.Is(err, sim.ErrSnapshotVersion) {
		t.Errorf("future version: got %v, want ErrSnapshotVersion", err)
	}
}

// TestRestoreSafeRejectsMismatch pins the untrusted-provenance guard: a
// decoded snapshot of the wrong scheme or geometry must come back as an
// error, not a panic.
func TestRestoreSafeRejectsMismatch(t *testing.T) {
	snap, cfg, _ := codecSnapshot(t, sim.SchemeDomainVirt)
	data, err := sim.EncodeSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := sim.DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.NewMachine(cfg, sim.SchemeMPK).RestoreSafe(decoded); err == nil {
		t.Error("scheme mismatch: RestoreSafe accepted")
	} else if !strings.Contains(err.Error(), "restore rejected") {
		t.Errorf("scheme mismatch: unexpected error %v", err)
	}
	bad := cfg
	bad.Cores = cfg.Cores + 2
	if err := sim.NewMachine(bad, sim.SchemeDomainVirt).RestoreSafe(decoded); err == nil {
		t.Error("core-count mismatch: RestoreSafe accepted")
	}
}
