package sim

import (
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

// TestThreadMigration moves a thread between cores mid-run: per-thread
// permissions must follow it (PKRU/PTLB reconstructed on the new core),
// and a thread that never had permission stays locked out on any core.
func TestThreadMigration(t *testing.T) {
	for _, scheme := range []Scheme{SchemeMPK, SchemeLibmpk, SchemeMPKVirt, SchemeDomainVirt} {
		cfg := DefaultConfig()
		cfg.Cores = 2
		m := NewMachine(cfg, scheme)
		r := memlayout.Region{Base: 0x2000_0000_0000, Size: 2 << 20}
		if err := m.Attach(1, r, core.PermRW); err != nil {
			t.Fatal(err)
		}

		m.SetAffinity(1, 0)
		m.SetPerm(1, 1, core.PermRW, 1)
		if !m.Access(1, r.Base, 8, true) {
			t.Fatalf("%s: store denied before migration", scheme)
		}

		// Migrate thread 1 to core 1: its grant must follow.
		m.SetAffinity(1, 1)
		if !m.Access(1, r.Base+64, 8, true) {
			t.Errorf("%s: permission lost across migration", scheme)
		}

		// Thread 2 follows onto core 0 (where thread 1's PKRU/PTLB
		// lived): it must not inherit the grant.
		m.SetAffinity(2, 0)
		if m.Access(2, r.Base, 8, false) {
			t.Errorf("%s: thread 2 inherited thread 1's permission on core 0", scheme)
		}

		res := m.Result()
		if res.Counters.ContextSwitches == 0 {
			t.Errorf("%s: migration recorded no context switches", scheme)
		}
	}
}
