// Package tlb models set-associative translation lookaside buffers whose
// entries carry, besides the translation, either a 4-bit protection key
// (MPK and hardware MPK virtualization) or a 10-bit domain ID (hardware
// domain virtualization). It provides the range invalidation (Range_Flush)
// primitive used by key remapping and tracks "invalidation debt" so the
// simulator can attribute refill misses caused by shootdowns.
package tlb

import (
	"domainvirt/internal/memlayout"
)

// Entry is one TLB entry. Tag is scheme-defined: the protection key for
// MPK-based schemes or the domain ID for domain virtualization; 0 means
// domainless in both encodings.
type Entry struct {
	VPN      uint64
	PFN      uint64
	Writable bool
	Tag      uint16
	Valid    bool
}

// Config describes one TLB level.
type Config struct {
	Entries int
	Ways    int
}

// TLB is a set-associative TLB with per-set LRU replacement.
type TLB struct {
	sets    [][]Entry
	lru     [][]uint32 // per-way recency stamps
	clock   uint32
	ways    int
	setMask uint64

	hits      uint64
	misses    uint64
	evictions uint64
}

// New constructs a TLB. Entries must be a multiple of Ways and the set
// count must be a power of two.
func New(cfg Config) *TLB {
	if cfg.Ways <= 0 || cfg.Entries <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("tlb: invalid geometry")
	}
	nsets := cfg.Entries / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic("tlb: set count must be a power of two")
	}
	t := &TLB{
		sets:    make([][]Entry, nsets),
		lru:     make([][]uint32, nsets),
		ways:    cfg.Ways,
		setMask: uint64(nsets - 1),
	}
	for i := range t.sets {
		t.sets[i] = make([]Entry, cfg.Ways)
		t.lru[i] = make([]uint32, cfg.Ways)
	}
	return t
}

func (t *TLB) setOf(vpn uint64) int { return int(vpn & t.setMask) }

// Lookup probes the TLB for vpn. On a hit it returns a pointer to the
// entry (valid until the next mutation) and refreshes its recency.
func (t *TLB) Lookup(vpn uint64) (*Entry, bool) {
	si := t.setOf(vpn)
	set := t.sets[si]
	for w := range set {
		if set[w].Valid && set[w].VPN == vpn {
			t.clock++
			t.lru[si][w] = t.clock
			t.hits++
			return &set[w], true
		}
	}
	t.misses++
	return nil, false
}

// Insert fills e into the TLB, evicting the LRU way if the set is full.
// It returns the evicted entry, if any.
func (t *TLB) Insert(e Entry) (victim Entry, evicted bool) {
	e.Valid = true
	si := t.setOf(e.VPN)
	set := t.sets[si]
	// Prefer an existing entry for the same VPN, then an invalid way.
	way := -1
	for w := range set {
		if set[w].Valid && set[w].VPN == e.VPN {
			way = w
			break
		}
	}
	if way < 0 {
		for w := range set {
			if !set[w].Valid {
				way = w
				break
			}
		}
	}
	if way < 0 {
		way = 0
		oldest := t.lru[si][0]
		for w := 1; w < t.ways; w++ {
			if t.lru[si][w] < oldest {
				oldest = t.lru[si][w]
				way = w
			}
		}
		victim, evicted = set[way], true
		t.evictions++
	}
	set[way] = e
	t.clock++
	t.lru[si][way] = t.clock
	return victim, evicted
}

// Invalidate removes the entry for vpn if present.
func (t *TLB) Invalidate(vpn uint64) bool {
	si := t.setOf(vpn)
	set := t.sets[si]
	for w := range set {
		if set[w].Valid && set[w].VPN == vpn {
			set[w].Valid = false
			return true
		}
	}
	return false
}

// FlushRange invalidates every entry whose page lies inside r, calling fn
// (if non-nil) with each flushed VPN, and returns the number flushed. This
// is the Range_Flush primitive of the hardware MPK-virtualization design.
func (t *TLB) FlushRange(r memlayout.Region, fn func(vpn uint64)) int {
	lo := memlayout.PageNum(r.Base)
	hi := memlayout.PageNum(r.End() - 1)
	n := 0
	for si := range t.sets {
		set := t.sets[si]
		for w := range set {
			if set[w].Valid && set[w].VPN >= lo && set[w].VPN <= hi {
				if fn != nil {
					fn(set[w].VPN)
				}
				set[w].Valid = false
				n++
			}
		}
	}
	return n
}

// FlushAll invalidates every entry and returns the number flushed.
func (t *TLB) FlushAll() int {
	n := 0
	for si := range t.sets {
		for w := range t.sets[si] {
			if t.sets[si][w].Valid {
				t.sets[si][w].Valid = false
				n++
			}
		}
	}
	return n
}

// Stats returns (hits, misses, evictions).
func (t *TLB) Stats() (hits, misses, evictions uint64) {
	return t.hits, t.misses, t.evictions
}

// Debt tracks pages flushed by TLB invalidations so that the later refill
// miss can be attributed to the invalidation ("subsequent TLB misses
// resulting from TLB invalidations is also taken into account").
type Debt struct {
	pages map[uint64]struct{}
}

// NewDebt returns an empty debt set.
func NewDebt() *Debt { return &Debt{pages: make(map[uint64]struct{})} }

// Owe records that vpn was flushed by an invalidation.
func (d *Debt) Owe(vpn uint64) { d.pages[vpn] = struct{}{} }

// Settle reports whether vpn was owed, consuming the debt.
func (d *Debt) Settle(vpn uint64) bool {
	if _, ok := d.pages[vpn]; ok {
		delete(d.pages, vpn)
		return true
	}
	return false
}

// Len returns the number of outstanding owed pages.
func (d *Debt) Len() int { return len(d.pages) }

// Reset clears the debt set.
func (d *Debt) Reset() { d.pages = make(map[uint64]struct{}) }
