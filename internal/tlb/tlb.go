// Package tlb models set-associative translation lookaside buffers whose
// entries carry, besides the translation, either a 4-bit protection key
// (MPK and hardware MPK virtualization) or a 10-bit domain ID (hardware
// domain virtualization). It provides the range invalidation (Range_Flush)
// primitive used by key remapping and tracks "invalidation debt" so the
// simulator can attribute refill misses caused by shootdowns.
package tlb

import (
	"domainvirt/internal/memlayout"
)

// Entry is one TLB entry. Tag is scheme-defined: the protection key for
// MPK-based schemes or the domain ID for domain virtualization; 0 means
// domainless in both encodings.
type Entry struct {
	VPN      uint64
	PFN      uint64
	Writable bool
	Tag      uint16
	Valid    bool
}

// Config describes one TLB level.
type Config struct {
	Entries int
	Ways    int
}

// TLB is a set-associative TLB with per-set LRU replacement. Entries and
// recency stamps live in flat set-major arrays (set s, way w at index
// s*ways+w): the per-access lookup scan touches one contiguous run with a
// single bounds check instead of chasing nested slice headers, and a flat
// position doubles as a compact handle for TouchHit revalidation.
type TLB struct {
	entries []Entry
	lru     []uint32 // per-way recency stamps
	clock   uint32
	ways    int
	setMask uint64

	hits      uint64
	misses    uint64
	evictions uint64
}

// New constructs a TLB. Entries must be a multiple of Ways and the set
// count must be a power of two.
func New(cfg Config) *TLB {
	if cfg.Ways <= 0 || cfg.Entries <= 0 || cfg.Entries%cfg.Ways != 0 {
		panic("tlb: invalid geometry")
	}
	nsets := cfg.Entries / cfg.Ways
	if nsets&(nsets-1) != 0 {
		panic("tlb: set count must be a power of two")
	}
	return &TLB{
		entries: make([]Entry, cfg.Entries),
		lru:     make([]uint32, cfg.Entries),
		ways:    cfg.Ways,
		setMask: uint64(nsets - 1),
	}
}

// baseOf returns the flat index of way 0 of vpn's set.
func (t *TLB) baseOf(vpn uint64) int { return int(vpn&t.setMask) * t.ways }

// Lookup probes the TLB for vpn. On a hit it returns a pointer to the
// entry (valid until the next mutation) and refreshes its recency.
func (t *TLB) Lookup(vpn uint64) (*Entry, bool) {
	e, _, ok := t.LookupPos(vpn)
	return e, ok
}

// LookupPos is Lookup returning, additionally, the flat position of the
// hit entry so callers can revalidate it later via TouchHit.
func (t *TLB) LookupPos(vpn uint64) (e *Entry, pos int, ok bool) {
	base := t.baseOf(vpn)
	set := t.entries[base : base+t.ways]
	for w := range set {
		if set[w].Valid && set[w].VPN == vpn {
			t.clock++
			t.lru[base+w] = t.clock
			t.hits++
			return &set[w], base + w, true
		}
	}
	t.misses++
	return nil, 0, false
}

// TouchHit revalidates a previously observed entry position: if pos still
// holds a valid entry for vpn it replays exactly the bookkeeping a Lookup
// hit performs (recency refresh, hit count) and returns the entry. Any
// staleness — the entry evicted, invalidated, or replaced — returns false
// with no state change, so callers fall back to a full Lookup. A VPN
// lives in at most one way of its set, making the position check a
// complete hit test.
func (t *TLB) TouchHit(pos int, vpn uint64) (*Entry, bool) {
	if pos < 0 || pos >= len(t.entries) {
		return nil, false
	}
	e := &t.entries[pos]
	if !e.Valid || e.VPN != vpn {
		return nil, false
	}
	t.clock++
	t.lru[pos] = t.clock
	t.hits++
	return e, true
}

// InsertPos is Insert returning, additionally, the flat position the
// entry landed in.
func (t *TLB) InsertPos(e Entry) (pos int, victim Entry, evicted bool) {
	return t.insert(e, t.baseOf(e.VPN))
}

// Insert fills e into the TLB, evicting the LRU way if the set is full.
// It returns the evicted entry, if any.
func (t *TLB) Insert(e Entry) (victim Entry, evicted bool) {
	_, victim, evicted = t.insert(e, t.baseOf(e.VPN))
	return victim, evicted
}

func (t *TLB) insert(e Entry, base int) (pos int, victim Entry, evicted bool) {
	e.Valid = true
	set := t.entries[base : base+t.ways]
	// Prefer an existing entry for the same VPN, then an invalid way.
	way := -1
	for w := range set {
		if set[w].Valid && set[w].VPN == e.VPN {
			way = w
			break
		}
	}
	if way < 0 {
		for w := range set {
			if !set[w].Valid {
				way = w
				break
			}
		}
	}
	if way < 0 {
		way = 0
		oldest := t.lru[base]
		for w := 1; w < t.ways; w++ {
			if t.lru[base+w] < oldest {
				oldest = t.lru[base+w]
				way = w
			}
		}
		victim, evicted = set[way], true
		t.evictions++
	}
	set[way] = e
	t.clock++
	t.lru[base+way] = t.clock
	return base + way, victim, evicted
}

// Invalidate removes the entry for vpn if present.
func (t *TLB) Invalidate(vpn uint64) bool {
	base := t.baseOf(vpn)
	set := t.entries[base : base+t.ways]
	for w := range set {
		if set[w].Valid && set[w].VPN == vpn {
			set[w].Valid = false
			return true
		}
	}
	return false
}

// FlushRange invalidates every entry whose page lies inside r, calling fn
// (if non-nil) with each flushed VPN, and returns the number flushed. This
// is the Range_Flush primitive of the hardware MPK-virtualization design.
func (t *TLB) FlushRange(r memlayout.Region, fn func(vpn uint64)) int {
	lo := memlayout.PageNum(r.Base)
	hi := memlayout.PageNum(r.End() - 1)
	n := 0
	for i := range t.entries {
		e := &t.entries[i]
		if e.Valid && e.VPN >= lo && e.VPN <= hi {
			if fn != nil {
				fn(e.VPN)
			}
			e.Valid = false
			n++
		}
	}
	return n
}

// FlushAll invalidates every entry and returns the number flushed.
func (t *TLB) FlushAll() int {
	n := 0
	for i := range t.entries {
		if t.entries[i].Valid {
			t.entries[i].Valid = false
			n++
		}
	}
	return n
}

// Stats returns (hits, misses, evictions).
func (t *TLB) Stats() (hits, misses, evictions uint64) {
	return t.hits, t.misses, t.evictions
}

// State is a deep copy of a TLB's mutable state, taken by Snapshot and
// reinstated by Restore. It is immutable once taken: Restore copies out
// of it, so one State can seed many TLBs (and be restored concurrently).
type State struct {
	entries   []Entry
	lru       []uint32
	clock     uint32
	hits      uint64
	misses    uint64
	evictions uint64
}

// Snapshot captures the TLB's entries, recency state, and statistics.
func (t *TLB) Snapshot() State {
	var s State
	t.SnapshotInto(&s)
	return s
}

// SnapshotInto overwrites s with a fresh snapshot, reusing s's storage
// when the geometry matches — the pooled-buffer path for snapshot-heavy
// sweeps. The caller must no longer be restoring from the old contents.
func (t *TLB) SnapshotInto(s *State) {
	if len(s.entries) != len(t.entries) {
		s.entries = make([]Entry, len(t.entries))
		s.lru = make([]uint32, len(t.lru))
	}
	copy(s.entries, t.entries)
	copy(s.lru, t.lru)
	s.clock = t.clock
	s.hits = t.hits
	s.misses = t.misses
	s.evictions = t.evictions
}

// Restore reinstates a snapshot taken from a TLB of identical geometry,
// reusing the receiver's storage. It panics on a geometry mismatch.
func (t *TLB) Restore(s State) {
	if len(s.entries) != len(t.entries) {
		panic("tlb: Restore geometry mismatch")
	}
	copy(t.entries, s.entries)
	copy(t.lru, s.lru)
	t.clock = s.clock
	t.hits = s.hits
	t.misses = s.misses
	t.evictions = s.evictions
}

// Debt tracks pages flushed by TLB invalidations so that the later refill
// miss can be attributed to the invalidation ("subsequent TLB misses
// resulting from TLB invalidations is also taken into account").
type Debt struct {
	pages map[uint64]struct{}
}

// NewDebt returns an empty debt set.
func NewDebt() *Debt { return &Debt{pages: make(map[uint64]struct{})} }

// Owe records that vpn was flushed by an invalidation.
func (d *Debt) Owe(vpn uint64) { d.pages[vpn] = struct{}{} }

// Settle reports whether vpn was owed, consuming the debt. The empty-set
// fast path keeps the common case (no outstanding shootdowns) off the map
// hash entirely — Settle runs on every TLB miss.
func (d *Debt) Settle(vpn uint64) bool {
	if len(d.pages) == 0 {
		return false
	}
	if _, ok := d.pages[vpn]; ok {
		delete(d.pages, vpn)
		return true
	}
	return false
}

// Len returns the number of outstanding owed pages.
func (d *Debt) Len() int { return len(d.pages) }

// Reset empties the debt set in place, reusing the map's storage so a
// reset-heavy caller (one per machine stats reset) never reallocates.
func (d *Debt) Reset() { clear(d.pages) }

// Snapshot returns a copy of the owed-page set.
func (d *Debt) Snapshot() map[uint64]struct{} {
	pages := make(map[uint64]struct{}, len(d.pages))
	for vpn := range d.pages {
		pages[vpn] = struct{}{}
	}
	return pages
}

// Restore replaces the owed-page set with a copy of pages, reusing the
// receiver's map storage.
func (d *Debt) Restore(pages map[uint64]struct{}) {
	clear(d.pages)
	for vpn := range pages {
		d.pages[vpn] = struct{}{}
	}
}
