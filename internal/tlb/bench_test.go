package tlb

import (
	"testing"

	"domainvirt/internal/memlayout"
)

func BenchmarkTLBLookupHit(b *testing.B) {
	t := New(Config{Entries: 1536, Ways: 6})
	for vpn := uint64(0); vpn < 1024; vpn++ {
		t.Insert(Entry{VPN: vpn})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(uint64(i) & 1023); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTLBInsertEvict(b *testing.B) {
	t := New(Config{Entries: 64, Ways: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(Entry{VPN: uint64(i)})
	}
}

func BenchmarkTLBRangeFlush(b *testing.B) {
	t := New(Config{Entries: 1536, Ways: 6})
	r := memlayout.Region{Base: 0, Size: 32 * memlayout.PageSize}
	for i := 0; i < b.N; i++ {
		for vpn := uint64(0); vpn < 32; vpn++ {
			t.Insert(Entry{VPN: vpn})
		}
		t.FlushRange(r, nil)
	}
}

// BenchmarkDebtReset measures the owe→settle→reset cycle a machine
// stats reset drives. Reset clears the map in place, so the loop must
// run allocation-free once the map has grown.
func BenchmarkDebtReset(b *testing.B) {
	d := NewDebt()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for vpn := uint64(0); vpn < 32; vpn++ {
			d.Owe(vpn)
		}
		d.Settle(7)
		d.Reset()
	}
}

// TestDebtResetAllocFree pins Reset's in-place-clear contract: emptying
// and refilling the debt set never reallocates the map storage.
func TestDebtResetAllocFree(t *testing.T) {
	d := NewDebt()
	cycle := func() {
		for vpn := uint64(0); vpn < 32; vpn++ {
			d.Owe(vpn)
		}
		if !d.Settle(7) || d.Settle(99) {
			t.Fatal("debt settle gave wrong answer")
		}
		d.Reset()
		if d.Len() != 0 {
			t.Fatalf("len = %d after Reset", d.Len())
		}
	}
	cycle() // warm: let the map grow its buckets once
	if allocs := testing.AllocsPerRun(500, cycle); allocs != 0 {
		t.Errorf("debt owe/settle/reset cycle allocates %v times per run, want 0", allocs)
	}
}
