package tlb

import (
	"testing"

	"domainvirt/internal/memlayout"
)

func BenchmarkTLBLookupHit(b *testing.B) {
	t := New(Config{Entries: 1536, Ways: 6})
	for vpn := uint64(0); vpn < 1024; vpn++ {
		t.Insert(Entry{VPN: vpn})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := t.Lookup(uint64(i) & 1023); !ok {
			b.Fatal("miss")
		}
	}
}

func BenchmarkTLBInsertEvict(b *testing.B) {
	t := New(Config{Entries: 64, Ways: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.Insert(Entry{VPN: uint64(i)})
	}
}

func BenchmarkTLBRangeFlush(b *testing.B) {
	t := New(Config{Entries: 1536, Ways: 6})
	r := memlayout.Region{Base: 0, Size: 32 * memlayout.PageSize}
	for i := 0; i < b.N; i++ {
		for vpn := uint64(0); vpn < 32; vpn++ {
			t.Insert(Entry{VPN: vpn})
		}
		t.FlushRange(r, nil)
	}
}
