package tlb

import (
	"fmt"

	"domainvirt/internal/bincodec"
)

// AppendTo appends the deterministic binary form of the state: geometry
// first, then entries, recency stamps, clock, and statistics. Identical
// states produce identical bytes.
func (s State) AppendTo(b []byte) []byte {
	b = bincodec.U32(b, uint32(len(s.entries)))
	for _, e := range s.entries {
		b = bincodec.U64(b, e.VPN)
		b = bincodec.U64(b, e.PFN)
		b = bincodec.Bool(b, e.Writable)
		b = bincodec.U16(b, e.Tag)
		b = bincodec.Bool(b, e.Valid)
	}
	for _, v := range s.lru {
		b = bincodec.U32(b, v)
	}
	b = bincodec.U32(b, s.clock)
	b = bincodec.U64(b, s.hits)
	b = bincodec.U64(b, s.misses)
	b = bincodec.U64(b, s.evictions)
	return b
}

// DecodeState reads a State written by AppendTo.
func DecodeState(r *bincodec.Reader) (State, error) {
	var s State
	n := r.Count(20 + 4) // entry (20 bytes) + lru stamp per entry
	if err := r.Err(); err != nil {
		return s, fmt.Errorf("tlb: %w", err)
	}
	s.entries = make([]Entry, n)
	for i := range s.entries {
		e := &s.entries[i]
		e.VPN = r.U64()
		e.PFN = r.U64()
		e.Writable = r.Bool()
		e.Tag = r.U16()
		e.Valid = r.Bool()
	}
	s.lru = make([]uint32, n)
	for i := range s.lru {
		s.lru[i] = r.U32()
	}
	s.clock = r.U32()
	s.hits = r.U64()
	s.misses = r.U64()
	s.evictions = r.U64()
	if err := r.Err(); err != nil {
		return State{}, fmt.Errorf("tlb: %w", err)
	}
	return s, nil
}

// Entries returns the number of TLB entries the state was captured from,
// for pre-restore geometry validation.
func (s State) Entries() int { return len(s.entries) }
