package tlb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"domainvirt/internal/memlayout"
)

func TestLookupAfterInsert(t *testing.T) {
	tl := New(Config{Entries: 64, Ways: 4})
	tl.Insert(Entry{VPN: 100, PFN: 200, Writable: true, Tag: 7})
	e, ok := tl.Lookup(100)
	if !ok {
		t.Fatal("inserted entry missing")
	}
	if e.PFN != 200 || e.Tag != 7 || !e.Writable {
		t.Errorf("entry corrupted: %+v", e)
	}
	if _, ok := tl.Lookup(101); ok {
		t.Error("phantom hit")
	}
}

func TestInsertUpdatesExisting(t *testing.T) {
	tl := New(Config{Entries: 64, Ways: 4})
	tl.Insert(Entry{VPN: 5, Tag: 1})
	tl.Insert(Entry{VPN: 5, Tag: 2})
	e, _ := tl.Lookup(5)
	if e.Tag != 2 {
		t.Errorf("tag = %d, want updated 2", e.Tag)
	}
	// No duplicate: invalidating once removes it entirely.
	tl.Invalidate(5)
	if _, ok := tl.Lookup(5); ok {
		t.Error("duplicate entry left behind")
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct construction of a single-set TLB: 4 entries, 4 ways.
	tl := New(Config{Entries: 4, Ways: 4})
	for vpn := uint64(0); vpn < 4; vpn++ {
		tl.Insert(Entry{VPN: vpn * 4}) // same set (set index = vpn & 0)
	}
	// Touch all but VPN 4 (the second insert).
	tl.Lookup(0)
	tl.Lookup(8)
	tl.Lookup(12)
	victim, evicted := tl.Insert(Entry{VPN: 16})
	if !evicted || victim.VPN != 4 {
		t.Errorf("evicted %+v, want LRU VPN 4", victim)
	}
}

func TestFlushRangeExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tl := New(Config{Entries: 256, Ways: 4})
		present := make(map[uint64]bool)
		for i := 0; i < 128; i++ {
			vpn := uint64(rng.Intn(512))
			if v, ev := tl.Insert(Entry{VPN: vpn}); ev {
				delete(present, v.VPN)
			}
			present[vpn] = true
		}
		lo := uint64(rng.Intn(256))
		n := uint64(rng.Intn(256) + 1)
		r := memlayout.Region{
			Base: memlayout.VA(lo << memlayout.PageShift),
			Size: n * memlayout.PageSize,
		}
		want := 0
		for vpn := range present {
			if vpn >= lo && vpn < lo+n {
				want++
			}
		}
		got := tl.FlushRange(r, nil)
		if got != want {
			return false
		}
		// In-range entries gone, out-of-range intact.
		for vpn := range present {
			_, ok := tl.Lookup(vpn)
			inRange := vpn >= lo && vpn < lo+n
			if inRange == ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFlushRangeCallback(t *testing.T) {
	tl := New(Config{Entries: 64, Ways: 4})
	for vpn := uint64(10); vpn < 20; vpn++ {
		tl.Insert(Entry{VPN: vpn})
	}
	var flushed []uint64
	r := memlayout.Region{Base: 12 << memlayout.PageShift, Size: 4 * memlayout.PageSize}
	n := tl.FlushRange(r, func(vpn uint64) { flushed = append(flushed, vpn) })
	if n != 4 || len(flushed) != 4 {
		t.Fatalf("flushed %d entries (callback %d), want 4", n, len(flushed))
	}
	for _, vpn := range flushed {
		if vpn < 12 || vpn > 15 {
			t.Errorf("callback vpn %d outside range", vpn)
		}
	}
}

func TestFlushAll(t *testing.T) {
	tl := New(Config{Entries: 64, Ways: 4})
	for vpn := uint64(0); vpn < 30; vpn++ {
		tl.Insert(Entry{VPN: vpn})
	}
	if n := tl.FlushAll(); n != 30 {
		t.Errorf("FlushAll = %d, want 30", n)
	}
	if n := tl.FlushAll(); n != 0 {
		t.Errorf("second FlushAll = %d, want 0", n)
	}
}

func TestStatsCounting(t *testing.T) {
	tl := New(Config{Entries: 64, Ways: 4})
	tl.Insert(Entry{VPN: 1})
	tl.Lookup(1)
	tl.Lookup(2)
	h, m, _ := tl.Stats()
	if h != 1 || m != 1 {
		t.Errorf("stats = (%d,%d), want (1,1)", h, m)
	}
}

func TestDebt(t *testing.T) {
	d := NewDebt()
	d.Owe(5)
	d.Owe(5)
	d.Owe(9)
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2 (dedup)", d.Len())
	}
	if !d.Settle(5) {
		t.Error("owed page not settled")
	}
	if d.Settle(5) {
		t.Error("double settle")
	}
	if d.Settle(1) {
		t.Error("settled a page never owed")
	}
	d.Reset()
	if d.Len() != 0 {
		t.Error("reset left debt")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	for _, cfg := range []Config{
		{Entries: 0, Ways: 1},
		{Entries: 7, Ways: 2},
		{Entries: 24, Ways: 4}, // 6 sets: not a power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}
