// Package report renders experiment results as aligned ASCII tables, CSV,
// and log-scale ASCII charts — one renderer per table/figure shape in the
// paper's evaluation section.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a generic titled table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table with aligned columns.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		return strings.TrimRight(sb.String(), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total-2)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one figure: per-scheme Y values over a shared X axis
// (number of PMOs in Figure 6/7).
type Series struct {
	Title  string
	XLabel string
	YLabel string
	X      []int
	Names  []string             // series order
	Y      map[string][]float64 // name -> values aligned with X
}

// NewSeries constructs an empty figure.
func NewSeries(title, xlabel, ylabel string) *Series {
	return &Series{Title: title, XLabel: xlabel, YLabel: ylabel, Y: make(map[string][]float64)}
}

// Add appends one point to the named series.
func (s *Series) Add(name string, y float64) {
	if _, ok := s.Y[name]; !ok {
		s.Names = append(s.Names, name)
	}
	s.Y[name] = append(s.Y[name], y)
}

// Table renders the series as a table (one row per X value).
func (s *Series) Table() *Table {
	t := &Table{Title: s.Title, Headers: append([]string{s.XLabel}, s.Names...)}
	for i, x := range s.X {
		row := []string{fmt.Sprintf("%d", x)}
		for _, n := range s.Names {
			ys := s.Y[n]
			if i < len(ys) {
				row = append(row, fmt.Sprintf("%.2f", ys[i]))
			} else {
				row = append(row, "-")
			}
		}
		t.AddRow(row...)
	}
	return t
}

// RenderChart draws a log2-scale ASCII chart, matching the paper's
// Figure 6 axes ("2^2 means 4%% slower, 2^4 means 16%% slower").
func (s *Series) RenderChart(w io.Writer, height int) error {
	if height <= 0 {
		height = 12
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, ys := range s.Y {
		for _, y := range ys {
			ly := log2Clamp(y)
			if ly < lo {
				lo = ly
			}
			if ly > hi {
				hi = ly
			}
		}
	}
	if math.IsInf(lo, 1) {
		return nil
	}
	lo = math.Floor(lo)
	hi = math.Ceil(hi)
	if hi <= lo {
		hi = lo + 1
	}
	if _, err := fmt.Fprintf(w, "%s  (y: log2 %s)\n", s.Title, s.YLabel); err != nil {
		return err
	}
	marks := "*o+x#@%&"
	cols := len(s.X)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols*4))
	}
	for si, name := range s.Names {
		for i, y := range s.Y[name] {
			ly := log2Clamp(y)
			r := int(math.Round((hi - ly) / (hi - lo) * float64(height-1)))
			if r < 0 {
				r = 0
			}
			if r >= height {
				r = height - 1
			}
			c := i*4 + si%3
			if c < len(grid[r]) {
				grid[r][c] = marks[si%len(marks)]
			}
		}
	}
	for r := range grid {
		yval := hi - (hi-lo)*float64(r)/float64(height-1)
		if _, err := fmt.Fprintf(w, "2^%5.1f |%s\n", yval, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "        +%s\n         ", strings.Repeat("-", cols*4)); err != nil {
		return err
	}
	for _, x := range s.X {
		fmt.Fprintf(w, "%-4d", x)
	}
	fmt.Fprintf(w, " %s\n", s.XLabel)
	for si, name := range s.Names {
		fmt.Fprintf(w, "  %c = %s\n", marks[si%len(marks)], name)
	}
	return nil
}

func log2Clamp(y float64) float64 {
	if y < 0.25 {
		y = 0.25
	}
	return math.Log2(y)
}
