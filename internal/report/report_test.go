package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "T",
		Headers: []string{"name", "value"},
	}
	tbl.AddRow("alpha", "1")
	tbl.AddRow("a-much-longer-name", "22222")
	var b bytes.Buffer
	if err := tbl.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "alpha") {
		t.Errorf("render missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title, header, rule, 2 rows -> 5? title+header+rule+2rows = 5
		if len(lines) != 5 {
			t.Errorf("unexpected line count %d:\n%s", len(lines), out)
		}
	}
	// Columns aligned: "value" column starts at the same offset in both rows.
	h := lines[1]
	idx := strings.Index(h, "value")
	for _, ln := range lines[3:] {
		if len(ln) <= idx {
			t.Errorf("row shorter than header: %q", ln)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("x,y", `say "hi"`)
	var b bytes.Buffer
	if err := tbl.CSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n"
	if b.String() != want {
		t.Errorf("CSV = %q, want %q", b.String(), want)
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("fig", "PMOs", "%")
	s.X = []int{16, 64}
	s.Add("a", 4)
	s.Add("b", 16)
	s.Add("a", 8)
	s.Add("b", 32)
	if len(s.Names) != 2 || s.Names[0] != "a" {
		t.Errorf("Names = %v", s.Names)
	}
	tbl := s.Table()
	if len(tbl.Rows) != 2 || tbl.Rows[0][1] != "4.00" || tbl.Rows[1][2] != "32.00" {
		t.Errorf("table rows = %v", tbl.Rows)
	}
	var b bytes.Buffer
	if err := s.RenderChart(&b, 8); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"fig", "PMOs", "* = a", "o = b", "16", "64"} {
		if !strings.Contains(out, want) {
			t.Errorf("chart missing %q:\n%s", want, out)
		}
	}
}

func TestSeriesEmptyChart(t *testing.T) {
	s := NewSeries("empty", "x", "y")
	var b bytes.Buffer
	if err := s.RenderChart(&b, 8); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesMissingPoints(t *testing.T) {
	s := NewSeries("fig", "x", "y")
	s.X = []int{1, 2, 3}
	s.Add("a", 1) // only one point for three X values
	tbl := s.Table()
	if tbl.Rows[2][1] != "-" {
		t.Errorf("missing point rendered as %q", tbl.Rows[2][1])
	}
}
