package cluster

import (
	"fmt"
	"testing"
)

// TestHashGolden pins the score function to known values: routing is a
// cross-process contract (every router replica and every test must
// agree byte-for-byte), so the hash may never drift silently.
func TestHashGolden(t *testing.T) {
	cases := []struct {
		node, key string
		want      uint64
	}{
		{"node-a", "pool-00001", 0xb9156bc110a34811},
		{"node-b", "pool-00001", 0xe0610929946c562a},
		{"ab", "c", 0x7b4209eccab7f7c3},
		{"a", "bc", 0x300bffd2a90ecf20},
	}
	for _, c := range cases {
		if got := hashNodeKey(c.node, c.key); got != c.want {
			t.Errorf("hashNodeKey(%q,%q) = %#x, want %#x", c.node, c.key, got, c.want)
		}
	}
	// The separator must keep (node||key) splits distinct.
	if hashNodeKey("ab", "c") == hashNodeKey("a", "bc") {
		t.Error("separator failed: (ab,c) and (a,bc) collide")
	}
}

// TestPickGolden pins placement itself for a fixed cluster.
func TestPickGolden(t *testing.T) {
	nodes := []string{"10.0.0.1:7070", "10.0.0.2:7070", "10.0.0.3:7070"}
	want := map[string]int{
		"pool-00000": 0, "pool-00001": 1, "pool-00007": 0, "alice": 2, "bob": 2,
	}
	for key, idx := range want {
		if got := PickIndex(key, nodes); got != idx {
			t.Errorf("PickIndex(%q) = %d, want %d", key, got, idx)
		}
		if got := Pick(key, nodes); got != nodes[idx] {
			t.Errorf("Pick(%q) = %q, want %q", key, got, nodes[idx])
		}
	}
}

func TestPickEdgeCases(t *testing.T) {
	if got := PickIndex("k", nil); got != -1 {
		t.Errorf("empty node list: %d, want -1", got)
	}
	if got := Pick("k", nil); got != "" {
		t.Errorf("empty node list: %q, want empty", got)
	}
	if got := PickIndex("k", []string{"only"}); got != 0 {
		t.Errorf("single node: %d, want 0", got)
	}
}

// TestPickDeterministicAcrossOrder verifies placement depends on the
// node's identity, not its position: permuting the list must send every
// key to the same node.
func TestPickDeterministicAcrossOrder(t *testing.T) {
	a := []string{"n0", "n1", "n2", "n3"}
	b := []string{"n3", "n1", "n0", "n2"}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("pool-%05d", i)
		if Pick(key, a) != Pick(key, b) {
			t.Fatalf("key %q placed differently under permuted node lists", key)
		}
	}
}

// TestPickBalance checks the hash spreads keys roughly evenly: each of
// 5 nodes should own 20% ±5 points of a 10k-key space.
func TestPickBalance(t *testing.T) {
	nodes := []string{"n0:7070", "n1:7070", "n2:7070", "n3:7070", "n4:7070"}
	counts := make([]int, len(nodes))
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[PickIndex(fmt.Sprintf("pool-%05d", i), nodes)]++
	}
	lo, hi := keys/len(nodes)*75/100, keys/len(nodes)*125/100
	for i, c := range counts {
		if c < lo || c > hi {
			t.Errorf("node %d owns %d of %d keys (want %d..%d): skewed hash", i, c, keys, lo, hi)
		}
	}
}

// TestPickMinimalMovement is the property rendezvous hashing is here
// for: growing N-1 → N nodes may move only the keys the new node now
// wins (expected K/N), and every moved key must land on the new node;
// shrinking moves only the removed node's keys.
func TestPickMinimalMovement(t *testing.T) {
	small := []string{"n0", "n1", "n2", "n3"}
	big := append(append([]string{}, small...), "n4")
	const keys = 10000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("pool-%05d", i)
		before, after := Pick(key, small), Pick(key, big)
		if before != after {
			moved++
			if after != "n4" {
				t.Fatalf("key %q moved %s -> %s on node ADD; only moves onto the new node are minimal", key, before, after)
			}
		}
	}
	// Expected K/N = 2000 of 10000; allow generous slack, but well under
	// the ~8000 a mod-N scheme would reshuffle.
	if moved < keys/10 || moved > keys*3/10 {
		t.Errorf("adding a node moved %d of %d keys, want about %d", moved, keys, keys/len(big))
	}

	// Removal: keys not owned by the removed node must not move.
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("pool-%05d", i)
		owner := Pick(key, big)
		if owner == "n4" {
			continue
		}
		if got := Pick(key, small); got != owner {
			t.Fatalf("key %q moved %s -> %s when an unrelated node left", key, owner, got)
		}
	}
}

// TestPickIndexAllocFree keeps routing off the allocator: it runs on
// every OPEN.
func TestPickIndexAllocFree(t *testing.T) {
	nodes := []string{"n0:7070", "n1:7070", "n2:7070"}
	if allocs := testing.AllocsPerRun(200, func() {
		if PickIndex("pool-00042", nodes) < 0 {
			t.Fatal("no pick")
		}
	}); allocs != 0 {
		t.Fatalf("PickIndex allocates %v times per run, want 0", allocs)
	}
}

func BenchmarkPickIndex(b *testing.B) {
	for _, n := range []int{3, 16, 64} {
		nodes := make([]string, n)
		for i := range nodes {
			nodes[i] = fmt.Sprintf("10.0.%d.1:7070", i)
		}
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				PickIndex("pool-00042", nodes)
			}
		})
	}
}
