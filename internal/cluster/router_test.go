package cluster

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"domainvirt/internal/serve"
)

// testCluster is N in-process pmod backends fronted by one router.
type testCluster struct {
	router   *Router
	addr     string // router listen address
	backends []string
	servers  []*serve.Server
	stopped  []bool
	stop     []func() // per-backend shutdown
}

func startCluster(t *testing.T, n int, opts Options) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		lis, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		srv := serve.NewServer(serve.Options{IdleTimeout: time.Hour})
		done := make(chan error, 1)
		go func() { done <- srv.Serve(lis) }()
		idx := i
		tc.servers = append(tc.servers, srv)
		tc.backends = append(tc.backends, lis.Addr().String())
		tc.stopped = append(tc.stopped, false)
		tc.stop = append(tc.stop, func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Errorf("backend %d shutdown: %v", idx, err)
			}
			<-done
		})
	}
	t.Cleanup(func() {
		for i := range tc.stop {
			if !tc.stopped[i] {
				tc.stopped[i] = true
				tc.stop[i]()
			}
		}
	})

	opts.Backends = tc.backends
	r, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- r.Serve(lis) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			t.Errorf("router shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("router serve: %v", err)
		}
	})
	tc.router, tc.addr = r, lis.Addr().String()
	return tc
}

// killBackend shuts one backend down now (instead of at cleanup).
func (tc *testCluster) killBackend(i int) {
	if !tc.stopped[i] {
		tc.stopped[i] = true
		tc.stop[i]()
	}
}

// poolOwnedBy finds a pool name the routing function places on node
// idx.
func (tc *testCluster) poolOwnedBy(t *testing.T, idx int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		name := fmt.Sprintf("pool-%05d", i)
		if PickIndex(name, tc.backends) == idx {
			return name
		}
	}
	t.Fatal("no pool hashes to node")
	return ""
}

func dialRouter(t *testing.T, tc *testCluster) *serve.Client {
	t.Helper()
	cl, err := serve.Dial(tc.addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	cl.SetTimeout(5 * time.Second)
	return cl
}

func wantCode(t *testing.T, err error, code serve.ErrCode) {
	t.Helper()
	var se *serve.ServerError
	if !errors.As(err, &se) {
		t.Fatalf("got %v, want server error code %d", err, code)
	}
	if se.Code != code {
		t.Fatalf("got code %d (%s), want %d", se.Code, se.Msg, code)
	}
}

func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRouterRoutesByPool checks end-to-end data flow through the router
// and that sessions land on the rendezvous owner.
func TestRouterRoutesByPool(t *testing.T) {
	tc := startCluster(t, 3, Options{})
	for idx := 0; idx < 3; idx++ {
		pool := tc.poolOwnedBy(t, idx)
		cl := dialRouter(t, tc)
		if err := cl.Hello(pool); err != nil {
			t.Fatal(err)
		}
		if cl.Proto() != serve.ProtoV2 {
			t.Fatalf("router negotiated v%d, want v2", cl.Proto())
		}
		if _, err := cl.Open(pool, 512<<10); err != nil {
			t.Fatal(err)
		}
		if err := cl.Attach(true); err != nil {
			t.Fatal(err)
		}
		msg := []byte("routed-" + pool)
		if err := cl.Write(300<<10, msg); err != nil {
			t.Fatal(err)
		}
		got, err := cl.Read(300<<10, uint32(len(msg)))
		if err != nil || !bytes.Equal(got, msg) {
			t.Fatalf("read back %q, %v", got, err)
		}
		// The session must live on the hash-owner, nowhere else.
		for s := range tc.servers {
			want := 0
			if s == idx {
				want = 1
			}
			if n := tc.servers[s].SessionCount(); n != want {
				t.Errorf("pool %q: backend %d holds %d sessions, want %d", pool, s, n, want)
			}
		}
		if err := cl.CloseSession(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRouterBatchRelay pushes a v2 BATCH through the router and checks
// per-entry results come back correlated.
func TestRouterBatchRelay(t *testing.T) {
	tc := startCluster(t, 3, Options{})
	pool := tc.poolOwnedBy(t, 1)
	cl := dialRouter(t, tc)
	for _, step := range []func() error{
		func() error { return cl.Hello(pool) },
		func() error { _, err := cl.Open(pool, 512<<10); return err },
		func() error { return cl.Attach(true) },
	} {
		if err := step(); err != nil {
			t.Fatal(err)
		}
	}
	reqs := []*serve.Request{
		{Op: serve.OpWrite, Off: 300 << 10, Data: []byte("abc")},
		{Op: serve.OpRead, Off: 300 << 10, Len: 3},
		{Op: serve.OpTxCommit, Tx: []serve.TxWrite{{Off: 310 << 10, Data: []byte("xyz")}}},
		{Op: serve.OpRead, Off: 310 << 10, Len: 3},
	}
	resps := make([]serve.Response, len(reqs))
	if err := cl.DoBatch(reqs, resps); err != nil {
		t.Fatal(err)
	}
	for i, resp := range resps {
		if resp.Status != serve.StatusOK {
			t.Fatalf("entry %d: %+v", i, resp)
		}
	}
	if string(resps[1].Data) != "abc" || string(resps[3].Data) != "xyz" {
		t.Fatalf("batched reads: %q, %q", resps[1].Data, resps[3].Data)
	}
	if got := tc.router.Metrics().RelayedBatches.Load(); got == 0 {
		t.Error("router relayed no batches")
	}

	// Session ops hidden inside a batch would desynchronize routing
	// state; the router must refuse them with a typed error.
	err := cl.DoBatch([]*serve.Request{{Op: serve.OpClose}}, make([]serve.Response, 1))
	wantCode(t, err, serve.ErrBadFrame)
}

// TestRouterLocalAnswers checks the protocol edges the router answers
// itself: handshake ordering, double OPEN, and the pre-session STATS
// that exposes router metrics.
func TestRouterLocalAnswers(t *testing.T) {
	tc := startCluster(t, 2, Options{})
	cl := dialRouter(t, tc)

	_, err := cl.Open("early", 512<<10)
	wantCode(t, err, serve.ErrNoHello)
	_, err = cl.Read(0, 8)
	wantCode(t, err, serve.ErrNoHello)

	pool := tc.poolOwnedBy(t, 0)
	if err := cl.Hello(pool); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Read(0, 8)
	wantCode(t, err, serve.ErrNoSession)

	stats, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stats), "pmorouter_sessions_total") {
		t.Errorf("pre-session STATS is not the router snapshot:\n%.300s", stats)
	}

	if _, err := cl.Open(pool, 512<<10); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Open(pool, 512<<10)
	wantCode(t, err, serve.ErrExists)
	err = cl.Hello("other")
	wantCode(t, err, serve.ErrExists)

	// In-session STATS relays to the owning backend.
	stats, err = cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(stats), "pmod_requests_total") {
		t.Errorf("in-session STATS is not the backend snapshot:\n%.300s", stats)
	}
}

// TestRouterConnReuse checks the multiplexing story: sequential
// sessions over fresh client conns reuse pooled upstream conns instead
// of redialing, via the CLOSE-drain recycle path.
func TestRouterConnReuse(t *testing.T) {
	tc := startCluster(t, 1, Options{})
	pool := tc.poolOwnedBy(t, 0)
	for i := 0; i < 5; i++ {
		cl, err := serve.Dial(tc.addr)
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Hello(pool); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.Open(pool, 512<<10); err != nil {
			t.Fatal(err)
		}
		// Half the sessions CLOSE politely, half just disconnect; both
		// paths must return the upstream conn to the pool.
		if i%2 == 0 {
			if err := cl.CloseSession(); err != nil {
				t.Fatal(err)
			}
		}
		cl.Close()
		// The recycle happens after the client socket drops; wait for the
		// router to finish it before the next dial so reuse is observable.
		waitFor(t, time.Second, func() bool {
			return tc.router.Metrics().ActiveConns.Load() == 0
		})
	}
	m := tc.router.Metrics()
	if got := m.DrainOK.Load(); got == 0 {
		t.Error("no upstream conns were CLOSE-drained for reuse")
	}
	mets := tc.servers[0].Metrics()
	if dials := mets.Requests[serve.OpHello].Load(); dials == 0 {
		t.Error("no upstream HELLOs recorded")
	}
	if closes := mets.Closes.Load(); closes < 5 {
		t.Errorf("backend saw %d CLOSEs, want >= 5 (drain per session)", closes)
	}
	// All 5 sessions over at most a couple of physical conns (health
	// probes dial their own).
	if b := tc.router.backends[0]; b.reuses.Load() < 3 {
		t.Errorf("upstream conns reused %d times, want >= 3", b.reuses.Load())
	}
}

// TestRouterUnavailableNoFailover kills a backend and checks its pools
// go typed-UNAVAILABLE (no silent failover to a node without the data)
// while other pools keep working — and that a session's mid-flight loss
// surfaces the same way, leaving the connection usable.
func TestRouterUnavailableNoFailover(t *testing.T) {
	tc := startCluster(t, 3, Options{
		HealthEvery: 20 * time.Millisecond,
		FailAfter:   1,
		DialRetries: 1,
		DialBackoff: 5 * time.Millisecond,
		IOTimeout:   2 * time.Second,
	})
	deadPool := tc.poolOwnedBy(t, 2)
	livePool := tc.poolOwnedBy(t, 0)

	// A session is live on the doomed backend when it dies.
	cl := dialRouter(t, tc)
	if err := cl.Hello(deadPool); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open(deadPool, 512<<10); err != nil {
		t.Fatal(err)
	}

	tc.killBackend(2)
	waitFor(t, 5*time.Second, func() bool { return tc.router.Healthy() == 2 })
	if got := tc.router.Healthy(); got != 2 {
		t.Fatalf("router sees %d healthy backends, want 2", got)
	}

	// The in-flight session's next op fails typed, not silently.
	_, err := cl.Read(300<<10, 8)
	wantCode(t, err, serve.ErrUnavailable)

	// New OPENs for the dead node's pools: typed UNAVAILABLE.
	_, err = cl.Open(deadPool, 512<<10)
	wantCode(t, err, serve.ErrUnavailable)

	// The same connection still reaches live owners.
	if err := cl.Hello(livePool); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open(livePool, 512<<10); err != nil {
		t.Fatal(err)
	}
	if err := cl.Attach(true); err != nil {
		t.Fatal(err)
	}
	if err := cl.Write(300<<10, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	if got := tc.router.Metrics().Unavailable.Load(); got < 2 {
		t.Errorf("unavailable answers %d, want >= 2", got)
	}
}

// TestRouterDrainClosesSessions checks Shutdown CLOSEs live upstream
// sessions so backends see clean departures, not abandoned sessions.
func TestRouterDrainClosesSessions(t *testing.T) {
	tc := startCluster(t, 2, Options{})
	pool := tc.poolOwnedBy(t, 0)
	cl := dialRouter(t, tc)
	if err := cl.Hello(pool); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Open(pool, 512<<10); err != nil {
		t.Fatal(err)
	}
	if n := tc.servers[0].SessionCount(); n != 1 {
		t.Fatalf("backend sessions = %d, want 1", n)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tc.router.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if n := tc.servers[0].SessionCount(); n != 0 {
		t.Errorf("backend still holds %d sessions after router drain", n)
	}
}
