package cluster

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"domainvirt/internal/serve"
)

// Options configures a Router. Zero values get the documented defaults.
type Options struct {
	// Backends are the pmod node addresses. Order does not affect
	// placement (rendezvous hashing scores each node independently) but
	// the list contents do: every router replica must be configured with
	// the same set or replicas will disagree on ownership.
	Backends []string

	// DialTimeout bounds one upstream dial attempt. Default 2s.
	DialTimeout time.Duration
	// DialRetries is how many times a failed upstream dial is retried
	// (transient failures only; a saturated backend answers RETRY
	// immediately). Default 2.
	DialRetries int
	// DialBackoff is the sleep before the first dial retry, doubling per
	// attempt. Default 50ms.
	DialBackoff time.Duration
	// IOTimeout bounds each relayed round trip's upstream I/O and the
	// CLOSE-drain when recycling a conn. Default 30s; negative disables.
	IOTimeout time.Duration

	// MaxConnsPerBackend caps leased+idle upstream conns per backend;
	// past it new sessions get RETRY. 0 = unlimited.
	MaxConnsPerBackend int
	// MaxIdlePerBackend caps the per-backend idle pool. Default 64.
	MaxIdlePerBackend int

	// HealthEvery is the probe interval per backend. Default 1s;
	// negative disables probing (backends start healthy and stay so).
	HealthEvery time.Duration
	// FailAfter is how many consecutive probe failures mark a backend
	// down. Default 2 (one lost probe must not unroute live keys).
	FailAfter int

	// Logf, when set, receives health transitions and teardown notes.
	Logf func(format string, args ...any)
}

func (o *Options) withDefaults() Options {
	opts := *o
	if opts.DialTimeout == 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.DialRetries == 0 {
		opts.DialRetries = 2
	}
	if opts.DialBackoff == 0 {
		opts.DialBackoff = 50 * time.Millisecond
	}
	if opts.IOTimeout == 0 {
		opts.IOTimeout = 30 * time.Second
	} else if opts.IOTimeout < 0 {
		opts.IOTimeout = 0
	}
	if opts.MaxIdlePerBackend == 0 {
		opts.MaxIdlePerBackend = 64
	}
	if opts.HealthEvery == 0 {
		opts.HealthEvery = time.Second
	}
	if opts.FailAfter == 0 {
		opts.FailAfter = 2
	}
	return opts
}

// healthProbeName is the client identity health probes HELLO with; it
// never OPENs a pool, so it cannot collide with a real client namespace.
const healthProbeName = "pmorouter-health"

// Router proxies the pmod wire protocol onto a set of backends. It
// terminates HELLO itself (recording identity and negotiating the
// protocol version), routes each OPEN to the pool's rendezvous owner,
// and from then on relays frames — including v2 BATCH containers —
// verbatim, so the data path adds one frame copy and no re-encoding.
type Router struct {
	opts     Options
	addrs    []string // routing list: all configured backends, health-independent
	backends []*backend
	met      RouterMetrics

	connMu   sync.Mutex
	lis      net.Listener
	conns    map[net.Conn]struct{}
	draining atomic.Bool
	started  atomic.Bool

	readersWG sync.WaitGroup
	healthWG  sync.WaitGroup
	stop      chan struct{}
}

// NewRouter builds a router over opts.Backends.
func NewRouter(opts Options) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("cluster: no backends configured")
	}
	seen := make(map[string]bool, len(opts.Backends))
	r := &Router{
		opts:  opts.withDefaults(),
		conns: make(map[net.Conn]struct{}),
		stop:  make(chan struct{}),
	}
	for _, addr := range opts.Backends {
		if addr == "" || seen[addr] {
			return nil, fmt.Errorf("cluster: empty or duplicate backend %q", addr)
		}
		seen[addr] = true
		b := &backend{addr: addr}
		// Start healthy: a router restart must not blackhole every pool
		// for the first probe interval.
		b.healthy.Store(true)
		r.addrs = append(r.addrs, addr)
		r.backends = append(r.backends, b)
	}
	return r, nil
}

// Metrics exposes the router's live counters.
func (r *Router) Metrics() *RouterMetrics { return &r.met }

// WriteMetrics renders the router snapshot (plus per-backend series) in
// Prometheus text format — the same payload a pre-session STATS gets.
func (r *Router) WriteMetrics(w io.Writer) error { return r.met.writePrometheus(w, r.backends) }

// Backends returns the configured routing list.
func (r *Router) Backends() []string { return r.addrs }

// Healthy reports how many backends the probe loop currently sees up.
func (r *Router) Healthy() int {
	n := 0
	for _, b := range r.backends {
		if b.healthy.Load() {
			n++
		}
	}
	return n
}

func (r *Router) logf(format string, args ...any) {
	if r.opts.Logf != nil {
		r.opts.Logf(format, args...)
	}
}

// Serve accepts downstream connections until Shutdown (returns nil) or
// a listener error. Health probing starts on first call.
func (r *Router) Serve(lis net.Listener) error {
	r.connMu.Lock()
	r.lis = lis
	draining := r.draining.Load()
	r.connMu.Unlock()
	if draining {
		lis.Close()
		return nil
	}
	if r.started.CompareAndSwap(false, true) && r.opts.HealthEvery > 0 {
		for _, b := range r.backends {
			r.healthWG.Add(1)
			go r.healthLoop(b)
		}
	}
	for {
		c, err := lis.Accept()
		if err != nil {
			if r.draining.Load() || errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		r.connMu.Lock()
		if r.draining.Load() {
			r.connMu.Unlock()
			c.Close()
			continue
		}
		r.conns[c] = struct{}{}
		r.connMu.Unlock()
		r.met.Conns.Add(1)
		r.met.ActiveConns.Add(1)
		r.readersWG.Add(1)
		go r.serveConn(c)
	}
}

// Shutdown drains the router: stop accepting, pop readers out of their
// blocking reads, CLOSE-drain every live upstream session, and close
// the backend pools. Idempotent; ctx bounds the wait.
func (r *Router) Shutdown(ctx context.Context) error {
	if !r.draining.CompareAndSwap(false, true) {
		return nil
	}
	r.connMu.Lock()
	if r.lis != nil {
		r.lis.Close()
	}
	for c := range r.conns {
		c.SetReadDeadline(time.Now())
	}
	r.connMu.Unlock()
	if r.started.Load() {
		close(r.stop)
	}

	done := make(chan struct{})
	go func() {
		r.readersWG.Wait()
		r.healthWG.Wait()
		for _, b := range r.backends {
			b.close()
		}
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Force the stragglers: closing the sockets pops any relay I/O.
		r.connMu.Lock()
		for c := range r.conns {
			c.Close()
		}
		r.connMu.Unlock()
		return ctx.Err()
	}
}

// healthLoop probes one backend until Shutdown.
func (r *Router) healthLoop(b *backend) {
	defer r.healthWG.Done()
	tick := time.NewTicker(r.opts.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
		}
		err := b.probe(healthProbeName, r.opts.DialTimeout, r.opts.IOTimeout)
		if b.observeProbe(err, r.opts.FailAfter) {
			if err != nil {
				r.logf("cluster: backend %s down (%v); its pools are UNAVAILABLE until it returns", b.addr, err)
			} else {
				r.logf("cluster: backend %s back up", b.addr)
			}
		}
	}
}

// lease gets an upstream conn to b, retrying transient dial failures
// with doubling backoff. A saturated pool is not retried — the caller
// turns errBackendSaturated into RETRY so the client backs off instead
// of the router queueing.
func (r *Router) lease(b *backend) (*upstream, error) {
	backoff := r.opts.DialBackoff
	for attempt := 0; ; attempt++ {
		u, err := b.lease(r.opts.DialTimeout, r.opts.MaxConnsPerBackend)
		if err == nil || errors.Is(err, errBackendSaturated) || attempt >= r.opts.DialRetries {
			return u, err
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// recycle returns a session-holding upstream to its pool by CLOSEing
// the session first (on an ID above every relayed one, so the response
// is unambiguous). A conn that cannot be drained is discarded — reuse
// must never leak one session's state into the next lease.
func (r *Router) recycle(u *upstream, b *backend, maxID uint32) {
	closeID := maxID + 1
	if closeID == 0 {
		closeID = 1
	}
	if r.opts.IOTimeout > 0 {
		u.c.SetDeadline(time.Now().Add(r.opts.IOTimeout))
	}
	frame := serve.EncodeRequest(&serve.Request{Op: serve.OpClose, ID: closeID})
	ok := false
	if serve.WriteFrame(u.bw, frame) == nil && u.bw.Flush() == nil {
		if resp, err := serve.ReadFrame(u.br, nil); err == nil &&
			len(resp) >= 5 &&
			serve.Status(resp[0]) == serve.StatusOK &&
			binary.BigEndian.Uint32(resp[1:5]) == closeID {
			ok = true
		}
	}
	u.c.SetDeadline(time.Time{})
	if !ok {
		r.met.DrainFail.Add(1)
		b.discard(u)
		return
	}
	r.met.DrainOK.Add(1)
	b.put(u, r.opts.MaxIdlePerBackend)
}

// proxyConn is the per-downstream-connection state machine. The relay
// is serial — one request (or batch) frame in, one response frame out —
// which the protocol guarantees is lossless: every request frame,
// including a BATCH container, produces exactly one response frame.
type proxyConn struct {
	r  *Router
	c  net.Conn
	br *bufio.Reader
	bw *bufio.Writer

	name    string // client identity from HELLO ("" = not helloed)
	proto   uint8
	maxID   uint32 // highest request ID relayed; recycle CLOSEs above it
	rbuf    []byte // downstream frame buffer
	ubuf    []byte // upstream response buffer
	scratch []byte // local response encode buffer

	u *upstream // nil when no session is routed
	b *backend
}

func (r *Router) serveConn(c net.Conn) {
	defer r.readersWG.Done()
	p := &proxyConn{r: r, c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
	p.run()
	if p.u != nil {
		r.met.ActiveSessions.Add(-1)
		r.recycle(p.u, p.b, p.maxID)
		p.u = nil
	}
	c.Close()
	r.connMu.Lock()
	delete(r.conns, c)
	r.connMu.Unlock()
	r.met.ActiveConns.Add(-1)
}

// run processes frames until the client disconnects, a downstream write
// fails, or the router drains.
func (p *proxyConn) run() {
	for {
		payload, err := serve.ReadFrame(p.br, p.rbuf)
		if err != nil {
			if serve.FrameTooLarge(err) {
				// Best-effort typed answer before dropping; the stream
				// cannot be resynchronized past an oversized frame.
				p.respondErr(0, serve.ErrTooLarge, err.Error())
			}
			return
		}
		p.rbuf = payload[:cap(payload)]
		if p.r.draining.Load() {
			return
		}
		if len(payload) < 5 {
			p.respondErr(0, serve.ErrBadFrame, "cluster: short request payload")
			return
		}
		op := serve.Op(payload[0])
		id := binary.BigEndian.Uint32(payload[1:5])
		if id > p.maxID {
			p.maxID = id
		}
		var ok bool
		if p.u == nil {
			ok = p.dispatchLocal(op, id, payload)
		} else {
			ok = p.dispatchRelay(op, id, payload)
		}
		if !ok {
			return
		}
	}
}

// dispatchLocal handles a frame with no routed session. Reports whether
// the connection should keep going.
func (p *proxyConn) dispatchLocal(op serve.Op, id uint32, payload []byte) bool {
	switch op {
	case serve.OpHello:
		req, werr := serve.ParseRequest(payload)
		if werr != nil {
			return p.respondWireErr(id, werr)
		}
		p.name = req.Client
		p.proto = serve.ProtoV1
		if req.Proto != 0 {
			p.proto = req.Proto
			if p.proto > serve.MaxProto {
				p.proto = serve.MaxProto
			}
		}
		p.r.met.Hellos.Add(1)
		if req.Proto == 0 {
			return p.respond(&serve.Response{Status: serve.StatusOK, ID: id})
		}
		return p.respond(&serve.Response{Status: serve.StatusOK, ID: id, Data: []byte{p.proto}})
	case serve.OpOpen:
		if p.name == "" {
			return p.respondErr(id, serve.ErrNoHello, "serve: HELLO required before open")
		}
		req, werr := serve.ParseRequest(payload)
		if werr != nil {
			return p.respondWireErr(id, werr)
		}
		return p.openSession(req.Name, id, payload)
	case serve.OpStats:
		var buf statsBuf
		p.r.met.writePrometheus(&buf, p.r.backends)
		return p.respond(&serve.Response{Status: serve.StatusOK, ID: id, Data: buf.b})
	case serve.OpTrace:
		return p.respondErr(id, serve.ErrDisabled, "cluster: router keeps no spans; TRACE a backend through a session")
	case serve.OpBatch:
		p.r.met.LocalErrs.Add(1)
		return p.respondErr(id, serve.ErrNoSession, "serve: OPEN required before batch")
	default:
		p.r.met.LocalErrs.Add(1)
		if p.name == "" {
			return p.respondErr(id, serve.ErrNoHello, fmt.Sprintf("serve: HELLO required before %s", op))
		}
		return p.respondErr(id, serve.ErrNoSession, fmt.Sprintf("serve: OPEN required before %s", op))
	}
}

// openSession routes pool to its rendezvous owner and establishes the
// upstream session by replaying the client's identity and the original
// OPEN frame. No failover: a down owner is a typed UNAVAILABLE, because
// any other backend would serve an empty pool in its place — silent
// data loss dressed up as liveness.
func (p *proxyConn) openSession(pool string, id uint32, payload []byte) bool {
	r := p.r
	b := r.backends[PickIndex(pool, r.addrs)]
	if !b.healthy.Load() {
		r.met.Unavailable.Add(1)
		return p.respondErr(id, serve.ErrUnavailable,
			fmt.Sprintf("cluster: backend %s owns pool %q but is down; retry after it recovers", b.addr, pool))
	}
	u, err := r.lease(b)
	if errors.Is(err, errBackendSaturated) {
		r.met.Retries.Add(1)
		return p.respond(&serve.Response{Status: serve.StatusRetry, ID: id})
	}
	if err == nil {
		err = u.hello(p.name, r.opts.IOTimeout)
		if err != nil {
			b.discard(u)
		}
	}
	if err != nil {
		r.met.Unavailable.Add(1)
		return p.respondErr(id, serve.ErrUnavailable,
			fmt.Sprintf("cluster: backend %s unreachable for pool %q: %v", b.addr, pool, err))
	}
	resp, err := p.relay(u, payload)
	if err != nil {
		b.relayFail.Add(1)
		b.discard(u)
		r.met.Unavailable.Add(1)
		return p.respondErr(id, serve.ErrUnavailable,
			fmt.Sprintf("cluster: backend %s failed during OPEN of pool %q: %v", b.addr, pool, err))
	}
	if serve.Status(resp[0]) == serve.StatusOK {
		p.u, p.b = u, b
		b.opens.Add(1)
		r.met.Sessions.Add(1)
		r.met.ActiveSessions.Add(1)
	} else {
		// OPEN denied (wrong owner name, draining backend, ...): the
		// upstream conn is still session-free, so pool it.
		b.put(u, r.opts.MaxIdlePerBackend)
	}
	return p.writeFrame(resp)
}

// dispatchRelay handles a frame while a session is routed.
func (p *proxyConn) dispatchRelay(op serve.Op, id uint32, payload []byte) bool {
	switch op {
	case serve.OpHello:
		// Terminated locally even mid-session (the backend would say the
		// same thing): identity changes require CLOSE first.
		p.r.met.LocalErrs.Add(1)
		return p.respondErr(id, serve.ErrExists, "serve: HELLO while holding a session (CLOSE first)")
	case serve.OpOpen:
		p.r.met.LocalErrs.Add(1)
		return p.respondErr(id, serve.ErrExists, "serve: connection already holds a session")
	case serve.OpBatch:
		if batchHasSessionOp(payload) {
			p.r.met.LocalErrs.Add(1)
			return p.respondErr(id, serve.ErrBadFrame,
				"cluster: OPEN/CLOSE inside a batch cannot be routed; send them as scalar frames")
		}
		p.r.met.RelayedBatches.Add(1)
	}
	resp, err := p.relay(p.u, payload)
	if err != nil {
		// The backend died mid-session. The session is gone with it;
		// answer typed UNAVAILABLE and fall back to the pre-session
		// state so the client can re-OPEN (routing will re-pick, and
		// rendezvous sends it back to the same — now restarted — owner).
		p.b.relayFail.Add(1)
		p.b.discard(p.u)
		p.r.met.ActiveSessions.Add(-1)
		p.r.met.Unavailable.Add(1)
		addr := p.b.addr
		p.u, p.b = nil, nil
		return p.respondErr(id, serve.ErrUnavailable,
			fmt.Sprintf("cluster: backend %s failed mid-session: %v", addr, err))
	}
	if op == serve.OpClose && serve.Status(resp[0]) == serve.StatusOK {
		// Session ended by the client; the upstream conn is session-free
		// and reusable immediately. Identity survives (as on the server),
		// so the next OPEN re-routes by pool name.
		p.b.put(p.u, p.r.opts.MaxIdlePerBackend)
		p.r.met.ActiveSessions.Add(-1)
		p.u, p.b = nil, nil
	}
	return p.writeFrame(resp)
}

// relay forwards one frame upstream and reads its one response frame,
// under the router's I/O timeout.
func (p *proxyConn) relay(u *upstream, payload []byte) ([]byte, error) {
	p.r.met.Relayed.Add(1)
	if p.r.opts.IOTimeout > 0 {
		u.c.SetDeadline(time.Now().Add(p.r.opts.IOTimeout))
		defer u.c.SetDeadline(time.Time{})
	}
	if err := serve.WriteFrame(u.bw, payload); err != nil {
		return nil, err
	}
	if err := u.bw.Flush(); err != nil {
		return nil, err
	}
	resp, err := serve.ReadFrame(u.br, p.ubuf)
	if err != nil {
		return nil, err
	}
	p.ubuf = resp[:cap(resp)]
	if len(resp) < 5 {
		return nil, errors.New("cluster: short response frame from backend")
	}
	return resp, nil
}

// writeFrame sends one response frame downstream; false ends the conn.
func (p *proxyConn) writeFrame(payload []byte) bool {
	if err := serve.WriteFrame(p.bw, payload); err != nil {
		return false
	}
	return p.bw.Flush() == nil
}

func (p *proxyConn) respond(resp *serve.Response) bool {
	p.scratch = serve.AppendResponse(p.scratch[:0], resp)
	return p.writeFrame(p.scratch)
}

func (p *proxyConn) respondErr(id uint32, code serve.ErrCode, msg string) bool {
	return p.respond(&serve.Response{Status: serve.StatusErr, ID: id, Code: code, Msg: msg})
}

func (p *proxyConn) respondWireErr(id uint32, werr *serve.WireError) bool {
	p.r.met.LocalErrs.Add(1)
	return p.respondErr(id, werr.Code, werr.Msg)
}

// batchHasSessionOp scans a BATCH payload for entries that would change
// which backend owns the connection (OPEN, CLOSE) or renegotiate the
// protocol (HELLO). Malformed containers report false — the backend's
// parser is the authority on rejecting those.
func batchHasSessionOp(payload []byte) bool {
	if len(payload) < 7 {
		return false
	}
	count := int(binary.BigEndian.Uint16(payload[5:7]))
	off := 7
	for i := 0; i < count; i++ {
		if off+4 > len(payload) {
			return false
		}
		n := int(binary.BigEndian.Uint32(payload[off:]))
		off += 4
		if n < 1 || off+n > len(payload) {
			return false
		}
		switch serve.Op(payload[off]) {
		case serve.OpHello, serve.OpOpen, serve.OpClose:
			return true
		}
		off += n
	}
	return false
}

// IsUnavailable reports whether err is the cluster tier's typed
// owner-backend-down error (the one pmoload's -tolerate-unavailable
// accepts while a node is being restarted).
func IsUnavailable(err error) bool {
	var se *serve.ServerError
	return errors.As(err, &se) && se.Code == serve.ErrUnavailable
}

// statsBuf is a minimal append-only io.Writer for rendering metrics.
type statsBuf struct{ b []byte }

func (s *statsBuf) Write(p []byte) (int, error) {
	s.b = append(s.b, p...)
	return len(p), nil
}
