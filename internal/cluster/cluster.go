// Package cluster is the horizontal-scale tier above internal/serve:
// a consistent-hashing router (cmd/pmorouter) that spreads sessions
// across N pmod backends, so session counts stop being bounded by one
// process — the same move the paper makes for protection keys
// (virtualize a scarce resource behind a software layer), applied to
// daemon instances.
//
// Placement uses rendezvous (highest-random-weight) hashing keyed on
// the session's pool name: every router ranks every backend for a key
// by a deterministic 64-bit score and picks the highest. Rendezvous
// hashing gives the two properties the session tier needs with no ring
// state at all: placement is byte-deterministic across runs and across
// router replicas, and membership changes move the minimum — adding a
// node steals only the keys it now wins (expected K/N), and removing
// one relocates only the keys it owned.
//
// Failure semantics are deliberately conservative: each pmod owns its
// backends' durable pools, so the router never fails a key over to a
// different node (that would silently present an empty pool — data
// loss by another name). A down backend makes its keys unavailable as
// a typed UNAVAILABLE error until it returns; transient dial failures
// are retried with backoff; router backpressure answers RETRY.
package cluster

// fnv-1a 64 with an avalanche finalizer. Plain FNV has weak low-bit
// diffusion for short keys; the splitmix64-style finalizer spreads it
// so rendezvous comparisons are unbiased.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashNodeKey scores one (node, key) pair. A separator byte between
// the two strings keeps ("ab","c") and ("a","bc") distinct.
func hashNodeKey(node, key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < len(node); i++ {
		h = (h ^ uint64(node[i])) * fnvPrime
	}
	h = (h ^ 0xff) * fnvPrime
	for i := 0; i < len(key); i++ {
		h = (h ^ uint64(key[i])) * fnvPrime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// PickIndex returns the index of the node owning key under rendezvous
// hashing, or -1 for an empty node list. It never allocates. Ties
// (astronomically unlikely with 64-bit scores) break toward the lower
// index so the choice is still deterministic.
func PickIndex(key string, nodes []string) int {
	best, bestScore := -1, uint64(0)
	for i, n := range nodes {
		s := hashNodeKey(n, key)
		if best == -1 || s > bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// Pick returns the node owning key, or "" for an empty node list.
func Pick(key string, nodes []string) string {
	i := PickIndex(key, nodes)
	if i < 0 {
		return ""
	}
	return nodes[i]
}
