package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
)

// RouterMetrics is the router's live counter state, rendered in
// Prometheus text format and served to clients over the wire protocol's
// STATS op (a pre-session STATS hits the router; an in-session STATS
// relays through to the owning backend).
type RouterMetrics struct {
	Conns          atomic.Uint64 // downstream connections accepted
	ActiveConns    atomic.Int64
	Hellos         atomic.Uint64 // HELLOs terminated at the router
	Sessions       atomic.Uint64 // sessions routed (upstream OPEN succeeded)
	ActiveSessions atomic.Int64
	Relayed        atomic.Uint64 // frames relayed to a backend
	RelayedBatches atomic.Uint64 // of which BATCH containers
	Unavailable    atomic.Uint64 // typed UNAVAILABLE answers (owner down)
	Retries        atomic.Uint64 // RETRY answers (backend conn cap)
	LocalErrs      atomic.Uint64 // other typed errors answered locally
	DrainOK        atomic.Uint64 // upstream conns recycled via CLOSE-drain
	DrainFail      atomic.Uint64 // upstream conns discarded at teardown
}

// writePrometheus renders the router snapshot plus per-backend series.
func (m *RouterMetrics) writePrometheus(w io.Writer, backends []*backend) error {
	fmt.Fprintf(w, "# HELP pmorouter_conns_total Downstream connections accepted.\n# TYPE pmorouter_conns_total counter\n")
	fmt.Fprintf(w, "pmorouter_conns_total %d\n", m.Conns.Load())
	fmt.Fprintf(w, "# HELP pmorouter_conns_active Live downstream connections.\n# TYPE pmorouter_conns_active gauge\n")
	fmt.Fprintf(w, "pmorouter_conns_active %d\n", m.ActiveConns.Load())
	fmt.Fprintf(w, "# HELP pmorouter_hellos_total HELLO handshakes terminated at the router.\n# TYPE pmorouter_hellos_total counter\n")
	fmt.Fprintf(w, "pmorouter_hellos_total %d\n", m.Hellos.Load())
	fmt.Fprintf(w, "# HELP pmorouter_sessions_total Sessions routed to a backend.\n# TYPE pmorouter_sessions_total counter\n")
	fmt.Fprintf(w, "pmorouter_sessions_total %d\n", m.Sessions.Load())
	fmt.Fprintf(w, "# HELP pmorouter_sessions_active Live routed sessions.\n# TYPE pmorouter_sessions_active gauge\n")
	fmt.Fprintf(w, "pmorouter_sessions_active %d\n", m.ActiveSessions.Load())
	fmt.Fprintf(w, "# HELP pmorouter_relayed_total Frames relayed to backends.\n# TYPE pmorouter_relayed_total counter\n")
	fmt.Fprintf(w, "pmorouter_relayed_total{kind=\"scalar\"} %d\n", m.Relayed.Load()-m.RelayedBatches.Load())
	fmt.Fprintf(w, "pmorouter_relayed_total{kind=\"batch\"} %d\n", m.RelayedBatches.Load())
	fmt.Fprintf(w, "# HELP pmorouter_local_answers_total Requests answered by the router itself, by kind.\n# TYPE pmorouter_local_answers_total counter\n")
	fmt.Fprintf(w, "pmorouter_local_answers_total{kind=\"unavailable\"} %d\n", m.Unavailable.Load())
	fmt.Fprintf(w, "pmorouter_local_answers_total{kind=\"retry\"} %d\n", m.Retries.Load())
	fmt.Fprintf(w, "pmorouter_local_answers_total{kind=\"error\"} %d\n", m.LocalErrs.Load())
	fmt.Fprintf(w, "# HELP pmorouter_upstream_recycle_total Upstream conns recycled (drained) vs discarded at session teardown.\n# TYPE pmorouter_upstream_recycle_total counter\n")
	fmt.Fprintf(w, "pmorouter_upstream_recycle_total{outcome=\"drained\"} %d\n", m.DrainOK.Load())
	fmt.Fprintf(w, "pmorouter_upstream_recycle_total{outcome=\"discarded\"} %d\n", m.DrainFail.Load())

	fmt.Fprintf(w, "# HELP pmorouter_backend_healthy Backend health as seen by the probe loop.\n# TYPE pmorouter_backend_healthy gauge\n")
	for _, b := range backends {
		v := 0
		if b.healthy.Load() {
			v = 1
		}
		fmt.Fprintf(w, "pmorouter_backend_healthy{backend=%q} %d\n", b.addr, v)
	}
	fmt.Fprintf(w, "# HELP pmorouter_backend_events_total Per-backend lifecycle counters.\n# TYPE pmorouter_backend_events_total counter\n")
	for _, b := range backends {
		fmt.Fprintf(w, "pmorouter_backend_events_total{backend=%q,event=\"open\"} %d\n", b.addr, b.opens.Load())
		fmt.Fprintf(w, "pmorouter_backend_events_total{backend=%q,event=\"reuse\"} %d\n", b.addr, b.reuses.Load())
		fmt.Fprintf(w, "pmorouter_backend_events_total{backend=%q,event=\"dial\"} %d\n", b.addr, b.dials.Load())
		fmt.Fprintf(w, "pmorouter_backend_events_total{backend=%q,event=\"dial_error\"} %d\n", b.addr, b.dialErrs.Load())
		fmt.Fprintf(w, "pmorouter_backend_events_total{backend=%q,event=\"relay_error\"} %d\n", b.addr, b.relayFail.Load())
		fmt.Fprintf(w, "pmorouter_backend_events_total{backend=%q,event=\"health_flip\"} %d\n", b.addr, b.transitons.Load())
	}
	fmt.Fprintf(w, "# HELP pmorouter_backend_conns Per-backend connection pool state.\n# TYPE pmorouter_backend_conns gauge\n")
	for _, b := range backends {
		idle, inflight := b.poolSizes()
		fmt.Fprintf(w, "pmorouter_backend_conns{backend=%q,state=\"idle\"} %d\n", b.addr, idle)
		fmt.Fprintf(w, "pmorouter_backend_conns{backend=%q,state=\"leased\"} %d\n", b.addr, inflight)
	}
	return nil
}
