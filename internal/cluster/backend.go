package cluster

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"domainvirt/internal/serve"
)

// upstream is one router→backend connection. The router leases it to
// exactly one client session at a time; between sessions it parks in
// the backend's idle pool with no server-side session attached (the
// router CLOSEs the session before returning it), so the next lease
// only needs a fresh HELLO.
type upstream struct {
	c      net.Conn
	br     *bufio.Reader
	bw     *bufio.Writer
	nextID uint32 // router-issued control-request IDs
}

func newUpstream(c net.Conn) *upstream {
	return &upstream{c: c, br: bufio.NewReader(c), bw: bufio.NewWriter(c)}
}

// roundTrip runs one router-originated control request (HELLO, CLOSE)
// on the upstream under deadline.
func (u *upstream) roundTrip(req *serve.Request, deadline time.Duration) (*serve.Response, error) {
	u.nextID++
	req.ID = u.nextID
	if deadline > 0 {
		u.c.SetDeadline(time.Now().Add(deadline))
		defer u.c.SetDeadline(time.Time{})
	}
	if err := serve.WriteFrame(u.bw, serve.EncodeRequest(req)); err != nil {
		return nil, err
	}
	if err := u.bw.Flush(); err != nil {
		return nil, err
	}
	payload, err := serve.ReadFrame(u.br, nil)
	if err != nil {
		return nil, err
	}
	resp, werr := serve.ParseResponse(payload, req.Op == serve.OpOpen)
	if werr != nil {
		return nil, werr
	}
	if resp.ID != req.ID {
		return nil, fmt.Errorf("cluster: upstream response id %d for control request %d", resp.ID, req.ID)
	}
	return resp, nil
}

// hello asserts the proxied client's identity on the upstream and
// negotiates v2 (so client batches relay through).
func (u *upstream) hello(client string, deadline time.Duration) error {
	resp, err := u.roundTrip(&serve.Request{Op: serve.OpHello, Client: client, Proto: serve.MaxProto}, deadline)
	if err != nil {
		return err
	}
	if resp.Status != serve.StatusOK {
		return fmt.Errorf("cluster: upstream HELLO status %d", resp.Status)
	}
	return nil
}

// backend is one pmod node: its address, health, and connection pool.
type backend struct {
	addr string

	healthy atomic.Bool
	fails   int // consecutive probe failures; health loop only

	mu       sync.Mutex
	idle     []*upstream
	inflight int
	closed   bool

	// counters surfaced in the router metrics
	opens      atomic.Uint64 // sessions routed here
	reuses     atomic.Uint64 // leases served from the idle pool
	dials      atomic.Uint64
	dialErrs   atomic.Uint64
	relayFail  atomic.Uint64 // relays that ended on an upstream error
	transitons atomic.Uint64 // health up/down flips
}

// errBackendSaturated marks a lease denied by the per-backend
// connection cap; the router answers RETRY.
var errBackendSaturated = errors.New("cluster: backend connection cap reached")

// lease returns a pooled or freshly dialed upstream. The caller owns it
// until put, discard, or close.
func (b *backend) lease(dialTimeout time.Duration, maxConns int) (*upstream, error) {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, errors.New("cluster: backend closed")
	}
	if n := len(b.idle); n > 0 {
		u := b.idle[n-1]
		b.idle = b.idle[:n-1]
		b.inflight++
		b.mu.Unlock()
		b.reuses.Add(1)
		return u, nil
	}
	if maxConns > 0 && b.inflight >= maxConns {
		b.mu.Unlock()
		return nil, errBackendSaturated
	}
	b.inflight++
	b.mu.Unlock()

	b.dials.Add(1)
	c, err := net.DialTimeout("tcp", b.addr, dialTimeout)
	if err != nil {
		b.dialErrs.Add(1)
		b.mu.Lock()
		b.inflight--
		b.mu.Unlock()
		return nil, err
	}
	return newUpstream(c), nil
}

// put returns a drained, session-free upstream to the idle pool (or
// closes it past the idle cap).
func (b *backend) put(u *upstream, maxIdle int) {
	b.mu.Lock()
	b.inflight--
	if !b.closed && len(b.idle) < maxIdle {
		b.idle = append(b.idle, u)
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	u.c.Close()
}

// discard closes a leased upstream that is not safe to reuse.
func (b *backend) discard(u *upstream) {
	b.mu.Lock()
	b.inflight--
	b.mu.Unlock()
	u.c.Close()
}

// close shuts the pool; idle conns are closed, leased ones die on
// discard.
func (b *backend) close() {
	b.mu.Lock()
	b.closed = true
	idle := b.idle
	b.idle = nil
	b.mu.Unlock()
	for _, u := range idle {
		u.c.Close()
	}
}

func (b *backend) poolSizes() (idle, inflight int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.idle), b.inflight
}

// probe runs one health check: a fresh dial plus HELLO. A pooled conn
// would only prove the pool works; a fresh dial is the signal a new
// session's OPEN actually needs.
func (b *backend) probe(name string, dialTimeout, ioTimeout time.Duration) error {
	c, err := net.DialTimeout("tcp", b.addr, dialTimeout)
	if err != nil {
		return err
	}
	defer c.Close()
	u := newUpstream(c)
	return u.hello(name, ioTimeout)
}

// observeProbe folds one probe result into the health state and
// reports whether the state flipped.
func (b *backend) observeProbe(err error, failAfter int) (flipped bool) {
	if err == nil {
		b.fails = 0
		if !b.healthy.Swap(true) {
			b.transitons.Add(1)
			return true
		}
		return false
	}
	b.fails++
	if b.fails >= failAfter && b.healthy.Swap(false) {
		b.transitons.Add(1)
		return true
	}
	return false
}
