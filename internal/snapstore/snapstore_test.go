package snapstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if s.Has("k") {
		t.Error("empty store claims key")
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrMiss) {
		t.Errorf("empty store Get: %v, want ErrMiss", err)
	}
	data := []byte("snapshot bytes")
	if err := s.Put("k", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Errorf("Get returned %q, want %q", got, data)
	}
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 1 || keys[0] != "k" {
		t.Errorf("Keys = %v, want [k]", keys)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if s.Has("k") {
		t.Error("deleted key still present")
	}
	if err := s.Delete("k"); err != nil {
		t.Error("double delete:", err)
	}
}

func TestStoreOpenCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "snapshots")
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

// TestStoreLeavesNoTempFiles: the temp file of every completed Put must
// be gone (renamed), so a shared directory never accumulates debris that
// a Keys() listing or a disk-quota check would trip over.
func TestStoreLeavesNoTempFiles(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put("k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Errorf("store dir holds %v, want exactly one snapshot file", names)
	}
}

// TestStoreConcurrentWriters races many writers (same key and distinct
// keys) against readers on one directory — the multi-process sharing
// model of a distributed sweep, compressed into goroutines. Readers must
// only ever observe a complete value, never a torn prefix or a mix.
func TestStoreConcurrentWriters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// Each writer writes a self-describing value: byte i repeated. Any
	// torn read mixes values or truncates, and fails validation.
	value := func(i int) []byte {
		return bytes.Repeat([]byte{byte(i)}, 4096)
	}
	const writers = 8
	const rounds = 20
	var wg sync.WaitGroup
	errs := make(chan error, writers*2)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := s.Put("shared", value(w)); err != nil {
					errs <- err
					return
				}
				if err := s.Put(fmt.Sprintf("own-%d", w), value(w)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				data, err := s.Get("shared")
				if errors.Is(err, ErrMiss) {
					continue // not yet written
				}
				if err != nil {
					errs <- err
					return
				}
				if len(data) != 4096 {
					errs <- fmt.Errorf("torn read: %d bytes", len(data))
					return
				}
				for _, b := range data {
					if b != data[0] {
						errs <- fmt.Errorf("mixed read: %d and %d", data[0], b)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every private key must hold its writer's complete value.
	for w := 0; w < writers; w++ {
		data, err := s.Get(fmt.Sprintf("own-%d", w))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, value(w)) {
			t.Errorf("own-%d corrupted", w)
		}
	}
}
