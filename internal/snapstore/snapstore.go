// Package snapstore is a content-addressed on-disk cache of encoded
// machine snapshots. Keys name warmup (or checkpoint) identities — the
// caller derives them by hashing the workload/params/scheme/structural
// configuration — and values are the versioned, checksummed buffers of
// sim.EncodeSnapshot.
//
// The store is safe for concurrent use by processes sharing one
// directory: writes go through a same-directory temp file and an atomic
// rename, so a reader sees either no file or a complete one, never a
// torn write. Two writers racing on one key both write complete files
// and the last rename wins — harmless, because a key is derived from
// the full warmup identity and the codec is deterministic, so rival
// writers carry identical bytes. Corruption (a partial copy, bit rot, a
// file from a different codec version) is the decoder's job to reject;
// the store only moves bytes.
package snapstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// ErrMiss reports a key with no stored snapshot.
var ErrMiss = errors.New("snapstore: miss")

// ext is the snapshot file suffix.
const ext = ".pmosnap"

// Store is one snapshot directory.
type Store struct {
	dir string
}

// Open returns a Store over dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the file path a key maps to.
func (s *Store) Path(key string) string {
	return filepath.Join(s.dir, key+ext)
}

// Has reports whether a snapshot file exists for key.
func (s *Store) Has(key string) bool {
	_, err := os.Stat(s.Path(key))
	return err == nil
}

// Get returns the stored bytes for key, or ErrMiss.
func (s *Store) Get(key string) ([]byte, error) {
	data, err := os.ReadFile(s.Path(key))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrMiss, key)
		}
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	return data, nil
}

// Put stores data under key atomically: a reader of Path(key) — in this
// process or another sharing the directory — sees the previous contents
// or the new contents, never a prefix.
func (s *Store) Put(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, key+".tmp*")
	if err != nil {
		return fmt.Errorf("snapstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("snapstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("snapstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.Path(key)); err != nil {
		return fmt.Errorf("snapstore: %w", err)
	}
	return nil
}

// Delete removes the snapshot for key (a decode-rejected file is dead
// weight until its writer is fixed; callers drop it before rebuilding).
// Missing files are not an error.
func (s *Store) Delete(key string) error {
	if err := os.Remove(s.Path(key)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("snapstore: %w", err)
	}
	return nil
}

// Keys lists the stored snapshot keys in directory order.
func (s *Store) Keys() ([]string, error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapstore: %w", err)
	}
	var keys []string
	for _, e := range ents {
		if name, ok := strings.CutSuffix(e.Name(), ext); ok && !e.IsDir() {
			keys = append(keys, name)
		}
	}
	return keys, nil
}
