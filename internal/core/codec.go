package core

import (
	"fmt"
	"sort"

	"domainvirt/internal/bincodec"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/mpk"
)

// Engine-state type tags for the binary snapshot codec. Every snapshot
// returned by a Snapshotter is one of five concrete state structs; the
// tag selects the decoder.
const (
	tagBaseState uint8 = iota + 1
	tagMPKState
	tagLibmpkState
	tagMPKVirtState
	tagDomVirtState
)

// ErrEngineState marks an engine-state payload the codec cannot decode.
var ErrEngineState = fmt.Errorf("core: unknown engine state")

// AppendTo appends the deterministic binary form of the table: the
// attached (domain, region) pairs in ascending domain order. The radix
// structure is not serialized — Insert rebuilds it canonically.
func (t *DomainTable) AppendTo(b []byte) []byte {
	doms := make([]DomainID, 0, len(t.regions))
	for d := range t.regions {
		doms = append(doms, d)
	}
	sort.Slice(doms, func(i, j int) bool { return doms[i] < doms[j] })
	b = bincodec.U32(b, uint32(len(doms)))
	for _, d := range doms {
		r := t.regions[d]
		b = bincodec.U32(b, uint32(d))
		b = bincodec.U64(b, uint64(r.Base))
		b = bincodec.U64(b, r.Size)
	}
	return b
}

// DecodeDomainTable reads a DomainTable written by AppendTo, rebuilding
// the radix tree through Insert so decoded tables are structurally
// canonical.
func DecodeDomainTable(r *bincodec.Reader) (*DomainTable, error) {
	n := r.Count(4 + 8 + 8)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	t := NewDomainTable()
	for i := 0; i < n; i++ {
		d := DomainID(r.U32())
		reg := memlayout.Region{Base: memlayout.VA(r.U64()), Size: r.U64()}
		if r.Err() != nil {
			break
		}
		if err := t.Insert(d, reg); err != nil {
			return nil, fmt.Errorf("core: decode domain table: %w", err)
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return t, nil
}

func appendPLRU(b []byte, s PLRUState) []byte {
	b = bincodec.U64(b, s.Bits)
	b = bincodec.U32(b, uint32(len(s.Big)))
	for _, v := range s.Big {
		b = bincodec.Bool(b, v)
	}
	return b
}

func decodePLRU(r *bincodec.Reader) PLRUState {
	s := PLRUState{Bits: r.U64()}
	if n := r.Count(1); n > 0 {
		s.Big = make([]bool, n)
		for i := range s.Big {
			s.Big[i] = r.Bool()
		}
	}
	return s
}

func sortedDomains[V any](m map[DomainID]V) []DomainID {
	ks := make([]DomainID, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func sortedThreads[V any](m map[ThreadID]V) []ThreadID {
	ks := make([]ThreadID, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func appendDomainKeyMap(b []byte, m map[DomainID]uint8) []byte {
	ks := sortedDomains(m)
	b = bincodec.U32(b, uint32(len(ks)))
	for _, k := range ks {
		b = bincodec.U32(b, uint32(k))
		b = bincodec.U8(b, m[k])
	}
	return b
}

func decodeDomainKeyMap(r *bincodec.Reader) map[DomainID]uint8 {
	n := r.Count(5)
	m := make(map[DomainID]uint8, n)
	for i := 0; i < n; i++ {
		d := DomainID(r.U32())
		m[d] = r.U8()
	}
	return m
}

func appendPKRUMap(b []byte, m map[ThreadID]mpk.PKRU) []byte {
	ks := sortedThreads(m)
	b = bincodec.U32(b, uint32(len(ks)))
	for _, k := range ks {
		b = bincodec.U32(b, uint32(k))
		b = bincodec.U32(b, uint32(m[k]))
	}
	return b
}

func decodePKRUMap(r *bincodec.Reader) map[ThreadID]mpk.PKRU {
	n := r.Count(8)
	m := make(map[ThreadID]mpk.PKRU, n)
	for i := 0; i < n; i++ {
		th := ThreadID(r.U32())
		m[th] = mpk.PKRU(r.U32())
	}
	return m
}

func appendPermMap(b []byte, m map[ThreadID]Perm) []byte {
	ks := sortedThreads(m)
	b = bincodec.U32(b, uint32(len(ks)))
	for _, k := range ks {
		b = bincodec.U32(b, uint32(k))
		b = bincodec.U8(b, uint8(m[k]))
	}
	return b
}

func decodePermMap(r *bincodec.Reader) map[ThreadID]Perm {
	n := r.Count(5)
	m := make(map[ThreadID]Perm, n)
	for i := 0; i < n; i++ {
		th := ThreadID(r.U32())
		m[th] = Perm(r.U8())
	}
	return m
}

func appendPKRUSlice(b []byte, s []mpk.PKRU) []byte {
	b = bincodec.U32(b, uint32(len(s)))
	for _, v := range s {
		b = bincodec.U32(b, uint32(v))
	}
	return b
}

func decodePKRUSlice(r *bincodec.Reader) []mpk.PKRU {
	n := r.Count(4)
	s := make([]mpk.PKRU, n)
	for i := range s {
		s[i] = mpk.PKRU(r.U32())
	}
	return s
}

func appendThreadSlice(b []byte, s []ThreadID) []byte {
	b = bincodec.U32(b, uint32(len(s)))
	for _, v := range s {
		b = bincodec.U32(b, uint32(v))
	}
	return b
}

func decodeThreadSlice(r *bincodec.Reader) []ThreadID {
	n := r.Count(4)
	s := make([]ThreadID, n)
	for i := range s {
		s[i] = ThreadID(r.U32())
	}
	return s
}

// AppendEngineState appends the deterministic binary form of an engine
// snapshot produced by Snapshotter.SnapshotState.
func AppendEngineState(b []byte, st any) ([]byte, error) {
	switch s := st.(type) {
	case *baseState:
		b = bincodec.U8(b, tagBaseState)
		b = s.table.AppendTo(b)
	case *mpkState:
		b = bincodec.U8(b, tagMPKState)
		b = bincodec.U16(b, s.alloc)
		b = appendDomainKeyMap(b, s.keyOf)
		b = appendPKRUSlice(b, s.pkruCore)
		b = appendPKRUMap(b, s.pkruSaved)
		b = appendThreadSlice(b, s.current)
		b = s.table.AppendTo(b)
	case *libmpkState:
		b = bincodec.U8(b, tagLibmpkState)
		b = appendDomainKeyMap(b, s.keyOf)
		for _, d := range s.ownerOf {
			b = bincodec.U32(b, uint32(d))
		}
		b = bincodec.U16(b, s.alloc)
		for _, v := range s.lruStamp {
			b = bincodec.U64(b, v)
		}
		b = bincodec.U64(b, s.clock)
		ths := sortedThreads(s.perms)
		b = bincodec.U32(b, uint32(len(ths)))
		for _, th := range ths {
			b = bincodec.U32(b, uint32(th))
			dm := s.perms[th]
			ds := sortedDomains(dm)
			b = bincodec.U32(b, uint32(len(ds)))
			for _, d := range ds {
				b = bincodec.U32(b, uint32(d))
				b = bincodec.U8(b, uint8(dm[d]))
			}
		}
		b = appendPKRUSlice(b, s.pkruCore)
		b = appendPKRUMap(b, s.pkruSaved)
		b = appendThreadSlice(b, s.current)
		b = s.table.AppendTo(b)
	case *mpkvirtState:
		b = bincodec.U8(b, tagMPKVirtState)
		ds := sortedDomains(s.entries)
		b = bincodec.U32(b, uint32(len(ds)))
		for _, d := range ds {
			ent := s.entries[d]
			b = bincodec.U32(b, uint32(d))
			b = bincodec.U64(b, uint64(ent.region.Base))
			b = bincodec.U64(b, ent.region.Size)
			b = bincodec.U8(b, ent.key)
			b = bincodec.Bool(b, ent.hasKey)
			b = appendPermMap(b, ent.perms)
		}
		for _, d := range s.ownerOf {
			b = bincodec.U32(b, uint32(d))
		}
		b = appendPLRU(b, s.keyPLRU)
		b = bincodec.U32(b, uint32(len(s.dttlbs)))
		for _, t := range s.dttlbs {
			b = bincodec.U32(b, uint32(len(t.slots)))
			for _, d := range t.slots {
				b = bincodec.U32(b, uint32(d))
			}
			for _, v := range t.dirty {
				b = bincodec.Bool(b, v)
			}
			b = appendPLRU(b, t.plru)
		}
		b = appendPKRUSlice(b, s.pkruCore)
		b = appendPKRUMap(b, s.pkruSaved)
		b = appendThreadSlice(b, s.current)
		b = s.table.AppendTo(b)
	case *domvirtState:
		b = bincodec.U8(b, tagDomVirtState)
		ds := sortedDomains(s.pt)
		b = bincodec.U32(b, uint32(len(ds)))
		for _, d := range ds {
			b = bincodec.U32(b, uint32(d))
			b = appendPermMap(b, s.pt[d])
		}
		b = bincodec.U32(b, uint32(len(s.ptlbs)))
		for _, t := range s.ptlbs {
			b = bincodec.U32(b, uint32(len(t.ents)))
			for _, e := range t.ents {
				b = bincodec.U32(b, uint32(e.domain))
				b = bincodec.U8(b, uint8(e.perm))
				b = bincodec.Bool(b, e.valid)
				b = bincodec.Bool(b, e.dirty)
			}
			b = appendPLRU(b, t.plru)
		}
		b = appendThreadSlice(b, s.current)
		b = s.table.AppendTo(b)
	default:
		return b, fmt.Errorf("%w: %T", ErrEngineState, st)
	}
	return b, nil
}

// DecodeEngineState reads an engine state written by AppendEngineState.
// The result satisfies the RestoreState contract of the engine type the
// tag names.
func DecodeEngineState(r *bincodec.Reader) (any, error) {
	tag := r.U8()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	var st any
	var err error
	switch tag {
	case tagBaseState:
		s := &baseState{}
		s.table, err = DecodeDomainTable(r)
		st = s
	case tagMPKState:
		s := &mpkState{}
		s.alloc = r.U16()
		s.keyOf = decodeDomainKeyMap(r)
		s.pkruCore = decodePKRUSlice(r)
		s.pkruSaved = decodePKRUMap(r)
		s.current = decodeThreadSlice(r)
		s.table, err = DecodeDomainTable(r)
		st = s
	case tagLibmpkState:
		s := &libmpkState{}
		s.keyOf = decodeDomainKeyMap(r)
		for i := range s.ownerOf {
			s.ownerOf[i] = DomainID(r.U32())
		}
		s.alloc = r.U16()
		for i := range s.lruStamp {
			s.lruStamp[i] = r.U64()
		}
		s.clock = r.U64()
		nth := r.Count(8)
		s.perms = make(map[ThreadID]map[DomainID]Perm, nth)
		for i := 0; i < nth; i++ {
			th := ThreadID(r.U32())
			nd := r.Count(5)
			dm := make(map[DomainID]Perm, nd)
			for j := 0; j < nd; j++ {
				d := DomainID(r.U32())
				dm[d] = Perm(r.U8())
			}
			s.perms[th] = dm
		}
		s.pkruCore = decodePKRUSlice(r)
		s.pkruSaved = decodePKRUMap(r)
		s.current = decodeThreadSlice(r)
		s.table, err = DecodeDomainTable(r)
		st = s
	case tagMPKVirtState:
		s := &mpkvirtState{}
		nd := r.Count(23)
		s.entries = make(map[DomainID]dttEntrySnap, nd)
		for i := 0; i < nd; i++ {
			d := DomainID(r.U32())
			ent := dttEntrySnap{
				region: memlayout.Region{Base: memlayout.VA(r.U64()), Size: r.U64()},
				key:    r.U8(),
				hasKey: r.Bool(),
				perms:  decodePermMap(r),
			}
			s.entries[d] = ent
		}
		for i := range s.ownerOf {
			s.ownerOf[i] = DomainID(r.U32())
		}
		s.keyPLRU = decodePLRU(r)
		ntlb := r.Count(12)
		s.dttlbs = make([]dttlbSnap, ntlb)
		for i := range s.dttlbs {
			nslots := r.Count(5)
			t := dttlbSnap{
				slots: make([]DomainID, nslots),
				dirty: make([]bool, nslots),
			}
			for j := range t.slots {
				t.slots[j] = DomainID(r.U32())
			}
			for j := range t.dirty {
				t.dirty[j] = r.Bool()
			}
			t.plru = decodePLRU(r)
			s.dttlbs[i] = t
		}
		s.pkruCore = decodePKRUSlice(r)
		s.pkruSaved = decodePKRUMap(r)
		s.current = decodeThreadSlice(r)
		s.table, err = DecodeDomainTable(r)
		st = s
	case tagDomVirtState:
		s := &domvirtState{}
		nd := r.Count(8)
		s.pt = make(map[DomainID]map[ThreadID]Perm, nd)
		for i := 0; i < nd; i++ {
			d := DomainID(r.U32())
			s.pt[d] = decodePermMap(r)
		}
		ntlb := r.Count(12)
		s.ptlbs = make([]ptlbSnap, ntlb)
		for i := range s.ptlbs {
			nents := r.Count(7)
			t := ptlbSnap{ents: make([]ptlbEntry, nents)}
			for j := range t.ents {
				e := &t.ents[j]
				e.domain = DomainID(r.U32())
				e.perm = Perm(r.U8())
				e.valid = r.Bool()
				e.dirty = r.Bool()
			}
			t.plru = decodePLRU(r)
			s.ptlbs[i] = t
		}
		s.current = decodeThreadSlice(r)
		s.table, err = DecodeDomainTable(r)
		st = s
	default:
		return nil, fmt.Errorf("%w: tag %d", ErrEngineState, tag)
	}
	if err != nil {
		return nil, err
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return st, nil
}
