package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"domainvirt/internal/memlayout"
	"domainvirt/internal/stats"
)

// TestEngineOracle checks every enforcing engine against a trivially
// correct reference: a map from (thread, domain) to the last permission
// set. For random attach/setperm/access/context-switch sequences, each
// engine's verdict must equal the oracle's — regardless of evictions,
// remappings, or cached state.
func TestEngineOracle(t *testing.T) {
	f := func(seed int64) bool {
		const (
			domains = 24
			threads = 3
		)
		type oracleKey struct {
			th ThreadID
			d  DomainID
		}

		engines := map[string]Engine{
			"libmpk":     NewLibmpk(DefaultCosts(), threads),
			"mpkvirt":    NewMPKVirt(DefaultCosts(), threads, 16),
			"domainvirt": NewDomainVirt(DefaultCosts(), threads, 16),
		}
		for name, e := range engines {
			h := newFakeHooks(threads)
			e.Bind(h, &stats.Breakdown{}, &stats.Counters{})
			for th := 0; th < threads; th++ {
				e.ContextSwitch(th, ThreadID(th+1))
			}
			for i := 0; i < domains; i++ {
				r := regionFor(i)
				if err := e.Attach(DomainID(i+1), r); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				h.populate(r, 2)
			}

			oracle := make(map[oracleKey]Perm)
			localRng := rand.New(rand.NewSource(seed)) // identical sequence per engine
			for step := 0; step < 2500; step++ {
				th := ThreadID(1 + localRng.Intn(threads))
				coreID := int(th) - 1
				d := DomainID(1 + localRng.Intn(domains))
				switch localRng.Intn(3) {
				case 0:
					p := []Perm{PermRW, PermR, PermNone}[localRng.Intn(3)]
					e.SetPerm(coreID, th, d, p)
					oracle[oracleKey{th, d}] = p
				default:
					write := localRng.Intn(2) == 0
					va := regionFor(int(d-1)).Base + memlayout.VA(localRng.Intn(1<<20))
					v := access(e, coreID, th, va, write)
					want, ok := oracle[oracleKey{th, d}]
					if !ok {
						want = PermNone
					}
					if v.Allowed != want.Allows(write) {
						t.Fatalf("%s seed=%d step=%d: verdict %v, oracle %v (perm %v, write %v)",
							name, seed, step, v.Allowed, want.Allows(write), want, write)
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
