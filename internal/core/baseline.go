package core

import (
	"domainvirt/internal/memlayout"
	"domainvirt/internal/stats"
)

// engineBase carries the plumbing shared by all engines.
type engineBase struct {
	hooks Hooks
	bd    *stats.Breakdown
	ctr   *stats.Counters
	costs Costs
	table *DomainTable
	ev    stats.EventSink
}

// SetEventSink implements EventEmitter; a nil sink disables emission.
func (e *engineBase) SetEventSink(s stats.EventSink) { e.ev = s }

// emit publishes one event when a sink is attached.
func (e *engineBase) emit(core int, kind stats.EventKind, n uint64) {
	if e.ev != nil {
		e.ev.Event(core, kind, n)
	}
}

func (e *engineBase) init(costs Costs) {
	e.costs = costs
	e.table = NewDomainTable()
}

// Bind implements Engine.
func (e *engineBase) Bind(h Hooks, bd *stats.Breakdown, ctr *stats.Counters) {
	e.hooks = h
	e.bd = bd
	e.ctr = ctr
}

// DomainOf implements Engine.
func (e *engineBase) DomainOf(va memlayout.VA) DomainID {
	d, _ := e.table.Lookup(va)
	return d
}

// Baseline is the unprotected execution: it tracks attachments for
// bookkeeping but performs no checks and charges no cycles. It is the
// denominator of every overhead the paper reports.
type Baseline struct {
	engineBase
}

// NewBaseline returns a baseline engine.
func NewBaseline(costs Costs) *Baseline {
	e := &Baseline{}
	e.init(costs)
	return e
}

// Name implements Engine.
func (e *Baseline) Name() string { return "baseline" }

// Attach implements Engine.
func (e *Baseline) Attach(d DomainID, r memlayout.Region) error {
	return e.table.Insert(d, r)
}

// Detach implements Engine.
func (e *Baseline) Detach(d DomainID) { e.table.Remove(d) }

// SetPerm implements Engine: the unprotected run has no permission
// instructions, so it is free.
func (e *Baseline) SetPerm(int, ThreadID, DomainID, Perm) uint64 { return 0 }

// FillTag implements Engine.
func (e *Baseline) FillTag(int, ThreadID, memlayout.VA) (uint16, uint64) { return 0, 0 }

// Check implements Engine.
func (e *Baseline) Check(AccessCtx) Verdict { return Verdict{Allowed: true} }

// ContextSwitch implements Engine.
func (e *Baseline) ContextSwitch(int, ThreadID) uint64 { return 0 }

// Lowerbound is the paper's ideal MPK virtualization: no overhead except
// the WRPKRU/SETPERM instructions themselves ("one can think of this
// scheme as having MPK virtualization without any penalties for accessing
// the DTTLB or DTT"). All accesses are presumed legal.
type Lowerbound struct {
	engineBase
}

// NewLowerbound returns a lowerbound engine.
func NewLowerbound(costs Costs) *Lowerbound {
	e := &Lowerbound{}
	e.init(costs)
	return e
}

// Name implements Engine.
func (e *Lowerbound) Name() string { return "lowerbound" }

// Attach implements Engine.
func (e *Lowerbound) Attach(d DomainID, r memlayout.Region) error {
	return e.table.Insert(d, r)
}

// Detach implements Engine.
func (e *Lowerbound) Detach(d DomainID) { e.table.Remove(d) }

// SetPerm implements Engine: charges exactly the permission-switch
// instruction.
func (e *Lowerbound) SetPerm(int, ThreadID, DomainID, Perm) uint64 {
	c := e.costs.WRPKRU + e.costs.SetPermFence
	e.bd.Add(stats.CatPermSwitch, c)
	e.ctr.PermSwitches++
	return c
}

// FillTag implements Engine.
func (e *Lowerbound) FillTag(int, ThreadID, memlayout.VA) (uint16, uint64) { return 0, 0 }

// Check implements Engine.
func (e *Lowerbound) Check(AccessCtx) Verdict { return Verdict{Allowed: true} }

// ContextSwitch implements Engine.
func (e *Lowerbound) ContextSwitch(int, ThreadID) uint64 { return 0 }
