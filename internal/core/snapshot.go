package core

import (
	"domainvirt/internal/memlayout"
	"domainvirt/internal/mpk"
)

// Snapshotter is implemented by every engine. SnapshotState captures the
// engine's full mutable state as an opaque deep copy; RestoreState
// reinstates one taken from an engine of the same type and geometry
// (core count, DTTLB/PTLB sizes).
//
// The contract mirrors the leaf snapshot primitives: a snapshot is
// immutable once taken — RestoreState deep-copies out of it, never
// aliases into it — so one snapshot can seed many engines, concurrently.
// RestoreState never touches the Bind-time plumbing (hooks, breakdown,
// counter, and event-sink pointers stay with the receiving engine).
type Snapshotter interface {
	SnapshotState() any
	RestoreState(st any)
}

func copyDomainKeyMap(m map[DomainID]uint8) map[DomainID]uint8 {
	c := make(map[DomainID]uint8, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func copyPKRUMap(m map[ThreadID]mpk.PKRU) map[ThreadID]mpk.PKRU {
	c := make(map[ThreadID]mpk.PKRU, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func copyPermMap(m map[ThreadID]Perm) map[ThreadID]Perm {
	c := make(map[ThreadID]Perm, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func copyThreadPermTable(m map[ThreadID]map[DomainID]Perm) map[ThreadID]map[DomainID]Perm {
	c := make(map[ThreadID]map[DomainID]Perm, len(m))
	for th, dm := range m {
		inner := make(map[DomainID]Perm, len(dm))
		for d, p := range dm {
			inner[d] = p
		}
		c[th] = inner
	}
	return c
}

// baseState is the state of the table-only engines (Baseline, Lowerbound).
type baseState struct {
	table *DomainTable
}

// SnapshotState implements Snapshotter.
func (e *Baseline) SnapshotState() any { return &baseState{table: e.table.Clone()} }

// RestoreState implements Snapshotter.
func (e *Baseline) RestoreState(st any) { e.table = st.(*baseState).table.Clone() }

// SnapshotState implements Snapshotter.
func (e *Lowerbound) SnapshotState() any { return &baseState{table: e.table.Clone()} }

// RestoreState implements Snapshotter.
func (e *Lowerbound) RestoreState(st any) { e.table = st.(*baseState).table.Clone() }

// mpkState is the default-MPK engine state.
type mpkState struct {
	alloc     uint16
	keyOf     map[DomainID]uint8
	pkruCore  []mpk.PKRU
	pkruSaved map[ThreadID]mpk.PKRU
	current   []ThreadID
	table     *DomainTable
}

// SnapshotState implements Snapshotter.
func (e *MPK) SnapshotState() any {
	return &mpkState{
		alloc:     e.alloc.State(),
		keyOf:     copyDomainKeyMap(e.keyOf),
		pkruCore:  append([]mpk.PKRU(nil), e.pkruCore...),
		pkruSaved: copyPKRUMap(e.pkruSaved),
		current:   append([]ThreadID(nil), e.current...),
		table:     e.table.Clone(),
	}
}

// RestoreState implements Snapshotter.
func (e *MPK) RestoreState(st any) {
	s := st.(*mpkState)
	if len(s.pkruCore) != len(e.pkruCore) {
		panic("core: MPK RestoreState core-count mismatch")
	}
	e.alloc.SetState(s.alloc)
	e.keyOf = copyDomainKeyMap(s.keyOf)
	copy(e.pkruCore, s.pkruCore)
	e.pkruSaved = copyPKRUMap(s.pkruSaved)
	copy(e.current, s.current)
	e.table = s.table.Clone()
}

// libmpkState is the software MPK-virtualization engine state.
type libmpkState struct {
	keyOf     map[DomainID]uint8
	ownerOf   [mpk.NumKeys]DomainID
	alloc     uint16
	lruStamp  [mpk.NumKeys]uint64
	clock     uint64
	perms     map[ThreadID]map[DomainID]Perm
	pkruCore  []mpk.PKRU
	pkruSaved map[ThreadID]mpk.PKRU
	current   []ThreadID
	table     *DomainTable
}

// SnapshotState implements Snapshotter.
func (e *Libmpk) SnapshotState() any {
	return &libmpkState{
		keyOf:     copyDomainKeyMap(e.keyOf),
		ownerOf:   e.ownerOf,
		alloc:     e.alloc.State(),
		lruStamp:  e.lruStamp,
		clock:     e.clock,
		perms:     copyThreadPermTable(e.perms),
		pkruCore:  append([]mpk.PKRU(nil), e.pkruCore...),
		pkruSaved: copyPKRUMap(e.pkruSaved),
		current:   append([]ThreadID(nil), e.current...),
		table:     e.table.Clone(),
	}
}

// RestoreState implements Snapshotter.
func (e *Libmpk) RestoreState(st any) {
	s := st.(*libmpkState)
	if len(s.pkruCore) != len(e.pkruCore) {
		panic("core: Libmpk RestoreState core-count mismatch")
	}
	e.keyOf = copyDomainKeyMap(s.keyOf)
	e.ownerOf = s.ownerOf
	e.alloc.SetState(s.alloc)
	e.lruStamp = s.lruStamp
	e.clock = s.clock
	e.perms = copyThreadPermTable(s.perms)
	copy(e.pkruCore, s.pkruCore)
	e.pkruSaved = copyPKRUMap(s.pkruSaved)
	copy(e.current, s.current)
	e.table = s.table.Clone()
}

// mpkvirtState is the hardware MPK-virtualization engine state. The live
// engine aliases *dttEntry pointers across the entries map, the ownerOf
// key array, and every per-core DTTLB slot; the snapshot flattens each
// alias to the entry's domain ID and the restore rebuilds the pointer
// graph from freshly copied entries.
type mpkvirtState struct {
	entries   map[DomainID]dttEntrySnap
	ownerOf   [mpk.NumKeys]DomainID // NullDomain = key free
	keyPLRU   PLRUState
	dttlbs    []dttlbSnap
	pkruCore  []mpk.PKRU
	pkruSaved map[ThreadID]mpk.PKRU
	current   []ThreadID
	table     *DomainTable
}

type dttEntrySnap struct {
	region memlayout.Region
	key    uint8
	hasKey bool
	perms  map[ThreadID]Perm
}

type dttlbSnap struct {
	slots []DomainID // NullDomain = empty slot
	dirty []bool
	plru  PLRUState
}

// SnapshotState implements Snapshotter.
func (e *MPKVirt) SnapshotState() any {
	s := &mpkvirtState{
		entries:   make(map[DomainID]dttEntrySnap, len(e.entries)),
		keyPLRU:   e.keyPLRU.Save(),
		dttlbs:    make([]dttlbSnap, len(e.dttlbs)),
		pkruCore:  append([]mpk.PKRU(nil), e.pkruCore...),
		pkruSaved: copyPKRUMap(e.pkruSaved),
		current:   append([]ThreadID(nil), e.current...),
		table:     e.table.Clone(),
	}
	for d, ent := range e.entries {
		s.entries[d] = dttEntrySnap{
			region: ent.region,
			key:    ent.key,
			hasKey: ent.hasKey,
			perms:  copyPermMap(ent.perms),
		}
	}
	for k, ent := range e.ownerOf {
		if ent != nil {
			s.ownerOf[k] = ent.domain
		}
	}
	for i, t := range e.dttlbs {
		ts := dttlbSnap{
			slots: make([]DomainID, len(t.slots)),
			dirty: append([]bool(nil), t.dirty...),
			plru:  t.plru.Save(),
		}
		for j, ent := range t.slots {
			if ent != nil {
				ts.slots[j] = ent.domain
			}
		}
		s.dttlbs[i] = ts
	}
	return s
}

// RestoreState implements Snapshotter.
func (e *MPKVirt) RestoreState(st any) {
	s := st.(*mpkvirtState)
	if len(s.dttlbs) != len(e.dttlbs) {
		panic("core: MPKVirt RestoreState core-count mismatch")
	}
	e.entries = make(map[DomainID]*dttEntry, len(s.entries))
	for d, snap := range s.entries {
		e.entries[d] = &dttEntry{
			domain: d,
			region: snap.region,
			key:    snap.key,
			hasKey: snap.hasKey,
			perms:  copyPermMap(snap.perms),
		}
	}
	for k := range e.ownerOf {
		if d := s.ownerOf[k]; d != NullDomain {
			e.ownerOf[k] = e.entries[d]
		} else {
			e.ownerOf[k] = nil
		}
	}
	e.keyPLRU.Load(s.keyPLRU)
	for i, t := range e.dttlbs {
		ts := s.dttlbs[i]
		if len(ts.slots) != len(t.slots) {
			panic("core: MPKVirt RestoreState DTTLB-size mismatch")
		}
		for j, d := range ts.slots {
			if d != NullDomain {
				t.slots[j] = e.entries[d]
			} else {
				t.slots[j] = nil
			}
		}
		copy(t.dirty, ts.dirty)
		t.plru.Load(ts.plru)
	}
	copy(e.pkruCore, s.pkruCore)
	e.pkruSaved = copyPKRUMap(s.pkruSaved)
	copy(e.current, s.current)
	e.table = s.table.Clone()
}

// domvirtState is the hardware domain-virtualization engine state.
type domvirtState struct {
	pt      map[DomainID]map[ThreadID]Perm
	ptlbs   []ptlbSnap
	current []ThreadID
	table   *DomainTable
}

type ptlbSnap struct {
	ents []ptlbEntry
	plru PLRUState
}

// SnapshotState implements Snapshotter.
func (e *DomainVirt) SnapshotState() any {
	s := &domvirtState{
		pt:      make(map[DomainID]map[ThreadID]Perm, len(e.pt)),
		ptlbs:   make([]ptlbSnap, len(e.ptlbs)),
		current: append([]ThreadID(nil), e.current...),
		table:   e.table.Clone(),
	}
	for d, m := range e.pt {
		s.pt[d] = copyPermMap(m)
	}
	for i, t := range e.ptlbs {
		s.ptlbs[i] = ptlbSnap{
			ents: append([]ptlbEntry(nil), t.ents...),
			plru: t.plru.Save(),
		}
	}
	return s
}

// RestoreState implements Snapshotter.
func (e *DomainVirt) RestoreState(st any) {
	s := st.(*domvirtState)
	if len(s.ptlbs) != len(e.ptlbs) {
		panic("core: DomainVirt RestoreState core-count mismatch")
	}
	e.pt = make(map[DomainID]map[ThreadID]Perm, len(s.pt))
	for d, m := range s.pt {
		e.pt[d] = copyPermMap(m)
	}
	for i, t := range e.ptlbs {
		if len(s.ptlbs[i].ents) != len(t.ents) {
			panic("core: DomainVirt RestoreState PTLB-size mismatch")
		}
		copy(t.ents, s.ptlbs[i].ents)
		t.plru.Load(s.ptlbs[i].plru)
	}
	copy(e.current, s.current)
	e.table = s.table.Clone()
}
