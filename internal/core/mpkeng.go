package core

import (
	"domainvirt/internal/memlayout"
	"domainvirt/internal/mpk"
	"domainvirt/internal/stats"
)

// MPK is the default Intel MPK engine: each attached PMO consumes one of
// the 15 allocatable protection keys (pkey_alloc + pkey_mprotect), and
// per-thread permissions live in the per-core PKRU register written by
// WRPKRU. Attaching a 16th domain fails — the scalability wall that
// motivates virtualization.
type MPK struct {
	engineBase
	alloc     *mpk.KeyAllocator
	keyOf     map[DomainID]uint8
	pkruCore  []mpk.PKRU
	pkruSaved map[ThreadID]mpk.PKRU
	current   []ThreadID
}

// NewMPK returns a default-MPK engine for ncores cores.
func NewMPK(costs Costs, ncores int) *MPK {
	e := &MPK{
		alloc:     mpk.NewKeyAllocator(),
		keyOf:     make(map[DomainID]uint8),
		pkruCore:  make([]mpk.PKRU, ncores),
		pkruSaved: make(map[ThreadID]mpk.PKRU),
		current:   make([]ThreadID, ncores),
	}
	e.init(costs)
	for i := range e.pkruCore {
		e.pkruCore[i] = mpk.AllNone()
	}
	return e
}

// Name implements Engine.
func (e *MPK) Name() string { return "mpk" }

// Attach implements Engine: pkey_alloc + pkey_mprotect over the region.
// Like the kernel's pkey_alloc, the reallocated key's access rights are
// reset everywhere, so a freed key's old grants cannot leak to the new
// domain.
func (e *MPK) Attach(d DomainID, r memlayout.Region) error {
	key, ok := e.alloc.Alloc()
	if !ok {
		return errTooManyDomains{d}
	}
	if err := e.table.Insert(d, r); err != nil {
		e.alloc.Free(key)
		return err
	}
	for c := range e.pkruCore {
		e.pkruCore[c] = e.pkruCore[c].Set(key, mpk.PermNone)
	}
	for th, saved := range e.pkruSaved {
		e.pkruSaved[th] = saved.Set(key, mpk.PermNone)
	}
	e.keyOf[d] = key
	if e.hooks != nil {
		e.hooks.SetPTEKeys(r, uint8(keyTag(key)))
	}
	return nil
}

// Detach implements Engine: pkey_free and clear PTE keys.
func (e *MPK) Detach(d DomainID) {
	key, ok := e.keyOf[d]
	if !ok {
		return
	}
	if r, ok := e.table.Region(d); ok && e.hooks != nil {
		e.hooks.SetPTEKeys(r, uint8(TagNone))
		e.hooks.FlushTLBRangeAll(r)
	}
	e.table.Remove(d)
	e.alloc.Free(key)
	delete(e.keyOf, d)
}

// SetPerm implements Engine: one WRPKRU.
func (e *MPK) SetPerm(coreID int, th ThreadID, d DomainID, p Perm) uint64 {
	key, ok := e.keyOf[d]
	if !ok {
		return 0
	}
	e.pkruCore[coreID] = e.pkruCore[coreID].Set(key, p)
	e.pkruSaved[th] = e.pkruCore[coreID]
	c := e.costs.WRPKRU + e.costs.SetPermFence
	e.bd.Add(stats.CatPermSwitch, c)
	e.ctr.PermSwitches++
	return c
}

// FillTag implements Engine: the protection key comes from the PTE.
func (e *MPK) FillTag(_ int, _ ThreadID, va memlayout.VA) (uint16, uint64) {
	d, _ := e.table.Lookup(va)
	if d == NullDomain {
		return TagNone, 0
	}
	return keyTag(e.keyOf[d]), 0
}

// Check implements Engine: PKRU lookup indexed by the key cached in the
// TLB entry, in parallel with the page-permission check (no extra cycles).
func (e *MPK) Check(ctx AccessCtx) Verdict {
	key, ok := tagKey(ctx.Tag)
	if !ok {
		return Verdict{Allowed: true}
	}
	perm := e.pkruCore[ctx.Core].Get(key)
	return Verdict{Allowed: perm.Allows(ctx.Write)}
}

// ContextSwitch implements Engine: PKRU is part of the saved thread state.
func (e *MPK) ContextSwitch(coreID int, to ThreadID) uint64 {
	if cur := e.current[coreID]; cur != 0 {
		e.pkruSaved[cur] = e.pkruCore[coreID]
	}
	e.current[coreID] = to
	if saved, ok := e.pkruSaved[to]; ok {
		e.pkruCore[coreID] = saved
	} else {
		e.pkruCore[coreID] = mpk.AllNone()
	}
	return 0
}

// KeyOf returns the protection key assigned to d (tests and tools).
func (e *MPK) KeyOf(d DomainID) (uint8, bool) {
	k, ok := e.keyOf[d]
	return k, ok
}
