package core

import (
	"fmt"

	"domainvirt/internal/memlayout"
)

// DomainTable is the radix-tree VA→domain mapping underlying both the
// Domain Translation Table (DTT) of hardware MPK virtualization and the
// Domain Range Table (DRT) of hardware domain virtualization. Like the
// page table it is organized hierarchically and walked from the top level;
// an entry is either a directory entry (next-level bit 1) pointing to a
// child node or a PMO root entry (next-level bit 0) recording the domain
// that owns the slot's whole VA span.
//
// A PMO attaches at the radix level matching its size and may occupy
// several consecutive slots (e.g. an 8 MB PMO occupies four 2 MB slots),
// per the paper's aligned-region requirement.
type DomainTable struct {
	root    *dtNode
	regions map[DomainID]memlayout.Region
}

type dtNode struct {
	children [memlayout.RadixFanout]*dtNode
	domain   [memlayout.RadixFanout]DomainID // PMO root entries; 0 = none
}

// NewDomainTable returns an empty table.
func NewDomainTable() *DomainTable {
	return &DomainTable{
		root:    &dtNode{},
		regions: make(map[DomainID]memlayout.Region),
	}
}

// Insert registers domain d over region r. The region base must be
// aligned to the attach-level granularity and the slots must be free.
func (t *DomainTable) Insert(d DomainID, r memlayout.Region) error {
	if d == NullDomain {
		return fmt.Errorf("core: cannot insert the null domain")
	}
	lvl, slots, _ := memlayout.AttachLevel(r.Size)
	gran := memlayout.LevelSize(lvl)
	if !memlayout.IsAligned(uint64(r.Base), gran) {
		return fmt.Errorf("core: region %s not aligned to level-%d granularity %#x", r, lvl, gran)
	}
	if _, ok := t.regions[d]; ok {
		return fmt.Errorf("core: domain %d already attached", d)
	}
	n := t.root
	for l := memlayout.NumLevels - 1; l > lvl; l-- {
		idx := memlayout.Index(r.Base, l)
		if n.domain[idx] != NullDomain {
			return fmt.Errorf("core: region %s overlaps domain %d", r, n.domain[idx])
		}
		child := n.children[idx]
		if child == nil {
			child = &dtNode{}
			n.children[idx] = child
		}
		n = child
	}
	i0 := memlayout.Index(r.Base, lvl)
	if i0+slots > memlayout.RadixFanout {
		return fmt.Errorf("core: region %s crosses a level-%d node boundary", r, lvl)
	}
	for i := i0; i < i0+slots; i++ {
		if n.domain[i] != NullDomain || n.children[i] != nil {
			return fmt.Errorf("core: region %s overlaps an existing mapping", r)
		}
	}
	for i := i0; i < i0+slots; i++ {
		n.domain[i] = d
	}
	t.regions[d] = r
	return nil
}

// Clone returns a deep copy of the table: the two share no nodes, so
// mutations of one are invisible to the other.
func (t *DomainTable) Clone() *DomainTable {
	c := &DomainTable{
		root:    cloneDTNode(t.root),
		regions: make(map[DomainID]memlayout.Region, len(t.regions)),
	}
	for d, r := range t.regions {
		c.regions[d] = r
	}
	return c
}

func cloneDTNode(n *dtNode) *dtNode {
	c := &dtNode{domain: n.domain}
	for i, child := range n.children {
		if child != nil {
			c.children[i] = cloneDTNode(child)
		}
	}
	return c
}

// Remove deletes domain d's entries. It reports whether d was present.
func (t *DomainTable) Remove(d DomainID) bool {
	r, ok := t.regions[d]
	if !ok {
		return false
	}
	lvl, slots, _ := memlayout.AttachLevel(r.Size)
	n := t.root
	for l := memlayout.NumLevels - 1; l > lvl; l-- {
		n = n.children[memlayout.Index(r.Base, l)]
		if n == nil {
			delete(t.regions, d)
			return true
		}
	}
	i0 := memlayout.Index(r.Base, lvl)
	for i := i0; i < i0+slots && i < memlayout.RadixFanout; i++ {
		if n.domain[i] == d {
			n.domain[i] = NullDomain
		}
	}
	delete(t.regions, d)
	return true
}

// Lookup walks the table and returns the domain covering va (NullDomain
// if none) and the walk depth in levels, used for walk-latency modeling.
func (t *DomainTable) Lookup(va memlayout.VA) (DomainID, int) {
	n := t.root
	depth := 1
	for l := memlayout.NumLevels - 1; l >= 0; l-- {
		idx := memlayout.Index(va, l)
		if d := n.domain[idx]; d != NullDomain {
			return d, depth
		}
		if l == 0 {
			return NullDomain, depth
		}
		next := n.children[idx]
		if next == nil {
			return NullDomain, depth
		}
		n = next
		depth++
	}
	return NullDomain, depth
}

// Region returns the attached region of d.
func (t *DomainTable) Region(d DomainID) (memlayout.Region, bool) {
	r, ok := t.regions[d]
	return r, ok
}

// Len returns the number of attached domains.
func (t *DomainTable) Len() int { return len(t.regions) }

// ForEach calls fn for every attached (domain, region) pair.
func (t *DomainTable) ForEach(fn func(DomainID, memlayout.Region)) {
	for d, r := range t.regions {
		fn(d, r)
	}
}
