package core

import "testing"

func TestInspectorGatesUnknownSites(t *testing.T) {
	in := NewInspector()
	in.Approve(1, "runtime gate")
	in.Approve(2, "library gate")

	if !in.Allow(1, 1, 5, PermRW) {
		t.Error("approved site rejected")
	}
	if in.Allow(99, 2, 5, PermRW) {
		t.Error("unapproved site allowed — WRPKRU/SETPERM gadget reuse not caught")
	}
	vs := in.Violations()
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	if vs[0].Site != 99 || vs[0].Thread != 2 || vs[0].Domain != 5 {
		t.Errorf("violation record = %+v", vs[0])
	}
	if s := vs[0].String(); s == "" {
		t.Error("empty violation string")
	}
	sites := in.ApprovedSites()
	if len(sites) != 2 || sites[0] != 1 || sites[1] != 2 {
		t.Errorf("ApprovedSites = %v", sites)
	}
}
