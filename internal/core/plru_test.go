package core

import (
	"math/rand"
	"testing"
)

func TestPLRUVictimInRange(t *testing.T) {
	for _, slots := range []int{2, 4, 16, 64} {
		p := NewPLRU(slots)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			v := p.Victim()
			if v < 0 || v >= slots {
				t.Fatalf("victim %d out of range [0,%d)", v, slots)
			}
			p.Touch(rng.Intn(slots))
		}
	}
}

func TestPLRUTouchedIsNotVictim(t *testing.T) {
	p := NewPLRU(16)
	for s := 0; s < 16; s++ {
		p.Touch(s)
		if v := p.Victim(); v == s {
			t.Errorf("slot %d is victim immediately after touch", s)
		}
	}
}

func TestPLRUSweepCoversAllSlots(t *testing.T) {
	// Repeatedly evicting the victim and touching it must cycle through
	// every slot (no starvation).
	p := NewPLRU(16)
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		v := p.Victim()
		seen[v] = true
		p.Touch(v)
	}
	if len(seen) != 16 {
		t.Errorf("victim cycle covered %d slots, want 16", len(seen))
	}
}

func TestPLRUTwoSlotsIsExactLRU(t *testing.T) {
	// With two slots, tree-PLRU degenerates to exact LRU.
	p := NewPLRU(2)
	rng := rand.New(rand.NewSource(3))
	last := -1
	for i := 0; i < 200; i++ {
		s := rng.Intn(2)
		p.Touch(s)
		last = s
		if v := p.Victim(); v != 1-last {
			t.Fatalf("victim = %d after touching %d", v, last)
		}
	}
}

func TestPLRUColdSubtreePreferred(t *testing.T) {
	// Tree property: if only slots in the left half are ever touched,
	// the victim stays in the right half.
	p := NewPLRU(16)
	for i := 0; i < 100; i++ {
		p.Touch(i % 8)
		if v := p.Victim(); v < 8 {
			t.Fatalf("victim %d in the hot half", v)
		}
	}
}

func TestPLRUVictimExcluding(t *testing.T) {
	p := NewPLRU(16)
	v := p.VictimExcluding(func(s int) bool { return s%2 == 0 })
	if v%2 == 0 {
		t.Errorf("excluded slot %d selected", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("all-excluded must panic")
		}
	}()
	p.VictimExcluding(func(int) bool { return true })
}

func TestPLRUBadSize(t *testing.T) {
	for _, n := range []int{0, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPLRU(%d) did not panic", n)
				}
			}()
			NewPLRU(n)
		}()
	}
}
