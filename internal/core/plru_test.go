package core

import (
	"math/rand"
	"testing"
)

func TestPLRUVictimInRange(t *testing.T) {
	for _, slots := range []int{2, 4, 16, 64} {
		p := NewPLRU(slots)
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 1000; i++ {
			v := p.Victim()
			if v < 0 || v >= slots {
				t.Fatalf("victim %d out of range [0,%d)", v, slots)
			}
			p.Touch(rng.Intn(slots))
		}
	}
}

func TestPLRUTouchedIsNotVictim(t *testing.T) {
	p := NewPLRU(16)
	for s := 0; s < 16; s++ {
		p.Touch(s)
		if v := p.Victim(); v == s {
			t.Errorf("slot %d is victim immediately after touch", s)
		}
	}
}

func TestPLRUSweepCoversAllSlots(t *testing.T) {
	// Repeatedly evicting the victim and touching it must cycle through
	// every slot (no starvation).
	p := NewPLRU(16)
	seen := make(map[int]bool)
	for i := 0; i < 64; i++ {
		v := p.Victim()
		seen[v] = true
		p.Touch(v)
	}
	if len(seen) != 16 {
		t.Errorf("victim cycle covered %d slots, want 16", len(seen))
	}
}

func TestPLRUTwoSlotsIsExactLRU(t *testing.T) {
	// With two slots, tree-PLRU degenerates to exact LRU.
	p := NewPLRU(2)
	rng := rand.New(rand.NewSource(3))
	last := -1
	for i := 0; i < 200; i++ {
		s := rng.Intn(2)
		p.Touch(s)
		last = s
		if v := p.Victim(); v != 1-last {
			t.Fatalf("victim = %d after touching %d", v, last)
		}
	}
}

func TestPLRUColdSubtreePreferred(t *testing.T) {
	// Tree property: if only slots in the left half are ever touched,
	// the victim stays in the right half.
	p := NewPLRU(16)
	for i := 0; i < 100; i++ {
		p.Touch(i % 8)
		if v := p.Victim(); v < 8 {
			t.Fatalf("victim %d in the hot half", v)
		}
	}
}

func TestPLRUVictimExcluding(t *testing.T) {
	p := NewPLRU(16)
	v := p.VictimExcluding(func(s int) bool { return s%2 == 0 })
	if v%2 == 0 {
		t.Errorf("excluded slot %d selected", v)
	}
	defer func() {
		if recover() == nil {
			t.Error("all-excluded must panic")
		}
	}()
	p.VictimExcluding(func(int) bool { return true })
}

// refPLRU is an independent tree-PLRU model used to cross-check the
// bit-twiddling implementation: it works on explicit [lo,hi) ranges with
// one cold-direction flag per range, recursing by halving — no implicit
// heap indexing, no depth arithmetic. A zero-valued flag points left,
// matching a fresh PLRU whose victim is slot 0.
type refPLRU struct {
	coldRight map[[2]int]bool
}

func newRefPLRU() *refPLRU { return &refPLRU{coldRight: make(map[[2]int]bool)} }

func (r *refPLRU) touch(lo, hi, slot int) {
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if slot < mid {
			r.coldRight[[2]int{lo, hi}] = true
			hi = mid
		} else {
			r.coldRight[[2]int{lo, hi}] = false
			lo = mid
		}
	}
}

func (r *refPLRU) victim(lo, hi int) int {
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if r.coldRight[[2]int{lo, hi}] {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// TestPLRUExhaustiveDepth4 drives a 16-slot (depth-4) tree through every
// access sequence of length 4 over all 16 slots — 16^4 = 65,536 programs
// — and checks the victim against the reference model after every touch.
// This covers every reachable 4-touch tree state exhaustively rather
// than sampling.
func TestPLRUExhaustiveDepth4(t *testing.T) {
	const slots = 16
	for seq := 0; seq < slots*slots*slots*slots; seq++ {
		p := NewPLRU(slots)
		ref := newRefPLRU()
		s := seq
		for step := 0; step < 4; step++ {
			slot := s % slots
			s /= slots
			p.Touch(slot)
			ref.touch(0, slots, slot)
			if got, want := p.Victim(), ref.victim(0, slots); got != want {
				t.Fatalf("seq %#x step %d (touch %d): victim %d, reference says %d",
					seq, step, slot, got, want)
			}
		}
	}
}

func TestPLRUBadSize(t *testing.T) {
	for _, n := range []int{0, 3, 12} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewPLRU(%d) did not panic", n)
				}
			}()
			NewPLRU(n)
		}()
	}
}
