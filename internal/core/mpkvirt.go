package core

import (
	"domainvirt/internal/memlayout"
	"domainvirt/internal/mpk"
	"domainvirt/internal/stats"
)

// dttEntry is one Domain Translation Table entry: the PMO's VA range, its
// domain ID, the protection key it currently maps to (if any), and the
// per-thread permissions the OS keeps for reconstruction.
type dttEntry struct {
	domain DomainID
	region memlayout.Region
	key    uint8
	hasKey bool
	perms  map[ThreadID]Perm
}

func (e *dttEntry) permOf(th ThreadID) Perm {
	if p, ok := e.perms[th]; ok {
		return p
	}
	return PermNone
}

// dttlb is one core's Domain Translation Table Lookaside Buffer: a small
// fully-associative cache of DTT entries searched by VA range (CAM), with
// pseudo-LRU replacement.
type dttlb struct {
	slots []*dttEntry
	dirty []bool
	plru  *PLRU
}

func newDTTLB(entries int) *dttlb {
	return &dttlb{
		slots: make([]*dttEntry, entries),
		dirty: make([]bool, entries),
		plru:  NewPLRU(entries),
	}
}

// lookup searches the CAM for the entry covering domain d.
func (t *dttlb) lookup(d DomainID) (int, *dttEntry) {
	for i, e := range t.slots {
		if e != nil && e.domain == d {
			return i, e
		}
	}
	return -1, nil
}

// insert fills e, evicting the PLRU victim; it reports whether a valid
// victim was displaced and whether that victim was dirty (written back).
func (t *dttlb) insert(e *dttEntry) (evicted, wroteBack bool) {
	slot := -1
	for i, s := range t.slots {
		if s == nil {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = t.plru.Victim()
		evicted = true
		wroteBack = t.dirty[slot]
	}
	t.slots[slot] = e
	t.dirty[slot] = false
	t.plru.Touch(slot)
	return evicted, wroteBack
}

func (t *dttlb) drop(d DomainID) {
	for i, e := range t.slots {
		if e != nil && e.domain == d {
			t.slots[i] = nil
			t.dirty[i] = false
		}
	}
}

func (t *dttlb) flush() (valid, dirty int) {
	for i, e := range t.slots {
		if e != nil {
			valid++
			if t.dirty[i] {
				dirty++
			}
		}
		t.slots[i] = nil
		t.dirty[i] = false
	}
	return valid, dirty
}

// MPKVirt is the hardware MPK-virtualization engine (Section IV-D): it
// preserves the MPK datapath — TLB entries carry a 4-bit key checked
// against PKRU — and adds the DTT/DTTLB machinery that remaps the 15
// allocatable keys over an unbounded number of domains in hardware. A key
// remap costs a PKRU update plus a Range_Flush TLB shootdown of the victim
// domain's VA range on every core.
type MPKVirt struct {
	engineBase
	entries map[DomainID]*dttEntry
	ownerOf [mpk.NumKeys]*dttEntry
	keyPLRU *PLRU

	dttlbs    []*dttlb
	pkruCore  []mpk.PKRU
	pkruSaved map[ThreadID]mpk.PKRU
	current   []ThreadID

	dttlbEntries int
}

// NewMPKVirt returns a hardware MPK-virtualization engine for ncores
// cores with dttlbEntries DTTLB entries per core (16 in the paper).
func NewMPKVirt(costs Costs, ncores, dttlbEntries int) *MPKVirt {
	e := &MPKVirt{
		entries:      make(map[DomainID]*dttEntry),
		keyPLRU:      NewPLRU(mpk.NumKeys),
		pkruCore:     make([]mpk.PKRU, ncores),
		pkruSaved:    make(map[ThreadID]mpk.PKRU),
		current:      make([]ThreadID, ncores),
		dttlbEntries: dttlbEntries,
	}
	e.init(costs)
	for i := 0; i < ncores; i++ {
		e.dttlbs = append(e.dttlbs, newDTTLB(dttlbEntries))
		e.pkruCore[i] = mpk.AllNone()
	}
	return e
}

// Name implements Engine.
func (e *MPKVirt) Name() string { return "mpkvirt" }

// Attach implements Engine: the attach system call adds a DTT entry; key
// assignment is deferred to first use.
func (e *MPKVirt) Attach(d DomainID, r memlayout.Region) error {
	if err := e.table.Insert(d, r); err != nil {
		return err
	}
	e.entries[d] = &dttEntry{
		domain: d,
		region: r,
		perms:  make(map[ThreadID]Perm),
	}
	return nil
}

// Detach implements Engine: the detach system call removes the DTT entry,
// releases its key, and invalidates cached state.
func (e *MPKVirt) Detach(d DomainID) {
	ent, ok := e.entries[d]
	if !ok {
		return
	}
	if ent.hasKey {
		e.ownerOf[ent.key] = nil
		if e.hooks != nil {
			e.hooks.FlushTLBRangeAll(ent.region)
		}
	}
	for _, t := range e.dttlbs {
		t.drop(d)
	}
	delete(e.entries, d)
	e.table.Remove(d)
}

// assignKey maps ent to a protection key, evicting a pseudo-LRU victim if
// none is free, and returns the cycle cost (free-key check, PKRU update,
// and — on eviction — the TLB range invalidation on every core).
func (e *MPKVirt) assignKey(coreID int, ent *dttEntry) uint64 {
	cost := e.costs.FreeKeyCheck
	e.bd.Add(stats.CatEntryChange, e.costs.FreeKeyCheck)

	haveFree := false
	key := uint8(0)
	for k := uint8(0); k < mpk.NumKeys; k++ {
		if e.ownerOf[k] == nil {
			key = k
			haveFree = true
			break
		}
	}
	if !haveFree {
		// No free key: evict the pseudo-LRU victim domain.
		v := e.keyPLRU.VictimExcluding(func(k int) bool {
			return e.ownerOf[k] == nil
		})
		victim := e.ownerOf[v]
		victim.hasKey = false
		e.ownerOf[v] = nil
		for _, t := range e.dttlbs {
			t.drop(victim.domain) // marked invalid (and dirty) in hardware
		}
		// Range_Flush of the victim PMO's VA range on all cores.
		e.hooks.FlushTLBRangeAll(victim.region)
		inval := e.costs.TLBInval * uint64(e.hooks.NumCores())
		e.bd.Add(stats.CatTLBInval, inval)
		cost += inval
		e.ctr.Evictions++
		e.emit(coreID, stats.EvKeyEviction, 1)
		e.emit(coreID, stats.EvShootdown, uint64(e.hooks.NumCores()))
		key = uint8(v)
	}
	ent.key = key
	ent.hasKey = true
	e.ownerOf[key] = ent
	e.keyPLRU.Touch(int(key))

	// PKRU is updated to reflect the new domain's permission.
	e.bd.Add(stats.CatEntryChange, e.costs.PKRUUpdate)
	cost += e.costs.PKRUUpdate
	return cost
}

// SetPerm implements Engine: the SETPERM instruction updates the thread's
// permission for one domain in the DTT (and PKRU when the domain holds a
// key). Its cost equals WRPKRU so the lowerbound is scheme-independent.
func (e *MPKVirt) SetPerm(coreID int, th ThreadID, d DomainID, p Perm) uint64 {
	ent, ok := e.entries[d]
	if !ok {
		return 0
	}
	ent.perms[th] = p
	if ent.hasKey {
		e.pkruCore[coreID] = e.pkruCore[coreID].Set(ent.key, p)
		e.pkruSaved[th] = e.pkruCore[coreID]
	}
	if i, _ := e.dttlbs[coreID].lookup(d); i >= 0 {
		e.dttlbs[coreID].dirty[i] = true // DTT updated lazily
	}
	c := e.costs.WRPKRU + e.costs.SetPermFence
	e.bd.Add(stats.CatPermSwitch, c)
	e.ctr.PermSwitches++
	return c
}

// FillTag implements Engine: the TLB-miss path of Figure 4. The DTTLB is
// searched (in parallel with the page walk); a miss walks the DTT; a
// domain without a key gets one assigned, evicting a victim if needed.
func (e *MPKVirt) FillTag(coreID int, th ThreadID, va memlayout.VA) (uint16, uint64) {
	d, _ := e.table.Lookup(va)
	if d == NullDomain {
		return TagNone, 0
	}
	var cost uint64
	t := e.dttlbs[coreID]
	slot, ent := t.lookup(d)
	if ent == nil {
		// DTTLB miss: walk the DTT, then install the entry.
		ent = e.entries[d]
		if ent == nil {
			return TagNone, 0
		}
		cost += e.costs.DTTLBMiss
		e.bd.Add(stats.CatDTTMiss, e.costs.DTTLBMiss)
		e.ctr.DTTLBMisses++
		e.ctr.DTTWalks++
		evicted, wroteBack := t.insert(ent)
		if evicted {
			e.emit(coreID, stats.EvDTTLBEviction, 1)
		}
		if wroteBack {
			// Dirty victim written back to the DTT.
			cost += e.costs.DTTLBEntryOp
			e.bd.Add(stats.CatEntryChange, e.costs.DTTLBEntryOp)
		}
		cost += e.costs.DTTLBEntryOp
		e.bd.Add(stats.CatEntryChange, e.costs.DTTLBEntryOp)
	} else {
		e.ctr.DTTLBHits++
		t.plru.Touch(slot)
	}
	if !ent.hasKey {
		cost += e.assignKey(coreID, ent)
	} else {
		e.keyPLRU.Touch(int(ent.key))
	}
	// Keep this core's PKRU coherent with the running thread's
	// permission for the key (reconstruction after remaps/switches).
	e.pkruCore[coreID] = e.pkruCore[coreID].Set(ent.key, ent.permOf(th))
	return keyTag(ent.key), cost
}

// Check implements Engine: identical to the MPK datapath — the key cached
// in the TLB entry indexes PKRU in parallel with the page-permission
// check, adding no cycles.
func (e *MPKVirt) Check(ctx AccessCtx) Verdict {
	key, ok := tagKey(ctx.Tag)
	if !ok {
		return Verdict{Allowed: true}
	}
	perm := e.pkruCore[ctx.Core].Get(key)
	return Verdict{Allowed: perm.Allows(ctx.Write)}
}

// ContextSwitch implements Engine: DTTLB and PKRU are thread-specific;
// dirty DTTLB entries are written back and both are rebuilt for the
// incoming thread from the DTT.
func (e *MPKVirt) ContextSwitch(coreID int, to ThreadID) uint64 {
	if cur := e.current[coreID]; cur != 0 {
		e.pkruSaved[cur] = e.pkruCore[coreID]
	}
	e.current[coreID] = to
	_, dirty := e.dttlbs[coreID].flush()
	cost := uint64(dirty) * e.costs.DTTLBEntryOp
	if dirty > 0 {
		e.bd.AddN(stats.CatEntryChange, cost, uint64(dirty))
	}
	// Reconstruct PKRU for the incoming thread from the DTT.
	pkru := mpk.AllNone()
	for k := uint8(0); k < mpk.NumKeys; k++ {
		if ent := e.ownerOf[k]; ent != nil {
			pkru = pkru.Set(k, ent.permOf(to))
			cost += e.costs.PKRUUpdate
			e.bd.Add(stats.CatEntryChange, e.costs.PKRUUpdate)
		}
	}
	e.pkruCore[coreID] = pkru
	return cost
}

// KeyOf returns the key currently assigned to d (tests and tools).
func (e *MPKVirt) KeyOf(d DomainID) (uint8, bool) {
	if ent, ok := e.entries[d]; ok && ent.hasKey {
		return ent.key, true
	}
	return 0, false
}
