package core

import (
	"domainvirt/internal/memlayout"
	"domainvirt/internal/mpk"
	"domainvirt/internal/stats"
)

// Libmpk reimplements the software MPK virtualization of libmpk (Park et
// al., USENIX ATC'19), the paper's state-of-the-art baseline. An unlimited
// number of domains share the 15 allocatable keys; at most 15 domains are
// mapped at a time. Touching an unmapped domain — via pkey_set or a
// faulting access — invokes a kernel handler that:
//
//  1. selects a victim key (LRU),
//  2. rewrites the protection-key field of every populated PTE of the
//     victim domain (pkey_mprotect: cost proportional to domain size),
//  3. rewrites every populated PTE of the incoming domain,
//  4. performs a TLB shootdown on all cores for both ranges, and
//  5. writes PKRU.
//
// Steps 2–4 are the overheads the paper's hardware schemes remove.
type Libmpk struct {
	engineBase
	keyOf    map[DomainID]uint8
	ownerOf  [mpk.NumKeys]DomainID
	alloc    *mpk.KeyAllocator
	lruStamp [mpk.NumKeys]uint64
	clock    uint64

	perms     map[ThreadID]map[DomainID]Perm
	pkruCore  []mpk.PKRU
	pkruSaved map[ThreadID]mpk.PKRU
	current   []ThreadID
}

// NewLibmpk returns a libmpk engine for ncores cores.
func NewLibmpk(costs Costs, ncores int) *Libmpk {
	e := &Libmpk{
		keyOf:     make(map[DomainID]uint8),
		alloc:     mpk.NewKeyAllocator(),
		perms:     make(map[ThreadID]map[DomainID]Perm),
		pkruCore:  make([]mpk.PKRU, ncores),
		pkruSaved: make(map[ThreadID]mpk.PKRU),
		current:   make([]ThreadID, ncores),
	}
	e.init(costs)
	for i := range e.pkruCore {
		e.pkruCore[i] = mpk.AllNone()
	}
	return e
}

// Name implements Engine.
func (e *Libmpk) Name() string { return "libmpk" }

// Attach implements Engine. libmpk defers key assignment to first use, so
// attach only registers the region.
func (e *Libmpk) Attach(d DomainID, r memlayout.Region) error {
	return e.table.Insert(d, r)
}

// Detach implements Engine.
func (e *Libmpk) Detach(d DomainID) {
	if key, ok := e.keyOf[d]; ok {
		if r, ok := e.table.Region(d); ok && e.hooks != nil {
			e.hooks.SetPTEKeys(r, uint8(TagNone))
			e.hooks.FlushTLBRangeAll(r)
		}
		e.ownerOf[key] = NullDomain
		e.alloc.Free(key)
		delete(e.keyOf, d)
	}
	e.table.Remove(d)
	for _, m := range e.perms {
		delete(m, d)
	}
}

func (e *Libmpk) permOf(th ThreadID, d DomainID) Perm {
	if m, ok := e.perms[th]; ok {
		if p, ok := m[d]; ok {
			return p
		}
	}
	return PermNone
}

func (e *Libmpk) setPermRecord(th ThreadID, d DomainID, p Perm) {
	m, ok := e.perms[th]
	if !ok {
		m = make(map[DomainID]Perm)
		e.perms[th] = m
	}
	m[d] = p
}

// mapIn gives domain d a protection key, evicting a victim if none is
// free, and returns the cycle cost of the software protocol. coreID
// attributes the emitted eviction/shootdown events to the core whose
// pkey_set or faulting access triggered the remap.
func (e *Libmpk) mapIn(coreID int, d DomainID) uint64 {
	var cost uint64
	region, _ := e.table.Region(d)

	key, free := e.alloc.Alloc()
	if !free {
		// Evict the least recently used key.
		victimKey := uint8(0)
		oldest := e.lruStamp[0]
		for k := uint8(1); k < mpk.NumKeys; k++ {
			if e.lruStamp[k] < oldest {
				oldest = e.lruStamp[k]
				victimKey = k
			}
		}
		victim := e.ownerOf[victimKey]
		vr, _ := e.table.Region(victim)
		// pkey_mprotect on the victim: strip its key from every
		// populated PTE.
		npte := uint64(e.hooks.SetPTEKeys(vr, uint8(TagNone)))
		e.bd.AddN(stats.CatPTEWrite, npte*e.costs.LibmpkPerPTE, npte)
		e.bd.Add(stats.CatSyscall, e.costs.LibmpkSyscall)
		cost += npte*e.costs.LibmpkPerPTE + e.costs.LibmpkSyscall
		// Shootdown of the victim range on every core.
		e.hooks.FlushTLBRangeAll(vr)
		ipi := e.costs.LibmpkIPI * uint64(e.hooks.NumCores())
		e.bd.Add(stats.CatShootdown, ipi)
		cost += ipi
		delete(e.keyOf, victim)
		e.ownerOf[victimKey] = NullDomain
		e.ctr.Evictions++
		e.emit(coreID, stats.EvKeyEviction, 1)
		e.emit(coreID, stats.EvShootdown, uint64(e.hooks.NumCores()))
		key = victimKey
	}

	// pkey_mprotect on the incoming domain: write the key into every
	// populated PTE, then shoot down stale null-key TLB entries.
	npte := uint64(e.hooks.SetPTEKeys(region, uint8(keyTag(key))))
	e.bd.AddN(stats.CatPTEWrite, npte*e.costs.LibmpkPerPTE, npte)
	e.bd.Add(stats.CatSyscall, e.costs.LibmpkSyscall)
	cost += npte*e.costs.LibmpkPerPTE + e.costs.LibmpkSyscall
	e.hooks.FlushTLBRangeAll(region)
	ipi := e.costs.LibmpkIPI * uint64(e.hooks.NumCores())
	e.bd.Add(stats.CatShootdown, ipi)
	cost += ipi
	e.emit(coreID, stats.EvShootdown, uint64(e.hooks.NumCores()))

	e.keyOf[d] = key
	e.ownerOf[key] = d
	e.clock++
	e.lruStamp[key] = e.clock

	// Refresh PKRU on every core for the reassigned key, reflecting the
	// running thread's registered permission for the new owner. Saved
	// (off-core) thread images are rewritten too — otherwise a sleeping
	// thread's grant for the key's previous owner would resurrect for
	// the new owner when that thread is switched back in.
	for c := range e.pkruCore {
		e.pkruCore[c] = e.pkruCore[c].Set(key, e.permOf(e.current[c], d))
	}
	for th, saved := range e.pkruSaved {
		e.pkruSaved[th] = saved.Set(key, e.permOf(th, d))
	}
	return cost
}

// SetPerm implements Engine: pkey_set. Mapped domains pay one WRPKRU;
// unmapped domains pay the full eviction protocol first.
func (e *Libmpk) SetPerm(coreID int, th ThreadID, d DomainID, p Perm) uint64 {
	e.setPermRecord(th, d, p)
	var cost uint64
	key, ok := e.keyOf[d]
	if !ok {
		cost += e.mapIn(coreID, d)
		key = e.keyOf[d]
	} else {
		e.clock++
		e.lruStamp[key] = e.clock
	}
	e.pkruCore[coreID] = e.pkruCore[coreID].Set(key, p)
	e.pkruSaved[th] = e.pkruCore[coreID]
	c := e.costs.WRPKRU + e.costs.SetPermFence
	e.bd.Add(stats.CatPermSwitch, c)
	e.ctr.PermSwitches++
	return cost + c
}

// FillTag implements Engine: the key currently written in the domain's
// PTEs (null if the domain is unmapped).
func (e *Libmpk) FillTag(_ int, _ ThreadID, va memlayout.VA) (uint16, uint64) {
	d, _ := e.table.Lookup(va)
	if d == NullDomain {
		return TagNone, 0
	}
	if key, ok := e.keyOf[d]; ok {
		return keyTag(key), 0
	}
	return TagNone, 0
}

// Check implements Engine. A null tag over an attached domain means the
// domain is unmapped: the access faults into the kernel handler, which
// maps the domain in (evicting if necessary) and restarts the access.
func (e *Libmpk) Check(ctx AccessCtx) Verdict {
	key, hasKey := tagKey(ctx.Tag)
	if !hasKey {
		d, _ := e.table.Lookup(ctx.VA)
		if d == NullDomain {
			return Verdict{Allowed: true}
		}
		if _, mapped := e.keyOf[d]; !mapped {
			// Fault-driven remap: trap, evict, rewrite PTEs,
			// shoot down, restart.
			cost := e.costs.LibmpkTrap
			e.bd.Add(stats.CatTrap, e.costs.LibmpkTrap)
			cost += e.mapIn(ctx.Core, d)
			perm := e.permOf(ctx.Thread, d)
			return Verdict{Allowed: perm.Allows(ctx.Write), Cycles: cost}
		}
		// Stale TLB tag; the shootdown protocol should prevent this.
		perm := e.permOf(ctx.Thread, d)
		return Verdict{Allowed: perm.Allows(ctx.Write)}
	}
	perm := e.pkruCore[ctx.Core].Get(key)
	if !perm.Allows(ctx.Write) {
		// A PKRU miss may simply mean this thread has not loaded its
		// permission for the freshly mapped owner of the key.
		d := e.ownerOf[key]
		if d != NullDomain {
			real := e.permOf(ctx.Thread, d)
			if real.Allows(ctx.Write) {
				e.pkruCore[ctx.Core] = e.pkruCore[ctx.Core].Set(key, real)
				c := e.costs.WRPKRU
				e.bd.Add(stats.CatPermSwitch, c)
				return Verdict{Allowed: true, Cycles: c}
			}
		}
		return Verdict{Allowed: false}
	}
	e.clock++
	e.lruStamp[key] = e.clock
	return Verdict{Allowed: true}
}

// ContextSwitch implements Engine.
func (e *Libmpk) ContextSwitch(coreID int, to ThreadID) uint64 {
	if cur := e.current[coreID]; cur != 0 {
		e.pkruSaved[cur] = e.pkruCore[coreID]
	}
	e.current[coreID] = to
	if saved, ok := e.pkruSaved[to]; ok {
		e.pkruCore[coreID] = saved
	} else {
		e.pkruCore[coreID] = mpk.AllNone()
	}
	return 0
}

// MappedDomains returns the number of domains currently holding keys.
func (e *Libmpk) MappedDomains() int { return len(e.keyOf) }
