package core

// PLRU is a tree-based pseudo-LRU replacement policy over a power-of-two
// number of slots, as used by the DTTLB, the PTLB, and the protection-key
// victim selection of the hardware MPK-virtualization design ("Pseudo LRU
// in our implementation").
//
// The tree is stored implicitly: node 1 is the root, node i has children
// 2i and 2i+1; leaves correspond to slots. Each internal node holds one
// bit pointing toward the less recently used subtree.
type PLRU struct {
	bits  []bool // 1-indexed internal nodes; len == slots
	slots int
}

// NewPLRU returns a PLRU over the given power-of-two slot count.
func NewPLRU(slots int) *PLRU {
	if slots <= 0 || slots&(slots-1) != 0 {
		panic("core: PLRU slots must be a power of two")
	}
	return &PLRU{bits: make([]bool, slots), slots: slots}
}

// Touch marks slot as most recently used: every node on the root→leaf
// path is pointed away from it.
func (p *PLRU) Touch(slot int) {
	node := 1
	for node < p.slots {
		half := p.slots >> treeDepth(node)
		left := slot%(half*2) < half
		// Point toward the other subtree (the colder one).
		p.bits[node] = left
		node = node*2 + b2i(!left)
	}
}

// Victim returns the pseudo-least-recently-used slot without updating
// state.
func (p *PLRU) Victim() int {
	node := 1
	slot := 0
	for node < p.slots {
		half := p.slots >> treeDepth(node)
		if p.bits[node] {
			// Bit points right: the right subtree is colder.
			slot += half
			node = node*2 + 1
		} else {
			node = node * 2
		}
	}
	return slot
}

// VictimExcluding returns the PLRU victim, skipping slots for which skip
// returns true (e.g. the reserved null key). It touches skipped slots so
// repeated calls make progress; it panics if every slot is skipped.
func (p *PLRU) VictimExcluding(skip func(int) bool) int {
	for i := 0; i < p.slots; i++ {
		v := p.Victim()
		if !skip(v) {
			return v
		}
		p.Touch(v)
	}
	panic("core: PLRU has no eligible victim")
}

// treeDepth returns the depth of internal node (root = depth 1), i.e. the
// position of its highest set bit.
func treeDepth(node int) int {
	d := 0
	for node > 0 {
		node >>= 1
		d++
	}
	return d
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
