package core

// PLRU is a tree-based pseudo-LRU replacement policy over a power-of-two
// number of slots, as used by the DTTLB, the PTLB, and the protection-key
// victim selection of the hardware MPK-virtualization design ("Pseudo LRU
// in our implementation").
//
// The tree is stored implicitly: node 1 is the root, node i has children
// 2i and 2i+1; leaves correspond to slots. Each internal node holds one
// bit pointing toward the less recently used subtree. For the common
// small sizes (every engine uses 16 slots) the node bits pack into a
// single uint64, and because the bits a Touch writes depend only on the
// slot, each slot's whole root→leaf update collapses into two precomputed
// masks — one AND-NOT, one OR. Slot counts above 64 fall back to the
// per-node walk over a bool array.
type PLRU struct {
	bits  uint64 // packed node bits (bit i = node i) when slots <= 64
	big   []bool // fallback node storage when slots > 64
	slots int

	touchClear []uint64 // per-slot: every node bit on the slot's path
	touchSet   []uint64 // per-slot: the path bits Touch sets to true
}

// NewPLRU returns a PLRU over the given power-of-two slot count.
func NewPLRU(slots int) *PLRU {
	if slots <= 0 || slots&(slots-1) != 0 {
		panic("core: PLRU slots must be a power of two")
	}
	p := &PLRU{slots: slots}
	if slots > 64 {
		p.big = make([]bool, slots)
		return p
	}
	p.touchClear = make([]uint64, slots)
	p.touchSet = make([]uint64, slots)
	for s := 0; s < slots; s++ {
		node := 1
		var clearM, setM uint64
		for half := slots >> 1; half > 0; half >>= 1 {
			left := s&half == 0
			clearM |= 1 << uint(node)
			if left {
				// Point toward the other (colder) subtree.
				setM |= 1 << uint(node)
			}
			node *= 2
			if !left {
				node++
			}
		}
		p.touchClear[s], p.touchSet[s] = clearM, setM
	}
	return p
}

// PLRUState is the mutable recency state of a PLRU, captured by Save and
// reinstated by Load. The precomputed touch masks are per-geometry
// constants and not part of it.
type PLRUState struct {
	Bits uint64
	Big  []bool
}

// Save captures the recency state.
func (p *PLRU) Save() PLRUState {
	return PLRUState{Bits: p.bits, Big: append([]bool(nil), p.big...)}
}

// Load reinstates a state saved from a PLRU of the same slot count.
func (p *PLRU) Load(s PLRUState) {
	if len(s.Big) != len(p.big) {
		panic("core: PLRU Load slot-count mismatch")
	}
	p.bits = s.Bits
	copy(p.big, s.Big)
}

// Touch marks slot as most recently used: every node on the root→leaf
// path is pointed away from it. At depth d the subtree under the current
// node spans 2*half slots (half starts at slots/2 and halves per level),
// so slot&half selects the child containing slot.
func (p *PLRU) Touch(slot int) {
	if p.big == nil {
		p.bits = p.bits&^p.touchClear[slot] | p.touchSet[slot]
		return
	}
	node := 1
	for half := p.slots >> 1; half > 0; half >>= 1 {
		left := slot&half == 0
		p.big[node] = left
		node *= 2
		if !left {
			node++
		}
	}
}

// Victim returns the pseudo-least-recently-used slot without updating
// state.
func (p *PLRU) Victim() int {
	node := 1
	slot := 0
	if p.big == nil {
		bits := p.bits
		for half := p.slots >> 1; half > 0; half >>= 1 {
			if bits&(1<<uint(node)) != 0 {
				// Bit points right: the right subtree is colder.
				slot += half
				node = node*2 + 1
			} else {
				node = node * 2
			}
		}
		return slot
	}
	for half := p.slots >> 1; half > 0; half >>= 1 {
		if p.big[node] {
			slot += half
			node = node*2 + 1
		} else {
			node = node * 2
		}
	}
	return slot
}

// VictimExcluding returns the PLRU victim, skipping slots for which skip
// returns true (e.g. the reserved null key). It touches skipped slots so
// repeated calls make progress; it panics if every slot is skipped.
func (p *PLRU) VictimExcluding(skip func(int) bool) int {
	for i := 0; i < p.slots; i++ {
		v := p.Victim()
		if !skip(v) {
			return v
		}
		p.Touch(v)
	}
	panic("core: PLRU has no eligible victim")
}
