// Package core implements the paper's contribution: domain-based
// intra-process isolation engines for persistent memory objects.
//
// Five engines share one interface so the simulator can replay identical
// workload traces under each scheme:
//
//   - Baseline: unprotected execution (the paper's baseline).
//   - Lowerbound: ideal MPK virtualization — only WRPKRU/SETPERM costs.
//   - MPK: default Intel MPK, at most 15 usable protection keys.
//   - Libmpk: software MPK virtualization (the libmpk system): on access
//     to an unmapped domain, a fault-driven eviction rewrites the
//     protection-key field of every populated PTE of the victim and the
//     incoming domain (pkey_mprotect), performs a TLB shootdown, and
//     updates PKRU.
//   - MPKVirt: hardware MPK virtualization — the Domain Translation Table
//     (DTT) walked in hardware and cached by a per-core DTTLB; key
//     remapping in hardware with a Range_Flush TLB shootdown.
//   - DomainVirt: hardware domain virtualization — TLB entries carry a
//     10-bit domain ID filled from the Domain Range Table (DRT);
//     per-(domain, thread) permissions live in the Permission Table (PT),
//     cached by a per-core PTLB; no TLB shootdowns.
package core

import (
	"fmt"

	"domainvirt/internal/memlayout"
	"domainvirt/internal/mpk"
	"domainvirt/internal/stats"
)

// DomainID identifies a protection domain; each attached PMO gets one.
// The zero value is the null (domainless) domain.
type DomainID uint32

// NullDomain marks memory not belonging to any domain.
const NullDomain DomainID = 0

// ThreadID identifies a thread within the protected process.
type ThreadID uint32

// SiteID identifies the static code location of a SETPERM/WRPKRU
// instruction, used by the ERIM-style inspection of package core.
type SiteID uint32

// Perm is re-exported from the mpk package for convenience.
type Perm = mpk.Perm

// Permission aliases.
const (
	PermRW   = mpk.PermRW
	PermR    = mpk.PermR
	PermNone = mpk.PermNone
)

// Costs holds the architectural latency parameters of Table II plus the
// cost structure of the libmpk software baseline. All values are cycles.
type Costs struct {
	// WRPKRU is the latency of WRPKRU and of SETPERM (the paper charges
	// the same instruction cost to both so the lowerbound is scheme
	// independent).
	WRPKRU uint64

	// Hardware MPK virtualization.
	FreeKeyCheck uint64 // free-key check/update
	DTTLBHit     uint64 // DTTLB associative search
	DTTLBEntryOp uint64 // add/remove/modify a DTTLB entry
	DTTLBMiss    uint64 // DTT walk on DTTLB miss
	PKRUUpdate   uint64 // hardware PKRU rewrite on key assignment
	TLBInval     uint64 // TLB range invalidation, per participating core

	// Hardware domain virtualization.
	PTLBAccess  uint64 // PTLB lookup on every domain access
	PTLBMiss    uint64 // permission-table lookup on PTLB miss
	PTLBEntryOp uint64 // add/remove/modify a PTLB entry

	// SETPERM is architecturally a fence; SetPermFence is the extra
	// serialization beyond the instruction itself (0 in the paper's
	// accounting, configurable for ablations).
	SetPermFence uint64

	// libmpk software-virtualization cost structure.
	LibmpkTrap    uint64 // protection-fault trap into the kernel
	LibmpkSyscall uint64 // pkey_mprotect syscall entry/exit
	LibmpkPerPTE  uint64 // rewriting one populated PTE's key field
	LibmpkIPI     uint64 // shootdown IPI per remote core
}

// DefaultCosts returns the paper's Table II parameters. The libmpk
// constants are calibrated so a single permission update on an unmapped
// domain costs on the order of the 17.4x-per-update slowdown the libmpk
// paper reports; EXPERIMENTS.md records the calibration.
func DefaultCosts() Costs {
	return Costs{
		WRPKRU:        27,
		FreeKeyCheck:  1,
		DTTLBHit:      1,
		DTTLBEntryOp:  1,
		DTTLBMiss:     30,
		PKRUUpdate:    1,
		TLBInval:      286,
		PTLBAccess:    1,
		PTLBMiss:      30,
		PTLBEntryOp:   1,
		SetPermFence:  0,
		LibmpkTrap:    1100,
		LibmpkSyscall: 600,
		LibmpkPerPTE:  70,
		LibmpkIPI:     286,
	}
}

// Hooks is the machinery the simulator exposes to engines: TLB shootdowns
// and page-table inspection. Engines never touch the TLBs directly.
type Hooks interface {
	// NumCores returns the number of simulated cores.
	NumCores() int
	// FlushTLBRangeAll removes every TLB entry in r on all cores,
	// recording invalidation debt for refill attribution. It returns
	// the number of entries flushed.
	FlushTLBRangeAll(r memlayout.Region) int
	// PopulatedPages counts present PTEs inside r (the per-PTE work of
	// pkey_mprotect is proportional to this).
	PopulatedPages(r memlayout.Region) int
	// SetPTEKeys writes the protection key into every populated PTE in
	// r, returning the number rewritten.
	SetPTEKeys(r memlayout.Region, key uint8) int
}

// AccessCtx describes one load/store presented to an engine for a
// permission check.
type AccessCtx struct {
	Core   int
	Thread ThreadID
	VA     memlayout.VA
	Write  bool
	TLBHit bool
	// Tag is the scheme-defined TLB tag (protection key or domain ID)
	// cached with the translation.
	Tag uint16
}

// Verdict is the outcome of a permission check.
type Verdict struct {
	Allowed bool
	Cycles  uint64 // extra cycles charged by the check
}

// Engine is a protection scheme plugged into the simulated MMU.
//
// All methods return the extra cycles the operation costs; engines also
// attribute those cycles to breakdown categories via the bound Breakdown.
type Engine interface {
	Name() string

	// Bind attaches the engine to the simulator's hooks and accounting
	// sinks. It must be called before any other method.
	Bind(h Hooks, bd *stats.Breakdown, ctr *stats.Counters)

	// Attach registers domain d covering VA region r (the PMO attach
	// system call). Attach-time costs are not charged: the paper
	// excludes one-time setup from the measured overheads.
	Attach(d DomainID, r memlayout.Region) error

	// Detach removes domain d.
	Detach(d DomainID)

	// SetPerm changes the calling thread's permission for domain d
	// (SETPERM instruction / pkey_set call) and returns its cost.
	SetPerm(core int, th ThreadID, d DomainID, p Perm) uint64

	// FillTag resolves the TLB tag for va on a TLB miss and returns any
	// extra cycles the resolution costs beyond the page walk.
	FillTag(core int, th ThreadID, va memlayout.VA) (tag uint16, cycles uint64)

	// Check validates one access.
	Check(ctx AccessCtx) Verdict

	// ContextSwitch installs thread "to" on the core, flushing or
	// reloading thread-private state, and returns the cost.
	ContextSwitch(core int, to ThreadID) uint64

	// DomainOf resolves the domain covering va (for tests and tools).
	DomainOf(va memlayout.VA) DomainID
}

// EventEmitter is implemented by engines that publish discrete
// eviction/shootdown events to an observability sink. Every engine built
// on engineBase implements it; a nil sink (the default) disables emission
// with a single branch on the rare event paths.
type EventEmitter interface {
	SetEventSink(s stats.EventSink)
}

// TagNone is the TLB tag of domainless memory under every scheme.
const TagNone uint16 = 0

// keyTag encodes protection key k as a TLB tag (k+1; 0 means no key, the
// paper's NULL key value).
func keyTag(k uint8) uint16 { return uint16(k) + 1 }

// tagKey decodes a TLB tag into a protection key.
func tagKey(t uint16) (key uint8, ok bool) {
	if t == TagNone {
		return 0, false
	}
	return uint8(t - 1), true
}

// errTooManyDomains is returned by the default-MPK engine when the 16
// allocatable keys are exhausted — the scalability wall motivating the
// paper.
type errTooManyDomains struct{ d DomainID }

func (e errTooManyDomains) Error() string {
	return fmt.Sprintf("core: cannot attach domain %d: all %d protection keys allocated", e.d, mpk.NumKeys)
}
