package core

import (
	"testing"

	"domainvirt/internal/stats"
)

func TestBaselineAndLowerbound(t *testing.T) {
	costs := DefaultCosts()
	for _, e := range []Engine{NewBaseline(costs), NewLowerbound(costs)} {
		bindEngine(t, e, 1)
		if e.Name() == "" {
			t.Error("empty engine name")
		}
		r := regionFor(0)
		if err := e.Attach(1, r); err != nil {
			t.Fatalf("%s: %v", e.Name(), err)
		}
		if e.DomainOf(r.Base) != 1 {
			t.Errorf("%s: DomainOf lost the attachment", e.Name())
		}
		// Both engines allow everything; only lowerbound charges for
		// SETPERM.
		if v := access(e, 0, 1, r.Base, true); !v.Allowed {
			t.Errorf("%s denied an access", e.Name())
		}
		cost := e.SetPerm(0, 1, 1, PermNone)
		if e.Name() == "baseline" && cost != 0 {
			t.Errorf("baseline charged %d for SETPERM", cost)
		}
		if e.Name() == "lowerbound" && cost != costs.WRPKRU {
			t.Errorf("lowerbound charged %d, want %d", cost, costs.WRPKRU)
		}
		// Even after revoking: ideal schemes do not enforce.
		if v := access(e, 0, 1, r.Base, true); !v.Allowed {
			t.Errorf("%s enforces but should be ideal", e.Name())
		}
		if c := e.ContextSwitch(0, 2); c != 0 {
			t.Errorf("%s context switch cost %d", e.Name(), c)
		}
		e.Detach(1)
		if e.DomainOf(r.Base) != NullDomain {
			t.Errorf("%s: detach did not remove the domain", e.Name())
		}
	}
}

func TestEnginesDetachSemantics(t *testing.T) {
	for name, e := range allEngines(1) {
		h, _, _ := bindEngine(t, e, 1)
		r := regionFor(0)
		if err := e.Attach(1, r); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		h.populate(r, 4)
		e.SetPerm(0, 1, 1, PermRW)
		if v := access(e, 0, 1, r.Base, true); !v.Allowed {
			t.Fatalf("%s: pre-detach access denied", name)
		}
		e.Detach(1)
		if e.DomainOf(r.Base) != NullDomain {
			t.Errorf("%s: domain survives detach", name)
		}
		// Re-attaching a fresh domain over the same region must start
		// with no permission — the old grant must not leak.
		if err := e.Attach(2, r); err != nil {
			t.Fatalf("%s: reattach: %v", name, err)
		}
		if v := access(e, 0, 1, r.Base, true); v.Allowed {
			t.Errorf("%s: permission leaked across detach/reattach", name)
		}
	}
}

func TestEnginesDoubleDetachHarmless(t *testing.T) {
	for name, e := range allEngines(1) {
		bindEngine(t, e, 1)
		if err := e.Attach(1, regionFor(0)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		e.Detach(1)
		e.Detach(1) // must not panic
		e.Detach(9) // never attached
	}
}

func TestMPKVirtSetPermBeforeKeyAssignment(t *testing.T) {
	// SETPERM on a keyless domain only updates the DTT; the later access
	// assigns the key and must honour the recorded permission.
	e := NewMPKVirt(DefaultCosts(), 1, 16)
	bindEngine(t, e, 1)
	if err := e.Attach(1, regionFor(0)); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.KeyOf(1); ok {
		t.Fatal("key assigned at attach time")
	}
	e.SetPerm(0, 1, 1, PermR)
	if v := access(e, 0, 1, regionFor(0).Base, false); !v.Allowed {
		t.Error("read denied despite DTT-recorded R permission")
	}
	if v := access(e, 0, 1, regionFor(0).Base, true); v.Allowed {
		t.Error("write allowed with only R")
	}
	if _, ok := e.KeyOf(1); !ok {
		t.Error("access did not assign a key")
	}
}

func TestMPKVirtContextSwitchReconstructsPKRU(t *testing.T) {
	// Thread 1 has RW, thread 2 has R for the same domain; switching
	// threads on the core must swap the enforced view even on TLB hits
	// (the PKRU is rebuilt from the DTT).
	e := NewMPKVirt(DefaultCosts(), 1, 16)
	bindEngine(t, e, 1)
	r := regionFor(0)
	if err := e.Attach(1, r); err != nil {
		t.Fatal(err)
	}
	e.SetPerm(0, 1, 1, PermRW)
	e.ContextSwitch(0, 2)
	e.SetPerm(0, 2, 1, PermR)

	tag, _ := e.FillTag(0, 2, r.Base)
	if v := e.Check(AccessCtx{Core: 0, Thread: 2, VA: r.Base, Write: true, TLBHit: true, Tag: tag}); v.Allowed {
		t.Error("thread 2 wrote with thread 1's permission")
	}
	e.ContextSwitch(0, 1)
	// Same cached TLB tag, different thread: now writable.
	if v := e.Check(AccessCtx{Core: 0, Thread: 1, VA: r.Base, Write: true, TLBHit: true, Tag: tag}); !v.Allowed {
		t.Error("thread 1 lost its permission across switches")
	}
}

func TestLibmpkMappedDomainsBounded(t *testing.T) {
	e := NewLibmpk(DefaultCosts(), 1)
	h, _, _ := bindEngine(t, e, 1)
	for i := 0; i < 40; i++ {
		r := regionFor(i)
		if err := e.Attach(DomainID(i+1), r); err != nil {
			t.Fatal(err)
		}
		h.populate(r, 2)
		e.SetPerm(0, 1, DomainID(i+1), PermRW)
		if got := e.MappedDomains(); got > 16 {
			t.Fatalf("mapped domains = %d > 16 keys", got)
		}
	}
	if got := e.MappedDomains(); got != 16 {
		t.Errorf("steady-state mapped domains = %d, want 16", got)
	}
}

func TestErrTooManyDomainsMessage(t *testing.T) {
	err := errTooManyDomains{d: 17}
	if err.Error() == "" {
		t.Error("empty error")
	}
}

func TestDomainVirtCapacity(t *testing.T) {
	e := NewDomainVirt(DefaultCosts(), 1, 16)
	bindEngine(t, e, 1)
	if err := e.Attach(DomainID(MaxDomainVirtDomains+1), regionFor(0)); err == nil {
		t.Error("domain beyond the 10-bit tag capacity accepted")
	}
	if err := e.Attach(DomainID(MaxDomainVirtDomains), regionFor(1)); err != nil {
		t.Errorf("1024th domain rejected: %v", err)
	}
}

func TestEngineCostsAttribution(t *testing.T) {
	// Every eviction's invalidation cycles must land in CatTLBInval and
	// nowhere else for the mpkvirt engine.
	e := NewMPKVirt(DefaultCosts(), 1, 16)
	_, bd, _ := bindEngine(t, e, 1)
	for i := 0; i < 17; i++ {
		if err := e.Attach(DomainID(i+1), regionFor(i)); err != nil {
			t.Fatal(err)
		}
		e.SetPerm(0, 1, DomainID(i+1), PermRW)
		access(e, 0, 1, regionFor(i).Base, true)
	}
	if bd.Cycles[stats.CatTLBInval] == 0 {
		t.Error("no invalidation cycles recorded")
	}
	if bd.Cycles[stats.CatTrap] != 0 || bd.Cycles[stats.CatSyscall] != 0 || bd.Cycles[stats.CatPTEWrite] != 0 {
		t.Error("hardware scheme charged software-baseline categories")
	}
}
