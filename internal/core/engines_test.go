package core

import (
	"math/rand"
	"testing"

	"domainvirt/internal/memlayout"
	"domainvirt/internal/pagetable"
	"domainvirt/internal/stats"
)

// fakeHooks gives engines a page table and records shootdowns without a
// full machine.
type fakeHooks struct {
	cores   int
	pt      *pagetable.Table
	flushes []memlayout.Region
}

func newFakeHooks(cores int) *fakeHooks {
	return &fakeHooks{cores: cores, pt: pagetable.New()}
}

func (h *fakeHooks) NumCores() int { return h.cores }

func (h *fakeHooks) FlushTLBRangeAll(r memlayout.Region) int {
	h.flushes = append(h.flushes, r)
	return h.pt.PopulatedPages(r)
}

func (h *fakeHooks) PopulatedPages(r memlayout.Region) int { return h.pt.PopulatedPages(r) }

func (h *fakeHooks) SetPTEKeys(r memlayout.Region, key uint8) int { return h.pt.SetKey(r, key) }

// populate maps n pages at the start of region r.
func (h *fakeHooks) populate(r memlayout.Region, n int) {
	for i := 0; i < n; i++ {
		va := r.Base + memlayout.VA(i*memlayout.PageSize)
		h.pt.Map(va, memlayout.PA(va), true)
	}
}

func bindEngine(t *testing.T, e Engine, cores int) (*fakeHooks, *stats.Breakdown, *stats.Counters) {
	t.Helper()
	h := newFakeHooks(cores)
	bd := &stats.Breakdown{}
	ctr := &stats.Counters{}
	e.Bind(h, bd, ctr)
	e.ContextSwitch(0, 1)
	return h, bd, ctr
}

func regionFor(i int) memlayout.Region {
	return memlayout.Region{Base: memlayout.VA(0x2000_0000_0000 + uint64(i)<<21), Size: 2 << 20}
}

// access runs the full TLB-miss access path of an engine: FillTag then
// Check, as the simulator does.
func access(e Engine, coreID int, th ThreadID, va memlayout.VA, write bool) Verdict {
	tag, _ := e.FillTag(coreID, th, va)
	return e.Check(AccessCtx{Core: coreID, Thread: th, VA: va, Write: write, Tag: tag})
}

func allEngines(cores int) map[string]Engine {
	costs := DefaultCosts()
	return map[string]Engine{
		"mpk":        NewMPK(costs, cores),
		"libmpk":     NewLibmpk(costs, cores),
		"mpkvirt":    NewMPKVirt(costs, cores, 16),
		"domainvirt": NewDomainVirt(costs, cores, 16),
	}
}

func TestEnginesTemporalIsolation(t *testing.T) {
	// Figure 2(a): +R allows loads only; +W allows stores; -R -W denies.
	for name, e := range allEngines(1) {
		bindEngine(t, e, 1)
		r := regionFor(0)
		if err := e.Attach(1, r); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		va := r.Base + 64

		if v := access(e, 0, 1, va, false); v.Allowed {
			t.Errorf("%s: load allowed before any permission", name)
		}
		e.SetPerm(0, 1, 1, PermR)
		if v := access(e, 0, 1, va, false); !v.Allowed {
			t.Errorf("%s: load denied after +R", name)
		}
		if v := access(e, 0, 1, va, true); v.Allowed {
			t.Errorf("%s: store allowed with only R", name)
		}
		e.SetPerm(0, 1, 1, PermRW)
		if v := access(e, 0, 1, va, true); !v.Allowed {
			t.Errorf("%s: store denied after +W", name)
		}
		e.SetPerm(0, 1, 1, PermNone)
		if v := access(e, 0, 1, va, false); v.Allowed {
			t.Errorf("%s: load allowed after -R -W", name)
		}
	}
}

func TestEnginesSpatialIsolation(t *testing.T) {
	// Figure 2(b): permissions are thread-specific.
	for name, e := range allEngines(2) {
		bindEngine(t, e, 2)
		e.ContextSwitch(1, 2)
		r := regionFor(0)
		if err := e.Attach(1, r); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		va := r.Base + 128

		e.SetPerm(0, 1, 1, PermRW) // thread 1 (core 0) gets RW
		if v := access(e, 0, 1, va, true); !v.Allowed {
			t.Errorf("%s: owning thread denied", name)
		}
		// Thread 2 on core 1 never obtained permission.
		if v := access(e, 1, 2, va, false); v.Allowed {
			t.Errorf("%s: foreign thread load allowed", name)
		}
		if v := access(e, 1, 2, va, true); v.Allowed {
			t.Errorf("%s: foreign thread store allowed", name)
		}
		// Granting R to thread 2 allows loads but not stores.
		e.SetPerm(1, 2, 1, PermR)
		if v := access(e, 1, 2, va, false); !v.Allowed {
			t.Errorf("%s: thread 2 load denied after +R", name)
		}
		if v := access(e, 1, 2, va, true); v.Allowed {
			t.Errorf("%s: thread 2 store allowed with R", name)
		}
	}
}

func TestEnginesDomainlessAccess(t *testing.T) {
	for name, e := range allEngines(1) {
		bindEngine(t, e, 1)
		v := access(e, 0, 1, 0x1000, true)
		if !v.Allowed {
			t.Errorf("%s: domainless access denied", name)
		}
		if v.Cycles != 0 {
			t.Errorf("%s: domainless access charged %d cycles", name, v.Cycles)
		}
	}
}

func TestMPKDomainLimit(t *testing.T) {
	e := NewMPK(DefaultCosts(), 1)
	bindEngine(t, e, 1)
	for i := 0; i < 16; i++ {
		if err := e.Attach(DomainID(i+1), regionFor(i)); err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
	}
	if err := e.Attach(17, regionFor(16)); err == nil {
		t.Fatal("17th domain attached: the MPK wall is gone")
	}
	// Detaching frees a key for reuse.
	e.Detach(1)
	if err := e.Attach(17, regionFor(16)); err != nil {
		t.Fatalf("attach after detach: %v", err)
	}
}

func TestVirtualizedEnginesScalePast16(t *testing.T) {
	for _, name := range []string{"libmpk", "mpkvirt", "domainvirt"} {
		e := allEngines(1)[name]
		bindEngine(t, e, 1)
		for i := 0; i < 64; i++ {
			if err := e.Attach(DomainID(i+1), regionFor(i)); err != nil {
				t.Fatalf("%s: attach %d: %v", name, i, err)
			}
		}
		// All 64 domains usable by one thread.
		for i := 0; i < 64; i++ {
			e.SetPerm(0, 1, DomainID(i+1), PermRW)
			va := regionFor(i).Base
			if v := access(e, 0, 1, va, true); !v.Allowed {
				t.Errorf("%s: domain %d denied after grant", name, i+1)
			}
		}
	}
}

func TestLibmpkEvictionCosts(t *testing.T) {
	e := NewLibmpk(DefaultCosts(), 1)
	h, bd, ctr := bindEngine(t, e, 1)
	// 17 domains, 8 populated pages each.
	for i := 0; i < 17; i++ {
		r := regionFor(i)
		if err := e.Attach(DomainID(i+1), r); err != nil {
			t.Fatal(err)
		}
		h.populate(r, 8)
	}
	// Map in the first 16: no evictions, but PTE writes for each map-in.
	for i := 0; i < 16; i++ {
		e.SetPerm(0, 1, DomainID(i+1), PermRW)
	}
	if ctr.Evictions != 0 {
		t.Fatalf("evictions = %d before keys exhausted", ctr.Evictions)
	}
	pteBefore := bd.Counts[stats.CatPTEWrite]
	// The 17th forces an eviction: victim strip + incoming set = 16 PTEs.
	cost := e.SetPerm(0, 1, 17, PermRW)
	if ctr.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", ctr.Evictions)
	}
	if got := bd.Counts[stats.CatPTEWrite] - pteBefore; got != 16 {
		t.Errorf("PTE writes on eviction = %d, want 16 (8 victim + 8 incoming)", got)
	}
	if len(h.flushes) == 0 {
		t.Error("no TLB shootdown issued")
	}
	minCost := DefaultCosts().LibmpkSyscall*2 + 16*DefaultCosts().LibmpkPerPTE
	if cost < minCost {
		t.Errorf("eviction cost %d below floor %d", cost, minCost)
	}
}

func TestLibmpkFaultDrivenRemapOnRead(t *testing.T) {
	e := NewLibmpk(DefaultCosts(), 1)
	h, _, ctr := bindEngine(t, e, 1)
	for i := 0; i < 17; i++ {
		r := regionFor(i)
		if err := e.Attach(DomainID(i+1), r); err != nil {
			t.Fatal(err)
		}
		h.populate(r, 4)
		e.SetPerm(0, 1, DomainID(i+1), PermR) // register read perm
	}
	// Registering the 17th evicted domain 1 (LRU). A read to domain 1
	// must fault into the handler, remap, and then be allowed.
	evBefore := ctr.Evictions
	v := access(e, 0, 1, regionFor(0).Base, false)
	if !v.Allowed {
		t.Fatal("read denied despite registered R permission")
	}
	if v.Cycles < DefaultCosts().LibmpkTrap {
		t.Errorf("fault-driven remap cost %d below trap cost", v.Cycles)
	}
	if ctr.Evictions != evBefore+1 {
		t.Errorf("remap did not evict (evictions %d -> %d)", evBefore, ctr.Evictions)
	}
}

func TestMPKVirtKeyReuseAndShootdown(t *testing.T) {
	e := NewMPKVirt(DefaultCosts(), 1, 16)
	h, bd, ctr := bindEngine(t, e, 1)
	for i := 0; i < 17; i++ {
		if err := e.Attach(DomainID(i+1), regionFor(i)); err != nil {
			t.Fatal(err)
		}
		e.SetPerm(0, 1, DomainID(i+1), PermRW)
	}
	// Touch 16 domains: keys assigned, no evictions.
	for i := 0; i < 16; i++ {
		if v := access(e, 0, 1, regionFor(i).Base, true); !v.Allowed {
			t.Fatalf("domain %d denied", i+1)
		}
	}
	if ctr.Evictions != 0 {
		t.Fatalf("evictions = %d with 16 domains", ctr.Evictions)
	}
	if len(h.flushes) != 0 {
		t.Fatalf("shootdowns issued without eviction: %v", h.flushes)
	}
	// The 17th domain evicts a victim and shoots down its range.
	if v := access(e, 0, 1, regionFor(16).Base, true); !v.Allowed {
		t.Fatal("17th domain denied")
	}
	if ctr.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", ctr.Evictions)
	}
	if len(h.flushes) != 1 {
		t.Fatalf("shootdowns = %d, want 1", len(h.flushes))
	}
	if bd.Cycles[stats.CatTLBInval] < DefaultCosts().TLBInval {
		t.Errorf("TLB invalidation cycles = %d", bd.Cycles[stats.CatTLBInval])
	}
	// The victim's region was the one flushed.
	victimFound := false
	for i := 0; i < 16; i++ {
		if h.flushes[0] == regionFor(i) {
			victimFound = true
		}
	}
	if !victimFound {
		t.Errorf("flushed region %v is not a victim domain", h.flushes[0])
	}
	// The evicted domain's key was reassigned; it no longer has one.
	withKeys := 0
	for i := 0; i < 17; i++ {
		if _, ok := e.KeyOf(DomainID(i + 1)); ok {
			withKeys++
		}
	}
	if withKeys != 16 {
		t.Errorf("domains holding keys = %d, want 16", withKeys)
	}
}

func TestMPKVirtDTTLBCounting(t *testing.T) {
	e := NewMPKVirt(DefaultCosts(), 1, 16)
	_, _, ctr := bindEngine(t, e, 1)
	if err := e.Attach(1, regionFor(0)); err != nil {
		t.Fatal(err)
	}
	e.SetPerm(0, 1, 1, PermRW)
	va := regionFor(0).Base
	access(e, 0, 1, va, true) // first: DTTLB miss
	access(e, 0, 1, va, true) // second: DTTLB hit
	if ctr.DTTLBMisses != 1 || ctr.DTTLBHits != 1 {
		t.Errorf("DTTLB hits/misses = %d/%d, want 1/1", ctr.DTTLBHits, ctr.DTTLBMisses)
	}
}

func TestDomainVirtNoShootdowns(t *testing.T) {
	e := NewDomainVirt(DefaultCosts(), 1, 16)
	h, _, ctr := bindEngine(t, e, 1)
	for i := 0; i < 64; i++ {
		if err := e.Attach(DomainID(i+1), regionFor(i)); err != nil {
			t.Fatal(err)
		}
		e.SetPerm(0, 1, DomainID(i+1), PermRW)
	}
	for round := 0; round < 3; round++ {
		for i := 0; i < 64; i++ {
			if v := access(e, 0, 1, regionFor(i).Base, true); !v.Allowed {
				t.Fatalf("domain %d denied", i+1)
			}
		}
	}
	if len(h.flushes) != 0 {
		t.Errorf("domain virtualization issued %d shootdowns; the design requires zero", len(h.flushes))
	}
	if ctr.PTLBMisses == 0 {
		t.Error("expected PTLB misses with 64 domains over 16 entries")
	}
}

func TestDomainVirtPTLBHitCost(t *testing.T) {
	e := NewDomainVirt(DefaultCosts(), 1, 16)
	bindEngine(t, e, 1)
	if err := e.Attach(1, regionFor(0)); err != nil {
		t.Fatal(err)
	}
	e.SetPerm(0, 1, 1, PermRW)
	va := regionFor(0).Base
	access(e, 0, 1, va, true)
	v := access(e, 0, 1, va, true)
	if v.Cycles != DefaultCosts().PTLBAccess {
		t.Errorf("PTLB-hit access cost = %d, want %d", v.Cycles, DefaultCosts().PTLBAccess)
	}
}

func TestDomainVirtContextSwitchKeepsTLB(t *testing.T) {
	// Context switches flush the PTLB but the engine must never request
	// TLB flushes.
	e := NewDomainVirt(DefaultCosts(), 1, 16)
	h, _, _ := bindEngine(t, e, 1)
	if err := e.Attach(1, regionFor(0)); err != nil {
		t.Fatal(err)
	}
	e.SetPerm(0, 1, 1, PermRW)
	access(e, 0, 1, regionFor(0).Base, true)
	e.ContextSwitch(0, 2)
	if len(h.flushes) != 0 {
		t.Error("context switch triggered TLB flushes")
	}
	// Thread 2 has no permission: denied even though the TLB would hit.
	if v := access(e, 0, 2, regionFor(0).Base, false); v.Allowed {
		t.Error("thread 2 inherited thread 1's permission across a switch")
	}
}

// TestProtectionEquivalence replays a random trace of attach/setperm/
// access operations through every engine and demands identical verdicts:
// the schemes differ in cost, never in policy.
func TestProtectionEquivalence(t *testing.T) {
	const domains = 40
	rng := rand.New(rand.NewSource(99))
	type op struct {
		kind  int // 0 setperm, 1 access
		th    ThreadID
		d     int
		perm  Perm
		write bool
		off   uint64
	}
	var ops []op
	for i := 0; i < 4000; i++ {
		o := op{
			kind:  rng.Intn(2),
			th:    ThreadID(1 + rng.Intn(2)),
			d:     rng.Intn(domains),
			perm:  []Perm{PermRW, PermR, PermNone}[rng.Intn(3)],
			write: rng.Intn(2) == 0,
			off:   uint64(rng.Intn(1 << 20)),
		}
		ops = append(ops, o)
	}

	engines := map[string]Engine{
		"libmpk":     NewLibmpk(DefaultCosts(), 2),
		"mpkvirt":    NewMPKVirt(DefaultCosts(), 2, 16),
		"domainvirt": NewDomainVirt(DefaultCosts(), 2, 16),
	}
	verdicts := make(map[string][]bool)
	for name, e := range engines {
		h := newFakeHooks(2)
		e.Bind(h, &stats.Breakdown{}, &stats.Counters{})
		e.ContextSwitch(0, 1)
		e.ContextSwitch(1, 2)
		for i := 0; i < domains; i++ {
			r := regionFor(i)
			if err := e.Attach(DomainID(i+1), r); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			h.populate(r, 4)
		}
		for _, o := range ops {
			coreID := int(o.th) - 1
			if o.kind == 0 {
				e.SetPerm(coreID, o.th, DomainID(o.d+1), o.perm)
			} else {
				va := regionFor(o.d).Base + memlayout.VA(o.off)
				v := access(e, coreID, o.th, va, o.write)
				verdicts[name] = append(verdicts[name], v.Allowed)
			}
		}
	}
	ref := verdicts["domainvirt"]
	for name, vs := range verdicts {
		if len(vs) != len(ref) {
			t.Fatalf("%s: %d verdicts vs %d", name, len(vs), len(ref))
		}
		for i := range vs {
			if vs[i] != ref[i] {
				t.Fatalf("%s disagrees with domainvirt at access %d: %v vs %v", name, i, vs[i], ref[i])
			}
		}
	}
}
