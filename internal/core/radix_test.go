package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"domainvirt/internal/memlayout"
)

func TestDomainTableBasic(t *testing.T) {
	dt := NewDomainTable()
	r := memlayout.Region{Base: 0x2000_0000_0000, Size: 8 << 20} // 8 MB PMO
	if err := dt.Insert(7, r); err != nil {
		t.Fatal(err)
	}
	if d, _ := dt.Lookup(r.Base); d != 7 {
		t.Errorf("Lookup(base) = %d, want 7", d)
	}
	if d, _ := dt.Lookup(r.End() - 1); d != 7 {
		t.Errorf("Lookup(end-1) = %d, want 7", d)
	}
	if d, _ := dt.Lookup(r.End()); d != NullDomain {
		t.Errorf("Lookup(end) = %d, want null", d)
	}
	if d, _ := dt.Lookup(r.Base - 1); d != NullDomain {
		t.Errorf("Lookup(base-1) = %d, want null", d)
	}
	got, ok := dt.Region(7)
	if !ok || got != r {
		t.Errorf("Region(7) = (%v,%v)", got, ok)
	}
	if !dt.Remove(7) {
		t.Fatal("Remove failed")
	}
	if d, _ := dt.Lookup(r.Base); d != NullDomain {
		t.Error("domain survives removal")
	}
	if dt.Remove(7) {
		t.Error("double remove succeeded")
	}
}

func TestDomainTableErrors(t *testing.T) {
	dt := NewDomainTable()
	if err := dt.Insert(NullDomain, memlayout.Region{Base: 0, Size: 4096}); err == nil {
		t.Error("null domain accepted")
	}
	// Misaligned base for a 2 MB-level PMO.
	if err := dt.Insert(1, memlayout.Region{Base: 4096, Size: 2 << 20}); err == nil {
		t.Error("misaligned region accepted")
	}
	r := memlayout.Region{Base: 1 << 30, Size: 2 << 20}
	if err := dt.Insert(1, r); err != nil {
		t.Fatal(err)
	}
	if err := dt.Insert(1, memlayout.Region{Base: 2 << 30, Size: 4096}); err == nil {
		t.Error("duplicate domain accepted")
	}
	if err := dt.Insert(2, r); err == nil {
		t.Error("overlapping region accepted")
	}
	// Overlap at a different granularity: a 4 KB PMO inside the 2 MB one.
	if err := dt.Insert(3, memlayout.Region{Base: 1 << 30, Size: 4096}); err == nil {
		t.Error("nested region accepted")
	}
}

func TestDomainTableMultiSlot(t *testing.T) {
	// A 2 GB PMO occupies two consecutive 1 GB slots.
	dt := NewDomainTable()
	r := memlayout.Region{Base: 2 << 30, Size: 2 << 30}
	if err := dt.Insert(9, r); err != nil {
		t.Fatal(err)
	}
	for _, va := range []memlayout.VA{r.Base, r.Base + 1<<30, r.End() - 1} {
		if d, _ := dt.Lookup(va); d != 9 {
			t.Errorf("Lookup(%#x) = %d, want 9", uint64(va), d)
		}
	}
	dt.Remove(9)
	if d, _ := dt.Lookup(r.Base + 1<<30); d != NullDomain {
		t.Error("second slot survives removal")
	}
}

func TestDomainTableAgainstNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dt := NewDomainTable()
		type entry struct {
			d DomainID
			r memlayout.Region
		}
		var entries []entry
		// Attach PMOs of varied sizes at pool-allocator-style bases.
		next := uint64(0x2000_0000_0000)
		for i := 0; i < 40; i++ {
			size := []uint64{4096, 64 << 10, 2 << 20, 8 << 20}[rng.Intn(4)]
			_, _, fp := memlayout.AttachLevel(size)
			align := fp
			for align&(align-1) != 0 {
				align++
			}
			base := memlayout.AlignUp(next, align)
			r := memlayout.Region{Base: memlayout.VA(base), Size: fp}
			next = base + fp
			d := DomainID(i + 1)
			if err := dt.Insert(d, r); err != nil {
				t.Fatalf("insert %v: %v", r, err)
			}
			entries = append(entries, entry{d, r})
		}
		naive := func(va memlayout.VA) DomainID {
			for _, e := range entries {
				if e.r.Contains(va) {
					return e.d
				}
			}
			return NullDomain
		}
		for i := 0; i < 500; i++ {
			va := memlayout.VA(0x2000_0000_0000 + uint64(rng.Int63n(int64(next-0x2000_0000_0000+4096))))
			got, _ := dt.Lookup(va)
			if got != naive(va) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDomainTableForEach(t *testing.T) {
	dt := NewDomainTable()
	for i := 1; i <= 5; i++ {
		r := memlayout.Region{Base: memlayout.VA(i) << 30, Size: 4096}
		if err := dt.Insert(DomainID(i), r); err != nil {
			t.Fatal(err)
		}
	}
	if dt.Len() != 5 {
		t.Errorf("Len = %d", dt.Len())
	}
	seen := 0
	dt.ForEach(func(d DomainID, r memlayout.Region) { seen++ })
	if seen != 5 {
		t.Errorf("ForEach visited %d", seen)
	}
}
