package core

import (
	"fmt"
	"sort"
	"sync"
)

// Inspector implements the ERIM-style call-gate discipline the paper's
// threat model relies on: "user-level permission change instructions can
// only be inserted by the programmer or compiler. We can prevent the
// attacker from injecting or reusing these instructions by implementing
// call gates and performing binary inspection and rewriting similar to
// ERIM."
//
// Every SETPERM/WRPKRU site in a program is registered (the binary
// inspection step); at run time, permission changes from unregistered
// sites are reported as violations, modeling an attacker reusing or
// injecting a permission-change gadget.
type Inspector struct {
	mu       sync.Mutex
	approved map[SiteID]string
	// violations records rejected permission changes.
	violations []Violation
}

// Violation is one rejected permission change.
type Violation struct {
	Site   SiteID
	Thread ThreadID
	Domain DomainID
	Perm   Perm
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("SETPERM from unapproved site %d (thread %d, domain %d, perm %s)", v.Site, v.Thread, v.Domain, v.Perm)
}

// NewInspector returns an inspector with no approved sites.
func NewInspector() *Inspector {
	return &Inspector{approved: make(map[SiteID]string)}
}

// Approve registers a permission-change site discovered by binary
// inspection, with a label for diagnostics.
func (in *Inspector) Approve(site SiteID, label string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.approved[site] = label
}

// Allow reports whether a SETPERM from site may proceed; a rejection is
// recorded as a violation.
func (in *Inspector) Allow(site SiteID, th ThreadID, d DomainID, p Perm) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	if _, ok := in.approved[site]; ok {
		return true
	}
	in.violations = append(in.violations, Violation{Site: site, Thread: th, Domain: d, Perm: p})
	return false
}

// Violations returns the recorded violations.
func (in *Inspector) Violations() []Violation {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Violation, len(in.violations))
	copy(out, in.violations)
	return out
}

// ApprovedSites returns the registered sites in ascending order.
func (in *Inspector) ApprovedSites() []SiteID {
	in.mu.Lock()
	defer in.mu.Unlock()
	sites := make([]SiteID, 0, len(in.approved))
	for s := range in.approved {
		sites = append(sites, s)
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	return sites
}
