package core

import (
	"fmt"

	"domainvirt/internal/memlayout"
	"domainvirt/internal/stats"
)

// MaxDomainVirtDomains is the domain-ID capacity of the TLB extension in
// the paper's base design (a 10-bit domain ID per TLB entry).
const MaxDomainVirtDomains = 1 << 10

// ptlbEntry is one PTLB slot: a cached (domain → permission) binding with
// valid and dirty bits. One struct per slot keeps the lookup scan on a
// single contiguous array with one bounds check, instead of four parallel
// slices.
type ptlbEntry struct {
	domain DomainID
	perm   Perm
	valid  bool
	dirty  bool
}

// ptlb is one core's Permission Table Lookaside Buffer: a small
// fully-associative cache of (domain → permission) for the thread running
// on the core, with a dirty bit per entry and pseudo-LRU replacement.
type ptlb struct {
	ents []ptlbEntry
	plru *PLRU
}

func newPTLB(entries int) *ptlb {
	return &ptlb{
		ents: make([]ptlbEntry, entries),
		plru: NewPLRU(entries),
	}
}

func (t *ptlb) lookup(d DomainID) int {
	for i := range t.ents {
		if t.ents[i].valid && t.ents[i].domain == d {
			return i
		}
	}
	return -1
}

// insert fills (d, p), evicting the PLRU victim; it returns the slot the
// entry landed in, whether a valid victim was displaced, and whether that
// dirty victim had to be written back to the Permission Table.
func (t *ptlb) insert(d DomainID, p Perm) (slot int, evicted, wroteBack bool) {
	slot = -1
	for i := range t.ents {
		if !t.ents[i].valid {
			slot = i
			break
		}
	}
	if slot < 0 {
		slot = t.plru.Victim()
		evicted = true
		wroteBack = t.ents[slot].dirty
	}
	t.ents[slot] = ptlbEntry{domain: d, perm: p, valid: true}
	t.plru.Touch(slot)
	return slot, evicted, wroteBack
}

func (t *ptlb) flush() (dirty int) {
	for i := range t.ents {
		if t.ents[i].valid && t.ents[i].dirty {
			dirty++
		}
		t.ents[i].valid = false
		t.ents[i].dirty = false
	}
	return dirty
}

// DomainVirt is the hardware domain-virtualization engine (Section IV-E).
// It foregoes protection keys entirely: TLB entries carry a 10-bit domain
// ID filled from the Domain Range Table on TLB misses (walked in parallel
// with the page walk, so free), and every domain access looks up the
// per-core PTLB — 1 cycle on a hit, a 30-cycle Permission Table lookup on
// a miss. Nothing is shot down when permissions or the domain working set
// change, which is what makes the design scale.
type DomainVirt struct {
	engineBase
	pt      map[DomainID]map[ThreadID]Perm // Permission Table (OS-managed)
	ptlbs   []*ptlb
	current []ThreadID
}

// NewDomainVirt returns a domain-virtualization engine for ncores cores
// with ptlbEntries PTLB entries per core (16 in the paper).
func NewDomainVirt(costs Costs, ncores, ptlbEntries int) *DomainVirt {
	e := &DomainVirt{
		pt:      make(map[DomainID]map[ThreadID]Perm),
		current: make([]ThreadID, ncores),
	}
	e.init(costs)
	for i := 0; i < ncores; i++ {
		e.ptlbs = append(e.ptlbs, newPTLB(ptlbEntries))
	}
	return e
}

// Name implements Engine.
func (e *DomainVirt) Name() string { return "domainvirt" }

// Attach implements Engine: the attach system call adds DRT and PT
// entries.
func (e *DomainVirt) Attach(d DomainID, r memlayout.Region) error {
	if d > MaxDomainVirtDomains {
		return fmt.Errorf("core: domain %d exceeds the %d-domain TLB tag capacity", d, MaxDomainVirtDomains)
	}
	if err := e.table.Insert(d, r); err != nil {
		return err
	}
	e.pt[d] = make(map[ThreadID]Perm)
	return nil
}

// Detach implements Engine. Like munmap, detach invalidates the region's
// translations: TLB entries still carrying this domain's ID would
// otherwise keep denying the (now domainless) range after the PT entry is
// gone, where every other scheme allows it. The design's no-shootdown
// property concerns permission changes, not address-space changes.
func (e *DomainVirt) Detach(d DomainID) {
	if r, ok := e.table.Region(d); ok && e.hooks != nil {
		e.hooks.FlushTLBRangeAll(r)
	}
	e.table.Remove(d)
	delete(e.pt, d)
	for _, t := range e.ptlbs {
		if i := t.lookup(d); i >= 0 {
			t.ents[i].valid = false
			t.ents[i].dirty = false
		}
	}
}

func (e *DomainVirt) ptPerm(d DomainID, th ThreadID) Perm {
	if m, ok := e.pt[d]; ok {
		if p, ok := m[th]; ok {
			return p
		}
	}
	return PermNone
}

// SetPerm implements Engine: SETPERM completes entirely in the PTLB,
// directly changing the domain permission and setting the dirty bit.
func (e *DomainVirt) SetPerm(coreID int, th ThreadID, d DomainID, p Perm) uint64 {
	m, ok := e.pt[d]
	if !ok {
		return 0
	}
	m[th] = p // functionally eager; the dirty bit drives the cost model
	t := e.ptlbs[coreID]
	c := e.costs.WRPKRU + e.costs.SetPermFence
	e.bd.Add(stats.CatPermSwitch, c)
	e.ctr.PermSwitches++
	if i := t.lookup(d); i >= 0 {
		t.ents[i].perm = p
		t.ents[i].dirty = true
		t.plru.Touch(i)
		return c
	}
	slot, evicted, wroteBack := t.insert(d, p)
	if evicted {
		e.emit(coreID, stats.EvPTLBEviction, 1)
	}
	if wroteBack {
		c += e.costs.PTLBEntryOp
		e.bd.Add(stats.CatEntryChange, e.costs.PTLBEntryOp)
	}
	t.ents[slot].dirty = true
	return c
}

// FillTag implements Engine: on a TLB miss the DRT is walked in parallel
// with the page table walk — the DRT is shallower, so no extra cycles —
// and the domain ID is merged into the new TLB entry.
func (e *DomainVirt) FillTag(_ int, _ ThreadID, va memlayout.VA) (uint16, uint64) {
	d, _ := e.table.Lookup(va)
	return uint16(d), 0
}

// Check implements Engine: every domain access pays the 1-cycle PTLB
// lookup (the "access latency" of Table VII); a PTLB miss adds the
// 30-cycle Permission Table lookup and an entry fill.
func (e *DomainVirt) Check(ctx AccessCtx) Verdict {
	v, _ := e.CheckFill(ctx)
	return v
}

// CheckFill is Check returning, additionally, the PTLB slot now holding
// the checked domain (-1 for a domainless access), so the simulator's
// last-translation fast path can replay repeated same-page checks via
// CheckRepeat without rescanning the PTLB.
func (e *DomainVirt) CheckFill(ctx AccessCtx) (Verdict, int) {
	d := DomainID(ctx.Tag)
	if d == NullDomain {
		return Verdict{Allowed: true}, -1
	}
	t := e.ptlbs[ctx.Core]
	cost := e.costs.PTLBAccess
	e.bd.Add(stats.CatPTLBAccess, e.costs.PTLBAccess)
	var perm Perm
	slot := t.lookup(d)
	if slot >= 0 {
		e.ctr.PTLBHits++
		t.plru.Touch(slot)
		perm = t.ents[slot].perm
	} else {
		e.ctr.PTLBMisses++
		cost += e.costs.PTLBMiss
		e.bd.Add(stats.CatPTLBMiss, e.costs.PTLBMiss)
		perm = e.ptPerm(d, ctx.Thread)
		var evicted, wroteBack bool
		slot, evicted, wroteBack = t.insert(d, perm)
		if evicted {
			e.emit(ctx.Core, stats.EvPTLBEviction, 1)
		}
		if wroteBack {
			cost += e.costs.PTLBEntryOp
			e.bd.Add(stats.CatEntryChange, e.costs.PTLBEntryOp)
		}
	}
	return Verdict{Allowed: perm.Allows(ctx.Write), Cycles: cost}, slot
}

// CheckRepeat replays the PTLB-hit arm of Check for a memoized
// (core, slot, domain) triple: identical counters, breakdown attribution,
// PLRU touch, and verdict as a Check whose lookup hits that slot — a
// domain occupies at most one valid PTLB slot, so the slot test is a
// complete hit test. It returns false (no state change) when the slot no
// longer holds the domain (evicted by an interleaved miss, flushed by a
// context switch); callers then fall back to the full CheckFill.
func (e *DomainVirt) CheckRepeat(coreID, slot int, d DomainID, write bool) (Verdict, bool) {
	t := e.ptlbs[coreID]
	if slot < 0 || slot >= len(t.ents) {
		return Verdict{}, false
	}
	ent := &t.ents[slot]
	if !ent.valid || ent.domain != d {
		return Verdict{}, false
	}
	e.ctr.PTLBHits++
	e.bd.Add(stats.CatPTLBAccess, e.costs.PTLBAccess)
	t.plru.Touch(slot)
	return Verdict{Allowed: ent.perm.Allows(write), Cycles: e.costs.PTLBAccess}, true
}

// ContextSwitch implements Engine: thread-specific PTLB state is written
// back (dirty entries) and flushed; the TLB is untouched — domain IDs in
// TLB entries remain valid, a key advantage over MPK virtualization.
func (e *DomainVirt) ContextSwitch(coreID int, to ThreadID) uint64 {
	e.current[coreID] = to
	dirty := e.ptlbs[coreID].flush()
	cost := uint64(dirty) * e.costs.PTLBEntryOp
	if dirty > 0 {
		e.bd.AddN(stats.CatEntryChange, cost, uint64(dirty))
	}
	return cost
}
