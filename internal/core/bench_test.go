package core

import (
	"testing"

	"domainvirt/internal/memlayout"
	"domainvirt/internal/stats"
)

// Component microbenchmarks for the hardware structures the designs add:
// how fast the *model* evaluates them, and how many model operations one
// simulated access costs.

func BenchmarkPLRUTouchVictim(b *testing.B) {
	p := NewPLRU(16)
	for i := 0; i < b.N; i++ {
		p.Touch(i & 15)
		_ = p.Victim()
	}
}

func BenchmarkDomainTableLookup(b *testing.B) {
	dt := NewDomainTable()
	for i := 0; i < 1024; i++ {
		r := memlayout.Region{Base: memlayout.VA(0x2000_0000_0000 + uint64(i)<<21), Size: 2 << 20}
		if err := dt.Insert(DomainID(i+1), r); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := memlayout.VA(0x2000_0000_0000 + uint64(i&1023)<<21 + 64)
		if d, _ := dt.Lookup(va); d == NullDomain {
			b.Fatal("lost domain")
		}
	}
}

func benchEngineAccess(b *testing.B, e Engine, domains int) {
	h := newFakeHooks(1)
	e.Bind(h, &stats.Breakdown{}, &stats.Counters{})
	e.ContextSwitch(0, 1)
	regions := make([]memlayout.Region, domains)
	for i := range regions {
		regions[i] = memlayout.Region{Base: memlayout.VA(0x2000_0000_0000 + uint64(i)<<21), Size: 2 << 20}
		if err := e.Attach(DomainID(i+1), regions[i]); err != nil {
			b.Fatal(err)
		}
		h.populate(regions[i], 2)
		e.SetPerm(0, 1, DomainID(i+1), PermRW)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		va := regions[i%domains].Base + 64
		if v := access(e, 0, 1, va, i&1 == 0); !v.Allowed {
			b.Fatal("denied")
		}
	}
}

func BenchmarkEngineAccessMPKVirt(b *testing.B) {
	benchEngineAccess(b, NewMPKVirt(DefaultCosts(), 1, 16), 64)
}

func BenchmarkEngineAccessDomainVirt(b *testing.B) {
	benchEngineAccess(b, NewDomainVirt(DefaultCosts(), 1, 16), 64)
}

func BenchmarkEngineAccessLibmpk(b *testing.B) {
	benchEngineAccess(b, NewLibmpk(DefaultCosts(), 1), 64)
}
