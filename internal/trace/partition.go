package trace

import (
	"encoding/binary"
	"errors"
	"fmt"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

// Partition is one contiguous slice of a binary trace that can be
// replayed independently of the bytes before it. Offset/Length delimit
// whole events (the end marker is never included); LastVA carries the
// decoder's per-thread VA-delta state at the partition's first byte, so
// delta-encoded accesses decode to the same absolute addresses they
// would in a full sequential replay.
type Partition struct {
	// Offset is the byte offset of the partition's first event, from the
	// start of the trace file (i.e. past the 8-byte header for the first
	// partition).
	Offset int64
	// Length is the number of event bytes in the partition.
	Length int64
	// Events is the number of events encoded in [Offset, Offset+Length).
	Events uint64
	// LastVA is the per-thread previous-VA decoder state at Offset.
	// Replaying the partitions in order with their own LastVA maps is
	// equivalent to one sequential replay of the whole trace.
	LastVA map[core.ThreadID]memlayout.VA
	// Final marks the last partition; the trace's end marker follows it.
	Final bool
}

// errTruncated matches the sequential reader's truncation error text.
var errTruncated = errors.New("trace: truncated (missing end marker)")

// SplitTrace scans a complete in-memory trace and cuts it into at most
// maxParts partitions of roughly equal byte size. Cuts are placed only
// at safe boundaries: immediately before a synchronization event
// (SETPERM, ATTACH, DETACH, FENCE) or before an event issued by a
// different thread than its predecessor (a context-switch point in the
// simulator's round-robin placement). A trace with no safe boundary past
// a target point simply yields fewer partitions.
//
// The scan validates the whole trace structurally: bad magic, an unknown
// event kind, or a missing end marker is an error, so a successful split
// guarantees every partition replays cleanly.
func SplitTrace(data []byte, maxParts int) ([]Partition, error) {
	if len(data) < len(fileMagic) || [8]byte(data[:8]) != fileMagic {
		return nil, errors.New("trace: bad magic or unsupported version")
	}
	if maxParts < 1 {
		maxParts = 1
	}

	d := &decoder{data: data, pos: len(fileMagic)}
	lastVA := make(map[core.ThreadID]memlayout.VA)
	cur := Partition{Offset: int64(d.pos), LastVA: copyVAMap(lastVA)}
	var parts []Partition

	// Even byte targets over the event body. The body length is only
	// known after the scan, so targets use the file length as a proxy;
	// the end marker's single byte cannot move a cut meaningfully.
	targetStep := int64(len(data)-len(fileMagic)) / int64(maxParts)
	nextTarget := cur.Offset + targetStep

	prevThread := core.ThreadID(0)
	first := true
	for {
		evStart := d.pos
		kind, ok := d.byte()
		if !ok {
			return nil, errTruncated
		}
		if kind == evEnd {
			cur.Length = int64(evStart) - cur.Offset
			cur.Final = true
			parts = append(parts, cur)
			return parts, nil
		}

		th, sync, err := d.skipEvent(kind, lastVA)
		if err != nil {
			return nil, err
		}

		// Cut before this event if we are past the target and the
		// boundary is safe.
		if len(parts) < maxParts-1 && int64(evStart) >= nextTarget && !first &&
			(sync || th != prevThread) {
			cur.Length = int64(evStart) - cur.Offset
			parts = append(parts, cur)
			cur = Partition{Offset: int64(evStart), Events: 0, LastVA: copyVAMap(lastVA)}
			nextTarget = int64(evStart) + targetStep
		}

		// Apply the event's decoder-state effect after the cut decision:
		// LastVA must describe the state *before* the partition's first
		// event.
		if kind == evLoad || kind == evStore || kind == evFetch {
			lastVA[th] = d.decodedVA
		}
		cur.Events++
		if !sync {
			prevThread = th
		}
		first = false
	}
}

// ReplayPartition replays exactly one partition of data into sink,
// seeding the VA-delta decoder from p.LastVA. It validates the byte
// range strictly: decoding must consume exactly p.Length bytes and yield
// exactly p.Events events, so a partition descriptor that does not line
// up with event boundaries (truncated mid-event, offset inside an
// event's encoding, stale after the trace changed) fails loudly instead
// of replaying garbage.
func ReplayPartition(data []byte, p Partition, sink Sink) (uint64, error) {
	if p.Offset < int64(len(fileMagic)) || p.Length < 0 || p.Offset+p.Length > int64(len(data)) {
		return 0, fmt.Errorf("trace: partition [%d,+%d) out of range", p.Offset, p.Length)
	}
	d := &decoder{data: data[:p.Offset+p.Length], pos: int(p.Offset)}
	lastVA := copyVAMap(p.LastVA)
	if lastVA == nil {
		lastVA = make(map[core.ThreadID]memlayout.VA)
	}
	var n uint64
	for int64(d.pos) < p.Offset+p.Length {
		kind, ok := d.byte()
		if !ok {
			return n, errTruncated
		}
		if kind == evEnd {
			return n, errors.New("trace: end marker inside partition")
		}
		if err := d.emitEvent(kind, lastVA, sink); err != nil {
			return n, err
		}
		n++
	}
	if n != p.Events {
		return n, fmt.Errorf("trace: partition decoded %d events, descriptor says %d", n, p.Events)
	}
	return n, nil
}

func copyVAMap(m map[core.ThreadID]memlayout.VA) map[core.ThreadID]memlayout.VA {
	if m == nil {
		return nil
	}
	out := make(map[core.ThreadID]memlayout.VA, len(m))
	for th, va := range m {
		out[th] = va
	}
	return out
}

// decoder is a cursor over in-memory trace bytes. Unlike the streaming
// reader in Replay, it works on a slice so the partitioner can record
// exact byte offsets of event boundaries.
type decoder struct {
	data []byte
	pos  int

	// decodedVA holds the absolute VA of the most recently skipped
	// load/store/fetch, so the partitioner can apply the decoder-state
	// update after making its cut decision.
	decodedVA memlayout.VA
}

func (d *decoder) byte() (uint8, bool) {
	if d.pos >= len(d.data) {
		return 0, false
	}
	b := d.data[d.pos]
	d.pos++
	return b, true
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.pos += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		return 0, errTruncated
	}
	d.pos += n
	return v, nil
}

// skipEvent consumes one event body (kind already read) without
// emitting it, returning the issuing thread (0 for thread-less attach/
// detach) and whether the event is a synchronization point. lastVA is
// read (never written) to resolve delta-encoded addresses; the decoded
// absolute VA is left in d.decodedVA for the caller to apply after its
// cut decision.
func (d *decoder) skipEvent(kind uint8, lastVA map[core.ThreadID]memlayout.VA) (core.ThreadID, bool, error) {
	switch kind {
	case evInstr:
		th, err := d.uvarint()
		if err != nil {
			return 0, false, err
		}
		if _, err := d.uvarint(); err != nil {
			return 0, false, err
		}
		return core.ThreadID(th), false, nil
	case evLoad, evStore:
		th, err := d.uvarint()
		if err != nil {
			return 0, false, err
		}
		delta, err := d.varint()
		if err != nil {
			return 0, false, err
		}
		if _, err := d.uvarint(); err != nil {
			return 0, false, err
		}
		d.decodedVA = memlayout.VA(int64(lastVA[core.ThreadID(th)]) + delta)
		return core.ThreadID(th), false, nil
	case evFetch:
		th, err := d.uvarint()
		if err != nil {
			return 0, false, err
		}
		delta, err := d.varint()
		if err != nil {
			return 0, false, err
		}
		d.decodedVA = memlayout.VA(int64(lastVA[core.ThreadID(th)]) + delta)
		return core.ThreadID(th), false, nil
	case evSetPerm:
		th, err := d.uvarint()
		if err != nil {
			return 0, false, err
		}
		for i := 0; i < 3; i++ {
			if _, err := d.uvarint(); err != nil {
				return 0, false, err
			}
		}
		return core.ThreadID(th), true, nil
	case evAttach:
		for i := 0; i < 4; i++ {
			if _, err := d.uvarint(); err != nil {
				return 0, false, err
			}
		}
		return 0, true, nil
	case evDetach:
		if _, err := d.uvarint(); err != nil {
			return 0, false, err
		}
		return 0, true, nil
	case evFence:
		th, err := d.uvarint()
		if err != nil {
			return 0, false, err
		}
		return core.ThreadID(th), true, nil
	default:
		return 0, false, fmt.Errorf("trace: unknown event kind %d", kind)
	}
}

// emitEvent decodes one event body (kind already read) and delivers it
// to sink, updating lastVA for delta-encoded addresses.
func (d *decoder) emitEvent(kind uint8, lastVA map[core.ThreadID]memlayout.VA, sink Sink) error {
	switch kind {
	case evInstr:
		th, err := d.uvarint()
		if err != nil {
			return err
		}
		cnt, err := d.uvarint()
		if err != nil {
			return err
		}
		sink.Instr(core.ThreadID(th), cnt)
	case evLoad, evStore:
		th, err := d.uvarint()
		if err != nil {
			return err
		}
		delta, err := d.varint()
		if err != nil {
			return err
		}
		size, err := d.uvarint()
		if err != nil {
			return err
		}
		tid := core.ThreadID(th)
		va := memlayout.VA(int64(lastVA[tid]) + delta)
		lastVA[tid] = va
		sink.Access(tid, va, uint32(size), kind == evStore)
	case evFetch:
		th, err := d.uvarint()
		if err != nil {
			return err
		}
		delta, err := d.varint()
		if err != nil {
			return err
		}
		tid := core.ThreadID(th)
		va := memlayout.VA(int64(lastVA[tid]) + delta)
		lastVA[tid] = va
		sink.Fetch(tid, va)
	case evSetPerm:
		th, err := d.uvarint()
		if err != nil {
			return err
		}
		dom, err := d.uvarint()
		if err != nil {
			return err
		}
		p, err := d.uvarint()
		if err != nil {
			return err
		}
		site, err := d.uvarint()
		if err != nil {
			return err
		}
		sink.SetPerm(core.ThreadID(th), core.DomainID(dom), core.Perm(p), core.SiteID(site))
	case evAttach:
		dom, err := d.uvarint()
		if err != nil {
			return err
		}
		base, err := d.uvarint()
		if err != nil {
			return err
		}
		size, err := d.uvarint()
		if err != nil {
			return err
		}
		perm, err := d.uvarint()
		if err != nil {
			return err
		}
		r := memlayout.Region{Base: memlayout.VA(base), Size: size}
		if err := sink.Attach(core.DomainID(dom), r, core.Perm(perm)); err != nil {
			return fmt.Errorf("trace: attach domain %d: %w", dom, err)
		}
	case evDetach:
		dom, err := d.uvarint()
		if err != nil {
			return err
		}
		sink.Detach(core.DomainID(dom))
	case evFence:
		th, err := d.uvarint()
		if err != nil {
			return err
		}
		sink.Fence(core.ThreadID(th))
	default:
		return fmt.Errorf("trace: unknown event kind %d", kind)
	}
	return nil
}
