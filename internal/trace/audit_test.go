package trace

import (
	"strings"
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

func TestAuditorWindowTracking(t *testing.T) {
	a := NewAuditor(nil)
	r := memlayout.Region{Base: 1 << 30, Size: 4096}
	if err := a.Attach(1, r, core.PermRW); err != nil {
		t.Fatal(err)
	}
	if err := a.Attach(2, r, core.PermRW); err != nil {
		t.Fatal(err)
	}

	a.SetPerm(1, 1, core.PermRW, 0)
	a.SetPerm(1, 2, core.PermRW, 0)
	if a.MaxWritable != 2 {
		t.Errorf("MaxWritable = %d, want 2", a.MaxWritable)
	}
	a.SetPerm(1, 1, core.PermR, 0)
	a.SetPerm(1, 2, core.PermNone, 0)
	if got := a.Finish(); len(got) != 0 {
		t.Errorf("balanced windows flagged: %v", got)
	}
	if a.Switches != 4 {
		t.Errorf("Switches = %d", a.Switches)
	}
}

func TestAuditorFlagsOpenWindow(t *testing.T) {
	a := NewAuditor(nil)
	a.SetPerm(3, 7, core.PermRW, 0)
	findings := a.Finish()
	if len(findings) != 1 || !strings.Contains(findings[0], "still write-enabled") {
		t.Errorf("open window not flagged: %v", findings)
	}
}

func TestAuditorFlagsDetachDuringWindow(t *testing.T) {
	a := NewAuditor(nil)
	a.SetPerm(1, 5, core.PermRW, 0)
	a.Detach(5)
	if len(a.Violations) != 1 || !strings.Contains(a.Violations[0], "detached while") {
		t.Errorf("detach-during-window not flagged: %v", a.Violations)
	}
	// The window was force-closed; Finish adds nothing new.
	if got := a.Finish(); len(got) != 1 {
		t.Errorf("Finish = %v", got)
	}
}

func TestAuditorPassesThrough(t *testing.T) {
	var c Counter
	a := NewAuditor(&c)
	a.Instr(1, 5)
	a.Access(1, 0x1000, 8, true)
	a.Fence(1)
	a.SetPerm(1, 1, core.PermRW, 0)
	if c.Instrs != 5 || c.Stores != 1 || c.Fences != 1 || c.SetPerms != 1 {
		t.Errorf("pass-through lost events: %+v", c)
	}
}
