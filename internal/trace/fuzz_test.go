package trace

import (
	"bytes"
	"testing"
)

// FuzzReplay hardens the binary trace reader against corrupt input: it
// must return an error or succeed, never panic, on arbitrary bytes.
func FuzzReplay(f *testing.F) {
	// Seed with a small valid trace.
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	emitSeed(w)
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte("PMOTRC\x00\x01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Replay(bytes.NewReader(data), Discard{})
	})
}

func emitSeed(s Sink) {
	s.Instr(1, 100)
	s.Access(1, 0x1000, 8, true)
	s.SetPerm(1, 2, 0, 3)
	s.Fence(1)
}
