package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

// Binary trace format: a 8-byte header ("PMOTRC" + 2-byte version),
// followed by events. Each event is a kind byte followed by
// varint-encoded fields. Access events delta-encode the VA against the
// previous access of the same thread for compactness.

var fileMagic = [8]byte{'P', 'M', 'O', 'T', 'R', 'C', 0, 1}

// Event kinds on the wire.
const (
	evInstr uint8 = iota + 1
	evLoad
	evStore
	evSetPerm
	evAttach
	evDetach
	evFence
	evFetch
	evEnd
)

// Writer records an event stream to w in the binary trace format. It
// implements Sink. Close must be called to flush the end marker.
type Writer struct {
	bw     *bufio.Writer
	lastVA map[core.ThreadID]memlayout.VA
	err    error
	buf    [binary.MaxVarintLen64]byte
}

// NewWriter returns a trace Writer over w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(fileMagic[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, lastVA: make(map[core.ThreadID]memlayout.VA)}, nil
}

func (w *Writer) putByte(b uint8) {
	if w.err == nil {
		w.err = w.bw.WriteByte(b)
	}
}

func (w *Writer) putUvarint(v uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.buf[:], v)
	_, w.err = w.bw.Write(w.buf[:n])
}

func (w *Writer) putVarint(v int64) {
	if w.err != nil {
		return
	}
	n := binary.PutVarint(w.buf[:], v)
	_, w.err = w.bw.Write(w.buf[:n])
}

// Instr implements Sink.
func (w *Writer) Instr(th core.ThreadID, n uint64) {
	w.putByte(evInstr)
	w.putUvarint(uint64(th))
	w.putUvarint(n)
}

// Access implements Sink.
func (w *Writer) Access(th core.ThreadID, va memlayout.VA, size uint32, write bool) bool {
	kind := evLoad
	if write {
		kind = evStore
	}
	w.putByte(kind)
	w.putUvarint(uint64(th))
	w.putVarint(int64(va) - int64(w.lastVA[th]))
	w.putUvarint(uint64(size))
	w.lastVA[th] = va
	return true
}

// Fetch implements Sink.
func (w *Writer) Fetch(th core.ThreadID, va memlayout.VA) bool {
	w.putByte(evFetch)
	w.putUvarint(uint64(th))
	w.putVarint(int64(va) - int64(w.lastVA[th]))
	w.lastVA[th] = va
	return true
}

// SetPerm implements Sink.
func (w *Writer) SetPerm(th core.ThreadID, d core.DomainID, p core.Perm, site core.SiteID) {
	w.putByte(evSetPerm)
	w.putUvarint(uint64(th))
	w.putUvarint(uint64(d))
	w.putUvarint(uint64(p))
	w.putUvarint(uint64(site))
}

// Attach implements Sink.
func (w *Writer) Attach(d core.DomainID, r memlayout.Region, perm core.Perm) error {
	w.putByte(evAttach)
	w.putUvarint(uint64(d))
	w.putUvarint(uint64(r.Base))
	w.putUvarint(r.Size)
	w.putUvarint(uint64(perm))
	return w.err
}

// Detach implements Sink.
func (w *Writer) Detach(d core.DomainID) {
	w.putByte(evDetach)
	w.putUvarint(uint64(d))
}

// Fence implements Sink.
func (w *Writer) Fence(th core.ThreadID) {
	w.putByte(evFence)
	w.putUvarint(uint64(th))
}

// Close writes the end marker and flushes buffered data.
func (w *Writer) Close() error {
	w.putByte(evEnd)
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Replay reads a binary trace from r and feeds it to sink. It returns the
// number of events replayed.
func Replay(r io.Reader, sink Sink) (uint64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", err)
	}
	if magic != fileMagic {
		return 0, errors.New("trace: bad magic or unsupported version")
	}
	lastVA := make(map[core.ThreadID]memlayout.VA)
	var n uint64
	for {
		kind, err := br.ReadByte()
		if err != nil {
			if err == io.EOF {
				return n, errors.New("trace: truncated (missing end marker)")
			}
			return n, err
		}
		if kind == evEnd {
			return n, nil
		}
		n++
		switch kind {
		case evInstr:
			th, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			cnt, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			sink.Instr(core.ThreadID(th), cnt)
		case evLoad, evStore:
			th, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return n, err
			}
			size, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			tid := core.ThreadID(th)
			va := memlayout.VA(int64(lastVA[tid]) + delta)
			lastVA[tid] = va
			sink.Access(tid, va, uint32(size), kind == evStore)
		case evSetPerm:
			th, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			d, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			p, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			site, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			sink.SetPerm(core.ThreadID(th), core.DomainID(d), core.Perm(p), core.SiteID(site))
		case evAttach:
			d, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			base, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			size, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			perm, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			r := memlayout.Region{Base: memlayout.VA(base), Size: size}
			if err := sink.Attach(core.DomainID(d), r, core.Perm(perm)); err != nil {
				return n, fmt.Errorf("trace: attach domain %d: %w", d, err)
			}
		case evDetach:
			d, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			sink.Detach(core.DomainID(d))
		case evFence:
			th, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			sink.Fence(core.ThreadID(th))
		case evFetch:
			th, err := readUvarint(br)
			if err != nil {
				return n, err
			}
			delta, err := binary.ReadVarint(br)
			if err != nil {
				return n, err
			}
			tid := core.ThreadID(th)
			va := memlayout.VA(int64(lastVA[tid]) + delta)
			lastVA[tid] = va
			sink.Fetch(tid, va)
		default:
			return n, fmt.Errorf("trace: unknown event kind %d", kind)
		}
	}
}

func readUvarint(br *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(br)
}
