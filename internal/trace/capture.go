package trace

import (
	"encoding/binary"
	"errors"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

// captureChunkSize is the unit of hand-off from the event producer to
// the background flusher. Encoding stays in-memory until a chunk fills,
// so the producer (the serve shard, under its lock) never touches the
// filesystem.
const captureChunkSize = 32 << 10

// CaptureOptions configures a Capture sink.
type CaptureOptions struct {
	// Open opens the writer for segment seg (0-based). It is called
	// lazily by the background flusher when the segment's first bytes
	// arrive, so an idle capture never creates a file.
	Open func(seg int) (io.WriteCloser, error)
	// MaxSegmentBytes rotates to a new segment once the current one
	// holds at least this many encoded bytes. Each segment is an
	// independently replayable trace file: rotation re-emits the live
	// attach table and every open permission window at the head of the
	// new segment. 0 disables rotation.
	MaxSegmentBytes int64
	// BufferBytes bounds encoded-but-unflushed bytes. Past the bound,
	// data events (instr, load/store, fetch, fence) are dropped and
	// counted; control events (attach, detach, setperm) are always
	// kept so the stream stays structurally valid for replay.
	// Default 1 MiB.
	BufferBytes int
}

// CaptureStats is a point-in-time snapshot of a Capture's counters.
type CaptureStats struct {
	Events   uint64 // events encoded into the stream
	Dropped  uint64 // data events dropped by backpressure
	Bytes    uint64 // encoded bytes handed to the flusher
	Segments int    // segments started
}

type captureMsg struct {
	data   []byte
	rotate bool // close the current segment after writing data
}

type captureAttach struct {
	r    memlayout.Region
	perm core.Perm
}

type captureWindow struct {
	th   core.ThreadID
	d    core.DomainID
	perm core.Perm
	site core.SiteID
}

// Capture is a Sink that records live traffic to the binary trace
// format with bounded buffering, event-granularity drop-counting, and
// segment rotation. It is the serve daemon's shard tee: event methods
// are intended to be called by one producer at a time (the shard lock
// already serializes them; a mutex keeps the type safe standalone) and
// all filesystem work happens on a background flusher goroutine, so
// capture never blocks the request path on disk.
//
// Capture is passive: Access and Fetch always permit (verdicts come
// from the enforcing sink in the same Tee), and I/O errors are sticky
// and silent — check Err — rather than failing live requests.
type Capture struct {
	opts CaptureOptions

	mu       sync.Mutex
	cur      []byte
	segBytes int64
	seg      int
	closed   bool
	lastVA   map[core.ThreadID]memlayout.VA
	attached map[core.DomainID]captureAttach
	windows  map[core.ThreadID]map[core.DomainID]captureWindow

	buffered atomic.Int64 // bytes encoded but not yet written
	events   atomic.Uint64
	dropped  atomic.Uint64
	bytes    atomic.Uint64
	segments atomic.Int64

	err  atomic.Pointer[error]
	ch   chan captureMsg
	done chan struct{}
}

// NewCapture starts a capture over opts.Open. Close must be called to
// flush the end marker and join the flusher.
func NewCapture(opts CaptureOptions) *Capture {
	if opts.BufferBytes <= 0 {
		opts.BufferBytes = 1 << 20
	}
	depth := opts.BufferBytes / captureChunkSize
	if depth < 4 {
		depth = 4
	}
	c := &Capture{
		opts:     opts,
		cur:      make([]byte, 0, captureChunkSize),
		lastVA:   make(map[core.ThreadID]memlayout.VA),
		attached: make(map[core.DomainID]captureAttach),
		windows:  make(map[core.ThreadID]map[core.DomainID]captureWindow),
		ch:       make(chan captureMsg, depth),
		done:     make(chan struct{}),
	}
	c.segments.Store(1)
	go c.flusher()
	return c
}

// NewFileCapture is a convenience constructor: segment seg is created
// at pathFor(seg).
func NewFileCapture(pathFor func(seg int) string, create func(path string) (io.WriteCloser, error), maxSegmentBytes int64, bufferBytes int) *Capture {
	return NewCapture(CaptureOptions{
		Open:            func(seg int) (io.WriteCloser, error) { return create(pathFor(seg)) },
		MaxSegmentBytes: maxSegmentBytes,
		BufferBytes:     bufferBytes,
	})
}

// Err returns the first flusher error, if any.
func (c *Capture) Err() error {
	if p := c.err.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats snapshots the capture counters.
func (c *Capture) Stats() CaptureStats {
	return CaptureStats{
		Events:   c.events.Load(),
		Dropped:  c.dropped.Load(),
		Bytes:    c.bytes.Load(),
		Segments: int(c.segments.Load()),
	}
}

// overBudget reports whether data events must be dropped right now.
func (c *Capture) overBudget() bool {
	return c.buffered.Load()+int64(len(c.cur)) > int64(c.opts.BufferBytes)
}

func (c *Capture) putByte(b byte)      { c.cur = append(c.cur, b) }
func (c *Capture) putUvarint(v uint64) { c.cur = binary.AppendUvarint(c.cur, v) }
func (c *Capture) putVarint(v int64)   { c.cur = binary.AppendVarint(c.cur, v) }

// finishEvent runs after each encoded event: hands full chunks to the
// flusher and rotates segments at the boundary.
func (c *Capture) finishEvent() {
	c.events.Add(1)
	if c.opts.MaxSegmentBytes > 0 && c.segBytes+int64(len(c.cur)) >= c.opts.MaxSegmentBytes {
		c.rotateLocked()
		return
	}
	if len(c.cur) >= captureChunkSize {
		c.flushLocked(false)
	}
}

// flushLocked hands the current chunk to the flusher. Rotation sends
// block (rare, and the flusher always drains, even after an error);
// ordinary chunk sends do not — a full channel just leaves the chunk
// growing until backpressure dropping catches up.
func (c *Capture) flushLocked(rotate bool) {
	if len(c.cur) == 0 && !rotate {
		return
	}
	msg := captureMsg{data: c.cur, rotate: rotate}
	c.buffered.Add(int64(len(c.cur)))
	if rotate {
		c.ch <- msg
	} else {
		select {
		case c.ch <- msg:
		default:
			c.buffered.Add(-int64(len(c.cur)))
			return // keep accumulating; drop policy bounds growth
		}
	}
	c.bytes.Add(uint64(len(c.cur)))
	c.segBytes += int64(len(c.cur))
	c.cur = make([]byte, 0, captureChunkSize)
}

// rotateLocked ends the current segment and primes the next one so it
// replays standalone: the end marker closes this file, and the live
// attach table plus every open permission window are re-emitted at the
// head of the new segment. Per-thread VA deltas restart from zero.
func (c *Capture) rotateLocked() {
	c.putByte(evEnd)
	c.flushLocked(true)
	c.seg++
	c.segments.Add(1)
	c.segBytes = 0
	clear(c.lastVA)

	doms := make([]core.DomainID, 0, len(c.attached))
	for d := range c.attached {
		doms = append(doms, d)
	}
	sort.Slice(doms, func(i, j int) bool { return doms[i] < doms[j] })
	for _, d := range doms {
		a := c.attached[d]
		c.putByte(evAttach)
		c.putUvarint(uint64(d))
		c.putUvarint(uint64(a.r.Base))
		c.putUvarint(a.r.Size)
		c.putUvarint(uint64(a.perm))
	}
	var open []captureWindow
	for _, m := range c.windows {
		for _, w := range m {
			open = append(open, w)
		}
	}
	sort.Slice(open, func(i, j int) bool {
		if open[i].th != open[j].th {
			return open[i].th < open[j].th
		}
		return open[i].d < open[j].d
	})
	for _, w := range open {
		c.putByte(evSetPerm)
		c.putUvarint(uint64(w.th))
		c.putUvarint(uint64(w.d))
		c.putUvarint(uint64(w.perm))
		c.putUvarint(uint64(w.site))
	}
}

// Instr implements Sink.
func (c *Capture) Instr(th core.ThreadID, n uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.overBudget() {
		c.dropped.Add(1)
		return
	}
	c.putByte(evInstr)
	c.putUvarint(uint64(th))
	c.putUvarint(n)
	c.finishEvent()
}

// Access implements Sink. Capture always permits; enforcement belongs
// to the machine sink sharing the Tee.
func (c *Capture) Access(th core.ThreadID, va memlayout.VA, size uint32, write bool) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.overBudget() {
		c.dropped.Add(1)
		return true
	}
	kind := evLoad
	if write {
		kind = evStore
	}
	c.putByte(kind)
	c.putUvarint(uint64(th))
	c.putVarint(int64(va) - int64(c.lastVA[th]))
	c.putUvarint(uint64(size))
	c.lastVA[th] = va
	c.finishEvent()
	return true
}

// Fetch implements Sink.
func (c *Capture) Fetch(th core.ThreadID, va memlayout.VA) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.overBudget() {
		c.dropped.Add(1)
		return true
	}
	c.putByte(evFetch)
	c.putUvarint(uint64(th))
	c.putVarint(int64(va) - int64(c.lastVA[th]))
	c.lastVA[th] = va
	c.finishEvent()
	return true
}

// SetPerm implements Sink. Control event: never dropped.
func (c *Capture) SetPerm(th core.ThreadID, d core.DomainID, p core.Perm, site core.SiteID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	if p == core.PermNone {
		delete(c.windows[th], d)
	} else {
		m := c.windows[th]
		if m == nil {
			m = make(map[core.DomainID]captureWindow)
			c.windows[th] = m
		}
		m[d] = captureWindow{th: th, d: d, perm: p, site: site}
	}
	c.putByte(evSetPerm)
	c.putUvarint(uint64(th))
	c.putUvarint(uint64(d))
	c.putUvarint(uint64(p))
	c.putUvarint(uint64(site))
	c.finishEvent()
}

// Attach implements Sink. Control event: never dropped, and capture
// errors never abort a live attach.
func (c *Capture) Attach(d core.DomainID, r memlayout.Region, perm core.Perm) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.attached[d] = captureAttach{r: r, perm: perm}
	c.putByte(evAttach)
	c.putUvarint(uint64(d))
	c.putUvarint(uint64(r.Base))
	c.putUvarint(r.Size)
	c.putUvarint(uint64(perm))
	c.finishEvent()
	return nil
}

// Detach implements Sink. Control event: never dropped.
func (c *Capture) Detach(d core.DomainID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	delete(c.attached, d)
	for _, m := range c.windows {
		delete(m, d)
	}
	c.putByte(evDetach)
	c.putUvarint(uint64(d))
	c.finishEvent()
}

// Fence implements Sink.
func (c *Capture) Fence(th core.ThreadID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed || c.overBudget() {
		c.dropped.Add(1)
		return
	}
	c.putByte(evFence)
	c.putUvarint(uint64(th))
	c.finishEvent()
}

// Close flushes the end marker, joins the flusher, and returns the
// first I/O error. Idempotent.
func (c *Capture) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		<-c.done
		return c.Err()
	}
	c.closed = true
	c.putByte(evEnd)
	c.flushLocked(true)
	c.mu.Unlock()
	close(c.ch)
	<-c.done
	return c.Err()
}

// flusher is the single consumer: it lazily opens segment files, writes
// chunks, and swaps files at rotation boundaries. After an I/O error it
// keeps draining (discarding) so producers never block.
func (c *Capture) flusher() {
	defer close(c.done)
	var w io.WriteCloser
	seg := 0
	fail := func(err error) {
		if err == nil {
			return
		}
		if c.err.CompareAndSwap(nil, &err) {
			if w != nil {
				w.Close()
			}
		}
		w = nil
	}
	for msg := range c.ch {
		c.buffered.Add(-int64(len(msg.data)))
		if c.Err() == nil {
			if w == nil && len(msg.data) > 0 {
				var err error
				w, err = c.opts.Open(seg)
				if err != nil {
					fail(err)
				} else if _, err = w.Write(fileMagic[:]); err != nil {
					fail(err)
				}
			}
			if w != nil && len(msg.data) > 0 {
				if _, err := w.Write(msg.data); err != nil {
					fail(err)
				}
			}
			if msg.rotate && w != nil {
				fail(w.Close())
				w = nil
			}
		}
		if msg.rotate {
			seg++
		}
	}
	if w != nil {
		fail(w.Close())
	}
}

var _ Sink = (*Capture)(nil)

// VerdictLog records the boolean outcomes of Access and Fetch as a
// packed bitstream, so a live run's enforcement decisions can be
// compared bit-for-bit against a replay's. Not safe for concurrent use;
// in serve each shard owns one, written under the shard lock.
type VerdictLog struct {
	n      uint64
	denied uint64
	bits   []uint64
}

// Append records one verdict.
func (v *VerdictLog) Append(ok bool) {
	word := v.n / 64
	if int(word) >= len(v.bits) {
		v.bits = append(v.bits, 0)
	}
	if ok {
		v.bits[word] |= 1 << (v.n % 64)
	} else {
		v.denied++
	}
	v.n++
}

// Len returns the number of verdicts recorded.
func (v *VerdictLog) Len() uint64 { return v.n }

// Denied returns the number of false (denied) verdicts.
func (v *VerdictLog) Denied() uint64 { return v.denied }

// Packed returns the verdicts as little-endian packed bytes; trailing
// bits of the last byte are zero. Deterministic for a given sequence.
func (v *VerdictLog) Packed() []byte {
	out := make([]byte, (v.n+7)/8)
	for i := range out {
		out[i] = byte(v.bits[i/8] >> ((i % 8) * 8))
	}
	return out
}

// Equal reports whether two logs hold identical verdict sequences.
func (v *VerdictLog) Equal(o *VerdictLog) bool {
	if v.n != o.n {
		return false
	}
	for i := uint64(0); i < (v.n+63)/64; i++ {
		if v.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// Merge appends o's verdicts after v's.
func (v *VerdictLog) Merge(o *VerdictLog) {
	for i := uint64(0); i < o.n; i++ {
		v.Append(o.bits[i/64]&(1<<(i%64)) != 0)
	}
}

// withVerdicts tees Access/Fetch outcomes into a VerdictLog.
type withVerdicts struct {
	next Sink
	log  *VerdictLog
}

// WithVerdicts wraps next so every Access/Fetch verdict is appended to
// log. Tee cannot observe the enforcing sink's verdicts (it only ANDs
// them), so the wrapper sits between the Tee and the machine.
func WithVerdicts(next Sink, log *VerdictLog) Sink {
	return &withVerdicts{next: next, log: log}
}

func (s *withVerdicts) Instr(th core.ThreadID, n uint64) { s.next.Instr(th, n) }

func (s *withVerdicts) Access(th core.ThreadID, va memlayout.VA, size uint32, write bool) bool {
	ok := s.next.Access(th, va, size, write)
	s.log.Append(ok)
	return ok
}

func (s *withVerdicts) Fetch(th core.ThreadID, va memlayout.VA) bool {
	ok := s.next.Fetch(th, va)
	s.log.Append(ok)
	return ok
}

func (s *withVerdicts) SetPerm(th core.ThreadID, d core.DomainID, p core.Perm, site core.SiteID) {
	s.next.SetPerm(th, d, p, site)
}

func (s *withVerdicts) Attach(d core.DomainID, r memlayout.Region, perm core.Perm) error {
	return s.next.Attach(d, r, perm)
}

func (s *withVerdicts) Detach(d core.DomainID) { s.next.Detach(d) }

func (s *withVerdicts) Fence(th core.ThreadID) { s.next.Fence(th) }

var _ Sink = (*withVerdicts)(nil)

// ErrCaptureDropped is returned by audits that require a loss-free
// capture when drops occurred.
var ErrCaptureDropped = errors.New("trace: capture dropped events under backpressure")
