package trace

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

// recording captures a replayable event log for comparison.
type recording struct {
	events []string
	items  []interface{}
}

type accessEv struct {
	th    core.ThreadID
	va    memlayout.VA
	size  uint32
	write bool
}
type instrEv struct {
	th core.ThreadID
	n  uint64
}
type setPermEv struct {
	th   core.ThreadID
	d    core.DomainID
	p    core.Perm
	site core.SiteID
}
type attachEv struct {
	d    core.DomainID
	r    memlayout.Region
	perm core.Perm
}

func (r *recording) Instr(th core.ThreadID, n uint64) { r.items = append(r.items, instrEv{th, n}) }
func (r *recording) Access(th core.ThreadID, va memlayout.VA, size uint32, write bool) bool {
	r.items = append(r.items, accessEv{th, va, size, write})
	return true
}
func (r *recording) Fetch(th core.ThreadID, va memlayout.VA) bool {
	r.items = append(r.items, [2]uint64{uint64(th), uint64(va)})
	return true
}
func (r *recording) SetPerm(th core.ThreadID, d core.DomainID, p core.Perm, site core.SiteID) {
	r.items = append(r.items, setPermEv{th, d, p, site})
}
func (r *recording) Attach(d core.DomainID, reg memlayout.Region, p core.Perm) error {
	r.items = append(r.items, attachEv{d, reg, p})
	return nil
}
func (r *recording) Detach(d core.DomainID) { r.items = append(r.items, d) }
func (r *recording) Fence(th core.ThreadID) { r.items = append(r.items, th) }

func emitRandom(t *testing.T, sink Sink, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	if err := sink.Attach(1, memlayout.Region{Base: 1 << 30, Size: 8 << 20}, core.PermRW); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		th := core.ThreadID(1 + rng.Intn(3))
		switch rng.Intn(5) {
		case 0:
			sink.Instr(th, uint64(rng.Intn(10000)))
		case 1:
			sink.Access(th, memlayout.VA(1<<30+rng.Intn(1<<23)), uint32(rng.Intn(64)+1), rng.Intn(2) == 0)
		case 2:
			sink.SetPerm(th, 1, core.Perm(rng.Intn(3)), core.SiteID(rng.Intn(5)))
		case 3:
			sink.Fetch(th, memlayout.VA(1<<30+rng.Intn(1<<23)))
		default:
			sink.Fence(th)
		}
	}
	sink.Detach(1)
}

func TestFileRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var want recording
	emitRandom(t, NewTee(w, &want), 11, 500)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got recording
	n, err := Replay(&buf, &got)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no events replayed")
	}
	if !reflect.DeepEqual(want.items, got.items) {
		t.Fatalf("replay diverges: %d vs %d events", len(want.items), len(got.items))
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(bytes.NewReader([]byte("not a trace")), Discard{}); err == nil {
		t.Error("garbage accepted")
	}
	// Truncation (missing end marker) is detected.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Instr(1, 5)
	// No Close: flush manually to simulate truncation.
	_ = w.bw.Flush()
	if _, err := Replay(&buf, Discard{}); err == nil {
		t.Error("truncated trace accepted")
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	emitRandom(t, &c, 3, 200)
	if c.Attaches != 1 || c.Detaches != 1 {
		t.Errorf("attach/detach = %d/%d", c.Attaches, c.Detaches)
	}
	if c.Loads+c.Stores+c.SetPerms+c.Fences == 0 {
		t.Error("no events counted")
	}
	Load(&c, 1, 0x1000, 8)
	Store(&c, 1, 0x1000, 8)
	if c.Loads == 0 || c.Stores == 0 {
		t.Error("Load/Store helpers broken")
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b Counter
	tee := NewTee(&a, &b)
	tee.Instr(1, 10)
	tee.Access(1, 0x1000, 8, true)
	if a.Instrs != 10 || b.Instrs != 10 || a.Stores != 1 || b.Stores != 1 {
		t.Error("tee did not fan out")
	}
}
