package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

// memSegments collects capture segments in memory.
type memSegments struct {
	bufs []*bytes.Buffer
}

func (m *memSegments) open(seg int) (io.WriteCloser, error) {
	for len(m.bufs) <= seg {
		m.bufs = append(m.bufs, &bytes.Buffer{})
	}
	return nopCloser{m.bufs[seg]}, nil
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

// driveEvents plays a representative event sequence into sink.
func driveEvents(sink Sink) {
	r := memlayout.Region{Base: 0x10000, Size: 1 << 16}
	sink.Attach(1, r, core.PermNone)
	sink.Attach(2, memlayout.Region{Base: 0x20000, Size: 1 << 16}, core.PermNone)
	sink.SetPerm(0, 1, core.PermRW, 7)
	for i := 0; i < 50; i++ {
		sink.Instr(0, 10)
		sink.Access(0, memlayout.VA(0x10000+i*64), 8, i%2 == 0)
	}
	sink.Fetch(0, 0x10040)
	sink.Fence(0)
	sink.SetPerm(0, 1, core.PermNone, 7)
	sink.Detach(2)
}

func TestCaptureFormatMatchesWriter(t *testing.T) {
	var ref bytes.Buffer
	w, err := NewWriter(&ref)
	if err != nil {
		t.Fatal(err)
	}
	driveEvents(w)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs := &memSegments{}
	c := NewCapture(CaptureOptions{Open: segs.open})
	driveEvents(c)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if len(segs.bufs) != 1 {
		t.Fatalf("capture produced %d segments, want 1", len(segs.bufs))
	}
	if !bytes.Equal(ref.Bytes(), segs.bufs[0].Bytes()) {
		t.Fatalf("capture output (%d bytes) differs from trace.Writer output (%d bytes)",
			segs.bufs[0].Len(), ref.Len())
	}
	st := c.Stats()
	if st.Dropped != 0 || st.Events == 0 {
		t.Fatalf("stats = %+v", st)
	}

	// And the captured file replays cleanly.
	var cnt Counter
	if _, err := Replay(bytes.NewReader(segs.bufs[0].Bytes()), &cnt); err != nil {
		t.Fatal(err)
	}
	if cnt.Attaches != 2 || cnt.SetPerms != 2 || cnt.Loads+cnt.Stores != 50 {
		t.Fatalf("replayed counts = %+v", cnt)
	}
}

func TestCaptureBackpressureKeepsControlEvents(t *testing.T) {
	segs := &memSegments{}
	c := NewCapture(CaptureOptions{Open: segs.open, BufferBytes: 1})
	// First event fits (budget is checked before encoding); everything
	// after is over budget, so data drops but control survives.
	c.Instr(0, 1)
	for i := 0; i < 100; i++ {
		c.Access(0, memlayout.VA(0x1000+i*8), 8, true)
	}
	c.Attach(3, memlayout.Region{Base: 0x30000, Size: 4096}, core.PermNone)
	c.SetPerm(1, 3, core.PermRW, 9)
	c.SetPerm(1, 3, core.PermNone, 9)
	c.Detach(3)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	st := c.Stats()
	if st.Dropped != 100 {
		t.Fatalf("dropped %d events, want the 100 accesses", st.Dropped)
	}
	var cnt Counter
	if _, err := Replay(bytes.NewReader(segs.bufs[0].Bytes()), &cnt); err != nil {
		t.Fatalf("lossy capture must still replay: %v", err)
	}
	if cnt.Attaches != 1 || cnt.Detaches != 1 || cnt.SetPerms != 2 {
		t.Fatalf("control events lost: %+v", cnt)
	}
	if cnt.Loads+cnt.Stores != 0 {
		t.Fatalf("%d data accesses survived, want 0", cnt.Loads+cnt.Stores)
	}
}

func TestCaptureRotationSegmentsReplayStandalone(t *testing.T) {
	segs := &memSegments{}
	c := NewCapture(CaptureOptions{Open: segs.open, MaxSegmentBytes: 256})
	r := memlayout.Region{Base: 0x10000, Size: 1 << 16}
	c.Attach(1, r, core.PermNone)
	c.SetPerm(0, 1, core.PermRW, 7) // window stays open across rotation
	for i := 0; i < 200; i++ {
		c.Access(0, memlayout.VA(0x10000+i*64), 8, true)
	}
	c.SetPerm(0, 1, core.PermNone, 7)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}

	if len(segs.bufs) < 2 {
		t.Fatalf("no rotation happened: %d segments", len(segs.bufs))
	}
	if got := c.Stats().Segments; got != len(segs.bufs) {
		t.Fatalf("stats report %d segments, files say %d", got, len(segs.bufs))
	}

	totalStores := uint64(0)
	for i, buf := range segs.bufs {
		aud := NewAuditor(nil)
		if _, err := Replay(bytes.NewReader(buf.Bytes()), aud); err != nil {
			t.Fatalf("segment %d does not replay standalone: %v", i, err)
		}
		var cnt Counter
		if _, err := Replay(bytes.NewReader(buf.Bytes()), &cnt); err != nil {
			t.Fatal(err)
		}
		if cnt.Attaches == 0 {
			t.Fatalf("segment %d has no attach table (rotation must re-emit state)", i)
		}
		if i > 0 && cnt.SetPerms == 0 {
			t.Fatalf("segment %d lost the open permission window", i)
		}
		totalStores += cnt.Stores
	}
	if totalStores != 200 {
		t.Fatalf("stores across segments = %d, want 200 (no drops configured)", totalStores)
	}
}

func TestCaptureOpenErrorIsStickyNotFatal(t *testing.T) {
	boom := errors.New("disk on fire")
	c := NewCapture(CaptureOptions{
		Open: func(int) (io.WriteCloser, error) { return nil, boom },
	})
	driveEvents(c) // must not panic or block
	if err := c.Close(); !errors.Is(err, boom) {
		t.Fatalf("Close = %v, want the open error", err)
	}
	if !errors.Is(c.Err(), boom) {
		t.Fatalf("Err = %v", c.Err())
	}
}

// denyOdd denies every second access.
type denyOdd struct {
	Discard
	n int
}

func (d *denyOdd) Access(core.ThreadID, memlayout.VA, uint32, bool) bool {
	d.n++
	return d.n%2 == 1
}

func TestWithVerdicts(t *testing.T) {
	var log VerdictLog
	s := WithVerdicts(&denyOdd{}, &log)
	for i := 0; i < 10; i++ {
		want := i%2 == 0
		if got := s.Access(0, 0x1000, 8, false); got != want {
			t.Fatalf("access %d verdict %v, want %v (wrapper must pass the verdict through)", i, got, want)
		}
	}
	if log.Len() != 10 || log.Denied() != 5 {
		t.Fatalf("log len=%d denied=%d", log.Len(), log.Denied())
	}

	var same VerdictLog
	for i := 0; i < 10; i++ {
		same.Append(i%2 == 0)
	}
	if !log.Equal(&same) {
		t.Fatal("identical sequences compare unequal")
	}
	same.Append(true)
	if log.Equal(&same) {
		t.Fatal("different lengths compare equal")
	}

	if got, want := log.Packed(), []byte{0b01010101, 0b01}; !bytes.Equal(got, want) {
		t.Fatalf("packed = %08b, want %08b", got, want)
	}

	var merged VerdictLog
	merged.Merge(&log)
	merged.Merge(&log)
	if merged.Len() != 20 || merged.Denied() != 10 {
		t.Fatalf("merge: len=%d denied=%d", merged.Len(), merged.Denied())
	}
}

func TestVerdictLogLong(t *testing.T) {
	var a, b VerdictLog
	for i := 0; i < 1000; i++ {
		v := i%7 != 0
		a.Append(v)
		b.Append(v)
	}
	if !a.Equal(&b) {
		t.Fatal("equal 1000-bit streams compare unequal")
	}
	b.bits[3] ^= 1 << 17
	if a.Equal(&b) {
		t.Fatal("flipped bit not detected")
	}
}
