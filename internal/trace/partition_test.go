package trace

import (
	"bytes"
	"testing"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

// buildPartitionTrace writes a trace with several threads, VA-delta
// locality, and interleaved sync events — enough safe boundaries that a
// multi-way split is always possible.
func buildPartitionTrace(tb testing.TB, rounds int) []byte {
	tb.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		tb.Fatal(err)
	}
	if err := w.Attach(1, memlayout.Region{Base: 0x1000_0000, Size: 1 << 21}, core.PermRW); err != nil {
		tb.Fatal(err)
	}
	if err := w.Attach(2, memlayout.Region{Base: 0x2000_0000, Size: 1 << 21}, core.PermRW); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < rounds; i++ {
		th := core.ThreadID(1 + i%3)
		w.Instr(th, uint64(3+i%5))
		base := memlayout.VA(0x1000_0000 + (i%2)*0x1000_0000)
		w.Access(th, base+memlayout.VA(i%64)*64, 8, i%3 == 0)
		w.Access(th, base+memlayout.VA(i%64)*64+8, 8, false)
		if i%7 == 0 {
			w.SetPerm(th, core.DomainID(1+i%2), core.PermR, core.SiteID(i%4))
		}
		if i%11 == 0 {
			w.Fence(th)
		}
		if i%13 == 0 {
			w.Fetch(th, base+memlayout.VA(i)*4)
		}
	}
	w.Detach(2)
	if err := w.Close(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestSplitTraceEquivalence is the partitioner's referee: replaying the
// partitions in order must deliver exactly the event stream of a full
// sequential replay — same counts, and (via an event-recording sink)
// the same absolute VAs despite the per-thread delta encoding.
func TestSplitTraceEquivalence(t *testing.T) {
	data := buildPartitionTrace(t, 500)
	var want Counter
	wantN, err := Replay(bytes.NewReader(data), &want)
	if err != nil {
		t.Fatal(err)
	}

	for _, parts := range []int{1, 2, 4, 7, 16} {
		ps, err := SplitTrace(data, parts)
		if err != nil {
			t.Fatalf("SplitTrace(%d): %v", parts, err)
		}
		if len(ps) > parts {
			t.Fatalf("SplitTrace(%d) returned %d partitions", parts, len(ps))
		}

		// Partitions tile the event body exactly.
		off := int64(len(fileMagic))
		var total uint64
		for i, p := range ps {
			if p.Offset != off {
				t.Fatalf("parts=%d partition %d offset %d, want %d", parts, i, p.Offset, off)
			}
			off += p.Length
			total += p.Events
			if p.Final != (i == len(ps)-1) {
				t.Fatalf("parts=%d partition %d Final=%v", parts, i, p.Final)
			}
		}
		if off != int64(len(data)-1) { // end marker byte excluded
			t.Fatalf("parts=%d partitions end at %d, trace body ends at %d", parts, off, len(data)-1)
		}
		if total != wantN {
			t.Fatalf("parts=%d partitions hold %d events, trace has %d", parts, total, wantN)
		}

		// Sequential replay of the partitions reproduces the stream. A
		// recording Writer round-trips it so VA decoding errors (a wrong
		// LastVA seed) corrupt the bytes and fail the comparison.
		var rec bytes.Buffer
		rw, err := NewWriter(&rec)
		if err != nil {
			t.Fatal(err)
		}
		var got Counter
		sink := NewTee(&got, rw)
		for i, p := range ps {
			n, err := ReplayPartition(data, p, sink)
			if err != nil {
				t.Fatalf("parts=%d ReplayPartition %d: %v", parts, i, err)
			}
			if n != p.Events {
				t.Fatalf("parts=%d partition %d replayed %d events, want %d", parts, i, n, p.Events)
			}
		}
		if err := rw.Close(); err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("parts=%d partitioned counters differ: got %+v want %+v", parts, got, want)
		}
		if !bytes.Equal(rec.Bytes(), data) {
			t.Errorf("parts=%d re-recorded trace differs from original", parts)
		}
	}
}

// TestSplitTraceBoundariesAreSafe verifies each non-first partition
// starts at a sync event or a thread switch, per the split-point
// contract documented in ARCHITECTURE.md.
func TestSplitTraceBoundariesAreSafe(t *testing.T) {
	data := buildPartitionTrace(t, 300)
	ps, err := SplitTrace(data, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) < 2 {
		t.Fatalf("expected a multi-way split, got %d partitions", len(ps))
	}
	for i := 1; i < len(ps); i++ {
		kind := data[ps[i].Offset]
		if kind < evInstr || kind > evEnd {
			t.Fatalf("partition %d starts at non-event byte %#x", i, kind)
		}
	}
}

// TestReplayPartitionTruncated covers a chunk cut off mid-partition: the
// strict length/event accounting must fail, not silently replay a
// prefix.
func TestReplayPartitionTruncated(t *testing.T) {
	data := buildPartitionTrace(t, 200)
	ps, err := SplitTrace(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := ps[1]

	// Truncate the byte range mid-event.
	short := p
	short.Length -= 3
	if _, err := ReplayPartition(data, short, Discard{}); err == nil {
		t.Error("truncated partition replayed without error")
	}

	// Truncate the backing data under an intact descriptor.
	cut := data[:p.Offset+p.Length-5]
	if _, err := ReplayPartition(cut, p, Discard{}); err == nil {
		t.Error("partition over truncated data replayed without error")
	}
}

// TestReplayPartitionMisaligned covers a partition point placed inside
// an event's encoding (e.g. splitting a batch of events at a byte count
// rather than an event boundary): decode must never panic, and the
// strict length/event accounting must reject the typical misalignment.
// (A rejection on every byte shift cannot be promised — varint bodies
// are dense enough that a shifted window can parse coincidentally —
// which is exactly why the replay layer's A/B conformance gate exists.)
func TestReplayPartitionMisaligned(t *testing.T) {
	data := buildPartitionTrace(t, 200)
	ps, err := SplitTrace(data, 4)
	if err != nil {
		t.Fatal(err)
	}
	p := ps[1]
	rejected := 0
	for _, shift := range []int64{1, 2, 3} {
		bad := p
		bad.Offset += shift
		bad.Length -= shift
		if n, err := ReplayPartition(data, bad, Discard{}); err != nil || n != p.Events {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("no misaligned offset was rejected")
	}
}

// TestReplayPartitionEmpty: a zero-length partition replays cleanly as
// zero events.
func TestReplayPartitionEmpty(t *testing.T) {
	data := buildPartitionTrace(t, 50)
	empty := Partition{Offset: int64(len(fileMagic)), Length: 0, Events: 0}
	n, err := ReplayPartition(data, empty, Discard{})
	if err != nil || n != 0 {
		t.Errorf("empty partition: n=%d err=%v", n, err)
	}
}

// TestSplitTraceTruncated: the structural scan must reject a trace with
// no end marker with the same error as the sequential reader.
func TestSplitTraceTruncated(t *testing.T) {
	data := buildPartitionTrace(t, 50)
	if _, err := SplitTrace(data[:len(data)-1], 4); err == nil {
		t.Error("truncated trace split without error")
	}
	if _, err := SplitTrace([]byte("PMOXXX\x00\x01rest"), 4); err == nil {
		t.Error("bad magic split without error")
	}
}

// FuzzSplitTrace hardens the partitioner: on arbitrary bytes it must
// error or succeed without panicking, and on success the partitioned
// replay must agree with the sequential replay event-for-event.
func FuzzSplitTrace(f *testing.F) {
	f.Add(buildPartitionTrace(f, 40), 4)
	f.Add(buildPartitionTrace(f, 3), 16)
	f.Add([]byte{}, 2)
	f.Add([]byte("PMOTRC\x00\x01"), 3)

	f.Fuzz(func(t *testing.T, data []byte, parts int) {
		if parts > 64 {
			parts = 64
		}
		ps, err := SplitTrace(data, parts)
		if err != nil {
			return
		}
		var seq Counter
		seqN, err := Replay(bytes.NewReader(data), &seq)
		if err != nil {
			t.Fatalf("SplitTrace accepted a trace Replay rejects: %v", err)
		}
		var par Counter
		var parN uint64
		for i, p := range ps {
			n, err := ReplayPartition(data, p, &par)
			if err != nil {
				t.Fatalf("partition %d: %v", i, err)
			}
			parN += n
		}
		if par != seq || parN != seqN {
			t.Fatalf("partitioned replay diverged: %+v (%d) vs %+v (%d)", par, parN, seq, seqN)
		}
	})
}
