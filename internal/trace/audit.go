package trace

import (
	"fmt"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

// Auditor is a pass-through Sink that checks the least-privilege
// discipline the paper's security analysis relies on (Section VI-D):
// permission windows are opened and closed in pairs, and "any time, at
// most two PMOs are enabled" — more precisely, it records the maximum
// number of concurrently write-enabled domains per thread and flags
// windows still open at the end of the run.
type Auditor struct {
	next Sink

	writable map[core.ThreadID]map[core.DomainID]bool
	readable map[core.ThreadID]map[core.DomainID]bool

	// MaxWritable is the peak number of simultaneously write-enabled
	// domains observed for any thread.
	MaxWritable int
	// Switches counts SETPERM events seen.
	Switches uint64
	// Violations collects unchecked-access and unbalanced-window
	// findings.
	Violations []string
}

// NewAuditor wraps next with window auditing. next may be nil to audit a
// trace without simulating it.
func NewAuditor(next Sink) *Auditor {
	if next == nil {
		next = Discard{}
	}
	return &Auditor{
		next:     next,
		writable: make(map[core.ThreadID]map[core.DomainID]bool),
		readable: make(map[core.ThreadID]map[core.DomainID]bool),
	}
}

func (a *Auditor) set(m map[core.ThreadID]map[core.DomainID]bool, th core.ThreadID, d core.DomainID, on bool) {
	inner := m[th]
	if inner == nil {
		inner = make(map[core.DomainID]bool)
		m[th] = inner
	}
	if on {
		inner[d] = true
	} else {
		delete(inner, d)
	}
}

// Instr implements Sink.
func (a *Auditor) Instr(th core.ThreadID, n uint64) { a.next.Instr(th, n) }

// Access implements Sink.
func (a *Auditor) Access(th core.ThreadID, va memlayout.VA, size uint32, write bool) bool {
	return a.next.Access(th, va, size, write)
}

// Fetch implements Sink.
func (a *Auditor) Fetch(th core.ThreadID, va memlayout.VA) bool {
	return a.next.Fetch(th, va)
}

// SetPerm implements Sink: tracks per-thread windows.
func (a *Auditor) SetPerm(th core.ThreadID, d core.DomainID, p core.Perm, site core.SiteID) {
	a.Switches++
	a.set(a.writable, th, d, p.CanWrite())
	a.set(a.readable, th, d, p.CanRead())
	if n := len(a.writable[th]); n > a.MaxWritable {
		a.MaxWritable = n
	}
	a.next.SetPerm(th, d, p, site)
}

// Attach implements Sink.
func (a *Auditor) Attach(d core.DomainID, r memlayout.Region, perm core.Perm) error {
	return a.next.Attach(d, r, perm)
}

// Detach implements Sink: an open window on a detached domain is a
// discipline violation.
func (a *Auditor) Detach(d core.DomainID) {
	for th, m := range a.writable {
		if m[d] {
			a.Violations = append(a.Violations,
				fmt.Sprintf("domain %d detached while thread %d held a write window", d, th))
			delete(m, d)
		}
	}
	a.next.Detach(d)
}

// Fence implements Sink.
func (a *Auditor) Fence(th core.ThreadID) { a.next.Fence(th) }

// Finish flags windows left open at end of run and returns the findings.
func (a *Auditor) Finish() []string {
	for th, m := range a.writable {
		for d := range m {
			a.Violations = append(a.Violations,
				fmt.Sprintf("thread %d ended the run with domain %d still write-enabled", th, d))
		}
	}
	return a.Violations
}

var _ Sink = (*Auditor)(nil)
