// Package trace defines the instrumentation event stream connecting
// workloads to the timing simulator — the role Intel Pin plays in the
// paper's methodology. Workloads execute real data-structure operations
// against PMO pools and emit (thread, instruction-count, load/store,
// permission-change) events into a Sink; the simulator is a Sink, as is a
// binary trace recorder whose files can be replayed later.
package trace

import (
	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
)

// Sink consumes an instrumentation event stream. All methods are
// program-order calls from the generating workload.
type Sink interface {
	// Instr accounts n non-memory instructions executed by thread th.
	Instr(th core.ThreadID, n uint64)
	// Access is one load (write=false) or store (write=true) of size
	// bytes at va by thread th. It reports whether the access was
	// permitted: an enforcing sink (the simulated machine) returns
	// false when the domain or page permission denies it, and the
	// caller must not complete the data transfer.
	Access(th core.ThreadID, va memlayout.VA, size uint32, write bool) bool
	// Fetch is one instruction fetch from va by thread th. Domains
	// permit fetches even when inaccessible to loads/stores — the
	// paper's executable-only memory ("code can still jump to this
	// domain and execute code but all reads and writes are
	// prohibited"). It reports whether the fetch was permitted (page
	// permissions still apply).
	Fetch(th core.ThreadID, va memlayout.VA) bool
	// SetPerm is a SETPERM/pkey_set permission change by thread th for
	// domain d from the static code site.
	SetPerm(th core.ThreadID, d core.DomainID, p core.Perm, site core.SiteID)
	// Attach maps PMO domain d at region r (attach system call).
	Attach(d core.DomainID, r memlayout.Region, perm core.Perm) error
	// Detach unmaps PMO domain d.
	Detach(d core.DomainID)
	// Fence is an explicit memory fence (persist barrier) by thread th.
	Fence(th core.ThreadID)
}

// Load is shorthand for a read Access.
func Load(s Sink, th core.ThreadID, va memlayout.VA, size uint32) bool {
	return s.Access(th, va, size, false)
}

// Store is shorthand for a write Access.
func Store(s Sink, th core.ThreadID, va memlayout.VA, size uint32) bool {
	return s.Access(th, va, size, true)
}

// Tee fans an event stream out to several sinks (e.g. simulate and record
// simultaneously). Attach errors from any sink abort the attach.
type Tee struct {
	Sinks []Sink
}

// NewTee returns a Tee over the given sinks.
func NewTee(sinks ...Sink) *Tee { return &Tee{Sinks: sinks} }

// Instr implements Sink.
func (t *Tee) Instr(th core.ThreadID, n uint64) {
	for _, s := range t.Sinks {
		s.Instr(th, n)
	}
}

// Access implements Sink: the access is permitted only if every sink
// permits it.
func (t *Tee) Access(th core.ThreadID, va memlayout.VA, size uint32, write bool) bool {
	ok := true
	for _, s := range t.Sinks {
		if !s.Access(th, va, size, write) {
			ok = false
		}
	}
	return ok
}

// Fetch implements Sink.
func (t *Tee) Fetch(th core.ThreadID, va memlayout.VA) bool {
	ok := true
	for _, s := range t.Sinks {
		if !s.Fetch(th, va) {
			ok = false
		}
	}
	return ok
}

// SetPerm implements Sink.
func (t *Tee) SetPerm(th core.ThreadID, d core.DomainID, p core.Perm, site core.SiteID) {
	for _, s := range t.Sinks {
		s.SetPerm(th, d, p, site)
	}
}

// Attach implements Sink.
func (t *Tee) Attach(d core.DomainID, r memlayout.Region, perm core.Perm) error {
	for _, s := range t.Sinks {
		if err := s.Attach(d, r, perm); err != nil {
			return err
		}
	}
	return nil
}

// Detach implements Sink.
func (t *Tee) Detach(d core.DomainID) {
	for _, s := range t.Sinks {
		s.Detach(d)
	}
}

// Fence implements Sink.
func (t *Tee) Fence(th core.ThreadID) {
	for _, s := range t.Sinks {
		s.Fence(th)
	}
}

// Counter is a Sink that only counts events; useful for tests and for
// sizing traces before simulation.
type Counter struct {
	Instrs   uint64
	Loads    uint64
	Stores   uint64
	Fetches  uint64
	SetPerms uint64
	Attaches uint64
	Detaches uint64
	Fences   uint64
}

// Instr implements Sink.
func (c *Counter) Instr(_ core.ThreadID, n uint64) { c.Instrs += n }

// Access implements Sink.
func (c *Counter) Access(_ core.ThreadID, _ memlayout.VA, _ uint32, write bool) bool {
	if write {
		c.Stores++
	} else {
		c.Loads++
	}
	return true
}

// Fetch implements Sink.
func (c *Counter) Fetch(core.ThreadID, memlayout.VA) bool {
	c.Fetches++
	return true
}

// SetPerm implements Sink.
func (c *Counter) SetPerm(core.ThreadID, core.DomainID, core.Perm, core.SiteID) {
	c.SetPerms++
}

// Attach implements Sink.
func (c *Counter) Attach(core.DomainID, memlayout.Region, core.Perm) error {
	c.Attaches++
	return nil
}

// Detach implements Sink.
func (c *Counter) Detach(core.DomainID) { c.Detaches++ }

// Fence implements Sink.
func (c *Counter) Fence(core.ThreadID) { c.Fences++ }

// Discard is a Sink that drops everything.
type Discard struct{}

// Instr implements Sink.
func (Discard) Instr(core.ThreadID, uint64) {}

// Access implements Sink.
func (Discard) Access(core.ThreadID, memlayout.VA, uint32, bool) bool { return true }

// Fetch implements Sink.
func (Discard) Fetch(core.ThreadID, memlayout.VA) bool { return true }

// SetPerm implements Sink.
func (Discard) SetPerm(core.ThreadID, core.DomainID, core.Perm, core.SiteID) {}

// Attach implements Sink.
func (Discard) Attach(core.DomainID, memlayout.Region, core.Perm) error { return nil }

// Detach implements Sink.
func (Discard) Detach(core.DomainID) {}

// Fence implements Sink.
func (Discard) Fence(core.ThreadID) {}
