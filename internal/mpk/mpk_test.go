package mpk

import (
	"testing"
	"testing/quick"
)

func TestPermPredicates(t *testing.T) {
	cases := []struct {
		p           Perm
		read, write bool
	}{
		{PermRW, true, true},
		{PermR, true, false},
		{PermNone, false, false},
	}
	for _, c := range cases {
		if c.p.CanRead() != c.read || c.p.CanWrite() != c.write {
			t.Errorf("%v: CanRead=%v CanWrite=%v", c.p, c.p.CanRead(), c.p.CanWrite())
		}
		if c.p.Allows(false) != c.read || c.p.Allows(true) != c.write {
			t.Errorf("%v: Allows mismatch", c.p)
		}
	}
}

func TestPermStrictest(t *testing.T) {
	perms := []Perm{PermRW, PermR, PermNone}
	rank := func(p Perm) int {
		switch p {
		case PermRW:
			return 2
		case PermR:
			return 1
		default:
			return 0
		}
	}
	for _, a := range perms {
		for _, b := range perms {
			got := a.Strictest(b)
			want := a
			if rank(b) < rank(a) {
				want = b
			}
			if got != want {
				t.Errorf("Strictest(%v,%v) = %v, want %v", a, b, got, want)
			}
			if got != b.Strictest(a) {
				t.Errorf("Strictest not commutative for (%v,%v)", a, b)
			}
		}
	}
}

func TestPKRURoundTrip(t *testing.T) {
	f := func(raw uint32, keyRaw uint8, permRaw uint8) bool {
		r := PKRU(raw)
		key := keyRaw % NumKeys
		perm := []Perm{PermRW, PermR, PermNone}[permRaw%3]
		r2 := r.Set(key, perm)
		if r2.Get(key) != perm {
			return false
		}
		// Other keys must be untouched.
		for k := uint8(0); k < NumKeys; k++ {
			if k != key && r2.Get(k) != r.Get(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAllNone(t *testing.T) {
	r := AllNone()
	for k := uint8(0); k < NumKeys; k++ {
		if r.Get(k) != PermNone {
			t.Errorf("key %d = %v, want None", k, r.Get(k))
		}
	}
}

func TestKeyAllocator(t *testing.T) {
	a := NewKeyAllocator()
	if a.FreeCount() != NumKeys {
		t.Fatalf("FreeCount = %d, want %d", a.FreeCount(), NumKeys)
	}
	seen := make(map[uint8]bool)
	for i := 0; i < NumKeys; i++ {
		k, ok := a.Alloc()
		if !ok {
			t.Fatalf("alloc %d failed", i)
		}
		if seen[k] {
			t.Fatalf("key %d allocated twice", k)
		}
		seen[k] = true
		if !a.InUse(k) {
			t.Fatalf("key %d not marked in use", k)
		}
	}
	if _, ok := a.Alloc(); ok {
		t.Error("17th alloc must fail — the MPK scalability wall")
	}
	a.Free(5)
	if a.InUse(5) {
		t.Error("freed key still in use")
	}
	k, ok := a.Alloc()
	if !ok || k != 5 {
		t.Errorf("realloc = (%d,%v), want (5,true)", k, ok)
	}
	// Out-of-range frees are ignored.
	a.Free(200)
	if a.FreeCount() != 0 {
		t.Error("bogus free changed the allocator")
	}
}
