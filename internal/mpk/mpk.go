// Package mpk models Intel Memory Protection Keys: the per-logical-core
// 32-bit PKRU register holding a 2-bit (access-disable, write-disable)
// permission per protection key, the WRPKRU/RDPKRU instructions, and the
// kernel's 16-key allocation bitmap backing pkey_alloc/pkey_free.
package mpk

import "fmt"

// NumKeys is the number of protection keys the ISA supports. All 16 are
// allocatable to domains; the TLB tags that distinguish domainless pages
// encode "key k" as k+1 with 0 meaning no key (the paper's NULL key
// value), so no key is burned on the null encoding.
const NumKeys = 16

// Perm is a read/write permission for a domain or key.
//
// The encoding follows the paper's PTLB entry: bit 1 set means inaccessible
// (the "1x" execute-only/inaccessible class), bit 0 set means write-disabled.
type Perm uint8

// Permissions, from most to least restrictive.
const (
	PermRW   Perm = 0b00 // readable and writable
	PermR    Perm = 0b01 // read-only
	PermNone Perm = 0b10 // inaccessible (execute-only)
)

// CanRead reports whether the permission allows loads.
func (p Perm) CanRead() bool { return p&0b10 == 0 }

// CanWrite reports whether the permission allows stores.
func (p Perm) CanWrite() bool { return p == PermRW }

// Allows reports whether the permission allows the access.
func (p Perm) Allows(write bool) bool {
	if write {
		return p.CanWrite()
	}
	return p.CanRead()
}

// Strictest returns the more restrictive of p and q, implementing the
// paper's rule that "the more restrictive permission is derived to
// determine the legality of the access".
func (p Perm) Strictest(q Perm) Perm {
	r := p
	if !q.CanRead() {
		r = PermNone
	}
	if !q.CanWrite() && r == PermRW {
		r = PermR
	}
	return r
}

// String implements fmt.Stringer.
func (p Perm) String() string {
	switch p {
	case PermRW:
		return "RW"
	case PermR:
		return "R"
	case PermNone:
		return "None"
	}
	return fmt.Sprintf("Perm(%d)", uint8(p))
}

// PKRU is the 32-bit protection-key rights register of one logical core.
// Bit 2k is the access-disable (AD) bit of key k; bit 2k+1 is its
// write-disable (WD) bit.
type PKRU uint32

// Get returns the permission PKRU grants to key.
func (r PKRU) Get(key uint8) Perm {
	ad := r>>(2*uint32(key))&1 == 1
	wd := r>>(2*uint32(key)+1)&1 == 1
	switch {
	case ad:
		return PermNone
	case wd:
		return PermR
	default:
		return PermRW
	}
}

// Set returns a PKRU with key's permission replaced by p.
func (r PKRU) Set(key uint8, p Perm) PKRU {
	var ad, wd uint32
	switch p {
	case PermNone:
		ad, wd = 1, 1
	case PermR:
		ad, wd = 0, 1
	default:
		ad, wd = 0, 0
	}
	mask := uint32(0b11) << (2 * uint32(key))
	bits := (ad | wd<<1) << (2 * uint32(key))
	return PKRU(uint32(r)&^mask | bits)
}

// AllNone returns a PKRU denying access to every key, the default state
// for protected execution (PMO keys start inaccessible).
func AllNone() PKRU {
	var r PKRU
	for k := uint8(0); k < NumKeys; k++ {
		r = r.Set(k, PermNone)
	}
	return r
}

// KeyAllocator is the kernel's pkey bitmap: 16 allocatable keys.
type KeyAllocator struct {
	used uint16
}

// NewKeyAllocator returns an allocator with all 16 keys free.
func NewKeyAllocator() *KeyAllocator {
	return &KeyAllocator{}
}

// Alloc returns a free key, or ok=false if all 16 keys are allocated —
// the condition that forces software or hardware virtualization.
func (a *KeyAllocator) Alloc() (key uint8, ok bool) {
	for k := uint8(0); k < NumKeys; k++ {
		if a.used&(1<<k) == 0 {
			a.used |= 1 << k
			return k, true
		}
	}
	return 0, false
}

// Free releases key back to the allocator.
func (a *KeyAllocator) Free(key uint8) {
	if key >= NumKeys {
		return
	}
	a.used &^= 1 << key
}

// InUse reports whether key is currently allocated.
func (a *KeyAllocator) InUse(key uint8) bool {
	return key < NumKeys && a.used&(1<<key) != 0
}

// State returns the allocation bitmap (bit k set = key k allocated),
// for snapshotting.
func (a *KeyAllocator) State() uint16 { return a.used }

// SetState replaces the allocation bitmap, restoring a snapshot.
func (a *KeyAllocator) SetState(used uint16) { a.used = used }

// FreeCount returns the number of allocatable keys remaining.
func (a *KeyAllocator) FreeCount() int {
	n := 0
	for k := uint8(0); k < NumKeys; k++ {
		if a.used&(1<<k) == 0 {
			n++
		}
	}
	return n
}
