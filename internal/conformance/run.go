package conformance

import (
	"fmt"
	"strings"

	"domainvirt/internal/sim"
)

// Options configures a conformance campaign.
type Options struct {
	// Programs is the number of generated programs to replay; profiles
	// rotate round-robin. Defaults to 256.
	Programs int
	// Seed offsets the generator seeds, so distinct campaigns explore
	// distinct programs while each stays fully deterministic.
	Seed int64
	// Config is the machine configuration template; Cores and
	// MaxFaultRecords are overridden per program.
	Config sim.Config
	// CorpusDir, when non-empty, receives a minimized .prog repro for
	// every divergent program.
	CorpusDir string
}

func (o Options) withDefaults() Options {
	if o.Programs <= 0 {
		o.Programs = 256
	}
	if o.Config.Cores == 0 {
		o.Config = sim.DefaultConfig()
	}
	return o
}

// Report aggregates a campaign.
type Report struct {
	Programs    int
	Steps       int
	Accesses    int
	Denials     int
	SetPerms    int
	FloorCheck  int // programs where the lowerbound floor was asserted
	SwitchHeavy int // programs where the libmpk ceiling was asserted
	WithMPK     int // programs replayed under all six schemes
	Divergences []Divergence
	ReproPaths  []string
}

// Diverged reports whether any program violated an invariant.
func (r *Report) Diverged() bool { return len(r.Divergences) > 0 }

// Summary renders a one-paragraph human-readable digest.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conformance: %d programs, %d steps, %d accesses (%d denied), %d setperms\n",
		r.Programs, r.Steps, r.Accesses, r.Denials, r.SetPerms)
	fmt.Fprintf(&b, "  coverage: %d with all six schemes, %d floor-checked, %d switch-heavy (ceiling checked)\n",
		r.WithMPK, r.FloorCheck, r.SwitchHeavy)
	if r.Diverged() {
		fmt.Fprintf(&b, "  DIVERGENCES: %d\n", len(r.Divergences))
		for i, d := range r.Divergences {
			if i == 8 {
				fmt.Fprintf(&b, "    ... and %d more\n", len(r.Divergences)-8)
				break
			}
			fmt.Fprintf(&b, "    %s\n", d)
		}
		for _, p := range r.ReproPaths {
			fmt.Fprintf(&b, "  repro: %s\n", p)
		}
	} else {
		fmt.Fprintf(&b, "  all invariants held\n")
	}
	return b.String()
}

// Run executes a conformance campaign: generate, replay, and on
// divergence minimize and (optionally) persist a repro. The returned
// error covers I/O problems only; divergences are reported in Report.
func Run(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	rep := &Report{}
	for i := 0; i < opt.Programs; i++ {
		prof := Profile(i % int(NumProfiles))
		p := Generate(opt.Seed+int64(i), prof)
		rr := Replay(p, opt.Config)
		rep.Programs++
		rep.Steps += rr.Steps
		rep.Accesses += rr.Accesses
		rep.Denials += rr.Denials
		rep.SetPerms += rr.SetPerms
		if rr.FloorCheck {
			rep.FloorCheck++
		}
		if rr.SwitchHeavy {
			rep.SwitchHeavy++
		}
		if len(rr.Schemes) == len(sim.AllSchemes) {
			rep.WithMPK++
		}
		if rr.Diverged() {
			min := MinimizeDivergent(p, opt)
			mrr := Replay(min, opt.Config)
			rep.Divergences = append(rep.Divergences, mrr.Divergences...)
			if opt.CorpusDir != "" {
				path, err := SaveRepro(opt.CorpusDir, min)
				if err != nil {
					return rep, err
				}
				rep.ReproPaths = append(rep.ReproPaths, path)
			}
		}
	}
	return rep, nil
}
