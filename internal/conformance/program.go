// Package conformance is a randomized differential-testing harness for
// the protection engines. The paper's central claim is that all schemes
// enforce *identical* protection semantics and differ only in cycle cost;
// this package checks that claim mechanically: a seeded generator builds
// trace programs (attach/detach churn, SETPERM, loads/stores across
// threads and domains), a replayer drives the identical program through
// every scheme's machine, and invariants are verified after every step:
//
//  1. fault/no-fault decisions agree across all enforcing engines (and
//     the ideal engines never deny);
//  2. FaultRecord attribution (thread, VA, write, domain) matches an
//     independent reference permission model;
//  3. cycle accounting is monotone and the per-category breakdown sums
//     exactly to the accumulated core cycles;
//  4. on denial-free programs the lowerbound is the floor of every
//     enforcing scheme, and on switch-heavy programs libmpk is the
//     ceiling.
//
// On divergence the failing program is greedily minimized and written to
// a corpus directory that the test suite replays as regression seeds.
package conformance

import (
	"fmt"
	"math/rand"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/mpk"
)

// OpKind enumerates trace-program operations.
type OpKind uint8

// Operations. The zero value is OpAttach so a zeroed Op is still valid.
const (
	OpAttach OpKind = iota
	OpDetach
	OpSetPerm
	OpLoad
	OpStore
	OpFetch
	OpInstr
	OpFence
	numOpKinds
)

var opNames = [numOpKinds]string{
	"attach", "detach", "setperm", "load", "store", "fetch", "instr", "fence",
}

// String implements fmt.Stringer.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", uint8(k))
}

// Op is one trace-program operation. Fields not used by a kind are zero:
// Attach/Detach use D only; SetPerm uses Th, D, Perm; Load/Store/Fetch
// use Th, D, Off, Size; Instr uses Th, N; Fence uses Th.
type Op struct {
	Kind OpKind
	Th   core.ThreadID
	D    core.DomainID
	Perm core.Perm
	Off  uint64
	Size uint32
	N    uint64
}

// Profile classifies a generated program; the replayer derives which
// invariants apply from the observed trace, not from this label, but the
// label steers generation and is preserved in repro files.
type Profile uint8

// Profiles.
const (
	// ProfileLegal grants before every access (no denials) and keeps at
	// most 16 live domains, so all six schemes — including default MPK —
	// replay it.
	ProfileLegal Profile = iota
	// ProfileAdversarial mixes random permissions and accesses without
	// repair, exercising the denial and fault-attribution paths.
	ProfileAdversarial
	// ProfileChurn attaches and detaches from a >16-domain pool, driving
	// key eviction and stale-state corners (MPK is excluded: it cannot
	// attach that many domains).
	ProfileChurn
	// ProfileSwitchHeavy is denial-free and SETPERM-dense over >16
	// domains — the regime where the paper's lowerbound ≤ scheme ≤
	// libmpk cycle ordering must hold.
	ProfileSwitchHeavy
	NumProfiles
)

var profileNames = [NumProfiles]string{"legal", "adversarial", "churn", "switchheavy"}

// String implements fmt.Stringer.
func (p Profile) String() string {
	if int(p) < len(profileNames) {
		return profileNames[p]
	}
	return fmt.Sprintf("Profile(%d)", uint8(p))
}

// ParseProfile is the inverse of String.
func ParseProfile(s string) (Profile, error) {
	for i, n := range profileNames {
		if n == s {
			return Profile(i), nil
		}
	}
	return 0, fmt.Errorf("conformance: unknown profile %q", s)
}

// Program is one generated trace program plus the machine shape it runs
// on. The same program replays identically under every scheme.
type Program struct {
	Seed    int64
	Profile Profile
	Cores   int
	Threads int
	Ops     []Op
}

// regionBase anchors the conformance PMO address range, matching the
// layout the workloads use.
const regionBase = 0x2000_0000_0000

// RegionSize is the fixed per-domain VA footprint (one 2 MB slot).
const RegionSize = 2 << 20

// RegionFor returns the VA region of domain d (d >= 1); regions are
// disjoint 2 MB slots so the reference model can attribute any VA.
func RegionFor(d core.DomainID) memlayout.Region {
	return memlayout.Region{
		Base: memlayout.VA(regionBase + (uint64(d)-1)*RegionSize),
		Size: RegionSize,
	}
}

// accessPages bounds the distinct pages a program touches per domain,
// keeping TLB pressure (hits, misses, and invalidation refills) mixed.
const accessPages = 32

// genState tracks the generator's view of machine state so legal
// profiles can repair permissions before each access.
type genState struct {
	rng     *rand.Rand
	threads int
	live    map[core.DomainID]bool
	perm    map[core.DomainID]map[core.ThreadID]core.Perm
	ops     []Op
}

func (g *genState) thread() core.ThreadID {
	return core.ThreadID(1 + g.rng.Intn(g.threads))
}

func (g *genState) emit(op Op) { g.ops = append(g.ops, op) }

func (g *genState) attach(d core.DomainID) {
	g.live[d] = true
	g.perm[d] = make(map[core.ThreadID]core.Perm)
	g.emit(Op{Kind: OpAttach, D: d})
}

func (g *genState) detach(d core.DomainID) {
	delete(g.live, d)
	delete(g.perm, d)
	g.emit(Op{Kind: OpDetach, D: d})
}

func (g *genState) setPerm(th core.ThreadID, d core.DomainID, p core.Perm) {
	if m := g.perm[d]; m != nil {
		m[th] = p
	}
	g.emit(Op{Kind: OpSetPerm, Th: th, D: d, Perm: p})
}

func (g *genState) permOf(th core.ThreadID, d core.DomainID) core.Perm {
	if m := g.perm[d]; m != nil {
		if p, ok := m[th]; ok {
			return p
		}
	}
	return core.PermNone
}

// offset picks an access offset mixing a few hot pages with colder ones.
func (g *genState) offset() uint64 {
	page := uint64(g.rng.Intn(accessPages))
	if g.rng.Intn(4) > 0 {
		page = uint64(g.rng.Intn(4)) // hot subset
	}
	line := uint64(g.rng.Intn(8)) << 6
	return page<<memlayout.PageShift + line
}

func (g *genState) size() uint32 {
	switch g.rng.Intn(8) {
	case 0:
		return 1
	case 1:
		return uint32(1 + g.rng.Intn(64)) // may straddle a line boundary
	default:
		return 8
	}
}

func (g *genState) access(th core.ThreadID, d core.DomainID, write bool) {
	kind := OpLoad
	if write {
		kind = OpStore
	}
	g.emit(Op{Kind: kind, Th: th, D: d, Off: g.offset(), Size: g.size()})
}

// liveDomain returns a uniformly random live domain, or 0 if none.
func (g *genState) liveDomain() core.DomainID {
	if len(g.live) == 0 {
		return 0
	}
	ds := make([]core.DomainID, 0, len(g.live))
	for d := range g.live {
		ds = append(ds, d)
	}
	// Deterministic order for the seeded pick: map iteration is random.
	sortDomains(ds)
	return ds[g.rng.Intn(len(ds))]
}

func sortDomains(ds []core.DomainID) {
	for i := 1; i < len(ds); i++ {
		for j := i; j > 0 && ds[j] < ds[j-1]; j-- {
			ds[j], ds[j-1] = ds[j-1], ds[j]
		}
	}
}

// Generate builds a deterministic random program: the same (seed,
// profile) pair always yields the identical op list.
func Generate(seed int64, prof Profile) Program {
	rng := rand.New(rand.NewSource(seed*int64(NumProfiles) + int64(prof) + 1))
	threads := 1 + rng.Intn(3)
	cores := 1 + rng.Intn(2)
	g := &genState{
		rng:     rng,
		threads: threads,
		live:    make(map[core.DomainID]bool),
		perm:    make(map[core.DomainID]map[core.ThreadID]core.Perm),
	}

	var domains int
	switch prof {
	case ProfileChurn:
		domains = 18 + rng.Intn(30)
	case ProfileSwitchHeavy:
		domains = 24 + rng.Intn(16)
	default:
		domains = 4 + rng.Intn(mpk.NumKeys-3) // 4..16: default MPK replays too
	}

	initial := domains
	if prof == ProfileChurn {
		initial = domains/2 + 1
	}
	for d := 1; d <= initial; d++ {
		g.attach(core.DomainID(d))
	}

	switch prof {
	case ProfileSwitchHeavy:
		rounds := 100 + rng.Intn(100)
		for i := 0; i < rounds; i++ {
			th := g.thread()
			d := g.liveDomain()
			p := core.PermR
			if rng.Intn(2) == 0 {
				p = core.PermRW
			}
			g.setPerm(th, d, p)
			for k := rng.Intn(3); k > 0; k-- {
				g.access(th, d, p == core.PermRW && rng.Intn(2) == 0)
			}
			if rng.Intn(8) == 0 {
				g.emit(Op{Kind: OpInstr, Th: th, N: uint64(50 + rng.Intn(200))})
			}
		}
	default:
		steps := 150 + rng.Intn(250)
		for i := 0; i < steps; i++ {
			th := g.thread()
			switch w := rng.Intn(100); {
			case w < 25: // setperm
				if d := g.liveDomain(); d != 0 {
					p := []core.Perm{core.PermRW, core.PermR, core.PermNone}[rng.Intn(3)]
					g.setPerm(th, d, p)
				}
			case w < 75: // load or store
				write := rng.Intn(5) < 2
				d := g.liveDomain()
				if prof != ProfileLegal && rng.Intn(10) == 0 {
					// Target a currently-dead domain: a domainless
					// access every scheme must allow.
					d = core.DomainID(1 + rng.Intn(domains))
					if g.live[d] {
						d = 0
					}
				}
				if d == 0 {
					continue
				}
				if prof == ProfileLegal && g.live[d] {
					// Repair the permission so the access is granted.
					need := core.PermR
					if write {
						need = core.PermRW
					}
					if !g.permOf(th, d).Allows(write) {
						g.setPerm(th, d, need)
					}
				}
				g.access(th, d, write)
			case w < 85: // compute
				g.emit(Op{Kind: OpInstr, Th: th, N: uint64(50 + rng.Intn(400))})
			case w < 90: // fence
				g.emit(Op{Kind: OpFence, Th: th})
			case w < 95: // fetch from a live domain (never blocked)
				if d := g.liveDomain(); d != 0 {
					g.emit(Op{Kind: OpFetch, Th: th, D: d, Off: g.offset()})
				}
			default: // pool churn
				churn := 1
				if prof != ProfileLegal {
					churn = 1 + rng.Intn(2)
				}
				for ; churn > 0; churn-- {
					if len(g.live) > 1 && rng.Intn(2) == 0 {
						g.detach(g.liveDomain())
					} else if len(g.live) < domains {
						for d := 1; d <= domains; d++ {
							if !g.live[core.DomainID(d)] {
								g.attach(core.DomainID(d))
								break
							}
						}
					}
				}
			}
		}
	}

	return Program{
		Seed:    seed,
		Profile: prof,
		Cores:   cores,
		Threads: threads,
		Ops:     g.ops,
	}
}
