package conformance

import (
	"testing"

	"domainvirt/internal/sim"
)

// FuzzConformProgram decodes arbitrary bytes into a trace program and
// differentially replays it: any invariant violation — a verdict or
// attribution disagreement between engines, broken cycle accounting —
// fails the fuzz run. The byte decoder maps every input onto a
// well-formed program, so the whole input space is productive.
func FuzzConformProgram(f *testing.F) {
	for seed := int64(0); seed < 4; seed++ {
		p := Generate(seed, Profile(seed%int64(NumProfiles)))
		if len(p.Ops) > 64 {
			p.Ops = p.Ops[:64] // keep seeds small so mutation throughput stays high
		}
		f.Add(EncodeBytes(p))
	}
	// A hand-built seed hitting the key-reuse corner directly:
	// attach, attach, grant, detach, re-grant, access.
	f.Add(EncodeBytes(Program{
		Cores: 1, Threads: 3,
		Ops: []Op{
			{Kind: OpAttach, D: 6},
			{Kind: OpAttach, D: 9},
			{Kind: OpSetPerm, Th: 2, D: 9, Perm: 0},
			{Kind: OpDetach, D: 9},
			{Kind: OpSetPerm, Th: 1, D: 6, Perm: 2},
			{Kind: OpLoad, Th: 2, D: 6, Off: 0x30c0, Size: 8},
		},
	}))
	cfg := sim.DefaultConfig()
	f.Fuzz(func(t *testing.T, data []byte) {
		p := DecodeBytes(data)
		rr := Replay(p, cfg)
		if rr.Diverged() {
			t.Fatalf("divergence: %v\nprogram: %+v", rr.Divergences[0], p)
		}
	})
}
