package conformance

import "domainvirt/internal/core"

// Byte encoding for the fuzzer: 2 header bytes (cores, threads) then 6
// bytes per op, every field mapped modulo its range so that *any* byte
// string decodes to a well-formed Program. The fuzzer mutates raw
// bytes; normalization inside Replay handles whatever op sequence falls
// out.

const (
	byteHeaderLen = 2
	byteOpLen     = 6
	// byteMaxDomains keeps fuzzed programs inside the churn regime
	// (above MPK's 16 keys, far below the DRT capacity).
	byteMaxDomains = 24
	byteMaxOps     = 2048
)

var bytePerms = [3]core.Perm{core.PermRW, core.PermR, core.PermNone}

// DecodeBytes maps an arbitrary byte string onto a Program.
func DecodeBytes(data []byte) Program {
	p := Program{Profile: ProfileAdversarial, Cores: 1, Threads: 1}
	if len(data) < byteHeaderLen {
		return p
	}
	p.Cores = 1 + int(data[0]%2)
	p.Threads = 1 + int(data[1]%3)
	for i := byteHeaderLen; i+byteOpLen <= len(data) && len(p.Ops) < byteMaxOps; i += byteOpLen {
		b := data[i : i+byteOpLen]
		op := Op{
			Kind: OpKind(b[0] % uint8(numOpKinds)),
			Th:   core.ThreadID(1 + int(b[1])%p.Threads),
			D:    core.DomainID(1 + b[2]%byteMaxDomains),
			Perm: bytePerms[b[3]%3],
			Off:  uint64(b[4]%32)<<12 | uint64(b[5]%8)<<6,
			Size: uint32(1 + b[3]%64),
			N:    uint64(1+b[4]) * 16,
		}
		p.Ops = append(p.Ops, op)
	}
	return p
}

// EncodeBytes is the (lossy) inverse of DecodeBytes, used to seed the
// fuzz corpus from generated programs: fields outside the byte ranges
// are clamped, so EncodeBytes∘DecodeBytes is not an identity, but the
// decoded program exercises the same op sequence shape.
func EncodeBytes(p Program) []byte {
	if p.Cores < 1 {
		p.Cores = 1
	}
	if p.Threads < 1 {
		p.Threads = 1
	}
	out := make([]byte, 0, byteHeaderLen+byteOpLen*len(p.Ops))
	out = append(out, byte((p.Cores-1)%2), byte((p.Threads-1)%3))
	for _, op := range p.Ops {
		if len(out) >= byteHeaderLen+byteOpLen*byteMaxOps {
			break
		}
		var permIdx byte
		for i, pm := range bytePerms {
			if pm == op.Perm {
				permIdx = byte(i)
			}
		}
		out = append(out,
			byte(op.Kind)%uint8(numOpKinds),
			byte((uint64(op.Th)-1)%uint64(p.Threads)),
			byte((uint64(op.D)-1)%byteMaxDomains),
			permIdx,
			byte(op.Off>>12%32),
			byte(op.Off>>6%8),
		)
	}
	return out
}
