package conformance

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"domainvirt/internal/core"
)

// The corpus format is a line-oriented text encoding of a Program —
// human-readable so a checked-in repro doubles as documentation of the
// bug it pins down:
//
//	conformance program v1
//	seed 17 profile legal cores 2 threads 3
//	attach 5
//	setperm 1 5 rw
//	store 1 5 0x1040 8
//	load 2 5 0x1040 8
//	detach 5
//	instr 1 200
//	fence 1
//
// Lines starting with '#' are comments.

const corpusHeader = "conformance program v1"

func permName(p core.Perm) string {
	switch p {
	case core.PermRW:
		return "rw"
	case core.PermR:
		return "r"
	default:
		return "none"
	}
}

func parsePerm(s string) (core.Perm, error) {
	switch s {
	case "rw":
		return core.PermRW, nil
	case "r":
		return core.PermR, nil
	case "none":
		return core.PermNone, nil
	}
	return 0, fmt.Errorf("conformance: bad perm %q", s)
}

// WriteTo serializes p in the corpus text format.
func (p Program) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", corpusHeader)
	fmt.Fprintf(&b, "seed %d profile %s cores %d threads %d\n",
		p.Seed, p.Profile, p.Cores, p.Threads)
	for _, op := range p.Ops {
		switch op.Kind {
		case OpAttach, OpDetach:
			fmt.Fprintf(&b, "%s %d\n", op.Kind, op.D)
		case OpSetPerm:
			fmt.Fprintf(&b, "setperm %d %d %s\n", op.Th, op.D, permName(op.Perm))
		case OpLoad, OpStore:
			fmt.Fprintf(&b, "%s %d %d %#x %d\n", op.Kind, op.Th, op.D, op.Off, op.Size)
		case OpFetch:
			fmt.Fprintf(&b, "fetch %d %d %#x\n", op.Th, op.D, op.Off)
		case OpInstr:
			fmt.Fprintf(&b, "instr %d %d\n", op.Th, op.N)
		case OpFence:
			fmt.Fprintf(&b, "fence %d\n", op.Th)
		default:
			return 0, fmt.Errorf("conformance: cannot serialize op kind %v", op.Kind)
		}
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// ReadProgram parses the corpus text format.
func ReadProgram(r io.Reader) (Program, error) {
	var p Program
	sc := bufio.NewScanner(r)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}

	s, ok := next()
	if !ok || s != corpusHeader {
		return p, fmt.Errorf("conformance: missing %q header", corpusHeader)
	}
	s, ok = next()
	if !ok {
		return p, fmt.Errorf("conformance: missing program header line")
	}
	var profName string
	if _, err := fmt.Sscanf(s, "seed %d profile %s cores %d threads %d",
		&p.Seed, &profName, &p.Cores, &p.Threads); err != nil {
		return p, fmt.Errorf("conformance: line %d: %v", line, err)
	}
	prof, err := ParseProfile(profName)
	if err != nil {
		return p, err
	}
	p.Profile = prof

	for {
		s, ok := next()
		if !ok {
			break
		}
		f := strings.Fields(s)
		var op Op
		var err error
		switch f[0] {
		case "attach", "detach":
			op.Kind = OpAttach
			if f[0] == "detach" {
				op.Kind = OpDetach
			}
			_, err = fmt.Sscanf(s, f[0]+" %d", &op.D)
		case "setperm":
			op.Kind = OpSetPerm
			var perm string
			if _, err = fmt.Sscanf(s, "setperm %d %d %s", &op.Th, &op.D, &perm); err == nil {
				op.Perm, err = parsePerm(perm)
			}
		case "load", "store":
			op.Kind = OpLoad
			if f[0] == "store" {
				op.Kind = OpStore
			}
			_, err = fmt.Sscanf(s, f[0]+" %d %d %v %d", &op.Th, &op.D, &op.Off, &op.Size)
		case "fetch":
			op.Kind = OpFetch
			_, err = fmt.Sscanf(s, "fetch %d %d %v", &op.Th, &op.D, &op.Off)
		case "instr":
			op.Kind = OpInstr
			_, err = fmt.Sscanf(s, "instr %d %d", &op.Th, &op.N)
		case "fence":
			op.Kind = OpFence
			_, err = fmt.Sscanf(s, "fence %d", &op.Th)
		default:
			err = fmt.Errorf("unknown op %q", f[0])
		}
		if err != nil {
			return p, fmt.Errorf("conformance: line %d: %v", line, err)
		}
		p.Ops = append(p.Ops, op)
	}
	return p, sc.Err()
}

// SaveRepro writes p into dir (created if needed) under a name derived
// from its identity, and returns the path.
func SaveRepro(dir string, p Program) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("repro-%s-seed%d-%dops.prog", p.Profile, p.Seed, len(p.Ops))
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if _, err := p.WriteTo(f); err != nil {
		f.Close()
		return "", err
	}
	return path, f.Close()
}

// LoadCorpus reads every *.prog file in dir, sorted by name; a missing
// directory yields an empty corpus.
func LoadCorpus(dir string) (map[string]Program, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "*.prog"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make(map[string]Program, len(paths))
	for _, path := range paths {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		p, err := ReadProgram(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out[filepath.Base(path)] = p
	}
	return out, nil
}
