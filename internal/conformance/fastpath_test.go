package conformance

import (
	"reflect"
	"testing"

	"domainvirt/internal/sim"
)

// TestFastPathCycleIdentity is the referee for the simulator's hot-path
// optimizations: every generated program must replay to bit-identical
// per-scheme cycle and overhead totals with the per-core L0 fast path
// enabled (the default) and disabled (every access forced down the full
// TLB-lookup/engine-check pipeline). A fast path that changed a single
// simulated cycle, counter, or verdict would either diverge here or
// shift a total.
func TestFastPathCycleIdentity(t *testing.T) {
	for prof := Profile(0); prof < NumProfiles; prof++ {
		prof := prof
		t.Run(prof.String(), func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 6; seed++ {
				p := Generate(seed, prof)

				fast := Replay(p, sim.DefaultConfig())
				slow := sim.DefaultConfig()
				slow.DisableFastPath = true
				full := Replay(p, slow)

				if fast.Diverged() {
					t.Fatalf("seed %d: fast-path replay diverged: %v", seed, fast.Divergences[0])
				}
				if full.Diverged() {
					t.Fatalf("seed %d: full-pipeline replay diverged: %v", seed, full.Divergences[0])
				}
				if !reflect.DeepEqual(fast.Cycles, full.Cycles) {
					t.Fatalf("seed %d: cycles differ with fast path off:\n  fast: %v\n  full: %v",
						seed, fast.Cycles, full.Cycles)
				}
				if !reflect.DeepEqual(fast.Overhead, full.Overhead) {
					t.Fatalf("seed %d: overhead differs with fast path off:\n  fast: %v\n  full: %v",
						seed, fast.Overhead, full.Overhead)
				}
				if fast.Denials != full.Denials {
					t.Fatalf("seed %d: denial count differs: fast %d, full %d",
						seed, fast.Denials, full.Denials)
				}
			}
		})
	}
}
