package conformance

// shrinkBudget caps how many candidate replays a minimization may spend.
// Each probe replays the whole candidate under all schemes, so the
// budget bounds worst-case shrink time on large programs.
const shrinkBudget = 400

// MinimizeSlice greedily shrinks items while the failing predicate keeps
// holding — ddmin-style: try removing chunks, halving the chunk size
// whenever a pass over the list removes nothing. The returned slice
// still satisfies failing (or is items unchanged if items does not).
// The predicate must be deterministic; budget caps how many candidate
// evaluations the search may spend. Shared by program minimization here
// and crash-schedule minimization in internal/crashconform.
func MinimizeSlice[T any](items []T, budget int, failing func([]T) bool) []T {
	if !failing(items) {
		return items
	}
	probe := func(cand []T) bool {
		if budget == 0 {
			return false
		}
		budget--
		return failing(cand)
	}
	for chunk := (len(items) + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(items); {
			cand := make([]T, 0, len(items)-chunk)
			cand = append(cand, items[:start]...)
			cand = append(cand, items[start+chunk:]...)
			if probe(cand) {
				items = cand
				removed = true
			} else {
				start += chunk
			}
		}
		if budget == 0 {
			break
		}
		if !removed || chunk > len(items) {
			if chunk == 1 {
				break
			}
			chunk /= 2
		}
	}
	return items
}

// Minimize greedily shrinks p's op list while the failing predicate
// keeps holding. The returned program still satisfies failing (or is p
// unchanged if p does not). The predicate must be deterministic.
func Minimize(p Program, failing func(Program) bool) Program {
	p.Ops = MinimizeSlice(p.Ops, shrinkBudget, func(ops []Op) bool {
		q := p
		q.Ops = ops
		return failing(q)
	})
	return p
}

// MinimizeDivergent shrinks a program that diverges under Replay to a
// smaller one that still diverges.
func MinimizeDivergent(p Program, cfg Options) Program {
	return Minimize(p, func(q Program) bool {
		return Replay(q, cfg.Config).Diverged()
	})
}
