package conformance

// shrinkBudget caps how many candidate replays a minimization may spend.
// Each probe replays the whole candidate under all schemes, so the
// budget bounds worst-case shrink time on large programs.
const shrinkBudget = 400

// Minimize greedily shrinks p's op list while the failing predicate
// keeps holding — ddmin-style: try removing chunks, halving the chunk
// size whenever a pass over the list removes nothing. The returned
// program still satisfies failing (or is p unchanged if p does not).
// The predicate must be deterministic.
func Minimize(p Program, failing func(Program) bool) Program {
	if !failing(p) {
		return p
	}
	budget := shrinkBudget
	probe := func(ops []Op) bool {
		if budget == 0 {
			return false
		}
		budget--
		q := p
		q.Ops = ops
		return failing(q)
	}

	ops := p.Ops
	for chunk := (len(ops) + 1) / 2; chunk >= 1; {
		removed := false
		for start := 0; start+chunk <= len(ops); {
			cand := make([]Op, 0, len(ops)-chunk)
			cand = append(cand, ops[:start]...)
			cand = append(cand, ops[start+chunk:]...)
			if probe(cand) {
				ops = cand
				removed = true
			} else {
				start += chunk
			}
		}
		if budget == 0 {
			break
		}
		if !removed || chunk > len(ops) {
			if chunk == 1 {
				break
			}
			chunk /= 2
		}
	}
	p.Ops = ops
	return p
}

// MinimizeDivergent shrinks a program that diverges under Replay to a
// smaller one that still diverges.
func MinimizeDivergent(p Program, cfg Options) Program {
	return Minimize(p, func(q Program) bool {
		return Replay(q, cfg.Config).Diverged()
	})
}
