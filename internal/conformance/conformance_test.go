package conformance

import (
	"bytes"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"domainvirt/internal/core"
	"domainvirt/internal/sim"
)

// campaignPrograms is the acceptance-level batch: ≥1,000 seeded programs
// replayed differentially across all six schemes.
const campaignPrograms = 1000

// TestCampaign is the tentpole check: a large deterministic campaign
// must hold every invariant, and its generator must exercise all the
// regimes the invariants are conditional on.
func TestCampaign(t *testing.T) {
	start := time.Now()
	rep, err := Run(Options{Programs: campaignPrograms, Seed: 1, CorpusDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("campaign: %v\n%s", time.Since(start), rep.Summary())
	if rep.Diverged() {
		t.Fatalf("invariant violations:\n%s", rep.Summary())
	}
	if rep.Programs != campaignPrograms {
		t.Fatalf("ran %d programs, want %d", rep.Programs, campaignPrograms)
	}
	// Coverage: the campaign must include programs that replay all six
	// schemes AND programs whose domain count forces MPK out.
	if rep.WithMPK == 0 || rep.WithMPK == rep.Programs {
		t.Errorf("scheme coverage degenerate: %d/%d programs include default MPK", rep.WithMPK, rep.Programs)
	}
	if rep.FloorCheck == 0 {
		t.Error("no program qualified for the lowerbound-floor check")
	}
	if rep.SwitchHeavy == 0 {
		t.Error("no program qualified for the libmpk-ceiling check")
	}
	if rep.Denials == 0 {
		t.Error("no denied access generated: the fault-attribution invariant was never exercised")
	}
}

// TestGenerateDeterministic: the same (seed, profile) always yields the
// identical program.
func TestGenerateDeterministic(t *testing.T) {
	for prof := Profile(0); prof < NumProfiles; prof++ {
		a := Generate(42, prof)
		b := Generate(42, prof)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%v: two generations of seed 42 differ", prof)
		}
		if len(a.Ops) == 0 {
			t.Fatalf("%v: empty program", prof)
		}
	}
}

// TestReplayDeterministic: replaying the same program twice yields
// byte-identical cycle totals for every scheme.
func TestReplayDeterministic(t *testing.T) {
	p := Generate(7, ProfileChurn)
	a := Replay(p, sim.DefaultConfig())
	b := Replay(p, sim.DefaultConfig())
	if a.Diverged() || b.Diverged() {
		t.Fatalf("unexpected divergence: %v %v", a.Divergences, b.Divergences)
	}
	if !reflect.DeepEqual(a.Cycles, b.Cycles) {
		t.Fatalf("cycle totals differ between replays:\n%v\n%v", a.Cycles, b.Cycles)
	}
}

// TestSchemesFor: MPK participates exactly when the peak live-domain
// count fits its 16 keys.
func TestSchemesFor(t *testing.T) {
	small := Generate(3, ProfileLegal)       // ≤ 16 domains
	large := Generate(3, ProfileSwitchHeavy) // > 16 domains
	if got := SchemesFor(small); len(got) != len(sim.AllSchemes) {
		t.Errorf("legal program replays %d schemes, want all %d", len(got), len(sim.AllSchemes))
	}
	for _, s := range SchemesFor(large) {
		if s == sim.SchemeMPK {
			t.Error("switch-heavy program (>16 domains) must exclude default MPK")
		}
	}
}

// TestMinimize: the shrinker must reduce to a minimal op list for a
// synthetic predicate and leave non-failing programs untouched.
func TestMinimize(t *testing.T) {
	p := Generate(11, ProfileLegal)
	stores := 0
	for _, op := range p.Ops {
		if op.Kind == OpStore {
			stores++
		}
	}
	if stores < 3 {
		t.Fatalf("seed program has only %d stores", stores)
	}
	// Failing := "contains at least 3 stores". The minimum is exactly 3 ops.
	failing := func(q Program) bool {
		n := 0
		for _, op := range q.Ops {
			if op.Kind == OpStore {
				n++
			}
		}
		return n >= 3
	}
	min := Minimize(p, failing)
	if !failing(min) {
		t.Fatal("minimized program no longer fails")
	}
	if len(min.Ops) != 3 {
		t.Errorf("minimized to %d ops, want exactly 3", len(min.Ops))
	}

	unchanged := Minimize(p, func(Program) bool { return false })
	if !reflect.DeepEqual(unchanged, p) {
		t.Error("non-failing program was modified")
	}
}

// TestCorpusRoundTrip: WriteTo → ReadProgram is the identity on
// generated programs.
func TestCorpusRoundTrip(t *testing.T) {
	for prof := Profile(0); prof < NumProfiles; prof++ {
		p := Generate(5, prof)
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		q, err := ReadProgram(&buf)
		if err != nil {
			t.Fatalf("%v: %v", prof, err)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("%v: round trip changed the program", prof)
		}
	}
}

// TestSaveRepro: a divergence corpus entry lands on disk and reloads.
func TestSaveRepro(t *testing.T) {
	dir := t.TempDir()
	p := Generate(9, ProfileAdversarial)
	path, err := SaveRepro(dir, p)
	if err != nil {
		t.Fatal(err)
	}
	corpus, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	q, ok := corpus[filepath.Base(path)]
	if !ok {
		t.Fatalf("saved repro %s not found in corpus", path)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatal("saved repro does not reload identically")
	}
}

// TestRegressionCorpus replays every checked-in repro: each one pinned a
// real divergence (a libmpk key-reuse leak, stale TLB entries across
// attach/detach, a Fetch accounting double-count) and must stay fixed.
func TestRegressionCorpus(t *testing.T) {
	corpus, err := LoadCorpus(filepath.Join("testdata", "regressions"))
	if err != nil {
		t.Fatal(err)
	}
	if len(corpus) < 4 {
		t.Fatalf("regression corpus has %d programs, expected the checked-in seeds", len(corpus))
	}
	for name, p := range corpus {
		rr := Replay(p, sim.DefaultConfig())
		if rr.Diverged() {
			t.Errorf("%s regressed:\n  %v", name, rr.Divergences[0])
		}
	}
}

// TestReferenceModelDenials: a hand-written adversarial program where
// the oracle's expected verdicts are known exactly; the replayer must
// agree and attribute every fault correctly (this is the direct test of
// invariants 1 and 2 on a case a human can audit).
func TestReferenceModelDenials(t *testing.T) {
	p := Program{
		Seed: -1, Profile: ProfileAdversarial, Cores: 1, Threads: 2,
		Ops: []Op{
			{Kind: OpAttach, D: 1},
			{Kind: OpStore, Th: 1, D: 1, Off: 0x40, Size: 8},   // no grant: deny
			{Kind: OpSetPerm, Th: 1, D: 1, Perm: core.PermR},   // grant read
			{Kind: OpLoad, Th: 1, D: 1, Off: 0x40, Size: 8},    // allowed
			{Kind: OpStore, Th: 1, D: 1, Off: 0x40, Size: 8},   // read-only: deny
			{Kind: OpLoad, Th: 2, D: 1, Off: 0x40, Size: 8},    // other thread: deny
			{Kind: OpDetach, D: 1},
			{Kind: OpLoad, Th: 2, D: 1, Off: 0x40, Size: 8},    // domainless: allowed
		},
	}
	rr := Replay(p, sim.DefaultConfig())
	if rr.Diverged() {
		t.Fatalf("divergence on audited program: %v", rr.Divergences[0])
	}
	if rr.Denials != 3 {
		t.Errorf("oracle denied %d accesses, want 3", rr.Denials)
	}
	if rr.Skipped != 0 {
		t.Errorf("normalization dropped %d ops from a well-formed program", rr.Skipped)
	}
}
