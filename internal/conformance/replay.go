package conformance

import (
	"fmt"

	"domainvirt/internal/core"
	"domainvirt/internal/memlayout"
	"domainvirt/internal/mpk"
	"domainvirt/internal/sim"
)

// Divergence is one invariant violation observed during a replay.
type Divergence struct {
	Step   int    // index into the normalized op list (-1: end-of-run check)
	Scheme string // engine name, or "" for cross-scheme checks
	Kind   string // stable machine-readable class
	Detail string
}

// String implements fmt.Stringer.
func (d Divergence) String() string {
	return fmt.Sprintf("step %d scheme %q [%s]: %s", d.Step, d.Scheme, d.Kind, d.Detail)
}

// RunResult summarizes one program's differential replay.
type RunResult struct {
	Program     Program
	Schemes     []sim.Scheme // schemes actually replayed
	Steps       int          // normalized ops driven
	Skipped     int          // ops dropped by normalization
	Accesses    int
	Denials     int // accesses the reference model denied
	SetPerms    int
	MaxLive     int  // peak concurrently-attached domains
	Detaches    int
	DenialFree  bool // no access was denied by the reference model
	FloorCheck  bool // invariant 4a (lowerbound floor) applied
	SwitchHeavy bool // invariant 4b (libmpk ceiling) applied
	Divergences []Divergence
	Cycles      map[sim.Scheme]uint64 // total work cycles per scheme
	Overhead    map[sim.Scheme]uint64 // protection overhead per scheme
}

// Diverged reports whether any invariant failed.
func (r *RunResult) Diverged() bool { return len(r.Divergences) > 0 }

// normalize drops ops that reference state that does not exist at that
// point (attach of a live domain, detach/setperm of a dead one, a
// malformed thread or size). This keeps the invariants sound under
// shrinking and fuzzing: engines legitimately differ in what a SETPERM
// on a never-attached domain *costs* (libmpk maps the key in, MPK
// ignores it), so such ops carry no cross-scheme meaning.
func normalize(p Program) (ops []Op, skipped, maxLive int) {
	live := make(map[core.DomainID]bool)
	for _, op := range p.Ops {
		ok := true
		if op.Th < 1 || int(op.Th) > p.Threads {
			op.Th = 1
		}
		switch op.Kind {
		case OpAttach:
			ok = op.D >= 1 && !live[op.D]
			if ok {
				live[op.D] = true
				if len(live) > maxLive {
					maxLive = len(live)
				}
			}
		case OpDetach:
			ok = live[op.D]
			if ok {
				delete(live, op.D)
			}
		case OpSetPerm:
			ok = live[op.D]
		case OpLoad, OpStore, OpFetch:
			ok = op.D >= 1
			if op.Size == 0 {
				op.Size = 8
			}
			if op.Size > RegionSize {
				op.Size = 8
			}
			if op.Off+uint64(op.Size) > RegionSize {
				op.Off %= RegionSize - uint64(op.Size)
			}
		case OpInstr:
			ok = op.N > 0
			if op.N > 1<<20 {
				op.N = 1 << 20
			}
		case OpFence:
		default:
			ok = false
		}
		if ok {
			ops = append(ops, op)
		} else {
			skipped++
		}
	}
	return ops, skipped, maxLive
}

// refModel is the independent permission oracle the engines are checked
// against: live regions plus a (domain, thread) → Perm map, with
// detach clearing the domain's grants.
type refModel struct {
	live map[core.DomainID]bool
	perm map[core.DomainID]map[core.ThreadID]core.Perm
}

func newRefModel() *refModel {
	return &refModel{
		live: make(map[core.DomainID]bool),
		perm: make(map[core.DomainID]map[core.ThreadID]core.Perm),
	}
}

func (rm *refModel) attach(d core.DomainID) {
	rm.live[d] = true
	rm.perm[d] = make(map[core.ThreadID]core.Perm)
}

func (rm *refModel) detach(d core.DomainID) {
	delete(rm.live, d)
	delete(rm.perm, d)
}

func (rm *refModel) setPerm(th core.ThreadID, d core.DomainID, p core.Perm) {
	if m := rm.perm[d]; m != nil {
		m[th] = p
	}
}

// allows is the oracle verdict: accesses outside any live domain are
// unrestricted; inside one, the thread's granted permission decides
// (default deny).
func (rm *refModel) allows(th core.ThreadID, d core.DomainID, write bool) bool {
	if !rm.live[d] {
		return true
	}
	p, ok := rm.perm[d][th]
	if !ok {
		p = core.PermNone
	}
	return p.Allows(write)
}

// schemeState is one engine's machine plus its last-step bookkeeping.
type schemeState struct {
	scheme   sim.Scheme
	m        *sim.Machine
	ideal    bool // baseline/lowerbound: never denies
	prevWork uint64
	faults   int // consumed prefix of m.Faults()
}

// SchemesFor returns the scheme set a program replays under: all six,
// minus default MPK when the program's peak live-domain count exceeds
// its 16-key capacity (MPK's Attach would fail — by design, that is the
// scaling wall the virtualization schemes remove).
func SchemesFor(p Program) []sim.Scheme {
	_, _, maxLive := normalize(p)
	out := make([]sim.Scheme, 0, len(sim.AllSchemes))
	for _, s := range sim.AllSchemes {
		if s == sim.SchemeMPK && maxLive > mpk.NumKeys {
			continue
		}
		out = append(out, s)
	}
	return out
}

// Replay drives p through every applicable scheme in lockstep, checking
// the conformance invariants after each op. It stops at the first
// divergence (the RunResult then carries exactly one entry).
func Replay(p Program, cfg sim.Config) *RunResult {
	ops, skipped, maxLive := normalize(p)
	rr := &RunResult{
		Program: p,
		Skipped: skipped,
		MaxLive:  maxLive,
		Cycles:   make(map[sim.Scheme]uint64),
		Overhead: make(map[sim.Scheme]uint64),
	}
	if p.Cores < 1 {
		p.Cores = 1
	}
	if p.Threads < 1 {
		p.Threads = 1
	}
	cfg.Cores = p.Cores
	// Every denied access can split across two cache lines and record
	// two faults; never let the ring drop records mid-program.
	cfg.MaxFaultRecords = 4*len(ops) + 64

	rr.Schemes = SchemesFor(p)
	runs := make([]*schemeState, 0, len(rr.Schemes))
	for _, s := range rr.Schemes {
		runs = append(runs, &schemeState{
			scheme: s,
			m:      sim.NewMachine(cfg, s),
			ideal:  s == sim.SchemeBaseline || s == sim.SchemeLowerbound,
		})
	}

	ref := newRefModel()
	diverge := func(step int, scheme, kind, format string, a ...any) {
		rr.Divergences = append(rr.Divergences, Divergence{
			Step: step, Scheme: scheme, Kind: kind,
			Detail: fmt.Sprintf(format, a...),
		})
	}

steps:
	for i, op := range ops {
		rr.Steps = i + 1
		switch op.Kind {
		case OpAttach:
			for _, run := range runs {
				if err := run.m.Attach(op.D, RegionFor(op.D), core.PermRW); err != nil {
					diverge(i, string(run.scheme), "attach-error", "attach d=%d: %v", op.D, err)
					break steps
				}
			}
			ref.attach(op.D)
		case OpDetach:
			rr.Detaches++
			for _, run := range runs {
				run.m.Detach(op.D)
			}
			ref.detach(op.D)
		case OpSetPerm:
			rr.SetPerms++
			for _, run := range runs {
				run.m.SetPerm(op.Th, op.D, op.Perm, 0)
			}
			ref.setPerm(op.Th, op.D, op.Perm)
		case OpLoad, OpStore:
			rr.Accesses++
			write := op.Kind == OpStore
			va := RegionFor(op.D).Base + memlayout.VA(op.Off)
			want := ref.allows(op.Th, op.D, write)
			wantDomain := core.NullDomain
			if ref.live[op.D] {
				wantDomain = op.D
			}
			if !want {
				rr.Denials++
			}
			for _, run := range runs {
				got := run.m.Access(op.Th, va, op.Size, write)
				switch {
				case run.ideal && !got:
					diverge(i, string(run.scheme), "ideal-denied",
						"ideal scheme denied %s th=%d d=%d off=%#x", op.Kind, op.Th, op.D, op.Off)
					break steps
				case !run.ideal && got != want:
					diverge(i, string(run.scheme), "verdict",
						"%s th=%d d=%d off=%#x size=%d: got allowed=%v, oracle says %v",
						op.Kind, op.Th, op.D, op.Off, op.Size, got, want)
					break steps
				case !run.ideal && !want:
					// Check attribution of the newly recorded fault(s).
					fs := run.m.Faults()
					if len(fs) <= run.faults {
						diverge(i, string(run.scheme), "missing-fault",
							"denied %s th=%d d=%d recorded no FaultRecord", op.Kind, op.Th, op.D)
						break steps
					}
					for _, f := range fs[run.faults:] {
						if f.Thread != op.Th || f.Write != write || f.Domain != wantDomain ||
							f.VA < va || f.VA >= va+memlayout.VA(op.Size) {
							diverge(i, string(run.scheme), "attribution",
								"fault %v does not match th=%d write=%v d=%d va=[%#x,%#x)",
								f, op.Th, write, wantDomain, va, va+memlayout.VA(op.Size))
							break steps
						}
					}
					run.faults = len(fs)
				}
			}
		case OpFetch:
			va := RegionFor(op.D).Base + memlayout.VA(op.Off)
			for _, run := range runs {
				if !run.m.Fetch(op.Th, va) {
					diverge(i, string(run.scheme), "fetch-denied",
						"instruction fetch blocked th=%d d=%d off=%#x", op.Th, op.D, op.Off)
					break steps
				}
			}
		case OpInstr:
			for _, run := range runs {
				run.m.Instr(op.Th, op.N)
			}
		case OpFence:
			for _, run := range runs {
				run.m.Fence(op.Th)
			}
		}

		// Invariant 3: cycle accounting, per scheme per step.
		for _, run := range runs {
			res := run.m.Result()
			if res.WorkSum < run.prevWork {
				diverge(i, string(run.scheme), "cycle-regress",
					"WorkSum went backwards: %d -> %d", run.prevWork, res.WorkSum)
				break steps
			}
			run.prevWork = res.WorkSum
			if got := res.Breakdown.Total(); got != res.WorkSum {
				diverge(i, string(run.scheme), "accounting",
					"breakdown total %d != core cycle sum %d", got, res.WorkSum)
				break steps
			}
		}
	}

	for _, run := range runs {
		res := run.m.Result()
		rr.Cycles[run.scheme] = res.WorkSum
		rr.Overhead[run.scheme] = res.Breakdown.OverheadCycles()
	}

	// Invariant 4: overhead ordering, where it is meaningful. The
	// comparison is over protection-attributed cycles (everything but
	// CatBase), the paper's overhead metric: raw cycle totals also move
	// with second-order TLB-capacity effects (a scheme's detach flush
	// can accidentally free the slot that saves a later walk), which are
	// not protection semantics. The floor needs denial-free (denied
	// accesses skip the cache hierarchy) and detach-free (detach flushes
	// shift invalidation debt between schemes) programs. The libmpk
	// ceiling additionally needs a switch-heavy regime: more live
	// domains than keys — so libmpk pays remap syscalls — and
	// SETPERM-dense traffic; switch-heavy programs are detach-free by
	// construction.
	rr.DenialFree = rr.Denials == 0
	rr.FloorCheck = rr.DenialFree && rr.Detaches == 0
	rr.SwitchHeavy = rr.FloorCheck && rr.MaxLive > mpk.NumKeys &&
		rr.SetPerms > 0 && rr.Accesses <= 2*rr.SetPerms
	if !rr.Diverged() && rr.FloorCheck {
		lb := rr.Overhead[sim.SchemeLowerbound]
		for _, run := range runs {
			if run.ideal {
				continue
			}
			if c := rr.Overhead[run.scheme]; c < lb {
				diverge(-1, string(run.scheme), "lowerbound-order",
					"denial-free program: overhead %d below the lowerbound's %d", c, lb)
			}
		}
	}
	if !rr.Diverged() && rr.SwitchHeavy {
		ceil := rr.Overhead[sim.SchemeLibmpk]
		for _, run := range runs {
			if run.scheme == sim.SchemeLibmpk || run.scheme == sim.SchemeBaseline {
				continue
			}
			if c := rr.Overhead[run.scheme]; c > ceil {
				diverge(-1, string(run.scheme), "libmpk-order",
					"switch-heavy program: overhead %d above libmpk's %d", c, ceil)
			}
		}
	}
	return rr
}
