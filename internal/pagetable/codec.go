package pagetable

import (
	"fmt"

	"domainvirt/internal/bincodec"
	"domainvirt/internal/memlayout"
)

// AppendTo appends the deterministic binary form of the table: every
// non-zero leaf PTE as (page VA, PFN, flags), enumerated by an in-order
// radix walk so the entries appear in ascending VA order regardless of
// the insertion history. Non-present PTEs that still carry a key or
// writable bit are included so libmpk's pkey state survives a round trip.
func (t *Table) AppendTo(b []byte) []byte {
	countAt := len(b)
	b = bincodec.U32(b, 0) // entry count, patched below
	n := uint32(0)
	var walk func(nd *node, lvl int, base memlayout.VA)
	walk = func(nd *node, lvl int, base memlayout.VA) {
		span := memlayout.LevelSize(lvl)
		for i := 0; i < memlayout.RadixFanout; i++ {
			slotBase := base + memlayout.VA(uint64(i)*span)
			if lvl == 0 {
				pte := nd.ptes[i]
				if pte == (PTE{}) {
					continue
				}
				b = bincodec.U64(b, uint64(slotBase))
				b = bincodec.U64(b, pte.PFN)
				var flags uint8
				if pte.Present {
					flags |= 1
				}
				if pte.Writable {
					flags |= 2
				}
				b = bincodec.U8(b, flags)
				b = bincodec.U8(b, pte.PKey)
				n++
				continue
			}
			if child := nd.children[i]; child != nil {
				walk(child, lvl-1, slotBase)
			}
		}
	}
	walk(t.root, memlayout.NumLevels-1, 0)
	b[countAt] = byte(n)
	b[countAt+1] = byte(n >> 8)
	b[countAt+2] = byte(n >> 16)
	b[countAt+3] = byte(n >> 24)
	return b
}

// DecodeTable reads a Table written by AppendTo.
func DecodeTable(r *bincodec.Reader) (*Table, error) {
	t := New()
	n := r.Count(8 + 8 + 1 + 1)
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("pagetable: %w", err)
	}
	for i := 0; i < n; i++ {
		va := memlayout.VA(r.U64())
		pfn := r.U64()
		flags := r.U8()
		pkey := r.U8()
		if r.Err() != nil {
			break
		}
		leaf := t.leafFor(va, true)
		pte := PTE{
			PFN:      pfn,
			Present:  flags&1 != 0,
			Writable: flags&2 != 0,
			PKey:     pkey,
		}
		leaf.ptes[memlayout.Index(va, 0)] = pte
		if pte.Present {
			t.populated++
		}
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("pagetable: %w", err)
	}
	return t, nil
}
