package pagetable

import (
	"math/rand"
	"testing"
	"testing/quick"

	"domainvirt/internal/memlayout"
)

func TestMapWalkRoundTrip(t *testing.T) {
	pt := New()
	va := memlayout.VA(0x7f1234567000)
	pt.Map(va, 0xABC000, true)
	pte, depth, ok := pt.Walk(va)
	if !ok {
		t.Fatal("mapped page not found")
	}
	if pte.PFN != 0xABC {
		t.Errorf("PFN = %#x, want 0xABC", pte.PFN)
	}
	if !pte.Writable {
		t.Error("writable bit lost")
	}
	if depth != memlayout.NumLevels {
		t.Errorf("walk depth = %d, want %d", depth, memlayout.NumLevels)
	}
	if _, _, ok := pt.Walk(va + memlayout.PageSize); ok {
		t.Error("adjacent unmapped page must miss")
	}
}

func TestMapAgainstReference(t *testing.T) {
	// Random map/unmap/lookup sequence must agree with a Go map.
	rng := rand.New(rand.NewSource(7))
	pt := New()
	ref := make(map[uint64]uint64) // vpn -> pfn
	for i := 0; i < 5000; i++ {
		vpn := uint64(rng.Intn(2048))*7919 + uint64(rng.Intn(64))<<30
		va := memlayout.VA(vpn << memlayout.PageShift)
		switch rng.Intn(3) {
		case 0:
			pfn := uint64(rng.Int63n(1 << 30))
			pt.Map(va, memlayout.PA(pfn<<memlayout.PageShift), true)
			ref[vpn] = pfn
		case 1:
			got := pt.Unmap(va)
			_, want := ref[vpn]
			if got != want {
				t.Fatalf("Unmap(%#x) = %v, want %v", va, got, want)
			}
			delete(ref, vpn)
		default:
			pte, ok := pt.Lookup(va)
			pfn, want := ref[vpn]
			if ok != want || (ok && pte.PFN != pfn) {
				t.Fatalf("Lookup(%#x) = (%v,%v), want (%v,%v)", va, pte.PFN, ok, pfn, want)
			}
		}
		if pt.Populated() != uint64(len(ref)) {
			t.Fatalf("Populated = %d, want %d", pt.Populated(), len(ref))
		}
	}
}

func TestSetKeyCountsPopulatedOnly(t *testing.T) {
	pt := New()
	base := memlayout.VA(0x40000000)
	// Map every other page of a 64-page region.
	for i := 0; i < 64; i += 2 {
		pt.Map(base+memlayout.VA(i*memlayout.PageSize), memlayout.PA(i+1)<<memlayout.PageShift, true)
	}
	r := memlayout.Region{Base: base, Size: 64 * memlayout.PageSize}
	if n := pt.SetKey(r, 3); n != 32 {
		t.Errorf("SetKey touched %d PTEs, want 32 (populated only)", n)
	}
	if n := pt.PopulatedPages(r); n != 32 {
		t.Errorf("PopulatedPages = %d, want 32", n)
	}
	pte, _ := pt.Lookup(base)
	if pte.PKey != 3 {
		t.Errorf("PKey = %d, want 3", pte.PKey)
	}
	// A sub-range touches only its own pages.
	sub := memlayout.Region{Base: base, Size: 16 * memlayout.PageSize}
	if n := pt.SetKey(sub, 5); n != 8 {
		t.Errorf("sub-range SetKey = %d, want 8", n)
	}
	outside, _ := pt.Lookup(base + 32*memlayout.PageSize)
	if outside.PKey != 3 {
		t.Errorf("PTE outside sub-range changed to %d", outside.PKey)
	}
}

func TestSetWritable(t *testing.T) {
	pt := New()
	base := memlayout.VA(0x50000000)
	for i := 0; i < 8; i++ {
		pt.Map(base+memlayout.VA(i*memlayout.PageSize), memlayout.PA(i+1)<<memlayout.PageShift, true)
	}
	r := memlayout.Region{Base: base, Size: 8 * memlayout.PageSize}
	if n := pt.SetWritable(r, false); n != 8 {
		t.Errorf("SetWritable = %d, want 8", n)
	}
	pte, _ := pt.Lookup(base)
	if pte.Writable {
		t.Error("page still writable")
	}
}

func TestForEachPopulatedRangeExactness(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := New()
		mapped := make(map[uint64]bool)
		base := uint64(0x100000000)
		for i := 0; i < 200; i++ {
			vpn := base>>memlayout.PageShift + uint64(rng.Intn(4096))
			pt.Map(memlayout.VA(vpn<<memlayout.PageShift), memlayout.PA(vpn<<memlayout.PageShift), true)
			mapped[vpn] = true
		}
		lo := base + uint64(rng.Intn(2048))*memlayout.PageSize
		size := uint64(rng.Intn(2048)+1) * memlayout.PageSize
		r := memlayout.Region{Base: memlayout.VA(lo), Size: size}
		want := 0
		for vpn := range mapped {
			if r.Contains(memlayout.VA(vpn << memlayout.PageShift)) {
				want++
			}
		}
		got := 0
		pt.ForEachPopulated(r, func(va memlayout.VA, pte *PTE) {
			if !r.Contains(va) || !pte.Present {
				t.Errorf("callback outside range or non-present: %v", va)
			}
			got++
		})
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
