// Package pagetable implements a 4-level x86-64-style radix page table with
// 4-bit per-PTE protection keys (the PTE field Intel MPK repurposes). The
// simulator walks it on TLB misses; the libmpk baseline pays per-PTE costs
// when pkey_mprotect rewrites the key field of every populated PTE in a
// domain, so the table exposes populated-page enumeration.
package pagetable

import (
	"domainvirt/internal/memlayout"
)

// PTE is a leaf page-table entry.
type PTE struct {
	PFN      uint64 // physical frame number
	Present  bool
	Writable bool
	PKey     uint8 // 4-bit protection key; 0 is the null (domainless) key
}

// node is one radix node: either 512 child pointers or 512 leaf PTEs.
type node struct {
	children [memlayout.RadixFanout]*node
	ptes     [memlayout.RadixFanout]PTE
	leaf     bool
}

// Table is a 4-level radix page table for one address space.
type Table struct {
	root      *node
	populated uint64 // number of present leaf PTEs
}

// New returns an empty page table.
func New() *Table {
	return &Table{root: &node{}}
}

// Populated returns the total number of present PTEs in the table.
func (t *Table) Populated() uint64 { return t.populated }

// Clone returns a deep copy of the table: the two share no nodes, so
// mutations of one are invisible to the other.
func (t *Table) Clone() *Table {
	return &Table{root: cloneNode(t.root), populated: t.populated}
}

func cloneNode(n *node) *node {
	c := &node{ptes: n.ptes, leaf: n.leaf}
	for i, child := range n.children {
		if child != nil {
			c.children[i] = cloneNode(child)
		}
	}
	return c
}

// leafFor returns the leaf node covering va, creating intermediate nodes
// when create is true; otherwise it returns nil if the path is absent.
func (t *Table) leafFor(va memlayout.VA, create bool) *node {
	n := t.root
	for lvl := memlayout.NumLevels - 1; lvl >= 1; lvl-- {
		idx := memlayout.Index(va, lvl)
		next := n.children[idx]
		if next == nil {
			if !create {
				return nil
			}
			next = &node{leaf: lvl == 1}
			n.children[idx] = next
		}
		n = next
	}
	return n
}

// Map installs a translation for the 4 KB page containing va.
func (t *Table) Map(va memlayout.VA, pa memlayout.PA, writable bool) {
	n := t.leafFor(va, true)
	idx := memlayout.Index(va, 0)
	if !n.ptes[idx].Present {
		t.populated++
	}
	n.ptes[idx] = PTE{
		PFN:      uint64(pa) >> memlayout.PageShift,
		Present:  true,
		Writable: writable,
	}
}

// Unmap removes the translation for the page containing va, reporting
// whether a mapping was present.
func (t *Table) Unmap(va memlayout.VA) bool {
	n := t.leafFor(va, false)
	if n == nil {
		return false
	}
	idx := memlayout.Index(va, 0)
	if !n.ptes[idx].Present {
		return false
	}
	n.ptes[idx] = PTE{}
	t.populated--
	return true
}

// Walk translates va, returning the PTE and whether it is present. The
// returned depth is the number of radix levels touched (4 for a full walk),
// which the simulator uses for walk costing.
func (t *Table) Walk(va memlayout.VA) (pte PTE, depth int, ok bool) {
	n := t.root
	depth = 1
	for lvl := memlayout.NumLevels - 1; lvl >= 1; lvl-- {
		idx := memlayout.Index(va, lvl)
		next := n.children[idx]
		if next == nil {
			return PTE{}, depth, false
		}
		n = next
		depth++
	}
	pte = n.ptes[memlayout.Index(va, 0)]
	return pte, depth, pte.Present
}

// Lookup is Walk without depth accounting.
func (t *Table) Lookup(va memlayout.VA) (PTE, bool) {
	pte, _, ok := t.Walk(va)
	return pte, ok
}

// SetWritable updates the writable bit of every populated PTE in region,
// returning the number of PTEs changed.
func (t *Table) SetWritable(r memlayout.Region, writable bool) int {
	n := 0
	t.ForEachPopulated(r, func(va memlayout.VA, pte *PTE) {
		if pte.Writable != writable {
			pte.Writable = writable
		}
		n++
	})
	return n
}

// SetKey writes the protection key into every populated PTE in region,
// returning the number of PTEs written. This is the cost driver of
// pkey_mprotect: work proportional to the populated pages of the domain.
func (t *Table) SetKey(r memlayout.Region, key uint8) int {
	n := 0
	t.ForEachPopulated(r, func(va memlayout.VA, pte *PTE) {
		pte.PKey = key
		n++
	})
	return n
}

// PopulatedPages counts present PTEs within region.
func (t *Table) PopulatedPages(r memlayout.Region) int {
	n := 0
	t.ForEachPopulated(r, func(memlayout.VA, *PTE) { n++ })
	return n
}

// ForEachPopulated invokes fn for every present PTE whose page lies within
// region, passing the page base VA and a mutable PTE pointer.
func (t *Table) ForEachPopulated(r memlayout.Region, fn func(memlayout.VA, *PTE)) {
	if r.Size == 0 {
		return
	}
	t.walkRange(t.root, memlayout.NumLevels-1, 0, r, fn)
}

func (t *Table) walkRange(n *node, lvl int, base memlayout.VA, r memlayout.Region, fn func(memlayout.VA, *PTE)) {
	span := memlayout.LevelSize(lvl)
	lo, hi := 0, memlayout.RadixFanout-1
	// Narrow the slot range to the slots overlapping r.
	if r.Base > base {
		lo = int((uint64(r.Base) - uint64(base)) / span)
	}
	last := uint64(r.End()) - 1
	if memlayout.VA(last) >= base {
		off := last - uint64(base)
		if idx := off / span; idx < memlayout.RadixFanout {
			hi = int(idx)
		}
	}
	for i := lo; i <= hi; i++ {
		slotBase := base + memlayout.VA(uint64(i)*span)
		if lvl == 0 {
			pte := &n.ptes[i]
			if pte.Present && r.Contains(slotBase) {
				fn(slotBase, pte)
			}
			continue
		}
		child := n.children[i]
		if child == nil {
			continue
		}
		t.walkRange(child, lvl-1, slotBase, r, fn)
	}
}
