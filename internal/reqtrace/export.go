package reqtrace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"domainvirt/internal/obs"
)

// jsonSpan is the canonical JSONL form of a Span. Fields marshal in
// declaration order and the stage map's keys sort, so a given span set
// always renders to identical bytes (the same determinism contract as
// the obs exporters).
type jsonSpan struct {
	Seq     uint64            `json:"seq"`
	Op      string            `json:"op"`
	SID     uint64            `json:"sid"`
	Status  uint8             `json:"status"`
	Code    uint16            `json:"code"`
	Bytes   uint32            `json:"bytes"`
	Sampled bool              `json:"sampled"`
	Slow    bool              `json:"slow"`
	StartNs int64             `json:"start_ns"`
	TotalNs uint64            `json:"total_ns"`
	Stages  map[string]uint64 `json:"stages_ns"`
}

// opName maps an opcode to its exporter name via cfg.OpNames, falling
// back to "op<N>".
func (c Config) opName(op uint8) string {
	if int(op) < len(c.OpNames) && c.OpNames[op] != "" {
		return c.OpNames[op]
	}
	return fmt.Sprintf("op%d", op)
}

// WriteSpansJSONL renders spans one JSON object per line in ascending
// Seq order. Byte-deterministic for a given span set.
func WriteSpansJSONL(w io.Writer, cfg Config, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range spans {
		sp := &spans[i]
		js := jsonSpan{
			Seq:     sp.Seq,
			Op:      cfg.opName(sp.Op),
			SID:     sp.SID,
			Status:  sp.Status,
			Code:    sp.Code,
			Bytes:   sp.Bytes,
			Sampled: sp.Sampled,
			Slow:    sp.Slow,
			StartNs: sp.Start,
			TotalNs: sp.Total,
			Stages:  make(map[string]uint64, NumStages),
		}
		for s := Stage(0); s < NumStages; s++ {
			js.Stages[s.String()] = sp.Stages[s]
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteSpansJSONL drains the ring through the tracer's own config.
// A nil tracer writes nothing.
func (t *Tracer) WriteSpansJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	return WriteSpansJSONL(w, t.cfg, t.Snapshot())
}

// ParseSpansJSONL decodes a span dump produced by WriteSpansJSONL.
// Stage names the parser does not know are dropped; op names are kept
// as strings in the returned records.
func ParseSpansJSONL(r io.Reader) ([]SpanRecord, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	var out []SpanRecord
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var js jsonSpan
		if err := json.Unmarshal(sc.Bytes(), &js); err != nil {
			return nil, fmt.Errorf("reqtrace: span line %d: %w", line, err)
		}
		rec := SpanRecord{
			Seq: js.Seq, Op: js.Op, SID: js.SID,
			Status: js.Status, Code: js.Code, Bytes: js.Bytes,
			Sampled: js.Sampled, Slow: js.Slow,
			StartNs: js.StartNs, TotalNs: js.TotalNs,
		}
		for s := Stage(0); s < NumStages; s++ {
			rec.Stages[s] = js.Stages[s.String()]
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SpanRecord is a parsed JSONL span: a Span with its op resolved to
// the exporter name.
type SpanRecord struct {
	Seq     uint64
	Op      string
	SID     uint64
	Status  uint8
	Code    uint16
	Bytes   uint32
	Sampled bool
	Slow    bool
	StartNs int64
	TotalNs uint64
	Stages  [NumStages]uint64
}

// Breakdown aggregates parsed spans into the queue-wait vs
// service-time attribution pmoload reports: per-stage histograms over
// the retained spans plus the two composite histograms.
type Breakdown struct {
	Spans   int
	Sampled int
	Slow    int
	// Queue is the queue-wait distribution; Service is everything
	// else (read/decode + lock + engine + persist + write).
	Queue   obs.Histogram
	Service obs.Histogram
	Total   obs.Histogram
	Stages  [NumStages]obs.Histogram
}

// Aggregate builds a Breakdown from parsed spans.
func Aggregate(recs []SpanRecord) *Breakdown {
	b := &Breakdown{}
	for i := range recs {
		r := &recs[i]
		b.Spans++
		if r.Sampled {
			b.Sampled++
		}
		if r.Slow {
			b.Slow++
		}
		b.Queue.Observe(r.Stages[StageQueue])
		b.Service.Observe(r.TotalNs - r.Stages[StageQueue])
		b.Total.Observe(r.TotalNs)
		for s := Stage(0); s < NumStages; s++ {
			b.Stages[s].Observe(r.Stages[s])
		}
	}
	return b
}

// WritePromStageHistograms renders the per-stage latency histograms as
// one valid Prometheus histogram family (single HELP/TYPE header, one
// series per stage label) under stageMetric, plus the total-latency
// histogram under totalMetric. A nil tracer writes nothing.
func (t *Tracer) WritePromStageHistograms(w io.Writer, stageMetric, totalMetric string) error {
	if t == nil {
		return nil
	}
	total, stages := t.Histograms()
	if err := obs.PromHistogramHeader(w, stageMetric, "Request stage latency in nanoseconds."); err != nil {
		return err
	}
	for s := Stage(0); s < NumStages; s++ {
		if err := obs.PromHistogramSeries(w, stageMetric, fmt.Sprintf("stage=%q", s.String()), &stages[s]); err != nil {
			return err
		}
	}
	if err := obs.PromHistogramHeader(w, totalMetric, "Request total in-daemon latency in nanoseconds."); err != nil {
		return err
	}
	return obs.PromHistogramSeries(w, totalMetric, "", &total)
}
