// Package reqtrace is the daemon-side request tracing layer: a
// low-overhead per-request span recorder threaded through the pmod
// request path. Every request, while tracing is enabled, accumulates
// monotonic per-stage durations (frame read/decode, queue wait,
// shard-lock wait, engine access/SETPERM window, persist, encode/write)
// into a Span; finished spans feed per-stage mergeable log2 histograms
// (the obs layer's Histogram) and — when selected by deterministic
// 1-in-N sampling or the always-on slow-request threshold — a
// fixed-size lock-free ring of recent spans that exporters drain as
// byte-deterministic JSONL.
//
// The overhead contract mirrors internal/obs:
//
//   - Zero overhead when disabled. A nil *Tracer makes every hook a
//     pointer check; no clock is read, nothing allocates, and the serve
//     wire path stays allocation-free (enforced by the serve package's
//     AllocsPerRun tests and scripts/bench.sh).
//   - Zero perturbation of simulated cycles. The tracer observes only
//     wall-clock time around the request path; it never injects events
//     into the instrumentation stream, so a traced run's engine Result
//     is identical to an untraced run of the same request sequence.
package reqtrace

import (
	"sync"
	"sync/atomic"
	"time"

	"domainvirt/internal/obs"
)

// Stage indexes one segment of the request path. The taxonomy is the
// package contract (see ARCHITECTURE.md "Request tracing contract"):
// stages are disjoint, additive segments of a request's wall-clock
// residency in the daemon.
type Stage uint8

// The request-path stages, in pipeline order.
const (
	// StageRead covers reading the frame body off the socket (after
	// the length prefix arrived) plus decoding it into a Request.
	StageRead Stage = iota
	// StageQueue is the wait in the bounded worker queue.
	StageQueue
	// StageLock is the wait for the session-table shard mutex.
	StageLock
	// StageEngine covers the protection-engine work: the SETPERM
	// window open/close and the pool accesses inside it.
	StageEngine
	// StagePersist is durable-commit work (redo-log write + fences)
	// inside a TX_COMMIT window.
	StagePersist
	// StageWrite covers encoding the response and handing it to the
	// connection writer.
	StageWrite
	// NumStages is the taxonomy size.
	NumStages
)

var stageNames = [NumStages]string{
	"read_decode", "queue", "lock", "engine", "persist", "write",
}

// String returns the stable exporter name of the stage.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Span is one finished request's trace record. Durations are
// nanoseconds of wall-clock time; Start is nanoseconds since the
// tracer's epoch (monotonic, so spans order and subtract safely).
type Span struct {
	Seq     uint64 // 1-based arrival sequence number
	Op      uint8  // wire opcode (exporters map names via Config.OpNames)
	SID     uint64 // session ID, 0 when the request had none
	Status  uint8  // response status byte
	Code    uint16 // typed error code, 0 on success
	Bytes   uint32 // payload bytes moved (READ/WRITE data length)
	Sampled bool   // retained by 1-in-N sampling
	Slow    bool   // retained by the slow-request threshold
	Start   int64  // ns since tracer epoch
	Total   uint64 // ns, sum of all stages
	Stages  [NumStages]uint64
}

// Config configures a Tracer. The zero value means disabled: New
// returns nil (and every hook on a nil Tracer is a no-op) unless at
// least one retention rule is set.
type Config struct {
	// SampleEvery retains every Nth request's span in the ring
	// (deterministic in arrival order: seq % N == 0). 0 disables
	// sampled retention.
	SampleEvery int
	// Slow is the always-on slow-request threshold: any request whose
	// total exceeds it is retained regardless of sampling. 0 disables.
	Slow time.Duration
	// RingSize bounds the retained-span ring (rounded up to a power of
	// two; default 1024). The ring overwrites oldest-first.
	RingSize int
	// OpNames optionally maps opcode values to exporter names.
	OpNames []string
}

// Enabled reports whether the configuration turns tracing on.
func (c Config) Enabled() bool { return c.SampleEvery > 0 || c.Slow > 0 }

// histStripes shards the histogram mutex so concurrent workers do not
// serialize on one lock; stripes merge at export time (obs.Histogram
// merging is associative and commutative).
const histStripes = 8

type histStripe struct {
	mu     sync.Mutex
	total  obs.Histogram
	stages [NumStages]obs.Histogram
}

// Tracer records request spans. All methods are safe for concurrent
// use; all methods on a nil Tracer are no-ops.
type Tracer struct {
	cfg   Config
	epoch time.Time

	seq      atomic.Uint64
	finished atomic.Uint64
	sampled  atomic.Uint64
	slow     atomic.Uint64

	// The retained-span ring is lock-free: each slot holds an immutable
	// published *Span, overwritten oldest-first by swapping the pointer.
	// Readers never block writers and vice versa. The copy allocation
	// only happens for retained (sampled/slow) spans, never on the
	// per-request hot path.
	head  atomic.Uint64
	mask  uint64
	slots []atomic.Pointer[Span]

	stripes [histStripes]histStripe

	pool sync.Pool // *Active
}

// New returns a Tracer for cfg, or nil when cfg leaves tracing
// disabled — callers thread the nil through and pay only pointer
// checks.
func New(cfg Config) *Tracer {
	if !cfg.Enabled() {
		return nil
	}
	if cfg.RingSize <= 0 {
		cfg.RingSize = 1024
	}
	n := 1
	for n < cfg.RingSize {
		n <<= 1
	}
	t := &Tracer{
		cfg:   cfg,
		epoch: time.Now(),
		mask:  uint64(n - 1),
		slots: make([]atomic.Pointer[Span], n),
	}
	t.pool.New = func() any { return new(Active) }
	return t
}

// Config returns the tracer's configuration (zero value when nil).
func (t *Tracer) Config() Config {
	if t == nil {
		return Config{}
	}
	return t.cfg
}

// Active is the in-flight state of one traced request: the span under
// construction and the timestamp of the previous stage boundary. An
// Active is obtained from Begin, carried alongside the request, and
// returned to the tracer by End; it is only ever touched by whichever
// goroutine currently owns the request (reader, then worker).
type Active struct {
	span Span
	last time.Time
	t    *Tracer
}

// Begin starts a span for one arriving request. start is the stage-0
// clock origin (stamped right after the frame header was read). A nil
// tracer returns nil, and nil *Active receivers make every subsequent
// hook a no-op.
//
// The exported hooks (Begin, Mark, End) are thin wrappers kept under
// the inlining budget so that a disabled tracer costs exactly one
// inlined nil check per call site — no CALL instruction on the hot
// wire path. The bodies live in unexported slow-path methods.
func (t *Tracer) Begin(op uint8, start time.Time) *Active {
	if t == nil {
		return nil
	}
	return t.begin(op, start)
}

func (t *Tracer) begin(op uint8, start time.Time) *Active {
	a := t.pool.Get().(*Active)
	a.span = Span{
		Seq:   t.seq.Add(1),
		Op:    op,
		Start: start.Sub(t.epoch).Nanoseconds(),
	}
	a.last = start
	a.t = t
	return a
}

// Mark closes the current segment, attributing the time since the
// previous boundary to stage s. Stages may be marked repeatedly; the
// segments accumulate (doTx marks StageEngine around both halves of
// its SETPERM window).
func (a *Active) Mark(s Stage) {
	if a == nil {
		return
	}
	a.mark(s)
}

func (a *Active) mark(s Stage) {
	now := time.Now()
	a.span.Stages[s] += uint64(now.Sub(a.last))
	a.last = now
}

// SetSID stamps the session the request resolved to.
func (a *Active) SetSID(sid uint64) {
	if a != nil {
		a.span.SID = sid
	}
}

// AddBytes accounts payload bytes moved by the request.
func (a *Active) AddBytes(n uint32) {
	if a != nil {
		a.span.Bytes += n
	}
}

// End finishes the span: the outcome is stamped, every finished span
// feeds the per-stage histograms, and spans selected by sampling or
// the slow threshold enter the ring. a must not be used after End.
func (t *Tracer) End(a *Active, status uint8, code uint16) {
	if t == nil || a == nil {
		return
	}
	t.end(a, status, code)
}

func (t *Tracer) end(a *Active, status uint8, code uint16) {
	sp := &a.span
	sp.Status, sp.Code = status, code
	var total uint64
	for _, v := range sp.Stages {
		total += v
	}
	sp.Total = total

	st := &t.stripes[sp.Seq&(histStripes-1)]
	st.mu.Lock()
	st.total.Observe(total)
	for i := range sp.Stages {
		st.stages[i].Observe(sp.Stages[i])
	}
	st.mu.Unlock()
	t.finished.Add(1)

	sp.Sampled = t.cfg.SampleEvery > 0 && sp.Seq%uint64(t.cfg.SampleEvery) == 0
	sp.Slow = t.cfg.Slow > 0 && total >= uint64(t.cfg.Slow)
	if sp.Sampled {
		t.sampled.Add(1)
	}
	if sp.Slow {
		t.slow.Add(1)
	}
	if sp.Sampled || sp.Slow {
		t.retain(sp)
	}
	*a = Active{}
	t.pool.Put(a)
}

// retain publishes an immutable copy of sp into the ring. Writers
// never block and never mutate a span after publishing it, so readers
// can hold the pointer as long as they like.
func (t *Tracer) retain(sp *Span) {
	cp := new(Span)
	*cp = *sp
	idx := t.head.Add(1) - 1
	t.slots[idx&t.mask].Store(cp)
}

// Counts reports lifetime totals: spans finished, retained by
// sampling, and retained by the slow threshold.
func (t *Tracer) Counts() (finished, sampled, slow uint64) {
	if t == nil {
		return 0, 0, 0
	}
	return t.finished.Load(), t.sampled.Load(), t.slow.Load()
}

// Snapshot copies the retained spans out of the ring, oldest first
// (ascending Seq). Every published span is complete — publication is a
// pointer swap — so the result is always a consistent set.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		if sp := t.slots[i].Load(); sp != nil {
			out = append(out, *sp)
		}
	}
	sortSpans(out)
	return out
}

// Histograms merges the stripes into one total and one per-stage
// histogram set (nanosecond latencies, every finished span).
func (t *Tracer) Histograms() (total obs.Histogram, stages [NumStages]obs.Histogram) {
	if t == nil {
		return
	}
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		total.Merge(&st.total)
		for j := range st.stages {
			stages[j].Merge(&st.stages[j])
		}
		st.mu.Unlock()
	}
	return
}

// sortSpans orders spans by ascending Seq (insertion sort: snapshots
// are nearly sorted already because the ring is written in order).
func sortSpans(s []Span) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].Seq > s[j].Seq; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
