package reqtrace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledIsNil(t *testing.T) {
	if tr := New(Config{}); tr != nil {
		t.Fatalf("zero config must disable tracing, got %+v", tr)
	}
	// Every hook on the nil tracer and nil active must be a no-op.
	var tr *Tracer
	a := tr.Begin(1, time.Now())
	if a != nil {
		t.Fatalf("nil tracer Begin returned %+v", a)
	}
	a.Mark(StageQueue)
	a.SetSID(7)
	a.AddBytes(128)
	tr.End(a, 0, 0)
	if got := tr.Snapshot(); got != nil {
		t.Fatalf("nil tracer snapshot = %v", got)
	}
	if err := tr.WriteSpansJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	f, s, sl := tr.Counts()
	if f != 0 || s != 0 || sl != 0 {
		t.Fatalf("nil tracer counts = %d %d %d", f, s, sl)
	}
}

func TestDisabledPathAllocFree(t *testing.T) {
	// The disabled request path — what every pmod request pays when
	// tracing is off — must not allocate.
	var tr *Tracer
	round := func() {
		a := tr.Begin(4, time.Time{})
		a.Mark(StageRead)
		a.Mark(StageQueue)
		a.SetSID(3)
		a.Mark(StageEngine)
		a.AddBytes(64)
		a.Mark(StageWrite)
		tr.End(a, 0, 0)
	}
	if allocs := testing.AllocsPerRun(500, round); allocs != 0 {
		t.Fatalf("disabled tracing allocates %v times per request, want 0", allocs)
	}
}

func TestSamplingDeterministic(t *testing.T) {
	tr := New(Config{SampleEvery: 4, RingSize: 64})
	for i := 0; i < 20; i++ {
		a := tr.Begin(4, time.Now())
		a.Mark(StageRead)
		tr.End(a, 0, 0)
	}
	spans := tr.Snapshot()
	if len(spans) != 5 {
		t.Fatalf("1-in-4 of 20 requests retained %d spans, want 5", len(spans))
	}
	for _, sp := range spans {
		if !sp.Sampled || sp.Seq%4 != 0 {
			t.Fatalf("retained span seq %d sampled=%v, want multiples of 4", sp.Seq, sp.Sampled)
		}
	}
	fin, sam, slow := tr.Counts()
	if fin != 20 || sam != 5 || slow != 0 {
		t.Fatalf("counts = %d %d %d, want 20 5 0", fin, sam, slow)
	}
}

func TestSlowThresholdAlwaysOn(t *testing.T) {
	// Sampling would never retain these (every millionth request), but
	// the slow threshold must.
	tr := New(Config{SampleEvery: 1 << 20, Slow: time.Millisecond, RingSize: 16})
	for i := 0; i < 6; i++ {
		a := tr.Begin(5, time.Now())
		if i == 3 {
			// Backdate the stage boundary so the queue stage measures
			// well over the threshold without sleeping.
			a.last = a.last.Add(-10 * time.Millisecond)
		}
		a.Mark(StageQueue)
		tr.End(a, 0, 0)
	}
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want exactly the slow one", len(spans))
	}
	sp := spans[0]
	if !sp.Slow || sp.Sampled {
		t.Fatalf("span flags slow=%v sampled=%v, want slow only", sp.Slow, sp.Sampled)
	}
	if sp.Seq != 4 {
		t.Fatalf("slow span seq = %d, want 4", sp.Seq)
	}
	if sp.Stages[StageQueue] < uint64(10*time.Millisecond) {
		t.Fatalf("queue stage %dns, want >= 10ms", sp.Stages[StageQueue])
	}
	if sp.Total < sp.Stages[StageQueue] {
		t.Fatalf("total %d < queue stage %d", sp.Total, sp.Stages[StageQueue])
	}
}

func TestRingWrapsOldestFirst(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 4})
	for i := 0; i < 10; i++ {
		a := tr.Begin(1, time.Now())
		tr.End(a, 0, 0)
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("ring of 4 holds %d spans", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(7 + i); sp.Seq != want {
			t.Fatalf("span[%d].Seq = %d, want %d (newest four, ascending)", i, sp.Seq, want)
		}
	}
}

func TestStagesAccumulateAndTotal(t *testing.T) {
	tr := New(Config{SampleEvery: 1})
	a := tr.Begin(6, time.Now())
	a.last = a.last.Add(-time.Millisecond)
	a.Mark(StageEngine)
	a.last = a.last.Add(-2 * time.Millisecond)
	a.Mark(StagePersist)
	a.last = a.last.Add(-time.Millisecond)
	a.Mark(StageEngine) // second engine segment accumulates
	a.SetSID(42)
	a.AddBytes(100)
	a.AddBytes(28)
	tr.End(a, 1, 12)
	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans", len(spans))
	}
	sp := spans[0]
	if sp.SID != 42 || sp.Bytes != 128 || sp.Status != 1 || sp.Code != 12 {
		t.Fatalf("span metadata = %+v", sp)
	}
	if sp.Stages[StageEngine] < uint64(2*time.Millisecond) {
		t.Fatalf("engine stage %d, want accumulated >= 2ms", sp.Stages[StageEngine])
	}
	var sum uint64
	for _, v := range sp.Stages {
		sum += v
	}
	if sp.Total != sum {
		t.Fatalf("total %d != stage sum %d", sp.Total, sum)
	}
}

func TestHistogramsCoverEveryFinishedSpan(t *testing.T) {
	tr := New(Config{SampleEvery: 1000, RingSize: 8})
	const n = 100
	for i := 0; i < n; i++ {
		a := tr.Begin(4, time.Now())
		a.Mark(StageRead)
		tr.End(a, 0, 0)
	}
	total, stages := tr.Histograms()
	if total.Count != n {
		t.Fatalf("total histogram count = %d, want %d (all finished spans, not just retained)", total.Count, n)
	}
	for s := Stage(0); s < NumStages; s++ {
		if stages[s].Count != n {
			t.Fatalf("stage %s count = %d, want %d", s, stages[s].Count, n)
		}
	}
}

func TestJSONLDeterministicRoundTrip(t *testing.T) {
	tr := New(Config{SampleEvery: 1, RingSize: 32, OpNames: []string{"?", "hello", "open", "attach", "read"}})
	for i := 0; i < 10; i++ {
		a := tr.Begin(uint8(1+i%4), time.Now())
		a.Mark(StageRead)
		a.SetSID(uint64(i))
		a.AddBytes(uint32(i * 16))
		tr.End(a, 0, 0)
	}
	var b1, b2 bytes.Buffer
	if err := tr.WriteSpansJSONL(&b1); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteSpansJSONL(&b2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("span dump is not byte-deterministic across identical snapshots")
	}
	if !strings.Contains(b1.String(), `"op":"read"`) {
		t.Fatalf("op names not applied:\n%s", b1.String())
	}

	recs, err := ParseSpansJSONL(&b1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10 {
		t.Fatalf("parsed %d spans, want 10", len(recs))
	}
	spans := tr.Snapshot()
	for i, rec := range recs {
		sp := spans[i]
		if rec.Seq != sp.Seq || rec.SID != sp.SID || rec.Bytes != sp.Bytes ||
			rec.TotalNs != sp.Total || rec.Stages != sp.Stages {
			t.Fatalf("round trip mismatch at %d: %+v vs %+v", i, rec, sp)
		}
	}

	agg := Aggregate(recs)
	if agg.Spans != 10 || agg.Total.Count != 10 || agg.Queue.Count != 10 {
		t.Fatalf("aggregate = %+v", agg)
	}
}

func TestConcurrentTracing(t *testing.T) {
	tr := New(Config{SampleEvery: 2, Slow: time.Nanosecond, RingSize: 64})
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				a := tr.Begin(4, time.Now())
				a.Mark(StageRead)
				a.Mark(StageQueue)
				a.Mark(StageEngine)
				tr.End(a, 0, 0)
			}
		}()
	}
	// Concurrent readers must never see torn spans.
	stop := make(chan struct{})
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, sp := range tr.Snapshot() {
				if sp.Seq == 0 || sp.Total < sp.Stages[StageQueue] {
					t.Error("torn span escaped the seqlock")
					return
				}
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	fin, _, _ := tr.Counts()
	if fin != workers*per {
		t.Fatalf("finished %d, want %d", fin, workers*per)
	}
	total, _ := tr.Histograms()
	if total.Count != workers*per {
		t.Fatalf("histogram count %d, want %d", total.Count, workers*per)
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < NumStages; s++ {
		n := s.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("stage %d name %q invalid or duplicated", s, n)
		}
		seen[n] = true
	}
	if Stage(200).String() != "unknown" {
		t.Fatal("out-of-range stage must stringify as unknown")
	}
}
