package obs

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"domainvirt/internal/stats"
)

// TestHistogramMergeProperty checks the recorder's core algebra: merging
// histograms recorded over two partitions of a stream equals recording
// the whole stream into one histogram, for every field.
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		var whole, a, b Histogram
		n := rng.Intn(200)
		for i := 0; i < n; i++ {
			v := uint64(rng.Int63()) >> uint(rng.Intn(60))
			whole.Observe(v)
			if rng.Intn(2) == 0 {
				a.Observe(v)
			} else {
				b.Observe(v)
			}
		}
		var merged Histogram
		merged.Merge(&a)
		merged.Merge(&b)
		if merged != whole {
			t.Fatalf("trial %d: merge(a,b) = %+v, whole stream = %+v", trial, merged, whole)
		}
	}
}

func TestHistogramMergeEmpty(t *testing.T) {
	var a, empty Histogram
	a.Observe(5)
	want := a
	a.Merge(&empty)
	if a != want {
		t.Errorf("merging an empty histogram changed the receiver: %+v != %+v", a, want)
	}
	empty.Merge(&a)
	if empty != want {
		t.Errorf("merging into an empty histogram: got %+v, want %+v", empty, want)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		v      uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {255, 8}, {256, 9},
		{^uint64(0), 64},
	}
	for _, c := range cases {
		h = Histogram{}
		h.Observe(c.v)
		for i, n := range h.Buckets {
			want := uint64(0)
			if i == c.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("Observe(%d): bucket %d = %d, want %d", c.v, i, n, want)
			}
		}
		if up := BucketUpper(c.bucket); c.v > up {
			t.Errorf("Observe(%d): landed in bucket %d with upper bound %d", c.v, c.bucket, up)
		}
	}
}

func TestHistogramStats(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{10, 20, 30, 40} {
		h.Observe(v)
	}
	if h.Min != 10 || h.Max != 40 || h.Count != 4 || h.Sum != 100 {
		t.Errorf("min/max/count/sum = %d/%d/%d/%d", h.Min, h.Max, h.Count, h.Sum)
	}
	if m := h.Mean(); m != 25 {
		t.Errorf("mean = %g", m)
	}
	if q := h.Quantile(1); q != h.Max {
		t.Errorf("q1 = %d, want max %d", q, h.Max)
	}
	if q := h.Quantile(0); q == 0 {
		t.Errorf("q0 = 0 for a nonzero stream")
	}
	var empty Histogram
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Errorf("empty histogram stats not zero")
	}
}

// TestCounterFieldsComplete pins the exporter's fixed field list to the
// stats.Counters struct: every uint64 field must appear exactly once, in
// declaration order, under its Go field name.
func TestCounterFieldsComplete(t *testing.T) {
	typ := reflect.TypeOf(stats.Counters{})
	var names []string
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() == reflect.Uint64 {
			names = append(names, f.Name)
		}
	}
	if len(names) != len(counterFields) {
		t.Fatalf("stats.Counters has %d uint64 fields, exporter lists %d — update counterFields", len(names), len(counterFields))
	}
	var c stats.Counters
	cv := reflect.ValueOf(&c).Elem()
	for i, f := range counterFields {
		if f.Name != names[i] {
			t.Errorf("counterFields[%d] = %q, struct field is %q", i, f.Name, names[i])
			continue
		}
		cv.FieldByName(f.Name).SetUint(uint64(1000 + i))
		if got := f.Get(&c); got != uint64(1000+i) {
			t.Errorf("counterFields[%d] (%s) getter reads the wrong field (got %d)", i, f.Name, got)
		}
	}
}

func synthState(retired uint64, k int) MachineState {
	var c stats.Counters
	c.Instructions = retired
	c.Loads = uint64(10 * k)
	c.TLBL1Hits = uint64(7 * k)
	c.TLBMisses = uint64(k)
	var b stats.Breakdown
	b.AddN(stats.CatPermSwitch, uint64(100*k), uint64(k))
	return MachineState{
		Retired:   retired,
		Counters:  c,
		Breakdown: b,
		Cores: []CoreState{
			{Cycles: retired * 2, TLBL1Hits: uint64(7 * k), TLBMisses: uint64(k)},
		},
	}
}

func TestRecorderDeltas(t *testing.T) {
	r := NewRecorder(Options{Epoch: 100})
	r.Event(0, stats.EvShootdown, 3)
	r.TakeSample(synthState(100, 1))
	r.Event(0, stats.EvShootdown, 5)
	r.Event(0, stats.EvKeyEviction, 2)
	r.TakeSample(synthState(200, 3))
	r.Finish(synthState(200, 3))

	s := r.Samples()
	if len(s) != 2 {
		t.Fatalf("samples = %d, want 2 (Finish must not duplicate the last boundary)", len(s))
	}
	if s[0].Epoch != 0 || s[1].Epoch != 1 {
		t.Errorf("epoch indices = %d, %d", s[0].Epoch, s[1].Epoch)
	}
	// Second sample holds deltas between k=1 and k=3 states.
	if got := s[1].Counters.Loads; got != 20 {
		t.Errorf("delta Loads = %d, want 20", got)
	}
	if got := s[1].Breakdown.Cycles[stats.CatPermSwitch]; got != 200 {
		t.Errorf("delta perm-switch cycles = %d, want 200", got)
	}
	if got := s[1].Cores[0].Cycles; got != 200 {
		t.Errorf("delta core cycles = %d, want 200", got)
	}
	// Events accumulate between samples and reset at each boundary.
	if got := s[0].Events(stats.EvShootdown); got != 3 {
		t.Errorf("epoch 0 shootdowns = %d, want 3", got)
	}
	if got := s[1].Events(stats.EvShootdown); got != 5 {
		t.Errorf("epoch 1 shootdowns = %d, want 5", got)
	}
	if got := s[1].Events(stats.EvKeyEviction); got != 2 {
		t.Errorf("epoch 1 key evictions = %d, want 2", got)
	}
	// Cumulative markers stay cumulative.
	if s[1].Retired != 200 || s[1].Cycles != 400 {
		t.Errorf("cumulative retired/cycles = %d/%d, want 200/400", s[1].Retired, s[1].Cycles)
	}
}

func TestRecorderFinishPartialEpoch(t *testing.T) {
	r := NewRecorder(Options{Epoch: 100})
	r.TakeSample(synthState(100, 1))
	r.Finish(synthState(150, 2))
	if n := len(r.Samples()); n != 2 {
		t.Fatalf("samples = %d, want 2 (final partial epoch)", n)
	}
	r.Finish(synthState(150, 2)) // idempotent
	if n := len(r.Samples()); n != 2 {
		t.Errorf("Finish not idempotent: %d samples", n)
	}
	if r.Final().Retired != 150 {
		t.Errorf("final retired = %d", r.Final().Retired)
	}
}

func TestRecorderDisabledSampling(t *testing.T) {
	r := NewRecorder(Options{})
	r.ObserveAccess(12)
	r.Finish(synthState(500, 4))
	if n := len(r.Samples()); n != 0 {
		t.Errorf("disabled sampler recorded %d samples", n)
	}
	if r.AccessHist().Count != 1 {
		t.Errorf("histograms must record even with sampling disabled")
	}
}

func TestExportersDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := NewRecorder(Options{Epoch: 100})
		r.SetManifest(Manifest{Scheme: "mpkvirt", Workload: "avl", Seed: 42})
		r.ObserveAccess(3)
		r.ObserveSetPerm(40)
		r.Event(0, stats.EvKeyEviction, 1)
		r.TakeSample(synthState(100, 1))
		r.TakeSample(synthState(200, 3))
		r.Finish(synthState(200, 3))
		return r
	}
	type export struct {
		name string
		fn   func(*Recorder, *bytes.Buffer) error
	}
	exports := []export{
		{"jsonl", func(r *Recorder, b *bytes.Buffer) error { return r.WriteJSONL(b) }},
		{"csv", func(r *Recorder, b *bytes.Buffer) error { return r.WriteCSV(b) }},
		{"prom", func(r *Recorder, b *bytes.Buffer) error { return r.WritePrometheus(b) }},
	}
	for _, e := range exports {
		var b1, b2 bytes.Buffer
		if err := e.fn(build(), &b1); err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if err := e.fn(build(), &b2); err != nil {
			t.Fatalf("%s: %v", e.name, err)
		}
		if b1.Len() == 0 {
			t.Errorf("%s: empty export", e.name)
		}
		if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
			t.Errorf("%s: two identical recorders exported different bytes", e.name)
		}
	}
}

func TestExportDir(t *testing.T) {
	r := NewRecorder(Options{Epoch: 100})
	r.SetManifest(Manifest{Scheme: "mpkvirt", Workload: "avl", Seed: 42})
	r.TakeSample(synthState(100, 1))
	r.Finish(synthState(100, 1))
	dir := t.TempDir()
	paths, err := r.ExportDir(dir+"/nested", "avl-mpkvirt")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 4 {
		t.Fatalf("paths = %v", paths)
	}
	for _, p := range paths {
		if !strings.Contains(p, "avl-mpkvirt") {
			t.Errorf("path %q missing base name", p)
		}
	}
}

func TestPromHistogramCumulative(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{1, 2, 3, 100} {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := PromHistogram(&b, "x", "help", "", &h); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`x_bucket{le="+Inf"} 4`, "x_sum 106\n", "x_count 4\n", "# TYPE x histogram"} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Unlabeled series must use the canonical bare form, never `{}`
	// (the linter and real scrapers treat `x_sum{}` as noncanonical).
	if strings.Contains(out, "{}") {
		t.Errorf("prometheus output contains empty label braces:\n%s", out)
	}
	if f := LintProm(strings.NewReader(out)); len(f) != 0 {
		t.Errorf("exporter output fails lint: %v", f)
	}
}

func TestProgress(t *testing.T) {
	var b bytes.Buffer
	p := NewProgress(&b, 2)
	p.Logf("banner %d", 7)
	p.Done("cell-a")
	p.Done("cell-b")
	want := "banner 7\n[1/2] cell-a\n[2/2] cell-b\n"
	if b.String() != want {
		t.Errorf("progress output:\n%q\nwant:\n%q", b.String(), want)
	}
	var nilP *Progress
	nilP.Logf("ignored")
	nilP.Done("ignored")
	if NewProgress(nil, 3) != nil {
		t.Errorf("NewProgress(nil) must return nil")
	}
}

func TestConfigHash(t *testing.T) {
	type cfg struct{ A, B int }
	h1 := ConfigHash(cfg{1, 2})
	h2 := ConfigHash(cfg{1, 2})
	h3 := ConfigHash(cfg{1, 3})
	if h1 != h2 {
		t.Errorf("hash not stable: %s != %s", h1, h2)
	}
	if h1 == h3 {
		t.Errorf("hash ignores config contents")
	}
	if len(h1) != 12 {
		t.Errorf("hash length = %d, want 12 hex chars", len(h1))
	}
}
