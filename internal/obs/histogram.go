package obs

import "math/bits"

// NumBuckets is the number of log2 histogram buckets: bucket 0 holds the
// value 0 and bucket i (i >= 1) holds values in [2^(i-1), 2^i), so any
// uint64 cycle count maps to bits.Len64(v).
const NumBuckets = 65

// Histogram is a fixed-bucket log2 latency histogram. The value (not a
// pointer) is a complete snapshot, so histograms merge and copy freely;
// Merge is associative and commutative, and recording a stream into one
// histogram equals recording its partitions separately and merging.
type Histogram struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	Buckets [NumBuckets]uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.Buckets[bits.Len64(v)]++
}

// Merge adds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.Count == 0 {
		return
	}
	if h.Count == 0 || o.Min < h.Min {
		h.Min = o.Min
	}
	if o.Max > h.Max {
		h.Max = o.Max
	}
	h.Count += o.Count
	h.Sum += o.Sum
	for i := range h.Buckets {
		h.Buckets[i] += o.Buckets[i]
	}
}

// BucketUpper returns the inclusive upper bound of bucket i (0 for
// bucket 0, 2^i - 1 otherwise).
func BucketUpper(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(i)) - 1
}

// Mean returns the arithmetic mean of the observed values.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns the upper bound of the bucket containing the
// q-quantile (0 <= q <= 1) — an upper estimate with log2 resolution.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(h.Count))
	if rank >= h.Count {
		rank = h.Count - 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen > rank {
			u := BucketUpper(i)
			if u > h.Max {
				u = h.Max
			}
			return u
		}
	}
	return h.Max
}
