// Package obs is the time-series observability layer of the simulator:
// an epoch sampler that snapshots per-category cycle and event deltas
// over simulated time, mergeable log2 latency histograms for per-access
// and per-SETPERM costs, run manifests identifying every simulation, and
// byte-deterministic JSONL/CSV/Prometheus exporters.
//
// The layer is strictly passive and deterministic:
//
//   - Zero overhead when disabled. The simulator guards every hook with
//     a nil check on its *Recorder; no allocation or call happens on the
//     access path of an unobserved run.
//   - Zero perturbation when enabled. A Recorder only reads machine
//     state; an observed run produces a Result identical to an
//     unobserved run of the same seed.
//   - No wall clock inside the sampler. Epochs advance on retired
//     instructions (non-memory instructions + loads + stores), so the
//     time series of a given seed is reproducible byte-for-byte. The
//     only wall-clock value anywhere is the caller-stamped Manifest.Wall,
//     which is excluded from the canonical file forms.
package obs

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"domainvirt/internal/buildinfo"
)

// ToolVersion identifies the exporter format generation; it is written
// into every manifest so downstream tooling can dispatch on it. The
// string lives in internal/buildinfo so every binary's -version output
// reports the same stamp that lands in manifests.
const ToolVersion = buildinfo.ObsFormat

// Options configures a Recorder.
type Options struct {
	// Epoch is the sampling period in retired instructions (non-memory
	// instructions + loads + stores). 0 disables time-series sampling;
	// latency histograms and the manifest are still recorded.
	Epoch uint64
}

// ConfigHash returns a short deterministic digest of a configuration
// value (the simulator Config), stamped into manifests so runs from
// different machine configurations are never conflated. The value must
// contain no maps or pointers for the rendering to be deterministic.
func ConfigHash(cfg interface{}) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("%+v", cfg)))
	return hex.EncodeToString(sum[:6])
}
