package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"domainvirt/internal/stats"
)

// counterFields enumerates every stats.Counters field in declaration
// order, giving the CSV and Prometheus exporters a fixed column/metric
// order. TestCounterFieldsComplete asserts the list stays in sync with
// the struct.
var counterFields = []struct {
	Name string
	Get  func(*stats.Counters) uint64
}{
	{"Instructions", func(c *stats.Counters) uint64 { return c.Instructions }},
	{"Loads", func(c *stats.Counters) uint64 { return c.Loads }},
	{"Stores", func(c *stats.Counters) uint64 { return c.Stores }},
	{"TLBL1Hits", func(c *stats.Counters) uint64 { return c.TLBL1Hits }},
	{"TLBL2Hits", func(c *stats.Counters) uint64 { return c.TLBL2Hits }},
	{"TLBMisses", func(c *stats.Counters) uint64 { return c.TLBMisses }},
	{"TLBFlushed", func(c *stats.Counters) uint64 { return c.TLBFlushed }},
	{"DebtRefills", func(c *stats.Counters) uint64 { return c.DebtRefills }},
	{"L1DHits", func(c *stats.Counters) uint64 { return c.L1DHits }},
	{"L2Hits", func(c *stats.Counters) uint64 { return c.L2Hits }},
	{"MemReads", func(c *stats.Counters) uint64 { return c.MemReads }},
	{"MemWrites", func(c *stats.Counters) uint64 { return c.MemWrites }},
	{"NVMReads", func(c *stats.Counters) uint64 { return c.NVMReads }},
	{"NVMWrites", func(c *stats.Counters) uint64 { return c.NVMWrites }},
	{"PermSwitches", func(c *stats.Counters) uint64 { return c.PermSwitches }},
	{"Evictions", func(c *stats.Counters) uint64 { return c.Evictions }},
	{"DTTWalks", func(c *stats.Counters) uint64 { return c.DTTWalks }},
	{"PTLBMisses", func(c *stats.Counters) uint64 { return c.PTLBMisses }},
	{"PTLBHits", func(c *stats.Counters) uint64 { return c.PTLBHits }},
	{"DTTLBHits", func(c *stats.Counters) uint64 { return c.DTTLBHits }},
	{"DTTLBMisses", func(c *stats.Counters) uint64 { return c.DTTLBMisses }},
	{"DomainFaults", func(c *stats.Counters) uint64 { return c.DomainFaults }},
	{"PageFaults", func(c *stats.Counters) uint64 { return c.PageFaults }},
	{"ContextSwitches", func(c *stats.Counters) uint64 { return c.ContextSwitches }},
}

// catKey returns a file-friendly key for a breakdown category
// ("permission change" → "permission_change").
func catKey(c stats.Category) string {
	return strings.ReplaceAll(c.String(), " ", "_")
}

// rate returns hits/(hits+misses), or 0 when nothing was looked up.
func rate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// --- JSONL time series.

type jsonlCore struct {
	Core       int               `json:"core"`
	Cycles     uint64            `json:"cycles"`
	TLBL1Hits  uint64            `json:"tlb_l1_hits"`
	TLBL2Hits  uint64            `json:"tlb_l2_hits"`
	TLBMisses  uint64            `json:"tlb_misses"`
	TLBHitRate float64           `json:"tlb_hit_rate"`
	Events     map[string]uint64 `json:"events"`
}

type jsonlBreakdown struct {
	Cycles uint64 `json:"cycles"`
	Events uint64 `json:"events"`
}

type jsonlSample struct {
	Epoch        int                       `json:"epoch"`
	Retired      uint64                    `json:"retired"`
	Cycles       uint64                    `json:"cycles"`
	Counters     stats.Counters            `json:"counters"`
	Breakdown    map[string]jsonlBreakdown `json:"breakdown"`
	TLBHitRate   float64                   `json:"tlb_hit_rate"`
	DTTLBHitRate float64                   `json:"dttlb_hit_rate"`
	PTLBHitRate  float64                   `json:"ptlb_hit_rate"`
	Cores        []jsonlCore               `json:"cores"`
}

// WriteJSONL writes the epoch time series, one JSON object per line.
// Counter and breakdown values are per-epoch deltas; epoch, retired, and
// cycles are cumulative positions. Output is byte-deterministic: struct
// fields marshal in declaration order and map keys sort.
func (r *Recorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range r.samples {
		s := &r.samples[i]
		js := jsonlSample{
			Epoch:        s.Epoch,
			Retired:      s.Retired,
			Cycles:       s.Cycles,
			Counters:     s.Counters,
			Breakdown:    make(map[string]jsonlBreakdown, stats.NumCategories),
			TLBHitRate:   rate(s.Counters.TLBL1Hits+s.Counters.TLBL2Hits, s.Counters.TLBMisses),
			DTTLBHitRate: rate(s.Counters.DTTLBHits, s.Counters.DTTLBMisses),
			PTLBHitRate:  rate(s.Counters.PTLBHits, s.Counters.PTLBMisses),
		}
		for c := 0; c < stats.NumCategories; c++ {
			js.Breakdown[catKey(stats.Category(c))] = jsonlBreakdown{
				Cycles: s.Breakdown.Cycles[c],
				Events: s.Breakdown.Counts[c],
			}
		}
		for ci := range s.Cores {
			cs := &s.Cores[ci]
			jc := jsonlCore{
				Core:       ci,
				Cycles:     cs.Cycles,
				TLBL1Hits:  cs.TLBL1Hits,
				TLBL2Hits:  cs.TLBL2Hits,
				TLBMisses:  cs.TLBMisses,
				TLBHitRate: rate(cs.TLBL1Hits+cs.TLBL2Hits, cs.TLBMisses),
				Events:     make(map[string]uint64, stats.NumEventKinds),
			}
			for k := 0; k < stats.NumEventKinds; k++ {
				jc.Events[stats.EventKind(k).String()] = cs.Events[k]
			}
			js.Cores = append(js.Cores, jc)
		}
		if err := enc.Encode(js); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// --- CSV time series.

// WriteCSV writes the machine-wide view of the time series: one row per
// epoch with every counter delta, per-category overhead cycles, summed
// event kinds, and hit rates.
func (r *Recorder) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cols := []string{"epoch", "retired", "cycles"}
	for _, f := range counterFields {
		cols = append(cols, f.Name)
	}
	for c := 0; c < stats.NumCategories; c++ {
		cols = append(cols, "cat_"+catKey(stats.Category(c))+"_cycles")
	}
	for k := 0; k < stats.NumEventKinds; k++ {
		cols = append(cols, "ev_"+stats.EventKind(k).String())
	}
	cols = append(cols, "tlb_hit_rate", "dttlb_hit_rate", "ptlb_hit_rate")
	if _, err := fmt.Fprintln(bw, strings.Join(cols, ",")); err != nil {
		return err
	}
	for i := range r.samples {
		s := &r.samples[i]
		row := make([]string, 0, len(cols))
		row = append(row,
			fmt.Sprintf("%d", s.Epoch),
			fmt.Sprintf("%d", s.Retired),
			fmt.Sprintf("%d", s.Cycles))
		for _, f := range counterFields {
			row = append(row, fmt.Sprintf("%d", f.Get(&s.Counters)))
		}
		for c := 0; c < stats.NumCategories; c++ {
			row = append(row, fmt.Sprintf("%d", s.Breakdown.Cycles[c]))
		}
		for k := 0; k < stats.NumEventKinds; k++ {
			row = append(row, fmt.Sprintf("%d", s.Events(stats.EventKind(k))))
		}
		row = append(row,
			fmt.Sprintf("%g", rate(s.Counters.TLBL1Hits+s.Counters.TLBL2Hits, s.Counters.TLBMisses)),
			fmt.Sprintf("%g", rate(s.Counters.DTTLBHits, s.Counters.DTTLBMisses)),
			fmt.Sprintf("%g", rate(s.Counters.PTLBHits, s.Counters.PTLBMisses)))
		if _, err := fmt.Fprintln(bw, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// --- Prometheus text-format snapshot.

// promLabels renders the identifying label set of the run.
func (r *Recorder) promLabels() string {
	return fmt.Sprintf(`scheme=%q,workload=%q`, r.manifest.Scheme, r.manifest.Workload)
}

// PromHistogramHeader writes the HELP/TYPE header of a histogram
// family. Valid exposition format requires exactly one header per
// metric name, before any of its series — callers emitting several
// labeled series of one family write the header once, then each
// series via PromHistogramSeries.
func PromHistogramHeader(w io.Writer, name, help string) error {
	_, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	return err
}

// PromHistogram writes one complete histogram family (header plus a
// single series) in Prometheus text format with cumulative le buckets.
// labels may be empty.
func PromHistogram(w io.Writer, name, help, labels string, h *Histogram) error {
	if err := PromHistogramHeader(w, name, help); err != nil {
		return err
	}
	return PromHistogramSeries(w, name, labels, h)
}

// PromHistogramSeries writes one labeled series of a histogram family
// (cumulative le buckets, _sum, _count) without the HELP/TYPE header.
func PromHistogramSeries(w io.Writer, name, labels string, h *Histogram) error {
	sep := ""
	if labels != "" {
		sep = ","
	}
	top := 0
	for i := 0; i < NumBuckets; i++ {
		if h.Buckets[i] > 0 {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n", name, labels, sep, BucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, h.Count); err != nil {
		return err
	}
	brace := "{" + labels + "}"
	if labels == "" {
		brace = ""
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, brace, h.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, brace, h.Count)
	return err
}

// WritePrometheus writes an end-of-run snapshot in Prometheus text
// format: run info, total cycles, every counter, per-category overhead
// cycles, and the two latency histograms. Byte-deterministic for a given
// seed.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lb := r.promLabels()
	st := &r.final

	fmt.Fprintf(bw, "# HELP pmo_run_info Identifying labels of this simulation run.\n# TYPE pmo_run_info gauge\n")
	fmt.Fprintf(bw, "pmo_run_info{%s,seed=\"%d\",config_hash=%q,tool_version=%q} 1\n",
		lb, r.manifest.Seed, r.manifest.ConfigHash, r.manifest.ToolVersion)

	var cycles uint64
	for i := range st.Cores {
		if st.Cores[i].Cycles > cycles {
			cycles = st.Cores[i].Cycles
		}
	}
	fmt.Fprintf(bw, "# HELP pmo_cycles_total Simulated execution time in cycles (max across cores).\n# TYPE pmo_cycles_total counter\n")
	fmt.Fprintf(bw, "pmo_cycles_total{%s} %d\n", lb, cycles)

	fmt.Fprintf(bw, "# HELP pmo_counter_total Machine event counters at end of run.\n# TYPE pmo_counter_total counter\n")
	for _, f := range counterFields {
		fmt.Fprintf(bw, "pmo_counter_total{%s,counter=%q} %d\n", lb, f.Name, f.Get(&st.Counters))
	}

	fmt.Fprintf(bw, "# HELP pmo_overhead_cycles_total Cycles attributed per overhead category.\n# TYPE pmo_overhead_cycles_total counter\n")
	for c := 0; c < stats.NumCategories; c++ {
		fmt.Fprintf(bw, "pmo_overhead_cycles_total{%s,category=%q} %d\n",
			lb, catKey(stats.Category(c)), st.Breakdown.Cycles[c])
	}

	if err := PromHistogram(bw, "pmo_access_cycles", "Per-access total latency in cycles.", lb, &r.access); err != nil {
		return err
	}
	if err := PromHistogram(bw, "pmo_setperm_cycles", "Per-SETPERM total cost in cycles.", lb, &r.setperm); err != nil {
		return err
	}
	return bw.Flush()
}

// --- Directory export.

// ExportDir writes the complete export set into dir (created if needed):
// <base>-manifest.json, <base>-series.jsonl, <base>-series.csv, and
// <base>-metrics.prom. It returns the written paths in that order. The
// series files are written even when sampling was disabled (they are
// then header-only/empty), keeping the file set uniform for tooling.
func (r *Recorder) ExportDir(dir, base string) ([]string, error) {
	if base == "" {
		base = "run"
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var paths []string
	write := func(name string, fn func(io.Writer) error) error {
		p := filepath.Join(dir, base+name)
		f, err := os.Create(p)
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		paths = append(paths, p)
		return nil
	}
	if err := write("-manifest.json", r.manifest.WriteJSON); err != nil {
		return nil, err
	}
	if err := write("-series.jsonl", r.WriteJSONL); err != nil {
		return nil, err
	}
	if err := write("-series.csv", r.WriteCSV); err != nil {
		return nil, err
	}
	if err := write("-metrics.prom", r.WritePrometheus); err != nil {
		return nil, err
	}
	return paths, nil
}
