package obs

import (
	"fmt"
	"io"
	"sync"
)

// Progress serializes experiment-progress lines from concurrent workers
// onto one writer, replacing the minutes-long silence of big grids with
// "[done/total] label" completion lines. A nil *Progress (or a nil
// writer) is a no-op, so callers never branch.
type Progress struct {
	mu    sync.Mutex
	w     io.Writer
	total int
	done  int
}

// NewProgress returns a tracker over total units writing to w; a nil w
// yields a no-op tracker.
func NewProgress(w io.Writer, total int) *Progress {
	if w == nil {
		return nil
	}
	return &Progress{w: w, total: total}
}

// Logf writes one free-form line (banners, phase markers).
func (p *Progress) Logf(format string, args ...interface{}) {
	if p == nil || p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, format+"\n", args...)
}

// Done marks one unit complete and prints "[done/total] label".
func (p *Progress) Done(label string) {
	if p == nil || p.w == nil {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.done++
	fmt.Fprintf(p.w, "[%d/%d] %s\n", p.done, p.total, label)
}
