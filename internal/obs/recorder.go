package obs

import (
	"time"

	"domainvirt/internal/stats"
)

// CoreState is one core's cumulative observable state, snapshotted by
// the simulator at sample points.
type CoreState struct {
	Cycles    uint64
	TLBL1Hits uint64
	TLBL2Hits uint64
	TLBMisses uint64
}

// MachineState is the cumulative machine state handed to the sampler.
// The simulator builds it only at sample points (and once at Finish),
// never on the per-access path.
type MachineState struct {
	// Retired is the epoch clock: non-memory instructions + loads +
	// stores retired so far.
	Retired   uint64
	Counters  stats.Counters
	Breakdown stats.Breakdown
	Cores     []CoreState
}

// CoreSample is one core's per-epoch delta, including the engine events
// (evictions, shootdowns) attributed to the core during the epoch.
type CoreSample struct {
	Cycles    uint64
	TLBL1Hits uint64
	TLBL2Hits uint64
	TLBMisses uint64
	Events    [stats.NumEventKinds]uint64
}

// Sample is one epoch of the time series: cumulative position markers
// (Epoch, Retired, Cycles) plus the deltas of every counter, breakdown
// category, and per-core state since the previous sample.
type Sample struct {
	Epoch   int    // sample index, 0-based
	Retired uint64 // cumulative retired instructions at the sample point
	Cycles  uint64 // cumulative execution time (max across cores)
	// Counters and Breakdown hold this epoch's deltas.
	Counters  stats.Counters
	Breakdown stats.Breakdown
	Cores     []CoreSample
}

// Events sums one kind across the sample's cores.
func (s *Sample) Events(kind stats.EventKind) uint64 {
	var n uint64
	for i := range s.Cores {
		n += s.Cores[i].Events[kind]
	}
	return n
}

// Recorder accumulates one run's observability data: the epoch time
// series, the per-access and per-SETPERM latency histograms, and the run
// manifest. A Recorder belongs to exactly one Machine and one run; it is
// not safe for concurrent use (the simulator is single-threaded).
type Recorder struct {
	opt      Options
	manifest Manifest

	samples []Sample
	access  Histogram
	setperm Histogram

	last      MachineState
	evAccum   [][stats.NumEventKinds]uint64
	epochBase int

	final    MachineState
	finished bool
}

// NewRecorder returns an empty recorder.
func NewRecorder(opt Options) *Recorder {
	return &Recorder{opt: opt}
}

// EpochLen returns the sampling period in retired instructions (0 if
// time-series sampling is disabled).
func (r *Recorder) EpochLen() uint64 { return r.opt.Epoch }

// SetManifest stamps the run manifest; the caller (never the simulator)
// fills it.
func (r *Recorder) SetManifest(m Manifest) { r.manifest = m }

// StampWall records the wall-clock duration of the measured phase into
// the manifest. Wall time never enters the canonical exports.
func (r *Recorder) StampWall(d time.Duration) { r.manifest.Wall = d }

// Manifest returns the stamped manifest.
func (r *Recorder) Manifest() Manifest { return r.manifest }

// ObserveAccess records the total latency of one load/store.
func (r *Recorder) ObserveAccess(cycles uint64) { r.access.Observe(cycles) }

// ObserveSetPerm records the total cost of one SETPERM/pkey_set.
func (r *Recorder) ObserveSetPerm(cycles uint64) { r.setperm.Observe(cycles) }

// AccessHist returns the per-access latency histogram.
func (r *Recorder) AccessHist() *Histogram { return &r.access }

// SetPermHist returns the per-SETPERM cost histogram.
func (r *Recorder) SetPermHist() *Histogram { return &r.setperm }

// Event implements stats.EventSink: engine events accumulate per core
// until the next sample folds them into the series.
func (r *Recorder) Event(core int, kind stats.EventKind, n uint64) {
	for core >= len(r.evAccum) {
		r.evAccum = append(r.evAccum, [stats.NumEventKinds]uint64{})
	}
	r.evAccum[core][kind] += n
}

// TakeSample appends one epoch sample: the delta between st and the
// previous sample point, plus the engine events accumulated since.
func (r *Recorder) TakeSample(st MachineState) {
	s := Sample{
		Epoch:     r.epochBase + len(r.samples),
		Retired:   st.Retired,
		Counters:  st.Counters.Sub(r.last.Counters),
		Breakdown: st.Breakdown.Sub(r.last.Breakdown),
		Cores:     make([]CoreSample, len(st.Cores)),
	}
	for i := range st.Cores {
		var prev CoreState
		if i < len(r.last.Cores) {
			prev = r.last.Cores[i]
		}
		cs := CoreSample{
			Cycles:    st.Cores[i].Cycles - prev.Cycles,
			TLBL1Hits: st.Cores[i].TLBL1Hits - prev.TLBL1Hits,
			TLBL2Hits: st.Cores[i].TLBL2Hits - prev.TLBL2Hits,
			TLBMisses: st.Cores[i].TLBMisses - prev.TLBMisses,
		}
		if i < len(r.evAccum) {
			cs.Events = r.evAccum[i]
			r.evAccum[i] = [stats.NumEventKinds]uint64{}
		}
		if st.Cores[i].Cycles > s.Cycles {
			s.Cycles = st.Cores[i].Cycles
		}
		s.Cores[i] = cs
	}
	r.samples = append(r.samples, s)
	r.last = st
}

// Finish closes the run: it records the final partial epoch (when
// sampling is enabled and anything happened since the last boundary) and
// keeps the end-of-run totals for the Prometheus snapshot. Idempotent.
func (r *Recorder) Finish(st MachineState) {
	if r.finished {
		return
	}
	if r.opt.Epoch > 0 && (st.Retired > r.last.Retired || len(r.samples) == 0) {
		r.TakeSample(st)
	}
	r.final = st
	r.finished = true
}

// RecorderState is the sampler's cumulative position: the machine state
// at the last sample boundary, the number of samples taken so far, and
// the engine events accumulated since that boundary. State captures it
// and Seed reinstates it into a fresh Recorder, so a partition-local
// recorder continues a sequential recording mid-run — its first sample's
// deltas, epoch number, and folded events come out exactly as the
// sequential recorder would have produced them. Histograms are not part
// of the state: they are pure sums, so per-partition histograms merge
// back losslessly in Absorb.
type RecorderState struct {
	Last    MachineState
	Samples int
	EvAccum [][stats.NumEventKinds]uint64
}

// State captures the sampler position as a deep copy.
func (r *Recorder) State() RecorderState {
	st := RecorderState{
		Last:    r.last,
		Samples: r.epochBase + len(r.samples),
		EvAccum: make([][stats.NumEventKinds]uint64, len(r.evAccum)),
	}
	st.Last.Cores = append([]CoreState(nil), r.last.Cores...)
	copy(st.EvAccum, r.evAccum)
	return st
}

// Seed positions an empty recorder mid-run, as if it had already taken
// st.Samples samples and stood at st.Last. Seeding a recorder that has
// already sampled is a programming error.
func (r *Recorder) Seed(st RecorderState) {
	if len(r.samples) > 0 || r.finished {
		panic("obs: Seed on a recorder already in use")
	}
	r.last = st.Last
	r.last.Cores = append([]CoreState(nil), st.Last.Cores...)
	r.epochBase = st.Samples
	r.evAccum = make([][stats.NumEventKinds]uint64, len(st.EvAccum))
	copy(r.evAccum, st.EvAccum)
}

// Absorb splices a partition recorder's output onto r: samples append in
// order (their epoch numbers already continue r's, via Seed), histograms
// merge, and r adopts the partition's cumulative tail position. Absorbing
// the partitions of a split run in partition order reproduces, field for
// field, the recorder a sequential replay would have produced.
func (r *Recorder) Absorb(part *Recorder) {
	if r.finished {
		panic("obs: Absorb into a finished recorder")
	}
	r.samples = append(r.samples, part.samples...)
	r.access.Merge(&part.access)
	r.setperm.Merge(&part.setperm)
	r.last = part.last
	r.evAccum = part.evAccum
	// Keep epochBase+len(samples) equal to the next epoch number.
	r.epochBase = part.epochBase + len(part.samples) - len(r.samples)
	if part.finished {
		r.final = part.final
		r.finished = true
	}
}

// Samples returns the recorded time series.
func (r *Recorder) Samples() []Sample { return r.samples }

// Final returns the end-of-run machine state captured by Finish.
func (r *Recorder) Final() MachineState { return r.final }

var _ stats.EventSink = (*Recorder)(nil)
