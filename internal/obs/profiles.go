package obs

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
)

// StartHostProfiles starts the standard Go host-side profilers for the
// simulator process itself (as opposed to the simulated machine): a CPU
// profile, a heap profile written at stop, and a runtime execution
// trace. Empty filenames skip the corresponding profiler. The returned
// stop function must be called exactly once before process exit; it is
// safe to call when nothing was started.
func StartHostProfiles(cpuFile, memFile, traceFile string) (stop func() error, err error) {
	var cpuF, traceF *os.File
	cleanup := func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			rtrace.Stop()
			traceF.Close()
		}
	}
	if cpuFile != "" {
		cpuF, err = os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("obs: cpu profile: %w", err)
		}
	}
	if traceFile != "" {
		traceF, err = os.Create(traceFile)
		if err != nil {
			cleanup()
			return nil, fmt.Errorf("obs: runtime trace: %w", err)
		}
		if err := rtrace.Start(traceF); err != nil {
			traceF.Close()
			traceF = nil
			cleanup()
			return nil, fmt.Errorf("obs: runtime trace: %w", err)
		}
	}
	return func() error {
		cleanup()
		if memFile == "" {
			return nil
		}
		f, err := os.Create(memFile)
		if err != nil {
			return fmt.Errorf("obs: heap profile: %w", err)
		}
		defer f.Close()
		runtime.GC() // materialize a settled heap before the snapshot
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("obs: heap profile: %w", err)
		}
		return nil
	}, nil
}
