package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintProm validates a Prometheus text-exposition snapshot the way the
// JSONL checker validates exporter output: structural rules a scraper
// would reject plus the sanity rules our exporters promise. It returns
// one finding per violation (empty means valid).
//
// Checked: HELP/TYPE appear at most once per metric family and before
// any of its samples; a family's samples are contiguous (a family never
// resumes after another family's samples); TYPE values are legal;
// sample lines parse (name, optional labels, float value); label names
// never repeat within a sample and keep one consistent order across a
// family; counter and histogram values are finite and non-negative;
// histogram series have strictly increasing `le` thresholds with
// non-decreasing cumulative counts, a +Inf bucket, a _sum, and a _count
// equal to the +Inf bucket.
func LintProm(r io.Reader) []string {
	l := &promLinter{
		families: map[string]*promFamily{},
		hists:    map[string]map[string]*histSeries{},
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<24)
	line := 0
	for sc.Scan() {
		line++
		l.line(line, sc.Text())
	}
	if err := sc.Err(); err != nil {
		l.addf(line, "read error: %v", err)
	}
	l.finish()
	return l.findings
}

type promFamily struct {
	help       bool
	typ        string
	sampleSeen bool
	labelOrder []string // non-le label names, first-seen order
	orderSet   bool
}

type histSeries struct {
	buckets []bucketSample
	sumSeen bool
	count   *float64
}

type bucketSample struct {
	le  float64
	cnt float64
	ln  int
}

type promLinter struct {
	findings []string
	families map[string]*promFamily
	// hists[family][baseLabelKey] accumulates one histogram series.
	hists map[string]map[string]*histSeries
	order []string // families in first-sample order
	cur   string   // family currently emitting samples
	done  map[string]bool
}

func (l *promLinter) addf(line int, format string, args ...any) {
	l.findings = append(l.findings, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
}

func (l *promLinter) family(name string) *promFamily {
	f := l.families[name]
	if f == nil {
		f = &promFamily{}
		l.families[name] = f
	}
	return f
}

func (l *promLinter) line(n int, s string) {
	if strings.TrimSpace(s) == "" {
		return
	}
	if strings.HasPrefix(s, "#") {
		fields := strings.SplitN(s, " ", 4)
		if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
			return // free comment
		}
		name, f := fields[2], (*promFamily)(nil)
		f = l.family(name)
		if f.sampleSeen {
			l.addf(n, "%s %s after the family's samples", fields[1], name)
		}
		switch fields[1] {
		case "HELP":
			if f.help {
				l.addf(n, "duplicate HELP for %s", name)
			}
			f.help = true
		case "TYPE":
			if f.typ != "" {
				l.addf(n, "duplicate TYPE for %s", name)
			}
			typ := ""
			if len(fields) >= 4 {
				typ = strings.TrimSpace(fields[3])
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
				f.typ = typ
			default:
				l.addf(n, "illegal TYPE %q for %s", typ, name)
				f.typ = "untyped"
			}
		}
		return
	}
	l.sample(n, s)
}

// familyOf resolves a sample name to its metric family: _bucket/_sum/
// _count suffixes fold into a declared histogram or summary family.
func (l *promLinter) familyOf(name string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if f, ok := l.families[base]; ok && (f.typ == "histogram" || f.typ == "summary") {
			return base
		}
	}
	return name
}

func (l *promLinter) sample(n int, s string) {
	name, labels, valStr, ok := splitSample(s)
	if !ok {
		l.addf(n, "unparseable sample line %q", s)
		return
	}
	val, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		l.addf(n, "bad value %q for %s", valStr, name)
		return
	}
	fam := l.familyOf(name)
	f := l.family(fam)
	f.sampleSeen = true

	// Contiguity: once the exposition moves on, a family may not resume.
	if fam != l.cur {
		if l.done == nil {
			l.done = map[string]bool{}
		}
		if l.done[fam] {
			l.addf(n, "family %s resumes after other samples (non-contiguous)", fam)
		}
		if l.cur != "" {
			l.done[l.cur] = true
		}
		l.cur = fam
		l.order = append(l.order, fam)
	}

	// Label structure: no duplicates; consistent non-le order.
	seen := map[string]bool{}
	var names []string
	le, hasLE := "", false
	for _, kv := range labels {
		if seen[kv[0]] {
			l.addf(n, "duplicate label %q in %s", kv[0], name)
		}
		seen[kv[0]] = true
		if kv[0] == "le" {
			le, hasLE = kv[1], true
			continue
		}
		names = append(names, kv[0])
	}
	if !f.orderSet {
		f.labelOrder, f.orderSet = names, true
	} else if !sameOrder(f.labelOrder, names) && len(names) > 0 && len(f.labelOrder) > 0 {
		l.addf(n, "label order %v in %s differs from family order %v", names, name, f.labelOrder)
	}

	// Value sanity by type.
	isCounterish := f.typ == "counter" || f.typ == "histogram" || f.typ == "summary"
	if isCounterish {
		if math.IsNaN(val) {
			l.addf(n, "NaN value for %s %s", f.typ, name)
		}
		if val < 0 && !strings.HasSuffix(name, "_sum") {
			l.addf(n, "negative value %v for %s %s", val, f.typ, name)
		}
	}

	// Histogram accounting.
	if f.typ == "histogram" && fam != name {
		hs := l.hists[fam]
		if hs == nil {
			hs = map[string]*histSeries{}
			l.hists[fam] = hs
		}
		key := labelKey(names, labels)
		ser := hs[key]
		if ser == nil {
			ser = &histSeries{}
			hs[key] = ser
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if !hasLE {
				l.addf(n, "%s bucket without le label", fam)
				return
			}
			bound, err := strconv.ParseFloat(le, 64)
			if err != nil {
				l.addf(n, "bad le %q in %s", le, fam)
				return
			}
			ser.buckets = append(ser.buckets, bucketSample{le: bound, cnt: val, ln: n})
		case strings.HasSuffix(name, "_sum"):
			ser.sumSeen = true
		case strings.HasSuffix(name, "_count"):
			v := val
			ser.count = &v
		}
	}
}

func (l *promLinter) finish() {
	fams := make([]string, 0, len(l.hists))
	for fam := range l.hists {
		fams = append(fams, fam)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		keys := make([]string, 0, len(l.hists[fam]))
		for k := range l.hists[fam] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, key := range keys {
			ser := l.hists[fam][key]
			label := fam
			if key != "" {
				label = fam + "{" + key + "}"
			}
			var inf *bucketSample
			for i := range ser.buckets {
				b := &ser.buckets[i]
				if i > 0 {
					prev := &ser.buckets[i-1]
					if b.le <= prev.le {
						l.addf(b.ln, "%s le %v not increasing after %v", label, b.le, prev.le)
					}
					if b.cnt < prev.cnt {
						l.addf(b.ln, "%s cumulative count decreases (%v after %v)", label, b.cnt, prev.cnt)
					}
				}
				if math.IsInf(b.le, +1) {
					inf = b
				}
			}
			if inf == nil {
				l.findings = append(l.findings, fmt.Sprintf("%s has no +Inf bucket", label))
				continue
			}
			if ser.count == nil {
				l.findings = append(l.findings, fmt.Sprintf("%s has no _count", label))
			} else if *ser.count != inf.cnt {
				l.findings = append(l.findings, fmt.Sprintf("%s _count %v != +Inf bucket %v", label, *ser.count, inf.cnt))
			}
			if !ser.sumSeen {
				l.findings = append(l.findings, fmt.Sprintf("%s has no _sum", label))
			}
		}
	}
}

func sameOrder(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// labelKey renders the non-le labels (with values) as a stable series
// key.
func labelKey(names []string, labels [][2]string) string {
	var sb strings.Builder
	for _, name := range names {
		for _, kv := range labels {
			if kv[0] == name {
				if sb.Len() > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(kv[0])
				sb.WriteString("=")
				sb.WriteString(kv[1])
				break
			}
		}
	}
	return sb.String()
}

// splitSample parses `name{k="v",...} value` (labels optional).
func splitSample(s string) (name string, labels [][2]string, value string, ok bool) {
	i := 0
	for i < len(s) && s[i] != '{' && s[i] != ' ' {
		i++
	}
	if i == 0 || i == len(s) {
		return "", nil, "", false
	}
	name = s[:i]
	if s[i] == '{' {
		j := i + 1
		for {
			// label name
			k := j
			for j < len(s) && s[j] != '=' && s[j] != '}' {
				j++
			}
			if j >= len(s) {
				return "", nil, "", false
			}
			if s[j] == '}' {
				if j != k { // trailing garbage like {a}
					return "", nil, "", false
				}
				j++
				break
			}
			lname := strings.TrimSpace(s[k:j])
			j++ // '='
			if j >= len(s) || s[j] != '"' {
				return "", nil, "", false
			}
			j++
			var val strings.Builder
			for j < len(s) && s[j] != '"' {
				if s[j] == '\\' && j+1 < len(s) {
					j++
				}
				val.WriteByte(s[j])
				j++
			}
			if j >= len(s) {
				return "", nil, "", false
			}
			j++ // closing quote
			labels = append(labels, [2]string{lname, val.String()})
			if j < len(s) && s[j] == ',' {
				j++
				continue
			}
			if j < len(s) && s[j] == '}' {
				j++
				break
			}
			return "", nil, "", false
		}
		i = j
	}
	rest := strings.TrimSpace(s[i:])
	if rest == "" {
		return "", nil, "", false
	}
	// Optional timestamp after the value.
	if sp := strings.IndexByte(rest, ' '); sp >= 0 {
		rest = rest[:sp]
	}
	return name, labels, rest, true
}
