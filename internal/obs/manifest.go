package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Manifest identifies one observed simulation run: what was simulated,
// under which scheme and configuration, by which exporter generation.
// The simulator never fills a manifest — the caller that built the run
// stamps it, including the wall-clock duration of the measured phase.
//
// Wall is deliberately excluded from the JSON form: exports must be
// byte-deterministic for a given seed (the determinism contract of this
// package), and wall time is the one volatile field. Callers that want
// it report it through their own channels (pmosim prints it to stdout).
type Manifest struct {
	Scheme      string `json:"scheme"`
	Workload    string `json:"workload"`
	Seed        int64  `json:"seed"`
	Ops         int    `json:"ops"`
	Threads     int    `json:"threads"`
	Cores       int    `json:"cores"`
	PMOs        int    `json:"pmos"`
	Epoch       uint64 `json:"epoch"`
	ConfigHash  string `json:"config_hash"`
	ToolVersion string `json:"tool_version"`

	Wall time.Duration `json:"-"`
}

// WriteJSON writes the canonical (deterministic) manifest form: indented
// JSON with a trailing newline.
func (m Manifest) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
